package mobirep

import (
	"math"
	"testing"
)

// Facade coverage for multiobject.go: the section 7.2 multi-object
// extension through the public names only.

// facadeFreqs is a small two-object workload: object 0 read-heavy,
// object 1 write-heavy, plus a joint read tying them together.
func facadeFreqs() FreqTable {
	x, y := NewObjectSet(0), NewObjectSet(1)
	return FreqTable{
		{Kind: MultiRead, Objects: x}:     8,
		{Kind: MultiWrite, Objects: x}:    1,
		{Kind: MultiRead, Objects: y}:     1,
		{Kind: MultiWrite, Objects: y}:    8,
		{Kind: MultiRead, Objects: x | y}: 2,
	}
}

func TestFacadeObjectSet(t *testing.T) {
	s := NewObjectSet(0, 2)
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if !NewObjectSet(0).SubsetOf(s) || NewObjectSet(1).SubsetOf(s) {
		t.Fatal("SubsetOf wrong")
	}
}

func TestFacadeOptimalBeatsAlternatives(t *testing.T) {
	f := facadeFreqs()
	n := 2
	for _, m := range []MultiCostModel{MultiConnModel(), MultiMsgModel(0.5)} {
		best, bestCost := OptimalStaticAllocation(f, n, m)
		// The optimum is no worse than every allocation, including the
		// empty and full ones.
		for alloc := ObjectSet(0); alloc < 1<<n; alloc++ {
			if c := MultiExpectedCost(f, alloc, m); c < bestCost-1e-12 {
				t.Fatalf("allocation %v costs %.4f, under the claimed optimum %v at %.4f",
					alloc, c, best, bestCost)
			}
		}
		// Greedy must land within the enumerated optimum on a 2-object
		// instance (its multi-start covers this space exactly).
		gAlloc, gCost := GreedyAllocation(f, n, m)
		if math.Abs(gCost-bestCost) > 1e-9 {
			t.Fatalf("greedy %v at %.4f missed the optimum %v at %.4f", gAlloc, gCost, best, bestCost)
		}
	}
	// The read-heavy object belongs in the message-model optimum.
	best, _ := OptimalStaticAllocation(f, n, MultiMsgModel(0.5))
	if !best.Has(0) {
		t.Fatalf("message optimum %v leaves out the read-heavy object", best)
	}
}

func TestFacadeDynamicMultiConverges(t *testing.T) {
	m := MultiMsgModel(0.5)
	d := NewDynamicMulti(2, 32, 8, m)
	f := facadeFreqs()
	classes := f.Classes()

	// Feed the workload round-robin proportionally to its frequencies;
	// the dynamic allocator must converge to the static optimum.
	for round := 0; round < 40; round++ {
		for _, c := range classes {
			for i := 0; i < int(f[c]); i++ {
				d.Apply(MultiOp{Kind: c.Kind, Objects: c.Objects})
			}
		}
	}
	best, _ := OptimalStaticAllocation(f, 2, m)
	if d.Alloc() != best {
		t.Fatalf("dynamic settled on %v, static optimum is %v", d.Alloc(), best)
	}
	if d.Ops() == 0 || d.Cost() <= 0 || d.PerOp() <= 0 {
		t.Fatalf("accounting empty: ops=%d cost=%.2f", d.Ops(), d.Cost())
	}
	if d.Transitions() == 0 {
		t.Fatal("allocator never re-solved despite the recompute interval")
	}
}
