package report

import (
	"strings"
	"testing"
)

func TestASCIIAlignment(t *testing.T) {
	tbl := New("demo", "name", "value")
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "22")
	out := tbl.ASCII()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The value column must start at the same offset in every body line.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatalf("no value header:\n%s", out)
	}
	if lines[3][idx] != '1' || lines[4][idx] != '2' {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestASCIIRaggedRows(t *testing.T) {
	tbl := New("", "a")
	tbl.AddRow("x", "extra", "more")
	out := tbl.ASCII()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Fatalf("ragged cells dropped:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Fatal("empty title rendered")
	}
}

func TestNotes(t *testing.T) {
	tbl := New("t", "c")
	tbl.AddNote("theta = %v", 0.5)
	if !strings.Contains(tbl.ASCII(), "note: theta = 0.5") {
		t.Fatalf("note missing:\n%s", tbl.ASCII())
	}
}

func TestCSV(t *testing.T) {
	tbl := New("t", "a", "b")
	tbl.AddRow("plain", "with,comma")
	tbl.AddRow("with\"quote", "ok")
	out := tbl.CSV()
	want := "a,b\nplain,\"with,comma\"\n\"with\\\"quote\",ok\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.123456, 3) != "0.123" {
		t.Fatalf("F = %q", F(0.123456, 3))
	}
	if Pct(0.0588) != "5.9%" {
		t.Fatalf("Pct = %q", Pct(0.0588))
	}
	if I(42) != "42" {
		t.Fatalf("I = %q", I(42))
	}
}
