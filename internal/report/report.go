// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats the mobirep-bench tool emits. It is deliberately
// tiny: experiments produce Tables, the tool prints them.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title describes the table, typically naming the paper artifact it
	// reproduces (e.g. "Figure 1: dominance regions").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the body cells; ragged rows are padded when rendering.
	Rows [][]string
	// Notes are free-form lines printed after the table.
	Notes []string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	width := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	colw := make([]int, width)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > colw[i] {
				colw[i] = len(c)
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < width; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", colw[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, width)
	for i := range rule {
		rule[i] = strings.Repeat("-", colw[i])
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Pct formats a ratio as a percentage with one decimal, e.g. 0.0588 ->
// "5.9%".
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }
