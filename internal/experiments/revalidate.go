package experiments

import (
	"bytes"
	"fmt"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

func init() {
	register(Experiment{
		ID:       "E22",
		Title:    "Revalidation: reconnect refreshes cost version checks, not payloads",
		Artifact: "Disconnected operation (Coda citation in section 8) meets the cost model (extension)",
		Run:      runE22,
	})
}

// runE22 measures the bytes a reconnecting mobile computer transfers to
// refresh its watch list, as a function of how much changed while it was
// away. With version-hint revalidation the response carries payloads only
// for the changed fraction.
func runE22(cfg Config) []*report.Table {
	const keys = 50
	payload := cfg.scale(4096, 512)

	tbl := report.New(fmt.Sprintf("Post-reconnect refresh of %d keys x %d B", keys, payload),
		"changed while away", "refresh bytes (revalidating)", "naive re-fetch bytes", "saving")
	for _, changed := range []int{0, 5, 15, 30, 50} {
		reval := runReconnectRefresh(cfg.Seed, keys, payload, changed, true)
		naive := runReconnectRefresh(cfg.Seed, keys, payload, changed, false)
		tbl.AddRow(
			fmt.Sprintf("%d/%d keys", changed, keys),
			report.I(reval), report.I(naive),
			report.Pct(1-float64(reval)/float64(naive)))
	}
	tbl.AddNote("the refresh is ONE control + ONE data message either way (E18); revalidation changes only what the data message carries")
	tbl.AddNote("at 0 changed the response is version confirmations only; at 50/50 the hints cost a few bytes and save nothing")
	return []*report.Table{tbl}
}

// runReconnectRefresh builds the scenario and returns the bytes of the
// post-reconnect refresh traffic. withArchive=false simulates a client
// without revalidation by clearing hints (fresh client instance).
func runReconnectRefresh(seed uint64, keys, payloadSize, changed int, withArchive bool) int {
	store := db.NewStore()
	srv, err := replica.NewServer(store, replica.SW(3))
	if err != nil {
		panic(err)
	}
	a, b := transport.NewMemPair()
	srv.Attach(a)
	cli, err := replica.NewClient(b, replica.SW(3))
	if err != nil {
		panic(err)
	}
	rng := stats.NewRNG(seed)
	names := make([]string, keys)
	base := bytes.Repeat([]byte{0x11}, payloadSize)
	for i := range names {
		names[i] = fmt.Sprintf("wl/%02d", i)
		if _, err := srv.Write(names[i], base); err != nil {
			panic(err)
		}
	}
	// Warm the cache: two joint reads give every SW3 window a majority.
	cli.ReadMany(names)
	cli.ReadMany(names)

	cli.Disconnect()
	// While away: a random subset of keys changes.
	perm := make([]int, keys)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(keys, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	fresh := bytes.Repeat([]byte{0x22}, payloadSize)
	for _, idx := range perm[:changed] {
		if _, err := srv.Write(names[idx], fresh); err != nil {
			panic(err)
		}
	}

	a2, b2 := transport.NewMemPair()
	meter := srv.Attach(a2).Meter()
	var refreshClient *replica.Client
	if withArchive {
		cli.Reattach(b2)
		refreshClient = cli
	} else {
		// A hint-less client: same protocol, empty archive.
		refreshClient, err = replica.NewClient(b2, replica.SW(3))
		if err != nil {
			panic(err)
		}
	}
	before := meter.Snapshot().Add(refreshClient.Meter().Snapshot())
	if _, err := refreshClient.ReadMany(names); err != nil {
		panic(err)
	}
	after := meter.Snapshot().Add(refreshClient.Meter().Snapshot())
	return after.Bytes - before.Bytes
}
