package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/report"
)

func init() {
	register(Experiment{
		ID:       "E26",
		Title:    "Durability cost: write throughput under sync=never / group / always",
		Artifact: "Crash-consistent SC beyond the paper's volatile server (extension)",
		Run:      runE26,
	})
}

// runE26 measures what each durability policy costs at the SC's write
// path: a fleet of concurrent writers hammers one log-backed store on
// the real filesystem with page-sized (4KiB) values, once per policy.
// sync=never is the ceiling (no fsync anywhere — the volatile pre-
// durability SC), sync=always the floor (one fsync per acknowledged
// write), and sync=group the production default — group commit
// amortizes one fsync over every writer that queued behind the leader,
// which is why its throughput should hold at a large fraction of the
// no-durability ceiling while giving the same zero-loss guarantee as
// sync=always.
//
// The clock stops only when the data is on stable storage: each
// policy's elapsed time runs from the first Put to the return of
// Close, which flushes and fsyncs the log. Without that, sync=never
// would be credited with the RAM-speed rate of dirtying the page cache
// while its actual disk I/O is still pending — a ceiling no policy
// could ever approach, and not one the volatile SC actually has once
// the kernel's writeback catches up. The fsync and batch-size columns
// come from the store's own metrics, so the table shows the mechanism,
// not just the outcome. Numbers are timing-based, so like E23/E24/E25
// this experiment is excluded from the byte-for-byte determinism diff
// (mobirep-bench -skip E23,E24,E25,E26).
func runE26(cfg Config) []*report.Table {
	writers := cfg.scale(1024, 128)
	budget := time.Duration(cfg.scale(1200, 200)) * time.Millisecond

	fsyncs := obs.Default().Counter("mobirep_db_fsyncs_total", "")
	groupRecords := obs.Default().Counter("mobirep_db_group_commit_records_total", "")

	// runPolicy measures write throughput to stable storage under pol:
	// writers hammer the store for the budget, and the elapsed time
	// includes the Close that forces everything to disk.
	runPolicy := func(pol db.SyncPolicy) (rate float64, nFsyncs, nRecords uint64, total int64) {
		dir, err := os.MkdirTemp("", "mobirep-e26-")
		if err != nil {
			panic(fmt.Sprintf("E26: %v", err))
		}
		defer os.RemoveAll(dir)
		store, err := db.OpenWith(db.Options{Path: filepath.Join(dir, "e26.log"), Sync: pol})
		if err != nil {
			panic(fmt.Sprintf("E26: open %v: %v", pol, err))
		}
		value := make([]byte, 4096)

		fsyncs0, records0 := fsyncs.Load(), groupRecords.Load()
		var writes atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(budget)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				key := fmt.Sprintf("e26-%d", w%64)
				for n := 0; ; n++ {
					if n%8 == 0 && !time.Now().Before(deadline) {
						return
					}
					if _, err := store.Put(key, value); err != nil {
						panic(fmt.Sprintf("E26: put under %v: %v", pol, err))
					}
					writes.Add(1)
				}
			}(w)
		}
		wg.Wait()
		store.Close() // the final flush is part of the bill
		elapsed := time.Since(start).Seconds()

		total = writes.Load()
		return float64(total) / elapsed, fsyncs.Load() - fsyncs0, groupRecords.Load() - records0, total
	}

	tbl := report.New(fmt.Sprintf(
		"E26: durability policy vs write throughput to stable storage — %d concurrent writers, 4KiB values, %v budget",
		writers, budget),
		"policy", "writes", "writes/s", "fsyncs", "records/fsync", "vs never")

	var neverRate float64
	for _, tc := range []struct {
		name string
		pol  db.SyncPolicy
	}{
		{"never", db.SyncNever},
		{"group", db.SyncGroup},
		{"always", db.SyncAlways},
	} {
		rate, nFsyncs, nRecords, total := runPolicy(tc.pol)
		batch := "-"
		if tc.pol == db.SyncGroup && nFsyncs > 0 {
			batch = report.F(float64(nRecords)/float64(nFsyncs), 1)
		}
		ratio := "1.00x"
		if tc.pol == db.SyncNever {
			neverRate = rate
		} else {
			ratio = fmt.Sprintf("%.2fx", rate/neverRate)
		}
		tbl.AddRow(tc.name, report.I(int(total)), report.F(rate, 0),
			report.I(int(nFsyncs)), batch, ratio)
	}
	tbl.AddNote("sync=never is the pre-durability baseline (volatile SC): it dirties the page cache at RAM speed, then pays the whole deferred flush in one lump at Close; sync=always pays one fsync per acknowledged write; sync=group amortizes one fsync over every writer queued behind the leader and overlaps batch formation with the in-flight fsync — same zero-loss guarantee as always")
	tbl.AddNote("gate: group-commit throughput to stable storage should hold at >=50%% of sync=never with the default (natural-batching) interval at this writer count")
	return []*report.Table{tbl}
}
