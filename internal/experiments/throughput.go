package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

func init() {
	register(Experiment{
		ID:       "E23",
		Title:    "Transport throughput: pooled codec, coalesced writev, SC fan-out batching",
		Artifact: "Hot-path engineering for the scales of sections 7-8 (extension)",
		Run:      runE23,
	})
}

// runE23 measures the wire/transport hot path three ways: the codec in
// isolation (legacy allocating calls vs pooled/borrowed), the TCP frame
// path (per-frame writes vs coalesced writev batches), and the SC write
// fan-out (per-subscriber encode vs one shared encode). Numbers are
// timing-based, so this experiment is excluded from byte-for-byte output
// diffs (mobirep-bench -skip E23).
func runE23(cfg Config) []*report.Table {
	return []*report.Table{
		e23Codec(cfg),
		e23TCP(cfg),
		e23FanOut(cfg),
	}
}

// measure runs f n times and returns ns/op and allocs/op.
func measure(n int, f func()) (nsPerOp, allocsPerOp float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(n),
		float64(after.Mallocs-before.Mallocs) / float64(n)
}

func e23Codec(cfg Config) *report.Table {
	ops := cfg.scale(2_000_000, 50_000)
	msg := wire.Message{
		Kind: wire.KindWriteProp, Key: "object-42",
		Value: make([]byte, 256), Version: 7,
	}
	frame, err := wire.Encode(msg)
	if err != nil {
		panic(err)
	}

	tbl := report.New("E23a: wire codec, legacy vs pooled/borrowed ("+report.I(ops)+" ops, 256B values)",
		"path", "ns/op", "allocs/op", "Mops/s")
	row := func(name string, f func()) (ns float64) {
		ns, allocs := measure(ops, f)
		tbl.AddRow(name, report.F(ns, 1), report.F(allocs, 2), report.F(1e3/ns, 2))
		return ns
	}
	encLegacy := row("Encode (alloc per frame)", func() {
		if _, err := wire.Encode(msg); err != nil {
			panic(err)
		}
	})
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	encPooled := row("AppendEncode (pooled buffer)", func() {
		b, err := wire.AppendEncode(buf.B[:0], msg)
		if err != nil {
			panic(err)
		}
		buf.B = b
	})
	decLegacy := row("Decode (copying)", func() {
		if _, err := wire.Decode(frame); err != nil {
			panic(err)
		}
	})
	decBorrowed := row("DecodeBorrowed (zero-copy)", func() {
		if _, err := wire.DecodeBorrowed(frame); err != nil {
			panic(err)
		}
	})
	tbl.AddNote("encode speedup %.1fx, decode speedup %.1fx",
		encLegacy/encPooled, decLegacy/decBorrowed)
	return tbl
}

func e23TCP(cfg Config) *report.Table {
	frames := cfg.scale(65_536, 4_096)
	const size = 512
	tbl := report.New("E23b: TCP frame path, per-frame writes vs coalesced writev ("+
		report.I(frames)+" frames, "+report.I(size)+"B each)",
		"path", "frames/s", "MB/s", "writev batches", "syscalls saved")

	run := func(name string, coalesce bool) float64 {
		ln, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer ln.Close()
		var got atomic.Int64
		done := make(chan struct{})
		go func() {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			link.SetHandler(func([]byte) {
				if got.Add(1) == int64(frames) {
					close(done)
				}
			})
			link.Start(nil)
		}()
		cli, err := transport.DialLink(ln.Addr(), func([]byte) {}, nil)
		if err != nil {
			panic(err)
		}
		defer cli.Close()
		cli.SetCoalesce(coalesce)
		payload := make([]byte, size)
		start := time.Now()
		for i := 0; i < frames; i++ {
			if err := cli.Send(payload); err != nil {
				panic(err)
			}
		}
		if err := cli.Flush(); err != nil {
			panic(err)
		}
		select {
		case <-done:
		case <-time.After(2 * time.Minute):
			panic("E23b: frames never all arrived")
		}
		elapsed := time.Since(start).Seconds()
		fps := float64(frames) / elapsed
		st := cli.Stats()
		batches, saved := "-", "-"
		if coalesce {
			batches = report.I(int(st.Flushes))
			saved = report.I(int(2*st.Frames - st.Flushes))
		}
		tbl.AddRow(name, report.F(fps, 0), report.F(fps*size/1e6, 1), batches, saved)
		return fps
	}
	plain := run("per-frame vectored write", false)
	coalesced := run("coalesced writev", true)
	tbl.AddNote("coalescing throughput: %.1fx the per-frame path", coalesced/plain)
	return tbl
}

func e23FanOut(cfg Config) *report.Table {
	const k = 32
	writes := cfg.scale(20_000, 1_000)
	value := make([]byte, 4096)

	tbl := report.New(fmt.Sprintf("E23c: SC write fan-out to %d subscribers, per-subscriber encode vs shared (%d writes, 4KB values)", k, writes),
		"path", "writes/s", "ns/write", "allocs/write")

	// One server, k subscribed sessions over in-memory links. The peer
	// ends swallow propagations; the measurement isolates the SC's send
	// work, which is what the fan-out batching changed.
	srv, err := replica.NewServer(db.NewStore(), replica.Static2())
	if err != nil {
		panic(err)
	}
	if _, err := srv.Write("hot", value); err != nil {
		panic(err)
	}
	readReq, err := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
	if err != nil {
		panic(err)
	}
	// aLinks are the server-side ends: a.Send delivers to the peer's
	// no-op handler, so the legacy emulation below exercises the same
	// outbound direction the session uses.
	aLinks := make([]transport.Link, k)
	for i := 0; i < k; i++ {
		a, b := transport.NewMemPair()
		srv.Attach(a)
		b.SetHandler(func([]byte) {})
		// A read subscribes the session: static-2 allocates on first
		// contact, so every later write propagates to this peer.
		if err := b.Send(readReq); err != nil {
			panic(err)
		}
		aLinks[i] = a
	}

	// Legacy baseline: what the pre-batching server did per write — an
	// independent Encode and Send for each of the k subscribers. (The
	// emulation even skips the real path's per-session locking and
	// metering, so the measured speedup is a lower bound.)
	msg := wire.Message{Kind: wire.KindWriteProp, Key: "hot", Value: value, Version: 1}
	nsLegacy, allocsLegacy := measure(writes, func() {
		for i := 0; i < k; i++ {
			frame, err := wire.Encode(msg)
			if err != nil {
				panic(err)
			}
			if err := aLinks[i].Send(frame); err != nil {
				panic(err)
			}
		}
	})
	tbl.AddRow("per-subscriber encode (legacy)",
		report.F(1e9/nsLegacy, 0), report.F(nsLegacy, 0), report.F(allocsLegacy, 1))

	// The real path: one pooled encode shared by every subscriber.
	nsShared, allocsShared := measure(writes, func() {
		if _, err := srv.Write("hot", value); err != nil {
			panic(err)
		}
	})
	tbl.AddRow("shared encode (srv.Write)",
		report.F(1e9/nsShared, 0), report.F(nsShared, 0), report.F(allocsShared, 1))

	tbl.AddNote("fan-out speedup: %.1fx (acceptance floor: 2.0x)", nsLegacy/nsShared)
	return tbl
}
