package experiments

import (
	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/report"
	"mobirep/internal/sim"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E17",
		Title:    "Adaptive window size: AVG of a large window, worst case of a small one",
		Artifact: "Section 9 trade-off discussion (extension)",
		Run:      runE17,
	})
}

// runE17 evaluates the adaptive window against fixed windows on both
// horns of the paper's trade-off: average expected cost under drifting
// theta (where large fixed k wins) and the adversarial flip-flop schedule
// (where small fixed k wins). The adaptive policy should land near the
// better fixed window on each, which no single fixed k can do.
func runE17(cfg Config) []*report.Table {
	model := cost.NewConnection()
	const kMin, kMax = 3, 31

	avgOpts := sim.AverageOpts{
		Periods:      cfg.scale(600, 60),
		OpsPerPeriod: cfg.scale(800, 300),
		Seed:         cfg.Seed,
	}
	avg := report.New("Drifting-theta AVG (connection model)",
		"policy", "AVG sim", "fixed-k closed form")
	rows := []struct {
		name   string
		f      sim.Factory
		theory string
	}{
		{"SW3 (= kMin)", func() core.Policy { return core.NewSW(kMin) }, report.F(analytic.AvgSWConn(kMin), 4)},
		{"SW31 (= kMax)", func() core.Policy { return core.NewSW(kMax) }, report.F(analytic.AvgSWConn(kMax), 4)},
		{"ASW(3-31)", func() core.Policy { return core.NewAdaptiveSW(kMin, kMax) }, "-"},
	}
	var adaptiveAvg, smallAvg, largeAvg float64
	for i, row := range rows {
		got := sim.EstimateAverage(row.f, model, avgOpts).Mean()
		switch i {
		case 0:
			smallAvg = got
		case 1:
			largeAvg = got
		case 2:
			adaptiveAvg = got
		}
		avg.AddRow(row.name, report.F(got, 4), row.theory)
	}
	avg.AddNote("adaptive AVG %.4f sits between SW31 (%.4f) and SW3 (%.4f), close to the large window",
		adaptiveAvg, largeAvg, smallAvg)

	cycles := cfg.scale(2000, 200)
	worst := report.New("Adversarial flip-flop schedules (connection model)",
		"policy", "schedule", "measured ratio", "fixed-k bound")
	// The small window's own tight family.
	for _, row := range []struct {
		name  string
		p     core.Policy
		bound string
	}{
		{"SW3", core.NewSW(3), report.F(analytic.CompetitiveSWConn(3), 0)},
		{"SW31", core.NewSW(31), report.F(analytic.CompetitiveSWConn(31), 0)},
		{"ASW(3-31)", core.NewAdaptiveSW(3, 31), "adapts"},
	} {
		// Evaluate each policy on BOTH adversary families; report worse.
		r3 := workload.MeasureRatio(row.p, model, workload.SWkAdversary(3, cycles))
		row.p.Reset()
		r31 := workload.MeasureRatio(row.p, model, workload.SWkAdversary(31, cycles/8+1))
		ratio := r3.Ratio
		which := "(r^2 w^2)^N"
		if r31.Ratio > ratio {
			ratio = r31.Ratio
			which = "(r^16 w^16)^N"
		}
		worst.AddRow(row.name, which, report.F(ratio, 3), row.bound)
	}
	worst.AddNote("the adaptive policy's worst measured ratio stays near the small window's bound, while SW31 pays up to 32 on its own family")
	return []*report.Table{avg, worst}
}
