package experiments

import (
	"fmt"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E18",
		Title:    "Joint reads: one connection for many data items",
		Artifact: "Section 7.2 premise, protocol realization (extension)",
		Run:      runE18,
	})
	register(Experiment{
		ID:       "E19",
		Title:    "Bursty (Markov-modulated) workloads: window size vs burst length",
		Artifact: "Section 3 workload model stressed (extension)",
		Run:      runE19,
	})
}

// runE18 measures the message savings of ReadMany on a correlated access
// pattern: a watch-list refresh reads a group of keys together.
func runE18(cfg Config) []*report.Table {
	const omega = 0.5
	steps := cfg.scale(20000, 2000)
	tbl := report.New("Watch-list workload: singleton reads vs one joint read per refresh (ST1 mode)",
		"group size", "steps", "singleton msg cost", "batched msg cost", "saving")
	for _, group := range []int{2, 4, 8, 16} {
		rng := stats.NewRNG(cfg.Seed + uint64(group))
		pattern := workload.CorrelatedWorkload(rng, group, group, steps, 0.3)

		single := runWatchList(pattern, group, false)
		batched := runWatchList(pattern, group, true)
		sc := single.MessageCost(omega)
		bc := batched.MessageCost(omega)
		tbl.AddRow(report.I(group), report.I(steps),
			report.F(sc, 1), report.F(bc, 1), report.Pct(1-bc/sc))
	}
	tbl.AddNote("ST1 mode isolates the batching effect: every refresh is fully remote")
	tbl.AddNote("the batch collapses a refresh's g message pairs into one pair: saving -> 1 - 1/g")

	// Under SWk the group gets cached during read runs; batching then only
	// pays off on the misses, so the saving is smaller but still real.
	tbl2 := report.New("Same workload under SW5 (copies allocated during read runs)",
		"group size", "singleton msg cost", "batched msg cost", "saving")
	for _, group := range []int{4, 16} {
		rng := stats.NewRNG(cfg.Seed + 100 + uint64(group))
		pattern := workload.CorrelatedWorkload(rng, group, group, steps, 0.3)
		single := runWatchListMode(pattern, group, false, replica.SW(5))
		batched := runWatchListMode(pattern, group, true, replica.SW(5))
		sc, bc := single.MessageCost(omega), batched.MessageCost(omega)
		tbl2.AddRow(report.I(group), report.F(sc, 1), report.F(bc, 1), report.Pct(1-bc/sc))
	}
	return []*report.Table{tbl, tbl2}
}

func runWatchList(pattern []workload.CorrelatedStep, keys int, batch bool) replica.MeterSnapshot {
	return runWatchListMode(pattern, keys, batch, replica.Static1())
}

func runWatchListMode(pattern []workload.CorrelatedStep, keys int, batch bool, mode replica.Mode) replica.MeterSnapshot {
	a, b := transport.NewMemPair()
	srv, err := replica.NewServer(db.NewStore(), mode)
	if err != nil {
		panic(err)
	}
	meter := srv.Attach(a).Meter()
	cli, err := replica.NewClient(b, mode)
	if err != nil {
		panic(err)
	}
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("k%d", i)
		srv.Write(names[i], []byte("seed"))
	}
	for _, st := range pattern {
		if len(st.ReadKeys) == 0 {
			if _, err := srv.Write(names[st.WriteKey], []byte("v")); err != nil {
				panic(err)
			}
			continue
		}
		if batch {
			group := make([]string, len(st.ReadKeys))
			for i, k := range st.ReadKeys {
				group[i] = names[k]
			}
			if _, err := cli.ReadMany(group); err != nil {
				panic(err)
			}
		} else {
			for _, k := range st.ReadKeys {
				if _, err := cli.Read(names[k]); err != nil {
					panic(err)
				}
			}
		}
	}
	return meter.Snapshot().Add(cli.Meter().Snapshot())
}

// runE19 sweeps burst length against window size: short bursts favor
// small windows and statics matched to the mean, long bursts reward
// windows (and the adaptive policy) that can follow each regime.
func runE19(cfg Config) []*report.Table {
	model := cost.NewConnection()
	burstCfg := workload.BurstyConfig{ThetaA: 0.1, ThetaB: 0.9}
	n := cfg.scale(400000, 40000)

	policies := []struct {
		name string
		f    sim.Factory
	}{
		{"ST1", func() core.Policy { return core.NewST1() }},
		{"ST2", func() core.Policy { return core.NewST2() }},
		{"SW3", func() core.Policy { return core.NewSW(3) }},
		{"SW9", func() core.Policy { return core.NewSW(9) }},
		{"SW31", func() core.Policy { return core.NewSW(31) }},
		{"ASW(3-31)", func() core.Policy { return core.NewAdaptiveSW(3, 31) }},
	}
	cols := []string{"mean burst len"}
	for _, p := range policies {
		cols = append(cols, p.name)
	}
	tbl := report.New("Cost per request on two-regime bursty workloads (theta 0.1 <-> 0.9)", cols...)
	for _, burstLen := range []int{5, 20, 100, 1000, 10000} {
		burstCfg.SwitchProb = 1 / float64(burstLen)
		rng := stats.NewRNG(cfg.Seed + uint64(burstLen))
		s, _ := workload.Bursty(rng, burstCfg, n)
		row := []string{report.I(burstLen)}
		for _, p := range policies {
			res := sim.Replay(p.f(), model, s, 1000)
			row = append(row, report.F(res.PerOp(), 4))
		}
		tbl.AddRow(row...)
	}
	tbl.AddNote("with theta jumping between 0.1 and 0.9, an oracle tracking each regime pays ~0.10/request")
	tbl.AddNote("short bursts (<~ window) are noise the window smooths over; long bursts are regimes the window follows: every window has a burst length it handles worst")
	tbl.AddNote("the adaptive window stays near the best fixed k at both extremes of the sweep; at intermediate burst lengths it pays a tracking penalty (its k oscillates with the regime)")

	// Exact product-chain values validate the simulated sweep at one
	// burst length for the enumerable policies.
	exact := report.New("Exact (policy x regime product chain) vs simulated, burst length 100",
		"policy", "exact", "simulated", "±CI95 (batch means)", "eff. samples")
	params := analytic.BurstyParams{ThetaA: 0.1, ThetaB: 0.9, SwitchProb: 0.01}
	rng := stats.NewRNG(cfg.Seed + 777)
	s, _ := workload.Bursty(rng, workload.BurstyConfig(params), n)
	for _, row := range []struct {
		name string
		mk   func() core.Enumerable
	}{
		{"SW3", func() core.Enumerable { return core.NewSW(3) }},
		{"SW9", func() core.Enumerable { return core.NewSW(9) }},
		{"T1(7)", func() core.Enumerable { return core.NewT1(7) }},
	} {
		ex, err := analytic.BurstyExpected(row.mk(), params, model)
		if err != nil {
			panic(err)
		}
		// Per-step cost series for honest (batch-means) error bars: the
		// series is correlated through both the window and the regime.
		p := row.mk()
		series := make([]float64, 0, len(s))
		for _, op := range s {
			series = append(series, model.StepCost(p.Apply(op)))
		}
		series = series[1000:] // warmup
		bm, err := stats.BatchMeans(series, 50)
		if err != nil {
			panic(err)
		}
		ess, err := stats.EffectiveSampleSize(series, 50)
		if err != nil {
			panic(err)
		}
		exact.AddRow(row.name, report.F(ex, 4), report.F(bm.Mean(), 4),
			report.F(bm.CI95(), 4), report.I(int(ess)))
	}
	exact.AddNote("no closed form exists for bursty input; the product chain gives exact values anyway")
	exact.AddNote("bursty cost series are heavily autocorrelated: the effective sample count is a small fraction of the request count, which is why the CIs are wide")
	return []*report.Table{tbl, exact}
}
