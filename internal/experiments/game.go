package experiments

import (
	"math"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/report"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E20",
		Title:    "Mechanized competitive analysis: exact ratios from the adversary game",
		Artifact: "Theorems 4, 11, 12 re-derived; new exact factors (extension)",
		Run:      runE20,
	})
}

// runE20 re-derives every competitiveness factor in the paper by solving
// the policy-vs-adversary mean-payoff game exactly (Karp's maximum cycle
// mean + binary search), then computes factors the paper never analyzed.
func runE20(cfg Config) []*report.Table {
	_ = cfg // the game is exact; no workload scale applies

	rederive := report.New("Paper factors re-derived by the game solver",
		"policy", "model", "paper factor", "game solver", "match")
	type row struct {
		p     core.Enumerable
		m     cost.Model
		name  string
		model string
		paper float64
	}
	rows := []row{
		{core.NewSW(1), cost.NewConnection(), "SW1", "connection", 2},
		{core.NewSW(3), cost.NewConnection(), "SW3", "connection", 4},
		{core.NewSW(7), cost.NewConnection(), "SW7", "connection", 8},
		{core.NewSW(1), cost.NewMessage(0.5), "SW1", "message w=0.5", analytic.CompetitiveSW1Msg(0.5)},
		{core.NewSW(3), cost.NewMessage(0.5), "SW3", "message w=0.5", analytic.CompetitiveSWMsg(3, 0.5)},
		{core.NewSW(5), cost.NewMessage(1), "SW5", "message w=1.0", analytic.CompetitiveSWMsg(5, 1)},
		{core.NewT1(4), cost.NewConnection(), "T1(4)", "connection", 5},
		{core.NewT2(4), cost.NewConnection(), "T2(4)", "connection", 5},
	}
	for _, r := range rows {
		got, err := analytic.CompetitiveRatio(r.p, r.m, 64, 1e-7)
		if err != nil {
			panic(err)
		}
		rederive.AddRow(r.name, r.model, report.F(r.paper, 3), report.F(got, 3),
			boolMark(math.Abs(got-r.paper) < 1e-4))
	}
	rederive.AddNote("the game solver knows nothing of the paper's proofs: it searches all adversary strategies over the product state space")

	fresh := report.New("Exact factors the paper never derived",
		"policy", "model", "exact competitive ratio", "context")
	freshRows := []struct {
		p       core.Enumerable
		m       cost.Model
		name    string
		model   string
		context string
	}{
		{core.NewT1(4), cost.NewMessage(0.5), "T1(4)", "message w=0.5", "T family analyzed only in the connection model"},
		{core.NewT2(4), cost.NewMessage(0.5), "T2(4)", "message w=0.5", ""},
		{core.NewEvenSW(2), cost.NewConnection(), "SWe2", "connection", "tie-holding even window (excluded by 'k odd')"},
		{core.NewEvenSW(4), cost.NewConnection(), "SWe4", "connection", ""},
		{core.NewEvenSW(6), cost.NewConnection(), "SWe6", "connection", ""},
		{core.NewCacheInvalidate(), cost.NewMessage(0.5), "CacheInv", "message w=0.5", "callback invalidation == SW1: factor must be 1+2w"},
	}
	for _, r := range freshRows {
		got, err := analytic.CompetitiveRatio(r.p, r.m, 64, 1e-7)
		if err != nil {
			panic(err)
		}
		fresh.AddRow(r.name, r.model, report.F(got, 4), r.context)
	}
	fresh.AddNote("finding: SWe(k)'s exact factor is k+2 — the SAME as SW(k+1)'s — while E16 shows SWe(k) beats SW(k+1) on expected cost at every theta tested: the tie-holding even window weakly dominates the next odd window")
	fresh.AddNote("CacheInv at 1+2w = 2.0 re-confirms the callback-invalidation identity through a third independent method")

	witnesses := report.New("Adversarial families DISCOVERED by the game (witness cycles)",
		"policy", "model", "extracted cycle", "ratio it forces", "bound")
	for _, r := range []struct {
		p     core.Enumerable
		fresh func() core.Policy
		m     cost.Model
		name  string
		model string
		bound float64
	}{
		{core.NewSW(3), func() core.Policy { return core.NewSW(3) }, cost.NewConnection(), "SW3", "connection", 4},
		{core.NewSW(5), func() core.Policy { return core.NewSW(5) }, cost.NewConnection(), "SW5", "connection", 6},
		{core.NewSW(1), func() core.Policy { return core.NewSW(1) }, cost.NewMessage(0.5), "SW1", "message w=0.5", analytic.CompetitiveSW1Msg(0.5)},
		{core.NewT1(3), func() core.Policy { return core.NewT1(3) }, cost.NewConnection(), "T1(3)", "connection", 4},
	} {
		cycle, _, err := analytic.WorstSchedule(r.p, r.m, r.bound-0.05)
		if err != nil {
			panic(err)
		}
		reps := 4000 / len(cycle)
		res := workload.MeasureRatio(r.fresh(), r.m, cycle.Repeat(reps))
		witnesses.AddRow(r.name, r.model, cycle.String(), report.F(res.Ratio, 3), report.F(r.bound, 3))
	}
	witnesses.AddNote("the solver never saw the paper's hand-built families; it re-invents them (up to rotation) from the game graph")

	statics := report.New("Non-competitiveness confirmed by the game",
		"policy", "result at limit 64")
	for _, p := range []core.Enumerable{core.NewST1(), core.NewST2()} {
		got, err := analytic.CompetitiveRatio(p, cost.NewConnection(), 64, 1e-6)
		if err != nil {
			panic(err)
		}
		v := report.F(got, 1)
		if math.IsInf(got, 1) {
			v = "+Inf (not competitive)"
		}
		statics.AddRow(p.Name(), v)
	}
	return []*report.Table{rederive, fresh, witnesses, statics}
}
