package experiments

import (
	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/db"
	"mobirep/internal/multi"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/sched"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E09",
		Title:    "Competitive modifications T1m and T2m of the static methods",
		Artifact: "Section 7.1",
		Run:      runE09,
	})
	register(Experiment{
		ID:       "E10",
		Title:    "Worked numbers from the conclusions section",
		Artifact: "Section 9",
		Run:      runE10,
	})
	register(Experiment{
		ID:       "E11",
		Title:    "Multi-object allocation",
		Artifact: "Section 7.2",
		Run:      runE11,
	})
	register(Experiment{
		ID:       "E12",
		Title:    "Period model converges to the AVG integral",
		Artifact: "Section 3 (definition of average expected cost)",
		Run:      runE12,
	})
	register(Experiment{
		ID:       "E13",
		Title:    "Distributed protocol reproduces the simulator's cost exactly",
		Artifact: "Section 4 (protocol); validation of the whole stack",
		Run:      runE13,
	})
}

// runE09 validates the T1m expected-cost formula, its competitiveness on
// the (r^m w) family, and the comparison against SWm the paper makes.
func runE09(cfg Config) []*report.Table {
	model := cost.NewConnection()
	ops := cfg.scale(200000, 10000)

	exp := report.New("T1m expected cost, connection model: (1-t) + (1-t)^m (2t-1)",
		"m", "theta", "T1 theory", "T1 sim", "ST1 (floor)", "SW_m theory", "T1 <= SWm")
	for _, m := range []int{3, 7, 15} {
		for _, theta := range []float64{0.55, 0.65, 0.75, 0.9} {
			m, theta := m, theta
			theory := analytic.ExpT1Conn(m, theta)
			got := sim.EstimateExpected(func() core.Policy { return core.NewT1(m) }, model,
				sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: cfg.Seed}).Mean()
			swm := analytic.ExpSWConn(m, theta)
			exp.AddRow(report.I(m), report.F(theta, 2), report.F(theory, 5),
				report.F(got, 5), report.F(analytic.ExpST1Conn(theta), 5),
				report.F(swm, 5), boolMark(theory <= swm+1e-12))
		}
	}
	exp.AddNote("for theta > 0.5, T1m sits between ST1 and SWm: near-static cost, bounded worst case")

	cycles := cfg.scale(2000, 100)
	comp := report.New("T family competitiveness (both (m+1)-competitive)",
		"algorithm", "bound m+1", "ratio on its adversary family")
	for _, m := range []int{3, 7, 15} {
		r1 := workload.MeasureRatio(core.NewT1(m), model, workload.T1Adversary(m, cycles))
		comp.AddRow("T1("+report.I(m)+")", report.I(m+1), report.F(r1.Ratio, 4))
		r2 := workload.MeasureRatio(core.NewT2(m), model, workload.T2Adversary(m, cycles))
		comp.AddRow("T2("+report.I(m)+")", report.I(m+1), report.F(r2.Ratio, 4))
	}

	worked := report.New("Paper claim: T1(15) at theta=0.75 within 4% of the optimum",
		"quantity", "value")
	opt := analytic.MinExpectedConn(0.75)
	t1 := analytic.ExpT1Conn(15, 0.75)
	worked.AddRow("optimum min(t, 1-t)", report.F(opt, 6))
	worked.AddRow("EXP T1(15)", report.F(t1, 6))
	worked.AddRow("relative gap", report.Pct(t1/opt-1))
	worked.AddRow("within 4%", boolMark(t1/opt-1 <= 0.04))
	return []*report.Table{exp, comp, worked}
}

// runE10 reproduces every number quoted in the conclusions.
func runE10(cfg Config) []*report.Table {
	tbl := report.New("Section 9 worked numbers", "claim", "computed", "holds")
	g15 := analytic.AvgSWConn(15)/analytic.OptimumAvgConn - 1
	tbl.AddRow("SW15 AVG within 6% of optimum (connection)", report.Pct(g15), boolMark(g15 <= 0.06))
	g9 := analytic.AvgSWConn(9)/analytic.OptimumAvgConn - 1
	tbl.AddRow("SW9 AVG within 10% of optimum (connection)", report.Pct(g9), boolMark(g9 <= 0.10))
	tbl.AddRow("SW9 is 10-competitive", report.F(analytic.CompetitiveSWConn(9), 0),
		boolMark(analytic.CompetitiveSWConn(9) == 10))
	k45 := analytic.MinOddKBeatingSW1(0.45)
	tbl.AddRow("omega=0.45: SWk beats SW1 only for k >= 39", report.I(k45), boolMark(k45 == 39))
	k80 := analytic.MinOddKBeatingSW1(0.8)
	tbl.AddRow("omega=0.8: SWk beats SW1 only for k >= 7", report.I(k80), boolMark(k80 == 7))
	t1gap := analytic.ExpT1Conn(15, 0.75)/analytic.MinExpectedConn(0.75) - 1
	tbl.AddRow("T1(15) at theta=0.75 within 4% of optimum", report.Pct(t1gap), boolMark(t1gap <= 0.04))

	// Simulation spot-check of the k=9 average.
	model := cost.NewConnection()
	got := sim.EstimateAverage(func() core.Policy { return core.NewSW(9) }, model,
		sim.AverageOpts{Periods: cfg.scale(800, 80), OpsPerPeriod: cfg.scale(500, 200), Seed: cfg.Seed}).Mean()
	tbl.AddNote("simulated AVG SW9 = %.4f (theory %.4f)", got, analytic.AvgSWConn(9))
	return []*report.Table{tbl}
}

// runE11 reproduces the section 7.2 multi-object method: the four
// two-object static schemes, the exact optimum on a frequency grid, and
// the window-based dynamic method tracking a drifting workload.
func runE11(cfg Config) []*report.Table {
	x, y := multi.NewMask(0), multi.NewMask(1)
	model := multi.ConnCost{}

	// Table 1: the paper's four schemes on a representative instance.
	freqs := multi.FreqTable{
		{Kind: multi.Read, Objects: x}:      6,
		{Kind: multi.Read, Objects: y}:      1,
		{Kind: multi.Read, Objects: x | y}:  2,
		{Kind: multi.Write, Objects: x}:     1,
		{Kind: multi.Write, Objects: y}:     5,
		{Kind: multi.Write, Objects: x | y}: 1,
	}
	schemes := report.New("Two-object static schemes (connection model)",
		"scheme", "cached at MC", "expected cost/op")
	for _, s := range []struct {
		name  string
		alloc multi.Mask
	}{
		{"ST1 (neither)", 0},
		{"ST1,2 (y only)", y},
		{"ST2,1 (x only)", x},
		{"ST2 (both)", x | y},
	} {
		schemes.AddRow(s.name, s.alloc.String(), report.F(multi.ExpectedCost(freqs, s.alloc, model), 4))
	}
	best, bestCost := multi.OptimalStatic(freqs, 2, model)
	schemes.AddNote("optimal static: cache %v at cost %.4f", best, bestCost)

	// Table 2: greedy vs exhaustive on random instances.
	rng := stats.NewRNG(cfg.Seed + 7)
	quality := report.New("Greedy vs exhaustive optimum on random joint instances",
		"objects", "classes", "optimal cost", "greedy cost", "gap")
	for _, n := range []int{4, 6, 8} {
		f := randomFreqs(rng, n, 4*n)
		_, oc := multi.OptimalStatic(f, n, model)
		_, gc := multi.Greedy(f, n, model)
		gap := 0.0
		if oc > 0 {
			gap = gc/oc - 1
		}
		quality.AddRow(report.I(n), report.I(len(f)), report.F(oc, 4), report.F(gc, 4), report.Pct(gap))
	}

	// Table 3: the dynamic window method under phase drift.
	dyn := multi.NewDynamic(2, 200, 50, model)
	phases := []multi.FreqTable{
		{ // phase A: x read-heavy, y write-heavy -> cache x
			{Kind: multi.Read, Objects: x}: 8, {Kind: multi.Write, Objects: x}: 1,
			{Kind: multi.Read, Objects: y}: 1, {Kind: multi.Write, Objects: y}: 8,
		},
		{ // phase B: reversed -> cache y
			{Kind: multi.Read, Objects: x}: 1, {Kind: multi.Write, Objects: x}: 8,
			{Kind: multi.Read, Objects: y}: 8, {Kind: multi.Write, Objects: y}: 1,
		},
	}
	opsPerPhase := cfg.scale(50000, 5000)
	drift := report.New("Dynamic window method under drifting frequencies",
		"phase", "static optimum (oracle)", "dynamic per-op", "allocation at phase end")
	for pi, f := range phases {
		start := dyn.Ops()
		startCost := dyn.Cost()
		samplePhase(rng, f, opsPerPhase, dyn)
		perOp := (dyn.Cost() - startCost) / float64(dyn.Ops()-start)
		_, oc := multi.OptimalStatic(f, 2, model)
		drift.AddRow(report.I(pi), report.F(oc, 4), report.F(perOp, 4), dyn.Alloc().String())
	}
	drift.AddNote("the dynamic method re-solves every 50 ops from a 200-op window and converges to each phase's optimum")
	return []*report.Table{schemes, quality, drift}
}

func randomFreqs(rng *stats.RNG, n, classes int) multi.FreqTable {
	f := make(multi.FreqTable)
	for c := 0; c < classes; c++ {
		var m multi.Mask
		for id := 0; id < n; id++ {
			if rng.Bernoulli(0.35) {
				m |= multi.NewMask(id)
			}
		}
		if m == 0 {
			m = multi.NewMask(rng.Intn(n))
		}
		kind := multi.Read
		if rng.Bernoulli(0.5) {
			kind = multi.Write
		}
		f[multi.Class{Kind: kind, Objects: m}] += 1 + rng.Float64()*9
	}
	return f
}

func samplePhase(rng *stats.RNG, f multi.FreqTable, ops int, dyn *multi.Dynamic) {
	// Canonical class order: building the sampling arrays from raw map
	// iteration would map each RNG draw to a different class per run.
	classes := f.Classes()
	weights := make([]float64, 0, len(f))
	total := 0.0
	for _, c := range classes {
		weights = append(weights, f[c])
		total += f[c]
	}
	for i := 0; i < ops; i++ {
		xv := rng.Float64() * total
		pick := classes[len(classes)-1]
		for j, w := range weights {
			if xv < w {
				pick = classes[j]
				break
			}
			xv -= w
		}
		dyn.Apply(multi.Op{Kind: pick.Kind, Objects: pick.Objects})
	}
}

// runE12 shows the period model of section 3 converging to the AVG
// integral as the number of periods grows.
func runE12(cfg Config) []*report.Table {
	model := cost.NewConnection()
	k := 9
	theory := analytic.AvgSWConn(k)
	tbl := report.New("Period model convergence to AVG_SW9 = 1/4 + 1/44",
		"periods", "ops/period", "measured", "theory", "abs error")
	for _, periods := range []int{20, 100, 500, cfg.scale(2500, 1000)} {
		got := sim.EstimateAverage(func() core.Policy { return core.NewSW(k) }, model,
			sim.AverageOpts{Periods: periods, OpsPerPeriod: 400, Trials: 8, Seed: cfg.Seed}).Mean()
		tbl.AddRow(report.I(periods), "400", report.F(got, 5), report.F(theory, 5),
			report.F(abs(got-theory), 5))
	}
	tbl.AddNote("each period draws theta ~ U(0,1); the per-request cost averages to the integral of EXP over theta")
	return []*report.Table{tbl}
}

// runE13 drives the full distributed stack (client, server, wire protocol,
// in-memory transport, database, cache) with a Poisson workload and
// compares its metered traffic against the simulator and the closed forms.
func runE13(cfg Config) []*report.Table {
	tbl := report.New("Distributed protocol vs simulator vs theory (message model, omega=0.5)",
		"k", "theta", "ops", "protocol cost", "simulator cost", "theory EXP*ops", "protocol==sim")
	const omega = 0.5
	ops := cfg.scale(20000, 2000)
	for _, k := range []int{1, 3, 9} {
		for _, theta := range []float64{0.25, 0.5, 0.75} {
			rng := stats.NewRNG(cfg.Seed + uint64(k*1000) + uint64(theta*100))
			seq := workload.StripTimes(workload.PoissonMerged(rng, 1-theta, theta, ops))

			a, b := transport.NewMemPair()
			srv, err := replica.NewServer(db.NewStore(), replica.SW(k))
			if err != nil {
				panic(err)
			}
			serverMeter := srv.Attach(a).Meter()
			cli, err := replica.NewClient(b, replica.SW(k))
			if err != nil {
				panic(err)
			}
			if _, err := srv.Write("x", []byte("seed")); err != nil {
				panic(err)
			}
			for _, op := range seq {
				if op == sched.Read {
					if _, err := cli.Read("x"); err != nil {
						panic(err)
					}
				} else {
					if _, err := srv.Write("x", []byte("v")); err != nil {
						panic(err)
					}
				}
			}
			combined := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
			protoCost := combined.MessageCost(omega)
			simCost := sim.Replay(core.NewSW(k), cost.NewMessage(omega), seq, 0).Cost
			theory := analytic.ExpSWMsg(k, theta, omega) * float64(len(seq))
			tbl.AddRow(report.I(k), report.F(theta, 2), report.I(len(seq)),
				report.F(protoCost, 1), report.F(simCost, 1), report.F(theory, 1),
				boolMark(abs(protoCost-simCost) < 1e-6))
		}
	}
	tbl.AddNote("protocol and simulator agree exactly; theory matches up to Poisson sampling noise")
	tbl.AddNote("the seed write primes the store and is not part of the measured schedule... it costs nothing (no copy)")
	return []*report.Table{tbl}
}
