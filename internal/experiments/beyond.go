package experiments

import (
	"fmt"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/sched"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/workload"
)

// Experiments beyond the paper's own evaluation: baseline comparisons
// against the section 8 related work, protocol behaviour with a fleet of
// mobile clients, and the cold-start/window-parity analyses the paper's
// "for ease of analysis" assumptions leave open.

func init() {
	register(Experiment{
		ID:       "E14",
		Title:    "Baselines from the related work: callback invalidation and EWMA estimators",
		Artifact: "Section 8 comparison (extension)",
		Run:      runE14,
	})
	register(Experiment{
		ID:       "E15",
		Title:    "One stationary computer serving a fleet of heterogeneous mobile clients",
		Artifact: "Section 3 model, many-MC deployment (extension)",
		Run:      runE15,
	})
	register(Experiment{
		ID:       "E16",
		Title:    "Cold-start transients and the odd-window assumption",
		Artifact: "Section 4 'k is odd' and initial-window choices (extension)",
		Run:      runE16,
	})
}

// runE14 compares the sliding windows against the CDVM-style baselines:
// callback invalidation (provably identical to SW1) and EWMA estimators,
// on all three measures.
func runE14(cfg Config) []*report.Table {
	const omega = 0.5
	model := cost.NewMessage(omega)

	// Table 1: expected cost at fixed theta — exact (Markov) for the
	// finite-state policies, simulated for EWMA.
	exp := report.New("Expected cost at fixed theta (message model, omega=0.5)",
		"theta", "SW1 exact", "CacheInv exact", "SW9 exact", "EWMA(0.05) sim", "EWMA(0.30) sim")
	ops := cfg.scale(150000, 10000)
	for _, theta := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		sw1, err := analytic.MarkovExpected(core.NewSW(1), theta, model)
		if err != nil {
			panic(err)
		}
		ci, err := analytic.MarkovExpected(core.NewCacheInvalidate(), theta, model)
		if err != nil {
			panic(err)
		}
		sw9, err := analytic.MarkovExpected(core.NewSW(9), theta, model)
		if err != nil {
			panic(err)
		}
		ewmaSlow := sim.EstimateExpected(func() core.Policy { return core.NewEWMA(0.05) },
			model, sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: cfg.Seed}).Mean()
		ewmaFast := sim.EstimateExpected(func() core.Policy { return core.NewEWMA(0.3) },
			model, sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: cfg.Seed + 1}).Mean()
		exp.AddRow(report.F(theta, 2), report.F(sw1, 4), report.F(ci, 4),
			report.F(sw9, 4), report.F(ewmaSlow, 4), report.F(ewmaFast, 4))
	}
	exp.AddNote("CacheInv equals SW1 to machine precision: callback invalidation IS the window of size one")
	exp.AddNote("a slow EWMA approaches the ideal static choice at fixed theta, like a large window")

	// Table 2: AVG under drifting theta.
	opts := sim.AverageOpts{
		Periods:      cfg.scale(600, 60),
		OpsPerPeriod: cfg.scale(500, 200),
		Seed:         cfg.Seed,
	}
	avg := report.New("Average expected cost under drifting theta",
		"policy", "AVG sim", "closed form (if any)")
	for _, row := range []struct {
		name   string
		f      sim.Factory
		theory string
	}{
		{"SW1", func() core.Policy { return core.NewSW(1) }, report.F(analytic.AvgSW1Msg(omega), 4)},
		{"SW9", func() core.Policy { return core.NewSW(9) }, report.F(analytic.AvgSWMsg(9, omega), 4)},
		{"CacheInv", func() core.Policy { return core.NewCacheInvalidate() }, report.F(analytic.AvgSW1Msg(omega), 4)},
		{"EWMA(0.05)", func() core.Policy { return core.NewEWMA(0.05) }, "-"},
		{"EWMA(0.30)", func() core.Policy { return core.NewEWMA(0.3) }, "-"},
		{"EWMA(0.10, band 0.35-0.65)", func() core.Policy { return core.NewEWMABand(0.1, 0.35, 0.65) }, "-"},
	} {
		got := sim.EstimateAverage(row.f, model, opts).Mean()
		avg.AddRow(row.name, report.F(got, 4), row.theory)
	}

	// Table 3: worst case. The EWMA has no competitive bound; show the
	// measured ratio growing with schedule scale on its own adversary
	// (pin the estimate at the threshold, then alternate).
	worst := report.New("Worst case: windows are competitive, estimators are not",
		"policy", "adversary", "cycles", "measured ratio", "bound")
	cycles := cfg.scale(1000, 100)
	res := workload.MeasureRatio(core.NewSW(9), cost.NewConnection(), workload.SWkAdversary(9, cycles))
	worst.AddRow("SW9", "(r^5 w^5)^N", report.I(cycles), report.F(res.Ratio, 3),
		report.F(analytic.CompetitiveSWConn(9), 0))
	for _, n := range []int{10, 100, cfg.scale(1000, 300)} {
		s := ewmaAdversary(0.05, n)
		res := workload.MeasureRatio(core.NewEWMA(0.05), cost.NewConnection(), s)
		worst.AddRow("EWMA(0.05)", "pin-then-flip", report.I(n), report.F(res.Ratio, 3), "none (grows)")
	}
	worst.AddNote("the EWMA's long memory costs it: after a long read phase an adversary issues writes, each propagated, until the estimate crosses 1/2 — about ln2/alpha writes — while the offline optimum drops the copy immediately")
	return []*report.Table{exp, avg, worst}
}

// ewmaAdversary builds a schedule that exploits the estimator's memory:
// long read runs to drive the estimate low, then write bursts that the
// policy keeps absorbing with a copy held.
func ewmaAdversary(alpha float64, cycles int) sched.Schedule {
	// Enough reads to drive the estimate near 0, then enough writes to
	// cross 0.5 (~ln2/alpha), repeated.
	readRun := int(3 / alpha)
	writeRun := int(0.8/alpha) + 1
	cycle := sched.Concat(sched.Block(sched.Read, readRun), sched.Block(sched.Write, writeRun))
	return cycle.Repeat(cycles)
}

// runE15 runs one server against a fleet of clients with heterogeneous
// read rates and verifies that each client's measured cost matches its
// own theta's closed form — the per-(client, key) independence the
// protocol promises.
func runE15(cfg Config) []*report.Table {
	const k = 5
	const omega = 0.5
	tbl := report.New("Fleet of mobile clients, one stationary computer (SW5, message model)",
		"client", "theta (own mix)", "requests", "measured cost/request", "EXP theory", "abs error")

	store := db.NewStore()
	srv, err := replica.NewServer(store, replica.SW(k))
	if err != nil {
		panic(err)
	}
	srv.Write("x", []byte("seed"))

	// Heterogeneous fleet: each client's relevant-request stream mixes
	// its own reads with the globally shared writes. To keep each
	// client's theta exact, drive each client with its own interleaving.
	thetas := []float64{0.15, 0.35, 0.5, 0.65, 0.85}
	ops := cfg.scale(30000, 3000)
	for ci, theta := range thetas {
		a, b := transport.NewMemPair()
		meter := srv.Attach(a).Meter()
		cli, err := replica.NewClient(b, replica.SW(k))
		if err != nil {
			panic(err)
		}
		key := fmt.Sprintf("item-%d", ci)
		srv.Write(key, []byte("seed"))
		rng := stats.NewRNG(cfg.Seed + uint64(ci))
		seq := workload.Bernoulli(rng, theta, ops)
		for _, op := range seq {
			if op == sched.Read {
				if _, err := cli.Read(key); err != nil {
					panic(err)
				}
			} else {
				if _, err := srv.Write(key, []byte("v")); err != nil {
					panic(err)
				}
			}
		}
		total := meter.Snapshot().Add(cli.Meter().Snapshot())
		perOp := total.MessageCost(omega) / float64(ops)
		theory := analytic.ExpSWMsg(k, theta, omega)
		tbl.AddRow(fmt.Sprintf("MC-%d", ci), report.F(theta, 2), report.I(ops),
			report.F(perOp, 4), report.F(theory, 4), report.F(abs(perOp-theory), 4))
	}
	tbl.AddNote("every client converges to its own theta's expected cost; windows are per-(client,key)")
	tbl.AddNote("writes to a key propagate only to the clients currently holding that key's copy")
	return []*report.Table{tbl}
}

// runE16 quantifies two things the paper assumes away: how long the
// cold-start transient lasts (initial window all-writes vs all-reads) and
// what even window sizes with tie-holding would do.
func runE16(cfg Config) []*report.Table {
	model := cost.NewConnection()
	theta := 0.3

	trans := report.New("Cold-start transient of SW9 at theta=0.3 (exact, connection model)",
		"request #", "EXP from all-writes window", "EXP from all-reads window", "steady state")
	cw, err := analytic.BuildChain(core.NewSW(9), theta, model, 0)
	if err != nil {
		panic(err)
	}
	cr, err := analytic.BuildChain(core.NewSWInitial(9, sched.Read), theta, model, 0)
	if err != nil {
		panic(err)
	}
	steady := cw.SteadyCost()
	tw := cw.TransientCosts(128)
	tr := cr.TransientCosts(128)
	for _, i := range []int{0, 1, 3, 7, 15, 31, 63, 127} {
		trans.AddRow(report.I(i+1), report.F(tw[i], 5), report.F(tr[i], 5), report.F(steady, 5))
	}
	trans.AddNote("both starts converge to the same steady state within ~2 window lengths; the paper's transient-free analysis is justified")

	parity := report.New("Even windows with tie-holding vs the paper's odd windows (exact)",
		"theta", "SW3", "SWe4 (tie holds)", "SW5", "states SWe4")
	chainStates := 0
	for _, th := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		even, err := analytic.MarkovExpected(core.NewEvenSW(4), th, model)
		if err != nil {
			panic(err)
		}
		if chainStates == 0 {
			c, err := analytic.BuildChain(core.NewEvenSW(4), th, model, 0)
			if err != nil {
				panic(err)
			}
			chainStates = c.States()
		}
		parity.AddRow(report.F(th, 2),
			report.F(analytic.ExpSWConn(3, th), 5),
			report.F(even, 5),
			report.F(analytic.ExpSWConn(5, th), 5),
			report.I(chainStates))
	}
	parity.AddNote("tie-holding makes the allocation path-dependent (the copy bit joins the state: 2^4 windows x copy, 22 reachable)")
	parity.AddNote("the tie-holding even window slightly BEATS both odd neighbours at fixed theta: holding on a tie is hysteresis, which reduces allocation flapping — a small finding the paper's odd-k restriction leaves on the table")
	_ = cfg
	return []*report.Table{trans, parity}
}
