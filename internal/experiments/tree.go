package experiments

import (
	"fmt"
	"sort"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/tree"
)

func init() {
	register(Experiment{
		ID:       "E27",
		Title:    "Replica trees: read cost vs depth and MC handoff latency",
		Artifact: "Support-station hierarchy with per-key placement (section 8 discussion, extension)",
		Run:      runE27,
	})
}

// runE27 measures the two costs the tree layer introduces over the
// two-node pair.
//
// E27a: read cost vs depth. One MC reads at the leaf of a chain of 1, 2,
// and 3 stations (depth 1 is exactly the two-node pair) under a theta=0.8
// read-heavy mix, with the root applying the writes. Three placements: SW9
// edges (the paper's adaptive window at every hop), and ST2 edges with a
// T1(3) or T2(3) placement table at each relay. The interesting columns
// are where reads terminate — at the MC's own copy, at a relay's copy, or
// all the way up at the root — and the total protocol messages per read
// across every edge. A good placement keeps deep-tree reads terminating
// low even though each added level would naively add a round trip.
//
// E27b: handoff latency. On a 7-station binary tree an MC bounces among
// the four leaves while the root keeps writing; each handoff is timed
// from Handoff() to resync completion (state migrates through the common
// ancestor and is revalidated, not re-shipped). The distribution is the
// paper's motion cost made concrete. Both halves are timing-based, so
// E27 joins E23-E26 outside the byte-for-byte determinism diff
// (mobirep-bench -skip E23,E24,E25,E26,E27).
func runE27(cfg Config) []*report.Table {
	return []*report.Table{runE27Depth(cfg), runE27Handoff(cfg)}
}

func memConnect(child, parent int) (transport.Link, transport.Link, error) {
	a, b := transport.NewMemPair()
	return a, b, nil
}

func runE27Depth(cfg Config) *report.Table {
	ops := cfg.scale(4000, 600)
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}

	reg := obs.Default()
	fetchLocal := reg.Counter(`mobirep_tree_fetches_total{result="local"}`, "")
	fetchParent := reg.Counter(`mobirep_tree_fetches_total{result="parent"}`, "")

	tbl := report.New(fmt.Sprintf(
		"E27a: read cost vs tree depth — one leaf MC, theta=0.8, %d keys, %d ops",
		len(keys), ops),
		"policy", "depth", "reads", "mc-local", "relay-hit", "root-trip", "msgs/read")

	configs := []struct {
		name  string
		mode  replica.Mode
		place tree.Policy
	}{
		{"SW9 edges", replica.SW(9), tree.Policy{Kind: tree.PolicyNone}},
		{"ST2+T1(3)", replica.Static2(), tree.Policy{Kind: tree.PolicyT1, K: 3}},
		{"ST2+T2(3)", replica.Static2(), tree.Policy{Kind: tree.PolicyT2, K: 3}},
	}
	for _, tc := range configs {
		for depth := 1; depth <= 3; depth++ {
			rng := stats.NewRNG(cfg.Seed + uint64(depth)*101)
			store := db.NewStore()
			tr, err := tree.Build(tree.Chain(depth), store, tc.mode, 1, tc.place, memConnect)
			if err != nil {
				panic(fmt.Sprintf("E27a: build: %v", err))
			}
			mcEnd, stEnd := transport.NewMemPair()
			mc, err := tr.AttachMC(depth-1, mcEnd, stEnd)
			if err != nil {
				panic(fmt.Sprintf("E27a: attach: %v", err))
			}
			mc.Client.Timeout = 10 * time.Second

			local0, parent0 := fetchLocal.Load(), fetchParent.Load()
			meters := []*replica.Meter{mc.Client.Meter(), mc.Session().Meter()}
			for i := 1; i < tr.Topo.N(); i++ {
				meters = append(meters, tr.Stations[i].Client().Meter(), tr.ParentSession(i).Meter())
			}
			var before replica.MeterSnapshot
			for _, m := range meters {
				before = before.Add(m.Snapshot())
			}

			reads, mcRemote := 0, 0
			version := map[string]int{}
			for op := 0; op < ops; op++ {
				key := keys[rng.Intn(len(keys))]
				if rng.Bernoulli(0.8) {
					reads++
					held := mc.Client.HasCopy(key)
					if _, err := mc.Client.Read(key); err != nil {
						panic(fmt.Sprintf("E27a: read: %v", err))
					}
					if !held {
						mcRemote++
					}
				} else {
					version[key]++
					if _, err := tr.Stations[0].Server().Write(key,
						[]byte(fmt.Sprintf("%s#%d", key, version[key]))); err != nil {
						panic(fmt.Sprintf("E27a: write: %v", err))
					}
				}
			}
			// Let the last propagations drain before reading the meters.
			time.Sleep(20 * time.Millisecond)

			var after replica.MeterSnapshot
			for _, m := range meters {
				after = after.Add(m.Snapshot())
			}
			msgs := after.DataMsgs + after.ControlMsgs - before.DataMsgs - before.ControlMsgs
			relayHit := fetchLocal.Load() - local0
			rootTrip := fetchParent.Load() - parent0
			tbl.AddRow(tc.name, report.I(depth), report.I(reads),
				report.F(float64(reads-mcRemote)/float64(reads)*100, 1)+"%",
				report.I(int(relayHit)), report.I(int(rootTrip)),
				report.F(float64(msgs)/float64(reads), 2))
		}
	}
	tbl.AddNote("depth 1 is the plain MC/SC pair (no relays: relay-hit and root-trip are structurally 0); at depth d a cold read costs d upstream round trips, so the mc-local and relay-hit columns are what placement earns back")
	tbl.AddNote("relay-hit / root-trip: where a relay fetch terminated — served from the station's own parent-face copy vs a full trip further up; msgs/read sums data+control frames on every edge of the tree over reads")
	return tbl
}

func runE27Handoff(cfg Config) *report.Table {
	moves := cfg.scale(400, 60)
	rng := stats.NewRNG(cfg.Seed + 2700)
	store := db.NewStore()
	tr, err := tree.Build(tree.Binary(7), store, replica.Static2(), 1,
		tree.Policy{Kind: tree.PolicyNone}, memConnect)
	if err != nil {
		panic(fmt.Sprintf("E27b: build: %v", err))
	}
	leaves := tr.Topo.Leaves()
	mcEnd, stEnd := transport.NewMemPair()
	mc, err := tr.AttachMC(leaves[0], mcEnd, stEnd)
	if err != nil {
		panic(fmt.Sprintf("E27b: attach: %v", err))
	}
	mc.Client.Timeout = 10 * time.Second

	keys := []string{"a", "b", "c", "d"}
	version := map[string]int{}
	write := func(key string) {
		version[key]++
		if _, err := tr.Stations[0].Server().Write(key,
			[]byte(fmt.Sprintf("%s#%d", key, version[key]))); err != nil {
			panic(fmt.Sprintf("E27b: write: %v", err))
		}
	}
	for _, k := range keys {
		write(k)
		if _, err := mc.Client.Read(k); err != nil {
			panic(fmt.Sprintf("E27b: warm read: %v", err))
		}
	}

	durations := make([]float64, 0, moves)
	cold := 0
	for move := 0; move < moves; move++ {
		// Keep the declared state busy between moves.
		write(keys[rng.Intn(len(keys))])
		if _, err := mc.Client.Read(keys[rng.Intn(len(keys))]); err != nil {
			panic(fmt.Sprintf("E27b: read: %v", err))
		}
		to := leaves[rng.Intn(len(leaves))]
		for to == mc.Station() {
			to = leaves[rng.Intn(len(leaves))]
		}
		a, b := transport.NewMemPair()
		start := time.Now()
		done, err := mc.Handoff(to, a, b)
		if err != nil {
			panic(fmt.Sprintf("E27b: handoff: %v", err))
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			panic("E27b: handoff resync did not complete")
		}
		durations = append(durations, float64(time.Since(start).Microseconds()))
		if !mc.FinishHandoff(a) {
			cold++
		}
	}
	sort.Float64s(durations)

	tbl := report.New(fmt.Sprintf(
		"E27b: MC handoff latency — 7-station binary tree, %d moves between leaves, %d warm keys, writes in flight",
		moves, len(keys)),
		"moves", "cold", "p50 us", "p90 us", "p99 us", "max us")
	tbl.AddRow(report.I(moves), report.I(cold),
		report.F(stats.Quantile(durations, 0.50), 0),
		report.F(stats.Quantile(durations, 0.90), 0),
		report.F(stats.Quantile(durations, 0.99), 0),
		report.F(durations[len(durations)-1], 0))
	tbl.AddNote("each move is Suspend -> detach -> attach at the target leaf -> warm resync; the declared keys migrate through the common ancestor and are revalidated (NotModified) or re-shipped, never lost; cold counts fence-forced restarts (0 expected: the root never restarts here)")
	tbl.AddNote("timing-based: excluded from the byte-for-byte determinism diff alongside E23-E26")
	return tbl
}
