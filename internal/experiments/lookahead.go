package experiments

import (
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/offline"
	"mobirep/internal/report"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E21",
		Title:    "The value of foresight: receding-horizon players between online and offline",
		Artifact: "Competitive-analysis framing of section 3 quantified (extension)",
		Run:      runE21,
	})
}

// runE21 sweeps the lookahead horizon: how many future requests must a
// player see before the k+1 worst-case gap (Theorem 4) closes? The sweep
// runs on the SWk adversarial family (where foresight is worth the most)
// and on Poisson workloads (where it is worth surprisingly little).
func runE21(cfg Config) []*report.Table {
	c := offline.Ideal()

	// Adversarial: (r^5 w^5)^N, the SW9 tight family.
	cycles := cfg.scale(2000, 200)
	adv := workload.SWkAdversary(9, cycles)
	opt := offline.Cost(adv, c)
	advTbl := report.New("Lookahead on the SW9 adversarial family (r^5 w^5)^N",
		"player", "sees future", "cost / offline optimum")
	sw9 := sim.Replay(core.NewSW(9), cost.NewConnection(), adv, 0).Cost
	advTbl.AddRow("SW9 (online)", "0 requests", report.F(sw9/opt, 3))
	for _, L := range []int{1, 2, 3, 5, 6, 10, 20} {
		got := offline.LookaheadCost(adv, L, c)
		advTbl.AddRow("horizon player", report.I(L)+" requests", report.F(got/opt, 3))
	}
	advTbl.AddNote("finding: a horizon of just 2 — enough to tell whether the next request continues the current run — already recovers the whole 10x gap on this family; one request of foresight halves it")

	// Stochastic: Poisson(theta) workloads, where the memoryless future
	// is almost worthless beyond a few steps.
	n := cfg.scale(200000, 20000)
	stoTbl := report.New("Lookahead on Poisson workloads (connection model)",
		"theta", "SW9 online", "L=1", "L=4", "L=16", "offline optimum")
	stoThetas := []float64{0.2, 0.5, 0.8}
	for _, row := range gridRows(len(stoThetas), func(ci int) []string {
		theta := stoThetas[ci]
		rng := stats.NewRNG(cfg.Seed + uint64(100*theta))
		// The lookahead players need the materialized future, so this cell
		// borrows a pooled schedule buffer instead of allocating 200k ops.
		s := sim.GetSchedule(n)
		defer sim.PutSchedule(s)
		workload.FillBernoulli(rng, theta, s)
		den := float64(len(s))
		row := []string{report.F(theta, 1)}
		row = append(row, report.F(sim.Replay(core.NewSW(9), cost.NewConnection(), s, 0).Cost/den, 4))
		for _, L := range []int{1, 4, 16} {
			row = append(row, report.F(offline.LookaheadCost(s, L, c)/den, 4))
		}
		row = append(row, report.F(offline.Cost(s, c)/den, 4))
		return row
	}) {
		stoTbl.AddRow(row...)
	}
	stoTbl.AddNote("on memoryless input even L=4 sits close to the full offline optimum: the window's k+1 premium buys robustness against exactly the adversarial schedules, not the stochastic ones")
	return []*report.Table{advTbl, stoTbl}
}
