// Package experiments regenerates every figure and numbered result of the
// paper's evaluation. Each experiment pairs the closed-form prediction
// from internal/analytic with a measurement of the implemented system
// (simulator, offline optimum, or distributed protocol) and reports both
// side by side, the way EXPERIMENTS.md records them.
//
// The registry is consumed by the mobirep-bench executable and by
// bench_test.go, which exposes one benchmark per experiment.
package experiments

import (
	"fmt"
	"sort"

	"mobirep/internal/report"
)

// Config tunes how heavy the experiment runs are.
type Config struct {
	// Seed makes all measurements reproducible.
	Seed uint64
	// Quick shrinks workloads by roughly an order of magnitude; used by
	// tests and benchmarks that only need the shape, not tight CIs.
	Quick bool
}

// scale returns full when Quick is off, otherwise quick.
func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the index used by DESIGN.md and the CLI, e.g. "E01".
	ID string
	// Title is a one-line description.
	Title string
	// Artifact names the paper figure/equation/theorem reproduced.
	Artifact string
	// Run executes the experiment and returns its result tables.
	Run func(Config) []*report.Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
