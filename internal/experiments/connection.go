package experiments

import (
	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/report"
	"mobirep/internal/sched"
	"mobirep/internal/sim"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E03",
		Title:    "Expected cost per request vs theta, connection model",
		Artifact: "Equations 2 and 5; Theorems 1 and 2",
		Run:      runE03,
	})
	register(Experiment{
		ID:       "E04",
		Title:    "Average expected cost vs window size, connection model",
		Artifact: "Equations 3 and 6; Theorem 3; Corollary 1",
		Run:      runE04,
	})
	register(Experiment{
		ID:       "E05",
		Title:    "Competitive ratios, connection model",
		Artifact: "Theorem 4; section 5.3",
		Run:      runE05,
	})
}

// runE03 sweeps theta and compares measured expected cost against the
// closed forms for ST1, ST2 and SWk.
func runE03(cfg Config) []*report.Table {
	model := cost.NewConnection()
	ops := cfg.scale(200000, 10000)
	ks := []int{1, 3, 5, 9, 15}

	cols := []string{"theta", "ST1 thry", "ST1 sim", "ST2 thry", "ST2 sim"}
	for _, k := range ks {
		cols = append(cols, "SW"+report.I(k)+" thry", "SW"+report.I(k)+" sim")
	}
	tbl := report.New("EXP(theta), connection model: theory vs simulation", cols...)

	// One grid cell per theta; every cell keeps the per-policy seeds the
	// sequential sweep used, so the parallel tables are byte-identical.
	thetas := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	type cellOut struct {
		row    []string
		maxErr float64
	}
	cells := gridRun(len(thetas), func(ci int) cellOut {
		theta := thetas[ci]
		out := cellOut{row: []string{report.F(theta, 2)}}
		add := func(theory float64, f sim.Factory, seed uint64) {
			got := sim.EstimateExpected(f, model,
				sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: seed}).Mean()
			if d := abs(got - theory); d > out.maxErr {
				out.maxErr = d
			}
			out.row = append(out.row, report.F(theory, 4), report.F(got, 4))
		}
		add(analytic.ExpST1Conn(theta), func() core.Policy { return core.NewST1() }, cfg.Seed)
		add(analytic.ExpST2Conn(theta), func() core.Policy { return core.NewST2() }, cfg.Seed+1)
		for i, k := range ks {
			k := k
			add(analytic.ExpSWConn(k, theta),
				func() core.Policy { return core.NewSW(k) }, cfg.Seed+2+uint64(i))
		}
		return out
	})
	maxErr := 0.0
	for _, c := range cells {
		tbl.AddRow(c.row...)
		if c.maxErr > maxErr {
			maxErr = c.maxErr
		}
	}
	tbl.AddNote("max |sim - theory| over the whole sweep: %.5f", maxErr)
	tbl.AddNote("Theorem 2: every SWk column is >= min(ST1, ST2) at each theta")
	return []*report.Table{tbl}
}

// runE04 sweeps the window size and compares the measured average expected
// cost (drifting theta) against equation 6, reproducing the "within 6% of
// the optimum for k=15" claim.
func runE04(cfg Config) []*report.Table {
	model := cost.NewConnection()
	opts := sim.AverageOpts{
		Periods:      cfg.scale(800, 80),
		OpsPerPeriod: cfg.scale(500, 200),
		Seed:         cfg.Seed,
	}
	tbl := report.New("AVG, connection model: theory vs drifting-theta simulation",
		"algorithm", "AVG theory", "AVG sim", "above optimum (1/4)")
	type avgCell struct {
		name   string
		theory float64
		f      sim.Factory
	}
	specs := []avgCell{
		{"ST1", analytic.AvgST1Conn, func() core.Policy { return core.NewST1() }},
		{"ST2", analytic.AvgST2Conn, func() core.Policy { return core.NewST2() }},
	}
	for _, k := range []int{1, 3, 5, 9, 15, 21, 39, 95} {
		k := k
		specs = append(specs, avgCell{"SW" + report.I(k), analytic.AvgSWConn(k),
			func() core.Policy { return core.NewSW(k) }})
	}
	for _, row := range gridRows(len(specs), func(ci int) []string {
		c := specs[ci]
		got := sim.EstimateAverage(c.f, model, opts).Mean()
		return []string{c.name, report.F(c.theory, 4), report.F(got, 4),
			report.Pct(c.theory/analytic.OptimumAvgConn - 1)}
	}) {
		tbl.AddRow(row...)
	}
	tbl.AddNote("paper: k=15 comes within 6%% of the optimum; k=9 within 10%%")
	tbl.AddNote("AVG_SWk = 1/4 + 1/(4(k+2)) decreases in k; both statics sit at 1/2")
	return []*report.Table{tbl}
}

// runE05 measures competitive ratios in the connection model: the
// adversarial family achieving Theorem 4's tight k+1 factor, the
// exhaustive worst-case search for small lengths, and the unbounded ratio
// of the static methods.
func runE05(cfg Config) []*report.Table {
	model := cost.NewConnection()
	cycles := cfg.scale(2000, 100)

	tight := report.New("Theorem 4: SWk is tightly (k+1)-competitive",
		"k", "bound k+1", "ratio on (r^(n+1) w^(n+1))^N", "online cost", "offline cost")
	tightKs := []int{1, 3, 5, 9, 15}
	for _, row := range gridRows(len(tightKs), func(ci int) []string {
		k := tightKs[ci]
		res := workload.MeasureRatio(core.NewSW(k), model, workload.SWkAdversary(k, cycles))
		return []string{report.I(k), report.F(analytic.CompetitiveSWConn(k), 0),
			report.F(res.Ratio, 4), report.F(res.OnlineCost, 0), report.F(res.OfflineCost, 0)}
	}) {
		tight.AddRow(row...)
	}
	tight.AddNote("ratio -> k+1 as N grows; the excess over k+1 is the additive constant b")

	length := cfg.scale(16, 10)
	search := report.New("Exhaustive worst-case search (all schedules of length "+report.I(length)+")",
		"k", "bound k+1", "worst ratio found", "worst schedule")
	for _, k := range []int{1, 3} {
		res := workload.WorstRatio(core.NewSW(k), model, length, 2)
		search.AddRow(report.I(k), report.F(analytic.CompetitiveSWConn(k), 0),
			report.F(res.Ratio, 4), res.Schedule.String())
	}
	search.AddNote("short prefixes include warmup effects absorbed by b; no schedule can exceed k+1 asymptotically")

	statics := report.New("Section 5.3: static methods are not competitive",
		"algorithm", "schedule", "online cost", "offline cost", "ratio")
	n := cfg.scale(10000, 500)
	for _, c := range []struct {
		name  string
		p     core.Policy
		label string
		s     sched.Schedule
	}{
		{"ST1", core.NewST1(), "r^" + report.I(n), sched.Block(sched.Read, n)},
		{"ST2", core.NewST2(), "w^" + report.I(n), sched.Block(sched.Write, n)},
	} {
		res := workload.MeasureRatio(c.p, model, c.s)
		statics.AddRow(c.name, c.label, report.F(res.OnlineCost, 0),
			report.F(res.OfflineCost, 0), "+Inf")
	}
	statics.AddNote("the offline algorithm pays 0 on homogeneous schedules, so the ratio is unbounded")
	return []*report.Table{tight, search, statics}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
