package experiments

import "mobirep/internal/sim"

// The grid runner: experiments declare their sweep as independent cells —
// one (theta, policy) or (omega, row) point each — and the engine executes
// them concurrently on the shared simulator worker pool.
//
// Cells must be pure functions of their index: each derives its own seed
// (the experiments keep the exact per-cell seeds they used sequentially)
// and touches no shared state. Results land in the cell's own slot and are
// folded in declaration order, so the rendered tables are byte-identical
// to a sequential run at any parallelism — TestGridMatchesSequential holds
// the engine to that.

// gridRun evaluates cell(i) for every i in [0, n) concurrently and
// returns the results in cell order.
func gridRun[T any](n int, cell func(i int) T) []T {
	out := make([]T, n)
	sim.Fan(n, func(i int) { out[i] = cell(i) })
	return out
}

// gridRows is gridRun specialized to the common case where each cell
// produces one pre-rendered table row.
func gridRows(n int, cell func(i int) []string) [][]string {
	return gridRun(n, cell)
}
