package experiments

import (
	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/report"
	"mobirep/internal/sim"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E06",
		Title:    "Expected cost per request vs theta, message model",
		Artifact: "Equations 7, 9, 11; Theorems 5, 6, 8, 9",
		Run:      runE06,
	})
	register(Experiment{
		ID:       "E07",
		Title:    "Average expected cost vs window size, message model",
		Artifact: "Equations 8, 10, 12; Theorems 7, 10; Corollary 2",
		Run:      runE07,
	})
	register(Experiment{
		ID:       "E08",
		Title:    "Competitive ratios, message model",
		Artifact: "Theorems 11 and 12",
		Run:      runE08,
	})
}

// runE06 sweeps theta at several omegas and validates equations 7, 9 and
// the reconstructed equation 11 against simulation, plus the Theorem 9
// envelope.
func runE06(cfg Config) []*report.Table {
	ops := cfg.scale(200000, 10000)
	var tables []*report.Table
	for _, omega := range []float64{0.25, 0.5, 1.0} {
		model := cost.NewMessage(omega)
		tbl := report.New("EXP(theta), message model, omega="+report.F(omega, 2),
			"theta", "ST1 thry", "ST1 sim", "ST2 thry", "ST2 sim",
			"SW1 thry", "SW1 sim", "SW5 thry", "SW5 sim", "SW9 thry", "SW9 sim",
			"envelope min")
		maxErr := 0.0
		for _, theta := range []float64{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9} {
			row := []string{report.F(theta, 2)}
			add := func(theory float64, f sim.Factory, seed uint64) {
				got := sim.EstimateExpected(f, model,
					sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: seed}).Mean()
				if d := abs(got - theory); d > maxErr {
					maxErr = d
				}
				row = append(row, report.F(theory, 4), report.F(got, 4))
			}
			add(analytic.ExpST1Msg(theta, omega), func() core.Policy { return core.NewST1() }, cfg.Seed)
			add(analytic.ExpST2Msg(theta), func() core.Policy { return core.NewST2() }, cfg.Seed+1)
			add(analytic.ExpSW1Msg(theta, omega), func() core.Policy { return core.NewSW(1) }, cfg.Seed+2)
			add(analytic.ExpSWMsg(5, theta, omega), func() core.Policy { return core.NewSW(5) }, cfg.Seed+3)
			add(analytic.ExpSWMsg(9, theta, omega), func() core.Policy { return core.NewSW(9) }, cfg.Seed+4)
			row = append(row, report.F(analytic.MinExpectedMsg(theta, omega), 4))
			tbl.AddRow(row...)
		}
		tbl.AddNote("max |sim - theory| over the sweep: %.5f", maxErr)
		tbl.AddNote("Theorem 9: SW5 and SW9 never beat the {ST1, ST2, SW1} envelope at fixed theta")
		tables = append(tables, tbl)
	}
	return tables
}

// runE07 sweeps window size against omega for the average expected cost,
// verifying equation 12 and the Corollary 2 lower bound 1/4 + omega/8.
func runE07(cfg Config) []*report.Table {
	opts := sim.AverageOpts{
		Periods:      cfg.scale(800, 80),
		OpsPerPeriod: cfg.scale(500, 200),
		Seed:         cfg.Seed,
	}
	var tables []*report.Table
	for _, omega := range []float64{0.2, 0.5, 0.8} {
		model := cost.NewMessage(omega)
		tbl := report.New("AVG, message model, omega="+report.F(omega, 2),
			"algorithm", "AVG theory", "AVG sim", "above bound 1/4+w/8")
		bound := analytic.AvgSWMsgLowerBound(omega)
		tbl.AddRow("ST1", report.F(analytic.AvgST1Msg(omega), 4),
			report.F(sim.EstimateAverage(func() core.Policy { return core.NewST1() }, model, opts).Mean(), 4),
			report.Pct(analytic.AvgST1Msg(omega)/bound-1))
		tbl.AddRow("ST2", report.F(analytic.AvgST2Msg, 4),
			report.F(sim.EstimateAverage(func() core.Policy { return core.NewST2() }, model, opts).Mean(), 4),
			report.Pct(analytic.AvgST2Msg/bound-1))
		for _, k := range []int{1, 3, 7, 15, 39} {
			k := k
			theory := analytic.AvgSWMsg(k, omega)
			got := sim.EstimateAverage(func() core.Policy { return core.NewSW(k) }, model, opts).Mean()
			tbl.AddRow("SW"+report.I(k), report.F(theory, 4), report.F(got, 4),
				report.Pct(theory/bound-1))
		}
		tbl.AddNote("Corollary 2: AVG_SWk decreases in k toward (not reaching) %.4f", bound)
		if omega <= analytic.OmegaBreakEven {
			tbl.AddNote("omega <= 0.4: SW1 has the least AVG among all window sizes (Corollary 3)")
		} else {
			tbl.AddNote("omega > 0.4: windows k >= %d beat SW1 (Corollary 4)", analytic.MinOddKBeatingSW1(omega))
		}
		tables = append(tables, tbl)
	}
	return tables
}

// runE08 measures message-model competitive ratios on the tight families
// of Theorems 11 and 12 and runs the exhaustive search.
func runE08(cfg Config) []*report.Table {
	cycles := cfg.scale(2000, 100)
	var tables []*report.Table

	sw1 := report.New("Theorem 11: SW1 is tightly (1+2w)-competitive",
		"omega", "bound 1+2w", "ratio on (w r)^N")
	for _, omega := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res := workload.MeasureRatio(core.NewSW(1), cost.NewMessage(omega),
			workload.SW1Adversary(cycles))
		sw1.AddRow(report.F(omega, 2), report.F(analytic.CompetitiveSW1Msg(omega), 2),
			report.F(res.Ratio, 4))
	}
	tables = append(tables, sw1)

	swk := report.New("Theorem 12: SWk is tightly ((1+w/2)(k+1)+w)-competitive",
		"k", "omega", "bound", "ratio on (r^(n+1) w^(n+1))^N")
	for _, k := range []int{3, 5, 9} {
		for _, omega := range []float64{0.25, 0.5, 1} {
			res := workload.MeasureRatio(core.NewSW(k), cost.NewMessage(omega),
				workload.SWkAdversary(k, cycles))
			swk.AddRow(report.I(k), report.F(omega, 2),
				report.F(analytic.CompetitiveSWMsg(k, omega), 3), report.F(res.Ratio, 4))
		}
	}
	swk.AddNote("SW1's factor 1+2w is below SWk's for every k > 1: the worst case prefers small windows")
	tables = append(tables, swk)

	length := cfg.scale(14, 10)
	search := report.New("Exhaustive worst-case search, message model, omega=0.5 (length "+report.I(length)+")",
		"k", "bound", "worst ratio found", "worst schedule")
	for _, k := range []int{1, 3} {
		res := workload.WorstRatio(core.NewSW(k), cost.NewMessage(0.5), length, 2)
		search.AddRow(report.I(k), report.F(analytic.CompetitiveSWMsg(k, 0.5), 3),
			report.F(res.Ratio, 4), res.Schedule.String())
	}
	tables = append(tables, search)
	return tables
}
