package experiments

import (
	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/report"
	"mobirep/internal/sim"
	"mobirep/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "E06",
		Title:    "Expected cost per request vs theta, message model",
		Artifact: "Equations 7, 9, 11; Theorems 5, 6, 8, 9",
		Run:      runE06,
	})
	register(Experiment{
		ID:       "E07",
		Title:    "Average expected cost vs window size, message model",
		Artifact: "Equations 8, 10, 12; Theorems 7, 10; Corollary 2",
		Run:      runE07,
	})
	register(Experiment{
		ID:       "E08",
		Title:    "Competitive ratios, message model",
		Artifact: "Theorems 11 and 12",
		Run:      runE08,
	})
}

// runE06 sweeps theta at several omegas and validates equations 7, 9 and
// the reconstructed equation 11 against simulation, plus the Theorem 9
// envelope.
func runE06(cfg Config) []*report.Table {
	ops := cfg.scale(200000, 10000)
	omegas := []float64{0.25, 0.5, 1.0}
	thetas := []float64{0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}

	// The whole (omega, theta) sweep is one flat grid so every cell of
	// every table runs concurrently; per-cell seeds match the sequential
	// sweep, keeping the tables byte-identical.
	type cellOut struct {
		row    []string
		maxErr float64
	}
	cells := gridRun(len(omegas)*len(thetas), func(ci int) cellOut {
		omega, theta := omegas[ci/len(thetas)], thetas[ci%len(thetas)]
		model := cost.NewMessage(omega)
		out := cellOut{row: []string{report.F(theta, 2)}}
		add := func(theory float64, f sim.Factory, seed uint64) {
			got := sim.EstimateExpected(f, model,
				sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: seed}).Mean()
			if d := abs(got - theory); d > out.maxErr {
				out.maxErr = d
			}
			out.row = append(out.row, report.F(theory, 4), report.F(got, 4))
		}
		add(analytic.ExpST1Msg(theta, omega), func() core.Policy { return core.NewST1() }, cfg.Seed)
		add(analytic.ExpST2Msg(theta), func() core.Policy { return core.NewST2() }, cfg.Seed+1)
		add(analytic.ExpSW1Msg(theta, omega), func() core.Policy { return core.NewSW(1) }, cfg.Seed+2)
		add(analytic.ExpSWMsg(5, theta, omega), func() core.Policy { return core.NewSW(5) }, cfg.Seed+3)
		add(analytic.ExpSWMsg(9, theta, omega), func() core.Policy { return core.NewSW(9) }, cfg.Seed+4)
		out.row = append(out.row, report.F(analytic.MinExpectedMsg(theta, omega), 4))
		return out
	})

	var tables []*report.Table
	for oi, omega := range omegas {
		tbl := report.New("EXP(theta), message model, omega="+report.F(omega, 2),
			"theta", "ST1 thry", "ST1 sim", "ST2 thry", "ST2 sim",
			"SW1 thry", "SW1 sim", "SW5 thry", "SW5 sim", "SW9 thry", "SW9 sim",
			"envelope min")
		maxErr := 0.0
		for _, c := range cells[oi*len(thetas) : (oi+1)*len(thetas)] {
			tbl.AddRow(c.row...)
			if c.maxErr > maxErr {
				maxErr = c.maxErr
			}
		}
		tbl.AddNote("max |sim - theory| over the sweep: %.5f", maxErr)
		tbl.AddNote("Theorem 9: SW5 and SW9 never beat the {ST1, ST2, SW1} envelope at fixed theta")
		tables = append(tables, tbl)
	}
	return tables
}

// runE07 sweeps window size against omega for the average expected cost,
// verifying equation 12 and the Corollary 2 lower bound 1/4 + omega/8.
func runE07(cfg Config) []*report.Table {
	opts := sim.AverageOpts{
		Periods:      cfg.scale(800, 80),
		OpsPerPeriod: cfg.scale(500, 200),
		Seed:         cfg.Seed,
	}
	omegas := []float64{0.2, 0.5, 0.8}
	ks := []int{1, 3, 7, 15, 39}
	rowsPerOmega := 2 + len(ks)
	// Flat (omega, algorithm) grid; each cell is one table row.
	rows := gridRows(len(omegas)*rowsPerOmega, func(ci int) []string {
		omega := omegas[ci/rowsPerOmega]
		model := cost.NewMessage(omega)
		bound := analytic.AvgSWMsgLowerBound(omega)
		var name string
		var theory float64
		var f sim.Factory
		switch ri := ci % rowsPerOmega; ri {
		case 0:
			name, theory = "ST1", analytic.AvgST1Msg(omega)
			f = func() core.Policy { return core.NewST1() }
		case 1:
			name, theory = "ST2", analytic.AvgST2Msg
			f = func() core.Policy { return core.NewST2() }
		default:
			k := ks[ri-2]
			name, theory = "SW"+report.I(k), analytic.AvgSWMsg(k, omega)
			f = func() core.Policy { return core.NewSW(k) }
		}
		got := sim.EstimateAverage(f, model, opts).Mean()
		return []string{name, report.F(theory, 4), report.F(got, 4), report.Pct(theory/bound - 1)}
	})

	var tables []*report.Table
	for oi, omega := range omegas {
		bound := analytic.AvgSWMsgLowerBound(omega)
		tbl := report.New("AVG, message model, omega="+report.F(omega, 2),
			"algorithm", "AVG theory", "AVG sim", "above bound 1/4+w/8")
		for _, row := range rows[oi*rowsPerOmega : (oi+1)*rowsPerOmega] {
			tbl.AddRow(row...)
		}
		tbl.AddNote("Corollary 2: AVG_SWk decreases in k toward (not reaching) %.4f", bound)
		if omega <= analytic.OmegaBreakEven {
			tbl.AddNote("omega <= 0.4: SW1 has the least AVG among all window sizes (Corollary 3)")
		} else {
			tbl.AddNote("omega > 0.4: windows k >= %d beat SW1 (Corollary 4)", analytic.MinOddKBeatingSW1(omega))
		}
		tables = append(tables, tbl)
	}
	return tables
}

// runE08 measures message-model competitive ratios on the tight families
// of Theorems 11 and 12 and runs the exhaustive search.
func runE08(cfg Config) []*report.Table {
	cycles := cfg.scale(2000, 100)
	var tables []*report.Table

	sw1 := report.New("Theorem 11: SW1 is tightly (1+2w)-competitive",
		"omega", "bound 1+2w", "ratio on (w r)^N")
	for _, omega := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res := workload.MeasureRatio(core.NewSW(1), cost.NewMessage(omega),
			workload.SW1Adversary(cycles))
		sw1.AddRow(report.F(omega, 2), report.F(analytic.CompetitiveSW1Msg(omega), 2),
			report.F(res.Ratio, 4))
	}
	tables = append(tables, sw1)

	swk := report.New("Theorem 12: SWk is tightly ((1+w/2)(k+1)+w)-competitive",
		"k", "omega", "bound", "ratio on (r^(n+1) w^(n+1))^N")
	swkKs := []int{3, 5, 9}
	swkOmegas := []float64{0.25, 0.5, 1}
	for _, row := range gridRows(len(swkKs)*len(swkOmegas), func(ci int) []string {
		k, omega := swkKs[ci/len(swkOmegas)], swkOmegas[ci%len(swkOmegas)]
		res := workload.MeasureRatio(core.NewSW(k), cost.NewMessage(omega),
			workload.SWkAdversary(k, cycles))
		return []string{report.I(k), report.F(omega, 2),
			report.F(analytic.CompetitiveSWMsg(k, omega), 3), report.F(res.Ratio, 4)}
	}) {
		swk.AddRow(row...)
	}
	swk.AddNote("SW1's factor 1+2w is below SWk's for every k > 1: the worst case prefers small windows")
	tables = append(tables, swk)

	length := cfg.scale(14, 10)
	search := report.New("Exhaustive worst-case search, message model, omega=0.5 (length "+report.I(length)+")",
		"k", "bound", "worst ratio found", "worst schedule")
	for _, k := range []int{1, 3} {
		res := workload.WorstRatio(core.NewSW(k), cost.NewMessage(0.5), length, 2)
		search.AddRow(report.I(k), report.F(analytic.CompetitiveSWMsg(k, 0.5), 3),
			report.F(res.Ratio, 4), res.Schedule.String())
	}
	tables = append(tables, search)
	return tables
}
