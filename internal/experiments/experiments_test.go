package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mobirep/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 27 {
		t.Fatalf("registry has %d experiments, want 27", len(all))
	}
	for i, e := range all {
		want := "E" + pad(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %q, want %q", i, e.ID, want)
		}
		if e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func pad(i int) string {
	s := strconv.Itoa(i)
	if len(s) < 2 {
		s = "0" + s
	}
	return s
}

func TestByID(t *testing.T) {
	e, err := ByID("E05")
	if err != nil || e.ID != "E05" {
		t.Fatalf("ByID(E05): %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the output tables. This is the integration test for the
// whole reproduction pipeline.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy even in quick mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(Config{Seed: 1, Quick: true})
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.Title == "" {
					t.Fatalf("%s produced an untitled table", e.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s produced empty table %q", e.ID, tbl.Title)
				}
				out := tbl.ASCII()
				if !strings.Contains(out, tbl.Columns[0]) {
					t.Fatalf("%s table %q renders without headers", e.ID, tbl.Title)
				}
			}
		})
	}
}

// TestGridMatchesSequential is the engine's determinism proof at the
// experiment level: running the grid-parallelized experiments with 8
// workers must reproduce the fully sequential tables byte for byte at the
// same seed. It covers both estimator kinds (EXP and AVG sweeps) and the
// competitive-ratio grids.
func TestGridMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	render := func(id string) string {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tbl := range e.Run(Config{Seed: 1994, Quick: true}) {
			b.WriteString(tbl.ASCII())
			b.WriteString(tbl.CSV())
		}
		return b.String()
	}
	for _, id := range []string{"E01", "E03", "E04", "E06", "E07", "E08"} {
		prev := sim.SetMaxWorkers(1)
		seq := render(id)
		sim.SetMaxWorkers(8)
		par := render(id)
		sim.SetMaxWorkers(prev)
		if seq != par {
			t.Fatalf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", id, seq, par)
		}
	}
}

// TestGridRunOrdering pins gridRun's contract: results land in cell order
// regardless of scheduling.
func TestGridRunOrdering(t *testing.T) {
	prev := sim.SetMaxWorkers(8)
	defer sim.SetMaxWorkers(prev)
	got := gridRun(64, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cell %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestClaimTablesSayYes checks that the verdict columns of the worked-
// number experiments all come out "yes": the paper's claims hold on our
// implementation.
func TestClaimTablesSayYes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy even in quick mode")
	}
	e, err := ByID("E10")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(Config{Seed: 2, Quick: true})
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			last := row[len(row)-1]
			if last == "no" {
				t.Errorf("claim failed: %v", row)
			}
		}
	}
}
