package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(all))
	}
	for i, e := range all {
		want := "E" + pad(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %q, want %q", i, e.ID, want)
		}
		if e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func pad(i int) string {
	s := strconv.Itoa(i)
	if len(s) < 2 {
		s = "0" + s
	}
	return s
}

func TestByID(t *testing.T) {
	e, err := ByID("E05")
	if err != nil || e.ID != "E05" {
		t.Fatalf("ByID(E05): %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the output tables. This is the integration test for the
// whole reproduction pipeline.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy even in quick mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(Config{Seed: 1, Quick: true})
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.Title == "" {
					t.Fatalf("%s produced an untitled table", e.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s produced empty table %q", e.ID, tbl.Title)
				}
				out := tbl.ASCII()
				if !strings.Contains(out, tbl.Columns[0]) {
					t.Fatalf("%s table %q renders without headers", e.ID, tbl.Title)
				}
			}
		})
	}
}

// TestClaimTablesSayYes checks that the verdict columns of the worked-
// number experiments all come out "yes": the paper's claims hold on our
// implementation.
func TestClaimTablesSayYes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavy even in quick mode")
	}
	e, err := ByID("E10")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(Config{Seed: 2, Quick: true})
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			last := row[len(row)-1]
			if last == "no" {
				t.Errorf("claim failed: %v", row)
			}
		}
	}
}
