package experiments

import (
	"math"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/report"
	"mobirep/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E01",
		Title:    "Message-model dominance regions over (theta, omega)",
		Artifact: "Figure 1, Theorem 6",
		Run:      runE01,
	})
	register(Experiment{
		ID:       "E02",
		Title:    "SW1-vs-SWk break-even window size as a function of omega",
		Artifact: "Figure 2 (section 6.3), Corollaries 3 and 4",
		Run:      runE02,
	})
}

// runE01 reproduces Figure 1: for a grid of (theta, omega) points, which
// of ST1, ST2, SW1 has the lowest expected cost — classified by the
// Theorem 6 boundaries, by the exact formulas, and by simulation.
func runE01(cfg Config) []*report.Table {
	msgModel := func(omega float64) cost.Model { return cost.NewMessage(omega) }

	// Table 1: the region map, one row per omega, one cell per theta.
	thetas := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}
	omegas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	columns := append([]string{"omega \\ theta"}, mapF(thetas, func(t float64) string {
		return report.F(t, 2)
	})...)
	grid := report.New("Figure 1: winner of {ST1, ST2, SW1} by expected cost (message model)", columns...)
	for _, omega := range omegas {
		row := []string{report.F(omega, 2)}
		for _, theta := range thetas {
			row = append(row, analytic.BestExpectedMsg(theta, omega).String())
		}
		grid.AddRow(row...)
	}
	grid.AddNote("boundaries: theta = (1+w)/(1+2w) above -> ST1; theta = 2w/(1+2w) below -> ST2")

	// Table 2: boundary verification by simulation at omega = 0.5.
	const omega = 0.5
	verify := report.New("Figure 1 verification at omega=0.5: measured expected cost per request",
		"theta", "EXP ST1", "EXP ST2", "EXP SW1", "winner(formula)", "winner(sim)", "agree")
	ops := cfg.scale(200000, 10000)
	verifyThetas := []float64{0.1, 0.3, 1.0 / 3, 0.5, 0.7, 0.75, 0.9}
	for _, row := range gridRows(len(verifyThetas), func(ci int) []string {
		theta := verifyThetas[ci]
		st1 := sim.EstimateExpected(func() core.Policy { return core.NewST1() },
			msgModel(omega), sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: cfg.Seed}).Mean()
		st2 := sim.EstimateExpected(func() core.Policy { return core.NewST2() },
			msgModel(omega), sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: cfg.Seed + 1}).Mean()
		sw1 := sim.EstimateExpected(func() core.Policy { return core.NewSW(1) },
			msgModel(omega), sim.ExpectedOpts{Theta: theta, Ops: ops, Seed: cfg.Seed + 2}).Mean()
		simWinner := analytic.AlgSW1
		if st1 < sw1 && st1 < st2 {
			simWinner = analytic.AlgST1
		} else if st2 < sw1 && st2 < st1 {
			simWinner = analytic.AlgST2
		}
		formulaWinner := analytic.BestExpectedMsg(theta, omega)
		return []string{report.F(theta, 3), report.F(st1, 4), report.F(st2, 4),
			report.F(sw1, 4), formulaWinner.String(), simWinner.String(),
			boolMark(simWinner == formulaWinner)}
	}) {
		verify.AddRow(row...)
	}
	verify.AddNote("theta near a boundary can disagree within simulation noise; boundaries at %.3f and %.3f",
		analytic.ThetaLowerST2(omega), analytic.ThetaUpperST1(omega))
	return []*report.Table{grid, verify}
}

// runE02 reproduces the unnumbered section 6.3 figure: the smallest odd
// window size k whose average expected cost beats SW1, per omega, plus the
// paper's two worked examples and the omega*(k) curve, verified by
// simulation.
func runE02(cfg Config) []*report.Table {
	curve := report.New("Figure 2: break-even window size vs omega",
		"omega", "k0 (closed form)", "min odd k beating SW1", "AVG SW1", "AVG SWk at that k")
	for _, omega := range []float64{0.40, 0.42, 0.45, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		k0 := analytic.K0(omega)
		k := analytic.MinOddKBeatingSW1(omega)
		k0s, ks, avgk := "+Inf", "none", "-"
		if !math.IsInf(k0, 1) {
			k0s = report.F(k0, 2)
		}
		if k != 0 {
			ks = report.I(k)
			avgk = report.F(analytic.AvgSWMsg(k, omega), 4)
		}
		curve.AddRow(report.F(omega, 2), k0s, ks, report.F(analytic.AvgSW1Msg(omega), 4), avgk)
	}
	curve.AddNote("paper worked examples: omega=0.45 -> k=39, omega=0.8 -> k=7")

	// The figure's inverse: omega*(k) for the k values on the paper's axis.
	inverse := report.New("Figure 2 inverse: omega*(k) = 2k(k+5)/((5k+6)(k-1))",
		"k", "omega*", "AVG SWk at omega*", "AVG SW1 at omega*")
	for _, k := range []int{3, 5, 7, 11, 21, 39, 95} {
		ws := analytic.OmegaStar(k)
		if ws > 1 {
			// k=3: omega*(3) = 8/7 > 1, so SW3 never beats SW1 for any
			// admissible control-message cost.
			inverse.AddRow(report.I(k), report.F(ws, 4), "- (omega* > 1)", "-")
			continue
		}
		inverse.AddRow(report.I(k), report.F(ws, 4),
			report.F(analytic.AvgSWMsg(k, ws), 6), report.F(analytic.AvgSW1Msg(ws), 6))
	}
	inverse.AddNote("omega* decreases toward the Corollary 3 constant 0.4 as k grows")

	// Simulation spot-check: at omega=0.8, SW7 must beat SW1 on AVG and
	// SW5 must not.
	const omega = 0.8
	model := cost.NewMessage(omega)
	opts := sim.AverageOpts{
		Periods:      cfg.scale(600, 60),
		OpsPerPeriod: cfg.scale(600, 200),
		Seed:         cfg.Seed,
	}
	check := report.New("Figure 2 verification at omega=0.8 (simulated AVG)",
		"algorithm", "AVG theory", "AVG simulated", "beats SW1 (theory)", "beats SW1 (sim)")
	checkKs := []int{1, 5, 7, 9}
	avgs := gridRun(len(checkKs), func(ci int) float64 {
		k := checkKs[ci]
		return sim.EstimateAverage(func() core.Policy { return core.NewSW(k) }, model, opts).Mean()
	})
	sw1 := avgs[0]
	check.AddRow("SW1", report.F(analytic.AvgSW1Msg(omega), 4), report.F(sw1, 4), "-", "-")
	for i, k := range checkKs[1:] {
		got := avgs[i+1]
		theory := analytic.AvgSWMsg(k, omega)
		check.AddRow(
			"SW"+report.I(k), report.F(theory, 4), report.F(got, 4),
			boolMark(theory <= analytic.AvgSW1Msg(omega)), boolMark(got <= sw1))
	}
	return []*report.Table{curve, inverse, check}
}

func mapF(xs []float64, f func(float64) string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
