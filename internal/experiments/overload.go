package experiments

import (
	"fmt"
	"time"

	"mobirep/internal/load"
	"mobirep/internal/replica"
	"mobirep/internal/report"
)

func init() {
	register(Experiment{
		ID:       "E25",
		Title:    "Graceful degradation under overload: admission, stalled readers, shedding",
		Artifact: "Overload protection beyond the paper's always-available SC (extension)",
		Run:      runE25,
	})
}

// runE25 sweeps the offered load from half the admission cap to twice it
// and reports the degradation curve: past 1.0x the overflow is refused
// with Busy frames while the admitted fleet's throughput and read-latency
// percentiles hold, 10% of admitted readers stall without wedging server
// memory (their outboxes are bounded), and the soft-watermark shedder
// stays quiet as long as the account is under budget. Numbers are
// timing-based, so like E23/E24 this experiment is excluded from the
// byte-for-byte determinism diff (mobirep-bench -skip E23,E24,E25,E26).
func runE25(cfg Config) []*report.Table {
	capacity := cfg.scale(20_000, 1_000)
	duration := time.Duration(cfg.scale(2_000, 250)) * time.Millisecond

	tbl := report.New(fmt.Sprintf(
		"E25: overload at the admission cap — capacity %s (SW3, 10%% stalled readers, 8 shards)",
		report.I(capacity)),
		"offered", "attempted", "admitted", "rejected", "busy/rejected",
		"reads/s", "p50", "p99", "heap peak MiB", "shed")

	for _, factor := range []float64{0.5, 1.0, 1.5, 2.0} {
		res, err := load.RunOverload(load.OverloadConfig{
			Capacity:     capacity,
			Factor:       factor,
			StalledFrac:  0.1,
			Mode:         replica.SW(3),
			Shards:       8,
			Duration:     duration,
			MemSoftLimit: 1 << 30,
			Seed:         cfg.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("E25: %v", err))
		}
		if res.BusyFrames != res.Rejected {
			panic(fmt.Sprintf("E25: %d rejected attaches but %d Busy frames delivered",
				res.Rejected, res.BusyFrames))
		}
		tbl.AddRow(fmt.Sprintf("%.1fx", factor),
			report.I(res.Attempted),
			report.I(res.Admitted),
			report.I(res.Rejected),
			fmt.Sprintf("%d/%d", res.BusyFrames, res.Rejected),
			report.F(res.OpsPerSec, 0),
			res.P50.String(),
			res.P99.String(),
			report.F(float64(res.HeapPeakBytes)/(1<<20), 1),
			report.I(res.Shed))
	}
	tbl.AddNote("every refused attach is answered with a Busy frame (busy/rejected must match); stalled readers keep requesting while their server->client direction buffers against a bounded outbox")
	tbl.AddNote("the healthy fleet's percentiles come only from admitted, non-stalled sessions — the degradation the paper's SC model does not have to consider")
	return []*report.Table{tbl}
}
