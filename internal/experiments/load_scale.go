package experiments

import (
	"fmt"
	"time"

	"mobirep/internal/load"
	"mobirep/internal/replica"
	"mobirep/internal/report"
	"mobirep/internal/transport"
)

func init() {
	register(Experiment{
		ID:       "E24",
		Title:    "Sharded server at fleet scale: 100k+ chaos-wrapped sessions",
		Artifact: "Scale-out of the SC to a mobile fleet (extension)",
		Run:      runE24,
	})
}

// runE24 attaches a six-figure fleet of chaos-wrapped client sessions to
// the sharded server — once on a single shard (the old architecture's
// scheduling) and once across eight shards — and reports attach
// throughput, steady-state read throughput, and read-latency
// percentiles. Numbers are timing-based, so like E23 this experiment is
// excluded from the byte-for-byte determinism diff (mobirep-bench
// -skip E23,E24).
func runE24(cfg Config) []*report.Table {
	sessions := cfg.scale(120_000, 4_000)
	duration := time.Duration(cfg.scale(5_000, 250)) * time.Millisecond

	tbl := report.New(fmt.Sprintf(
		"E24: sharded SC under load — %s chaos-wrapped sessions (SW3, drop+dup faults)",
		report.I(sessions)),
		"shards", "attach sessions/s", "reads/s", "p50", "p99", "read errors", "occupancy min..max")

	run := func(shards int) load.Result {
		res, err := load.Run(load.Config{
			Sessions: sessions,
			Shards:   shards,
			Mode:     replica.SW(3),
			Duration: duration,
			Chaos:    transport.Config{Drop: 0.01, Dup: 0.01},
			Seed:     cfg.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("E24: %v", err))
		}
		tbl.AddRow(report.I(res.Shards),
			report.F(res.SessionsPerSec, 0),
			report.F(res.OpsPerSec, 0),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Microsecond).String(),
			report.I(res.Errors),
			fmt.Sprintf("%d..%d", res.ShardMin, res.ShardMax))
		return res
	}
	run(1)
	wide := run(8)
	tbl.AddNote("every session rides its own fault-injected link pair; reads are driven by %d workers while %d background writers keep all shards propagating",
		wide.Workers, 2)
	if !cfg.Quick {
		tbl.AddNote("acceptance: %s concurrent sessions sustained (>= 100000) with p99 read latency %v",
			report.I(sessions), wide.P99.Round(time.Microsecond))
	}
	return []*report.Table{tbl}
}
