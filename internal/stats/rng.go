// Package stats provides the numeric substrate shared by the rest of the
// repository: a small deterministic random number generator, samplers for
// the distributions the paper's workload model needs (Bernoulli,
// exponential, Poisson), streaming summary statistics with confidence
// intervals, numeric integration, and log-domain binomial coefficients.
//
// Everything here is deliberately dependency-free and allocation-light so
// the simulator can run hundreds of millions of requests per experiment.
package stats

import "math"

// RNG is a deterministic pseudo-random generator based on SplitMix64.
//
// SplitMix64 passes BigCrush, has a 2^64 period, and is seedable from a
// single word, which makes experiment runs exactly reproducible from the
// seed recorded in their output. It is not safe for concurrent use; give
// each goroutine its own RNG (use Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new independent generator from r. The derived stream is
// decorrelated from r's future output because it is seeded with a value
// from r advanced through the SplitMix64 output function.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample from [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample from {0, 1, ..., n-1}. It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed sample with rate lambda, i.e.
// mean 1/lambda. It panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so Log never sees zero.
	return -math.Log(1-u) / lambda
}

// Poisson returns a Poisson-distributed sample with mean lambda. For small
// means it uses Knuth's product method; for large means it uses the
// transformed-rejection method of Hörmann (PTRS), which is exact and fast.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		limit := math.Exp(-lambda)
		n := 0
		for p := r.Float64(); p > limit; p *= r.Float64() {
			n++
		}
		return n
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's transformed rejection sampler, valid for
// lambda >= 10.
func (r *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(kf + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= kf*logLambda-lambda-lg {
			return int(kf)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
