package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", s.Mean())
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(5)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const draws = 100000
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		frac := float64(hits) / draws
		if math.Abs(frac-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, frac)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	for _, lambda := range []float64{0.5, 1, 4} {
		var s Summary
		for i := 0; i < 200000; i++ {
			x := r.Exp(lambda)
			if x < 0 {
				t.Fatalf("negative exponential sample %v", x)
			}
			s.Add(x)
		}
		want := 1 / lambda
		if math.Abs(s.Mean()-want) > 0.02*want+0.01 {
			t.Fatalf("Exp(%v) mean %v, want ~%v", lambda, s.Mean(), want)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(13)
	// Covers both the Knuth branch (<30) and the PTRS branch (>=30).
	for _, lambda := range []float64{0.5, 3, 12, 40, 200} {
		var s Summary
		for i := 0; i < 100000; i++ {
			s.Add(float64(r.Poisson(lambda)))
		}
		tol := 0.03*lambda + 0.05
		if math.Abs(s.Mean()-lambda) > tol {
			t.Fatalf("Poisson(%v) mean %v", lambda, s.Mean())
		}
		if math.Abs(s.Variance()-lambda) > 5*tol {
			t.Fatalf("Poisson(%v) variance %v", lambda, s.Variance())
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(21)
	child := r.Split()
	// Streams should not be identical.
	identical := true
	for i := 0; i < 100; i++ {
		if r.Uint64() != child.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("Split stream is identical to parent stream")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(33)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
