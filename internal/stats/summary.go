package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moment statistics using Welford's method,
// which is numerically stable for long runs.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into this one (parallel Welford combination).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	delta := o.mean - s.mean
	total := s.n + o.n
	s.mean += delta * float64(o.n) / float64(total)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(total)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = total
}

// N returns the number of observations.
func (s Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty summary.
func (s Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty summary.
func (s Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean. For the trial counts used by the experiments
// (dozens and up) the normal approximation is adequate.
func (s Summary) CI95() float64 { return 1.96 * s.StdErr() }

// String renders the summary for logs and experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6f ±%.6f [%.6f, %.6f]",
		s.n, s.Mean(), s.CI95(), s.min, s.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data using linear
// interpolation between order statistics. The slice is not modified.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts observations into uniform-width bins over [lo, hi).
// Observations outside the range are clamped into the edge bins so that
// every Add is accounted for.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram creates a histogram with the given range and bin count.
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.bins[i]) / float64(h.n)
}
