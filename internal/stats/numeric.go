package stats

import "math"

// Integrate approximates the definite integral of f over [a, b] with
// composite Simpson's rule on 2*halves panels. It is used to cross-check
// the paper's closed-form AVG results, which are integrals of the expected
// cost over theta in [0, 1].
func Integrate(f func(float64) float64, a, b float64, halves int) float64 {
	if halves < 1 {
		halves = 1
	}
	n := 2 * halves
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// LogBinomial returns ln C(n, k) computed with log-gamma so that the
// binomial terms in pi_k stay finite for large windows.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// Binomial returns C(n, k) as a float64. It overflows to +Inf rather than
// wrapping for very large arguments.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LogBinomial(n, k))
}

// BinomialPMF returns P[Bin(n, p) = k].
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logp := LogBinomial(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logp)
}

// BinomialCDF returns P[Bin(n, p) <= k] by direct summation. The window
// sizes in this repository are at most a few hundred, so summation is both
// exact enough and fast enough.
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	sum := 0.0
	for j := 0; j <= k; j++ {
		sum += BinomialPMF(n, j, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Bisect finds a root of f in [a, b] assuming f(a) and f(b) have opposite
// signs. It returns the midpoint after iter halvings (53 suffices for
// float64 resolution).
func Bisect(f func(float64) float64, a, b float64, iter int) float64 {
	fa := f(a)
	for i := 0; i < iter; i++ {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m
		}
		if (fa < 0) == (fm < 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2
}
