package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntegratePolynomials(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 2 }, 0, 3, 6},
		{"linear", func(x float64) float64 { return x }, 0, 1, 0.5},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 1, 1.0 / 3},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 1, 0},
		{"sin", math.Sin, 0, math.Pi, 2},
	}
	for _, c := range cases {
		got := Integrate(c.f, c.a, c.b, 200)
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIntegrateMinHalves(t *testing.T) {
	// halves < 1 is clamped; Simpson on one panel pair is exact for cubics.
	got := Integrate(func(x float64) float64 { return x * x }, 0, 1, 0)
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {10, 5, 252},
		{20, 10, 184756}, {5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		got := Binomial(c.n, c.k)
		if math.Abs(got-c.want) > 1e-6*c.want+1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	check := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 2
		k := int(kRaw) % n
		if k == 0 {
			k = 1
		}
		lhs := Binomial(n, k)
		rhs := Binomial(n-1, k-1) + Binomial(n-1, k)
		return math.Abs(lhs-rhs) <= 1e-9*lhs
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 21, 95} {
		for _, p := range []float64{0, 0.1, 0.5, 0.93, 1} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, k, p)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("n=%d p=%v: pmf sum %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Fatal("out-of-range k should have zero mass")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 5, 1) != 1 {
		t.Fatal("degenerate p mass misplaced")
	}
	if BinomialPMF(5, 3, 0) != 0 || BinomialPMF(5, 3, 1) != 0 {
		t.Fatal("degenerate p should concentrate at the edge")
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	n, p := 21, 0.37
	prev := -1.0
	for k := -1; k <= n+1; k++ {
		c := BinomialCDF(n, k, p)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, c, prev)
		}
		prev = c
	}
	if BinomialCDF(n, -1, p) != 0 {
		t.Fatal("CDF(-1) != 0")
	}
	if BinomialCDF(n, n, p) != 1 {
		t.Fatal("CDF(n) != 1")
	}
}

func TestBinomialCDFMatchesSampling(t *testing.T) {
	r := NewRNG(77)
	n, k, p := 15, 7, 0.6
	hits := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		writes := 0
		for j := 0; j < n; j++ {
			if r.Bernoulli(p) {
				writes++
			}
		}
		if writes <= k {
			hits++
		}
	}
	emp := float64(hits) / draws
	want := BinomialCDF(n, k, p)
	if math.Abs(emp-want) > 0.01 {
		t.Fatalf("empirical %v vs analytic %v", emp, want)
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 80)
	if math.Abs(root-math.Sqrt2) > 1e-12 {
		t.Fatalf("root = %v", root)
	}
	root = Bisect(func(x float64) float64 { return 2 - x*x }, 0, 2, 80)
	if math.Abs(root-math.Sqrt2) > 1e-12 {
		t.Fatalf("descending root = %v", root)
	}
}

func TestLogBinomialOutOfRange(t *testing.T) {
	if !math.IsInf(LogBinomial(5, 9), -1) {
		t.Fatal("LogBinomial out of range should be -Inf")
	}
}
