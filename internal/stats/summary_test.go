package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Fatalf("Variance = %v, want 2.5", s.Variance())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	if !strings.Contains(s.String(), "n=2") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	// Map raw uint16 inputs into a bounded range: the property under test is
	// the merge algebra, not float64 overflow behaviour.
	check := func(xsRaw, ysRaw []uint16) bool {
		var all, left, right Summary
		for _, v := range xsRaw {
			x := float64(v)/100 - 300
			all.Add(x)
			left.Add(x)
		}
		for _, v := range ysRaw {
			y := float64(v)/100 - 300
			all.Add(y)
			right.Add(y)
		}
		left.Merge(right)
		if all.N() != left.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(all.Mean()-left.Mean()) < 1e-9 &&
			math.Abs(all.Variance()-left.Variance()) < 1e-6*(1+all.Variance())
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	a.Add(4)
	before := a
	a.Merge(b) // empty right side: no-op
	if a != before {
		t.Fatal("merging empty summary changed receiver")
	}
	b.Merge(a) // empty left side: copy
	if b.N() != 1 || b.Mean() != 4 {
		t.Fatalf("merge into empty: %v", b)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	if q := Quantile(data, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(data, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(data, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(data, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Input must not be mutated.
	if data[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
		if math.Abs(h.Fraction(i)-0.1) > 1e-12 {
			t.Fatalf("fraction %d = %v", i, h.Fraction(i))
		}
	}
	if h.N() != 10 || h.Bins() != 10 {
		t.Fatalf("N=%d Bins=%d", h.N(), h.Bins())
	}
	if c := h.BinCenter(0); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Bin(0) != 1 || h.Bin(3) != 1 {
		t.Fatalf("edge bins = %d, %d", h.Bin(0), h.Bin(3))
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 3)
}
