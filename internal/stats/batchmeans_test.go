package stats

import (
	"math"
	"testing"
)

func TestBatchMeansIIDMatchesNaive(t *testing.T) {
	rng := NewRNG(41)
	series := make([]float64, 40000)
	for i := range series {
		series[i] = rng.Float64()
	}
	bm, err := BatchMeans(series, 40)
	if err != nil {
		t.Fatal(err)
	}
	var naive Summary
	for _, v := range series {
		naive.Add(v)
	}
	if math.Abs(bm.Mean()-naive.Mean()) > 1e-9 {
		t.Fatalf("means differ: %v vs %v", bm.Mean(), naive.Mean())
	}
	// On i.i.d. data the two CI estimates agree within statistical noise.
	ratio := bm.CI95() / (naive.CI95())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("iid CI ratio %v, want near 1", ratio)
	}
}

func TestBatchMeansWidensCIOnCorrelatedSeries(t *testing.T) {
	// A strongly positively correlated series (random walk between two
	// levels): the naive CI is far too small; batch means must widen it.
	rng := NewRNG(43)
	series := make([]float64, 40000)
	level := 0.0
	for i := range series {
		if rng.Bernoulli(0.002) {
			level = 1 - level
		}
		series[i] = level
	}
	bm, err := BatchMeans(series, 40)
	if err != nil {
		t.Fatal(err)
	}
	var naive Summary
	for _, v := range series {
		naive.Add(v)
	}
	if bm.CI95() < 3*naive.CI95() {
		t.Fatalf("batch CI %v not much wider than naive %v on correlated data",
			bm.CI95(), naive.CI95())
	}
}

func TestBatchMeansDropsRemainder(t *testing.T) {
	series := []float64{1, 1, 1, 1, 100} // remainder 100 must be dropped
	bm, err := BatchMeans(series, 2)     // batch size 2, uses first 4
	if err != nil {
		t.Fatal(err)
	}
	if bm.Mean() != 1 {
		t.Fatalf("mean = %v, remainder leaked in", bm.Mean())
	}
	if bm.N() != 2 {
		t.Fatalf("batches = %d", bm.N())
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, err := BatchMeans([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("1 batch accepted")
	}
	if _, err := BatchMeans([]float64{1}, 2); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	rng := NewRNG(47)
	iid := make([]float64, 20000)
	for i := range iid {
		iid[i] = rng.Float64()
	}
	ess, err := EffectiveSampleSize(iid, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ess < float64(len(iid))/4 {
		t.Fatalf("iid ESS %v, want near %d", ess, len(iid))
	}

	correlated := make([]float64, 20000)
	level := 0.0
	for i := range correlated {
		if rng.Bernoulli(0.001) {
			level = 1 - level
		}
		correlated[i] = level
	}
	ess, err = EffectiveSampleSize(correlated, 40)
	if err != nil {
		t.Fatal(err)
	}
	if ess > float64(len(correlated))/10 {
		t.Fatalf("correlated ESS %v, want far below %d", ess, len(correlated))
	}

	constant := make([]float64, 100)
	ess, err = EffectiveSampleSize(constant, 4)
	if err != nil || ess != 100 {
		t.Fatalf("constant ESS %v err=%v", ess, err)
	}
	if _, err := EffectiveSampleSize(constant, 1); err == nil {
		t.Fatal("bad batches accepted")
	}
}
