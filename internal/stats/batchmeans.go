package stats

import "fmt"

// BatchMeans estimates the mean of a correlated stationary series with an
// honest confidence interval: the series is cut into contiguous batches,
// and the batch means — nearly independent once batches are much longer
// than the correlation length — feed a standard Summary. Plain per-sample
// CIs underestimate the error badly on windowed-policy cost series, whose
// autocorrelation extends over the window length; batch means is the
// textbook fix and is what the bursty experiments report.
//
// The series length must be at least batches; a trailing remainder shorter
// than the batch size is dropped (it would bias the last mean).
func BatchMeans(series []float64, batches int) (Summary, error) {
	if batches < 2 {
		return Summary{}, fmt.Errorf("stats: need at least 2 batches, got %d", batches)
	}
	if len(series) < batches {
		return Summary{}, fmt.Errorf("stats: series of %d too short for %d batches", len(series), batches)
	}
	size := len(series) / batches
	var out Summary
	for b := 0; b < batches; b++ {
		sum := 0.0
		for _, v := range series[b*size : (b+1)*size] {
			sum += v
		}
		out.Add(sum / float64(size))
	}
	return out, nil
}

// EffectiveSampleSize estimates how many independent samples the
// correlated series is worth, via the ratio of the naive variance of the
// mean to the batch-means variance of the mean. It returns len(series)
// when the series looks uncorrelated and much smaller values for bursty
// series. Returns an error under the same conditions as BatchMeans.
func EffectiveSampleSize(series []float64, batches int) (float64, error) {
	bm, err := BatchMeans(series, batches)
	if err != nil {
		return 0, err
	}
	var naive Summary
	for _, v := range series {
		naive.Add(v)
	}
	// Var(mean) estimates: naive/n vs batch-means/batches.
	naiveVarOfMean := naive.Variance() / float64(naive.N())
	bmVarOfMean := bm.Variance() / float64(bm.N())
	if bmVarOfMean == 0 {
		return float64(len(series)), nil
	}
	ess := float64(len(series)) * naiveVarOfMean / bmVarOfMean
	if ess > float64(len(series)) {
		ess = float64(len(series))
	}
	return ess, nil
}
