// Package sched defines the request vocabulary of the paper's model: the
// two relevant request kinds (a read issued at the mobile computer and a
// write issued at the stationary computer) and finite sequences of them,
// called schedules. All higher layers — policies, cost models, the
// simulator, the offline optimum, workload generators — speak in these
// types.
//
// The paper ignores reads issued by the stationary computer and writes
// issued by the mobile computer because their cost does not depend on the
// allocation scheme (section 3); those requests therefore never appear in
// a Schedule.
package sched

import (
	"fmt"
	"strings"
)

// Op is one relevant request.
type Op uint8

const (
	// Read is a read of the data item issued at the mobile computer.
	Read Op = iota
	// Write is a write of the data item issued at the stationary computer.
	Write
)

// String returns "r" for reads and "w" for writes, the notation the paper
// uses for schedules (e.g. "w,r,r,r,w,r,w").
func (o Op) String() string {
	if o == Read {
		return "r"
	}
	return "w"
}

// Schedule is a finite sequence of relevant requests, the unit of analysis
// for cost and competitiveness.
type Schedule []Op

// Parse builds a schedule from a compact string such as "rwrrw". Spaces
// and commas are ignored so "r, w, r" also parses. It returns an error on
// any other character.
func Parse(s string) (Schedule, error) {
	out := make(Schedule, 0, len(s))
	for i, c := range s {
		switch c {
		case 'r', 'R':
			out = append(out, Read)
		case 'w', 'W':
			out = append(out, Write)
		case ' ', ',', '\t', '\n':
			// separators are allowed anywhere
		default:
			return nil, fmt.Errorf("sched: invalid character %q at offset %d", c, i)
		}
	}
	return out, nil
}

// MustParse is Parse for tests and static tables; it panics on error.
func MustParse(s string) Schedule {
	out, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return out
}

// String renders the schedule in the compact form accepted by Parse.
func (s Schedule) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, op := range s {
		b.WriteString(op.String())
	}
	return b.String()
}

// Counts returns the number of reads and writes in the schedule.
func (s Schedule) Counts() (reads, writes int) {
	for _, op := range s {
		if op == Read {
			reads++
		} else {
			writes++
		}
	}
	return reads, writes
}

// WriteFraction returns the fraction of requests that are writes — the
// empirical analogue of the paper's theta. It returns 0 for an empty
// schedule.
func (s Schedule) WriteFraction() float64 {
	if len(s) == 0 {
		return 0
	}
	_, writes := s.Counts()
	return float64(writes) / float64(len(s))
}

// Repeat returns the schedule formed by n back-to-back copies of s. The
// adversarial families used in the competitiveness experiments are all
// repeated cycles.
func (s Schedule) Repeat(n int) Schedule {
	if n <= 0 {
		return nil
	}
	out := make(Schedule, 0, n*len(s))
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return out
}

// Concat returns the concatenation of the given schedules as a new slice.
func Concat(parts ...Schedule) Schedule {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(Schedule, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Runs returns s as maximal runs of equal operations, e.g. "rrwr" becomes
// [(r,2),(w,1),(r,1)]. Used by trace inspection tooling.
func (s Schedule) Runs() []Run {
	if len(s) == 0 {
		return nil
	}
	var runs []Run
	cur := Run{Op: s[0], Len: 1}
	for _, op := range s[1:] {
		if op == cur.Op {
			cur.Len++
			continue
		}
		runs = append(runs, cur)
		cur = Run{Op: op, Len: 1}
	}
	return append(runs, cur)
}

// Run is a maximal run of identical operations within a schedule.
type Run struct {
	Op  Op
	Len int
}

// Lag1Correlation returns the lag-1 autocorrelation of the write
// indicator sequence: 0 for i.i.d. requests (the paper's Poisson model),
// positive for bursty schedules where like follows like, negative for
// alternation-heavy ones. Trace tooling uses it to tell which workload
// regime a recorded trace belongs to. It returns 0 for schedules shorter
// than 2 or with no variance.
func (s Schedule) Lag1Correlation() float64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	mean := s.WriteFraction()
	varSum, covSum := 0.0, 0.0
	prev := indicator(s[0]) - mean
	varSum += prev * prev
	for _, op := range s[1:] {
		cur := indicator(op) - mean
		covSum += prev * cur
		varSum += cur * cur
		prev = cur
	}
	if varSum == 0 {
		return 0
	}
	return covSum / varSum
}

func indicator(op Op) float64 {
	if op == Write {
		return 1
	}
	return 0
}

// Block returns a schedule of n copies of op, e.g. Block(Read, 3) = "rrr".
func Block(op Op, n int) Schedule {
	if n <= 0 {
		return nil
	}
	out := make(Schedule, n)
	for i := range out {
		out[i] = op
	}
	return out
}
