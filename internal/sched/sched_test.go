package sched

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Read.String() != "r" || Write.String() != "w" {
		t.Fatalf("op strings: %q %q", Read.String(), Write.String())
	}
}

func TestParseValid(t *testing.T) {
	s, err := Parse("rwRW r,w")
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{Read, Write, Read, Write, Read, Write}
	if len(s) != len(want) {
		t.Fatalf("len = %d", len(s))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("op %d = %v", i, s[i])
		}
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("rwx"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("z")
}

func TestStringRoundTrip(t *testing.T) {
	check := func(bits []bool) bool {
		s := make(Schedule, len(bits))
		for i, b := range bits {
			if b {
				s[i] = Write
			}
		}
		back, err := Parse(s.String())
		if err != nil || len(back) != len(s) {
			return false
		}
		for i := range s {
			if back[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounts(t *testing.T) {
	s := MustParse("rrwrw")
	r, w := s.Counts()
	if r != 3 || w != 2 {
		t.Fatalf("counts = %d, %d", r, w)
	}
	if got := s.WriteFraction(); got != 0.4 {
		t.Fatalf("write fraction = %v", got)
	}
	if got := (Schedule{}).WriteFraction(); got != 0 {
		t.Fatalf("empty write fraction = %v", got)
	}
}

func TestRepeat(t *testing.T) {
	s := MustParse("rw")
	if got := s.Repeat(3).String(); got != "rwrwrw" {
		t.Fatalf("repeat = %q", got)
	}
	if s.Repeat(0) != nil {
		t.Fatal("Repeat(0) should be nil")
	}
	if s.Repeat(-1) != nil {
		t.Fatal("Repeat(-1) should be nil")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(MustParse("rr"), nil, MustParse("w")).String()
	if got != "rrw" {
		t.Fatalf("concat = %q", got)
	}
}

func TestBlock(t *testing.T) {
	if got := Block(Write, 4).String(); got != "wwww" {
		t.Fatalf("block = %q", got)
	}
	if Block(Read, 0) != nil {
		t.Fatal("Block(_, 0) should be nil")
	}
}

func TestRuns(t *testing.T) {
	s := MustParse("rrwrrrw")
	runs := s.Runs()
	want := []Run{{Read, 2}, {Write, 1}, {Read, 3}, {Write, 1}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
	if (Schedule{}).Runs() != nil {
		t.Fatal("empty schedule should have nil runs")
	}
}

func TestRunsReconstruct(t *testing.T) {
	check := func(bits []bool) bool {
		s := make(Schedule, len(bits))
		for i, b := range bits {
			if b {
				s[i] = Write
			}
		}
		var rebuilt Schedule
		for _, run := range s.Runs() {
			rebuilt = append(rebuilt, Block(run.Op, run.Len)...)
		}
		return rebuilt.String() == s.String()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLag1Correlation(t *testing.T) {
	// Alternating: maximally negative.
	if c := MustParse("rwrwrwrwrwrw").Lag1Correlation(); c > -0.8 {
		t.Fatalf("alternating correlation %v, want near -1", c)
	}
	// Long runs: strongly positive.
	if c := Concat(Block(Read, 50), Block(Write, 50)).Lag1Correlation(); c < 0.8 {
		t.Fatalf("two-run correlation %v, want near 1", c)
	}
	// Degenerate inputs.
	if c := (Schedule{}).Lag1Correlation(); c != 0 {
		t.Fatalf("empty = %v", c)
	}
	if c := MustParse("r").Lag1Correlation(); c != 0 {
		t.Fatalf("single = %v", c)
	}
	if c := Block(Write, 20).Lag1Correlation(); c != 0 {
		t.Fatalf("constant = %v (no variance)", c)
	}
}

func TestLag1CorrelationIIDNearZero(t *testing.T) {
	// A pseudo-random i.i.d.-ish sequence built from a fixed pattern with
	// coprime period mixing should land near zero.
	s := make(Schedule, 0, 10000)
	x := uint32(12345)
	for i := 0; i < 10000; i++ {
		x = x*1664525 + 1013904223
		if x>>16&1 == 1 {
			s = append(s, Write)
		} else {
			s = append(s, Read)
		}
	}
	if c := s.Lag1Correlation(); c > 0.05 || c < -0.05 {
		t.Fatalf("iid correlation %v, want ~0", c)
	}
}
