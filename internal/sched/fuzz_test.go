package sched

import "testing"

// FuzzParse checks Parse never panics and that accepted inputs round-trip
// through String into an equivalent schedule.
func FuzzParse(f *testing.F) {
	f.Add("rwrrw")
	f.Add("")
	f.Add("R, W r\tw\n")
	f.Add("xyz")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("canonical form failed to parse: %v", err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip diverged: %q vs %q", back, s)
		}
	})
}
