// Package mobile implements the mobile computer's local database: the
// cache that holds allocated copies of data items. The paper assumes
// storage at the mobile computer is abundant (section 8.2), so unlike a
// CPU cache there is no eviction under pressure — entries leave only when
// the allocation algorithm deallocates them. The cache tracks hit/miss
// statistics that the examples and experiments report.
package mobile

import (
	"bytes"
	"strings"
	"sync"
	"time"

	"mobirep/internal/db"
)

// Stats summarizes cache activity.
type Stats struct {
	// Hits counts local reads served from the cache.
	Hits int
	// Misses counts reads that had to go remote.
	Misses int
	// Installs counts copies allocated into the cache.
	Installs int
	// Drops counts copies deallocated from the cache.
	Drops int
	// Updates counts propagated writes applied to cached copies.
	Updates int
	// StaleUpdates counts propagated writes that arrived for uncached
	// items (benign races during deallocation) or carried an old version.
	StaleUpdates int
	// Revalidations counts archived values confirmed current by the
	// server and reused without a payload transfer.
	Revalidations int
}

// Cache is a thread-safe item cache. Items that leave the cache move to a
// stale archive: they must not be served (they may be outdated), but their
// versions work as revalidation hints — a conditional read that matches
// the server's current version costs no payload bytes.
type Cache struct {
	mu      sync.RWMutex
	items   map[string]db.Item
	archive map[string]db.Item
	// fresh records when each entry (live or archived) was last known to
	// match the server: at install, update, and revalidation. Bounded
	// staleness offline reads compare against it.
	fresh map[string]time.Time
	now   func() time.Time
	stats Stats
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		items:   make(map[string]db.Item),
		archive: make(map[string]db.Item),
		fresh:   make(map[string]time.Time),
		now:     time.Now,
	}
}

// SetClock overrides the cache's time source, for tests that need
// deterministic staleness ages.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Get returns the cached item, recording a hit or miss.
func (c *Cache) Get(key string) (db.Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return it, ok
}

// Peek returns the cached item without touching statistics.
func (c *Cache) Peek(key string) (db.Item, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	it, ok := c.items[key]
	return it, ok
}

// Install stores a newly allocated copy, superseding any archived value.
// The cache owns its bytes: Key and Value are copied in, so the caller may
// pass fields that alias a borrowed transport frame (wire.DecodeBorrowed)
// and reuse the buffer the moment Install returns.
func (c *Cache) Install(it db.Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it.Key = strings.Clone(it.Key)
	it.Value = bytes.Clone(it.Value)
	c.items[it.Key] = it
	delete(c.archive, it.Key)
	c.fresh[it.Key] = c.now()
	c.stats.Installs++
}

// Update applies a propagated write. It returns false — recording a stale
// update — if the item is not cached or the version does not advance,
// keeping propagation idempotent under races. Like Install, the cache
// copies the Value in; the resident entry's key is reused, so no borrowed
// byte survives the call.
func (c *Cache) Update(it db.Item) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.items[it.Key]
	if !ok || it.Version <= cur.Version {
		c.stats.StaleUpdates++
		return false
	}
	it.Key = cur.Key
	it.Value = bytes.Clone(it.Value)
	c.items[it.Key] = it
	c.fresh[it.Key] = c.now()
	c.stats.Updates++
	return true
}

// Drop deallocates the copy, moving it to the stale archive. It reports
// whether a copy was present.
func (c *Cache) Drop(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if !ok {
		return false
	}
	// Archive under the resident entry's own (cache-owned) key: the key
	// parameter may alias a borrowed transport frame, and a map insert
	// would retain it.
	c.archive[it.Key] = it
	delete(c.items, key)
	c.stats.Drops++
	return true
}

// Archived returns the stale archived item for key, if any. Archived
// values must not be served directly; their versions are revalidation
// hints.
func (c *Cache) Archived(key string) (db.Item, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	it, ok := c.archive[key]
	return it, ok
}

// Revalidated promotes an archived item back to served status after the
// server confirmed its version is current. It reports whether an archived
// item existed.
func (c *Cache) Revalidated(key string) (db.Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.archive[key]
	if !ok {
		return db.Item{}, false
	}
	c.fresh[it.Key] = c.now() // it.Key is cache-owned; key may be borrowed
	c.stats.Revalidations++
	return it, true
}

// Refresh marks a live entry as just confirmed current by the server
// (a warm-resync NotModified answer), counting a revalidation. It reports
// whether a live entry existed.
func (c *Cache) Refresh(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if !ok {
		return false
	}
	c.fresh[it.Key] = c.now() // it.Key is cache-owned; key may be borrowed
	c.stats.Revalidations++
	return true
}

// LastKnown returns the most recent value held for key — the live entry
// if present, else the stale archived one — along with its age: how long
// ago it was last known to match the server, measured by the cache clock.
// Callers that serve it during an outage must flag it as possibly stale.
func (c *Cache) LastKnown(key string) (db.Item, time.Duration, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	it, ok := c.items[key]
	if !ok {
		it, ok = c.archive[key]
	}
	if !ok {
		return db.Item{}, 0, false
	}
	return it, c.now().Sub(c.fresh[key]), true
}

// ArchiveLen returns the number of archived items.
func (c *Cache) ArchiveLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.archive)
}

// Contains reports whether key is cached, without touching statistics.
func (c *Cache) Contains(key string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.items[key]
	return ok
}

// Len returns the number of cached items.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.items)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// HitRate returns Hits / (Hits + Misses), or 0 before any read.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
