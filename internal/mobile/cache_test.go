package mobile

import (
	"sync"
	"testing"

	"mobirep/internal/db"
)

func item(key string, version uint64) db.Item {
	return db.Item{Key: key, Value: []byte(key), Version: version}
}

func TestGetMissThenHit(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("x"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Install(item("x", 1))
	if it, ok := c.Get("x"); !ok || it.Version != 1 {
		t.Fatalf("get after install: %+v ok=%v", it, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Installs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeekDoesNotTouchStats(t *testing.T) {
	c := NewCache()
	c.Install(item("x", 1))
	c.Peek("x")
	c.Peek("y")
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("peek touched stats: %+v", s)
	}
}

func TestUpdateVersionGate(t *testing.T) {
	c := NewCache()
	c.Install(item("x", 5))
	if !c.Update(item("x", 6)) {
		t.Fatal("newer version rejected")
	}
	if c.Update(item("x", 6)) {
		t.Fatal("equal version accepted")
	}
	if c.Update(item("x", 3)) {
		t.Fatal("older version accepted")
	}
	if c.Update(item("y", 1)) {
		t.Fatal("update of uncached key accepted")
	}
	s := c.Stats()
	if s.Updates != 1 || s.StaleUpdates != 3 {
		t.Fatalf("stats = %+v", s)
	}
	it, _ := c.Peek("x")
	if it.Version != 6 {
		t.Fatalf("version = %d", it.Version)
	}
}

func TestDrop(t *testing.T) {
	c := NewCache()
	c.Install(item("x", 1))
	if !c.Drop("x") {
		t.Fatal("drop of cached key failed")
	}
	if c.Drop("x") {
		t.Fatal("double drop succeeded")
	}
	if c.Contains("x") || c.Len() != 0 {
		t.Fatal("item survived drop")
	}
	if c.Stats().Drops != 1 {
		t.Fatalf("drops = %d", c.Stats().Drops)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 4 {
				case 0:
					c.Install(item("x", uint64(i)))
				case 1:
					c.Get("x")
				case 2:
					c.Update(item("x", uint64(i)))
				case 3:
					c.Drop("x")
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestArchiveLifecycle(t *testing.T) {
	c := NewCache()
	c.Install(item("x", 3))
	if c.ArchiveLen() != 0 {
		t.Fatal("archive should start empty")
	}
	c.Drop("x")
	if c.ArchiveLen() != 1 {
		t.Fatal("drop should archive")
	}
	arch, ok := c.Archived("x")
	if !ok || arch.Version != 3 {
		t.Fatalf("archived = %+v ok=%v", arch, ok)
	}
	// Archived values are not served.
	if c.Contains("x") {
		t.Fatal("archived item still cached")
	}
	// Revalidation returns the archived value and counts it.
	got, ok := c.Revalidated("x")
	if !ok || got.Version != 3 {
		t.Fatalf("revalidated = %+v ok=%v", got, ok)
	}
	if c.Stats().Revalidations != 1 {
		t.Fatalf("revalidations = %d", c.Stats().Revalidations)
	}
	if _, ok := c.Revalidated("missing"); ok {
		t.Fatal("revalidated a never-seen key")
	}
}

func TestInstallSupersedesArchive(t *testing.T) {
	c := NewCache()
	c.Install(item("x", 1))
	c.Drop("x")
	c.Install(item("x", 2))
	if c.ArchiveLen() != 0 {
		t.Fatal("install should clear the archived version")
	}
	if _, ok := c.Archived("x"); ok {
		t.Fatal("stale archive entry survived a fresh install")
	}
}
