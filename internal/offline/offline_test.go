package offline

import (
	"math"
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

// traceCost re-prices a schedule from an explicit state sequence using the
// same rules as BruteForce; tests use it to check Trace optimality.
func traceCost(s sched.Schedule, states []bool, c Costs) float64 {
	total := 0.0
	prev := false
	// The initial state is free; pick whatever makes the first step
	// cheapest, consistent with solve's free choice of start state.
	if len(states) > 0 {
		if s[0] == sched.Read {
			prev = true // a held copy makes the first read free
		} else {
			prev = false
		}
	}
	for i, op := range s {
		next := states[i]
		if op == sched.Read {
			if !prev {
				total += c.ReadMiss
			}
			if prev && !next {
				total += c.Dealloc
			}
		} else {
			if prev {
				total += c.WriteHit
			}
			if !prev && next {
				total += c.Alloc
			}
			if prev && !next {
				total += c.Dealloc
			}
		}
		prev = next
	}
	return total
}

func schedFromBools(raw []bool) sched.Schedule {
	s := make(sched.Schedule, len(raw))
	for i, b := range raw {
		if b {
			s[i] = sched.Write
		}
	}
	return s
}

func TestCostMatchesBruteForce(t *testing.T) {
	for _, c := range []Costs{Ideal(), Handicapped(0.5), Handicapped(1)} {
		c := c
		check := func(raw []bool) bool {
			if len(raw) > 14 {
				raw = raw[:14]
			}
			s := schedFromBools(raw)
			dp := Cost(s, c)
			bf := BruteForce(s, c)
			return math.Abs(dp-bf) < 1e-9
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("costs %+v: %v", c, err)
		}
	}
}

func TestHomogeneousSchedulesAreFree(t *testing.T) {
	c := Ideal()
	if got := Cost(sched.Block(sched.Read, 50), c); got != 0 {
		t.Fatalf("all-reads OPT = %v, want 0 (keep a copy throughout)", got)
	}
	if got := Cost(sched.Block(sched.Write, 50), c); got != 0 {
		t.Fatalf("all-writes OPT = %v, want 0 (hold no copy)", got)
	}
	if got := Cost(nil, c); got != 0 {
		t.Fatalf("empty OPT = %v", got)
	}
}

func TestCycleCosts(t *testing.T) {
	c := Ideal()
	// (r^a w^b)^N costs N-1: the first cycle is free from the right start
	// state, and every later cycle pays exactly one re-allocation read.
	for _, dims := range []struct{ a, b, n int }{{1, 1, 5}, {3, 3, 4}, {2, 5, 6}, {5, 1, 3}} {
		cycle := sched.Concat(sched.Block(sched.Read, dims.a), sched.Block(sched.Write, dims.b))
		s := cycle.Repeat(dims.n)
		want := float64(dims.n - 1)
		if got := Cost(s, c); math.Abs(got-want) > 1e-9 {
			t.Fatalf("(r^%d w^%d)^%d OPT = %v, want %v", dims.a, dims.b, dims.n, got, want)
		}
	}
}

func TestWriteFirstCycle(t *testing.T) {
	c := Ideal()
	// (w r^5)^N: keeping a copy throughout pays one propagation per cycle.
	s := sched.Concat(sched.Block(sched.Write, 1), sched.Block(sched.Read, 5)).Repeat(7)
	if got := Cost(s, c); math.Abs(got-7) > 1e-9 {
		t.Fatalf("OPT = %v, want 7", got)
	}
}

func TestHandicappedCostsMore(t *testing.T) {
	check := func(raw []bool) bool {
		s := schedFromBools(raw)
		return Cost(s, Handicapped(0.7)) >= Cost(s, Ideal())-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCostMatchesOptimal(t *testing.T) {
	for _, c := range []Costs{Ideal(), Handicapped(0.4)} {
		c := c
		check := func(raw []bool) bool {
			s := schedFromBools(raw)
			opt, states := Trace(s, c)
			if len(states) != len(s) {
				return false
			}
			return math.Abs(traceCost(s, states, c)-opt) < 1e-9
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("costs %+v: %v", c, err)
		}
	}
}

func TestTraceFollowsPhases(t *testing.T) {
	// On r^5 w^5 the optimal trace holds the copy during reads and not
	// during writes.
	s := sched.Concat(sched.Block(sched.Read, 5), sched.Block(sched.Write, 5))
	opt, states := Trace(s, Ideal())
	if opt != 0 {
		t.Fatalf("OPT = %v, want 0", opt)
	}
	for i := 0; i < 4; i++ {
		if !states[i] {
			t.Fatalf("copy should be held during read %d", i)
		}
	}
	for i := 5; i < 10; i++ {
		if states[i] {
			t.Fatalf("copy should be dropped during write %d", i)
		}
	}
}

func TestCostMonotoneUnderExtension(t *testing.T) {
	// Appending requests can never decrease the optimal cost.
	c := Ideal()
	check := func(raw []bool) bool {
		s := schedFromBools(raw)
		for i := 1; i < len(s); i++ {
			if Cost(s[:i], c) > Cost(s[:i+1], c)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCostUpperBounds(t *testing.T) {
	// OPT never exceeds the cost of the better static strategy: reads
	// (stay copyless) or writes (hold a copy).
	c := Ideal()
	check := func(raw []bool) bool {
		s := schedFromBools(raw)
		reads, writes := s.Counts()
		bound := math.Min(float64(reads), float64(writes))
		return Cost(s, c) <= bound+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForcePanicsOnLongSchedule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BruteForce(sched.Block(sched.Read, 21), Ideal())
}
