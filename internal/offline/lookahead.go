package offline

import "mobirep/internal/sched"

// Lookahead interpolates between the online world and the ideal offline
// algorithm: a receding-horizon player that sees the next L requests
// (including the current one) and plays the first move of an optimal plan
// for that horizon. L = 0 degenerates to a memoryless greedy; L >= len(s)
// achieves the offline optimum. The "value of foresight" experiment runs
// the sweep in between, measuring how much of the k+1 competitive gap
// each unit of lookahead buys back.
//
// The plan for a horizon is the same two-state dynamic program as Cost,
// with a zero terminal value (beyond the horizon, the player assumes
// nothing).

// LookaheadCost returns the total cost incurred by the horizon-L player
// on schedule s under costs c, starting without a copy.
func LookaheadCost(s sched.Schedule, L int, c Costs) float64 {
	if L < 0 {
		L = 0
	}
	total := 0.0
	state := 0 // copy bit at the MC
	for i := range s {
		end := i + L
		if end > len(s) {
			end = len(s)
		}
		if end == i {
			end = i + 1 // the current request is always visible
			if end > len(s) {
				end = len(s)
			}
		}
		stepCost, nextState := planFirstMove(s[i:end], state, c)
		total += stepCost
		state = nextState
	}
	return total
}

// planFirstMove solves the horizon DP and returns the cost of serving the
// first request plus the state chosen after it, under an optimal plan for
// the window.
func planFirstMove(window sched.Schedule, state int, c Costs) (float64, int) {
	// value[j][st] = optimal cost of requests window[j:] starting in st.
	n := len(window)
	// Compute backwards.
	next := [2]float64{0, 0}
	cur := [2]float64{}
	// choice[st] at j==0: the best (cost, newState) for the first step.
	var firstCost [2]float64
	var firstState [2]int
	for j := n - 1; j >= 0; j-- {
		op := window[j]
		for st := 0; st < 2; st++ {
			best := -1.0
			bestNext := st
			bestStep := 0.0
			for _, nxt := range []int{0, 1} {
				step := transitionCost(op, st, nxt, c)
				if step < 0 {
					continue // disallowed transition (none currently)
				}
				if total := step + next[nxt]; best < 0 || total < best {
					best = total
					bestNext = nxt
					bestStep = step
				}
			}
			cur[st] = best
			if j == 0 {
				firstCost[st] = bestStep
				firstState[st] = bestNext
			}
		}
		next = cur
	}
	return firstCost[state], firstState[state]
}

// transitionCost prices serving op from state st and moving to nxt, using
// the same conventions as the offline DP in this package.
func transitionCost(op sched.Op, st, nxt int, c Costs) float64 {
	cost := 0.0
	if op == sched.Read {
		if st == 0 {
			cost += c.ReadMiss
		}
		if st == 1 && nxt == 0 {
			cost += c.Dealloc
		}
		// 0 -> 1 after a miss is free: the data just flowed.
		return cost
	}
	if st == 1 {
		cost += c.WriteHit
		if nxt == 0 {
			cost += c.Dealloc
		}
		return cost
	}
	if nxt == 1 {
		cost += c.Alloc
	}
	return cost
}
