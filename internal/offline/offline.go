// Package offline implements the paper's comparator M: the ideal offline
// data allocation algorithm that knows the whole request schedule in
// advance. Competitiveness (section 3) is defined against its cost.
//
// Because M's logic runs with complete knowledge on both computers, it
// never needs control traffic: a remote read costs one data message (the
// SC pushes the value without being asked), a write propagated to a held
// copy costs one data message, deallocation is free (the SC simply stops
// sending), and allocation is free when it rides a data transfer that is
// happening anyway (a remote read) and costs one data message otherwise.
// These conventions are exactly the ones under which every tightness claim
// in the paper (Theorems 4, 11 and 12) is achieved; see DESIGN.md. Under
// them the optimal cost is the same number in both the connection and the
// message model, so one dynamic program serves both.
//
// The dynamic program runs in O(m) time and O(1) space over the two
// allocation states. A 2^m brute force over all state sequences doubles as
// the test oracle.
package offline

import (
	"math"

	"mobirep/internal/sched"
)

// Costs parametrizes the offline comparator. The zero value is useless;
// use Ideal for the paper's comparator. Experiments also use a handicapped
// variant that pays for control messages, to show how sensitive the
// competitive ratios are to the comparator's power.
type Costs struct {
	// ReadMiss is the cost of serving a read while the MC holds no copy.
	ReadMiss float64
	// WriteHit is the cost of a write while the MC holds a copy.
	WriteHit float64
	// Alloc is the cost of allocating a copy outside a read miss (the SC
	// pushes the item spontaneously). Allocation during a read miss is
	// free: the data message is already being sent.
	Alloc float64
	// Dealloc is the cost of dropping the MC's copy. Zero for the ideal
	// comparator; a handicapped comparator pays the delete-request.
	Dealloc float64
}

// Ideal returns the paper's comparator costs: data messages cost 1,
// everything that can piggyback or be foreseen is free.
func Ideal() Costs {
	return Costs{ReadMiss: 1, WriteHit: 1, Alloc: 1, Dealloc: 0}
}

// Handicapped returns a comparator that, like the online algorithms, must
// pay omega for the read-request and delete-request control messages. It
// still knows the future. Used in ablation experiments only.
func Handicapped(omega float64) Costs {
	return Costs{ReadMiss: 1 + omega, WriteHit: 1, Alloc: 1, Dealloc: omega}
}

// Cost returns the minimum cost of serving the schedule under c, starting
// from either allocation state for free (the additive constant b in the
// competitiveness definition absorbs the initial state).
func Cost(s sched.Schedule, c Costs) float64 {
	cost, _ := solve(s, c, false)
	return cost
}

// Trace returns the minimum cost together with one optimal allocation
// state sequence: states[i] reports whether the MC holds a copy right
// after request i is served. len(states) == len(s).
func Trace(s sched.Schedule, c Costs) (float64, []bool) {
	return solve(s, c, true)
}

func solve(s sched.Schedule, c Costs, wantTrace bool) (float64, []bool) {
	// dp0/dp1: cheapest cost of the prefix ending with no copy / a copy.
	dp0, dp1 := 0.0, 0.0
	// choice[i][after] records the predecessor state that attained the
	// minimum, for trace reconstruction.
	var choice [][2]uint8
	if wantTrace {
		choice = make([][2]uint8, len(s))
	}
	for i, op := range s {
		var n0, n1 float64
		var p0, p1 uint8
		if op == sched.Read {
			// Serving from state 1 is free; from state 0 costs ReadMiss.
			// Every post-read transition is free (data flowed on a miss,
			// deallocation is free for the ideal comparator... but not for
			// a handicapped one, so price Dealloc on the 1 -> 0 edge).
			n0, p0 = pick(dp1+c.Dealloc, dp0+c.ReadMiss)
			n1, p1 = pick(dp1, dp0+c.ReadMiss)
		} else {
			// Serving from state 1 costs WriteHit; from state 0 it is
			// free. Ending with a copy from state 0 means pushing the new
			// value: Alloc.
			n0, p0 = pick(dp1+c.WriteHit+c.Dealloc, dp0)
			n1, p1 = pick(dp1+c.WriteHit, dp0+c.Alloc)
		}
		if wantTrace {
			choice[i] = [2]uint8{p0, p1}
		}
		dp0, dp1 = n0, n1
	}
	best := math.Min(dp0, dp1)
	if !wantTrace {
		return best, nil
	}
	states := make([]bool, len(s))
	cur := uint8(0)
	if dp1 < dp0 {
		cur = 1
	}
	for i := len(s) - 1; i >= 0; i-- {
		states[i] = cur == 1
		cur = choice[i][cur]
	}
	return best, states
}

// pick returns the smaller of fromCopy (predecessor state 1) and fromNone
// (predecessor state 0) and which predecessor attained it.
func pick(fromCopy, fromNone float64) (float64, uint8) {
	if fromCopy <= fromNone {
		return fromCopy, 1
	}
	return fromNone, 0
}

// BruteForce computes the same optimum by enumerating every allocation
// state sequence. It is exponential and exists as the test oracle for
// Cost; it panics beyond 20 requests.
func BruteForce(s sched.Schedule, c Costs) float64 {
	if len(s) > 20 {
		panic("offline: brute force limited to 20 requests")
	}
	best := math.Inf(1)
	// start: initial state; mask bit i: state after request i.
	for start := 0; start < 2; start++ {
		for mask := 0; mask < 1<<len(s); mask++ {
			total := 0.0
			prev := start
			for i, op := range s {
				next := (mask >> i) & 1
				if op == sched.Read {
					if prev == 0 {
						total += c.ReadMiss
					}
					// 0 -> 1 is free after a miss; 1 -> 0 pays Dealloc.
					if prev == 1 && next == 0 {
						total += c.Dealloc
					}
				} else {
					if prev == 1 {
						total += c.WriteHit
					}
					if prev == 0 && next == 1 {
						total += c.Alloc
					}
					if prev == 1 && next == 0 {
						total += c.Dealloc
					}
				}
				prev = next
			}
			if total < best {
				best = total
			}
		}
	}
	return best
}
