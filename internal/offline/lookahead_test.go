package offline

import (
	"math"
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

func TestLookaheadFullHorizonEqualsOptimal(t *testing.T) {
	c := Ideal()
	check := func(raw []bool) bool {
		s := schedFromBools(raw)
		full := LookaheadCost(s, len(s)+1, c)
		// LookaheadCost starts copyless; Cost allows a free initial copy,
		// so full-horizon lookahead can pay at most one extra ReadMiss.
		opt := Cost(s, c)
		return full >= opt-1e-9 && full <= opt+c.ReadMiss+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLookaheadNeverBeatsOptimal(t *testing.T) {
	c := Ideal()
	check := func(raw []bool, lRaw uint8) bool {
		s := schedFromBools(raw)
		L := int(lRaw % 12)
		return LookaheadCost(s, L, c) >= Cost(s, c)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLookaheadOnCycles(t *testing.T) {
	c := Ideal()
	// (r^3 w^3)^N. SW5 pays 6 per cycle; the offline optimum pays 1. A
	// horizon that spans the read run should drop to near-optimal.
	s := sched.Concat(sched.Block(sched.Read, 3), sched.Block(sched.Write, 3)).Repeat(50)
	opt := Cost(s, c)
	prevRatio := math.Inf(1)
	for _, L := range []int{1, 2, 4, 8, 16} {
		cost := LookaheadCost(s, L, c)
		ratio := cost / opt
		if ratio > prevRatio+0.5 {
			t.Fatalf("L=%d: ratio %v jumped above %v", L, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	// With a horizon longer than a cycle, the player is near-optimal.
	if ratio := LookaheadCost(s, 7, c) / opt; ratio > 1.5 {
		t.Fatalf("L=7 ratio %v, want near 1", ratio)
	}
}

func TestLookaheadZeroIsGreedy(t *testing.T) {
	c := Ideal()
	// L=0 still sees the current request (a server must serve what
	// arrived). Greedy with one-step sight never allocates on reads (the
	// plan sees no future benefit) and never holds through writes.
	s := sched.MustParse("rrrr")
	if got := LookaheadCost(s, 0, c); got != 4 {
		t.Fatalf("greedy all-reads cost %v, want 4 (never allocates)", got)
	}
	s = sched.MustParse("wwww")
	if got := LookaheadCost(s, 0, c); got != 0 {
		t.Fatalf("greedy all-writes cost %v, want 0", got)
	}
}

func TestLookaheadTwoSeesAllocationValue(t *testing.T) {
	c := Ideal()
	// With L=2 the player sees a read followed by a read: allocating on
	// the first saves the second.
	s := sched.MustParse("rrrr")
	if got := LookaheadCost(s, 2, c); got != 1 {
		t.Fatalf("L=2 all-reads cost %v, want 1", got)
	}
}

func TestLookaheadEmptySchedule(t *testing.T) {
	if got := LookaheadCost(nil, 3, Ideal()); got != 0 {
		t.Fatalf("empty cost %v", got)
	}
}
