package load

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/tree"
)

// TreeConfig describes one tree load run: a fleet of mobile computers
// spread over the leaves of a binary support-station tree, reading while
// the root writes and a fraction of the fleet keeps moving between
// leaves. It is the tree-layer counterpart of Config — the same knobs
// where they overlap — and the engine behind `mobirep-load -tree` and
// the ci.sh tree smoke.
type TreeConfig struct {
	// Stations is the binary-tree size (heap order, station 0 the root).
	// 0 defaults to 7 — depth 2, four leaves.
	Stations int
	// Sessions is the number of MCs, assigned round-robin over the
	// leaves. Required.
	Sessions int
	// Shards is each station's server shard count; 0 picks automatic.
	Shards int
	// Mode is the per-key allocation mode on every edge.
	Mode replica.Mode
	// Placement is the per-relay placement policy. Zero value is
	// PolicyNone (hold everything the protocol allocates).
	Placement tree.Policy
	// Keys is the shared key-pool size; 0 defaults to Sessions/8,
	// floored at 16.
	Keys int
	// Duration is the steady-state drive phase length. 0 defaults to 2s.
	Duration time.Duration
	// Workers is the number of driver goroutines; 0 defaults to
	// 16*GOMAXPROCS capped at 128.
	Workers int
	// Seed derives every per-worker RNG.
	Seed uint64
	// Timeout bounds each MC read; 0 defaults to 250ms. Tree reads can
	// legitimately take a fetch round trip per level, so the default is
	// wider than the flat fleet's.
	Timeout time.Duration
	// Writers is the number of background goroutines cycling root writes
	// during the drive phase; 0 defaults to 2.
	Writers int
	// WritePause throttles each background writer; 0 defaults to 200µs.
	WritePause time.Duration
	// HandoffEvery makes each worker hand one of its MCs off to a random
	// other leaf every N reads; 0 disables motion.
	HandoffEvery int
}

// TreeResult is one tree run's measurements.
type TreeResult struct {
	Stations int
	Leaves   int
	Sessions int
	Shards   int
	Keys     int
	Workers  int

	AttachSeconds  float64
	SessionsPerSec float64

	DriveSeconds float64
	Ops          int
	OpsPerSec    float64
	Errors       int
	Writes       int

	// Motion during the drive phase: completed handoffs and how many of
	// them fell back to a cold reattach (0 expected — the root never
	// restarts here).
	Handoffs     int
	ColdHandoffs int

	// Read latency over successful reads, exact nearest-rank
	// percentiles.
	Samples            int
	P50, P90, P99, Max time.Duration

	// Handoff latency (Handoff call to resync completion).
	HandoffP50, HandoffP99, HandoffMax time.Duration
}

// RunTree executes one tree load run and tears everything down before
// returning.
func RunTree(cfg TreeConfig) (TreeResult, error) {
	if cfg.Sessions <= 0 {
		return TreeResult{}, errors.New("load: Sessions must be positive")
	}
	if cfg.Stations == 0 {
		cfg.Stations = 7
	}
	topo := tree.Binary(cfg.Stations)
	if err := topo.Validate(); err != nil {
		return TreeResult{}, err
	}
	leaves := topo.Leaves()
	if cfg.Keys == 0 {
		cfg.Keys = cfg.Sessions / 8
		if cfg.Keys < 16 {
			cfg.Keys = 16
		}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers == 0 {
		cfg.Workers = 16 * runtime.GOMAXPROCS(0)
		if cfg.Workers > 128 {
			cfg.Workers = 128
		}
	}
	if cfg.Workers > cfg.Sessions {
		cfg.Workers = cfg.Sessions
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.Writers == 0 {
		cfg.Writers = 2
	}
	if cfg.WritePause == 0 {
		cfg.WritePause = 200 * time.Microsecond
	}

	connect := func(child, parent int) (transport.Link, transport.Link, error) {
		a, b := transport.NewMemPair()
		return a, b, nil
	}
	tr, err := tree.Build(topo, db.NewStore(), cfg.Mode, cfg.Shards, cfg.Placement, connect)
	if err != nil {
		return TreeResult{}, err
	}
	root := tr.Stations[0].Server()
	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("tree-key-%d", i)
		if _, err := root.Write(keys[i], []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			return TreeResult{}, err
		}
	}

	mcs := make([]*tree.MC, cfg.Sessions)
	bounds := make([]int, cfg.Workers+1)
	for w := 0; w <= cfg.Workers; w++ {
		bounds[w] = w * cfg.Sessions / cfg.Workers
	}

	// Attach phase: every MC lands on its round-robin home leaf.
	var wg sync.WaitGroup
	attachErrs := make([]error, cfg.Workers)
	attachStart := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := bounds[w]; i < bounds[w+1]; i++ {
				a, b := transport.NewMemPair()
				mc, err := tr.AttachMC(leaves[i%len(leaves)], a, b)
				if err != nil {
					attachErrs[w] = err
					return
				}
				mc.Client.Timeout = cfg.Timeout
				mcs[i] = mc
			}
		}(w)
	}
	wg.Wait()
	attachSecs := time.Since(attachStart).Seconds()
	for _, err := range attachErrs {
		if err != nil {
			return TreeResult{}, err
		}
	}

	// Drive phase: workers sweep their MCs issuing reads (mostly each
	// MC's home key), writers keep the root's propagation paths hot, and
	// every HandoffEvery reads a worker moves one MC to another leaf.
	type workerStats struct {
		lats     []time.Duration
		handoffs []time.Duration
		ops      int
		errs     int
		cold     int
	}
	perWorker := make([]workerStats, cfg.Workers)
	stopWriters := make(chan struct{})
	var writes atomic.Int64
	var writerWg sync.WaitGroup
	for wr := 0; wr < cfg.Writers; wr++ {
		writerWg.Add(1)
		go func(wr int) {
			defer writerWg.Done()
			payload := []byte(fmt.Sprintf("write-from-%d", wr))
			for i := wr; ; i += cfg.Writers {
				select {
				case <-stopWriters:
					return
				default:
				}
				if _, err := root.Write(keys[i%len(keys)], payload); err != nil {
					return
				}
				writes.Add(1)
				time.Sleep(cfg.WritePause)
			}
		}(wr)
	}

	driveStart := time.Now()
	deadline := driveStart.Add(cfg.Duration)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(cfg.Seed ^ (uint64(w) + 0x9e3779b97f4a7c15))
			st := &perWorker[w]
			lo, hi := bounds[w], bounds[w+1]
			st.lats = make([]time.Duration, 0, 4096)
			for i := lo; ; i++ {
				if i == hi {
					i = lo
				}
				if time.Now().After(deadline) {
					return
				}
				key := keys[i%len(keys)]
				if rng.Intn(16) == 0 {
					key = keys[rng.Intn(len(keys))]
				}
				t0 := time.Now()
				_, err := mcs[i].Client.Read(key)
				d := time.Since(t0)
				st.ops++
				if err != nil {
					st.errs++
				} else {
					st.lats = append(st.lats, d)
				}
				if cfg.HandoffEvery > 0 && st.ops%cfg.HandoffEvery == 0 {
					mc := mcs[i]
					to := leaves[rng.Intn(len(leaves))]
					for len(leaves) > 1 && to == mc.Station() {
						to = leaves[rng.Intn(len(leaves))]
					}
					a, b := transport.NewMemPair()
					h0 := time.Now()
					done, err := mc.Handoff(to, a, b)
					if err != nil {
						st.errs++
						continue
					}
					<-done
					st.handoffs = append(st.handoffs, time.Since(h0))
					if !mc.FinishHandoff(a) {
						st.cold++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	driveSecs := time.Since(driveStart).Seconds()
	close(stopWriters)
	writerWg.Wait()

	// Teardown: detach every MC so chaos-free links die quietly.
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := bounds[w]; i < bounds[w+1]; i++ {
				mcs[i].Session().Detach()
				mcs[i].Client.Disconnect()
			}
		}(w)
	}
	wg.Wait()

	res := TreeResult{
		Stations:       cfg.Stations,
		Leaves:         len(leaves),
		Sessions:       cfg.Sessions,
		Shards:         tr.Stations[0].Server().Shards(),
		Keys:           cfg.Keys,
		Workers:        cfg.Workers,
		AttachSeconds:  attachSecs,
		SessionsPerSec: float64(cfg.Sessions) / attachSecs,
		DriveSeconds:   driveSecs,
		Writes:         int(writes.Load()),
	}
	var all, allHandoffs []time.Duration
	for w := range perWorker {
		res.Ops += perWorker[w].ops
		res.Errors += perWorker[w].errs
		res.ColdHandoffs += perWorker[w].cold
		all = append(all, perWorker[w].lats...)
		allHandoffs = append(allHandoffs, perWorker[w].handoffs...)
	}
	res.OpsPerSec = float64(res.Ops) / driveSecs
	res.Handoffs = len(allHandoffs)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Samples = len(all)
	if n := len(all); n > 0 {
		res.P50 = percentile(all, 0.50)
		res.P90 = percentile(all, 0.90)
		res.P99 = percentile(all, 0.99)
		res.Max = all[n-1]
	}
	sort.Slice(allHandoffs, func(i, j int) bool { return allHandoffs[i] < allHandoffs[j] })
	if n := len(allHandoffs); n > 0 {
		res.HandoffP50 = percentile(allHandoffs, 0.50)
		res.HandoffP99 = percentile(allHandoffs, 0.99)
		res.HandoffMax = allHandoffs[n-1]
	}
	return res, nil
}
