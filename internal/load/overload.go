package load

// The overload scenario: a fleet Factor× the server's admitted capacity
// attempts to attach, a slice of the admitted clients stops reading its
// link (transport.Chaos stall faults), and the server must keep serving
// the healthy remainder within bounded memory — refusing the overflow
// with Busy frames, capping what it buffers for the stalled readers, and
// shedding idle sessions when the accounted memory crosses the soft
// watermark. RunOverload measures all of it in one process: admission
// counts, Busy delivery, read latency over the healthy fleet, heap and
// memory-account peaks, and goroutine balance across teardown. It is the
// engine behind `mobirep-load -overload`, experiment E25, and the ci.sh
// overload smoke.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

// OverloadConfig describes one overload run.
type OverloadConfig struct {
	// Capacity is the server's MaxSessions admission cap. Required.
	Capacity int
	// Factor scales the attempted fleet: Factor*Capacity clients try to
	// attach, so everything past 1.0 is refused load. 0 defaults to 2.
	Factor float64
	// StalledFrac is the fraction of admitted clients whose server->client
	// direction stalls permanently (the reader wedged after the handshake).
	// 0 defaults to 0.1; set negative for none.
	StalledFrac float64
	// StallCap bounds the bytes buffered toward one stalled client before
	// its link is killed, mirroring a bounded outbox. 0 defaults to 256KiB.
	StallCap int
	// Mode is the per-key allocation mode. Required (zero value invalid).
	Mode replica.Mode
	// Shards is the server shard count (power of two); 0 auto-picks.
	Shards int
	// Keys is the shared key-pool size; 0 defaults as in Run (admitted/8,
	// floored at 16).
	Keys int
	// Duration is the steady-state drive phase length; 0 defaults to 2s.
	Duration time.Duration
	// Workers drives the healthy fleet; 0 defaults as in Run.
	Workers int
	// Writers / WritePause configure the background write load; 0 defaults
	// to 2 writers at 200µs.
	Writers    int
	WritePause time.Duration
	// Timeout bounds each measured read; 0 defaults to 25ms.
	Timeout time.Duration
	// Seed derives the per-link chaos seeds and worker RNGs.
	Seed uint64
	// MemSoftLimit is the server's soft memory watermark in accounted
	// bytes; a shed ticker enforces it during the drive phase. 0 disables
	// shedding.
	MemSoftLimit int64
	// ShedEvery is the shed ticker period; 0 defaults to 50ms.
	ShedEvery time.Duration
	// RetryAfter is the hint carried in Busy refusals; 0 defaults to 50ms.
	RetryAfter time.Duration
}

// OverloadResult is one overload run's measurements.
type OverloadResult struct {
	Capacity  int
	Attempted int
	Admitted  int
	Rejected  int
	// BusyFrames counts Busy frames received by the refused clients. The
	// protocol promise is BusyFrames == Rejected: nobody is dropped
	// without being told.
	BusyFrames int
	// Stalled is how many admitted clients had their server->client
	// direction wedged; Shed is how many sessions the watermark shedder
	// evicted during the drive phase.
	Stalled int
	Shed    int

	// Drive phase over the healthy (admitted, non-stalled) fleet.
	DriveSeconds       float64
	Ops                int
	OpsPerSec          float64
	Errors             int
	Samples            int
	P50, P90, P99, Max time.Duration

	// HeapPeakBytes is the largest live-heap sample (runtime.HeapAlloc)
	// observed during the drive phase; MemAccountPeak is the largest
	// server-side accounted total (Server.MemBytes). Both bound "did the
	// stalled 10% wedge memory".
	HeapPeakBytes  uint64
	MemAccountPeak int64

	// Goroutine balance: counts before attach and after teardown settled.
	// Anything the run leaked shows as After > Before.
	GoroutinesBefore int
	GoroutinesAfter  int
}

// RunOverload executes one overload scenario and tears everything down
// before returning.
func RunOverload(cfg OverloadConfig) (OverloadResult, error) {
	if cfg.Capacity <= 0 {
		return OverloadResult{}, errors.New("load: overload Capacity must be positive")
	}
	if cfg.Factor == 0 {
		cfg.Factor = 2
	}
	if cfg.Factor <= 0 {
		return OverloadResult{}, errors.New("load: overload Factor must be positive")
	}
	if cfg.StalledFrac == 0 {
		cfg.StalledFrac = 0.1
	}
	if cfg.StallCap == 0 {
		cfg.StallCap = 256 << 10
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 25 * time.Millisecond
	}
	if cfg.Writers == 0 {
		cfg.Writers = 2
	}
	if cfg.WritePause == 0 {
		cfg.WritePause = 200 * time.Microsecond
	}
	if cfg.ShedEvery == 0 {
		cfg.ShedEvery = 50 * time.Millisecond
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	attempted := int(cfg.Factor*float64(cfg.Capacity) + 0.5)
	if attempted < 1 {
		attempted = 1
	}
	if cfg.Keys == 0 {
		cfg.Keys = cfg.Capacity / 8
		if cfg.Keys < 16 {
			cfg.Keys = 16
		}
	}

	res := OverloadResult{
		Capacity:         cfg.Capacity,
		Attempted:        attempted,
		GoroutinesBefore: runtime.NumGoroutine(),
	}

	srv, err := replica.NewServerShards(db.NewStore(), cfg.Mode, cfg.Shards)
	if err != nil {
		return OverloadResult{}, err
	}
	if err := srv.SetAdmission(replica.AdmissionConfig{
		MaxSessions: cfg.Capacity,
		RetryAfter:  cfg.RetryAfter,
	}); err != nil {
		return OverloadResult{}, err
	}
	srv.SetMemSoftLimit(cfg.MemSoftLimit)

	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("overload-key-%d", i)
		if _, err := srv.Write(keys[i], []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			return OverloadResult{}, err
		}
	}

	// Attach phase, sequential so the admitted set is deterministic: the
	// first Capacity attempts land, the rest are refused. Every StallEvery-th
	// admitted index gets its server->client direction wrapped in a chaos
	// stall (probability 1, horizon far past the run) before attaching —
	// the wrap must precede TryAttach, so determinism of the admitted set
	// is what lets the stalled slice be chosen up front. Each client's
	// Busy handler counts refusals per index; the client side of the pair
	// is built first, so the synchronous in-memory delivery of a Busy
	// refusal is observed before TryAttach even returns.
	stallEvery := 0
	if cfg.StalledFrac > 0 {
		stallEvery = int(1 / cfg.StalledFrac)
		if stallEvery < 1 {
			stallEvery = 1
		}
	}
	clients := make([]*replica.Client, attempted)
	sessions := make([]*replica.Session, attempted)
	stalls := make([]*transport.Chaos, attempted)
	busies := make([]atomic.Int64, attempted)
	var healthy, stalledIdx []int
	for i := 0; i < attempted; i++ {
		a, b := transport.NewMemPair()
		var serverLink transport.Link = a
		willStall := stallEvery > 0 && i < cfg.Capacity && i%stallEvery == 0
		if willStall {
			ch, err := transport.NewChaos(a, transport.Config{
				Seed:     cfg.Seed + uint64(i)*2654435761,
				Stall:    1,
				StallFor: time.Hour,
				StallCap: cfg.StallCap,
			})
			if err != nil {
				return OverloadResult{}, err
			}
			serverLink, stalls[i] = ch, ch
		}
		cli, err := replica.NewClient(b, cfg.Mode)
		if err != nil {
			return OverloadResult{}, err
		}
		cli.Timeout = cfg.Timeout
		idx := i
		cli.SetBusyHandler(func(time.Duration, string) { busies[idx].Add(1) })
		clients[i] = cli
		sess, err := srv.TryAttach(serverLink)
		switch {
		case err == nil:
			sessions[i] = sess
			if willStall {
				stalledIdx = append(stalledIdx, i)
			} else {
				healthy = append(healthy, i)
			}
		case errors.Is(err, replica.ErrServerBusy):
			res.Rejected++
			cli.Disconnect()
		default:
			return OverloadResult{}, err
		}
	}
	res.Admitted = attempted - res.Rejected
	res.Stalled = len(stalledIdx)
	for i := range busies {
		if sessions[i] == nil {
			res.BusyFrames += int(busies[i].Load())
		}
	}

	// Subscribe the stalled clients: their requests still reach the server
	// (only the return direction is wedged), so a few reads of the home
	// key build the server-side subscription that makes background writes
	// propagate — straight into the stall buffer. The reads themselves
	// time out fast; they are not part of the measured fleet.
	var wg sync.WaitGroup
	for _, i := range stalledIdx {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clients[i].Timeout = 2 * time.Millisecond
			key := keys[i%len(keys)]
			for r := 0; r < cfg.Mode.K+1; r++ {
				_, _ = clients[i].Read(key)
			}
		}(i)
	}
	wg.Wait()

	// Background load and watchdogs for the drive phase: writers cycle the
	// key pool, a shed ticker enforces the watermark, and a sampler tracks
	// heap and accounted-memory peaks.
	stop := make(chan struct{})
	var bgWg sync.WaitGroup
	var writes atomic.Int64
	for wr := 0; wr < cfg.Writers; wr++ {
		bgWg.Add(1)
		go func(wr int) {
			defer bgWg.Done()
			payload := []byte(fmt.Sprintf("overload-write-%d", wr))
			for i := wr; ; i += cfg.Writers {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.Write(keys[i%len(keys)], payload); err != nil {
					return
				}
				writes.Add(1)
				time.Sleep(cfg.WritePause)
			}
		}(wr)
	}
	var shed atomic.Int64
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		tick := time.NewTicker(cfg.ShedEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				shed.Add(int64(srv.ShedToBudget()))
			}
		}
	}()
	var heapPeak atomic.Uint64
	var memPeak atomic.Int64
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > heapPeak.Load() {
					heapPeak.Store(ms.HeapAlloc)
				}
				if m := srv.MemBytes(); m > memPeak.Load() {
					memPeak.Store(m)
				}
			}
		}
	}()

	// Drive phase over the healthy fleet only; the stalled clients sit in
	// the background soaking up propagations.
	workers := cfg.Workers
	if workers == 0 {
		workers = 16 * runtime.GOMAXPROCS(0)
		if workers > 128 {
			workers = 128
		}
	}
	if workers > len(healthy) {
		workers = len(healthy)
	}
	type workerStats struct {
		lats []time.Duration
		ops  int
		errs int
	}
	perWorker := make([]workerStats, workers)
	driveStart := time.Now()
	deadline := driveStart.Add(cfg.Duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &perWorker[w]
			lo := w * len(healthy) / workers
			hi := (w + 1) * len(healthy) / workers
			st.lats = make([]time.Duration, 0, 4096)
			for i := lo; ; i++ {
				if i == hi {
					i = lo
				}
				if time.Now().After(deadline) {
					return
				}
				idx := healthy[i]
				key := keys[idx%len(keys)]
				t0 := time.Now()
				_, err := clients[idx].Read(key)
				d := time.Since(t0)
				st.ops++
				if err != nil {
					st.errs++
				} else {
					st.lats = append(st.lats, d)
				}
			}
		}(w)
	}
	wg.Wait()
	res.DriveSeconds = time.Since(driveStart).Seconds()
	close(stop)
	bgWg.Wait()
	res.Shed = int(shed.Load())
	res.HeapPeakBytes = heapPeak.Load()
	res.MemAccountPeak = memPeak.Load()

	// Teardown: detach what is still attached (shed sessions lose the
	// race harmlessly), release every client, and kill the stalled links
	// so their buffers die with them.
	for i := 0; i < attempted; i++ {
		if sessions[i] != nil {
			sessions[i].Detach()
		}
		clients[i].Disconnect()
		if stalls[i] != nil {
			stalls[i].Close()
		}
	}
	// Let read-timeout goroutines and writer stragglers drain before the
	// leak count: the balance must settle back to the pre-run level.
	settleDeadline := time.Now().Add(3 * time.Second)
	for {
		res.GoroutinesAfter = runtime.NumGoroutine()
		if res.GoroutinesAfter <= res.GoroutinesBefore+2 || time.Now().After(settleDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	var all []time.Duration
	for w := range perWorker {
		res.Ops += perWorker[w].ops
		res.Errors += perWorker[w].errs
		all = append(all, perWorker[w].lats...)
	}
	res.OpsPerSec = float64(res.Ops) / res.DriveSeconds
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Samples = len(all)
	if n := len(all); n > 0 {
		res.P50 = percentile(all, 0.50)
		res.P90 = percentile(all, 0.90)
		res.P99 = percentile(all, 0.99)
		res.Max = all[n-1]
	}
	return res, nil
}
