package load

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

// Kill-and-restart soak: a fleet of warm clients against one server whose
// store lives on the deterministic power-cut filesystem, with the server
// process "killed" — links severed, volatile state dropped, the store's
// unsynced journal cut at a seeded point — and restarted on a cadence
// while readers and writers keep running. Every restart replays the full
// production recovery: reopen (epoch bump), rebuild the server, redial
// every client, warm resync, and a cold reattach wherever the epoch fence
// fires. The scenario counts what the durability contract forbids —
// acknowledged writes missing after restart, client-visible version
// rollbacks — so ci.sh can soak it for 30s and assert both stay zero
// under sync=always and sync=group.

// RestartConfig describes one kill-and-restart soak.
type RestartConfig struct {
	// Sessions is the number of warm client sessions; 0 defaults to 8.
	Sessions int
	// Keys is the shared key-pool size; 0 defaults to 16.
	Keys int
	// Mode is the per-key allocation mode; zero value is not valid.
	Mode replica.Mode
	// Shards is the server shard count (power of two); 0 picks automatic.
	Shards int
	// Sync is the store's durability policy. The zero value is SyncGroup.
	Sync db.SyncPolicy
	// Duration is the total soak length; 0 defaults to 2s.
	Duration time.Duration
	// RestartEvery is the crash cadence; 0 defaults to 200ms.
	RestartEvery time.Duration
	// Writers is the number of server-write goroutines; 0 defaults to 2.
	Writers int
	// Seed drives the journal-cut choice at each crash.
	Seed uint64
}

// RestartResult is one soak's measurements.
type RestartResult struct {
	Sessions int
	Restarts int
	// Fences counts epoch fences observed during recovery (cold
	// reattaches forced by the bumped epoch).
	Fences int
	// LostAcked counts acknowledged writes missing after a restart.
	// The durability contract makes this zero under sync=always and
	// sync=group; sync=never may lose any unsynced suffix.
	LostAcked int
	// Rollbacks counts client reads that returned a version below one
	// the same client had already seen without an intervening fence.
	// Under sync=always and sync=group this is zero by contract: the
	// store never regresses, so no read can either. Under sync=never the
	// store itself may roll back, and a client that held no warm state
	// across the crash resyncs without a fence — its earlier
	// observations are not protected, only its held copies are.
	Rollbacks int
	Reads     int
	ReadErrs  int
	Writes    int
	WriteErrs int
	// FinalEpoch is the store epoch after the last restart: initial open
	// plus one bump per restart.
	FinalEpoch uint64
}

// restartWorld is the swap-on-restart state shared by every goroutine in
// the soak. mu is held for read around every client/server operation and
// exclusively by the restarter, so a crash is a stop-the-world event —
// exactly what it is for a single-process server.
type restartWorld struct {
	mu  sync.RWMutex
	srv *replica.Server

	ackedMu sync.Mutex
	acked   map[string]uint64 // committed version per key, updated post-ack
}

// RunRestart executes one kill-and-restart soak and tears everything
// down before returning.
func RunRestart(cfg RestartConfig) (RestartResult, error) {
	if cfg.Sessions == 0 {
		cfg.Sessions = 8
	}
	if cfg.Sessions < 0 {
		return RestartResult{}, errors.New("load: Sessions must be positive")
	}
	if cfg.Keys == 0 {
		cfg.Keys = 16
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.RestartEvery == 0 {
		cfg.RestartEvery = 200 * time.Millisecond
	}
	if cfg.Writers == 0 {
		cfg.Writers = 2
	}

	cfs := db.NewCrashFS()
	store, err := db.OpenWith(db.Options{Path: "soak.log", Sync: cfg.Sync, FS: cfs})
	if err != nil {
		return RestartResult{}, err
	}
	srv, err := replica.NewServerShards(store, cfg.Mode, cfg.Shards)
	if err != nil {
		return RestartResult{}, err
	}
	w := &restartWorld{srv: srv, acked: make(map[string]uint64)}

	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("soak-key-%d", i)
		it, err := srv.Write(keys[i], []byte(fmt.Sprintf("v0-%d", i)))
		if err != nil {
			return RestartResult{}, err
		}
		w.acked[keys[i]] = it.Version
	}

	clients := make([]*replica.Client, cfg.Sessions)
	sessions := make([]*replica.Session, cfg.Sessions)
	for i := range clients {
		sl, cl := transport.NewMemPair()
		cli, err := replica.NewClient(cl, cfg.Mode)
		if err != nil {
			return RestartResult{}, err
		}
		clients[i] = cli
		sessions[i] = srv.Attach(sl)
	}

	var res RestartResult
	res.Sessions = cfg.Sessions
	var resMu sync.Mutex // guards the counters below across goroutines
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: acked versions are recorded only after Write returns —
	// that is the moment the durability contract starts covering them.
	for wr := 0; wr < cfg.Writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := wr; ; i += cfg.Writers {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				w.mu.RLock()
				it, err := w.srv.Write(key, []byte(fmt.Sprintf("soak-%d-%d", wr, i)))
				if err == nil {
					w.ackedMu.Lock()
					w.acked[key] = it.Version
					w.ackedMu.Unlock()
				}
				w.mu.RUnlock()
				resMu.Lock()
				if err != nil {
					res.WriteErrs++
				} else {
					res.Writes++
				}
				resMu.Unlock()
				time.Sleep(200 * time.Microsecond)
			}
		}(wr)
	}

	// Readers: one per client, hunting silent rollbacks. seen is the
	// highest version this client observed per key; a fence resets it
	// (the regression is advertised, so post-fence reads start over).
	seenByClient := make([]map[string]uint64, cfg.Sessions)
	for i := range seenByClient {
		seenByClient[i] = make(map[string]uint64)
	}
	for ci := range clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := stats.NewRNG(cfg.Seed ^ (uint64(ci)*2654435761 + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[rng.Intn(len(keys))]
				w.mu.RLock()
				it, err := clients[ci].Read(key)
				var rolledBack bool
				if err == nil {
					seen := seenByClient[ci] // only this goroutine and the restarter touch it
					if it.Version < seen[key] {
						rolledBack = true
					}
					seen[key] = it.Version
				}
				w.mu.RUnlock()
				resMu.Lock()
				if err != nil {
					res.ReadErrs++
				} else {
					res.Reads++
					if rolledBack {
						res.Rollbacks++
					}
				}
				resMu.Unlock()
			}
		}(ci)
	}

	// Restarter: the stop-the-world crash loop.
	rng := stats.NewRNG(cfg.Seed)
	deadline := time.Now().Add(cfg.Duration)
	for time.Now().Before(deadline) {
		time.Sleep(cfg.RestartEvery)
		if !time.Now().Before(deadline) {
			break
		}
		w.mu.Lock()
		// Power cut: keep a seeded prefix of the unsynced journal.
		cut := rng.Intn(cfs.Ops() + 1)
		for i := range clients {
			clients[i].Suspend()
		}
		cfs.Kill(cut)
		store, err = db.OpenWith(db.Options{Path: "soak.log", Sync: cfg.Sync, FS: cfs})
		if err != nil {
			w.mu.Unlock()
			return res, fmt.Errorf("load: reopen after crash %d: %w", res.Restarts+1, err)
		}
		srv, err = replica.NewServerShards(store, cfg.Mode, cfg.Shards)
		if err != nil {
			w.mu.Unlock()
			return res, fmt.Errorf("load: restart server %d: %w", res.Restarts+1, err)
		}
		w.srv = srv
		res.Restarts++

		// Audit the durability contract, then re-anchor the acked map to
		// the surviving state so the next round measures from reality.
		w.ackedMu.Lock()
		for key, v := range w.acked {
			it, _ := store.Get(key)
			if it.Version < v {
				res.LostAcked++
			}
			w.acked[key] = it.Version
		}
		w.ackedMu.Unlock()

		// Recovery: redial every client; the epoch fence forces the cold
		// reattach exactly as the supervisor would.
		for i := range clients {
			sl, cl := transport.NewMemPair()
			sessions[i] = srv.Attach(sl)
			if _, err := clients[i].ResumeResync(cl); err != nil {
				w.mu.Unlock()
				return res, fmt.Errorf("load: resync client %d: %w", i, err)
			}
			if clients[i].EpochFenced() {
				res.Fences++
				clients[i].Reattach(cl)
				seenByClient[i] = make(map[string]uint64)
			}
			if clients[i].Offline() {
				w.mu.Unlock()
				return res, fmt.Errorf("load: client %d offline after recovery", i)
			}
		}
		w.mu.Unlock()
	}
	close(stop)
	wg.Wait()

	for i := range clients {
		sessions[i].Detach()
		clients[i].Disconnect()
	}
	res.FinalEpoch = store.Epoch()
	store.Close()
	return res, nil
}
