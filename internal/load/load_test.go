package load

import (
	"testing"
	"time"

	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Sessions: 0, Mode: replica.Static2()}); err == nil {
		t.Error("Run accepted zero sessions")
	}
	if _, err := Run(Config{Sessions: 10, Mode: replica.Static2(), Chaos: transport.Config{Manual: true}}); err == nil {
		t.Error("Run accepted manual chaos")
	}
	if _, err := Run(Config{Sessions: 10, Mode: replica.Static2(), Shards: 3}); err == nil {
		t.Error("Run accepted a non-power-of-two shard count")
	}
}

func TestRunSmallFleet(t *testing.T) {
	res, err := Run(Config{
		Sessions: 500,
		Shards:   4,
		Mode:     replica.SW(3),
		Duration: 200 * time.Millisecond,
		Chaos:    transport.Config{Drop: 0.01, Dup: 0.01},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 500 || res.Shards != 4 {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if res.SessionsPerSec <= 0 || res.AttachSeconds <= 0 {
		t.Fatalf("attach metrics not measured: %+v", res)
	}
	if res.Ops == 0 {
		t.Fatalf("drive phase issued no reads: %+v", res)
	}
	if res.Ops < res.Errors {
		t.Fatalf("more errors than ops: %+v", res)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.ShardMin > res.ShardMax || res.ShardMax == 0 {
		t.Fatalf("shard spread wrong: min=%d max=%d", res.ShardMin, res.ShardMax)
	}
	if res.Writes == 0 {
		t.Fatalf("background writers committed nothing: %+v", res)
	}
}

// TestRunFaultFree: with no chaos at all, every read over the in-memory
// transport completes inline and error-free.
func TestRunFaultFree(t *testing.T) {
	res, err := Run(Config{
		Sessions: 128,
		Shards:   2,
		Mode:     replica.Static2(),
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("fault-free run reported %d errors", res.Errors)
	}
}
