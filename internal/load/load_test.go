package load

import (
	"testing"
	"time"

	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Sessions: 0, Mode: replica.Static2()}); err == nil {
		t.Error("Run accepted zero sessions")
	}
	if _, err := Run(Config{Sessions: 10, Mode: replica.Static2(), Chaos: transport.Config{Manual: true}}); err == nil {
		t.Error("Run accepted manual chaos")
	}
	if _, err := Run(Config{Sessions: 10, Mode: replica.Static2(), Shards: 3}); err == nil {
		t.Error("Run accepted a non-power-of-two shard count")
	}
}

func TestRunSmallFleet(t *testing.T) {
	res, err := Run(Config{
		Sessions: 500,
		Shards:   4,
		Mode:     replica.SW(3),
		Duration: 200 * time.Millisecond,
		Chaos:    transport.Config{Drop: 0.01, Dup: 0.01},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 500 || res.Shards != 4 {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if res.SessionsPerSec <= 0 || res.AttachSeconds <= 0 {
		t.Fatalf("attach metrics not measured: %+v", res)
	}
	if res.Ops == 0 {
		t.Fatalf("drive phase issued no reads: %+v", res)
	}
	if res.Ops < res.Errors {
		t.Fatalf("more errors than ops: %+v", res)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.ShardMin > res.ShardMax || res.ShardMax == 0 {
		t.Fatalf("shard spread wrong: min=%d max=%d", res.ShardMin, res.ShardMax)
	}
	if res.Writes == 0 {
		t.Fatalf("background writers committed nothing: %+v", res)
	}
}

// TestPercentileNearestRank pins the exact nearest-rank semantics: index
// ceil(q*n)-1, so p99 of exactly 100 samples is the 99th value, not the
// maximum, and tiny sample sets degrade predictably to the max.
func TestPercentileNearestRank(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i + 1)
	}
	if got := percentile(samples, 0.99); got != 99 {
		t.Errorf("p99 of 1..100 = %d, want 99", got)
	}
	if got := percentile(samples, 0.50); got != 50 {
		t.Errorf("p50 of 1..100 = %d, want 50", got)
	}
	if got := percentile(samples, 0.90); got != 90 {
		t.Errorf("p90 of 1..100 = %d, want 90", got)
	}
	small := samples[:50]
	if got := percentile(small, 0.99); got != 50 {
		t.Errorf("p99 of 1..50 = %d, want 50 (the max: fewer than 100 samples)", got)
	}
	if got := percentile(small, 0.50); got != 25 {
		t.Errorf("p50 of 1..50 = %d, want 25", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("p99 of no samples = %d, want 0", got)
	}
	if got := percentile(samples[:1], 0.99); got != 1 {
		t.Errorf("p99 of one sample = %d, want that sample", got)
	}
}

func TestRunOverloadValidation(t *testing.T) {
	if _, err := RunOverload(OverloadConfig{Capacity: 0, Mode: replica.Static2()}); err == nil {
		t.Error("RunOverload accepted zero capacity")
	}
	if _, err := RunOverload(OverloadConfig{Capacity: 10, Factor: -1, Mode: replica.Static2()}); err == nil {
		t.Error("RunOverload accepted a negative factor")
	}
}

// TestRunOverloadTwiceCapacity is the scenario in miniature: 2x capacity
// attempts, 10% of the admitted fleet stalled. Every refused attach must
// have received a Busy frame, the healthy fleet must have been served,
// and teardown must leak nothing.
func TestRunOverloadTwiceCapacity(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Capacity:     300,
		Factor:       2,
		StalledFrac:  0.1,
		Mode:         replica.SW(3),
		Shards:       4,
		Duration:     300 * time.Millisecond,
		MemSoftLimit: 32 << 20,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempted != 600 || res.Admitted != 300 || res.Rejected != 300 {
		t.Fatalf("admission counts wrong: %+v", res)
	}
	if res.BusyFrames != res.Rejected {
		t.Fatalf("rejected %d clients but %d Busy frames received: every refusal must be answered",
			res.Rejected, res.BusyFrames)
	}
	if res.Stalled != 30 {
		t.Fatalf("stalled %d clients, want 30 (10%% of 300)", res.Stalled)
	}
	if res.Ops == 0 || res.Samples == 0 {
		t.Fatalf("healthy fleet was not driven: %+v", res)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.HeapPeakBytes == 0 || res.MemAccountPeak == 0 {
		t.Fatalf("memory watchdogs sampled nothing: %+v", res)
	}
	if res.GoroutinesAfter > res.GoroutinesBefore+5 {
		t.Fatalf("goroutines leaked across the run: before=%d after=%d",
			res.GoroutinesBefore, res.GoroutinesAfter)
	}
}

// TestRunOverloadSheds squeezes the watermark far below the fleet's base
// cost so the shed ticker must evict sessions mid-run.
func TestRunOverloadSheds(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Capacity:     100,
		Factor:       1.5,
		StalledFrac:  0.1,
		Mode:         replica.Static2(),
		Shards:       2,
		Duration:     300 * time.Millisecond,
		MemSoftLimit: 20 << 10, // 100 sessions cost >50KiB base: always over
		ShedEvery:    20 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("watermark below base cost but nothing was shed: %+v", res)
	}
	if res.BusyFrames != res.Rejected {
		t.Fatalf("rejected %d clients but %d Busy frames received", res.Rejected, res.BusyFrames)
	}
}

// TestRunFaultFree: with no chaos at all, every read over the in-memory
// transport completes inline and error-free.
func TestRunFaultFree(t *testing.T) {
	res, err := Run(Config{
		Sessions: 128,
		Shards:   2,
		Mode:     replica.Static2(),
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("fault-free run reported %d errors", res.Errors)
	}
}
