package load

import (
	"flag"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
)

// -restart.soak stretches TestRestartSoakDurable to a CI-grade length;
// the default keeps `go test ./...` quick while still crossing several
// crash cadences.
var restartSoak = flag.Duration("restart.soak", 1200*time.Millisecond,
	"duration of the kill-and-restart soak in TestRestartSoakDurable")

// TestRestartSoakDurable is the crash-consistency soak under both
// durable policies: repeated power-cut restarts under live read/write
// traffic must lose no acknowledged write and show no client a version
// rollback, while every restart bumps the epoch exactly once and fences
// the warm fleet.
func TestRestartSoakDurable(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  db.SyncPolicy
	}{
		{"always", db.SyncAlways},
		{"group", db.SyncGroup},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunRestart(RestartConfig{
				Sessions:     8,
				Keys:         16,
				Mode:         replica.Static2(),
				Sync:         tc.pol,
				Duration:     *restartSoak / 2, // two policies share the budget
				RestartEvery: 120 * time.Millisecond,
				Seed:         7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts == 0 {
				t.Fatalf("soak finished without a single restart: %+v", res)
			}
			if res.LostAcked != 0 {
				t.Fatalf("lost %d acknowledged writes across %d restarts: %+v",
					res.LostAcked, res.Restarts, res)
			}
			if res.Rollbacks != 0 {
				t.Fatalf("%d client-visible rollbacks across %d restarts: %+v",
					res.Rollbacks, res.Restarts, res)
			}
			if res.Reads == 0 || res.Writes == 0 {
				t.Fatalf("soak drove no traffic: %+v", res)
			}
			if res.FinalEpoch != uint64(1+res.Restarts) {
				t.Fatalf("epoch %d after %d restarts, want %d (one bump per open)",
					res.FinalEpoch, res.Restarts, 1+res.Restarts)
			}
			// Static2 clients allocate on first read, so by the first crash
			// the whole fleet is warm and every restart must fence it.
			if res.Fences == 0 {
				t.Fatalf("no epoch fences across %d restarts of a warm fleet: %+v",
					res.Restarts, res)
			}
		})
	}
}

// TestRestartSoakNever: under sync=never the crash may take any unsynced
// suffix with it — LostAcked is legitimate — but recovery must still
// converge, the epoch must still bump per restart, and warm clients must
// still be fenced rather than silently resynced.
func TestRestartSoakNever(t *testing.T) {
	res, err := RunRestart(RestartConfig{
		Sessions:     8,
		Keys:         16,
		Mode:         replica.Static2(),
		Sync:         db.SyncNever,
		Duration:     600 * time.Millisecond,
		RestartEvery: 120 * time.Millisecond,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 || res.Reads == 0 {
		t.Fatalf("soak did not run: %+v", res)
	}
	if res.FinalEpoch != uint64(1+res.Restarts) {
		t.Fatalf("epoch %d after %d restarts, want %d", res.FinalEpoch, res.Restarts, 1+res.Restarts)
	}
	if res.Fences == 0 {
		t.Fatalf("no fences across %d restarts of a warm fleet: %+v", res.Restarts, res)
	}
}
