// Package load drives large fleets of chaos-wrapped client sessions
// against one sharded replica server in-process, and reports attach
// throughput (sessions/sec) and read-latency percentiles. It is the
// engine behind cmd/mobirep-load and experiment E24: the same Run with
// the same Config produces the numbers in both, so the CLI smoke floor
// in ci.sh and the BENCH trajectory measure one code path.
package load

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

// Config describes one load run.
type Config struct {
	// Sessions is the number of concurrent client sessions to attach and
	// then drive. Required.
	Sessions int
	// Shards is the server shard count (power of two); 0 picks the
	// automatic count.
	Shards int
	// Mode is the per-key allocation mode; zero value is not valid — use
	// replica.SW(k), replica.Static1() or replica.Static2().
	Mode replica.Mode
	// Keys is the shared key-pool size. Each session reads mostly one
	// "home" key (session index mod Keys), so the expected write fan-out
	// per key is Sessions/Keys subscribers. 0 defaults to Sessions/8,
	// floored at 16.
	Keys int
	// Duration is how long the steady-state drive phase runs after the
	// attach phase. 0 defaults to 2s.
	Duration time.Duration
	// Workers is the number of driver goroutines; each owns a disjoint
	// slice of the sessions. 0 defaults to 16*GOMAXPROCS capped at 128:
	// workers park in the read timeout whenever chaos eats a frame, so
	// the pool must be much wider than the core count to keep reads
	// flowing around the blocked ones.
	Workers int
	// Chaos configures the per-session fault injectors (auto mode): both
	// link directions of every session run through transport.Chaos with a
	// seed derived from Seed and the session index. Manual must be false.
	Chaos transport.Config
	// Seed derives every per-session chaos seed and per-worker RNG.
	Seed uint64
	// Timeout bounds each remote read; 0 defaults to 25ms. Reads
	// normally complete inline over the in-memory transport, so only
	// chaos-dropped frames ever wait this long — and each one parks its
	// worker for the full timeout, so this bounds throughput loss under
	// faults more than tail latency.
	Timeout time.Duration
	// Writers is the number of background goroutines cycling server
	// writes over the key pool during the drive phase; 0 defaults to 2.
	Writers int
	// WritePause throttles each background writer between writes; 0
	// defaults to 200µs.
	WritePause time.Duration
}

// Result is one run's measurements.
type Result struct {
	Sessions int
	Shards   int
	Keys     int
	Workers  int

	// Attach phase: wall time to build, chaos-wrap, and attach every
	// session, and the resulting rate — the headline sessions/sec.
	AttachSeconds  float64
	SessionsPerSec float64

	// Drive phase.
	DriveSeconds float64
	Ops          int
	OpsPerSec    float64
	Errors       int // reads that timed out or found the session offline
	Writes       int // background server writes committed

	// Read latency over successful reads, exact nearest-rank percentiles
	// over the full sorted sample set (not a sketch). Samples is how many
	// reads the percentiles summarize — a tail percentile of a tiny run
	// says little (p99 of fewer than 100 samples is just the maximum), so
	// gates on these numbers should check Samples first.
	Samples            int
	P50, P90, P99, Max time.Duration

	// Session spread across shards at the end of the drive phase.
	ShardMin, ShardMax int
}

// Run executes one load run and tears everything down before returning.
func Run(cfg Config) (Result, error) {
	if cfg.Sessions <= 0 {
		return Result{}, errors.New("load: Sessions must be positive")
	}
	if cfg.Chaos.Manual {
		return Result{}, errors.New("load: manual chaos cannot drive a load run")
	}
	if cfg.Keys == 0 {
		cfg.Keys = cfg.Sessions / 8
		if cfg.Keys < 16 {
			cfg.Keys = 16
		}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers == 0 {
		cfg.Workers = 16 * runtime.GOMAXPROCS(0)
		if cfg.Workers > 128 {
			cfg.Workers = 128
		}
	}
	if cfg.Workers > cfg.Sessions {
		cfg.Workers = cfg.Sessions
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 25 * time.Millisecond
	}
	if cfg.Writers == 0 {
		cfg.Writers = 2
	}
	if cfg.WritePause == 0 {
		cfg.WritePause = 200 * time.Microsecond
	}

	srv, err := replica.NewServerShards(db.NewStore(), cfg.Mode, cfg.Shards)
	if err != nil {
		return Result{}, err
	}
	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("load-key-%d", i)
		if _, err := srv.Write(keys[i], []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			return Result{}, err
		}
	}

	clients := make([]*replica.Client, cfg.Sessions)
	sessions := make([]*replica.Session, cfg.Sessions)

	// Worker w owns session indices [bounds[w], bounds[w+1]).
	bounds := make([]int, cfg.Workers+1)
	for w := 0; w <= cfg.Workers; w++ {
		bounds[w] = w * cfg.Sessions / cfg.Workers
	}

	// Attach phase: every session is built, chaos-wrapped on both
	// directions, and attached; the wall time over all workers is the
	// sessions/sec figure.
	var wg sync.WaitGroup
	attachErrs := make([]error, cfg.Workers)
	attachStart := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := bounds[w]; i < bounds[w+1]; i++ {
				ccfg := cfg.Chaos
				// Knuth-hash the index so neighbouring sessions do not get
				// neighbouring fault streams.
				ccfg.Seed = cfg.Seed + uint64(i)*2654435761
				a, b := transport.NewMemPair()
				sl, cl, err := transport.NewChaosPairOver(ccfg, a, b)
				if err != nil {
					attachErrs[w] = err
					return
				}
				cli, err := replica.NewClient(cl, cfg.Mode)
				if err != nil {
					attachErrs[w] = err
					return
				}
				cli.Timeout = cfg.Timeout
				sessions[i] = srv.Attach(sl)
				clients[i] = cli
			}
		}(w)
	}
	wg.Wait()
	attachSecs := time.Since(attachStart).Seconds()
	for _, err := range attachErrs {
		if err != nil {
			return Result{}, err
		}
	}
	if got := srv.Sessions(); got != cfg.Sessions {
		return Result{}, fmt.Errorf("load: attached %d sessions, server counts %d", cfg.Sessions, got)
	}

	// Drive phase: workers sweep their sessions issuing reads (mostly the
	// session's home key, so subscriptions concentrate and writes fan
	// out), while background writers keep every shard's propagation path
	// hot.
	type workerStats struct {
		lats []time.Duration
		ops  int
		errs int
	}
	perWorker := make([]workerStats, cfg.Workers)
	stopWriters := make(chan struct{})
	var writes atomic.Int64
	var writerWg sync.WaitGroup
	for wr := 0; wr < cfg.Writers; wr++ {
		writerWg.Add(1)
		go func(wr int) {
			defer writerWg.Done()
			payload := []byte(fmt.Sprintf("write-from-%d", wr))
			for i := wr; ; i += cfg.Writers {
				select {
				case <-stopWriters:
					return
				default:
				}
				if _, err := srv.Write(keys[i%len(keys)], payload); err != nil {
					return
				}
				writes.Add(1)
				time.Sleep(cfg.WritePause)
			}
		}(wr)
	}

	driveStart := time.Now()
	deadline := driveStart.Add(cfg.Duration)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(cfg.Seed ^ (uint64(w) + 0x9e3779b97f4a7c15))
			st := &perWorker[w]
			lo, hi := bounds[w], bounds[w+1]
			st.lats = make([]time.Duration, 0, 4096)
			for i := lo; ; i++ {
				if i == hi {
					i = lo
				}
				if time.Now().After(deadline) {
					return
				}
				key := keys[i%len(keys)]
				if rng.Intn(16) == 0 {
					key = keys[rng.Intn(len(keys))]
				}
				t0 := time.Now()
				_, err := clients[i].Read(key)
				d := time.Since(t0)
				st.ops++
				if err != nil {
					st.errs++
				} else {
					st.lats = append(st.lats, d)
				}
			}
		}(w)
	}
	wg.Wait()
	driveSecs := time.Since(driveStart).Seconds()
	close(stopWriters)
	writerWg.Wait()

	shardCounts := srv.ShardSessions()

	// Teardown: detach every session so gauges return to their prior
	// level (E24 runs inside the bench process) and close the links so
	// any chaos-delayed frames die quietly.
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := bounds[w]; i < bounds[w+1]; i++ {
				sessions[i].Detach()
				clients[i].Disconnect()
			}
		}(w)
	}
	wg.Wait()

	res := Result{
		Sessions:       cfg.Sessions,
		Shards:         srv.Shards(),
		Keys:           cfg.Keys,
		Workers:        cfg.Workers,
		AttachSeconds:  attachSecs,
		SessionsPerSec: float64(cfg.Sessions) / attachSecs,
		DriveSeconds:   driveSecs,
		Writes:         int(writes.Load()),
		ShardMin:       shardCounts[0],
		ShardMax:       shardCounts[0],
	}
	for _, c := range shardCounts {
		if c < res.ShardMin {
			res.ShardMin = c
		}
		if c > res.ShardMax {
			res.ShardMax = c
		}
	}
	var all []time.Duration
	for w := range perWorker {
		res.Ops += perWorker[w].ops
		res.Errors += perWorker[w].errs
		all = append(all, perWorker[w].lats...)
	}
	res.OpsPerSec = float64(res.Ops) / driveSecs
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Samples = len(all)
	if n := len(all); n > 0 {
		res.P50 = percentile(all, 0.50)
		res.P90 = percentile(all, 0.90)
		res.P99 = percentile(all, 0.99)
		res.Max = all[n-1]
	}
	return res, nil
}

// percentile returns the exact nearest-rank percentile of the sorted
// samples: the smallest sample with at least q·n samples at or below it,
// index ceil(q·n)-1. The floor arithmetic it replaces overshot by one
// rank whenever q·n landed on an integer — p99 of exactly 100 samples
// reported the absolute maximum — which made short runs look worse than
// their distribution.
func percentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
