package load

import (
	"testing"
	"time"

	"mobirep/internal/replica"
	"mobirep/internal/tree"
)

func TestRunTreeValidation(t *testing.T) {
	if _, err := RunTree(TreeConfig{Sessions: 0, Mode: replica.Static2()}); err == nil {
		t.Error("RunTree accepted zero sessions")
	}
	if _, err := RunTree(TreeConfig{Sessions: 10, Mode: replica.Static2(), Shards: 3}); err == nil {
		t.Error("RunTree accepted a non-power-of-two shard count")
	}
}

// TestRunTreeSmallFleet is the tree drive in miniature: a seven-station
// binary tree, motion every 25 reads, a placement policy shedding relay
// copies under the writes. Fault-free links mean every read must
// succeed and every handoff must arrive warm.
func TestRunTreeSmallFleet(t *testing.T) {
	res, err := RunTree(TreeConfig{
		Stations:     7,
		Sessions:     200,
		Shards:       2,
		Mode:         replica.Static2(),
		Placement:    tree.Policy{Kind: tree.PolicyT1, K: 2},
		Duration:     300 * time.Millisecond,
		HandoffEvery: 25,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 200 || res.Stations != 7 || res.Leaves != 4 {
		t.Fatalf("result identity wrong: %+v", res)
	}
	if res.SessionsPerSec <= 0 || res.AttachSeconds <= 0 {
		t.Fatalf("attach metrics not measured: %+v", res)
	}
	if res.Ops == 0 || res.Samples == 0 {
		t.Fatalf("drive phase issued no reads: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("fault-free tree run reported %d errors", res.Errors)
	}
	if res.Writes == 0 {
		t.Fatalf("background writers committed nothing: %+v", res)
	}
	if res.Handoffs == 0 {
		t.Fatalf("motion enabled but no handoffs completed: %+v", res)
	}
	if res.ColdHandoffs != 0 {
		t.Fatalf("%d handoffs arrived cold with no root restart", res.ColdHandoffs)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.HandoffP99 < res.HandoffP50 || res.HandoffMax < res.HandoffP99 {
		t.Fatalf("handoff percentiles out of order: %+v", res)
	}
}
