package db

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the slice of a filesystem the log needs. The default
// implementation (osFS) goes to the real OS; CrashFS (crashfs.go)
// implements the same surface fully in memory with deterministic
// power-cut semantics, and tests wrap either with fault injectors.
//
// SyncDir is the operation POSIX makes easy to forget: creating or
// renaming a file reaches stable storage only once the *parent
// directory* has been fsynced. Without it a crash can lose the file
// itself even though its contents were synced.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the given flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs the directory containing name, making its directory
	// entries (creations, renames, removals) durable.
	SyncDir(name string) error
}

// File is the handle surface the log uses; *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Dir(name))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
