package db

// Durability observability. Same idiom as internal/replica/metrics.go:
// register once at init, touch pre-resolved handles on the hot path.

import "mobirep/internal/obs"

var (
	dbReg = obs.Default()

	mFsyncs = dbReg.Counter("mobirep_db_fsyncs_total",
		"Log fsyncs issued (per-Put under sync=always, per batch under sync=group).")
	mGroupCommits = dbReg.Counter("mobirep_db_group_commits_total",
		"Group-commit rounds that made at least one record visible.")
	mGroupRecords = dbReg.Counter("mobirep_db_group_commit_records_total",
		"Records committed by group-commit rounds; divide by rounds for the mean batch size.")
	mSyncFailures = dbReg.Counter("mobirep_db_sync_failures_total",
		"Append or fsync failures that moved a store to the fail-closed state.")
	mEpoch = dbReg.Gauge("mobirep_db_store_epoch",
		"Persistent store epoch of the most recently opened store (bumped durably on every open).")
)
