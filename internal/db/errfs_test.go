package db

import (
	"errors"
	"os"
	"testing"
)

// errFS wraps another FS and injects failures into chosen operations:
// the classic errfs pattern. Arm a failure by setting the corresponding
// field; it fires on every call until cleared.
type errFS struct {
	inner       FS
	failOpen    error
	failRename  error
	failSyncDir error
	// Per-file injections, applied to every file opened through this FS.
	file errFileConfig
}

type errFileConfig struct {
	failWrite *error // pointer so tests can arm/disarm after open
	failSync  *error
	failClose *error
}

func newErrFS(inner FS) *errFS {
	return &errFS{inner: inner, file: errFileConfig{
		failWrite: new(error), failSync: new(error), failClose: new(error),
	}}
}

func (e *errFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if e.failOpen != nil {
		return nil, e.failOpen
	}
	f, err := e.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &errFile{File: f, cfg: e.file}, nil
}

func (e *errFS) Rename(oldpath, newpath string) error {
	if e.failRename != nil {
		return e.failRename
	}
	return e.inner.Rename(oldpath, newpath)
}

func (e *errFS) Remove(name string) error { return e.inner.Remove(name) }

func (e *errFS) SyncDir(name string) error {
	if e.failSyncDir != nil {
		return e.failSyncDir
	}
	return e.inner.SyncDir(name)
}

type errFile struct {
	File
	cfg errFileConfig
}

func (f *errFile) Write(p []byte) (int, error) {
	if err := *f.cfg.failWrite; err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *errFile) Sync() error {
	if err := *f.cfg.failSync; err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *errFile) Close() error {
	if err := *f.cfg.failClose; err != nil {
		return err
	}
	return f.File.Close()
}

var errInjected = errors.New("injected fault")

// openErrStore opens a store over an errFS-wrapped CrashFS with the
// given policy. Nothing is armed yet at open time.
func openErrStore(t *testing.T, policy SyncPolicy) (*Store, *errFS) {
	t.Helper()
	efs := newErrFS(NewCrashFS())
	s, err := OpenWith(Options{Path: "items.log", Sync: policy, FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	return s, efs
}

func TestFailedSyncFailsThePutThatNeededIt(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroup} {
		t.Run(policy.String(), func(t *testing.T) {
			s, efs := openErrStore(t, policy)
			if _, err := s.Put("x", []byte("ok")); err != nil {
				t.Fatal(err)
			}
			*efs.file.failSync = errInjected
			if _, err := s.Put("x", []byte("doomed")); !errors.Is(err, ErrFailed) {
				t.Fatalf("put with failing sync: err = %v, want ErrFailed", err)
			}
			// The failed write must not be visible: acknowledged state only.
			it, _ := s.Get("x")
			if string(it.Value) != "ok" || it.Version != 1 {
				t.Fatalf("failed put leaked into reads: %+v", it)
			}
		})
	}
}

func TestFailedAppendFailsPut(t *testing.T) {
	s, efs := openErrStore(t, SyncNever)
	if _, err := s.Put("x", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	*efs.file.failWrite = errInjected
	if _, err := s.Put("x", []byte("doomed")); !errors.Is(err, ErrFailed) {
		t.Fatalf("put with failing write: err = %v, want ErrFailed", err)
	}
	it, _ := s.Get("x")
	if string(it.Value) != "ok" {
		t.Fatalf("failed append leaked into reads: %+v", it)
	}
}

func TestStoreFailsClosedAfterSyncError(t *testing.T) {
	s, efs := openErrStore(t, SyncAlways)
	s.Put("x", []byte("ok"))
	*efs.file.failSync = errInjected
	if _, err := s.Put("x", []byte("doomed")); err == nil {
		t.Fatal("want failure")
	}
	// Even after the fault clears, the store must stay fail-closed: it
	// cannot know what state the file is really in.
	*efs.file.failSync = nil
	if _, err := s.Put("x", []byte("retry")); !errors.Is(err, ErrFailed) {
		t.Fatalf("store reopened for writes after a sync failure: %v", err)
	}
	// Reads keep serving the last acknowledged state.
	it, ok := s.Get("x")
	if !ok || string(it.Value) != "ok" || it.Version != 1 {
		t.Fatalf("reads after fail-closed: %+v ok=%v", it, ok)
	}
	// Close surfaces the sticky failure.
	if err := s.Close(); err == nil {
		t.Fatal("close after sync failure should report it")
	}
}

func TestGroupWaitersAllFailOnOneBadSync(t *testing.T) {
	s, efs := openErrStore(t, SyncGroup)
	s.Put("seed", []byte("v"))
	*efs.file.failSync = errInjected
	const writers = 8
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			_, err := s.Put("k", []byte{byte(i)})
			errs <- err
		}(i)
	}
	for i := 0; i < writers; i++ {
		if err := <-errs; !errors.Is(err, ErrFailed) {
			t.Fatalf("writer %d: err = %v, want ErrFailed", i, err)
		}
	}
	if it, ok := s.Get("k"); ok {
		t.Fatalf("no version of k was acknowledged, yet reads see %+v", it)
	}
}

func TestCloseSurfacesInjectedCloseError(t *testing.T) {
	s, efs := openErrStore(t, SyncAlways)
	s.Put("x", []byte("v"))
	*efs.file.failClose = errInjected
	if err := s.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("close error swallowed: %v", err)
	}
}

func TestCompactRenameFailureKeepsStoreWorking(t *testing.T) {
	cfs := NewCrashFS()
	efs := newErrFS(cfs)
	s, err := OpenWith(Options{Path: "items.log", Sync: SyncAlways, FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put("x", []byte{byte(i)})
	}
	efs.failRename = errInjected
	if _, err := s.Compact(); err == nil {
		t.Fatal("compact with failing rename should error")
	}
	efs.failRename = nil
	// The store must still accept writes and recover cleanly.
	if _, err := s.Put("x", []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWith(Options{Path: "items.log", Sync: SyncAlways, FS: efs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	it, _ := re.Get("x")
	if string(it.Value) != "after" || it.Version != 11 {
		t.Fatalf("recovered x = %+v", it)
	}
}
