// Package db implements the stationary computer's online database: a
// versioned in-memory key-value store with update subscriptions and an
// optional append-only persistence log.
//
// The paper assumes "some node in the stationary network" holds the
// authoritative copy of every data item and can propagate updates to
// subscribed mobile computers. This package is that substrate: the replica
// protocol (internal/replica) stores items here, registers a subscription
// per allocated mobile copy, and relies on versions to keep propagation
// idempotent. Durability uses a CRC-checked record log (log.go) that is
// replayed on open, in the spirit of a write-ahead log; the store is
// usable fully in memory as well.
package db

import (
	"fmt"
	"sync"
)

// Item is one versioned value.
type Item struct {
	// Key identifies the data item, the paper's "x".
	Key string
	// Value is the current payload.
	Value []byte
	// Version increases by one on every write; version 0 means the item
	// has never been written.
	Version uint64
}

// Subscriber receives every committed update of a key, in commit order.
// Callbacks run synchronously under the store's write path; subscribers
// must not call back into the store.
type Subscriber func(Item)

// Store is a thread-safe versioned key-value store.
type Store struct {
	mu    sync.RWMutex
	items map[string]Item
	subs  map[string]map[int]Subscriber
	nextS int
	log   *Log // nil when running purely in memory
}

// NewStore returns an empty in-memory store.
func NewStore() *Store {
	return &Store{
		items: make(map[string]Item),
		subs:  make(map[string]map[int]Subscriber),
	}
}

// Open returns a store backed by the append-only log at path, replaying
// any existing records into memory first.
func Open(path string) (*Store, error) {
	s := NewStore()
	log, err := OpenLog(path)
	if err != nil {
		return nil, err
	}
	if err := log.Replay(func(rec Record) {
		s.items[rec.Key] = Item{Key: rec.Key, Value: rec.Value, Version: rec.Version}
	}); err != nil {
		log.Close()
		return nil, err
	}
	s.log = log
	return s, nil
}

// Close releases the persistence log, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// Get returns the current item for key. The returned value slice must not
// be modified by the caller. The second result reports whether the key has
// ever been written.
func (s *Store) Get(key string) (Item, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[key]
	return it, ok
}

// Put commits a new version of key and notifies subscribers. It returns
// the committed item.
func (s *Store) Put(key string, value []byte) (Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.items[key]
	it.Key = key
	it.Value = append([]byte(nil), value...)
	it.Version++
	if s.log != nil {
		if err := s.log.Append(Record{Key: key, Value: it.Value, Version: it.Version}); err != nil {
			return Item{}, fmt.Errorf("db: append: %w", err)
		}
	}
	s.items[key] = it
	for _, fn := range s.subs[key] {
		fn(it)
	}
	return it, nil
}

// Subscribe registers fn for updates of key and returns a cancel func.
// fn observes every Put committed after Subscribe returns.
func (s *Store) Subscribe(key string, fn Subscriber) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs[key] == nil {
		s.subs[key] = make(map[int]Subscriber)
	}
	id := s.nextS
	s.nextS++
	s.subs[key][id] = fn
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.subs[key], id)
	}
}

// Len returns the number of distinct keys ever written.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Keys returns all keys, in unspecified order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.items))
	for k := range s.items {
		out = append(out, k)
	}
	return out
}
