// Package db implements the stationary computer's online database: a
// versioned in-memory key-value store with update subscriptions and an
// optional append-only persistence log.
//
// The paper assumes "some node in the stationary network" holds the
// authoritative copy of every data item and can propagate updates to
// subscribed mobile computers. This package is that substrate: the replica
// protocol (internal/replica) stores items here, registers a subscription
// per allocated mobile copy, and relies on versions to keep propagation
// idempotent. Durability uses a CRC-checked record log (log.go) that is
// replayed on open, in the spirit of a write-ahead log; the store is
// usable fully in memory as well.
//
// # Durability contract
//
// A persistent store opens with one of three sync policies:
//
//   - SyncAlways: every Put fsyncs its own record before committing it
//     to memory and returning. Strongest, slowest.
//   - SyncGroup: concurrent Puts are batched into one fsync (group
//     commit). A Put's effects become visible — to its caller AND to
//     concurrent readers — only after the fsync covering its record
//     returns, so nothing a reader can observe is ever lost to a crash.
//     GroupInterval bounds how long the committer waits to grow a batch.
//   - SyncNever: records reach the OS on every Put but are never
//     explicitly fsynced until Close. Fast; a power cut loses the
//     un-synced suffix. For simulations and caches only.
//
// Under SyncAlways and SyncGroup an acknowledged Put survives any crash;
// replay after restart never rolls an acknowledged version back. A
// failed sync fails the Puts that depended on it and marks the store
// failed: reads keep working from the last consistent state, further
// writes are refused (fail closed) rather than risking silent loss.
//
// Every open of a persistent store durably bumps a monotonic epoch kept
// in the checksummed log header. The replica layer hands the epoch to
// clients so they can fence against a restarted authority.
package db

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Item is one versioned value.
type Item struct {
	// Key identifies the data item, the paper's "x".
	Key string
	// Value is the current payload.
	Value []byte
	// Version increases by one on every write; version 0 means the item
	// has never been written.
	Version uint64
}

// Subscriber receives every committed update of a key, in commit order.
// Callbacks run synchronously under the store's write path; subscribers
// must not call back into the store.
type Subscriber func(Item)

// SyncPolicy selects when a Put's log record reaches stable storage.
type SyncPolicy int

const (
	// SyncGroup batches concurrent Puts into one fsync; acknowledgement
	// and visibility wait for it. The default for persistent stores.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs each Put individually before it commits.
	SyncAlways
	// SyncNever leaves fsync to Close; a crash loses the un-synced tail.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses "always", "group" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("db: unknown sync policy %q (want always, group or never)", s)
}

// ErrFailed wraps the first sync or append error after which the store
// refuses writes. Reads still serve the last consistent state.
var ErrFailed = errors.New("db: store failed")

// Options configures OpenWith.
type Options struct {
	// Path locates the append-only log file.
	Path string
	// Sync is the durability policy; the zero value is SyncGroup.
	Sync SyncPolicy
	// GroupInterval bounds how long a group-commit leader waits to
	// accumulate a batch before fsyncing. 0 means natural batching: the
	// leader fsyncs immediately and whatever queued behind the previous
	// fsync forms the next batch.
	GroupInterval time.Duration
	// FS is the filesystem; nil means the real one. Tests inject
	// CrashFS or fault wrappers here.
	FS FS
}

// groupState is the group-commit machinery. Puts never touch the log
// file: they frame their record into buf (a batch of the on-disk byte
// stream) and queue the entry; the leader of each round drains the whole
// buffer with one file write and one fsync. Offsets are logical: byte
// positions in the record stream, equal to the file offset once the
// bytes are written.
type groupState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []groupEntry
	buf     []byte // framed records not yet written to the file
	tail    int64  // logical end offset of the last buffered record
	synced  int64  // logical offset durable on disk
	applied int64  // logical offset whose entries are visible in items
	leading bool   // a leader is between fsyncs
	err     error  // sticky: first sync failure

	// gen numbers the coordinate space of tail/synced/applied. Compact
	// bumps it whenever it swaps the log file and resets the offsets:
	// every offset captured before the bump belongs to the *old* log and
	// must never be compared with — or folded into — the new offsets. A
	// gen bump implies Compact first drained and applied everything
	// queued, so a waiter holding a stale gen is already satisfied, and a
	// leader holding one must discard its round (the pinned old handle is
	// closed and its tail is meaningless in the new space).
	gen uint64

	// wmu serializes the write-the-batch-then-fsync step between leader
	// rounds and Close/Compact drains. Neither mu nor the store lock is
	// held while the round is at the disk, so Puts keep buffering under a
	// running fsync. werr is wmu-protected and sticky: after one torn
	// batch write nothing more may reach the file, or later records would
	// sit beyond the tear, unreachable by replay yet acknowledged.
	wmu  sync.Mutex
	werr error
}

type groupEntry struct {
	item Item
	end  int64 // logical offset at which this record ends
}

// Store is a thread-safe versioned key-value store.
type Store struct {
	mu    sync.RWMutex
	items map[string]Item
	subs  map[string]map[int]Subscriber
	nextS int
	log   *Log // nil when running purely in memory

	policy   SyncPolicy
	interval time.Duration
	epoch    uint64
	failed   error // sticky write-path failure; store is fail-closed

	gc groupState
}

// NewStore returns an empty in-memory store.
func NewStore() *Store {
	s := &Store{
		items: make(map[string]Item),
		subs:  make(map[string]map[int]Subscriber),
	}
	s.gc.cond = sync.NewCond(&s.gc.mu)
	return s
}

// Open returns a store backed by the append-only log at path with the
// default durability policy (SyncGroup, natural batching), replaying
// any existing records into memory first and durably bumping the store
// epoch.
func Open(path string) (*Store, error) {
	return OpenWith(Options{Path: path})
}

// OpenWith opens a persistent store with explicit options.
func OpenWith(o Options) (*Store, error) {
	if o.FS == nil {
		o.FS = OSFS()
	}
	s := NewStore()
	s.policy = o.Sync
	s.interval = o.GroupInterval
	log, err := OpenLogFS(o.FS, o.Path)
	if err != nil {
		return nil, err
	}
	if err := log.Replay(func(rec Record) {
		s.items[rec.Key] = Item{Key: rec.Key, Value: rec.Value, Version: rec.Version}
	}); err != nil {
		log.Close()
		return nil, err
	}
	if log.Legacy() {
		// Headerless pre-epoch log: upgrade by rewriting it with a header
		// (same tmp+rename+dir-sync dance as Compact).
		if log, err = rewriteLog(o.FS, o.Path, log, s.items, 0); err != nil {
			return nil, err
		}
	}
	// Bump the epoch durably before any write can be acknowledged under
	// it: each process incarnation owns a distinct epoch.
	if err := log.SetEpoch(log.Epoch() + 1); err != nil {
		log.Close()
		return nil, err
	}
	s.log = log
	s.epoch = log.Epoch()
	s.gc.synced = log.healthy
	s.gc.applied = log.healthy
	s.gc.tail = log.healthy
	mEpoch.Set(int64(s.epoch))
	return s, nil
}

// rewriteLog replaces the log at path with a fresh headered log holding
// exactly one record per item, carrying the given epoch. old is closed.
func rewriteLog(fs FS, path string, old *Log, items map[string]Item, epoch uint64) (*Log, error) {
	if err := old.Close(); err != nil {
		return nil, err
	}
	tmpPath := path + ".rewrite"
	tmp, err := OpenLogFS(fs, tmpPath)
	if err != nil {
		return nil, fmt.Errorf("db: upgrade log: %w", err)
	}
	if err := tmp.SetEpoch(epoch); err != nil {
		tmp.Close()
		fs.Remove(tmpPath)
		return nil, err
	}
	for _, it := range items {
		if err := tmp.Append(Record{Key: it.Key, Value: it.Value, Version: it.Version}); err != nil {
			tmp.Close()
			fs.Remove(tmpPath)
			return nil, fmt.Errorf("db: upgrade log: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(tmpPath)
		return nil, err
	}
	if err := fs.Rename(tmpPath, path); err != nil {
		return nil, fmt.Errorf("db: upgrade log rename: %w", err)
	}
	if err := fs.SyncDir(path); err != nil {
		return nil, fmt.Errorf("db: upgrade log dir sync: %w", err)
	}
	return reopenAtEndFS(fs, path)
}

// Epoch returns the store's persistent epoch: a counter durably bumped
// on every Open. In-memory stores report 0, meaning "no epoch" — the
// replica layer treats that as fencing disabled.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// SyncPolicyInUse reports the policy the store was opened with.
func (s *Store) SyncPolicyInUse() SyncPolicy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.policy
}

// Close drains pending group commits and releases the persistence log,
// if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	s.drainLocked()
	err := s.log.Close()
	s.log = nil
	if s.failed != nil && err == nil {
		err = s.failed
	}
	return err
}

// Get returns the current item for key. The returned value slice must not
// be modified by the caller. The second result reports whether the key has
// ever been written. Under SyncGroup, "current" means the newest durable
// version: an in-flight Put is invisible until its fsync lands.
func (s *Store) Get(key string) (Item, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[key]
	return it, ok
}

// Put commits a new version of key and notifies subscribers. It returns
// the committed item. With a persistent log, Put returns only once the
// record is durable per the store's sync policy; see the package
// durability contract.
func (s *Store) Put(key string, value []byte) (Item, error) {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return Item{}, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	it := s.items[key]
	it.Key = key
	it.Value = append([]byte(nil), value...)
	it.Version++
	if s.log == nil {
		s.commitLocked(it)
		s.mu.Unlock()
		return it, nil
	}

	// SyncGroup: frame the record into the group buffer — no file I/O on
	// the Put path, so appends never stall behind an in-flight fsync —
	// enqueue, release the store lock, then ride the group committer
	// until the batch holding this record is on disk and its entry has
	// been applied in commit order. Pending group entries for this key
	// hold versions newer than s.items; the chain must continue from the
	// newest assigned one.
	if s.policy == SyncGroup {
		log := s.log
		s.gc.mu.Lock()
		gen := s.gc.gen
		for i := len(s.gc.queue) - 1; i >= 0; i-- {
			if s.gc.queue[i].item.Key == key {
				it.Version = s.gc.queue[i].item.Version + 1
				break
			}
		}
		frame := frameRecord(Record{Key: key, Value: it.Value, Version: it.Version})
		s.gc.buf = append(s.gc.buf, frame...)
		s.gc.tail += int64(len(frame))
		end := s.gc.tail
		s.gc.queue = append(s.gc.queue, groupEntry{item: it, end: end})
		s.gc.mu.Unlock()
		s.mu.Unlock()
		if err := s.waitGroup(log, gen, end); err != nil {
			return Item{}, err
		}
		return it, nil
	}

	if err := s.log.Append(Record{Key: key, Value: it.Value, Version: it.Version}); err != nil {
		s.failLocked(err)
		s.mu.Unlock()
		return Item{}, fmt.Errorf("%w: append: %v", ErrFailed, err)
	}
	if s.policy == SyncAlways {
		if err := s.log.Sync(); err != nil {
			s.failLocked(err)
			s.mu.Unlock()
			return Item{}, fmt.Errorf("%w: sync: %v", ErrFailed, err)
		}
		mFsyncs.Inc()
	}
	s.commitLocked(it)
	s.mu.Unlock()
	return it, nil
}

// Install adopts an item replicated from an upstream authority, keeping
// its version instead of assigning a new one: this is how a relay
// station's mirror store absorbs values fetched or propagated from its
// parent. The install is version-guarded — an item at or below the
// current version is a no-op (false) so duplicated or reordered
// deliveries are inert — and in-memory only: a log-backed store owns its
// version chain and refuses with an error rather than splice foreign
// versions into it. The value is copied; the key is retained (callers
// holding borrowed transport memory must clone it first).
func (s *Store) Install(it Item) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		return false, fmt.Errorf("db: Install on a log-backed store (it owns its version chain)")
	}
	if cur, ok := s.items[it.Key]; ok && it.Version <= cur.Version {
		return false, nil
	}
	it.Value = append([]byte(nil), it.Value...)
	s.commitLocked(it)
	return true, nil
}

// commitLocked makes it visible and notifies subscribers; the caller
// holds s.mu.
func (s *Store) commitLocked(it Item) {
	s.items[it.Key] = it
	for _, fn := range s.subs[it.Key] {
		fn(it)
	}
}

// failLocked records the first write-path failure; the store is
// fail-closed from here. Group waiters are woken with the error.
func (s *Store) failLocked(err error) {
	if s.failed == nil {
		s.failed = err
		mSyncFailures.Inc()
	}
	s.gc.mu.Lock()
	if s.gc.err == nil {
		s.gc.err = err
	}
	s.gc.cond.Broadcast()
	s.gc.mu.Unlock()
}

// waitGroup blocks until the log is durable and applied through end, an
// offset in generation gen's coordinate space. The first waiter that
// finds no leader becomes one: it optionally sleeps the batching
// interval, snapshots the appended offset, fsyncs, and then applies
// every covered entry in commit order.
func (s *Store) waitGroup(log *Log, gen uint64, end int64) error {
	s.gc.mu.Lock()
	for {
		// Success is checked before the sticky error: an entry that is
		// already durable and applied acks success even if a *later*
		// round's sync failed. A generation change also means success —
		// Compact drained and applied everything queued (this entry
		// included) before it swapped logs and bumped gen, and end is an
		// offset in the old log's coordinates, not comparable to applied.
		if s.gc.gen != gen || s.gc.applied >= end {
			s.gc.mu.Unlock()
			return nil
		}
		if s.gc.err != nil {
			err := s.gc.err
			s.gc.mu.Unlock()
			return fmt.Errorf("%w: sync: %v", ErrFailed, err)
		}
		if !s.gc.leading {
			s.gc.leading = true
			s.gc.mu.Unlock()
			s.leadCommit(log, gen)
			s.gc.mu.Lock()
			continue
		}
		s.gc.cond.Wait()
	}
}

// writeBatch drains the group buffer to the file with one write and one
// fsync, serialized by gc.wmu. It returns the logical tail the round
// guarantees durable and whether an fsync actually ran; with an empty
// buffer the tail is already durable (whichever round grabbed those
// bytes wrote and fsynced them before releasing wmu) and no I/O happens.
//
// stale reports that Compact swapped the log since this round's gen was
// captured: the pinned handle is closed and any buffered records belong
// to the new log, so the round must not touch the file or the buffer.
// The check is sound because it happens under wmu: while a live round
// holds wmu with undrained entries, Compact's own drain blocks on wmu,
// so gen cannot advance mid-write.
func (s *Store) writeBatch(log *Log, gen uint64) (tail int64, wrote, stale bool, err error) {
	s.gc.wmu.Lock()
	defer s.gc.wmu.Unlock()
	if s.gc.werr != nil {
		return 0, false, false, s.gc.werr
	}
	s.gc.mu.Lock()
	if s.gc.gen != gen {
		s.gc.mu.Unlock()
		return 0, false, true, nil
	}
	buf := s.gc.buf
	tail = s.gc.tail
	s.gc.buf = nil
	s.gc.mu.Unlock()
	if len(buf) == 0 {
		return tail, false, false, nil
	}
	if err := log.AppendFramed(buf); err != nil {
		s.gc.werr = err
		return 0, false, false, err
	}
	if err := log.fsync(); err != nil {
		s.gc.werr = err
		return 0, false, false, err
	}
	return tail, true, false, nil
}

// applyLocked commits every queued entry the durable offset now covers,
// in commit order. The caller holds both s.mu and gc.mu.
func (s *Store) applyLocked() {
	n := 0
	for n < len(s.gc.queue) && s.gc.queue[n].end <= s.gc.synced {
		s.commitLocked(s.gc.queue[n].item)
		n++
	}
	if n > 0 {
		mGroupCommits.Inc()
		mGroupRecords.Add(uint64(n))
		s.gc.queue = append(s.gc.queue[:0], s.gc.queue[n:]...)
	}
	if s.gc.applied < s.gc.synced {
		s.gc.applied = s.gc.synced
	}
}

// leadCommit runs one group-commit round as leader: optionally sleep to
// grow the batch, land the whole buffer on disk, then apply every
// covered entry. The log handle is pinned by the caller so a concurrent
// Close cannot pull it away mid-round; a write on a closed file fails
// loudly and fails the round. gen fences the round against Compact: if
// the generation moves, the round's work was taken over by Compact's
// drain and its offsets are from a dead coordinate space.
func (s *Store) leadCommit(log *Log, gen uint64) {
	switch {
	case s.interval > 0:
		time.Sleep(s.interval)
	default:
		// Natural batching: the waiters of the previous round have just
		// been woken and are about to re-enqueue. Yield until the queue
		// stops growing so the round grabs the whole herd, not the two or
		// three writers the scheduler happened to run first — on a loaded
		// scheduler each yield runs every runnable goroutine once, so the
		// loop settles in a handful of iterations and costs no timer.
		prev := -1
		for i := 0; i < 64; i++ {
			s.gc.mu.Lock()
			n := len(s.gc.queue)
			s.gc.mu.Unlock()
			if n == prev {
				break
			}
			prev = n
			runtime.Gosched()
		}
	}
	tail, wrote, stale, err := s.writeBatch(log, gen)
	if stale {
		// Compact drained, applied, and re-coordinated everything this
		// round was elected for. Nothing to fold; just hand back
		// leadership so current-generation waiters can elect their own.
		s.gc.mu.Lock()
		s.gc.leading = false
		s.gc.cond.Broadcast()
		s.gc.mu.Unlock()
		return
	}

	s.mu.Lock()
	s.gc.mu.Lock()
	if err != nil {
		if s.failed == nil {
			s.failed = err
			mSyncFailures.Inc()
		}
		if s.gc.err == nil {
			s.gc.err = err
		}
		s.gc.leading = false
		s.gc.cond.Broadcast()
		s.gc.mu.Unlock()
		s.mu.Unlock()
		return
	}
	if wrote {
		mFsyncs.Inc()
	}
	// A Compact may have slipped in between writeBatch releasing wmu and
	// this lock acquisition. Its drain already folded and applied this
	// round's records; folding the pre-compaction tail here would inflate
	// synced/applied past the real end of the *new* file and acknowledge
	// future Puts that were never written. Fold only if the coordinate
	// space is still ours.
	if s.gc.gen == gen {
		if tail > s.gc.synced {
			s.gc.synced = tail
		}
	}
	s.applyLocked()
	s.gc.leading = false
	s.gc.cond.Broadcast()
	s.gc.mu.Unlock()
	s.mu.Unlock()
}

// drainLocked force-completes the group pipeline; the caller holds
// s.mu, so no new appends can race in. Used by Close and Compact.
func (s *Store) drainLocked() {
	if s.log == nil || s.policy != SyncGroup {
		return
	}
	s.gc.mu.Lock()
	if s.gc.err != nil {
		s.gc.mu.Unlock()
		return
	}
	gen := s.gc.gen
	idle := len(s.gc.buf) == 0 && len(s.gc.queue) == 0 && s.gc.applied >= s.gc.tail
	s.gc.mu.Unlock()
	if idle {
		return
	}
	tail, wrote, stale, err := s.writeBatch(s.log, gen)
	if stale {
		// Unreachable: gen only moves under s.mu, which the caller holds.
		return
	}
	s.gc.mu.Lock()
	defer s.gc.mu.Unlock()
	if err != nil {
		if s.failed == nil {
			s.failed = err
			mSyncFailures.Inc()
		}
		if s.gc.err == nil {
			s.gc.err = err
		}
		s.gc.cond.Broadcast()
		return
	}
	if wrote {
		mFsyncs.Inc()
	}
	if tail > s.gc.synced {
		s.gc.synced = tail
	}
	s.applyLocked()
	s.gc.cond.Broadcast()
}

// Subscribe registers fn for updates of key and returns a cancel func.
// fn observes every Put committed after Subscribe returns.
func (s *Store) Subscribe(key string, fn Subscriber) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs[key] == nil {
		s.subs[key] = make(map[int]Subscriber)
	}
	id := s.nextS
	s.nextS++
	s.subs[key][id] = fn
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.subs[key], id)
	}
}

// Len returns the number of distinct keys ever written.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Keys returns all keys, in unspecified order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.items))
	for k := range s.items {
		out = append(out, k)
	}
	return out
}
