package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
)

// Log is an append-only record log with per-record CRC32C checksums,
// preceded by a fixed checksummed file header that carries the store
// epoch (see Store.Epoch). Format:
//
//	header (16 bytes):
//	    magic   "MRL1"
//	    uint64  store epoch (little endian)
//	    uint32  CRC32C of magic+epoch
//	records, each:
//	    uint32  payload length (little endian)
//	    uint32  CRC32C of the payload
//	    payload:
//	        uint64 version
//	        uint16 key length, key bytes
//	        uint32 value length, value bytes
//
// A torn final record (partial write at crash) is tolerated on replay:
// replay stops at the first short or corrupt record and truncates the
// tail so the log stays consistent. Logs written before the header was
// introduced (no magic) are recognised and replayed from offset zero
// with epoch 0; db.Open upgrades them in place via a rewrite.
type Log struct {
	fs      FS
	f       File
	path    string
	w       *bufio.Writer
	healthy int64 // byte offset of the last fully valid record's end
	// appended mirrors healthy for readers outside the store lock.
	appended atomic.Int64
	epoch    uint64
	hdrLen   int64 // fileHeaderSize, or 0 for a legacy headerless log
}

// Record is one logged write.
type Record struct {
	Key     string
	Value   []byte
	Version uint64
}

const (
	logHeaderSize  = 8 // per record: length + crc
	fileHeaderSize = 16
)

var logMagic = [4]byte{'M', 'R', 'L', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptHeader reports a log whose file header carries the right
// magic but fails its checksum: the epoch is unknown, so opening it
// would risk violating epoch monotonicity. Operator intervention (or
// deleting the log) is required.
var ErrCorruptHeader = errors.New("db: corrupt log file header")

// OpenLog opens the log at path on the real filesystem.
func OpenLog(path string) (*Log, error) { return OpenLogFS(OSFS(), path) }

// OpenLogFS opens (creating if needed) the log at path on fs. A freshly
// created log gets a header with epoch 0, synced along with its parent
// directory so the file cannot vanish at a crash.
func OpenLogFS(fs FS, path string) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: open log: %w", err)
	}
	l := &Log{fs: fs, f: f, path: path, w: bufio.NewWriter(f)}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("db: open log: %w", err)
	}
	switch {
	case size == 0:
		// Fresh file: write the epoch-0 header and make both the header
		// and the directory entry durable before anyone relies on it.
		l.hdrLen = fileHeaderSize
		l.healthy = fileHeaderSize
		if err := l.writeHeader(0); err != nil {
			f.Close()
			return nil, err
		}
		if err := fs.SyncDir(path); err != nil {
			f.Close()
			return nil, fmt.Errorf("db: sync log dir: %w", err)
		}
	default:
		var hdr [fileHeaderSize]byte
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		_, err := io.ReadFull(f, hdr[:])
		switch {
		case err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF):
			// A genuine I/O error, not a short file. Treating it as a
			// legacy headerless log would let Replay truncate a perfectly
			// valid headered log to nothing and rewrite it; fail the open
			// instead.
			f.Close()
			return nil, fmt.Errorf("db: read log header: %w", err)
		case err == nil && [4]byte(hdr[0:4]) == logMagic:
			sum := binary.LittleEndian.Uint32(hdr[12:16])
			if crc32.Checksum(hdr[0:12], castagnoli) != sum {
				f.Close()
				return nil, fmt.Errorf("%w: %s", ErrCorruptHeader, path)
			}
			l.epoch = binary.LittleEndian.Uint64(hdr[4:12])
			l.hdrLen = fileHeaderSize
		default:
			// Short file or no magic: a legacy headerless log (or arbitrary
			// bytes, which record replay will reject record by record).
			// Replay from 0.
			l.hdrLen = 0
		}
	}
	l.healthy = l.hdrLen
	l.appended.Store(l.healthy)
	return l, nil
}

// Epoch returns the store epoch recorded in the log header (0 for a
// legacy or freshly created log that has not been bumped yet).
func (l *Log) Epoch() uint64 { return l.epoch }

// Legacy reports whether the log predates the epoch header.
func (l *Log) Legacy() bool { return l.hdrLen == 0 }

// writeHeader rewrites the file header in place with the given epoch
// and syncs it to stable storage. The header fits one sector, and the
// checksum catches the torn-write case regardless.
func (l *Log) writeHeader(epoch uint64) error {
	var hdr [fileHeaderSize]byte
	copy(hdr[0:4], logMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], epoch)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(hdr[0:12], castagnoli))
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("db: write log header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("db: sync log header: %w", err)
	}
	if _, err := l.f.Seek(l.healthy, io.SeekStart); err != nil {
		return err
	}
	l.epoch = epoch
	return nil
}

// SetEpoch durably rewrites the header epoch in place. It is only
// valid on a headered log; legacy logs are upgraded by rewrite in
// db.Open before any epoch bump.
func (l *Log) SetEpoch(epoch uint64) error {
	if l.hdrLen == 0 {
		return fmt.Errorf("db: cannot set epoch on legacy headerless log %s", l.path)
	}
	return l.writeHeader(epoch)
}

// Replay scans the log from the end of the header, invoking fn for
// every valid record in order. It stops silently at a torn or corrupt
// tail, records the healthy prefix length, and truncates the file to it
// so subsequent appends are safe. A record length is rejected as corrupt
// if it exceeds the bytes actually remaining in the file, so a single
// flipped length header cannot trigger a giant allocation. Only short
// reads count as a tear: a genuine I/O error fails the replay, since
// truncating on one would discard records that are intact on disk.
func (l *Log) Replay(fn func(Record)) error {
	size, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := l.f.Seek(l.hdrLen, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	offset := l.hdrLen
	for {
		var hdr [logHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// A real read error is not a torn tail: truncating here
				// would discard records that are intact on disk.
				return fmt.Errorf("db: replay: %w", err)
			}
			break // clean EOF or torn header: stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(length) > size-offset-logHeaderSize {
			break // claims more bytes than the file holds: corrupt
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("db: replay: %w", err)
			}
			break // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break // corrupt record
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		fn(rec)
		offset += logHeaderSize + int64(length)
	}
	l.healthy = offset
	l.appended.Store(offset)
	if err := l.f.Truncate(offset); err != nil {
		return fmt.Errorf("db: truncate torn tail: %w", err)
	}
	if _, err := l.f.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	l.w = bufio.NewWriter(l.f)
	return nil
}

// Append writes one record and flushes it to the OS. Durability is the
// caller's business: Sync (or the store's sync policy) decides when the
// record survives a power cut.
func (l *Log) Append(rec Record) error {
	return l.AppendFramed(frameRecord(rec))
}

// AppendFramed writes pre-framed record bytes (frameRecord output,
// possibly several records concatenated) with a single write and
// flushes them to the OS. The group committer uses it to land a whole
// batch in one syscall.
func (l *Log) AppendFramed(buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if _, err := l.w.Write(buf); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.healthy += int64(len(buf))
	l.appended.Store(l.healthy)
	return nil
}

// frameRecord renders one record exactly as it sits on disk: the
// length+CRC header followed by the encoded payload.
func frameRecord(rec Record) []byte {
	payload := encodeRecord(rec)
	out := make([]byte, logHeaderSize, logHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// Sync forces the log contents to stable storage.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// fsync syncs the file without touching the buffered writer; Append and
// AppendFramed flush on every call, so between appends the bufio buffer
// is always empty and fsync covers everything written so far.
func (l *Log) fsync() error { return l.f.Sync() }

// Close flushes, syncs to stable storage, and closes the underlying
// file. Without the sync a crash right after a clean shutdown could
// still lose the buffered tail — Close must leave nothing volatile.
func (l *Log) Close() error {
	syncErr := l.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

func encodeRecord(rec Record) []byte {
	out := make([]byte, 0, 8+2+len(rec.Key)+4+len(rec.Value))
	out = binary.LittleEndian.AppendUint64(out, rec.Version)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rec.Key)))
	out = append(out, rec.Key...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rec.Value)))
	out = append(out, rec.Value...)
	return out
}

var errShortRecord = errors.New("db: short record payload")

func decodeRecord(p []byte) (Record, error) {
	if len(p) < 8+2 {
		return Record{}, errShortRecord
	}
	var rec Record
	rec.Version = binary.LittleEndian.Uint64(p[:8])
	p = p[8:]
	klen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if len(p) < klen+4 {
		return Record{}, errShortRecord
	}
	rec.Key = string(p[:klen])
	p = p[klen:]
	vlen := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if len(p) != vlen {
		return Record{}, errShortRecord
	}
	rec.Value = append([]byte(nil), p...)
	return rec, nil
}
