package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Log is an append-only record log with per-record CRC32C checksums.
// Format of each record:
//
//	uint32  payload length (little endian)
//	uint32  CRC32C of the payload
//	payload:
//	    uint64 version
//	    uint16 key length, key bytes
//	    uint32 value length, value bytes
//
// A torn final record (partial write at crash) is tolerated on replay:
// replay stops at the first short or corrupt record and Append truncates
// the tail so the log stays consistent.
type Log struct {
	f       *os.File
	w       *bufio.Writer
	healthy int64 // byte offset of the last fully valid record's end
}

// Record is one logged write.
type Record struct {
	Key     string
	Value   []byte
	Version uint64
}

const logHeaderSize = 8 // length + crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpenLog opens (creating if needed) the log at path.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: open log: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f)}, nil
}

// Replay scans the log from the start, invoking fn for every valid record
// in order. It stops silently at a torn or corrupt tail, records the
// healthy prefix length, and truncates the file to it so subsequent
// appends are safe.
func (l *Log) Replay(fn func(Record)) error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	offset := int64(0)
	for {
		var hdr [logHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn header: stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<30 {
			break // absurd length: corrupt
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break // corrupt record
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		fn(rec)
		offset += logHeaderSize + int64(length)
	}
	l.healthy = offset
	if err := l.f.Truncate(offset); err != nil {
		return fmt.Errorf("db: truncate torn tail: %w", err)
	}
	if _, err := l.f.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	l.w = bufio.NewWriter(l.f)
	return nil
}

// Append writes one record and flushes it to the OS.
func (l *Log) Append(rec Record) error {
	payload := encodeRecord(rec)
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.healthy += int64(logHeaderSize + len(payload))
	return nil
}

// Sync forces the log contents to stable storage.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes, syncs to stable storage, and closes the underlying
// file. Without the sync a crash right after a clean shutdown could
// still lose the buffered tail — Close must leave nothing volatile.
func (l *Log) Close() error {
	syncErr := l.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

func encodeRecord(rec Record) []byte {
	out := make([]byte, 0, 8+2+len(rec.Key)+4+len(rec.Value))
	out = binary.LittleEndian.AppendUint64(out, rec.Version)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rec.Key)))
	out = append(out, rec.Key...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rec.Value)))
	out = append(out, rec.Value...)
	return out
}

var errShortRecord = errors.New("db: short record payload")

func decodeRecord(p []byte) (Record, error) {
	if len(p) < 8+2 {
		return Record{}, errShortRecord
	}
	var rec Record
	rec.Version = binary.LittleEndian.Uint64(p[:8])
	p = p[8:]
	klen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if len(p) < klen+4 {
		return Record{}, errShortRecord
	}
	rec.Key = string(p[:klen])
	p = p[klen:]
	vlen := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if len(p) != vlen {
		return Record{}, errShortRecord
	}
	rec.Value = append([]byte(nil), p...)
	return rec, nil
}
