package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"testing"
)

func TestCrashFSLosesUnsyncedSuffix(t *testing.T) {
	c := NewCrashFS()
	f, err := c.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncDir("f"); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-lost"))
	c.Kill(0) // nothing after the syncs survives

	g, err := c.OpenFile("f", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(g)
	if string(data) != "durable" {
		t.Fatalf("post-crash contents = %q", data)
	}
	// The pre-crash handle is dead.
	if _, err := f.Write([]byte("zombie")); !errors.Is(err, errHandleDead) {
		t.Fatalf("stale handle write: %v", err)
	}
}

func TestCrashFSFileVanishesWithoutDirSync(t *testing.T) {
	c := NewCrashFS()
	f, _ := c.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	f.Write([]byte("contents"))
	f.Sync() // contents durable, directory entry not
	c.Kill(0)
	if _, err := c.OpenFile("f", os.O_RDWR, 0o644); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file with un-synced dirent survived the crash: %v", err)
	}
}

func TestCrashFSCreateSurvivesInKeptPrefix(t *testing.T) {
	c := NewCrashFS()
	f, _ := c.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	f.Write([]byte("abc"))
	// Journal: [create f, write abc]. Keep both: the file exists with its
	// un-synced write replayed.
	c.Kill(2)
	g, err := c.OpenFile("f", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(g)
	if string(data) != "abc" {
		t.Fatalf("contents = %q", data)
	}
}

func TestCrashFSRenameDurability(t *testing.T) {
	// tmp is written, synced, renamed over target; without SyncDir the
	// rename can be lost, with it the rename must survive.
	build := func() *CrashFS {
		c := NewCrashFS()
		old, _ := c.OpenFile("log", os.O_RDWR|os.O_CREATE, 0o644)
		old.Write([]byte("old"))
		old.Sync()
		c.SyncDir("log")
		old.Close()
		tmp, _ := c.OpenFile("log.tmp", os.O_RDWR|os.O_CREATE, 0o644)
		tmp.Write([]byte("new"))
		tmp.Sync()
		tmp.Close()
		if err := c.Rename("log.tmp", "log"); err != nil {
			t.Fatal(err)
		}
		return c
	}

	lost := build()
	lost.Kill(0) // rename never made it
	f, err := lost.OpenFile("log", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := io.ReadAll(f); string(data) != "old" {
		t.Fatalf("lost-rename contents = %q", data)
	}

	kept := build()
	kept.SyncDir("log")
	kept.Kill(0)
	f, err = kept.OpenFile("log", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := io.ReadAll(f); string(data) != "new" {
		t.Fatalf("synced-rename contents = %q", data)
	}
}

func TestCrashFSKillAtEveryPoint(t *testing.T) {
	// Whatever the kill point, the surviving file content must be a
	// prefix-consistent mix: synced bytes always present, journaled writes
	// present iff their op survived.
	c := NewCrashFS()
	f, _ := c.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	f.Write([]byte("AA"))
	f.Sync()
	c.SyncDir("f")
	f.Write([]byte("BB"))
	f.Write([]byte("CC"))
	want := map[int]string{0: "AA", 1: "AABB", 2: "AABBCC"}
	if got := c.Ops(); got != 2 {
		t.Fatalf("ops = %d, want 2 (desc: %v)", got, c.OpDescriptions())
	}
	for keep := 0; keep <= 2; keep++ {
		clone := NewCrashFS()
		g, _ := clone.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
		g.Write([]byte("AA"))
		g.Sync()
		clone.SyncDir("f")
		g.Write([]byte("BB"))
		g.Write([]byte("CC"))
		clone.Kill(keep)
		h, err := clone.OpenFile("f", os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(h)
		if string(data) != want[keep] {
			t.Fatalf("keep=%d: contents = %q, want %q", keep, data, want[keep])
		}
	}
}

// TestStoreKillPointSweep drives a real store over CrashFS, kills it at
// every journaled-op boundary, reopens, and asserts the durability
// contract: every acknowledged Put is present with its exact version,
// and the recovered state is a prefix of the acknowledged sequence (no
// rollback past a durable record, no phantom writes).
func TestStoreKillPointSweep(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroup} {
		t.Run(policy.String(), func(t *testing.T) {
			const writes = 8
			// First, a dry run to learn the journal length.
			probe := NewCrashFS()
			s, err := OpenWith(Options{Path: "kp.log", Sync: policy, FS: probe})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= writes; i++ {
				if _, err := s.Put("x", []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			ops := probe.Ops()

			for kill := 0; kill <= ops; kill++ {
				c := NewCrashFS()
				st, err := OpenWith(Options{Path: "kp.log", Sync: policy, FS: c})
				if err != nil {
					t.Fatal(err)
				}
				acked := uint64(0)
				for i := 1; i <= writes; i++ {
					it, err := st.Put("x", []byte(fmt.Sprintf("v%d", i)))
					if err != nil {
						t.Fatal(err)
					}
					acked = it.Version
				}
				c.Kill(kill)

				re, err := OpenWith(Options{Path: "kp.log", Sync: policy, FS: c})
				if err != nil {
					t.Fatalf("kill=%d: reopen: %v", kill, err)
				}
				it, ok := re.Get("x")
				switch {
				case !ok && acked > 0:
					t.Fatalf("kill=%d: acknowledged writes lost entirely", kill)
				case it.Version < acked:
					t.Fatalf("kill=%d: acknowledged version %d rolled back to %d",
						kill, acked, it.Version)
				case it.Version > uint64(writes):
					t.Fatalf("kill=%d: phantom version %d", kill, it.Version)
				}
				if want := fmt.Sprintf("v%d", it.Version); string(it.Value) != want {
					t.Fatalf("kill=%d: version %d has value %q, want %q",
						kill, it.Version, it.Value, want)
				}
				re.Close()
			}
		})
	}
}

// TestCompactKillPointSweep crashes a store at every point during and
// after Compact: recovery must always see either the full pre-compact
// state or the full compacted state — same keys, same versions — and the
// epoch must never regress.
func TestCompactKillPointSweep(t *testing.T) {
	const keys = 4
	run := func(c *CrashFS) (*Store, error) {
		s, err := OpenWith(Options{Path: "ck.log", Sync: SyncAlways, FS: c})
		if err != nil {
			return nil, err
		}
		for round := 0; round < 3; round++ {
			for k := 0; k < keys; k++ {
				if _, err := s.Put(fmt.Sprintf("k%d", k), []byte{byte(round)}); err != nil {
					return nil, err
				}
			}
		}
		// Everything acknowledged is durable; the journal from here on is
		// compaction traffic only.
		if _, err := s.Compact(); err != nil {
			return nil, err
		}
		return s, nil
	}

	probe := NewCrashFS()
	if _, err := run(probe); err != nil {
		t.Fatal(err)
	}
	ops := probe.Ops()

	for kill := 0; kill <= ops; kill++ {
		c := NewCrashFS()
		s, err := run(c)
		if err != nil {
			t.Fatal(err)
		}
		epochBefore := s.Epoch()
		c.Kill(kill)
		re, err := OpenWith(Options{Path: "ck.log", Sync: SyncAlways, FS: c})
		if err != nil {
			t.Fatalf("kill=%d: reopen: %v (ops: %v)", kill, err, c.OpDescriptions())
		}
		if re.Len() != keys {
			t.Fatalf("kill=%d: recovered %d keys, want %d", kill, re.Len(), keys)
		}
		for k := 0; k < keys; k++ {
			it, ok := re.Get(fmt.Sprintf("k%d", k))
			if !ok || it.Version != 3 || it.Value[0] != 2 {
				t.Fatalf("kill=%d: k%d = %+v ok=%v", kill, k, it, ok)
			}
		}
		if re.Epoch() <= epochBefore {
			t.Fatalf("kill=%d: epoch did not advance: %d -> %d",
				kill, epochBefore, re.Epoch())
		}
		re.Close()
	}
}

func TestEpochBumpsOnEveryOpenAndSurvivesCompact(t *testing.T) {
	c := NewCrashFS()
	s, err := OpenWith(Options{Path: "e.log", FS: c})
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("first open epoch = %d, want 1", s.Epoch())
	}
	s.Put("x", []byte("v"))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("compact changed the epoch: %d", s.Epoch())
	}
	s.Close()
	for want := uint64(2); want <= 4; want++ {
		re, err := OpenWith(Options{Path: "e.log", FS: c})
		if err != nil {
			t.Fatal(err)
		}
		if re.Epoch() != want {
			t.Fatalf("epoch = %d, want %d", re.Epoch(), want)
		}
		re.Close()
	}
}

func TestEpochBumpSurvivesCrashAfterOpen(t *testing.T) {
	// The epoch bump is synced during Open, before any Put can be
	// acknowledged: a crash immediately after Open must not reuse the
	// epoch on the next incarnation.
	c := NewCrashFS()
	s, err := OpenWith(Options{Path: "e.log", FS: c})
	if err != nil {
		t.Fatal(err)
	}
	e1 := s.Epoch()
	c.Kill(0) // crash with nothing extra journaled
	re, err := OpenWith(Options{Path: "e.log", FS: c})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() <= e1 {
		t.Fatalf("epoch reused after crash: %d then %d", e1, re.Epoch())
	}
}

func TestLegacyHeaderlessLogUpgrades(t *testing.T) {
	// A pre-epoch log (raw records, no header) written on the real FS
	// must open, replay, and come out headered with epoch 1.
	dir := t.TempDir()
	path := dir + "/legacy.log"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		payload := encodeRecord(Record{Key: "x", Value: []byte{byte(i)}, Version: uint64(i)})
		var hdr [logHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		f.Write(hdr[:])
		f.Write(payload)
	}
	f.Close()

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("upgraded epoch = %d, want 1", s.Epoch())
	}
	it, ok := s.Get("x")
	if !ok || it.Version != 3 {
		t.Fatalf("legacy contents lost: %+v ok=%v", it, ok)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 2 {
		t.Fatalf("second open epoch = %d, want 2", re.Epoch())
	}
}

func TestCorruptHeaderRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.log"
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("x", []byte("v"))
	s.Close()
	data, _ := os.ReadFile(path)
	data[8] ^= 0xff // flip a bit inside the header's epoch field
	os.WriteFile(path, data, 0o644)
	if _, err := Open(path); !errors.Is(err, ErrCorruptHeader) {
		t.Fatalf("corrupt header: err = %v, want ErrCorruptHeader", err)
	}
}
