package db

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetVersioning(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("x"); ok {
		t.Fatal("unwritten key should be absent")
	}
	it, err := s.Put("x", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Version != 1 || string(it.Value) != "v1" {
		t.Fatalf("item = %+v", it)
	}
	it, _ = s.Put("x", []byte("v2"))
	if it.Version != 2 {
		t.Fatalf("version = %d", it.Version)
	}
	got, ok := s.Get("x")
	if !ok || string(got.Value) != "v2" || got.Version != 2 {
		t.Fatalf("got = %+v ok=%v", got, ok)
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := NewStore()
	buf := []byte("mutable")
	s.Put("x", buf)
	buf[0] = 'X'
	got, _ := s.Get("x")
	if string(got.Value) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", got.Value)
	}
}

func TestSubscribeDelivery(t *testing.T) {
	s := NewStore()
	var got []uint64
	cancel := s.Subscribe("x", func(it Item) { got = append(got, it.Version) })
	s.Put("x", []byte("a"))
	s.Put("y", []byte("other key")) // must not be delivered
	s.Put("x", []byte("b"))
	cancel()
	s.Put("x", []byte("c")) // after cancel: not delivered
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s := NewStore()
	a, b := 0, 0
	s.Subscribe("x", func(Item) { a++ })
	cancelB := s.Subscribe("x", func(Item) { b++ })
	s.Put("x", nil)
	cancelB()
	cancelB() // double cancel is harmless
	s.Put("x", nil)
	if a != 2 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestKeysAndLen(t *testing.T) {
	s := NewStore()
	s.Put("a", nil)
	s.Put("b", nil)
	s.Put("a", nil)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	keys := s.Keys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := NewStore()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.Put("x", []byte{byte(w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := s.Get("x")
	if got.Version != workers*per {
		t.Fatalf("version = %d, want %d", got.Version, workers*per)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Put("x", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("y", []byte("other"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	x, ok := re.Get("x")
	if !ok || x.Version != 10 || string(x.Value) != "v9" {
		t.Fatalf("x = %+v ok=%v", x, ok)
	}
	y, ok := re.Get("y")
	if !ok || y.Version != 1 || string(y.Value) != "other" {
		t.Fatalf("y = %+v", y)
	}
	// Appends after recovery must keep counting versions up.
	x2, err := re.Put("x", []byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if x2.Version != 11 {
		t.Fatalf("post-recovery version = %d", x2.Version)
	}
}

func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("x", []byte("good1"))
	s.Put("x", []byte("good2"))
	s.Close()

	// Simulate a crash mid-append: chop bytes off the end.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	x, ok := re.Get("x")
	if !ok || string(x.Value) != "good1" || x.Version != 1 {
		t.Fatalf("recovered x = %+v", x)
	}
	// The torn tail must have been truncated so new appends are valid.
	if _, err := re.Put("x", []byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	re.Close()

	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	x, _ = re2.Get("x")
	if string(x.Value) != "after-crash" || x.Version != 2 {
		t.Fatalf("post-crash x = %+v", x)
	}
}

func TestCrashMidAppendRecovery(t *testing.T) {
	// A process killed mid-append leaves a record prefix with no clean
	// shutdown: no Close, no Sync, just whatever the OS had. The store is
	// abandoned (never closed) and a second handle plays the crashed
	// writer, leaving header+partial payload at the tail.
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("x", []byte("v1"))
	s.Put("y", []byte("w1"))
	s.Put("x", []byte("v2"))

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeRecord(Record{Key: "x", Value: []byte("lost-in-crash"), Version: 3})
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	f.Write(hdr[:])
	f.Write(payload[:len(payload)/2]) // the crash hits here
	f.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := re.Get("x")
	y, _ := re.Get("y")
	if x.Version != 2 || string(x.Value) != "v2" || y.Version != 1 || string(y.Value) != "w1" {
		t.Fatalf("recovered x=%+v y=%+v", x, y)
	}
	// The torn tail was truncated; the next append lands where the partial
	// record was and survives another reopen.
	if _, err := re.Put("x", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	x, _ = re2.Get("x")
	if x.Version != 3 || string(x.Value) != "v3" {
		t.Fatalf("post-crash append lost: %+v", x)
	}
}

func TestLogCloseSurfacesSyncFailure(t *testing.T) {
	// Close must sync to stable storage and must not swallow the error
	// when it cannot: a silently unsynced close is exactly the data-loss
	// window the sync exists to shut.
	path := filepath.Join(t.TempDir(), "x.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Key: "k", Value: []byte("v"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	l.f.Close() // yank the fd: the sync inside Close must fail loudly
	if err := l.Close(); err == nil {
		t.Fatal("close with a dead fd should surface the sync failure")
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, _ := Open(path)
	s.Put("x", []byte("aaa"))
	s.Put("x", []byte("bbb"))
	s.Close()

	data, _ := os.ReadFile(path)
	// Flip a byte inside the second record's payload.
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	x, _ := re.Get("x")
	if string(x.Value) != "aaa" {
		t.Fatalf("corrupt record not skipped: %+v", x)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	check := func(key string, value []byte, version uint64) bool {
		if len(key) > 1<<16-1 {
			key = key[:1<<16-1]
		}
		rec := Record{Key: key, Value: value, Version: version}
		back, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			return false
		}
		return back.Key == rec.Key && back.Version == rec.Version &&
			bytes.Equal(back.Value, rec.Value)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecordShortInputs(t *testing.T) {
	for n := 0; n < 10; n++ {
		if _, err := decodeRecord(make([]byte, n)); err == nil {
			t.Fatalf("decode of %d bytes should fail", n)
		}
	}
}

func TestCloseIdempotentInMemory(t *testing.T) {
	s := NewStore()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Key: "k", Value: []byte("v"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenBadPath(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x.log")); err == nil {
		t.Fatal("open in missing directory should fail")
	}
	if _, err := OpenLog(filepath.Join(t.TempDir(), "no", "such", "dir", "x.log")); err == nil {
		t.Fatal("openlog in missing directory should fail")
	}
}

func TestOpenRejectsUnreadableReplay(t *testing.T) {
	// A directory where the log file should be: Open must surface the
	// error instead of succeeding with silent data loss.
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opening a directory as a log should fail")
	}
}

func TestReplayAbsurdLengthHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	// Header claims a 2 GiB record.
	data := make([]byte, 8)
	data[0], data[1], data[2], data[3] = 0xff, 0xff, 0xff, 0x7f
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatal("absurd record should be dropped")
	}
	// The torn tail is truncated; appends work.
	if _, err := s.Put("x", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("x", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The log handle is gone; Put must succeed in memory-only mode? No:
	// Close nils the log, so Put silently becomes in-memory. Verify the
	// documented behaviour: Put still works (memory) and does not error.
	if _, err := s.Put("x", []byte("w")); err != nil {
		t.Fatalf("put after close: %v", err)
	}
}

func TestCompactWithNoWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reclaimed, err := s.Compact()
	if err != nil || reclaimed != 0 {
		t.Fatalf("empty compact: %d, %v", reclaimed, err)
	}
}

func TestCompactManyKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			s.Put(fmt.Sprintf("k%02d", i), []byte{byte(round)})
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 40 {
		t.Fatalf("keys after compact = %d", re.Len())
	}
	for i := 0; i < 40; i++ {
		it, ok := re.Get(fmt.Sprintf("k%02d", i))
		if !ok || it.Version != 5 || it.Value[0] != 4 {
			t.Fatalf("k%02d = %+v ok=%v", i, it, ok)
		}
	}
}
