package db

import (
	"fmt"
)

// Compact rewrites the persistence log so it holds exactly one record per
// live key (its latest version), reclaiming the space of overwritten
// versions. The paper's stationary computer runs for long stretches with
// every write appended; compaction keeps recovery time proportional to the
// key count rather than the write count.
//
// The rewrite goes through a temporary file followed by an atomic rename
// and a directory sync, so a crash during compaction leaves either the
// old or the new log, never a mix — and the rename itself cannot be lost
// to an un-synced directory. The compacted log carries the same store
// epoch: compaction is not a restart and must not fence clients.
//
// Compact is a no-op (and returns 0) on an in-memory store. It blocks
// writers for its duration; it is intended for quiet moments (the
// mobile-computing workload has plenty: overnight).
func (s *Store) Compact() (reclaimed int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return 0, nil
	}
	if s.failed != nil {
		return 0, fmt.Errorf("%w: %v", ErrFailed, s.failed)
	}
	// Make every appended record visible first: the rewrite below copies
	// s.items, which must include any group-commit entries in flight.
	s.drainLocked()
	if s.failed != nil {
		return 0, fmt.Errorf("%w: %v", ErrFailed, s.failed)
	}

	oldSize := s.log.healthy
	path := s.log.path
	epoch := s.log.Epoch()
	tmpPath := path + ".compact"

	tmp, err := OpenLogFS(s.log.fs, tmpPath)
	if err != nil {
		return 0, fmt.Errorf("db: compact: %w", err)
	}
	if err := tmp.SetEpoch(epoch); err != nil {
		tmp.Close()
		s.log.fs.Remove(tmpPath)
		return 0, fmt.Errorf("db: compact: %w", err)
	}
	// Write the latest version of every key. Iteration order does not
	// matter for correctness: each key appears exactly once.
	for _, it := range s.items {
		if err := tmp.Append(Record{Key: it.Key, Value: it.Value, Version: it.Version}); err != nil {
			tmp.Close()
			s.log.fs.Remove(tmpPath)
			return 0, fmt.Errorf("db: compact append: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.log.fs.Remove(tmpPath)
		return 0, fmt.Errorf("db: compact sync: %w", err)
	}
	newSize := tmp.healthy
	if err := tmp.Close(); err != nil {
		s.log.fs.Remove(tmpPath)
		return 0, err
	}

	// Swap: close the old log, rename over it, sync the directory so the
	// rename survives a crash, and reopen positioned at the end of the
	// compacted contents.
	fs := s.log.fs
	if err := s.log.Close(); err != nil {
		fs.Remove(tmpPath)
		return 0, err
	}
	if err := fs.Rename(tmpPath, path); err != nil {
		// The old log file was closed but still intact on disk; reopen it
		// so the store keeps working. The contents (and so the logical
		// offsets) are unchanged, but the handle is new, so the generation
		// must still advance to fence any round pinning the closed one.
		if reopened, rerr := reopenAtEndFS(fs, path); rerr == nil {
			s.swapLogLocked(reopened)
		} else {
			// Without a log handle the store cannot persist anything it
			// acknowledges; fail closed rather than silently going
			// in-memory.
			s.log = nil
			s.failLocked(rerr)
		}
		return 0, fmt.Errorf("db: compact rename: %w", err)
	}
	if err := fs.SyncDir(path); err != nil {
		return 0, fmt.Errorf("db: compact dir sync: %w", err)
	}
	reopened, err := reopenAtEndFS(fs, path)
	if err != nil {
		s.log = nil
		s.failLocked(err)
		return 0, err
	}
	s.swapLogLocked(reopened)
	return oldSize - newSize, nil
}

// swapLogLocked installs a replacement log handle after Compact's
// rename (or its recovery path) and moves the group-commit machinery
// into the new file's coordinate space. Bumping gen fences every offset
// captured before the swap: stale waiters (all satisfied — the caller
// drained first) stop comparing old-space offsets against the new ones,
// and a stale leader discards its round instead of folding a
// pre-compaction tail into the fresh synced/applied or writing through
// the closed old handle. The caller holds s.mu.
func (s *Store) swapLogLocked(l *Log) {
	s.log = l
	s.gc.mu.Lock()
	s.gc.gen++
	s.gc.synced = l.healthy
	s.gc.applied = l.healthy
	s.gc.tail = l.healthy
	s.gc.cond.Broadcast()
	s.gc.mu.Unlock()
}

// reopenAtEndFS opens the log and replays it purely to position the
// write offset after the last valid record (contents are already in
// memory). The epoch in the header is read back, not bumped: only
// db.Open bumps.
func reopenAtEndFS(fs FS, path string) (*Log, error) {
	log, err := OpenLogFS(fs, path)
	if err != nil {
		return nil, err
	}
	if err := log.Replay(func(Record) {}); err != nil {
		log.Close()
		return nil, err
	}
	return log, nil
}

// LogSize returns the current byte size of the healthy log prefix
// (records only, excluding the file header), or 0 for an in-memory
// store. Callers use it to decide when to Compact.
func (s *Store) LogSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.log == nil {
		return 0
	}
	return s.log.healthy - s.log.hdrLen
}
