package db

import (
	"fmt"
	"os"
)

// Compact rewrites the persistence log so it holds exactly one record per
// live key (its latest version), reclaiming the space of overwritten
// versions. The paper's stationary computer runs for long stretches with
// every write appended; compaction keeps recovery time proportional to the
// key count rather than the write count.
//
// The rewrite goes through a temporary file followed by an atomic rename,
// so a crash during compaction leaves either the old or the new log, never
// a mix. Compact is a no-op (and returns 0) on an in-memory store.
//
// Compact blocks writers for its duration; it is intended for quiet
// moments (the mobile-computing workload has plenty: overnight).
func (s *Store) Compact() (reclaimed int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return 0, nil
	}
	oldSize := s.log.healthy
	path := s.log.f.Name()
	tmpPath := path + ".compact"

	tmp, err := OpenLog(tmpPath)
	if err != nil {
		return 0, fmt.Errorf("db: compact: %w", err)
	}
	// Write the latest version of every key. Iteration order does not
	// matter for correctness: each key appears exactly once.
	for _, it := range s.items {
		if err := tmp.Append(Record{Key: it.Key, Value: it.Value, Version: it.Version}); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return 0, fmt.Errorf("db: compact append: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("db: compact sync: %w", err)
	}
	newSize := tmp.healthy
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, err
	}

	// Swap: close the old log, rename over it, reopen positioned at the
	// end of the compacted contents.
	if err := s.log.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		// The old log file was closed but still intact on disk; reopen it
		// so the store keeps working.
		if reopened, rerr := reopenAtEnd(path); rerr == nil {
			s.log = reopened
		} else {
			s.log = nil
		}
		return 0, fmt.Errorf("db: compact rename: %w", err)
	}
	reopened, err := reopenAtEnd(path)
	if err != nil {
		s.log = nil
		return 0, err
	}
	s.log = reopened
	return oldSize - newSize, nil
}

// reopenAtEnd opens the log and replays it purely to position the write
// offset after the last valid record (contents are already in memory).
func reopenAtEnd(path string) (*Log, error) {
	log, err := OpenLog(path)
	if err != nil {
		return nil, err
	}
	if err := log.Replay(func(Record) {}); err != nil {
		log.Close()
		return nil, err
	}
	return log, nil
}

// LogSize returns the current byte size of the healthy log prefix, or 0
// for an in-memory store. Callers use it to decide when to Compact.
func (s *Store) LogSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.log == nil {
		return 0
	}
	return s.log.healthy
}
