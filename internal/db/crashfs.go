package db

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// CrashFS is a deterministic in-memory filesystem with power-cut
// semantics, in the spirit of transport.Chaos but for storage: every
// mutation since the last fsync sits in an ordered journal of un-synced
// operations, and Kill(n) simulates pulling the plug after exactly the
// first n of them reached the platter. Everything else — including the
// suffix of un-synced writes, created files whose directory entry was
// never fsynced, and renames not followed by a directory sync — is lost,
// which is precisely what a real kernel is allowed to do.
//
// The model separates the two durabilities POSIX separates:
//
//   - File.Sync makes a file's *contents* durable but not its directory
//     entry: a file created and synced but whose parent directory was
//     never synced can still vanish wholesale at a crash.
//   - FS.SyncDir makes directory entries (creations, renames, removals)
//     durable, in journal order.
//
// After Kill, all open File handles are dead (the process holding them
// is gone); a new incarnation starts from OpenFile on the surviving
// state. Kill also resets the journal, so a test can crash the same
// filesystem repeatedly.
type CrashFS struct {
	mu        sync.Mutex
	gen       int               // bumped on Kill; stale handles fail
	exists    map[string]bool   // live directory entries
	data      map[string][]byte // live contents
	durDirent map[string]bool   // durable directory entries
	durData   map[string][]byte // durable (synced) contents
	journal   []crashOp
}

type crashOpKind int

const (
	opCreate crashOpKind = iota
	opWrite
	opTruncate
	opRename
	opRemove
)

type crashOp struct {
	kind crashOpKind
	name string
	to   string // rename target
	off  int64
	data []byte
	size int64 // truncate
}

func (k crashOpKind) String() string {
	switch k {
	case opCreate:
		return "create"
	case opWrite:
		return "write"
	case opTruncate:
		return "truncate"
	case opRename:
		return "rename"
	case opRemove:
		return "remove"
	}
	return "?"
}

// NewCrashFS returns an empty in-memory filesystem.
func NewCrashFS() *CrashFS {
	return &CrashFS{
		exists:    make(map[string]bool),
		data:      make(map[string][]byte),
		durDirent: make(map[string]bool),
		durData:   make(map[string][]byte),
	}
}

// Ops returns the current length of the un-synced operation journal.
// Kill(n) with 0 <= n <= Ops() chooses how much of it survives.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.journal)
}

// OpDescriptions returns a human-readable label per journaled op, for
// test failure messages in kill-point sweeps.
func (c *CrashFS) OpDescriptions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.journal))
	for i, op := range c.journal {
		out[i] = fmt.Sprintf("%s %s off=%d len=%d", op.kind, op.name, op.off, len(op.data))
	}
	return out
}

// Kill simulates a power cut: the first keep journaled operations
// survive, the rest are lost, and the filesystem state collapses to
// what stable storage would hold. All open handles become invalid.
func (c *CrashFS) Kill(keep int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	if keep > len(c.journal) {
		keep = len(c.journal)
	}
	exists, data := c.replayLocked(keep)
	c.durDirent, c.durData = exists, data
	c.exists = copyDirents(exists)
	c.data = copyContents(data)
	c.journal = nil
	c.gen++
}

// replayLocked computes the post-crash state after the first keep
// journaled ops hit stable storage.
func (c *CrashFS) replayLocked(keep int) (map[string]bool, map[string][]byte) {
	exists := copyDirents(c.durDirent)
	data := copyContents(c.durData)
	for _, op := range c.journal[:keep] {
		switch op.kind {
		case opCreate:
			exists[op.name] = true
			if _, ok := data[op.name]; !ok {
				data[op.name] = nil
			}
		case opWrite:
			data[op.name] = applyWrite(data[op.name], op.off, op.data)
		case opTruncate:
			data[op.name] = truncateTo(data[op.name], op.size)
		case opRename:
			delete(exists, op.name)
			exists[op.to] = true
			data[op.to] = data[op.name]
			delete(data, op.name)
		case opRemove:
			delete(exists, op.name)
			delete(data, op.name)
		}
	}
	// Contents of files with no surviving directory entry are gone.
	for name := range data {
		if !exists[name] {
			delete(data, name)
		}
	}
	return exists, data
}

func (c *CrashFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.exists[name] {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		c.exists[name] = true
		c.data[name] = nil
		c.journal = append(c.journal, crashOp{kind: opCreate, name: name})
	}
	return &crashFile{fs: c, name: name, gen: c.gen}, nil
}

func (c *CrashFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.exists[oldpath] {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(c.exists, oldpath)
	c.exists[newpath] = true
	c.data[newpath] = c.data[oldpath]
	delete(c.data, oldpath)
	c.journal = append(c.journal, crashOp{kind: opRename, name: oldpath, to: newpath})
	return nil
}

func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.exists[name] {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(c.exists, name)
	delete(c.data, name)
	c.journal = append(c.journal, crashOp{kind: opRemove, name: name})
	return nil
}

// SyncDir promotes every journaled directory operation (creations,
// renames, removals) to durable, in order. The model is flat, so one
// directory sync covers all entries, which matches how the log keeps
// every file in a single directory.
func (c *CrashFS) SyncDir(string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rest := c.journal[:0]
	for _, op := range c.journal {
		switch op.kind {
		case opCreate:
			c.durDirent[op.name] = true
		case opRename:
			delete(c.durDirent, op.name)
			c.durDirent[op.to] = true
			if img, ok := c.durData[op.name]; ok {
				c.durData[op.to] = img
				delete(c.durData, op.name)
			}
		case opRemove:
			delete(c.durDirent, op.name)
			delete(c.durData, op.name)
		default:
			rest = append(rest, op)
		}
	}
	c.journal = rest
	return nil
}

// syncFile promotes name's current contents to durable and drops its
// journaled data ops. The directory entry stays un-synced: that is
// SyncDir's job.
func (c *CrashFS) syncFile(name string, gen int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return errHandleDead
	}
	if !c.exists[name] {
		return &os.PathError{Op: "sync", Path: name, Err: os.ErrNotExist}
	}
	c.durData[name] = append([]byte(nil), c.data[name]...)
	rest := c.journal[:0]
	for _, op := range c.journal {
		if op.name == name && (op.kind == opWrite || op.kind == opTruncate) {
			continue
		}
		rest = append(rest, op)
	}
	c.journal = rest
	return nil
}

var errHandleDead = fmt.Errorf("crashfs: handle belongs to a killed incarnation")

type crashFile struct {
	fs     *CrashFS
	name   string
	gen    int
	pos    int64
	closed bool
}

func (f *crashFile) check() error {
	if f.closed {
		return os.ErrClosed
	}
	if f.gen != f.fs.gen {
		return errHandleDead
	}
	return nil
}

func (f *crashFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	data := f.fs.data[f.name]
	if f.pos >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *crashFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	f.fs.data[f.name] = applyWrite(f.fs.data[f.name], f.pos, p)
	f.fs.journal = append(f.fs.journal, crashOp{
		kind: opWrite, name: f.name, off: f.pos, data: append([]byte(nil), p...),
	})
	f.pos += int64(len(p))
	return len(p), nil
}

func (f *crashFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.fs.data[f.name]))
	default:
		return 0, fmt.Errorf("crashfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("crashfs: negative seek")
	}
	f.pos = base + offset
	return f.pos, nil
}

func (f *crashFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	f.fs.data[f.name] = truncateTo(f.fs.data[f.name], size)
	f.fs.journal = append(f.fs.journal, crashOp{kind: opTruncate, name: f.name, size: size})
	return nil
}

func (f *crashFile) Sync() error {
	return f.fs.syncFile(f.name, f.gen)
}

func (f *crashFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

func applyWrite(data []byte, off int64, p []byte) []byte {
	end := off + int64(len(p))
	if int64(len(data)) < end {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[off:end], p)
	return data
}

func truncateTo(data []byte, size int64) []byte {
	if size < 0 {
		size = 0
	}
	if int64(len(data)) <= size {
		grown := make([]byte, size)
		copy(grown, data)
		return grown
	}
	return data[:size:size]
}

func copyDirents(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyContents(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
