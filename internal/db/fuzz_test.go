package db

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLogReplay writes arbitrary bytes as a "log file" and opens it: the
// replay must never panic, must recover a consistent prefix, and the
// reopened store must accept new writes that survive another recovery.
func FuzzLogReplay(f *testing.F) {
	// Seed with a valid log's bytes and corruptions thereof.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.log")
	s, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	s.Put("alpha", []byte("one"))
	s.Put("beta", []byte("two"))
	s.Put("alpha", []byte("three"))
	s.Close()
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err != nil {
			return // refusal is acceptable; panics are not
		}
		// Whatever was recovered, the store must work from here.
		if _, err := st.Put("post", []byte("fuzz")); err != nil {
			t.Fatalf("post-recovery put failed: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		re, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after clean append failed: %v", err)
		}
		defer re.Close()
		it, ok := re.Get("post")
		if !ok || string(it.Value) != "fuzz" {
			t.Fatalf("appended record lost: %+v ok=%v", it, ok)
		}
	})
}
