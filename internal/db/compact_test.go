package db

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestCompactRacesGroupCommit pins the coordinate-space race between
// Compact and an in-flight group-commit leader: a leader that finished
// its batch write before Compact swapped the log must not fold its
// pre-compaction tail into the compacted log's synced/applied offsets —
// doing so acknowledges later Puts before their records exist anywhere.
// The test hammers group-committed Puts against repeated Compacts, then
// pulls the plug (every un-synced byte lost) and checks that every
// acknowledged version survived.
func TestCompactRacesGroupCommit(t *testing.T) {
	cfs := NewCrashFS()
	s, err := OpenWith(Options{Path: "items.log", Sync: SyncGroup, FS: cfs})
	if err != nil {
		t.Fatal(err)
	}

	const writers, puts = 4, 60
	acked := make([]uint64, writers) // highest acknowledged version per key
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w)
			for i := 0; i < puts; i++ {
				it, err := s.Put(key, []byte(fmt.Sprintf("%d-%d", w, i)))
				if err != nil {
					errs <- fmt.Errorf("writer %d put %d: %w", w, i, err)
					return
				}
				acked[w] = it.Version
			}
		}(w)
	}
	compDone := make(chan struct{})
	go func() {
		defer close(compDone)
		for i := 0; i < 200; i++ {
			if _, err := s.Compact(); err != nil {
				errs <- fmt.Errorf("compact %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-compDone
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Crash without Close: drop every mutation since the last fsync. The
	// group-commit contract says nothing acknowledged may be among them.
	cfs.Kill(0)
	re, err := OpenWith(Options{Path: "items.log", Sync: SyncGroup, FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for w := 0; w < writers; w++ {
		it, ok := re.Get(fmt.Sprintf("k%d", w))
		if !ok || it.Version < acked[w] {
			t.Fatalf("writer %d: acknowledged version %d, survived %d (ok=%v)",
				w, acked[w], it.Version, ok)
		}
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		if _, err := s.Put("hot", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("cold", []byte("only-once"))

	before := s.LogSize()
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	after := s.LogSize()
	if reclaimed <= 0 {
		t.Fatalf("reclaimed = %d", reclaimed)
	}
	if after >= before {
		t.Fatalf("log did not shrink: %d -> %d", before, after)
	}
	if before-after != reclaimed {
		t.Fatalf("reclaimed %d but shrank %d", reclaimed, before-after)
	}

	// State must be intact, both in memory and after recovery.
	hot, _ := s.Get("hot")
	if string(hot.Value) != "version-499" || hot.Version != 500 {
		t.Fatalf("hot = %+v", hot)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	hot, ok := re.Get("hot")
	if !ok || string(hot.Value) != "version-499" || hot.Version != 500 {
		t.Fatalf("recovered hot = %+v ok=%v", hot, ok)
	}
	cold, ok := re.Get("cold")
	if !ok || string(cold.Value) != "only-once" {
		t.Fatalf("recovered cold = %+v", cold)
	}
}

func TestCompactThenWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put("x", []byte{byte(i)})
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Writes after compaction must append cleanly and survive recovery.
	if _, err := s.Put("x", []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	x, _ := re.Get("x")
	if string(x.Value) != "post-compact" || x.Version != 51 {
		t.Fatalf("x = %+v", x)
	}
}

func TestCompactInMemoryIsNoop(t *testing.T) {
	s := NewStore()
	s.Put("x", []byte("v"))
	reclaimed, err := s.Compact()
	if err != nil || reclaimed != 0 {
		t.Fatalf("reclaimed=%d err=%v", reclaimed, err)
	}
	if s.LogSize() != 0 {
		t.Fatal("in-memory store should report zero log size")
	}
}

func TestCompactIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put("x", []byte{byte(i)})
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	size := s.LogSize()
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 || s.LogSize() != size {
		t.Fatalf("second compact reclaimed %d, size %d -> %d", reclaimed, size, s.LogSize())
	}
}

func TestCompactPreservesSubscriptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("x", []byte("a"))
	got := 0
	s.Subscribe("x", func(Item) { got++ })
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put("x", []byte("b"))
	if got != 1 {
		t.Fatalf("subscriber deliveries after compact = %d", got)
	}
}
