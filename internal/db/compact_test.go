package db

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestCompactReclaimsSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		if _, err := s.Put("hot", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("cold", []byte("only-once"))

	before := s.LogSize()
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	after := s.LogSize()
	if reclaimed <= 0 {
		t.Fatalf("reclaimed = %d", reclaimed)
	}
	if after >= before {
		t.Fatalf("log did not shrink: %d -> %d", before, after)
	}
	if before-after != reclaimed {
		t.Fatalf("reclaimed %d but shrank %d", reclaimed, before-after)
	}

	// State must be intact, both in memory and after recovery.
	hot, _ := s.Get("hot")
	if string(hot.Value) != "version-499" || hot.Version != 500 {
		t.Fatalf("hot = %+v", hot)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	hot, ok := re.Get("hot")
	if !ok || string(hot.Value) != "version-499" || hot.Version != 500 {
		t.Fatalf("recovered hot = %+v ok=%v", hot, ok)
	}
	cold, ok := re.Get("cold")
	if !ok || string(cold.Value) != "only-once" {
		t.Fatalf("recovered cold = %+v", cold)
	}
}

func TestCompactThenWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put("x", []byte{byte(i)})
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Writes after compaction must append cleanly and survive recovery.
	if _, err := s.Put("x", []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	x, _ := re.Get("x")
	if string(x.Value) != "post-compact" || x.Version != 51 {
		t.Fatalf("x = %+v", x)
	}
}

func TestCompactInMemoryIsNoop(t *testing.T) {
	s := NewStore()
	s.Put("x", []byte("v"))
	reclaimed, err := s.Compact()
	if err != nil || reclaimed != 0 {
		t.Fatalf("reclaimed=%d err=%v", reclaimed, err)
	}
	if s.LogSize() != 0 {
		t.Fatal("in-memory store should report zero log size")
	}
}

func TestCompactIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put("x", []byte{byte(i)})
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	size := s.LogSize()
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 0 || s.LogSize() != size {
		t.Fatalf("second compact reclaimed %d, size %d -> %d", reclaimed, size, s.LogSize())
	}
}

func TestCompactPreservesSubscriptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "items.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("x", []byte("a"))
	got := 0
	s.Subscribe("x", func(Item) { got++ })
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put("x", []byte("b"))
	if got != 1 {
		t.Fatalf("subscriber deliveries after compact = %d", got)
	}
}
