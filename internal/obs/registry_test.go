package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	h := r.Histogram("test_latency_seconds", "latency", []float64{1, 10})
	for _, v := range []float64{0.5, 0.9, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 106.4 {
		t.Fatalf("histogram sum = %v, want 106.4", h.Sum())
	}
	s := h.snapshot()
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("test_x", "")
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := New()
	for _, name := range []string{"", "9leading", "has space", "bad-dash", `x{y="z"`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q was accepted", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestSnapshotAbsentSeriesIsZero(t *testing.T) {
	s := New().Snapshot()
	if s.Counter("never_registered_total") != 0 || s.Gauge("never_registered") != 0 {
		t.Fatal("absent series must read as zero for delta arithmetic")
	}
}

// TestWriteToPrometheusFormat parses the exposition line by line: every
// non-comment line must be `name value` with the name matching the
// Prometheus grammar, every base name must carry a TYPE header before
// its first sample, and histogram bucket counts must be cumulative and
// agree with _count.
func TestWriteToPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("app_reads_total", "reads").Add(3)
	r.Counter(`app_reads_by_result_total{result="local"}`, "reads by result").Add(2)
	r.Counter(`app_reads_by_result_total{result="remote"}`, "").Add(1)
	r.Gauge("app_sessions", "open sessions").Set(-2)
	h := r.Histogram(`app_rt_seconds{path="read"}`, "rt", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	typed := map[string]string{}
	samples := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln, valStr, err)
		}
		base := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln, series)
			}
			base = series[:i]
		}
		for i := 0; i < len(base); i++ {
			c := base[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				t.Fatalf("line %d: invalid metric name %q", ln, base)
			}
		}
		// Histogram sample families hang off the typed base name.
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(base, suffix); trimmed != base && typed[trimmed] == "histogram" {
				family = trimmed
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q before its TYPE header", ln, series)
		}
		samples[series] = val
	}

	if samples["app_reads_total"] != 3 {
		t.Fatalf("app_reads_total = %v", samples["app_reads_total"])
	}
	if samples[`app_reads_by_result_total{result="local"}`] != 2 ||
		samples[`app_reads_by_result_total{result="remote"}`] != 1 {
		t.Fatalf("labelled counters wrong: %v", samples)
	}
	if samples["app_sessions"] != -2 {
		t.Fatalf("gauge = %v", samples["app_sessions"])
	}
	// Cumulative buckets: 1 ≤ 0.1, 2 ≤ 1, 3 ≤ +Inf, count 3, sum 2.55.
	if samples[`app_rt_seconds_bucket{path="read",le="0.1"}`] != 1 ||
		samples[`app_rt_seconds_bucket{path="read",le="1"}`] != 2 ||
		samples[`app_rt_seconds_bucket{path="read",le="+Inf"}`] != 3 {
		t.Fatalf("histogram buckets not cumulative: %v", samples)
	}
	if samples[`app_rt_seconds_count{path="read"}`] != 3 {
		t.Fatalf("histogram count = %v", samples[`app_rt_seconds_count{path="read"}`])
	}
	if got := samples[`app_rt_seconds_sum{path="read"}`]; got < 2.54 || got > 2.56 {
		t.Fatalf("histogram sum = %v", got)
	}
}

// TestRegistryConcurrentUse is the ISSUE's -race hammer: N goroutines
// pound counters, gauges and histograms while WriteTo and Snapshot run
// concurrently, then the final totals must be exact (no torn or lost
// writes) and counter reads monotonic across successive snapshots.
func TestRegistryConcurrentUse(t *testing.T) {
	r := New()
	const (
		goroutines = 8
		iters      = 5000
	)
	c := r.Counter("hammer_ops_total", "")
	g := r.Gauge("hammer_depth", "")
	h := r.Histogram("hammer_obs", "", []float64{1, 2, 4, 8})

	var writers, readers sync.WaitGroup
	stopReaders := make(chan struct{})
	readerErr := make(chan error, 2)

	// Reader 1: snapshots must see monotonically non-decreasing counters.
	readers.Add(1)
	go func() {
		defer readers.Done()
		var last uint64
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			s := r.Snapshot()
			now := s.Counter("hammer_ops_total")
			if now < last {
				readerErr <- fmt.Errorf("counter went backwards: %d after %d", now, last)
				return
			}
			last = now
			hs := s.Histograms["hammer_obs"]
			var cum uint64
			for _, b := range hs.Counts {
				cum += b
			}
			if hs.Count > cum {
				readerErr <- fmt.Errorf("histogram count %d exceeds bucket sum %d", hs.Count, cum)
				return
			}
		}
	}()
	// Reader 2: WriteTo must always render parseable non-negative counters.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				readerErr <- err
				return
			}
			if !strings.Contains(sb.String(), "hammer_ops_total") {
				readerErr <- fmt.Errorf("registered series missing from exposition")
				return
			}
		}
	}()

	for i := 0; i < goroutines; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j % 10))
			}
		}()
	}
	writers.Wait()
	close(stopReaders)
	readers.Wait()

	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	if got := c.Load(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", got, goroutines*iters)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	var wantSum float64
	for j := 0; j < iters; j++ {
		wantSum += float64(j % 10)
	}
	wantSum *= goroutines
	if got := h.Sum(); got != wantSum {
		t.Fatalf("histogram sum = %v, want %v (torn CAS accumulation)", got, wantSum)
	}
}

// TestObsRecordPathZeroAllocs pins the subsystem's core constraint: the
// record path — counter add, gauge move, histogram observe, trace record
// — performs zero heap allocations, so instrumenting the zero-alloc
// replay kernels cannot regress their guarantee.
func TestObsRecordPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("za_total", "")
	g := r.Gauge("za_depth", "")
	h := r.Histogram("za_hist", "", DurationBuckets)
	tr := NewTracer(64)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(0.004)
		tr.Record(EvAllocate, "key", "detail", 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("record path allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_hist", "", DurationBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0001)
		}
	})
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(DefaultTraceCapacity)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(EvChaosFault, "x", "drop", 0, 0)
		}
	})
}
