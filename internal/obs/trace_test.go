package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerTailOrderAndEviction(t *testing.T) {
	tr := NewTracer(4)
	base := time.Unix(1000, 0)
	i := 0
	tr.SetClock(func() time.Time { i++; return base.Add(time.Duration(i) * time.Second) })

	for v := int64(1); v <= 6; v++ {
		tr.Record(EvAllocate, "k", "", v, 0)
	}
	if tr.Recorded() != 6 {
		t.Fatalf("recorded = %d, want 6", tr.Recorded())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4 (ring capacity)", tr.Len())
	}

	tail := tr.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("full tail has %d events, want 4", len(tail))
	}
	for j, e := range tail {
		wantSeq := uint64(3 + j) // events 3,4,5,6 survive eviction
		if e.Seq != wantSeq || e.V1 != int64(wantSeq) {
			t.Fatalf("tail[%d] = seq %d v1 %d, want seq %d", j, e.Seq, e.V1, wantSeq)
		}
		if j > 0 && e.TimeUnixNano <= tail[j-1].TimeUnixNano {
			t.Fatalf("timestamps not increasing at %d", j)
		}
	}

	short := tr.Tail(2)
	if len(short) != 2 || short[0].Seq != 5 || short[1].Seq != 6 {
		t.Fatalf("tail(2) = %+v, want seqs 5,6", short)
	}
	if over := tr.Tail(100); len(over) != 4 {
		t.Fatalf("tail(100) returned %d events, want 4", len(over))
	}
}

func TestTracerEmpty(t *testing.T) {
	tr := NewTracer(8)
	if got := tr.Tail(5); len(got) != 0 {
		t.Fatalf("empty tracer tail = %v", got)
	}
	if tr.Len() != 0 || tr.Recorded() != 0 {
		t.Fatal("empty tracer reports events")
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(128)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Record(EvReconnect, "", "ok", int64(j), 0)
				if len(tr.Tail(4)) > 4 {
					panic("tail overflow")
				}
			}
		}()
	}
	wg.Wait()
	if tr.Recorded() != goroutines*per {
		t.Fatalf("recorded = %d, want %d", tr.Recorded(), goroutines*per)
	}
	tail := tr.Tail(0)
	if len(tail) != 128 {
		t.Fatalf("retained %d, want 128", len(tail))
	}
	for j := 1; j < len(tail); j++ {
		if tail[j].Seq != tail[j-1].Seq+1 {
			t.Fatalf("tail sequence not contiguous at %d: %d after %d",
				j, tail[j].Seq, tail[j-1].Seq)
		}
	}
}

func TestEventTypeStringsAreStable(t *testing.T) {
	// The /events JSON surface is part of the debug contract; renaming an
	// event type silently breaks dashboards built on it.
	want := map[EventType]string{
		EvAllocate:      "allocate",
		EvDeallocate:    "deallocate",
		EvReconnect:     "reconnect",
		EvResync:        "resync",
		EvHeartbeatMiss: "heartbeat-miss",
		EvSessionOpen:   "session-open",
		EvSessionClose:  "session-close",
		EvSessionExpire: "session-expire",
		EvChaosFault:    "chaos-fault",
		EvSuspect:       "suspect",
		EvStaleRead:     "stale-read",
	}
	for typ, name := range want {
		if typ.String() != name {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), name)
		}
	}
}
