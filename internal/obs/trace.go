package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventType discriminates traced events. The set covers every state
// transition worth seeing on a live node: protocol window flips,
// recovery activity, session lifecycle, and injected chaos faults.
type EventType uint8

const (
	// EvAllocate: a copy was allocated at the MC (window turned
	// read-majority, or a static-2 first contact).
	EvAllocate EventType = iota + 1
	// EvDeallocate: a copy was dropped (write-majority window, SW1
	// delete-request, or a resync that found the mix write-heavy).
	EvDeallocate
	// EvReconnect: one recovery dial attempt finished; Detail carries
	// the outcome ("ok", "dial-error", "resync-fail").
	EvReconnect
	// EvResync: a warm resync completed at the client; V1 counts
	// revalidated (NotModified) entries, V2 re-shipped entries.
	EvResync
	// EvHeartbeatMiss: a keepalive interval saw no pong; V1 is the
	// consecutive-miss count.
	EvHeartbeatMiss
	// EvSessionOpen: the server attached a client session.
	EvSessionOpen
	// EvSessionClose: a session detached (client left or link died).
	EvSessionClose
	// EvSessionExpire: the idle reaper collected a silent session.
	EvSessionExpire
	// EvChaosFault: the fault injector acted on a frame; Detail names
	// the fault ("drop", "dup", "defer", "crash", "partition").
	EvChaosFault
	// EvSuspect: a link was declared suspect (close callback, send
	// failure, or heartbeat budget exhausted).
	EvSuspect
	// EvStaleRead: an offline read was served from the cache under
	// AllowStale, flagged ErrStale; V1 is the value's age in
	// milliseconds.
	EvStaleRead
	// EvOverload: admission control refused an attach or the shedder
	// evicted a session; Detail carries the reason ("full", "rate",
	// "shed"), V1 the retry-after hint in milliseconds.
	EvOverload
)

// String implements fmt.Stringer with stable names for the JSON tail.
func (t EventType) String() string {
	switch t {
	case EvAllocate:
		return "allocate"
	case EvDeallocate:
		return "deallocate"
	case EvReconnect:
		return "reconnect"
	case EvResync:
		return "resync"
	case EvHeartbeatMiss:
		return "heartbeat-miss"
	case EvSessionOpen:
		return "session-open"
	case EvSessionClose:
		return "session-close"
	case EvSessionExpire:
		return "session-expire"
	case EvChaosFault:
		return "chaos-fault"
	case EvSuspect:
		return "suspect"
	case EvStaleRead:
		return "stale-read"
	case EvOverload:
		return "overload"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// MarshalJSON renders the type as its stable string name.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// Event is one traced occurrence. Fields are plain values so recording
// never allocates: Key and Detail must be strings that already exist
// (keys, constant outcome names), never fmt-built on the hot path.
type Event struct {
	// Seq is the tracer-wide monotonic sequence number, starting at 1.
	// Gaps in a tail reveal how many events the ring evicted.
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the wall-clock timestamp.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Type discriminates the event.
	Type EventType `json:"type"`
	// Key is the data item involved, when one is ("" otherwise).
	Key string `json:"key,omitempty"`
	// Detail is a short constant tag refining the type (an outcome, a
	// fault name, a cause).
	Detail string `json:"detail,omitempty"`
	// V1, V2 carry type-specific numbers (counts, versions, attempts).
	V1 int64 `json:"v1,omitempty"`
	V2 int64 `json:"v2,omitempty"`
}

// Tracer is a bounded ring buffer of typed events. Record is cheap (one
// short mutex hold, no allocation) and safe from any goroutine; when the
// ring is full the oldest event is overwritten, so the tracer holds the
// most recent window of activity — exactly what a live debug endpoint
// wants after an incident.
type Tracer struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // events ever recorded; next event gets seq+1
	now func() time.Time
}

// NewTracer creates a tracer holding the last capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity), now: time.Now}
}

// SetClock overrides the tracer's time source, for deterministic tests.
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// Record appends one event. key and detail must be pre-existing strings
// (see Event); v1 and v2 are type-specific numbers. The ring buffer
// retains both strings, so a caller holding a borrowed string (one that
// aliases a transport frame, wire.DecodeBorrowed) must clone it first —
// Record stays allocation-free for the common owned-string case.
func (t *Tracer) Record(typ EventType, key, detail string, v1, v2 int64) {
	t.mu.Lock()
	ts := t.now().UnixNano()
	t.seq++
	t.buf[(t.seq-1)%uint64(len(t.buf))] = Event{
		Seq:          t.seq,
		TimeUnixNano: ts,
		Type:         typ,
		Key:          key,
		Detail:       detail,
		V1:           v1,
		V2:           v2,
	}
	t.mu.Unlock()
}

// Len returns the number of events currently held (≤ capacity).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq < uint64(len(t.buf)) {
		return int(t.seq)
	}
	return len(t.buf)
}

// Recorded returns the total number of events ever recorded, including
// those the ring has evicted.
func (t *Tracer) Recorded() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Tail returns copies of the most recent n events, oldest first. n ≤ 0
// or n beyond the retained window returns everything retained.
func (t *Tracer) Tail(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	held := uint64(len(t.buf))
	if t.seq < held {
		held = t.seq
	}
	if n <= 0 || uint64(n) > held {
		n = int(held)
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		seq := t.seq - uint64(n) + uint64(i) + 1
		out[i] = t.buf[(seq-1)%uint64(len(t.buf))]
	}
	return out
}
