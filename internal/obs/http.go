package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler mounts the debug surface:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /healthz        JSON liveness: {"status":"ok","uptime_seconds":...}
//	GET /events?n=N     JSON tail of the last N traced events (default 100)
//	GET /debug/pprof/*  the standard net/http/pprof profiles
//
// The handler is read-only and safe to serve concurrently with any
// amount of metric and trace recording.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WriteTo(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
			"events":         tr.Recorded(),
		})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n=%q: want a non-negative integer", q),
					http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr.Tail(n))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves Handler(reg, tr) in a
// background goroutine. It returns the bound address — so callers can
// print it and scripts can scrape it when the port was 0 — and a
// shutdown function that closes the listener.
func Serve(addr string, reg *Registry, tr *Tracer) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg, tr)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
