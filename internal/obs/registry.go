package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; registry-created counters are shared by name.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; negative deltas are a programming
// error and the API makes them unrepresentable.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (sessions open, queue
// depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into a fixed bucket layout chosen at
// construction. Observe is lock-free and allocation-free: one atomic add
// on the bucket, one on the count, and a CAS loop folding the value into
// the float64 sum.
type Histogram struct {
	// bounds are the inclusive upper bounds of the buckets, ascending;
	// an implicit +Inf bucket catches the rest. Immutable after New.
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, accumulated by CAS
}

// NewHistogram builds a standalone histogram with the given ascending
// upper bounds. Registry users call Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket layouts are small (≤ ~20) and the branch
	// predictor eats this; a binary search buys nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns a consistent-enough copy (each cell individually
// atomic; cross-cell skew is bounded by in-flight Observes).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	// Read the total first: concurrent Observes bump buckets before the
	// total, so Count ≤ sum(Counts) and cumulative emission stays sane.
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the upper bounds; Counts has one extra slot for +Inf.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// DurationBuckets is the shared latency layout, in seconds: 1µs to ~16s
// in powers of four. Fixed so dashboards can compare any two series.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16,
}

// SizeBuckets is the shared byte-size layout: 64B to 16MB in powers of
// four (the transport's frame limit is 16MB).
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// metric is the registry's slot: exactly one of the three is non-nil.
type metric struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration (Counter/Gauge/Histogram) is idempotent
// by full series name and safe for concurrent use; the returned handles
// are the hot-path API and never touch the registry again.
//
// Series names follow Prometheus conventions and may carry a fixed label
// set inline: `mobirep_replica_reads_total{result="local"}`. Labelled
// series of one base name share a single HELP/TYPE header on exposition.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
	help    map[string]string // keyed by base name (name up to '{')
}

// New creates an empty registry. Most code uses Default.
func New() *Registry {
	return &Registry{
		metrics: make(map[string]metric),
		help:    make(map[string]string),
	}
}

// baseName strips the inline label set: `a_total{x="y"}` → `a_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// checkName rejects series names Prometheus would refuse to scrape.
// Registration happens at package init, so a panic here fails fast and
// loudly instead of corrupting the exposition.
func checkName(name string) {
	base := baseName(name)
	if base == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
	if len(base) != len(name) {
		labels := name[len(base):]
		if !strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}") {
			panic(fmt.Sprintf("obs: malformed label set in %q", name))
		}
	}
}

// Counter returns the counter registered under name, creating it if
// needed. help is recorded for the base name on first registration.
func (r *Registry) Counter(name, help string) *Counter {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.counter == nil {
			panic(fmt.Sprintf("obs: %q already registered as a different type", name))
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = metric{counter: c}
	r.setHelpLocked(name, help)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.gauge == nil {
			panic(fmt.Sprintf("obs: %q already registered as a different type", name))
		}
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = metric{gauge: g}
	r.setHelpLocked(name, help)
	return g
}

// Histogram returns the histogram registered under name with the given
// fixed bucket bounds, creating it if needed. Re-registration must use
// the same layout.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.hist == nil {
			panic(fmt.Sprintf("obs: %q already registered as a different type", name))
		}
		if len(m.hist.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: %q re-registered with a different bucket layout", name))
		}
		return m.hist
	}
	h := NewHistogram(bounds)
	r.metrics[name] = metric{hist: h}
	r.setHelpLocked(name, help)
	return h
}

func (r *Registry) setHelpLocked(name, help string) {
	base := baseName(name)
	if _, ok := r.help[base]; !ok && help != "" {
		r.help[base] = help
	}
}

// Snapshot is a point-in-time copy of every registered series, for tests
// and programmatic consumers. Counters and gauges are exact per cell;
// consistency across cells is bounded by in-flight writers.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns the snapshotted counter value, zero when absent — so
// delta arithmetic works before the first registration.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the snapshotted gauge value, zero when absent.
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot copies every series out of the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, m := range r.metrics {
		switch {
		case m.counter != nil:
			s.Counters[name] = m.counter.Load()
		case m.gauge != nil:
			s.Gauges[name] = m.gauge.Load()
		case m.hist != nil:
			s.Histograms[name] = m.hist.snapshot()
		}
	}
	return s
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): series sorted by name, one HELP/TYPE header per base
// name, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	// Copy out handles so rendering does not hold the lock.
	series := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		series[name] = m
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	sort.Strings(names)
	var b strings.Builder
	seenBase := make(map[string]bool)
	for _, name := range names {
		m := series[name]
		base := baseName(name)
		if !seenBase[base] {
			seenBase[base] = true
			if h := help[base]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, strings.ReplaceAll(h, "\n", " "))
			}
			typ := "counter"
			switch {
			case m.gauge != nil:
				typ = "gauge"
			case m.hist != nil:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		}
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", name, m.counter.Load())
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %d\n", name, m.gauge.Load())
		case m.hist != nil:
			writeHistogram(&b, name, m.hist.snapshot())
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHistogram emits one histogram's cumulative bucket series.
func writeHistogram(b *strings.Builder, name string, s HistogramSnapshot) {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i+1:len(name)-1]+","
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum)
	}
	tail := ""
	if labels != "" {
		tail = "{" + labels[:len(labels)-1] + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", base, tail, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", base, tail, cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
