// Package obs is the repository's observability subsystem: a
// dependency-free metrics registry and a bounded event tracer, exposed
// over a debug HTTP listener by the mobirep binaries.
//
// The paper's whole argument is cost accounting — expected data and
// control message cost per allocation method — so first-class runtime
// counters are a faithful extension of it: the same quantities the
// analysis prices per request become live series a scrape can watch on a
// running MC/SC pair (reconnect storms, window flips, resync traffic).
//
// Design constraints, in order:
//
//   - Allocation-free on the record path. Counter.Add, Gauge.Set,
//     Histogram.Observe and Tracer.Record perform no heap allocation, so
//     the PR 1 zero-alloc replay-kernel guarantees survive
//     instrumentation (bench_test.go's TestFusedKernelZeroAllocs and
//     TestObsRecordPathZeroAllocs pin this).
//   - Handles, not lookups. Instrumented code holds *Counter pointers
//     obtained once at package init; the hot path never touches the
//     registry map or any lock.
//   - No dependencies. The Prometheus text exposition format is simple
//     enough to write by hand; pulling a client library would drag in
//     protobuf for nothing.
//
// Layout:
//
//   - registry.go: Counter, Gauge, Histogram, Registry, Snapshot, and
//     the Prometheus-text WriteTo.
//   - trace.go: typed ring-buffer event tracer (allocation flips,
//     reconnect attempts, resync outcomes, chaos faults, heartbeat
//     misses), each event carrying a monotonic sequence number and a
//     wall-clock timestamp.
//   - http.go: the debug handler serving /metrics, /healthz, /events?n=
//     and net/http/pprof, mounted by the -debug-addr flag of
//     mobirep-server and mobirep-client.
//
// Instrumented packages (replica, transport, sim) register against the
// process-wide Default registry and tracer below; tests that need
// isolation construct their own with New and NewTracer.
package obs

var (
	defaultRegistry = New()
	defaultTracer   = NewTracer(DefaultTraceCapacity)
)

// DefaultTraceCapacity is the ring size of the default tracer: large
// enough to hold a reconnect storm's worth of events, small enough that
// the ring is a fixed few hundred KB.
const DefaultTraceCapacity = 4096

// Default returns the process-wide registry that the instrumented
// packages (replica, transport, sim) register their series in and that
// the binaries' -debug-addr listener serves.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide event tracer feeding the
// /events debug endpoint.
func DefaultTracer() *Tracer { return defaultTracer }
