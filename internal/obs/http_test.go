package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestHandler() (http.Handler, *Registry, *Tracer) {
	reg := New()
	tr := NewTracer(32)
	return Handler(reg, tr), reg, tr
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h, reg, _ := newTestHandler()
	reg.Counter("ep_reads_total", "reads").Add(9)
	res, body := get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE ep_reads_total counter") ||
		!strings.Contains(body, "ep_reads_total 9") {
		t.Fatalf("exposition missing series:\n%s", body)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	h, _, tr := newTestHandler()
	tr.Record(EvSessionOpen, "", "", 0, 0)
	res, body := get(t, h, "/healthz")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var payload struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
		Events uint64  `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if payload.Status != "ok" || payload.Uptime < 0 || payload.Events != 1 {
		t.Fatalf("healthz payload = %+v", payload)
	}
}

// TestEventsEndpoint is the /events contract: the last N typed events,
// oldest first, as JSON with stable type names.
func TestEventsEndpoint(t *testing.T) {
	h, _, tr := newTestHandler()
	for i := int64(1); i <= 5; i++ {
		tr.Record(EvReconnect, "", "ok", i, 0)
	}
	tr.Record(EvChaosFault, "x", "drop", 0, 0)

	res, body := get(t, h, "/events?n=3")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var events []struct {
		Seq    uint64 `json:"seq"`
		Time   int64  `json:"time_unix_nano"`
		Type   string `json:"type"`
		Key    string `json:"key"`
		Detail string `json:"detail"`
		V1     int64  `json:"v1"`
	}
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("events is not JSON: %v\n%s", err, body)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Type != "reconnect" || events[0].V1 != 4 {
		t.Fatalf("events[0] = %+v, want reconnect v1=4", events[0])
	}
	last := events[2]
	if last.Type != "chaos-fault" || last.Key != "x" || last.Detail != "drop" {
		t.Fatalf("events[2] = %+v, want the chaos fault", last)
	}
	if last.Seq != 6 || last.Time == 0 {
		t.Fatalf("events[2] seq/time = %d/%d", last.Seq, last.Time)
	}

	// Default n and the whole retained window.
	if _, body := get(t, h, "/events"); !strings.Contains(body, `"seq": 1`) {
		t.Fatalf("default tail should include the oldest retained event:\n%s", body)
	}
	if res, _ := get(t, h, "/events?n=bogus"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d, want 400", res.StatusCode)
	}
}

func TestPprofMounted(t *testing.T) {
	h, _, _ := newTestHandler()
	res, body := get(t, h, "/debug/pprof/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", res.StatusCode)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := New()
	reg.Counter("serve_up", "").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", reg, NewTracer(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "serve_up 1") {
		t.Fatalf("served metrics missing series:\n%s", body)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still serving after shutdown")
	}
}
