package sim

import (
	"math"
	"strings"
	"testing"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

func swFactory(k int) Factory { return func() core.Policy { return core.NewSW(k) } }

func TestReplayCountsAndCost(t *testing.T) {
	p := core.NewSW(1)
	m := cost.NewConnection()
	// Starts without a copy; (r w r w): r=1 (alloc), w=1 (dealloc), ...
	res := Replay(p, m, sched.MustParse("rwrw"), 0)
	if res.Ops != 4 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Cost != 4 {
		t.Fatalf("cost = %v", res.Cost)
	}
	if res.Allocations != 2 || res.Deallocations != 2 {
		t.Fatalf("alloc/dealloc = %d/%d", res.Allocations, res.Deallocations)
	}
	if res.CopySteps != 2 {
		t.Fatalf("copySteps = %d", res.CopySteps)
	}
	if res.PerOp() != 1 {
		t.Fatalf("perOp = %v", res.PerOp())
	}
	if res.CopyFraction() != 0.5 {
		t.Fatalf("copyFraction = %v", res.CopyFraction())
	}
}

func TestReplayWarmupExcluded(t *testing.T) {
	p := core.NewSW(1)
	m := cost.NewConnection()
	res := Replay(p, m, sched.MustParse("rwrw"), 2)
	if res.Ops != 2 || res.Cost != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestReplayEmpty(t *testing.T) {
	res := Replay(core.NewST1(), cost.NewConnection(), nil, 0)
	if res.Ops != 0 || res.PerOp() != 0 || res.CopyFraction() != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEstimateExpectedDeterministicInSeed(t *testing.T) {
	m := cost.NewConnection()
	opts := ExpectedOpts{Theta: 0.3, Ops: 5000, Trials: 4, Seed: 42}
	a := EstimateExpected(swFactory(3), m, opts)
	b := EstimateExpected(swFactory(3), m, opts)
	if a.Mean() != b.Mean() {
		t.Fatalf("same seed gave %v vs %v", a.Mean(), b.Mean())
	}
	opts.Seed = 43
	c := EstimateExpected(swFactory(3), m, opts)
	if a.Mean() == c.Mean() {
		t.Fatal("different seeds gave identical estimates")
	}
}

// TestEstimateExpectedMatchesTheoryConn is the simulator's core
// validation: measured per-request cost matches Theorem 1 within the
// confidence interval.
func TestEstimateExpectedMatchesTheoryConn(t *testing.T) {
	m := cost.NewConnection()
	for _, k := range []int{1, 3, 9} {
		for _, theta := range []float64{0.2, 0.5, 0.8} {
			sum := EstimateExpected(swFactory(k), m, ExpectedOpts{
				Theta: theta, Ops: 50000, Trials: 6, Seed: 7,
			})
			want := analytic.ExpSWConn(k, theta)
			if d := math.Abs(sum.Mean() - want); d > 3*sum.CI95()+0.003 {
				t.Fatalf("k=%d theta=%v: measured %v vs theory %v", k, theta, sum.Mean(), want)
			}
		}
	}
}

// TestEstimateExpectedMatchesTheoryMsg validates the message model,
// including the SW1 special case and the equation 11 deallocation term.
func TestEstimateExpectedMatchesTheoryMsg(t *testing.T) {
	const omega = 0.6
	m := cost.NewMessage(omega)
	for _, k := range []int{1, 3, 9} {
		for _, theta := range []float64{0.3, 0.5, 0.7} {
			sum := EstimateExpected(swFactory(k), m, ExpectedOpts{
				Theta: theta, Ops: 50000, Trials: 6, Seed: 11,
			})
			want := analytic.ExpSWMsg(k, theta, omega)
			if d := math.Abs(sum.Mean() - want); d > 3*sum.CI95()+0.003 {
				t.Fatalf("k=%d theta=%v: measured %v vs theory %v", k, theta, sum.Mean(), want)
			}
		}
	}
}

// TestEstimateExpectedStatics checks the trivial formulas for statics and
// the T-family oracle values.
func TestEstimateExpectedStatics(t *testing.T) {
	m := cost.NewMessage(0.4)
	theta := 0.35
	st1 := EstimateExpected(func() core.Policy { return core.NewST1() }, m,
		ExpectedOpts{Theta: theta, Ops: 30000, Trials: 4, Seed: 3})
	if d := math.Abs(st1.Mean() - analytic.ExpST1Msg(theta, 0.4)); d > 0.01 {
		t.Fatalf("ST1 measured %v", st1.Mean())
	}
	t1 := EstimateExpected(func() core.Policy { return core.NewT1(4) }, m,
		ExpectedOpts{Theta: theta, Ops: 30000, Trials: 4, Seed: 3})
	if d := math.Abs(t1.Mean() - analytic.ExactT1Expected(4, theta, m)); d > 0.01 {
		t.Fatalf("T1 measured %v vs oracle %v", t1.Mean(), analytic.ExactT1Expected(4, theta, m))
	}
	t2 := EstimateExpected(func() core.Policy { return core.NewT2(4) }, m,
		ExpectedOpts{Theta: theta, Ops: 30000, Trials: 4, Seed: 3})
	if d := math.Abs(t2.Mean() - analytic.ExactT2Expected(4, theta, m)); d > 0.01 {
		t.Fatalf("T2 measured %v vs oracle %v", t2.Mean(), analytic.ExactT2Expected(4, theta, m))
	}
}

// TestCopyFractionMatchesPiK: the empirical steady-state copy probability
// must match equation 4.
func TestCopyFractionMatchesPiK(t *testing.T) {
	m := cost.NewConnection()
	k, theta := 7, 0.4
	rngSeeds := []uint64{1, 2, 3}
	for _, seed := range rngSeeds {
		opts := ExpectedOpts{Theta: theta, Ops: 100000, Trials: 1, Seed: seed}
		opts.fill()
		// Use Replay directly to reach the copy fraction.
		p := core.NewSW(k)
		rngSched := bernoulli(seed, theta, opts.Warmup+opts.Ops)
		res := Replay(p, m, rngSched, opts.Warmup)
		if d := math.Abs(res.CopyFraction() - analytic.PiK(k, theta)); d > 0.01 {
			t.Fatalf("seed %d: copy fraction %v vs pi_k %v", seed, res.CopyFraction(), analytic.PiK(k, theta))
		}
	}
}

// TestEstimateAverageMatchesTheory validates the drifting-theta estimator
// against the AVG closed forms in both models.
func TestEstimateAverageMatchesTheory(t *testing.T) {
	conn := cost.NewConnection()
	opts := AverageOpts{Periods: 300, OpsPerPeriod: 400, Trials: 4, Seed: 5}
	for _, k := range []int{1, 5, 15} {
		got := EstimateAverage(swFactory(k), conn, opts)
		want := analytic.AvgSWConn(k)
		if d := math.Abs(got.Mean() - want); d > 0.01 {
			t.Fatalf("conn k=%d: measured %v vs theory %v", k, got.Mean(), want)
		}
	}
	msg := cost.NewMessage(0.8)
	for _, k := range []int{1, 7} {
		got := EstimateAverage(swFactory(k), msg, opts)
		want := analytic.AvgSWMsg(k, 0.8)
		if d := math.Abs(got.Mean() - want); d > 0.015 {
			t.Fatalf("msg k=%d: measured %v vs theory %v", k, got.Mean(), want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]string{
		"ST1": "ST1", "ST2": "ST2", "SW1": "SW1", "SW15": "SW15",
		"T1(3)": "T1(3)", "T13": "T1(3)", "T2(7)": "T2(7)", "T27": "T2(7)",
		"CacheInv": "CacheInv", "EWMA(0.25)": "EWMA(0.25)", "SWe4": "SWe4",
	}
	for in, want := range cases {
		f, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := f().Name(); got != want {
			t.Fatalf("%q parsed to %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "SW4", "SW0", "SW-3", "T10", "XX", "SW5x", "sw5",
		"SWe3", "SWe0", "EWMA(0)", "EWMA(2)", "cacheinv"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

// TestParsePolicyRejectionMessages pins each rejection family to its
// diagnostic, so the CLI's error text names the actual constraint rather
// than falling through to "unknown policy".
func TestParsePolicyRejectionMessages(t *testing.T) {
	cases := map[string]string{
		// Even (and non-positive) sliding windows.
		"SW2":   "must be odd and positive",
		"SW100": "must be odd and positive",
		"SW0":   "must be odd and positive",
		// The even-window ablation is the dual: it rejects odd sizes.
		"SWe7": "must be even and positive",
		"SWe0": "must be even and positive",
		// Trailing garbage must not silently truncate to a valid name.
		"SW5x":      "unknown policy",
		"SW5 ":      "unknown policy",
		"SWe4x":     "unknown policy",
		"T1(3)x":    "unknown policy",
		"EWMA(0.5x": "unknown policy",
		// EWMA alpha must lie in (0, 1].
		"EWMA(0)":    "must be in (0,1]",
		"EWMA(-0.5)": "must be in (0,1]",
		"EWMA(1.5)":  "must be in (0,1]",
		// Thresholds must be positive.
		"T1(0)":  "must be positive",
		"T1(-2)": "must be positive",
		"T2(0)":  "must be positive",
	}
	for in, want := range cases {
		_, err := ParsePolicy(in)
		if err == nil {
			t.Fatalf("%q: expected error containing %q", in, want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: error %q does not mention %q", in, err, want)
		}
	}
	// Boundary acceptance: alpha exactly 1 is legal.
	f, err := ParsePolicy("EWMA(1)")
	if err != nil {
		t.Fatalf("EWMA(1): %v", err)
	}
	if got := f().Name(); got != "EWMA(1.00)" {
		t.Fatalf("EWMA(1) parsed to %q", got)
	}
}

// bernoulli is a tiny local copy to avoid importing workload in a way that
// hides what the test does.
func bernoulli(seed uint64, theta float64, n int) sched.Schedule {
	r := stats.NewRNG(seed)
	s := make(sched.Schedule, n)
	for i := range s {
		if r.Bernoulli(theta) {
			s[i] = sched.Write
		}
	}
	return s
}
