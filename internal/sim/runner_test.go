package sim

import (
	"sync/atomic"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
)

// TestFanCoversAllIndicesOnce checks the basic contract at several widths.
func TestFanCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		prev := SetMaxWorkers(workers)
		for _, n := range []int{0, 1, 7, 100} {
			counts := make([]int32, n)
			Fan(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
		SetMaxWorkers(prev)
	}
}

// TestFanNestedDoesNotDeadlock runs fans inside fans wide enough to
// saturate the pool; the caller-participates design must keep making
// progress.
func TestFanNestedDoesNotDeadlock(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	var total atomic.Int64
	Fan(16, func(i int) {
		Fan(16, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 256 {
		t.Fatalf("nested fan ran %d inner cells, want 256", got)
	}
}

// TestFanPropagatesPanic: a panicking cell must surface in the caller, and
// the remaining cells must still run.
func TestFanPropagatesPanic(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	var ran atomic.Int64
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		if got := ran.Load(); got != 7 {
			t.Fatalf("%d healthy cells ran, want 7", got)
		}
	}()
	Fan(8, func(i int) {
		if i == 3 {
			panic("boom")
		}
		ran.Add(1)
	})
	t.Fatal("Fan returned instead of panicking")
}

// TestSetMaxWorkersClampsAndRestores documents the knob's semantics.
func TestSetMaxWorkersClampsAndRestores(t *testing.T) {
	orig := MaxWorkers()
	prev := SetMaxWorkers(-5)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers after SetMaxWorkers(-5) = %d, want 1", MaxWorkers())
	}
	if got := SetMaxWorkers(prev); got != 1 {
		t.Fatalf("SetMaxWorkers returned %d, want 1", got)
	}
	if MaxWorkers() != orig {
		t.Fatalf("MaxWorkers not restored: %d != %d", MaxWorkers(), orig)
	}
}

// TestEstimatorsIdenticalAcrossParallelism is the engine-level determinism
// proof: the same estimate at workers=1 and workers=8 must agree to the
// last bit, because trials write to per-index slots and fold in order.
func TestEstimatorsIdenticalAcrossParallelism(t *testing.T) {
	m := cost.NewMessage(0.5)
	eopts := ExpectedOpts{Theta: 0.4, Ops: 20000, Trials: 8, Seed: 123}
	aopts := AverageOpts{Periods: 60, OpsPerPeriod: 300, Trials: 8, Seed: 321}

	prev := SetMaxWorkers(1)
	seqE := EstimateExpected(swFactory(9), m, eopts)
	seqA := EstimateAverage(func() core.Policy { return core.NewT1(5) }, m, aopts)
	SetMaxWorkers(8)
	parE := EstimateExpected(swFactory(9), m, eopts)
	parA := EstimateAverage(func() core.Policy { return core.NewT1(5) }, m, aopts)
	SetMaxWorkers(prev)

	if seqE.Mean() != parE.Mean() || seqE.CI95() != parE.CI95() {
		t.Fatalf("EstimateExpected differs across parallelism: %v vs %v", seqE, parE)
	}
	if seqA.Mean() != parA.Mean() || seqA.CI95() != parA.CI95() {
		t.Fatalf("EstimateAverage differs across parallelism: %v vs %v", seqA, parA)
	}
}
