package sim

import (
	"math"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
	"mobirep/internal/workload"
)

func factories(names ...string) []Factory {
	out := make([]Factory, len(names))
	for i, n := range names {
		f, err := ParsePolicy(n)
		if err != nil {
			panic(err)
		}
		out[i] = f
	}
	return out
}

func TestCompareRanksByCost(t *testing.T) {
	// Read-heavy schedule: ST2 should win over ST1 decisively.
	rng := stats.NewRNG(3)
	s := workload.Bernoulli(rng, 0.1, 20000)
	cmp := Compare(factories("ST1", "ST2", "SW9"), cost.NewConnection(), s)
	if cmp.Best().Name == "ST1" {
		t.Fatalf("ST1 won a read-heavy trace: %+v", cmp.Ranked)
	}
	prev := -1.0
	for _, r := range cmp.Ranked {
		if r.Cost < prev {
			t.Fatalf("ranking not sorted: %+v", cmp.Ranked)
		}
		prev = r.Cost
		if r.VsOptimal < 1-1e-9 {
			t.Fatalf("%s beat the offline optimum: %+v", r.Name, r)
		}
	}
	if cmp.OptimalCost <= 0 {
		t.Fatal("optimal cost should be positive on a mixed trace")
	}
}

func TestCompareZeroCostSchedules(t *testing.T) {
	// All-writes: ST1 and the write-initialized windows cost 0, ST2 costs
	// everything; ratios must use the conventions (1 for 0/0, Inf for
	// positive/0).
	s := sched.Block(sched.Write, 100)
	cmp := Compare(factories("ST1", "ST2"), cost.NewConnection(), s)
	if cmp.OptimalCost != 0 {
		t.Fatalf("optimal = %v", cmp.OptimalCost)
	}
	if cmp.Best().Name != "ST1" || cmp.Best().VsOptimal != 1 {
		t.Fatalf("best = %+v", cmp.Best())
	}
	if !math.IsInf(cmp.Ranked[1].VsOptimal, 1) {
		t.Fatalf("ST2 ratio = %v", cmp.Ranked[1].VsOptimal)
	}
}

func TestBestWindowPrefersLargeKOnStableTrace(t *testing.T) {
	// theta far from 1/2 and stable: bigger windows flip less, cost less.
	rng := stats.NewRNG(5)
	s := workload.Bernoulli(rng, 0.25, 50000)
	k, c := BestWindow([]int{1, 3, 9, 31}, cost.NewConnection(), s)
	if k != 31 {
		t.Fatalf("best k = %d (cost %v), want 31 on a stable trace", k, c)
	}
	// Sanity: the reported cost matches a direct replay.
	direct := Replay(core.NewSW(31), cost.NewConnection(), s, 0).Cost
	if math.Abs(direct-c) > 1e-9 {
		t.Fatalf("cost %v vs direct %v", c, direct)
	}
}

func TestBestWindowSkipsInvalidK(t *testing.T) {
	rng := stats.NewRNG(6)
	s := workload.Bernoulli(rng, 0.5, 1000)
	k, _ := BestWindow([]int{4, 6}, cost.NewConnection(), s) // all invalid
	if k != 0 {
		t.Fatalf("k = %d, want 0 when no valid candidate", k)
	}
	k, _ = BestWindow([]int{4, 5}, cost.NewConnection(), s)
	if k != 5 {
		t.Fatalf("k = %d, want the only valid candidate", k)
	}
}
