package sim

import (
	"fmt"
	"math"
	"sort"

	"mobirep/internal/cost"
	"mobirep/internal/offline"
	"mobirep/internal/sched"
)

// Hindsight comparison: given a recorded schedule (a real trace or a
// synthetic day), rank candidate policies by what they would have cost and
// anchor them against the offline optimum. The stockticker example and
// the mobirep-trace cost subcommand are thin wrappers over this.

// Ranked is one policy's hindsight result.
type Ranked struct {
	// Name is the policy name.
	Name string
	// Cost is the policy's total cost on the schedule.
	Cost float64
	// VsOptimal is Cost divided by the ideal offline cost (Inf if the
	// offline cost is zero and Cost is not; 1 if both are zero).
	VsOptimal float64
}

// Comparison is the full hindsight report for one schedule.
type Comparison struct {
	// OptimalCost is the ideal offline algorithm's cost.
	OptimalCost float64
	// Ranked lists the candidates, cheapest first.
	Ranked []Ranked
}

// Best returns the cheapest candidate.
func (c Comparison) Best() Ranked {
	return c.Ranked[0]
}

// Compare replays the schedule through every candidate under the model
// and returns them ranked by cost. Factories are used so each candidate
// starts fresh; candidate order breaks cost ties.
func Compare(candidates []Factory, m cost.Model, s sched.Schedule) Comparison {
	opt := offline.Cost(s, offline.Ideal())
	out := Comparison{OptimalCost: opt}
	for _, f := range candidates {
		p := f()
		res := Replay(p, m, s, 0)
		r := Ranked{Name: p.Name(), Cost: res.Cost}
		switch {
		case opt > 0:
			r.VsOptimal = res.Cost / opt
		case res.Cost == 0:
			r.VsOptimal = 1
		default:
			r.VsOptimal = math.Inf(1)
		}
		out.Ranked = append(out.Ranked, r)
	}
	sort.SliceStable(out.Ranked, func(i, j int) bool {
		return out.Ranked[i].Cost < out.Ranked[j].Cost
	})
	return out
}

// BestWindow returns the window size among ks minimizing the schedule's
// cost in hindsight, with the winning cost. It is the tuning oracle for
// window-size experiments: "which k should I have used for this trace?"
func BestWindow(ks []int, m cost.Model, s sched.Schedule) (int, float64) {
	bestK, bestCost := 0, math.Inf(1)
	for _, k := range ks {
		f, err := ParsePolicy(fmt.Sprintf("SW%d", k))
		if err != nil {
			continue
		}
		if c := Replay(f(), m, s, 0).Cost; c < bestCost {
			bestK, bestCost = k, c
		}
	}
	return bestK, bestCost
}
