package sim

import (
	"fmt"
	"testing"
	"time"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
	"mobirep/internal/workload"
)

// kernelModels are the two paper models the fused kernels support.
func kernelModels() []cost.Model {
	return []cost.Model{cost.NewConnection(), cost.NewMessage(0.0), cost.NewMessage(0.37), cost.NewMessage(1.0)}
}

// kernelPolicies pairs each fusable policy with its factory.
func kernelPolicies() []Factory {
	return []Factory{
		func() core.Policy { return core.NewST1() },
		func() core.Policy { return core.NewST2() },
		func() core.Policy { return core.NewSW(1) },
		func() core.Policy { return core.NewSW(3) },
		func() core.Policy { return core.NewSW(9) },
		func() core.Policy { return core.NewSW(95) },
	}
}

// TestKernelEquivalenceBernoulli is the guard the fused path ships under:
// on the same seed the kernel's Result must equal the generic Replay's on
// the materialized schedule, field for field, including the bit pattern of
// the float totals.
func TestKernelEquivalenceBernoulli(t *testing.T) {
	const seed, n, warmup = 77, 20000, 500
	for _, m := range kernelModels() {
		for _, f := range kernelPolicies() {
			p := f()
			name := fmt.Sprintf("%s/%s", p.Name(), m.Name())
			kn, ok := NewKernel(f(), m)
			if !ok {
				t.Fatalf("%s: no fused kernel", name)
			}
			for _, theta := range []float64{0, 0.2, 0.5, 0.8, 1} {
				s := workload.Bernoulli(stats.NewRNG(seed), theta, n)
				want := Replay(f(), m, s, warmup)
				got := kn.ReplayBernoulli(stats.NewRNG(seed), theta, n, warmup)
				if got != want {
					t.Fatalf("%s theta=%v:\nfused   %+v\ngeneric %+v", name, theta, got, want)
				}
			}
		}
	}
}

// TestKernelEquivalenceDrifting repeats the guard under the period model.
func TestKernelEquivalenceDrifting(t *testing.T) {
	const seed, periods, opsPerPeriod = 41, 50, 300
	for _, m := range kernelModels() {
		for _, f := range kernelPolicies() {
			p := f()
			name := fmt.Sprintf("%s/%s", p.Name(), m.Name())
			kn, ok := NewKernel(f(), m)
			if !ok {
				t.Fatalf("%s: no fused kernel", name)
			}
			s, _ := workload.Drifting(stats.NewRNG(seed), periods, opsPerPeriod)
			want := Replay(f(), m, s, 0)
			got := kn.ReplayDrifting(stats.NewRNG(seed), periods, opsPerPeriod)
			if got != want {
				t.Fatalf("%s:\nfused   %+v\ngeneric %+v", name, got, want)
			}
		}
	}
}

// TestKernelRejectsUnknown pins the fallback: non-fusable policies and
// models must keep the generic path.
func TestKernelRejectsUnknown(t *testing.T) {
	if _, ok := NewKernel(core.NewT1(3), cost.NewConnection()); ok {
		t.Fatal("T1 must not get a fused kernel")
	}
	if _, ok := NewKernel(core.NewEWMA(0.5), cost.NewMessage(0.5)); ok {
		t.Fatal("EWMA must not get a fused kernel")
	}
	// Non-default initial window: fused kernels assume the all-writes fill.
	if _, ok := NewKernel(core.NewSWInitial(5, sched.Read), cost.NewConnection()); ok {
		t.Fatal("SW with all-reads initial window must not get a fused kernel")
	}
	type customModel struct{ cost.Connection }
	if _, ok := NewKernel(core.NewSW(3), customModel{}); ok {
		t.Fatal("custom cost model must not get a fused kernel")
	}
}

// TestStreamsMatchWorkload pins the contract that the streaming draws are
// bit-identical to the materializing generators at the same seed.
func TestStreamsMatchWorkload(t *testing.T) {
	const seed, n = 99, 5000
	want := workload.Bernoulli(stats.NewRNG(seed), 0.42, n)
	src := NewBernoulliStream(stats.NewRNG(seed), 0.42)
	for i, op := range want {
		if got := src.Next(); got != op {
			t.Fatalf("bernoulli stream diverges at %d: %v != %v", i, got, op)
		}
	}

	const periods, opsPerPeriod = 20, 250
	drifted, _ := workload.Drifting(stats.NewRNG(seed), periods, opsPerPeriod)
	dsrc := NewDriftingStream(stats.NewRNG(seed), opsPerPeriod)
	for i, op := range drifted {
		if got := dsrc.Next(); got != op {
			t.Fatalf("drifting stream diverges at %d: %v != %v", i, got, op)
		}
	}
}

// TestReplayStreamMatchesReplay checks the streaming generic path against
// the materializing one for a policy without a fused kernel.
func TestReplayStreamMatchesReplay(t *testing.T) {
	const seed, n, warmup = 13, 10000, 200
	m := cost.NewMessage(0.5)
	s := workload.Bernoulli(stats.NewRNG(seed), 0.6, n)
	want := Replay(core.NewT2(4), m, s, warmup)
	got := ReplayStream(core.NewT2(4), m, NewBernoulliStream(stats.NewRNG(seed), 0.6), n, warmup)
	if got != want {
		t.Fatalf("stream %+v != materialized %+v", got, want)
	}
}

// TestEstimatorsUnchangedByFusedPath pins the estimators' values against
// hand-rolled materialized replays: the fused/streaming rewrite must not
// move a single bit of the reported means.
func TestEstimatorsUnchangedByFusedPath(t *testing.T) {
	m := cost.NewMessage(0.8)
	opts := ExpectedOpts{Theta: 0.45, Ops: 8000, Warmup: 300, Trials: 5, Seed: 1994}
	got := EstimateExpected(swFactory(7), m, opts)
	var want stats.Summary
	for trial := 0; trial < opts.Trials; trial++ {
		rng := stats.NewRNG(opts.Seed + uint64(trial)*0x9e3779b9)
		s := workload.Bernoulli(rng, opts.Theta, opts.Warmup+opts.Ops)
		want.Add(Replay(core.NewSW(7), m, s, opts.Warmup).PerOp())
	}
	if got.Mean() != want.Mean() {
		t.Fatalf("EstimateExpected mean moved: %v != %v", got.Mean(), want.Mean())
	}

	aopts := AverageOpts{Periods: 40, OpsPerPeriod: 200, Trials: 5, Seed: 7}
	gotAvg := EstimateAverage(swFactory(3), m, aopts)
	var wantAvg stats.Summary
	for trial := 0; trial < aopts.Trials; trial++ {
		rng := stats.NewRNG(aopts.Seed + uint64(trial)*0x9e3779b9)
		s, _ := workload.Drifting(rng, aopts.Periods, aopts.OpsPerPeriod)
		wantAvg.Add(Replay(core.NewSW(3), m, s, 0).PerOp())
	}
	if gotAvg.Mean() != wantAvg.Mean() {
		t.Fatalf("EstimateAverage mean moved: %v != %v", gotAvg.Mean(), wantAvg.Mean())
	}
}

// TestSchedulePoolRoundTrip exercises the pooled buffers.
func TestSchedulePoolRoundTrip(t *testing.T) {
	s := GetSchedule(1024)
	if len(s) != 1024 {
		t.Fatalf("len = %d", len(s))
	}
	workload.FillBernoulli(stats.NewRNG(1), 0.5, s)
	PutSchedule(s)
	// A second Get of no larger size may reuse the buffer; contents must
	// be fully overwritten by FillBernoulli regardless.
	s2 := GetSchedule(512)
	workload.FillBernoulli(stats.NewRNG(2), 0, s2)
	for i, op := range s2 {
		if op != sched.Read {
			t.Fatalf("stale byte at %d after FillBernoulli(theta=0): %v", i, op)
		}
	}
	PutSchedule(s2)
	PutSchedule(nil) // must not panic
}

// BenchmarkRecordReplay prices the per-Replay instrumentation: two
// clock reads around the fused loop plus recordReplay's counter adds
// and one histogram observation. The acceptance budget is <5% of a
// Replay call; at ~100ns against the ~1.5ms a quick-mode Replay of
// 10^5 requests takes, the measured share is under 0.01%.
func BenchmarkRecordReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		recordReplay(kernelSW, 100_000, time.Since(start))
	}
}
