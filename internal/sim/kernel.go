package sim

// Fused replay kernels. The generic Replay/ReplayStream loop pays two
// interface dispatches per request (Policy.Apply and Model.StepCost) plus
// Step-struct traffic between them. For the hot policies of the paper's
// sweeps — the sliding-window family and the two statics — and the two
// paper cost models, the kernels below fuse policy transition, pricing and
// ledger bookkeeping into one monomorphic loop with zero allocations and
// zero dynamic dispatch per request.
//
// Correctness is pinned by TestKernelEquivalence: on identical schedules a
// kernel's Result must equal the generic Replay's field for field,
// including the float accumulation order of Ledger.Total (the kernels add
// the exact same float64 step costs in the exact same order, so totals are
// bit-identical, not merely close).

import (
	"time"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/stats"
)

// stepCosts are the four distinct per-request prices a fused policy can
// incur; they are precomputed once per kernel so the inner loop only adds.
// The values mirror cost.Connection.StepCost and cost.Message.StepCost.
type stepCosts struct {
	// readMiss prices a read with no copy at the MC.
	readMiss float64
	// writeKeep prices a write that finds a copy and leaves it in place.
	writeKeep float64
	// writeDealloc prices a write that finds a copy and deallocates it.
	writeDealloc float64
	// writeSuppressed prices SW1's delete-request-only write.
	writeSuppressed float64
}

// kernelCosts folds a cost model into stepCosts; ok is false for models
// the kernels do not know (custom models fall back to the generic path).
func kernelCosts(m cost.Model) (stepCosts, bool) {
	switch mm := m.(type) {
	case cost.Connection:
		return stepCosts{readMiss: 1, writeKeep: 1, writeDealloc: 1, writeSuppressed: 1}, true
	case cost.Message:
		return stepCosts{
			readMiss:        1 + mm.Omega,
			writeKeep:       1,
			writeDealloc:    1 + mm.Omega,
			writeSuppressed: mm.Omega,
		}, true
	}
	return stepCosts{}, false
}

type kernelKind uint8

const (
	kernelSW kernelKind = iota
	kernelST1
	kernelST2
)

// Kernel is a fused replay engine bound to one policy and one cost model.
// It owns its window state, so it is not safe for concurrent use; the
// estimators build one per trial (a single small allocation per trial,
// none per request). Replay methods Reset the kernel first, so a Kernel
// is reusable across trials.
type Kernel struct {
	kind  kernelKind
	costs stepCosts

	// Sliding-window state, mirroring core.Window with an all-writes
	// initial fill (the NewSW default).
	k       int
	bits    []bool
	head    int
	writes  int
	hasCopy bool
	// sw1 marks the k==1 delete-request optimization: a write that finds
	// a copy is priced as a bare control message.
	sw1 bool
}

// NewKernel returns a fused kernel replaying policy p under m, or ok=false
// when no fused path exists: the policy is not one of SW (with the default
// all-writes initial window), ST1 or ST2, or the model is not one of the
// paper's two. Callers keep the generic path in that case.
func NewKernel(p core.Policy, m cost.Model) (*Kernel, bool) {
	costs, ok := kernelCosts(m)
	if !ok {
		return nil, false
	}
	switch q := p.(type) {
	case *core.ST1:
		return &Kernel{kind: kernelST1, costs: costs}, true
	case *core.ST2:
		return &Kernel{kind: kernelST2, costs: costs}, true
	case *core.SW:
		// Only the default initial window (all writes, no copy) is fused;
		// NewSWInitial variants keep the generic path.
		if q.HasCopy() || q.Window().Writes() != q.K() {
			return nil, false
		}
		kn := &Kernel{
			kind:  kernelSW,
			costs: costs,
			k:     q.K(),
			bits:  make([]bool, q.K()),
			sw1:   q.K() == 1,
		}
		kn.Reset()
		return kn, true
	}
	return nil, false
}

// Reset restores the initial state: an all-writes window and no copy.
func (kn *Kernel) Reset() {
	for i := range kn.bits {
		kn.bits[i] = true
	}
	kn.head = 0
	kn.writes = kn.k
	kn.hasCopy = false
}

// ReplayBernoulli replays n i.i.d. Bernoulli(theta) requests drawn from
// rng, pricing all but the first warmup. It consumes rng exactly like
// workload.Bernoulli, so it reproduces Replay on that schedule bit for
// bit. The kernel is Reset first.
func (kn *Kernel) ReplayBernoulli(rng *stats.RNG, theta float64, n, warmup int) Result {
	kn.Reset()
	start := time.Now()
	var res Result
	switch kn.kind {
	case kernelST1:
		res = kn.replayST1(rng, theta, 0, n, warmup)
	case kernelST2:
		res = kn.replayST2(rng, theta, 0, n, warmup)
	default:
		res = kn.replaySW(rng, theta, 0, n, warmup)
	}
	recordReplay(kn.kind, res.Ops, time.Since(start))
	return res
}

// ReplayDrifting replays the section 3 period model — theta redrawn
// uniformly per period — consuming rng exactly like workload.Drifting.
// The kernel is Reset first.
func (kn *Kernel) ReplayDrifting(rng *stats.RNG, periods, opsPerPeriod int) Result {
	kn.Reset()
	n := periods * opsPerPeriod
	start := time.Now()
	var res Result
	switch kn.kind {
	case kernelST1:
		res = kn.replayST1(rng, 0, opsPerPeriod, n, 0)
	case kernelST2:
		res = kn.replayST2(rng, 0, opsPerPeriod, n, 0)
	default:
		res = kn.replaySW(rng, 0, opsPerPeriod, n, 0)
	}
	recordReplay(kn.kind, res.Ops, time.Since(start))
	return res
}

// replaySW is the fused inner loop for the sliding-window family. A
// drift period of 0 means fixed theta; otherwise theta is redrawn every
// drift requests, starting with the first.
func (kn *Kernel) replaySW(rng *stats.RNG, theta float64, drift, n, warmup int) Result {
	var res Result
	c := kn.costs
	left := 0
	for i := 0; i < n; i++ {
		if drift > 0 {
			if left == 0 {
				theta = rng.Float64()
				left = drift
			}
			left--
		}
		isWrite := rng.Bernoulli(theta)

		// Slide the window (core.Window.Push inlined).
		had := kn.hasCopy
		if kn.bits[kn.head] {
			kn.writes--
		}
		kn.bits[kn.head] = isWrite
		if isWrite {
			kn.writes++
		}
		kn.head++
		if kn.head == len(kn.bits) {
			kn.head = 0
		}
		has := kn.k-kn.writes > kn.writes
		kn.hasCopy = has

		if i < warmup {
			continue
		}
		res.Ops++
		res.Ledger.Steps++
		if had {
			res.CopySteps++
		}
		if has != had {
			if has {
				res.Allocations++
			} else {
				res.Deallocations++
			}
		}
		if isWrite {
			if had {
				res.Ledger.Connections++
				switch {
				case kn.sw1:
					// The delete-request optimization: no data message.
					res.Ledger.Total += c.writeSuppressed
					res.Ledger.ControlMessages++
				case !has:
					res.Ledger.Total += c.writeDealloc
					res.Ledger.DataMessages++
					res.Ledger.ControlMessages++
				default:
					res.Ledger.Total += c.writeKeep
					res.Ledger.DataMessages++
				}
			}
		} else if !had {
			res.Ledger.Total += c.readMiss
			res.Ledger.Connections++
			res.Ledger.ControlMessages++
			res.Ledger.DataMessages++
		}
	}
	res.Cost = res.Ledger.Total
	return res
}

// replayST1 is the fused loop for the static one-copy method: the MC
// never holds a copy, so only read misses cost anything.
func (kn *Kernel) replayST1(rng *stats.RNG, theta float64, drift, n, warmup int) Result {
	var res Result
	c := kn.costs
	left := 0
	for i := 0; i < n; i++ {
		if drift > 0 {
			if left == 0 {
				theta = rng.Float64()
				left = drift
			}
			left--
		}
		isWrite := rng.Bernoulli(theta)
		if i < warmup {
			continue
		}
		res.Ops++
		res.Ledger.Steps++
		if !isWrite {
			res.Ledger.Total += c.readMiss
			res.Ledger.Connections++
			res.Ledger.ControlMessages++
			res.Ledger.DataMessages++
		}
	}
	res.Cost = res.Ledger.Total
	return res
}

// replayST2 is the fused loop for the static two-copies method: every
// request finds a copy, reads are free, writes propagate.
func (kn *Kernel) replayST2(rng *stats.RNG, theta float64, drift, n, warmup int) Result {
	var res Result
	c := kn.costs
	left := 0
	for i := 0; i < n; i++ {
		if drift > 0 {
			if left == 0 {
				theta = rng.Float64()
				left = drift
			}
			left--
		}
		isWrite := rng.Bernoulli(theta)
		if i < warmup {
			continue
		}
		res.Ops++
		res.Ledger.Steps++
		res.CopySteps++
		if isWrite {
			res.Ledger.Total += c.writeKeep
			res.Ledger.Connections++
			res.Ledger.DataMessages++
		}
	}
	res.Cost = res.Ledger.Total
	return res
}
