// Package sim is the Monte-Carlo engine of the reproduction: it replays
// request schedules through allocation policies under a cost model and
// estimates the paper's three measures — expected cost per request at a
// fixed theta, average expected cost under the drifting-theta period
// model, and competitive ratios on given schedules.
//
// Policies are stateful, so every concurrent trial owns a fresh instance
// built from a Factory; results are deterministic functions of the seed.
package sim

import (
	"fmt"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// Factory builds a fresh policy instance for one trial.
type Factory func() core.Policy

// Result summarizes one schedule replay.
type Result struct {
	// Ops is the number of priced requests (after warmup).
	Ops int
	// Cost is the total communication cost of the priced requests.
	Cost float64
	// Ledger breaks the cost down by message kind.
	Ledger cost.Ledger
	// Allocations and Deallocations count copy transitions among the
	// priced requests.
	Allocations   int
	Deallocations int
	// CopySteps counts priced requests during which the MC held a copy
	// (before the request), the empirical pi_k.
	CopySteps int
}

// PerOp returns the average cost per priced request.
func (r Result) PerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return r.Cost / float64(r.Ops)
}

// CopyFraction returns the fraction of priced requests that began with a
// copy at the MC.
func (r Result) CopyFraction() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.CopySteps) / float64(r.Ops)
}

// Replay runs the schedule through p under m, ignoring the first warmup
// requests when accounting (they are still applied to the policy, so the
// window reaches steady state). It does not Reset the policy first.
func Replay(p core.Policy, m cost.Model, s sched.Schedule, warmup int) Result {
	var res Result
	for i, op := range s {
		st := p.Apply(op)
		if i < warmup {
			continue
		}
		res.Ops++
		res.Ledger.Observe(m, st)
		if st.HadCopy {
			res.CopySteps++
		}
		if st.Allocated() {
			res.Allocations++
		}
		if st.Deallocated() {
			res.Deallocations++
		}
	}
	res.Cost = res.Ledger.Total
	return res
}

// ExpectedOpts configures EstimateExpected.
type ExpectedOpts struct {
	// Theta is the write probability.
	Theta float64
	// Ops is the number of priced requests per trial.
	Ops int
	// Warmup is the number of unpriced leading requests per trial; it
	// defaults to 1000 when zero, enough to wash out any initial window.
	Warmup int
	// Trials is the number of independent replays; defaults to 8.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
}

func (o *ExpectedOpts) fill() {
	if o.Warmup == 0 {
		o.Warmup = 1000
	}
	if o.Trials == 0 {
		o.Trials = 8
	}
	if o.Ops == 0 {
		o.Ops = 100000
	}
}

// EstimateExpected estimates EXP(theta): the steady-state cost per request
// under i.i.d. Bernoulli(theta) requests. The returned summary is over
// per-trial means, so its CI95 bounds the estimate of the mean.
func EstimateExpected(f Factory, m cost.Model, opts ExpectedOpts) stats.Summary {
	opts.fill()
	_, fused := NewKernel(f(), m)
	results := parallelTrials(opts.Trials, func(trial int) float64 {
		rng := stats.NewRNG(opts.Seed + uint64(trial)*0x9e3779b9)
		n := opts.Warmup + opts.Ops
		if fused {
			kn, _ := NewKernel(f(), m)
			return kn.ReplayBernoulli(rng, opts.Theta, n, opts.Warmup).PerOp()
		}
		src := NewBernoulliStream(rng, opts.Theta)
		return ReplayStream(f(), m, src, n, opts.Warmup).PerOp()
	})
	var sum stats.Summary
	for _, v := range results {
		sum.Add(v)
	}
	return sum
}

// AverageOpts configures EstimateAverage.
type AverageOpts struct {
	// Periods is the number of drifting-theta periods per trial; defaults
	// to 400.
	Periods int
	// OpsPerPeriod is the requests per period; defaults to 500. Longer
	// periods reduce the bias from window state carried across period
	// boundaries.
	OpsPerPeriod int
	// Trials defaults to 8.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
}

func (o *AverageOpts) fill() {
	if o.Periods == 0 {
		o.Periods = 400
	}
	if o.OpsPerPeriod == 0 {
		o.OpsPerPeriod = 500
	}
	if o.Trials == 0 {
		o.Trials = 8
	}
}

// EstimateAverage estimates AVG: the cost per request when theta is
// redrawn uniformly per period, the section 3 interpretation of the
// average expected cost integral.
func EstimateAverage(f Factory, m cost.Model, opts AverageOpts) stats.Summary {
	opts.fill()
	_, fused := NewKernel(f(), m)
	results := parallelTrials(opts.Trials, func(trial int) float64 {
		rng := stats.NewRNG(opts.Seed + uint64(trial)*0x9e3779b9)
		if fused {
			kn, _ := NewKernel(f(), m)
			return kn.ReplayDrifting(rng, opts.Periods, opts.OpsPerPeriod).PerOp()
		}
		src := NewDriftingStream(rng, opts.OpsPerPeriod)
		return ReplayStream(f(), m, src, opts.Periods*opts.OpsPerPeriod, 0).PerOp()
	})
	var sum stats.Summary
	for _, v := range results {
		sum.Add(v)
	}
	return sum
}

// parallelTrials runs fn for each trial index on the shared worker pool
// and returns the values in trial order, keeping runs reproducible
// regardless of scheduling.
func parallelTrials(trials int, fn func(trial int) float64) []float64 {
	out := make([]float64, trials)
	Fan(trials, func(i int) { out[i] = fn(i) })
	return out
}

// ParsePolicy builds a policy factory from a compact name: "ST1", "ST2",
// "SW<k>" (e.g. "SW5"), "T1(<m>)" or "T1<m>" (likewise T2), the baseline
// names "CacheInv" and "EWMA(<alpha>)", and the even-window ablation
// "SWe<k>". The CLI tools and trace tooling use it.
func ParsePolicy(name string) (Factory, error) {
	var k, m int
	var alpha float64
	switch {
	case name == "ST1":
		return func() core.Policy { return core.NewST1() }, nil
	case name == "ST2":
		return func() core.Policy { return core.NewST2() }, nil
	case name == "CacheInv":
		return func() core.Policy { return core.NewCacheInvalidate() }, nil
	case scanF(name, "EWMA(%g)", &alpha):
		if alpha <= 0 || alpha > 1 {
			return nil, fmt.Errorf("sim: EWMA alpha in %q must be in (0,1]", name)
		}
		return func() core.Policy { return core.NewEWMA(alpha) }, nil
	case scan(name, "SWe%d", &k):
		if k <= 0 || k%2 == 1 {
			return nil, fmt.Errorf("sim: even window size in %q must be even and positive", name)
		}
		return func() core.Policy { return core.NewEvenSW(k) }, nil
	case scan(name, "SW%d", &k):
		if k <= 0 || k%2 == 0 {
			return nil, fmt.Errorf("sim: window size in %q must be odd and positive", name)
		}
		return func() core.Policy { return core.NewSW(k) }, nil
	case scan(name, "T1(%d)", &m), scan(name, "T1%d", &m):
		if m <= 0 {
			return nil, fmt.Errorf("sim: threshold in %q must be positive", name)
		}
		return func() core.Policy { return core.NewT1(m) }, nil
	case scan(name, "T2(%d)", &m), scan(name, "T2%d", &m):
		if m <= 0 {
			return nil, fmt.Errorf("sim: threshold in %q must be positive", name)
		}
		return func() core.Policy { return core.NewT2(m) }, nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %q (want ST1, ST2, SWk, T1m or T2m)", name)
	}
}

// scan matches name against format with a single integer verb.
func scan(name, format string, dst *int) bool {
	n, err := fmt.Sscanf(name, format, dst)
	if err != nil || n != 1 {
		return false
	}
	// Reject trailing garbage such as "SW5x" by re-rendering.
	return fmt.Sprintf(format, *dst) == name
}

// scanF matches name against format with a single float verb.
func scanF(name, format string, dst *float64) bool {
	n, err := fmt.Sscanf(name, format, dst)
	if err != nil || n != 1 {
		return false
	}
	return fmt.Sprintf(format, *dst) == name
}
