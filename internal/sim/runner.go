package sim

// The measurement engine's shared runner. Every parallel construct in the
// repository — Monte-Carlo trials, experiment grid sweeps, the bench CLI's
// concurrent experiments — fans indexed work over one persistent pool of
// worker goroutines instead of spinning goroutines per call.
//
// Work distribution is an atomic cursor over the index range: every
// participant (the submitting goroutine plus any pool workers it managed
// to enlist) repeatedly claims the next unclaimed index, so a slow cell
// never strands work behind it and fast participants steal the remainder.
// The submitting goroutine always participates, which makes nested Fan
// calls deadlock-free even when every pool worker is busy: enlisting is a
// non-blocking offer that only an idle worker can accept.
//
// Because each index runs exactly once and results are written to the
// index's own slot, output placement is deterministic: a Fan over pure
// per-index functions produces bit-identical results at any parallelism,
// including MaxWorkers()==1, which degenerates to a plain sequential loop.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mobirep/internal/obs"
)

// maxWorkersOverride caps Fan's parallelism when positive; zero means
// "use GOMAXPROCS".
var maxWorkersOverride atomic.Int32

// MaxWorkers returns the number of participants Fan may use per call.
func MaxWorkers() int {
	if v := maxWorkersOverride.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxWorkers overrides the parallelism of every subsequent Fan call and
// returns the previous setting. n <= 1 forces fully sequential execution
// (the submitting goroutine runs every index in order); larger values cap
// the number of concurrent participants. The bench CLI plumbs its
// -parallel flag through this, and the determinism tests use it to prove
// that parallel and sequential runs produce identical bytes.
func SetMaxWorkers(n int) int {
	prev := MaxWorkers()
	if n < 1 {
		n = 1
	}
	maxWorkersOverride.Store(int32(n))
	return prev
}

// workerPool is the process-wide set of persistent worker goroutines.
type workerPool struct {
	tasks chan func()
}

var (
	poolOnce sync.Once
	pool     *workerPool
)

// sharedPool starts the workers on first use. The pool is sized above
// GOMAXPROCS so that tests raising SetMaxWorkers on small machines still
// exercise real concurrency; parked workers cost only their stacks.
func sharedPool() *workerPool {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
		pool = &workerPool{tasks: make(chan func())}
		for i := 0; i < n; i++ {
			go pool.worker()
		}
	})
	return pool
}

func (p *workerPool) worker() {
	for task := range p.tasks {
		task()
	}
}

// Fan runs fn(i) exactly once for every i in [0, n), possibly
// concurrently, and returns when all calls have finished. fn must be safe
// for concurrent invocation with distinct indices; writing to the i-th
// slot of a caller-owned slice is race-free. If any fn panics, the
// remaining indices still run and the first panic value is re-raised in
// the calling goroutine, mirroring a sequential loop closely enough for
// the experiments' panic-on-error style.
func Fan(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	helpers := MaxWorkers() - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		cursor   atomic.Int64
		panicMu  sync.Mutex
		panicked any
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		fn(i)
	}
	// Each participant counts the indices it claims locally and folds
	// them into the registry once, on exit — one atomic add per
	// participant, not per index.
	work := func(claimed *obs.Counter) {
		gFanActive.Add(1)
		local := 0
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				break
			}
			call(i)
			local++
		}
		gFanActive.Add(-1)
		claimed.Add(uint64(local))
	}

	mFanCalls.Inc()
	p := sharedPool()
	var wg sync.WaitGroup
	task := func() {
		defer wg.Done()
		mFanHelpers.Inc()
		work(mFanIndicesHelper)
	}
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		select {
		case p.tasks <- task:
		default:
			// Every worker is busy; the caller covers the load alone
			// rather than blocking, which keeps nested fans live.
			wg.Done()
		}
	}
	work(mFanIndicesCaller)
	wg.Wait()

	if panicked != nil {
		panic(panicked)
	}
}
