package sim

// Observability instrumentation for the measurement engine. Recording is
// amortized: the Fan participants count claimed indices locally and fold
// them into the registry once per participant, and the replay kernels
// record one counter add and one histogram observation per Replay call
// (never per request), so the fused loops keep their zero-allocation,
// zero-overhead-per-op guarantees.

import (
	"time"

	"mobirep/internal/obs"
)

var (
	simReg = obs.Default()

	mFanCalls = simReg.Counter("mobirep_sim_fan_calls_total",
		"Fan invocations that ran with at least one helper.")
	mFanIndicesCaller = simReg.Counter(`mobirep_sim_fan_indices_total{participant="caller"}`,
		"Work indices executed, by which participant claimed them.")
	mFanIndicesHelper = simReg.Counter(`mobirep_sim_fan_indices_total{participant="helper"}`, "")
	mFanHelpers       = simReg.Counter("mobirep_sim_fan_helpers_total",
		"Pool workers actually enlisted by Fan calls (offers accepted).")
	gFanActive = simReg.Gauge("mobirep_sim_fan_active_participants",
		"Participants currently inside a Fan work loop.")

	mReplays   [3]*obs.Counter // by kernelKind
	mReplayOps [3]*obs.Counter

	// Replay speed in nanoseconds per request, amortized over one Replay
	// call. The fused kernels sit around 5-20 ns/op; the bucket ladder
	// climbs to 4 us so a catastrophic regression still lands inside it.
	hReplayNsPerOp = simReg.Histogram("mobirep_sim_replay_ns_per_op",
		"Nanoseconds per replayed request, one observation per Replay call.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096})
)

func init() {
	names := [3]string{"sw", "st1", "st2"}
	for i, kind := range names {
		help, opsHelp := "", ""
		if i == 0 {
			help = "Fused kernel replays, by kernel kind."
			opsHelp = "Requests replayed by fused kernels, by kernel kind."
		}
		mReplays[i] = simReg.Counter(`mobirep_sim_replays_total{kind="`+kind+`"}`, help)
		mReplayOps[i] = simReg.Counter(`mobirep_sim_replay_ops_total{kind="`+kind+`"}`, opsHelp)
	}
}

// recordReplay accounts one finished Replay call: n priced requests in
// elapsed wall time on the kernel of the given kind.
func recordReplay(kind kernelKind, n int, elapsed time.Duration) {
	mReplays[kind].Inc()
	if n <= 0 {
		return
	}
	mReplayOps[kind].Add(uint64(n))
	hReplayNsPerOp.Observe(float64(elapsed.Nanoseconds()) / float64(n))
}
