package sim

// Streaming replay: the estimators' hot path draws each request from the
// RNG the moment the policy needs it instead of materializing a
// ~200k-element sched.Schedule per trial. The streams below consume the
// RNG in exactly the order the materializing generators in
// internal/workload do, so a streamed trial sees bit-for-bit the same
// schedule — and therefore produces bit-for-bit the same tables — as a
// materialized one at the same seed (TestStreamsMatchWorkload pins this).

import (
	"sync"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// OpStream produces schedule operations one at a time.
type OpStream interface {
	// Next returns the next request of the stream.
	Next() sched.Op
}

// BernoulliStream draws i.i.d. requests that are writes with probability
// theta — the streaming form of workload.Bernoulli.
type BernoulliStream struct {
	rng   *stats.RNG
	theta float64
}

// NewBernoulliStream returns a stream equivalent to
// workload.Bernoulli(rng, theta, ·).
func NewBernoulliStream(rng *stats.RNG, theta float64) *BernoulliStream {
	return &BernoulliStream{rng: rng, theta: theta}
}

// Next implements OpStream.
func (s *BernoulliStream) Next() sched.Op {
	if s.rng.Bernoulli(s.theta) {
		return sched.Write
	}
	return sched.Read
}

// DriftingStream draws the section 3 period model — theta redrawn
// uniformly every opsPerPeriod requests — in the exact RNG order of
// workload.Drifting.
type DriftingStream struct {
	rng          *stats.RNG
	opsPerPeriod int
	left         int
	theta        float64
}

// NewDriftingStream returns a stream equivalent to concatenating
// workload.Drifting periods of the given length.
func NewDriftingStream(rng *stats.RNG, opsPerPeriod int) *DriftingStream {
	return &DriftingStream{rng: rng, opsPerPeriod: opsPerPeriod}
}

// Next implements OpStream.
func (s *DriftingStream) Next() sched.Op {
	if s.left == 0 {
		s.theta = s.rng.Float64()
		s.left = s.opsPerPeriod
	}
	s.left--
	if s.rng.Bernoulli(s.theta) {
		return sched.Write
	}
	return sched.Read
}

// ReplayStream replays n requests drawn from src through p under m,
// ignoring the first warmup requests when accounting, exactly like Replay
// on the materialized schedule. It does not Reset the policy first.
func ReplayStream(p core.Policy, m cost.Model, src OpStream, n, warmup int) Result {
	var res Result
	for i := 0; i < n; i++ {
		st := p.Apply(src.Next())
		if i < warmup {
			continue
		}
		res.Ops++
		res.Ledger.Observe(m, st)
		if st.HadCopy {
			res.CopySteps++
		}
		if st.Allocated() {
			res.Allocations++
		}
		if st.Deallocated() {
			res.Deallocations++
		}
	}
	res.Cost = res.Ledger.Total
	return res
}

// schedPool recycles schedule buffers for the callers that do need a
// materialized schedule (hindsight comparisons, lookahead sweeps): a
// 200k-op buffer is worth reusing across grid cells. Pointers to slices
// are pooled so Put itself does not allocate.
var schedPool = sync.Pool{New: func() any { return new(sched.Schedule) }}

// GetSchedule returns a length-n schedule from the pool. The contents are
// unspecified; fill every element (workload.FillBernoulli does) before
// reading. Return it with PutSchedule when done.
func GetSchedule(n int) sched.Schedule {
	sp := schedPool.Get().(*sched.Schedule)
	if cap(*sp) >= n {
		s := (*sp)[:n]
		*sp = nil
		schedPool.Put(sp)
		return s
	}
	*sp = nil
	schedPool.Put(sp)
	return make(sched.Schedule, n)
}

// PutSchedule returns a schedule obtained from GetSchedule to the pool.
// The caller must not use s afterwards.
func PutSchedule(s sched.Schedule) {
	if cap(s) == 0 {
		return
	}
	sp := schedPool.Get().(*sched.Schedule)
	*sp = s[:0]
	schedPool.Put(sp)
}
