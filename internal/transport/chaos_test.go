package transport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// chaosRun drives a manual chaos pair to quiescence: it sends the given
// frames through the first link and steps until the queue drains or the
// step budget is spent, returning the delivered frames (in delivery order)
// and the event log.
func chaosRun(t *testing.T, cfg Config, frames [][]byte) (delivered [][]byte, events []string, st ChaosStats) {
	t.Helper()
	cfg.Manual = true
	ca, cb, err := NewChaosPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetHandler(func(frame []byte) {
		delivered = append(delivered, append([]byte(nil), frame...))
	})
	for _, f := range frames {
		if err := ca.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	// Duplication re-enqueues and reordering defers, so a fault-heavy
	// config may take more steps than frames; bound the loop regardless.
	for steps := 0; ca.Pending() > 0 && steps < 100*len(frames)+1000; steps++ {
		ev, ok := ca.Step()
		if !ok {
			break
		}
		events = append(events, fmt.Sprintf("%v:%x", ev.Action, ev.Frame))
	}
	return delivered, events, ca.Stats()
}

// numberedFrames returns n distinct frames whose first byte is their index.
func numberedFrames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte{byte(i), byte(i >> 8), 0xab, 0xcd}
	}
	return out
}

func TestChaosCleanPassThrough(t *testing.T) {
	frames := numberedFrames(50)
	delivered, _, st := chaosRun(t, Config{Seed: 1}, frames)
	if len(delivered) != len(frames) {
		t.Fatalf("clean config delivered %d of %d frames", len(delivered), len(frames))
	}
	for i, f := range frames {
		if !bytes.Equal(delivered[i], f) {
			t.Fatalf("frame %d altered: sent %x got %x", i, f, delivered[i])
		}
	}
	if st.Dropped != 0 || st.Duplicated != 0 || st.Deferred != 0 {
		t.Fatalf("clean config reported faults: %+v", st)
	}
}

// TestChaosDeliveryProperties is the transport-level property test: under
// every configuration, frames are delivered zero or more times, never
// corrupted or invented, the accounting identity holds, and order
// violations occur only when reordering (or re-enqueued duplication) is
// enabled.
func TestChaosDeliveryProperties(t *testing.T) {
	const n = 400
	cases := []struct {
		name string
		cfg  Config
	}{
		{"drop", Config{Seed: 11, Drop: 0.3}},
		{"dup", Config{Seed: 12, Dup: 0.3}},
		{"reorder", Config{Seed: 13, Reorder: 0.4}},
		{"mixed", Config{Seed: 14, Drop: 0.1, Dup: 0.1, Reorder: 0.2}},
		{"heavy", Config{Seed: 15, Drop: 0.4, Dup: 0.4, Reorder: 0.4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frames := numberedFrames(n)
			index := make(map[string]int, n)
			for i, f := range frames {
				index[string(f)] = i
			}
			delivered, _, st := chaosRun(t, tc.cfg, frames)

			counts := make(map[int]int)
			last := -1
			ordered := true
			for _, f := range delivered {
				id, ok := index[string(f)]
				if !ok {
					t.Fatalf("delivered frame %x was never sent (corrupted or invented)", f)
				}
				counts[id]++
				if id < last {
					ordered = false
				}
				last = id
			}
			if tc.cfg.Dup == 0 {
				for id, c := range counts {
					if c > 1 {
						t.Fatalf("frame %d delivered %d times with duplication disabled", id, c)
					}
				}
			}
			if tc.cfg.Reorder == 0 && tc.cfg.Dup == 0 && !ordered {
				t.Fatal("order violated with reordering and duplication disabled")
			}
			if st.Sent != n {
				t.Fatalf("stats.Sent = %d, want %d", st.Sent, n)
			}
			if got := len(delivered); got != st.Delivered {
				t.Fatalf("stats.Delivered = %d, handler saw %d", st.Delivered, got)
			}
			if st.Delivered != st.Sent-st.Dropped+st.Duplicated {
				t.Fatalf("accounting identity violated: %+v", st)
			}
			if tc.cfg.Drop > 0 && st.Dropped == 0 {
				t.Fatalf("%s: drop fault never fired over %d frames", tc.name, n)
			}
			if tc.cfg.Dup > 0 && st.Duplicated == 0 {
				t.Fatalf("%s: dup fault never fired over %d frames", tc.name, n)
			}
			if tc.cfg.Reorder > 0 && st.Deferred == 0 {
				t.Fatalf("%s: reorder fault never fired over %d frames", tc.name, n)
			}
		})
	}
}

// TestChaosDeterminism: the same seed must reproduce the exact delivery
// and event sequence — the property every conformance replay relies on.
func TestChaosDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.15, Dup: 0.15, Reorder: 0.25}
	frames := numberedFrames(200)
	d1, e1, _ := chaosRun(t, cfg, frames)
	d2, e2, _ := chaosRun(t, cfg, frames)
	if len(d1) != len(d2) {
		t.Fatalf("same seed delivered %d vs %d frames", len(d1), len(d2))
	}
	for i := range d1 {
		if !bytes.Equal(d1[i], d2[i]) {
			t.Fatalf("same seed diverged at delivery %d", i)
		}
	}
	if len(e1) != len(e2) {
		t.Fatalf("same seed produced %d vs %d events", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed diverged at event %d: %s vs %s", i, e1[i], e2[i])
		}
	}
}

func TestChaosPartitionSwallowsBoundedSpan(t *testing.T) {
	cfg := Config{Seed: 3, Manual: true}
	ca, cb, err := NewChaosPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var delivered [][]byte
	cb.SetHandler(func(f []byte) { delivered = append(delivered, append([]byte(nil), f...)) })
	frames := numberedFrames(10)
	for _, f := range frames {
		ca.Send(f)
	}
	ca.Partition(4)
	for ca.Pending() > 0 {
		if _, ok := ca.Step(); !ok {
			break
		}
	}
	if len(delivered) != 6 {
		t.Fatalf("partition of 4 left %d of 10 delivered, want 6", len(delivered))
	}
	if !bytes.Equal(delivered[0], frames[4]) {
		t.Fatalf("first post-partition frame is %x, want %x", delivered[0], frames[4])
	}
}

func TestChaosAutoModeFaults(t *testing.T) {
	a, b := NewMemPair()
	ca, err := NewChaos(a, Config{Seed: 21, Drop: 0.2, Dup: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var delivered [][]byte
	b.SetHandler(func(f []byte) { delivered = append(delivered, append([]byte(nil), f...)) })
	const n = 300
	frames := numberedFrames(n)
	index := make(map[string]bool, n)
	for _, f := range frames {
		index[string(f)] = true
		if err := ca.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range delivered {
		if !index[string(f)] {
			t.Fatalf("auto mode delivered frame %x that was never sent", f)
		}
	}
	st := ca.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("auto-mode faults never fired: %+v", st)
	}
	if len(delivered) != st.Delivered {
		t.Fatalf("stats.Delivered = %d, handler saw %d", st.Delivered, len(delivered))
	}
}

func TestChaosAutoModeReceiveFaults(t *testing.T) {
	a, b := NewMemPair()
	cb, err := NewChaos(b, Config{Seed: 5, Drop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var got int
	cb.SetHandler(func([]byte) { got++ })
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got == 0 || got == n {
		t.Fatalf("receive-path drop faults: %d of %d delivered", got, n)
	}
}

func TestChaosCrashClosesLink(t *testing.T) {
	a, _ := NewMemPair()
	ca, err := NewChaos(a, Config{Seed: 1, Crash: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("crash send returned %v, want ErrClosed", err)
	}
	if err := ca.Send([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after crash returned %v, want ErrClosed", err)
	}
}

func TestChaosCloseIsIdempotentAndStopsStep(t *testing.T) {
	ca, _, err := NewChaosPair(Config{Seed: 1, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	ca.Send([]byte("x"))
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ca.Step(); ok {
		t.Fatal("Step delivered after Close")
	}
	if err := ca.Send([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close returned %v", err)
	}
}

func TestChaosWaitPending(t *testing.T) {
	ca, _, err := NewChaosPair(Config{Seed: 1, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if ca.WaitPending(1, 10*time.Millisecond) {
		t.Fatal("WaitPending satisfied with empty queue")
	}
	go ca.Send([]byte("x"))
	if !ca.WaitPending(1, 2*time.Second) {
		t.Fatal("WaitPending missed the enqueued frame")
	}
}

func TestParseChaosSpec(t *testing.T) {
	cfg, err := ParseChaosSpec("seed=7,drop=0.05,dup=0.02,reorder=0.1,delay=0.2,maxdelay=50ms,crash=0.001,part=0.01,partlen=20")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Drop != 0.05 || cfg.Dup != 0.02 || cfg.Reorder != 0.1 ||
		cfg.Delay != 0.2 || cfg.MaxDelay != 50*time.Millisecond ||
		cfg.Crash != 0.001 || cfg.Part != 0.01 || cfg.PartLen != 20 {
		t.Fatalf("parsed %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config reports disabled")
	}
	if cfg, err := ParseChaosSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %+v %v", cfg, err)
	}
	// Defaults kick in when delay/part are set without their bounds.
	cfg, err = ParseChaosSpec("delay=0.5,part=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxDelay == 0 || cfg.PartLen == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	for _, bad := range []string{
		"drop", "drop=2", "drop=-0.5", "nonsense=1", "drop=x",
		"maxdelay=oops", "partlen=-3", "seed=-1",
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// FuzzChaosLink fuzzes the fault injector itself: whatever the seed,
// probabilities, and payload, delivered frames must be byte-identical to
// sent frames (never corrupted, never invented), the accounting identity
// must hold, and the whole run must be reproducible from the seed.
func FuzzChaosLink(f *testing.F) {
	f.Add(uint64(1), uint64(10), uint64(10), uint64(20), []byte("hello"))
	f.Add(uint64(42), uint64(0), uint64(0), uint64(0), []byte{0xff, 0x00})
	f.Add(uint64(7), uint64(50), uint64(50), uint64(50), []byte("chaos"))
	f.Add(uint64(0), uint64(100), uint64(0), uint64(0), []byte(""))
	f.Fuzz(func(t *testing.T, seed, dropPct, dupPct, reorderPct uint64, payload []byte) {
		cfg := Config{
			Seed:    seed,
			Drop:    float64(dropPct%101) / 100,
			Dup:     float64(dupPct%101) / 100,
			Reorder: float64(reorderPct%101) / 100,
			Manual:  true,
		}
		const n = 8
		frames := make([][]byte, n)
		sent := make(map[string]bool, n)
		for i := range frames {
			frames[i] = append([]byte{byte(i)}, payload...)
			sent[string(frames[i])] = true
		}
		run := func() (delivered []string, events []string, st ChaosStats) {
			ca, cb, err := NewChaosPair(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cb.SetHandler(func(frame []byte) {
				delivered = append(delivered, string(frame))
			})
			for _, fr := range frames {
				if err := ca.Send(fr); err != nil {
					t.Fatal(err)
				}
			}
			for steps := 0; ca.Pending() > 0 && steps < 2000; steps++ {
				ev, ok := ca.Step()
				if !ok {
					break
				}
				events = append(events, fmt.Sprintf("%v:%x", ev.Action, ev.Frame))
			}
			return delivered, events, ca.Stats()
		}
		d1, e1, st := run()
		for _, fr := range d1 {
			if !sent[fr] {
				t.Fatalf("delivered frame %x was never sent", fr)
			}
		}
		if st.Delivered != len(d1) {
			t.Fatalf("stats.Delivered = %d, handler saw %d", st.Delivered, len(d1))
		}
		if st.Delivered != st.Sent-st.Dropped+st.Duplicated && st.Sent == n {
			// The identity holds exactly only when the run drained; a
			// step-budget cutoff (pathological dup/reorder probabilities)
			// leaves frames queued, which the inequality direction covers.
			if ca := st.Sent - st.Dropped + st.Duplicated; st.Delivered > ca {
				t.Fatalf("delivered more than accounted: %+v", st)
			}
		}
		d2, e2, _ := run()
		if len(d1) != len(d2) || len(e1) != len(e2) {
			t.Fatalf("same seed not reproducible: %d/%d deliveries, %d/%d events",
				len(d1), len(d2), len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("same seed diverged at event %d", i)
			}
		}
	})
}
