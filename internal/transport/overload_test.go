package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// stalledPair returns a client link whose peer accepted the TCP handshake
// but never reads — the pathological consumer the overload bounds exist
// for — plus the client's close-callback channel. Socket buffers are
// shrunk on both ends so the kernel absorbs little before writes wedge.
func stalledPair(t *testing.T) (*TCPLink, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(4 << 10)
		}
		accepted <- c
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(16 << 10)
	}
	link := NewTCPLink(conn)
	link.SetHandler(func([]byte) {})
	closed := make(chan error, 1)
	link.Start(func(err error) { closed <- err })
	srv := <-accepted
	t.Cleanup(func() {
		link.Close()
		srv.Close()
		ln.Close()
	})
	return link, closed
}

// TestTCPWriteTimeoutKillsStalledLink is the write-deadline regression: a
// peer that never reads must not wedge the writer forever. With a write
// timeout armed, the blocked writev fails, the link dies through the
// fail-closed path, and onClose reports the timeout as the root cause —
// in both immediate and coalesced send modes (the latter is the flusher
// goroutine the deadline exists to protect).
func TestTCPWriteTimeoutKillsStalledLink(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		name := "immediate"
		if coalesce {
			name = "coalesced"
		}
		t.Run(name, func(t *testing.T) {
			link, closed := stalledPair(t)
			link.SetWriteTimeout(200 * time.Millisecond)
			if coalesce {
				link.SetCoalesce(true)
			}
			payload := bytes.Repeat([]byte{7}, 1<<16)
			var sendErr error
			for i := 0; i < 1000 && sendErr == nil; i++ {
				sendErr = link.Send(payload)
			}
			if sendErr == nil {
				t.Fatal("sends to a peer that never reads never failed")
			}
			if err := link.Send([]byte("x")); err != ErrClosed {
				t.Fatalf("link still alive after write timeout: %v", err)
			}
			select {
			case err := <-closed:
				var ne net.Error
				if !errors.As(err, &ne) || !ne.Timeout() {
					t.Fatalf("onClose error %v is not a timeout", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("close callback never fired")
			}
		})
	}
}

// TestTCPQueueLimitKillsSlowConsumer: with a bounded outbox, a stalled
// peer costs at most the bound — the link dies with ErrSlowConsumer, the
// queue is recycled, and onClose carries the reason so the server's
// detach path can tell "slow consumer" from "clean shutdown".
func TestTCPQueueLimitKillsSlowConsumer(t *testing.T) {
	link, closed := stalledPair(t)
	link.SetCoalesce(true)
	link.SetQueueLimit(32 << 10)
	payload := bytes.Repeat([]byte{9}, 1024)
	var sendErr error
	for i := 0; i < 100000 && sendErr == nil; i++ {
		sendErr = link.Send(payload)
	}
	if !errors.Is(sendErr, ErrSlowConsumer) {
		t.Fatalf("send error = %v, want ErrSlowConsumer", sendErr)
	}
	if n := link.QueuedBytes(); n != 0 {
		t.Fatalf("outbox holds %d bytes after the kill", n)
	}
	if err := link.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("link still alive after outbox overflow: %v", err)
	}
	select {
	case err := <-closed:
		if !errors.Is(err, ErrSlowConsumer) {
			t.Fatalf("onClose error = %v, want ErrSlowConsumer", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close callback never fired")
	}
}

// TestSendAfterCloseParity pins the documented contract the supervisor's
// send-failure suspicion path relies on: whatever the transport, Send
// after Close returns ErrClosed.
func TestSendAfterCloseParity(t *testing.T) {
	t.Run("memLink", func(t *testing.T) {
		a, _ := NewMemPair()
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Send([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("memLink Send after Close = %v, want ErrClosed", err)
		}
	})
	for _, coalesce := range []bool{false, true} {
		name := "tcp-immediate"
		if coalesce {
			name = "tcp-coalesced"
		}
		t.Run(name, func(t *testing.T) {
			cli, _, _ := tcpPair(t)
			if coalesce {
				cli.SetCoalesce(true)
			}
			if err := cli.Close(); err != nil {
				t.Fatal(err)
			}
			if err := cli.Send([]byte("x")); !errors.Is(err, ErrClosed) {
				t.Fatalf("TCPLink Send after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestTCPSlowConsumerHammer races many senders against a bounded outbox
// and a peer that never reads: every sender must come to rest with
// ErrSlowConsumer or ErrClosed — never a hang, never a data race — and
// the close callback must fire exactly once with the slow-consumer cause.
func TestTCPSlowConsumerHammer(t *testing.T) {
	for round := 0; round < 5; round++ {
		link, closed := stalledPair(t)
		link.SetCoalesce(true)
		link.SetQueueLimit(16 << 10)
		link.SetWriteTimeout(time.Second)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				frame := bytes.Repeat([]byte{byte(g)}, 512)
				for i := 0; i < 200; i++ {
					if err := link.Send(frame); err != nil {
						if !errors.Is(err, ErrSlowConsumer) && !errors.Is(err, ErrClosed) {
							t.Errorf("sender %d: unexpected error %v", g, err)
						}
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if err := link.Send([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: link survived the hammer: %v", round, err)
		}
		select {
		case err := <-closed:
			if !errors.Is(err, ErrSlowConsumer) {
				t.Fatalf("round %d: onClose error = %v, want ErrSlowConsumer", round, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: close callback never fired", round)
		}
	}
}

// TestChaosStallBuffersAndFlushesInOrder: a stall holds frames without
// loss and releases them in send order when the reader "wakes up".
func TestChaosStallBuffersAndFlushesInOrder(t *testing.T) {
	a, b := NewMemPair()
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(f []byte) {
		mu.Lock()
		got = append(got, string(f))
		mu.Unlock()
	})
	c, err := NewChaos(a, Config{Seed: 1, Stall: 1, StallFor: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := c.Send([]byte(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	early := len(got)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("%d frames leaked through an active stall", early)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := len(got) == n
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall never flushed: got %d/%d frames", len(got), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, f := range got {
		if want := fmt.Sprintf("f%d", i); f != want {
			t.Fatalf("frame %d: got %q, want %q — stall reordered", i, f, want)
		}
	}
	st := c.Stats()
	if st.Stalled != n || st.Delivered != n || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestChaosStallCapKillsLink: buffering during a stall is bounded; past
// the cap the link dies the way a bounded outbox kills a slow consumer.
func TestChaosStallCapKillsLink(t *testing.T) {
	a, b := NewMemPair()
	b.SetHandler(func([]byte) {})
	c, err := NewChaos(a, Config{Stall: 1, StallFor: time.Hour, StallCap: 20})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	for i := 0; i < 2; i++ {
		if err := c.Send(payload); err != nil {
			t.Fatalf("send %d under cap failed: %v", i, err)
		}
	}
	if err := c.Send(payload); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("over-cap send = %v, want ErrSlowConsumer", err)
	}
	if err := c.Send(payload); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on killed link = %v, want ErrClosed", err)
	}
}

func TestParseChaosSpecStallKeys(t *testing.T) {
	cfg, err := ParseChaosSpec("stall=0.5,stallfor=2s,stallcap=1024")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Stall != 0.5 || cfg.StallFor != 2*time.Second || cfg.StallCap != 1024 {
		t.Fatalf("parsed %+v", cfg)
	}
	cfg, err = ParseChaosSpec("stall=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StallFor != 100*time.Millisecond {
		t.Fatalf("stallfor default = %v", cfg.StallFor)
	}
	if !cfg.Enabled() {
		t.Fatal("stall-only config reported disabled")
	}
	if _, err := ParseChaosSpec("stall=1.5"); err == nil {
		t.Fatal("out-of-range stall accepted")
	}
}
