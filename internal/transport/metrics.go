package transport

// Observability instrumentation for the transport layer. Every series
// registers once against the process-wide obs registry at init; the
// send/receive hot paths then touch only pre-resolved counter handles
// (array index by message kind, two atomic adds) — no map lookups, no
// locks, no allocations.

import (
	"mobirep/internal/obs"
	"mobirep/internal/wire"
)

// kindSlot maps a wire.Kind to a small dense index for the per-kind byte
// counters. Unknown (future or malformed) kinds share the "other" slot.
const (
	slotReadReq = iota
	slotReadResp
	slotWriteProp
	slotDeleteReq
	slotPing
	slotPong
	slotBusy
	slotMultiReadReq
	slotMultiReadResp
	slotResyncReq
	slotResyncResp
	slotOther
	slotCount
)

var kindSlotNames = [slotCount]string{
	"read-req", "read-resp", "write-prop", "delete-req", "ping", "pong", "busy",
	"multi-read-req", "multi-read-resp", "resync-req", "resync-resp", "other",
}

func kindSlot(k wire.Kind) int {
	switch k {
	case wire.KindReadReq:
		return slotReadReq
	case wire.KindReadResp:
		return slotReadResp
	case wire.KindWriteProp:
		return slotWriteProp
	case wire.KindDeleteReq:
		return slotDeleteReq
	case wire.KindPing:
		return slotPing
	case wire.KindPong:
		return slotPong
	case wire.KindBusy:
		return slotBusy
	case wire.KindMultiReadReq:
		return slotMultiReadReq
	case wire.KindMultiReadResp:
		return slotMultiReadResp
	case wire.KindResyncReq:
		return slotResyncReq
	case wire.KindResyncResp:
		return slotResyncResp
	default:
		return slotOther
	}
}

var (
	obsReg = obs.Default()
	obsTr  = obs.DefaultTracer()

	mFramesSent = obsReg.Counter(`mobirep_transport_frames_total{dir="send"}`,
		"Frames handed to a link for transmission, by direction.")
	mFramesRecv = obsReg.Counter(`mobirep_transport_frames_total{dir="recv"}`, "")

	mBytesSentByKind [slotCount]*obs.Counter
	mBytesRecvByKind [slotCount]*obs.Counter

	mChaosFaults = map[string]*obs.Counter{
		"drop":      obsReg.Counter(`mobirep_chaos_faults_total{fault="drop"}`, "Chaos fault decisions, by fault kind."),
		"dup":       obsReg.Counter(`mobirep_chaos_faults_total{fault="dup"}`, ""),
		"defer":     obsReg.Counter(`mobirep_chaos_faults_total{fault="defer"}`, ""),
		"crash":     obsReg.Counter(`mobirep_chaos_faults_total{fault="crash"}`, ""),
		"partition": obsReg.Counter(`mobirep_chaos_faults_total{fault="partition"}`, ""),
		"stall":     obsReg.Counter(`mobirep_chaos_faults_total{fault="stall"}`, ""),
	}

	mSlowConsumerKills = obsReg.Counter("mobirep_transport_slow_consumer_kills_total",
		"Links killed because their bounded outbox (SetQueueLimit) overflowed.")
	mChaosDelivered = obsReg.Counter("mobirep_chaos_delivered_total",
		"Frames a chaos link forwarded to the peer, duplicates included.")

	mWritevFlushes = obsReg.Counter("mobirep_transport_writev_flushes_total",
		"Coalesced writev batches issued by TCP links.")
	mWritevFrames = obsReg.Counter("mobirep_transport_writev_frames_total",
		"Frames carried by coalesced writev batches. The per-frame path "+
			"costs two syscalls, so 2*frames - flushes syscalls were saved.")
)

func init() {
	for i := 0; i < slotCount; i++ {
		help := ""
		if i == 0 {
			help = "Frame payload bytes moved by links, by direction and message kind."
		}
		mBytesSentByKind[i] = obsReg.Counter(
			`mobirep_transport_bytes_total{dir="send",kind="`+kindSlotNames[i]+`"}`, help)
		mBytesRecvByKind[i] = obsReg.Counter(
			`mobirep_transport_bytes_total{dir="recv",kind="`+kindSlotNames[i]+`"}`, "")
	}
}

// recordSend accounts one frame leaving a link.
func recordSend(frame []byte) {
	mFramesSent.Inc()
	k, _ := wire.FrameKind(frame)
	mBytesSentByKind[kindSlot(k)].Add(uint64(len(frame)))
}

// recordRecv accounts one frame delivered to a handler.
func recordRecv(frame []byte) {
	mFramesRecv.Inc()
	k, _ := wire.FrameKind(frame)
	mBytesRecvByKind[kindSlot(k)].Add(uint64(len(frame)))
}

// recordFlush accounts one coalesced writev batch of n frames.
func recordFlush(n int) {
	mWritevFlushes.Inc()
	mWritevFrames.Add(uint64(n))
}

// chaosFault accounts one fault decision and traces it. key is empty —
// the transport does not parse frames — but the fault name and the frame
// size give the event its shape.
func chaosFault(fault string, frameLen int) {
	if c := mChaosFaults[fault]; c != nil {
		c.Inc()
	}
	obsTr.Record(obs.EvChaosFault, "", fault, int64(frameLen), 0)
}
