package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair returns a dialed client link and a channel of frames received by
// the accepted server link (copied out of the borrowed handler buffer).
func tcpPair(t *testing.T) (*TCPLink, *Listener, chan []byte) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	got := make(chan []byte, 4096)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			return
		}
		link.SetHandler(func(f []byte) { got <- append([]byte(nil), f...) })
		link.Start(nil)
	}()
	cli, err := DialLink(ln.Addr(), func([]byte) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, ln, got
}

func TestTCPCoalescedInOrderDelivery(t *testing.T) {
	cli, _, got := tcpPair(t)
	cli.SetCoalesce(true)
	if !cli.Coalescing() {
		t.Fatal("SetCoalesce(true) did not stick")
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := cli.Send([]byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case f := <-got:
			if want := fmt.Sprintf("frame-%d", i); string(f) != want {
				t.Fatalf("frame %d: got %q, want %q", i, f, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d frames arrived", i, n)
		}
	}
	st := cli.Stats()
	if st.Frames != n {
		t.Fatalf("stats count %d frames, want %d", st.Frames, n)
	}
	if st.Flushes == 0 || st.Flushes > st.Frames {
		t.Fatalf("implausible flush count %d for %d frames", st.Flushes, st.Frames)
	}
	if saved := 2*st.Frames - st.Flushes; saved <= st.Frames {
		t.Fatalf("coalescing saved %d syscalls over %d frames — worse than the two-write path", saved, st.Frames)
	}
}

func TestTCPCoalescedZeroLengthFrames(t *testing.T) {
	cli, _, got := tcpPair(t)
	cli.SetCoalesce(true)
	// Zero-length frames through the coalescing queue: each is a bare
	// 4-byte header and must arrive as an empty (not dropped) frame,
	// interleaved in order with payload frames.
	for i := 0; i < 10; i++ {
		var f []byte
		if i%2 == 1 {
			f = []byte{byte(i)}
		}
		if err := cli.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		select {
		case f := <-got:
			if i%2 == 0 && len(f) != 0 {
				t.Fatalf("frame %d: want empty, got %x", i, f)
			}
			if i%2 == 1 && !bytes.Equal(f, []byte{byte(i)}) {
				t.Fatalf("frame %d: got %x", i, f)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestTCPMaxFrameBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("16MB frames in -short mode")
	}
	cli, _, got := tcpPair(t)
	// Exactly at the limit: accepted and delivered intact.
	at := make([]byte, maxFrame)
	at[0], at[maxFrame-1] = 0xAB, 0xCD
	if err := cli.Send(at); err != nil {
		t.Fatalf("frame at maxFrame rejected: %v", err)
	}
	select {
	case f := <-got:
		if len(f) != maxFrame || f[0] != 0xAB || f[maxFrame-1] != 0xCD {
			t.Fatalf("boundary frame mangled: len=%d", len(f))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("boundary frame never arrived")
	}
	// One over: rejected with an error, but nothing hit the wire, so the
	// link must stay alive and usable.
	if err := cli.Send(make([]byte, maxFrame+1)); err == nil {
		t.Fatal("frame over maxFrame accepted")
	}
	if err := cli.Send([]byte("still-alive")); err != nil {
		t.Fatalf("link died after oversized-frame rejection: %v", err)
	}
	select {
	case f := <-got:
		if string(f) != "still-alive" {
			t.Fatalf("got %q", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-rejection frame never arrived")
	}
}

// TestTCPFlushConcurrentClose races senders, flushers, and Close under the
// race detector: no write may panic or corrupt state, whatever interleaving
// the scheduler picks. Errors (ErrClosed, broken pipe) are expected.
func TestTCPFlushConcurrentClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		cli, _, _ := tcpPair(t)
		cli.SetCoalesce(true)
		var wg sync.WaitGroup
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				frame := bytes.Repeat([]byte{byte(s)}, 64)
				for i := 0; i < 50; i++ {
					if err := cli.Send(frame); err != nil {
						return
					}
				}
			}(s)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = cli.Flush()
			}
		}()
		go func() {
			defer wg.Done()
			cli.Close()
		}()
		wg.Wait()
		if err := cli.Send([]byte("x")); err != ErrClosed {
			t.Fatalf("send after close: %v", err)
		}
	}
}

// TestTCPWriteFailureShutsLinkDown covers the partial-write corruption
// fix: once any write fails, the byte stream is unrecoverable for the
// peer, so the link must die — not hand back an error on a live link —
// and the write error must surface through the close callback.
func TestTCPWriteFailureShutsLinkDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	link := NewTCPLink(conn)
	link.SetHandler(func([]byte) {})
	closed := make(chan error, 1)
	link.Start(func(err error) { closed <- err })

	// Sever the connection under the link, then write until the failure
	// shows (the first few sends may land in socket buffers).
	srvConn := <-accepted
	srvConn.Close()
	payload := bytes.Repeat([]byte{1}, 1<<16)
	var sendErr error
	for i := 0; i < 100 && sendErr == nil; i++ {
		sendErr = link.Send(payload)
	}
	if sendErr == nil {
		t.Fatal("writes to a severed connection never failed")
	}
	// The failed write must have killed the link.
	if err := link.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("link still alive after write failure: %v", err)
	}
	// And the close callback reports a reason, not a clean shutdown.
	select {
	case err := <-closed:
		if err == nil {
			t.Fatal("onClose reported clean shutdown after a write failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close callback never fired")
	}
}

// TestTCPReceiveAllocsSteadyState pins the receive path: after the first
// frame grows the loop's buffer, further same-sized frames must be
// delivered with zero per-frame allocations.
func TestTCPReceiveAllocsSteadyState(t *testing.T) {
	// Indirect pin: the readLoop buffer is reused, so the handler must see
	// the SAME backing array across frames. (A direct AllocsPerRun is
	// impossible across goroutines; buffer identity is the observable.)
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ptrs := make(chan *byte, 16)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			return
		}
		link.SetHandler(func(f []byte) {
			if len(f) > 0 {
				ptrs <- &f[0]
			}
		})
		link.Start(nil)
	}()
	cli, err := Dial(ln.Addr(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var first *byte
	for i := 0; i < 8; i++ {
		if err := cli.Send(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		select {
		case p := <-ptrs:
			if first == nil {
				first = p
			} else if p != first {
				t.Fatalf("frame %d delivered in a fresh buffer — receive path allocates per frame", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}
