package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMemPairDeliversSynchronously(t *testing.T) {
	a, b := NewMemPair()
	var got []byte
	b.SetHandler(func(frame []byte) { got = frame })
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Synchronous delivery: got is set before Send returns.
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMemPairBothDirections(t *testing.T) {
	a, b := NewMemPair()
	var fromA, fromB string
	a.SetHandler(func(f []byte) { fromB = string(f) })
	b.SetHandler(func(f []byte) { fromA = string(f) })
	a.Send([]byte("to-b"))
	b.Send([]byte("to-a"))
	if fromA != "to-b" || fromB != "to-a" {
		t.Fatalf("fromA=%q fromB=%q", fromA, fromB)
	}
}

func TestMemPairBorrowContract(t *testing.T) {
	// Frames are borrowed: a handler that copies keeps a stable snapshot
	// even if the sender reuses its buffer right after Send returns —
	// which is exactly what the pooled encode paths do.
	a, b := NewMemPair()
	var got []byte
	b.SetHandler(func(f []byte) { got = append([]byte(nil), f...) })
	buf := []byte("mutate-me")
	a.Send(buf)
	buf[0] = 'X'
	if string(got) != "mutate-me" {
		t.Fatalf("copied frame changed under handler: %q", got)
	}
}

func TestMemPairClose(t *testing.T) {
	a, b := NewMemPair()
	b.SetHandler(func([]byte) {})
	a.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	c, d := NewMemPair()
	d.SetHandler(func([]byte) {})
	d.Close()
	if err := c.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send to closed peer: %v", err)
	}
}

func TestMemPairNoHandler(t *testing.T) {
	a, _ := NewMemPair()
	if err := a.Send([]byte("x")); err == nil {
		t.Fatal("send to handlerless peer should error")
	}
}

func TestMemPairReentrantPingPong(t *testing.T) {
	// A handler that replies synchronously must not deadlock.
	a, b := NewMemPair()
	var final string
	a.SetHandler(func(f []byte) {
		if len(f) < 4 {
			a.Send(append(f, 'a'))
		} else {
			final = string(f)
		}
	})
	b.SetHandler(func(f []byte) { b.Send(append(f, 'b')) })
	a.Send([]byte("p"))
	if final != "pbab" {
		t.Fatalf("final = %q", final)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverGot := make(chan []byte, 10)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			return
		}
		link.SetHandler(func(f []byte) {
			serverGot <- append([]byte(nil), f...) // frames are borrowed
			link.Send(append([]byte("echo:"), f...))
		})
		link.Start(nil)
	}()

	clientGot := make(chan []byte, 10)
	cli, err := Dial(ln.Addr(), func(f []byte) { clientGot <- append([]byte(nil), f...) })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	payload := []byte("over-tcp")
	if err := cli.Send(payload); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-serverGot:
		if !bytes.Equal(got, payload) {
			t.Fatalf("server got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server receive timeout")
	}
	select {
	case got := <-clientGot:
		if string(got) != "echo:over-tcp" {
			t.Fatalf("client got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client receive timeout")
	}
}

func TestTCPManyFramesInOrder(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 500
	done := make(chan error, 1)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		i := 0
		var mu sync.Mutex
		link.SetHandler(func(f []byte) {
			mu.Lock()
			defer mu.Unlock()
			want := fmt.Sprintf("frame-%d", i)
			if string(f) != want {
				done <- fmt.Errorf("frame %d: got %q", i, f)
				return
			}
			i++
			if i == n {
				done <- nil
			}
		})
		link.Start(nil)
	}()

	cli, err := Dial(ln.Addr(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < n; i++ {
		if err := cli.Send([]byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPEmptyFrame(t *testing.T) {
	ln, _ := Listen("127.0.0.1:0")
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			return
		}
		link.SetHandler(func(f []byte) { got <- f })
		link.Start(nil)
	}()
	cli, err := Dial(ln.Addr(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Send(nil)
	select {
	case f := <-got:
		if len(f) != 0 {
			t.Fatalf("got %q", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPCloseUnblocksAndReports(t *testing.T) {
	ln, _ := Listen("127.0.0.1:0")
	defer ln.Close()
	closed := make(chan error, 1)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			return
		}
		link.SetHandler(func([]byte) {})
		link.Start(func(err error) { closed <- err })
	}()
	cli, err := Dial(ln.Addr(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("onClose got %v, want nil for clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server link never observed close")
	}
	if err := cli.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	ln, _ := Listen("127.0.0.1:0")
	defer ln.Close()
	const senders, per = 8, 50
	total := make(chan struct{}, senders*per)
	go func() {
		link, err := ln.Accept()
		if err != nil {
			return
		}
		link.SetHandler(func(f []byte) {
			if len(f) == 32 {
				total <- struct{}{}
			}
		})
		link.Start(nil)
	}()
	cli, err := Dial(ln.Addr(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			frame := make([]byte, 32)
			for i := 0; i < per; i++ {
				if err := cli.Send(frame); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		select {
		case <-total:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d frames arrived intact", i, senders*per)
		}
	}
}
