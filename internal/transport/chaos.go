package transport

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"mobirep/internal/stats"
)

// Chaos wraps a Link and injects transmission faults — dropped, duplicated,
// deferred (reordered), and partition-swallowed frames, plus abrupt link
// death — driven by a seeded deterministic RNG, so every failure run is
// byte-reproducible from its seed.
//
// Two operating modes exist:
//
//   - Manual mode (Config.Manual) queues every sent frame; nothing reaches
//     the peer until Step is called. Each Step pops the oldest frame, rolls
//     the fault dice, and reports exactly what happened, which lets a
//     single-goroutine test interleave operations and deliveries
//     deterministically. The conformance harness in internal/replica is
//     built on this mode.
//   - Auto mode applies faults inline at Send (and drop/duplicate on the
//     receive path) and forwards surviving frames immediately, optionally
//     after a random delay. The -chaos flag of mobirep-server and
//     mobirep-client wraps the real TCP links in this mode, so the same
//     injector runs against the production path.
//
// Faults are applied per direction: a Chaos endpoint faults the frames it
// sends (and, in auto mode, the frames it receives). Wrapping both ends of
// a connection faults both directions independently.
type Chaos struct {
	inner Link
	cfg   Config

	mu        sync.Mutex
	rng       *stats.RNG
	queue     [][]byte // manual mode: frames sent but not yet stepped
	held      []byte   // auto mode: frame held back for reordering
	partition int      // frames still to swallow in the current partition
	stalled   bool     // auto mode: a stall is in progress
	stallBuf  [][]byte // frames buffered, in order, while stalled
	stallB    int      // bytes buffered while stalled
	closed    bool
	notify    chan struct{}
	stats     ChaosStats
}

// Config parameterizes a Chaos link. All probabilities are per frame and
// must lie in [0, 1]; zero disables the corresponding fault.
type Config struct {
	// Seed seeds the fault RNG. Two links with the same seed and the same
	// frame sequence make identical fault decisions.
	Seed uint64
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Dup is the probability a frame is delivered twice. In manual mode
	// the duplicate re-enters the back of the queue, so the copies are
	// separated by whatever traffic is in flight — the nastier case.
	Dup float64
	// Reorder is the probability a frame is deferred behind the frame
	// after it (manual mode), or held until the next Send (auto mode).
	Reorder float64
	// Delay is the probability a frame is delivered late (auto mode only;
	// in manual mode delivery timing is the caller's to control).
	Delay float64
	// MaxDelay bounds the random delay of a delayed frame (auto mode).
	MaxDelay time.Duration
	// Crash is the probability, checked at each Send, that the link dies
	// abruptly: it closes and every later Send fails (auto mode only).
	Crash float64
	// Part is the probability, checked at each Send, that a partition
	// starts: the next 1..PartLen frames are swallowed (auto mode; manual
	// callers start partitions explicitly with Partition).
	Part float64
	// PartLen bounds the length of a partition in frames.
	PartLen int
	// Stall is the probability, checked at each Send while no stall is in
	// progress, that the link stalls: frames stop flowing and buffer in
	// order for StallFor, modeling a peer that accepted the handshake but
	// stopped reading (auto mode only). Unlike a partition nothing is
	// lost — unless StallCap overflows first.
	Stall float64
	// StallFor is how long each stall lasts before the buffered frames
	// flush in order. A duration far beyond the test's horizon models a
	// permanently wedged consumer.
	StallFor time.Duration
	// StallCap bounds the bytes buffered during a stall; exceeding it
	// closes the link (Send returns ErrSlowConsumer), the way a bounded
	// outbox kills a consumer that never drains. Zero buffers without
	// limit for the duration of the stall.
	StallCap int
	// Manual selects manual (stepped) mode.
	Manual bool
}

// Validate reports whether the configuration is well-formed.
func (cfg Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"drop", cfg.Drop}, {"dup", cfg.Dup}, {"reorder", cfg.Reorder},
		{"delay", cfg.Delay}, {"crash", cfg.Crash}, {"part", cfg.Part},
		{"stall", cfg.Stall},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("transport: chaos %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if cfg.PartLen < 0 {
		return fmt.Errorf("transport: chaos partlen %d must be non-negative", cfg.PartLen)
	}
	if cfg.MaxDelay < 0 {
		return fmt.Errorf("transport: chaos maxdelay %v must be non-negative", cfg.MaxDelay)
	}
	if cfg.StallFor < 0 {
		return fmt.Errorf("transport: chaos stallfor %v must be non-negative", cfg.StallFor)
	}
	if cfg.StallCap < 0 {
		return fmt.Errorf("transport: chaos stallcap %d must be non-negative", cfg.StallCap)
	}
	return nil
}

// Enabled reports whether any fault can ever fire under the configuration.
func (cfg Config) Enabled() bool {
	return cfg.Drop > 0 || cfg.Dup > 0 || cfg.Reorder > 0 || cfg.Delay > 0 ||
		cfg.Crash > 0 || cfg.Part > 0 || cfg.Stall > 0
}

// ChaosStats counts fault decisions, for reporting.
type ChaosStats struct {
	// Sent counts frames handed to Send (before faults).
	Sent int
	// Delivered counts frames forwarded to the peer, duplicates included.
	Delivered int
	// Dropped counts frames discarded by drop faults or partitions.
	Dropped int
	// Duplicated counts frames delivered more than once.
	Duplicated int
	// Deferred counts manual-mode reorderings and auto-mode holds.
	Deferred int
	// Stalled counts frames buffered by stall faults (auto mode). They are
	// also counted in Delivered once the stall flushes them.
	Stalled int
}

// ChaosAction describes what one manual Step did with the oldest frame.
type ChaosAction uint8

const (
	// ChaosDelivered: the frame reached the peer's handler.
	ChaosDelivered ChaosAction = iota
	// ChaosDropped: the frame was discarded (drop fault or partition).
	ChaosDropped
	// ChaosDuplicated: the frame reached the peer AND a copy re-entered
	// the back of the queue for a later, separated redelivery.
	ChaosDuplicated
	// ChaosDeferred: the frame swapped places with the next queued frame;
	// nothing was delivered.
	ChaosDeferred
)

// String implements fmt.Stringer.
func (a ChaosAction) String() string {
	switch a {
	case ChaosDelivered:
		return "deliver"
	case ChaosDropped:
		return "drop"
	case ChaosDuplicated:
		return "duplicate"
	case ChaosDeferred:
		return "defer"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// ChaosEvent reports one manual Step outcome.
type ChaosEvent struct {
	Action ChaosAction
	// Frame is the affected frame (the delivered copy for Delivered and
	// Duplicated, the lost frame for Dropped, the deferred frame for
	// Deferred).
	Frame []byte
}

// NewChaos wraps inner with fault injection.
func NewChaos(inner Link, cfg Config) (*Chaos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Chaos{
		inner:  inner,
		cfg:    cfg,
		rng:    stats.NewRNG(cfg.Seed),
		notify: make(chan struct{}, 1),
	}, nil
}

// NewChaosPair wraps both ends of an in-memory pair with chaos injectors
// sharing one seed (each direction gets an independent derived RNG stream).
// The first link is conventionally the server side, the second the client.
func NewChaosPair(cfg Config) (*Chaos, *Chaos, error) {
	a, b := NewMemPair()
	return NewChaosPairOver(cfg, a, b)
}

// NewChaosPairOver is NewChaosPair over caller-provided link ends instead
// of a fresh in-memory pair: the RNG derivation is identical, so a seed
// reproduces the same fault schedule whatever transport carries the frames.
func NewChaosPairOver(cfg Config, a, b Link) (*Chaos, *Chaos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	base := stats.NewRNG(cfg.Seed)
	ca, _ := NewChaos(a, cfg)
	cb, _ := NewChaos(b, cfg)
	ca.rng = base.Split()
	cb.rng = base.Split()
	return ca, cb, nil
}

// Send transmits one frame toward the peer, subject to faults. In manual
// mode the frame only enters the queue; the caller delivers it with Step.
func (c *Chaos) Send(frame []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	cp := append([]byte(nil), frame...)
	c.stats.Sent++
	if c.cfg.Manual {
		c.queue = append(c.queue, cp)
		select {
		case c.notify <- struct{}{}:
		default:
		}
		c.mu.Unlock()
		return nil
	}
	return c.autoSend(cp)
}

// autoSend applies the fault rolls inline. Called with c.mu held; releases
// it before touching the inner link.
func (c *Chaos) autoSend(frame []byte) error {
	if c.cfg.Crash > 0 && c.rng.Bernoulli(c.cfg.Crash) {
		c.mu.Unlock()
		chaosFault("crash", len(frame))
		c.Close()
		return ErrClosed
	}
	if c.stalled {
		return c.stallBuffer(frame)
	}
	if c.cfg.Stall > 0 && c.rng.Bernoulli(c.cfg.Stall) {
		c.stalled = true
		time.AfterFunc(c.cfg.StallFor, c.unstall)
		return c.stallBuffer(frame)
	}
	if c.partition == 0 && c.cfg.Part > 0 && c.rng.Bernoulli(c.cfg.Part) {
		c.partition = 1
		if c.cfg.PartLen > 1 {
			c.partition += c.rng.Intn(c.cfg.PartLen)
		}
		chaosFault("partition", c.partition)
	}
	if c.partition > 0 {
		c.partition--
		c.stats.Dropped++
		c.mu.Unlock()
		chaosFault("drop", len(frame))
		return nil
	}
	if c.rng.Bernoulli(c.cfg.Drop) {
		c.stats.Dropped++
		c.mu.Unlock()
		chaosFault("drop", len(frame))
		return nil
	}
	dup := c.rng.Bernoulli(c.cfg.Dup)
	var delay time.Duration
	if c.cfg.MaxDelay > 0 && c.rng.Bernoulli(c.cfg.Delay) {
		delay = time.Duration(c.rng.Float64() * float64(c.cfg.MaxDelay))
	}
	// Reordering holds this frame back until the next Send flushes it.
	flush := c.held
	c.held = nil
	if flush == nil && c.rng.Bernoulli(c.cfg.Reorder) {
		c.held = frame
		c.stats.Deferred++
		c.mu.Unlock()
		chaosFault("defer", len(frame))
		return nil
	}
	n := 1
	if dup {
		n = 2
		c.stats.Duplicated++
	}
	c.stats.Delivered += n
	if flush != nil {
		c.stats.Delivered++
	}
	inner := c.inner
	c.mu.Unlock()
	if dup {
		chaosFault("dup", len(frame))
	}
	mChaosDelivered.Add(uint64(n))
	if flush != nil {
		mChaosDelivered.Inc()
	}

	send := func(f []byte) {
		if delay > 0 {
			time.AfterFunc(delay, func() { _ = inner.Send(f) })
			return
		}
		_ = inner.Send(f)
	}
	for i := 0; i < n; i++ {
		send(frame)
	}
	if flush != nil {
		send(flush)
	}
	return nil
}

// stallBuffer holds frame, in order, until the stall timer flushes it.
// Called with c.mu held; releases it. When StallCap overflows the link
// dies — the stalled peer's buffers are full and a bounded sender gives
// up on it — and Send reports ErrSlowConsumer.
func (c *Chaos) stallBuffer(frame []byte) error {
	c.stallBuf = append(c.stallBuf, frame)
	c.stallB += len(frame)
	c.stats.Stalled++
	over := c.cfg.StallCap > 0 && c.stallB > c.cfg.StallCap
	c.mu.Unlock()
	chaosFault("stall", len(frame))
	if over {
		c.Close()
		return ErrSlowConsumer
	}
	return nil
}

// unstall ends a stall: buffered frames flush to the peer in send order,
// exactly as a socket drains once its reader wakes up.
func (c *Chaos) unstall() {
	c.mu.Lock()
	buf := c.stallBuf
	c.stallBuf = nil
	c.stallB = 0
	c.stalled = false
	closed := c.closed
	c.stats.Delivered += len(buf)
	inner := c.inner
	c.mu.Unlock()
	if closed || len(buf) == 0 {
		return
	}
	mChaosDelivered.Add(uint64(len(buf)))
	for _, f := range buf {
		_ = inner.Send(f)
	}
}

// SetHandler installs the receive callback. In auto mode incoming frames
// are subject to drop and duplicate faults before reaching h.
func (c *Chaos) SetHandler(h Handler) {
	if c.cfg.Manual || h == nil || !c.cfg.Enabled() {
		c.inner.SetHandler(h)
		return
	}
	c.inner.SetHandler(func(frame []byte) {
		c.mu.Lock()
		drop := c.rng.Bernoulli(c.cfg.Drop)
		dup := !drop && c.rng.Bernoulli(c.cfg.Dup)
		if drop {
			c.stats.Dropped++
		} else {
			c.stats.Delivered++
			if dup {
				c.stats.Delivered++
				c.stats.Duplicated++
			}
		}
		c.mu.Unlock()
		if drop {
			chaosFault("drop", len(frame))
			return
		}
		mChaosDelivered.Inc()
		if dup {
			chaosFault("dup", len(frame))
			mChaosDelivered.Inc()
		}
		h(frame)
		if dup {
			h(frame)
		}
	})
}

// Close tears the link down. Safe to call more than once.
func (c *Chaos) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.queue = nil
	c.held = nil
	c.stallBuf = nil
	c.stallB = 0
	c.mu.Unlock()
	return c.inner.Close()
}

// Pending returns the number of queued frames (manual mode).
func (c *Chaos) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// PendingFrames returns copies of the queued frames, oldest first.
func (c *Chaos) PendingFrames() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.queue))
	for i, f := range c.queue {
		out[i] = append([]byte(nil), f...)
	}
	return out
}

// WaitPending blocks until at least n frames are queued or the timeout
// expires, reporting which. It exists for test harnesses that hand Sends
// to another goroutine and need a deterministic rendezvous.
func (c *Chaos) WaitPending(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		ok := len(c.queue) >= n
		c.mu.Unlock()
		if ok {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		if remain > time.Millisecond {
			remain = time.Millisecond
		}
		select {
		case <-c.notify:
		case <-time.After(remain):
		}
	}
}

// DiscardPending drops every queued frame without delivering it, as when a
// dying link's socket buffers are lost.
func (c *Chaos) DiscardPending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.queue)
	c.stats.Dropped += n
	c.queue = nil
	return n
}

// Partition swallows the next n frames (queued frames first), modeling a
// link outage of bounded length that the sender cannot observe.
func (c *Chaos) Partition(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partition = n
}

// Step processes the oldest queued frame in manual mode: it rolls the
// fault dice and delivers, drops, duplicates, or defers the frame,
// reporting exactly what happened. It returns false when nothing is
// queued or the link is closed. Delivery runs the peer's handler on the
// calling goroutine, so any protocol response the peer emits has been
// sent (and, if the peer is also chaos-wrapped, queued) before Step
// returns — the property the conformance harness's bookkeeping relies on.
func (c *Chaos) Step() (ChaosEvent, bool) {
	c.mu.Lock()
	if c.closed || len(c.queue) == 0 {
		c.mu.Unlock()
		return ChaosEvent{}, false
	}
	frame := c.queue[0]
	if c.partition > 0 {
		c.partition--
		c.queue = c.queue[1:]
		c.stats.Dropped++
		c.mu.Unlock()
		chaosFault("drop", len(frame))
		return ChaosEvent{Action: ChaosDropped, Frame: frame}, true
	}
	switch {
	case c.rng.Bernoulli(c.cfg.Drop):
		c.queue = c.queue[1:]
		c.stats.Dropped++
		c.mu.Unlock()
		chaosFault("drop", len(frame))
		return ChaosEvent{Action: ChaosDropped, Frame: frame}, true
	case len(c.queue) >= 2 && c.rng.Bernoulli(c.cfg.Reorder):
		c.queue[0], c.queue[1] = c.queue[1], c.queue[0]
		c.stats.Deferred++
		c.mu.Unlock()
		chaosFault("defer", len(frame))
		return ChaosEvent{Action: ChaosDeferred, Frame: frame}, true
	case c.rng.Bernoulli(c.cfg.Dup):
		c.queue = append(c.queue[1:], append([]byte(nil), frame...))
		c.stats.Duplicated++
		c.stats.Delivered++
		inner := c.inner
		c.mu.Unlock()
		chaosFault("dup", len(frame))
		mChaosDelivered.Inc()
		_ = inner.Send(frame)
		return ChaosEvent{Action: ChaosDuplicated, Frame: frame}, true
	default:
		c.queue = c.queue[1:]
		c.stats.Delivered++
		inner := c.inner
		c.mu.Unlock()
		mChaosDelivered.Inc()
		_ = inner.Send(frame)
		return ChaosEvent{Action: ChaosDelivered, Frame: frame}, true
	}
}

// Stats returns a snapshot of the fault counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ParseChaosSpec parses the -chaos flag syntax: a comma-separated list of
// key=value pairs, e.g.
//
//	seed=7,drop=0.05,dup=0.02,reorder=0.1,delay=0.2,maxdelay=50ms,crash=0.001,part=0.01,partlen=20,stall=0.01,stallfor=200ms,stallcap=65536
//
// Unset keys default to zero (fault disabled). The empty string yields a
// zero Config, which Enabled reports as off.
func ParseChaosSpec(s string) (Config, error) {
	var cfg Config
	s = strings.TrimSpace(s)
	if s == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("transport: chaos spec %q: want key=value", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			cfg.Drop, err = strconv.ParseFloat(val, 64)
		case "dup":
			cfg.Dup, err = strconv.ParseFloat(val, 64)
		case "reorder":
			cfg.Reorder, err = strconv.ParseFloat(val, 64)
		case "delay":
			cfg.Delay, err = strconv.ParseFloat(val, 64)
		case "maxdelay":
			cfg.MaxDelay, err = time.ParseDuration(val)
		case "crash":
			cfg.Crash, err = strconv.ParseFloat(val, 64)
		case "part":
			cfg.Part, err = strconv.ParseFloat(val, 64)
		case "partlen":
			cfg.PartLen, err = strconv.Atoi(val)
		case "stall":
			cfg.Stall, err = strconv.ParseFloat(val, 64)
		case "stallfor":
			cfg.StallFor, err = time.ParseDuration(val)
		case "stallcap":
			cfg.StallCap, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("transport: chaos spec: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("transport: chaos spec %s=%q: %v", key, val, err)
		}
	}
	if cfg.Delay > 0 && cfg.MaxDelay == 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	if cfg.Part > 0 && cfg.PartLen == 0 {
		cfg.PartLen = 10
	}
	if cfg.Stall > 0 && cfg.StallFor == 0 {
		cfg.StallFor = 100 * time.Millisecond
	}
	return cfg, cfg.Validate()
}
