// Package transport carries wire frames between the mobile computer and
// the stationary computer. Two implementations exist:
//
//   - the in-memory pair, which delivers frames synchronously in the
//     sender's goroutine and is used by the simulator-equivalence
//     experiment (E13) and most tests;
//   - TCP links with length-prefixed frames, used by the mobirep-server
//     and mobirep-client executables.
//
// Both deliver frames reliably and in order per direction, matching the
// paper's assumption of a serialized request stream. The Chaos wrapper
// (chaos.go) deliberately breaks those guarantees — dropping, duplicating,
// delaying, and reordering frames from a seeded RNG — so the replica
// protocol can be tested under the unreliable mobile links the paper's
// setting actually implies.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler consumes one received frame. Handlers must not block
// indefinitely; for the in-memory pair they run on the sender's goroutine.
//
// The frame is borrowed: it is only valid until the handler returns, after
// which the transport reuses its backing buffer for the next frame. A
// handler that retains the frame — or anything aliasing it, such as a
// wire.DecodeBorrowed message — past its return must copy first.
type Handler func(frame []byte)

// Link is one endpoint of a bidirectional frame pipe.
type Link interface {
	// Send transmits one frame to the peer. Implementations never retain
	// frame after Send returns (they copy if they must buffer), so callers
	// may immediately reuse the backing buffer — the contract that lets
	// the replica package encode every frame into a pooled buffer.
	Send(frame []byte) error
	// SetHandler installs the receive callback. It must be called before
	// the first frame arrives; for TCP links, before Start.
	SetHandler(h Handler)
	// Close tears the link down; subsequent Sends fail.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: link closed")

// ErrSlowConsumer is returned by Send when a link's bounded outbox
// (SetQueueLimit) overflows: the peer is not draining and the server will
// not buffer for it indefinitely. The link is already dead when Send
// returns this — the caller's onClose fires with it as the root cause.
var ErrSlowConsumer = errors.New("transport: slow consumer: outbox bound exceeded")

// memLink is one end of an in-memory pair.
type memLink struct {
	mu      sync.Mutex
	peer    *memLink
	handler Handler
	closed  bool
}

// NewMemPair returns two connected in-memory links. Send on one delivers
// synchronously to the other's handler before returning, so a cascade of
// protocol messages completes before the original Send returns — the
// property the simulator-equivalence experiment relies on.
func NewMemPair() (Link, Link) {
	a, b := &memLink{}, &memLink{}
	a.peer, b.peer = b, a
	return a, b
}

func (l *memLink) Send(frame []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	peer := l.peer
	l.mu.Unlock()

	peer.mu.Lock()
	h := peer.handler
	closed := peer.closed
	peer.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if h == nil {
		return errors.New("transport: peer has no handler")
	}
	// The handler runs synchronously inside Send and borrows the sender's
	// bytes directly — zero copies. The Handler contract (copy if you
	// retain) is what makes this safe.
	recordSend(frame)
	recordRecv(frame)
	h(frame)
	return nil
}

func (l *memLink) SetHandler(h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handler = h
}

func (l *memLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// TCPLink frames messages over a TCP connection as a uint32 length prefix
// followed by the payload.
//
// Sends are vectored: header and payload go to the kernel in one writev
// instead of two Write syscalls. With coalescing enabled (SetCoalesce),
// frames are instead copied into a small send queue that a background
// flusher drains with a single writev per batch, so back-to-back frames —
// heartbeats, propagation bursts, batch responses — share a syscall. The
// flusher runs whenever the queue is non-empty, so the added latency is
// bounded by one in-flight write; Flush forces a synchronous drain.
//
// Any failed or short write leaves the byte stream desynchronized for the
// peer (a half-written frame shifts every later length prefix), so the
// link shuts down on the first write error rather than returning an error
// on a live link.
//
// Two overload bounds protect the sender from a peer that stops reading:
// SetWriteTimeout arms a deadline before every writev, so a stalled socket
// fails the write instead of wedging the flusher forever; SetQueueLimit
// caps the coalescing outbox, killing the link (ErrSlowConsumer) the
// moment queued bytes would exceed the bound. Both funnel into the same
// fail-closed shutdown path as any other write error.
type TCPLink struct {
	conn    net.Conn
	hmu     sync.Mutex
	handler Handler
	closed  chan struct{}
	once    sync.Once
	onClose func(error)

	// wmu serializes writes to conn. Batch extraction from the coalescing
	// queue happens under it too, so two concurrent flushes cannot write
	// their batches out of order.
	wmu    sync.Mutex
	whdr   [4]byte  // immediate-mode header scratch
	wpair  [][]byte // immediate-mode two-entry writev scratch
	wstore [][]byte // coalesced-mode writev view backing
	wview  net.Buffers

	// errmu guards werr on its own mutex, not under wmu: the slow-consumer
	// kill path and the readLoop's root-cause report must never block
	// behind a writev stalled on a dead peer.
	errmu sync.Mutex
	werr  error // first write error, reported via onClose

	writeTimeout atomic.Int64 // ns per writev; 0 = no deadline
	queueLimit   atomic.Int64 // outbox bound in bytes; 0 = unbounded

	coalesce atomic.Bool
	qmu      sync.Mutex // guards the coalescing queue
	pending  []*chunk
	spare    []*chunk // recycled backing array for the next pending batch
	pendingB int      // queued bytes, headers included
	wake     chan struct{}

	flushes     atomic.Uint64
	flushFrames atomic.Uint64
}

// chunk is one queued frame (length prefix + payload) owned by the link.
type chunk struct{ b []byte }

var chunkPool = sync.Pool{New: func() any { return &chunk{b: make([]byte, 0, 256)} }}

func putChunk(c *chunk) {
	if cap(c.b) > maxPooledChunk {
		return
	}
	c.b = c.b[:0]
	chunkPool.Put(c)
}

const (
	maxFrame = 16 << 20
	// maxPooledChunk caps pooled chunk capacity so one giant frame does
	// not pin its buffer behind every future heartbeat.
	maxPooledChunk = 64 << 10
	// coalesceFlushBytes bounds queued memory: once this much is pending
	// the sender flushes inline instead of waking the flusher.
	coalesceFlushBytes = 256 << 10
)

// NewTCPLink wraps an established connection. Call SetHandler, then Start.
func NewTCPLink(conn net.Conn) *TCPLink {
	return &TCPLink{conn: conn, closed: make(chan struct{}), wake: make(chan struct{}, 1)}
}

// SetCoalesce turns on send coalescing: Send enqueues and a background
// flusher drains the queue with one writev per batch. Call it before the
// first Send; coalescing cannot be turned off again. Frames still queued
// when the link closes are dropped, exactly like bytes sitting in a dying
// socket's kernel buffer.
func (l *TCPLink) SetCoalesce(on bool) {
	if !on || l.coalesce.Swap(true) {
		return
	}
	go l.flushLoop()
}

// Coalescing reports whether send coalescing is enabled.
func (l *TCPLink) Coalescing() bool { return l.coalesce.Load() }

// SetWriteTimeout bounds every writev: a peer that accepts the TCP
// handshake but never reads fills its receive window, the kernel buffer,
// and then blocks the write forever — with a timeout the write fails
// instead and the link shuts down through the usual fail-closed path
// (onClose reports the timeout). Zero disables the deadline. Safe to call
// concurrently with sends.
func (l *TCPLink) SetWriteTimeout(d time.Duration) { l.writeTimeout.Store(int64(d)) }

// SetQueueLimit caps the coalescing outbox at bytes (length prefixes
// included). Once the bound would be exceeded, Send kills the link and
// returns ErrSlowConsumer rather than buffering without limit for a peer
// that is not draining. While a limit is set, senders never flush inline —
// the bound, not coalesceFlushBytes, is the backpressure — so Send never
// blocks on a stalled socket. Zero (the default) restores unbounded
// queueing with inline flushes.
func (l *TCPLink) SetQueueLimit(bytes int) { l.queueLimit.Store(int64(bytes)) }

// QueuedBytes reports the bytes sitting in the coalescing outbox right
// now, length prefixes included. The memory-budget accounting in the
// replica server folds this into each session's footprint.
func (l *TCPLink) QueuedBytes() int {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	return l.pendingB
}

// CoalesceStats counts the work the vectored flusher has done.
type CoalesceStats struct {
	// Flushes is the number of writev batches issued.
	Flushes uint64
	// Frames is the number of frames those batches carried. The legacy
	// path cost two Write syscalls per frame, so 2*Frames - Flushes
	// syscalls were saved.
	Frames uint64
}

// Stats returns a snapshot of the flush counters.
func (l *TCPLink) Stats() CoalesceStats {
	return CoalesceStats{Flushes: l.flushes.Load(), Frames: l.flushFrames.Load()}
}

// Start launches the read loop. onClose, if non-nil, is invoked once when
// the loop exits, with nil on clean shutdown.
func (l *TCPLink) Start(onClose func(error)) {
	l.onClose = onClose
	go l.readLoop()
}

func (l *TCPLink) readLoop() {
	var err error
	defer func() {
		l.shutdown()
		if l.onClose != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				err = nil
			}
			if err == nil {
				// A write-path failure closed the connection under us;
				// surface the root cause instead of a clean shutdown.
				l.errmu.Lock()
				err = l.werr
				l.errmu.Unlock()
			}
			l.onClose(err)
		}
	}()
	var hdr [4]byte
	// One receive buffer per link, grown to the largest frame seen and
	// reused for every subsequent frame: steady-state receive does not
	// allocate. The handler borrows it (see Handler).
	var buf []byte
	for {
		if _, err = io.ReadFull(l.conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			err = fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
			return
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		frame := buf[:n]
		if _, err = io.ReadFull(l.conn, frame); err != nil {
			return
		}
		l.hmu.Lock()
		h := l.handler
		l.hmu.Unlock()
		if h != nil {
			recordRecv(frame)
			h(frame)
		}
	}
}

func (l *TCPLink) Send(frame []byte) error {
	if len(frame) > maxFrame {
		// Nothing was written, so the stream is still in sync: reject the
		// frame but leave the link alive.
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	select {
	case <-l.closed:
		return ErrClosed
	default:
	}
	if l.coalesce.Load() {
		return l.enqueue(frame)
	}
	l.wmu.Lock()
	binary.BigEndian.PutUint32(l.whdr[:], uint32(len(frame)))
	if l.wpair == nil {
		l.wpair = make([][]byte, 2)
	}
	l.wpair[0], l.wpair[1] = l.whdr[:], frame
	// One vectored write for header plus payload, where the old path paid
	// two Write syscalls. net.Buffers.WriteTo mutates l.wview as it
	// consumes; l.wpair keeps the stable backing.
	l.wview = net.Buffers(l.wpair[:2])
	l.armWriteDeadline()
	_, err := l.wview.WriteTo(l.conn)
	l.wpair[1] = nil
	if err != nil {
		l.fail(err)
		l.wmu.Unlock()
		l.shutdown()
		return err
	}
	l.wmu.Unlock()
	recordSend(frame)
	return nil
}

// enqueue copies frame (with its length prefix) into a pooled chunk on
// the coalescing queue. The caller's buffer is free for reuse on return.
func (l *TCPLink) enqueue(frame []byte) error {
	c := chunkPool.Get().(*chunk)
	b := binary.BigEndian.AppendUint32(c.b[:0], uint32(len(frame)))
	c.b = append(b, frame...)

	limit := int(l.queueLimit.Load())
	l.qmu.Lock()
	if limit > 0 && l.pendingB+len(c.b) > limit {
		// Slow consumer: the flusher is not draining and the outbox is at
		// its bound. Kill the link without touching wmu — a stalled writev
		// may hold that lock indefinitely — and recycle the queue.
		// shutdown closes the conn, which unblocks the in-flight write.
		batch := l.pending
		l.pending = nil
		l.pendingB = 0
		l.qmu.Unlock()
		putChunk(c)
		for i, qc := range batch {
			putChunk(qc)
			batch[i] = nil
		}
		mSlowConsumerKills.Inc()
		l.fail(ErrSlowConsumer)
		l.shutdown()
		return ErrSlowConsumer
	}
	l.pending = append(l.pending, c)
	l.pendingB += len(c.b)
	// With a queue limit in force the sender never flushes inline: an
	// inline flush would block Send behind the stalled socket the limit
	// exists to protect against.
	over := limit == 0 && l.pendingB >= coalesceFlushBytes
	l.qmu.Unlock()
	recordSend(frame)
	if over {
		return l.Flush()
	}
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return nil
}

// Flush synchronously writes every queued frame with a single vectored
// write. It is a no-op when nothing is pending or coalescing is off.
func (l *TCPLink) Flush() error {
	l.wmu.Lock()
	err := l.flushLocked()
	l.wmu.Unlock()
	if err != nil {
		l.shutdown()
	}
	return err
}

// flushLocked drains the queue under wmu. On error the link is failed but
// not yet shut down (the caller does that outside the lock).
func (l *TCPLink) flushLocked() error {
	l.qmu.Lock()
	batch := l.pending
	l.pending = l.spare[:0]
	l.spare = nil
	l.pendingB = 0
	l.qmu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if cap(l.wstore) < len(batch) {
		l.wstore = make([][]byte, len(batch))
	}
	view := l.wstore[:len(batch)]
	for i, c := range batch {
		view[i] = c.b
	}
	// WriteTo consumes l.wview (and reslices view's entries); batch keeps
	// the original chunk headers so they return to the pool intact.
	l.wview = net.Buffers(view)
	l.armWriteDeadline()
	_, err := l.wview.WriteTo(l.conn)
	for i, c := range batch {
		putChunk(c)
		batch[i] = nil
	}
	l.flushes.Add(1)
	l.flushFrames.Add(uint64(len(batch)))
	recordFlush(len(batch))
	l.qmu.Lock()
	if l.spare == nil {
		l.spare = batch[:0]
	}
	l.qmu.Unlock()
	if err != nil {
		l.fail(err)
		return err
	}
	return nil
}

// flushLoop drains the coalescing queue whenever it is non-empty. Frames
// sent while a writev is in flight pile up and go out together on the
// next pass — batching emerges from backpressure, with no timers and no
// unbounded latency.
func (l *TCPLink) flushLoop() {
	for {
		select {
		case <-l.closed:
			return
		case <-l.wake:
			_ = l.Flush()
		}
	}
}

// fail records the first write error as the link's root cause.
func (l *TCPLink) fail(err error) {
	l.errmu.Lock()
	if l.werr == nil {
		l.werr = err
	}
	l.errmu.Unlock()
}

// armWriteDeadline applies the configured write timeout, if any, to the
// next write on conn. Called immediately before each writev.
func (l *TCPLink) armWriteDeadline() {
	if wt := l.writeTimeout.Load(); wt > 0 {
		_ = l.conn.SetWriteDeadline(time.Now().Add(time.Duration(wt)))
	}
}

func (l *TCPLink) SetHandler(h Handler) {
	l.hmu.Lock()
	defer l.hmu.Unlock()
	l.handler = h
}

func (l *TCPLink) shutdown() {
	l.once.Do(func() {
		close(l.closed)
		l.conn.Close()
	})
}

func (l *TCPLink) Close() error {
	if l.coalesce.Load() {
		// Best-effort drain so frames accepted before Close reach the
		// peer; racing Sends may still be dropped, as documented.
		_ = l.Flush()
	}
	l.shutdown()
	return nil
}

// Dialer opens a fresh link to a fixed peer. Reconnect logic (the
// replica package's supervisor) redials through it after a link death;
// implementations compose TCP dialing, chaos wrapping, and close-callback
// wiring behind this one signature.
type Dialer func() (Link, error)

// Dial connects to a mobirep server and returns a started link.
func Dial(addr string, h Handler) (Link, error) {
	return DialLink(addr, h, nil)
}

// DialLink is Dial with a close callback: onClose, if non-nil, runs once
// when the read loop exits (nil error on clean shutdown). Reconnect
// supervisors wire it to their failure-detection hook so a dropped TCP
// connection is noticed without waiting for a failed send.
func DialLink(addr string, h Handler, onClose func(error)) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := NewTCPLink(conn)
	l.SetHandler(h)
	l.Start(onClose)
	return l, nil
}

// Listener accepts TCP links.
type Listener struct {
	ln net.Listener
}

// Listen binds addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for one connection and returns an unstarted link; install a
// handler with SetHandler and call Start.
func (l *Listener) Accept() (*TCPLink, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPLink(conn), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.ln.Close() }
