// Package transport carries wire frames between the mobile computer and
// the stationary computer. Two implementations exist:
//
//   - the in-memory pair, which delivers frames synchronously in the
//     sender's goroutine and is used by the simulator-equivalence
//     experiment (E13) and most tests;
//   - TCP links with length-prefixed frames, used by the mobirep-server
//     and mobirep-client executables.
//
// Both deliver frames reliably and in order per direction, matching the
// paper's assumption of a serialized request stream. The Chaos wrapper
// (chaos.go) deliberately breaks those guarantees — dropping, duplicating,
// delaying, and reordering frames from a seeded RNG — so the replica
// protocol can be tested under the unreliable mobile links the paper's
// setting actually implies.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler consumes one received frame. Handlers must not block
// indefinitely; for the in-memory pair they run on the sender's goroutine.
type Handler func(frame []byte)

// Link is one endpoint of a bidirectional frame pipe.
type Link interface {
	// Send transmits one frame to the peer.
	Send(frame []byte) error
	// SetHandler installs the receive callback. It must be called before
	// the first frame arrives; for TCP links, before Start.
	SetHandler(h Handler)
	// Close tears the link down; subsequent Sends fail.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: link closed")

// memLink is one end of an in-memory pair.
type memLink struct {
	mu      sync.Mutex
	peer    *memLink
	handler Handler
	closed  bool
}

// NewMemPair returns two connected in-memory links. Send on one delivers
// synchronously to the other's handler before returning, so a cascade of
// protocol messages completes before the original Send returns — the
// property the simulator-equivalence experiment relies on.
func NewMemPair() (Link, Link) {
	a, b := &memLink{}, &memLink{}
	a.peer, b.peer = b, a
	return a, b
}

func (l *memLink) Send(frame []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	peer := l.peer
	l.mu.Unlock()

	peer.mu.Lock()
	h := peer.handler
	closed := peer.closed
	peer.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if h == nil {
		return errors.New("transport: peer has no handler")
	}
	// Copy so the receiver may retain the frame.
	cp := make([]byte, len(frame))
	copy(cp, frame)
	recordSend(frame)
	recordRecv(cp)
	h(cp)
	return nil
}

func (l *memLink) SetHandler(h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handler = h
}

func (l *memLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// TCPLink frames messages over a TCP connection as a uint32 length prefix
// followed by the payload.
type TCPLink struct {
	conn    net.Conn
	mu      sync.Mutex // guards writes
	hmu     sync.Mutex
	handler Handler
	closed  chan struct{}
	once    sync.Once
	onClose func(error)
}

const maxFrame = 16 << 20

// NewTCPLink wraps an established connection. Call SetHandler, then Start.
func NewTCPLink(conn net.Conn) *TCPLink {
	return &TCPLink{conn: conn, closed: make(chan struct{})}
}

// Start launches the read loop. onClose, if non-nil, is invoked once when
// the loop exits, with nil on clean shutdown.
func (l *TCPLink) Start(onClose func(error)) {
	l.onClose = onClose
	go l.readLoop()
}

func (l *TCPLink) readLoop() {
	var err error
	defer func() {
		l.shutdown()
		if l.onClose != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				err = nil
			}
			l.onClose(err)
		}
	}()
	var hdr [4]byte
	for {
		if _, err = io.ReadFull(l.conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			err = fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
			return
		}
		frame := make([]byte, n)
		if _, err = io.ReadFull(l.conn, frame); err != nil {
			return
		}
		l.hmu.Lock()
		h := l.handler
		l.hmu.Unlock()
		if h != nil {
			recordRecv(frame)
			h(frame)
		}
	}
}

func (l *TCPLink) Send(frame []byte) error {
	select {
	case <-l.closed:
		return ErrClosed
	default:
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.conn.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.conn.Write(frame); err != nil {
		return err
	}
	recordSend(frame)
	return nil
}

func (l *TCPLink) SetHandler(h Handler) {
	l.hmu.Lock()
	defer l.hmu.Unlock()
	l.handler = h
}

func (l *TCPLink) shutdown() {
	l.once.Do(func() {
		close(l.closed)
		l.conn.Close()
	})
}

func (l *TCPLink) Close() error {
	l.shutdown()
	return nil
}

// Dialer opens a fresh link to a fixed peer. Reconnect logic (the
// replica package's supervisor) redials through it after a link death;
// implementations compose TCP dialing, chaos wrapping, and close-callback
// wiring behind this one signature.
type Dialer func() (Link, error)

// Dial connects to a mobirep server and returns a started link.
func Dial(addr string, h Handler) (Link, error) {
	return DialLink(addr, h, nil)
}

// DialLink is Dial with a close callback: onClose, if non-nil, runs once
// when the read loop exits (nil error on clean shutdown). Reconnect
// supervisors wire it to their failure-detection hook so a dropped TCP
// connection is noticed without waiting for a failed send.
func DialLink(addr string, h Handler, onClose func(error)) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := NewTCPLink(conn)
	l.SetHandler(h)
	l.Start(onClose)
	return l, nil
}

// Listener accepts TCP links.
type Listener struct {
	ln net.Listener
}

// Listen binds addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for one connection and returns an unstarted link; install a
// handler with SetHandler and call Start.
func (l *Listener) Accept() (*TCPLink, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPLink(conn), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.ln.Close() }
