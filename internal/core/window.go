package core

import (
	"fmt"

	"mobirep/internal/sched"
)

// Window is the sliding window of the last k relevant requests that the
// SWk family inspects. The paper stores it as k bits (0 for a read, 1 for
// a write); this implementation keeps the same representation in a ring
// buffer plus a running write count so that each slide is O(1).
//
// The window is also a first-class protocol object: when window ownership
// moves between the mobile and stationary computer (section 4), the
// current bits travel inside the handoff message. Bits and LoadBits exist
// for exactly that purpose and are exercised by internal/wire.
type Window struct {
	bits   []bool // true = write; index head is the oldest entry
	head   int
	writes int
}

// NewWindow returns a window of size k pre-filled with fill. The paper
// leaves the initial window unspecified because it only affects a finite
// prefix; filling with writes starts the system in the one-copy scheme,
// which matches a mobile computer that has just connected and holds no
// copy. k must be positive.
func NewWindow(k int, fill sched.Op) *Window {
	if k <= 0 {
		panic(fmt.Sprintf("core: window size %d must be positive", k))
	}
	w := &Window{bits: make([]bool, k)}
	if fill == sched.Write {
		for i := range w.bits {
			w.bits[i] = true
		}
		w.writes = k
	}
	return w
}

// Size returns k.
func (w *Window) Size() int { return len(w.bits) }

// Writes returns the number of writes currently in the window.
func (w *Window) Writes() int { return w.writes }

// Reads returns the number of reads currently in the window.
func (w *Window) Reads() int { return len(w.bits) - w.writes }

// ReadMajority reports whether reads strictly outnumber writes. With the
// paper's odd k there are no ties, so !ReadMajority means write majority.
func (w *Window) ReadMajority() bool { return w.Reads() > w.writes }

// Push drops the oldest request and records op as the newest.
func (w *Window) Push(op sched.Op) {
	isWrite := op == sched.Write
	if w.bits[w.head] {
		w.writes--
	}
	w.bits[w.head] = isWrite
	if isWrite {
		w.writes++
	}
	w.head++
	if w.head == len(w.bits) {
		w.head = 0
	}
}

// Bits returns the window contents oldest-first as a schedule, the form in
// which the window is piggybacked on handoff messages.
func (w *Window) Bits() sched.Schedule {
	out := make(sched.Schedule, len(w.bits))
	// Unroll the ring in two straight passes — head..end then 0..head —
	// so the protocol handoff path pays no modulo per element.
	n := copyBits(out, w.bits[w.head:])
	copyBits(out[n:], w.bits[:w.head])
	return out
}

// copyBits translates a contiguous run of ring bits into schedule ops and
// returns the number of elements written.
func copyBits(dst sched.Schedule, src []bool) int {
	for i, isWrite := range src {
		if isWrite {
			dst[i] = sched.Write
		} else {
			dst[i] = sched.Read
		}
	}
	return len(src)
}

// LoadBits replaces the window contents with the given oldest-first
// sequence, which must have exactly Size entries. It is the receiving side
// of a window handoff.
func (w *Window) LoadBits(bits sched.Schedule) error {
	if len(bits) != len(w.bits) {
		return fmt.Errorf("core: window handoff carried %d bits, want %d", len(bits), len(w.bits))
	}
	w.head = 0
	w.writes = 0
	for i, op := range bits {
		isWrite := op == sched.Write
		w.bits[i] = isWrite
		if isWrite {
			w.writes++
		}
	}
	return nil
}

// Fill resets every slot to op.
func (w *Window) Fill(op sched.Op) {
	isWrite := op == sched.Write
	for i := range w.bits {
		w.bits[i] = isWrite
	}
	w.head = 0
	if isWrite {
		w.writes = len(w.bits)
	} else {
		w.writes = 0
	}
}

// String renders the window oldest-first, e.g. "rrwrw".
func (w *Window) String() string { return w.Bits().String() }
