package core

import (
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

// opsFromBools converts a random bool slice into a schedule; quick uses it
// to drive the property tests.
func opsFromBools(raw []bool) sched.Schedule {
	s := make(sched.Schedule, len(raw))
	for i, b := range raw {
		if b {
			s[i] = sched.Write
		}
	}
	return s
}

func TestStepAccessors(t *testing.T) {
	alloc := step(sched.Read, false, true, false)
	if !alloc.Allocated() || alloc.Deallocated() {
		t.Fatal("allocation step misclassified")
	}
	dealloc := step(sched.Write, true, false, false)
	if dealloc.Allocated() || !dealloc.Deallocated() {
		t.Fatal("deallocation step misclassified")
	}
	hold := step(sched.Read, true, true, false)
	if hold.Allocated() || hold.Deallocated() {
		t.Fatal("steady step misclassified")
	}
}

func TestST1NeverHoldsCopy(t *testing.T) {
	p := NewST1()
	if p.Name() != "ST1" {
		t.Fatalf("name = %q", p.Name())
	}
	for _, op := range sched.MustParse("rrrwwwrw") {
		st := p.Apply(op)
		if st.HadCopy || st.HasCopy || st.DataSuppressed || p.HasCopy() {
			t.Fatalf("ST1 produced copy state: %+v", st)
		}
	}
	p.Reset()
	if p.HasCopy() {
		t.Fatal("ST1 has copy after reset")
	}
}

func TestST2AlwaysHoldsCopy(t *testing.T) {
	p := NewST2()
	if p.Name() != "ST2" {
		t.Fatalf("name = %q", p.Name())
	}
	for _, op := range sched.MustParse("rrrwwwrw") {
		st := p.Apply(op)
		if !st.HadCopy || !st.HasCopy || st.DataSuppressed || !p.HasCopy() {
			t.Fatalf("ST2 lost copy: %+v", st)
		}
	}
	p.Reset()
	if !p.HasCopy() {
		t.Fatal("ST2 lost copy after reset")
	}
}

func TestRunLength(t *testing.T) {
	steps := Run(NewST1(), sched.MustParse("rwr"))
	if len(steps) != 3 {
		t.Fatalf("len = %d", len(steps))
	}
	if steps[1].Op != sched.Write {
		t.Fatalf("step op = %v", steps[1].Op)
	}
}

// TestSWCopyMatchesMajority is the central SWk invariant: after every
// request, the MC holds a copy exactly when reads form a strict majority
// of the last k requests (with the initial fill supplying history before
// the k-th request).
func TestSWCopyMatchesMajority(t *testing.T) {
	for _, k := range []int{1, 3, 5, 9, 15} {
		k := k
		check := func(raw []bool) bool {
			p := NewSW(k)
			seq := opsFromBools(raw)
			for i, op := range seq {
				st := p.Apply(op)
				reads := 0
				for j := 0; j < k; j++ {
					idx := i - j
					if idx >= 0 && seq[idx] == sched.Read {
						reads++
					}
				}
				if (reads > k-reads) != st.HasCopy {
					return false
				}
				if st.HasCopy != p.HasCopy() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestSWAllocationOnlyOnReads(t *testing.T) {
	// Allocation must always coincide with a read: the copy piggybacks on
	// the read response (section 4).
	for _, k := range []int{1, 3, 7} {
		k := k
		check := func(raw []bool) bool {
			p := NewSW(k)
			for _, op := range opsFromBools(raw) {
				st := p.Apply(op)
				if st.Allocated() && op != sched.Read {
					return false
				}
				if st.Deallocated() && op != sched.Write {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestSW1Suppression(t *testing.T) {
	p := NewSW(1)
	if p.Name() != "SW1" {
		t.Fatalf("name = %q", p.Name())
	}
	// Starts without a copy (initial window is a write).
	st := p.Apply(sched.Write)
	if st.DataSuppressed {
		t.Fatal("write without copy should not be suppressed")
	}
	st = p.Apply(sched.Read)
	if !st.Allocated() {
		t.Fatal("read should allocate under SW1")
	}
	st = p.Apply(sched.Write)
	if !st.DataSuppressed || !st.Deallocated() {
		t.Fatalf("write with copy should be a suppressed deallocation: %+v", st)
	}
}

func TestSWkNoSuppression(t *testing.T) {
	for _, k := range []int{3, 5, 9} {
		p := NewSW(k)
		for _, op := range sched.MustParse("rrrrrwwwwwrrrrr") {
			if st := p.Apply(op); st.DataSuppressed {
				t.Fatalf("SW%d suppressed data: %+v", k, st)
			}
		}
	}
}

func TestSWInitialFill(t *testing.T) {
	p := NewSWInitial(5, sched.Read)
	if !p.HasCopy() {
		t.Fatal("read-filled SW should start with a copy")
	}
	p = NewSWInitial(5, sched.Write)
	if p.HasCopy() {
		t.Fatal("write-filled SW should start without a copy")
	}
}

func TestSWReset(t *testing.T) {
	p := NewSW(3)
	seq := sched.MustParse("rrrwwr")
	first := Run(p, seq)
	p.Reset()
	second := Run(p, seq)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d differs after reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestSWPanicsOnEvenK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSW(4) did not panic")
		}
	}()
	NewSW(4)
}

func TestSWAccessors(t *testing.T) {
	p := NewSW(7)
	if p.K() != 7 || p.Window().Size() != 7 {
		t.Fatalf("K=%d window=%d", p.K(), p.Window().Size())
	}
}

func TestT1PhaseMachine(t *testing.T) {
	p := NewT1(3)
	if p.Name() != "T1(3)" || p.M() != 3 {
		t.Fatalf("name=%q m=%d", p.Name(), p.M())
	}
	// Two reads, a write resets the count.
	p.Apply(sched.Read)
	p.Apply(sched.Read)
	p.Apply(sched.Write)
	if p.HasCopy() {
		t.Fatal("copy allocated too early")
	}
	// Three consecutive reads allocate on the third.
	p.Apply(sched.Read)
	p.Apply(sched.Read)
	st := p.Apply(sched.Read)
	if !st.Allocated() || !p.HasCopy() {
		t.Fatalf("third consecutive read should allocate: %+v", st)
	}
	// Reads keep the copy; the first write drops it with a suppressed
	// delete-request.
	if st = p.Apply(sched.Read); st.Deallocated() {
		t.Fatal("read should not deallocate in two-copies phase")
	}
	st = p.Apply(sched.Write)
	if !st.Deallocated() || !st.DataSuppressed {
		t.Fatalf("write should end two-copies phase with suppression: %+v", st)
	}
}

func TestT1CountResetAfterAllocationCycle(t *testing.T) {
	p := NewT1(2)
	p.Apply(sched.Read)
	p.Apply(sched.Read) // allocate
	p.Apply(sched.Write)
	// Needs two fresh consecutive reads again.
	st := p.Apply(sched.Read)
	if st.Allocated() {
		t.Fatal("allocated after a single read post-reset")
	}
	st = p.Apply(sched.Read)
	if !st.Allocated() {
		t.Fatal("second consecutive read should re-allocate")
	}
}

func TestT2PhaseMachine(t *testing.T) {
	p := NewT2(2)
	if p.Name() != "T2(2)" || p.M() != 2 {
		t.Fatalf("name=%q m=%d", p.Name(), p.M())
	}
	if !p.HasCopy() {
		t.Fatal("T2 should start with a copy")
	}
	// A write then a read: count resets.
	p.Apply(sched.Write)
	p.Apply(sched.Read)
	if !p.HasCopy() {
		t.Fatal("copy dropped too early")
	}
	// Two consecutive writes deallocate on the second, with the data still
	// propagated (the MC is counting, so no suppression is possible).
	p.Apply(sched.Write)
	st := p.Apply(sched.Write)
	if !st.Deallocated() || st.DataSuppressed {
		t.Fatalf("second consecutive write should deallocate unsuppressed: %+v", st)
	}
	// Writes stay free now; the first read re-allocates.
	st = p.Apply(sched.Write)
	if st.HadCopy || st.HasCopy {
		t.Fatalf("write in one-copy phase should stay copyless: %+v", st)
	}
	st = p.Apply(sched.Read)
	if !st.Allocated() {
		t.Fatalf("first read should re-allocate: %+v", st)
	}
}

func TestTResets(t *testing.T) {
	seq := sched.MustParse("rrwwrrrwwwr")
	t1 := NewT1(2)
	first := Run(t1, seq)
	t1.Reset()
	if second := Run(t1, seq); second[len(second)-1] != first[len(first)-1] {
		t.Fatal("T1 reset did not restore initial state")
	}
	t2 := NewT2(2)
	first = Run(t2, seq)
	t2.Reset()
	if second := Run(t2, seq); second[len(second)-1] != first[len(first)-1] {
		t.Fatal("T2 reset did not restore initial state")
	}
}

func TestTPanicsOnBadM(t *testing.T) {
	for _, f := range []func(){func() { NewT1(0) }, func() { NewT2(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor did not panic on bad m")
				}
			}()
			f()
		}()
	}
}

// TestStepConsistency checks, for every policy, that the HadCopy/HasCopy
// chain is consistent across steps and with HasCopy().
func TestStepConsistency(t *testing.T) {
	policies := []Policy{
		NewST1(), NewST2(), NewSW(1), NewSW(3), NewSW(9),
		NewT1(3), NewT2(3),
	}
	for _, p := range policies {
		p := p
		check := func(raw []bool) bool {
			p.Reset()
			prev := p.HasCopy()
			for _, op := range opsFromBools(raw) {
				st := p.Apply(op)
				if st.HadCopy != prev {
					return false
				}
				if st.HasCopy != p.HasCopy() {
					return false
				}
				if st.DataSuppressed && op != sched.Write {
					return false
				}
				prev = st.HasCopy
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}
