package core

import (
	"fmt"

	"mobirep/internal/sched"
)

// AdaptiveSW resolves the paper's central tension — the average expected
// cost wants a large window, the worst case wants a small one (sections 5
// and 9) — by adapting k online instead of fixing it.
//
// The rule is congestion-control shaped:
//
//   - every allocation flip that arrives quickly after the previous one
//     (within shrinkGap*k requests) halves the window toward KMin: rapid
//     flipping is either theta near 1/2, where a big window buys nothing,
//     or an adversary, against whom a small window bounds the damage;
//   - a long flip-free stretch (growGap*k requests) doubles the window
//     toward KMax: the mix is stable, so a bigger window suppresses the
//     residual noise flips and pushes the cost toward the static optimum.
//
// Window sizes stay odd so majorities stay strict. The experiments (E17)
// measure both promises: drifting-theta AVG near SW(KMax)'s and an
// adversarial ratio near SW(KMin)'s.
type AdaptiveSW struct {
	// KMin and KMax bound the window size; both odd, KMin <= KMax.
	KMin, KMax int

	k         int
	history   *Window // capacity KMax, newest KMax requests
	seen      int     // requests observed, saturating at KMax
	sinceFlip int
	sinceSize int
	hasCopy   bool
}

const (
	adaptiveShrinkGap = 2 // flips closer than shrinkGap*k halve the window
	adaptiveGrowGap   = 8 // stretches longer than growGap*k double it
)

// NewAdaptiveSW returns an adaptive window bounded by [kMin, kMax],
// starting at kMin (cautious until stability is observed).
func NewAdaptiveSW(kMin, kMax int) *AdaptiveSW {
	if kMin <= 0 || kMin%2 == 0 || kMax%2 == 0 || kMax < kMin {
		panic(fmt.Sprintf("core: adaptive window bounds [%d,%d] must be odd with kMin <= kMax", kMin, kMax))
	}
	return &AdaptiveSW{
		KMin:    kMin,
		KMax:    kMax,
		k:       kMin,
		history: NewWindow(kMax, sched.Write),
	}
}

// Name implements Policy.
func (a *AdaptiveSW) Name() string { return fmt.Sprintf("ASW(%d-%d)", a.KMin, a.KMax) }

// K returns the current effective window size.
func (a *AdaptiveSW) K() int { return a.k }

// HasCopy implements Policy.
func (a *AdaptiveSW) HasCopy() bool { return a.hasCopy }

// Apply implements Policy.
func (a *AdaptiveSW) Apply(op sched.Op) Step {
	had := a.hasCopy
	a.history.Push(op)
	if a.seen < a.KMax {
		a.seen++
	}
	a.sinceFlip++
	a.sinceSize++

	// Majority over the newest k requests (older history is retained for
	// future growth; requests before the first are the all-writes fill).
	reads := a.readsInLastK()
	switch {
	case op == sched.Read && reads > a.k-reads && !a.hasCopy:
		a.hasCopy = true
		a.onFlip()
	case op == sched.Write && a.k-reads > reads && a.hasCopy:
		a.hasCopy = false
		a.onFlip()
	}

	// Growth on stability.
	if a.k < a.KMax && a.sinceFlip >= adaptiveGrowGap*a.k && a.sinceSize >= adaptiveGrowGap*a.k {
		next := 2*a.k + 1
		if next > a.KMax {
			next = a.KMax
		}
		a.k = next
		a.sinceSize = 0
	}
	return step(op, had, a.hasCopy, false)
}

// onFlip applies the shrink rule at an allocation change.
func (a *AdaptiveSW) onFlip() {
	if a.sinceFlip < adaptiveShrinkGap*a.k && a.k > a.KMin {
		next := (a.k - 1) / 2
		if next%2 == 0 {
			next--
		}
		if next < a.KMin {
			next = a.KMin
		}
		a.k = next
		a.sinceSize = 0
	}
	a.sinceFlip = 0
}

// readsInLastK counts reads among the newest k requests in the history.
func (a *AdaptiveSW) readsInLastK() int {
	bits := a.history.Bits() // oldest first, length KMax
	reads := 0
	for i := len(bits) - a.k; i < len(bits); i++ {
		if bits[i] == sched.Read {
			reads++
		}
	}
	return reads
}

// Reset implements Policy.
func (a *AdaptiveSW) Reset() {
	a.k = a.KMin
	a.history.Fill(sched.Write)
	a.seen = 0
	a.sinceFlip = 0
	a.sinceSize = 0
	a.hasCopy = false
}
