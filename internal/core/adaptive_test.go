package core

import (
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

func TestAdaptiveValidation(t *testing.T) {
	for _, bounds := range [][2]int{{0, 3}, {2, 5}, {3, 4}, {5, 3}} {
		bounds := bounds
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v did not panic", bounds)
				}
			}()
			NewAdaptiveSW(bounds[0], bounds[1])
		}()
	}
	if NewAdaptiveSW(3, 3).Name() != "ASW(3-3)" {
		t.Fatal("name wrong")
	}
}

func TestAdaptiveStartsAtKMin(t *testing.T) {
	a := NewAdaptiveSW(3, 31)
	if a.K() != 3 {
		t.Fatalf("initial k = %d", a.K())
	}
}

func TestAdaptiveGrowsOnStability(t *testing.T) {
	a := NewAdaptiveSW(3, 31)
	// A long, pure-read stream: one allocation flip, then stability.
	for i := 0; i < 2000; i++ {
		a.Apply(sched.Read)
	}
	if a.K() != 31 {
		t.Fatalf("k after stable stream = %d, want 31", a.K())
	}
	if !a.HasCopy() {
		t.Fatal("copy should be held on an all-read stream")
	}
}

func TestAdaptiveShrinksOnFlapping(t *testing.T) {
	a := NewAdaptiveSW(3, 31)
	// Grow it first.
	for i := 0; i < 2000; i++ {
		a.Apply(sched.Read)
	}
	if a.K() != 31 {
		t.Fatalf("setup: k = %d", a.K())
	}
	// Adversarial flip-flop: single-request alternation makes the window
	// majority cross on nearly every request, forcing shrink after shrink.
	for i := 0; i < 400; i++ {
		a.Apply(sched.Write)
		a.Apply(sched.Read)
	}
	if a.K() != 3 {
		t.Fatalf("k after flapping = %d, want back at 3", a.K())
	}
	// Moderate alternation (runs of 40) is NOT flapping for a mid-size
	// window: the policy must settle somewhere between the bounds rather
	// than collapse.
	a.Reset()
	for i := 0; i < 2000; i++ {
		a.Apply(sched.Read)
	}
	for cycle := 0; cycle < 60; cycle++ {
		for i := 0; i < 40; i++ {
			a.Apply(sched.Write)
		}
		for i := 0; i < 40; i++ {
			a.Apply(sched.Read)
		}
	}
	if a.K() < 3 || a.K() > 31 {
		t.Fatalf("k out of bounds: %d", a.K())
	}
}

func TestAdaptiveFixedBoundsBehaveLikeSW(t *testing.T) {
	// With KMin == KMax the adaptive policy must equal SWk exactly.
	check := func(raw []bool) bool {
		a := NewAdaptiveSW(5, 5)
		s := NewSW(5)
		for _, op := range opsFromBools(raw) {
			if a.Apply(op) != s.Apply(op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveTransitionsPiggyback(t *testing.T) {
	check := func(raw []bool) bool {
		a := NewAdaptiveSW(3, 15)
		for _, op := range opsFromBools(raw) {
			st := a.Apply(op)
			if st.Allocated() && op != sched.Read {
				return false
			}
			if st.Deallocated() && op != sched.Write {
				return false
			}
			if st.HasCopy != a.HasCopy() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveKStaysOddWithinBounds(t *testing.T) {
	check := func(raw []bool) bool {
		a := NewAdaptiveSW(3, 31)
		for _, op := range opsFromBools(raw) {
			a.Apply(op)
			if a.K()%2 == 0 || a.K() < 3 || a.K() > 31 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveReset(t *testing.T) {
	a := NewAdaptiveSW(3, 15)
	seq := sched.MustParse("rrrrrrrrrrrrrrrrrrrrrrrrwwwwwwww")
	first := Run(a, seq)
	a.Reset()
	if a.K() != 3 || a.HasCopy() {
		t.Fatal("reset state wrong")
	}
	second := Run(a, seq)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d differs after reset", i)
		}
	}
}
