package core

import (
	"fmt"

	"mobirep/internal/sched"
)

// Enumerable is implemented by policies with a finite, serializable state
// space. The generic Markov oracle in internal/analytic explores an
// Enumerable's reachable states to compute exact steady-state and
// transient expected costs without any closed form — the strongest
// validation layer for the paper's formulas, and the only exact method
// for variants the paper does not analyze (hysteresis bands, T-family in
// the message model, even-window tie rules).
//
// EWMA is deliberately not Enumerable: its estimate takes unboundedly
// many values, so it is analyzed by simulation only.
type Enumerable interface {
	Policy
	// StateKey serializes the current state; two policies with equal keys
	// behave identically on all futures.
	StateKey() string
	// Clone returns an independent copy in the same state.
	Clone() Enumerable
}

// StateKey implements Enumerable; ST1 has a single state.
func (*ST1) StateKey() string { return "st1" }

// Clone implements Enumerable.
func (*ST1) Clone() Enumerable { return NewST1() }

// StateKey implements Enumerable; ST2 has a single state.
func (*ST2) StateKey() string { return "st2" }

// Clone implements Enumerable.
func (*ST2) Clone() Enumerable { return NewST2() }

// StateKey implements Enumerable: the window contents determine everything
// (the copy is a function of the majority).
func (s *SW) StateKey() string { return s.window.String() }

// Clone implements Enumerable.
func (s *SW) Clone() Enumerable {
	cp := NewSWInitial(s.k, s.initialOp)
	if err := cp.window.LoadBits(s.window.Bits()); err != nil {
		panic(fmt.Sprintf("core: clone window: %v", err))
	}
	cp.hasCopy = s.hasCopy
	return cp
}

// StateKey implements Enumerable: phase plus the consecutive-read count.
func (t *T1) StateKey() string {
	if t.hasCopy {
		return "t1:copy"
	}
	return fmt.Sprintf("t1:%d", t.reads)
}

// Clone implements Enumerable.
func (t *T1) Clone() Enumerable {
	cp := NewT1(t.m)
	cp.reads = t.reads
	cp.hasCopy = t.hasCopy
	return cp
}

// StateKey implements Enumerable: phase plus the consecutive-write count.
func (t *T2) StateKey() string {
	if !t.hasCopy {
		return "t2:nocopy"
	}
	return fmt.Sprintf("t2:%d", t.writes)
}

// Clone implements Enumerable.
func (t *T2) Clone() Enumerable {
	cp := NewT2(t.m)
	cp.writes = t.writes
	cp.hasCopy = t.hasCopy
	return cp
}

// StateKey implements Enumerable; the cache baseline has two states.
func (c *CacheInvalidate) StateKey() string {
	if c.hasCopy {
		return "ci:copy"
	}
	return "ci:nocopy"
}

// Clone implements Enumerable.
func (c *CacheInvalidate) Clone() Enumerable {
	return &CacheInvalidate{hasCopy: c.hasCopy}
}

// EvenSW is a sliding window with an even size, which the paper excludes
// ("for ease of analysis we assume that k is odd"). Ties are possible and
// must be broken by a rule; this variant keeps the current allocation on a
// tie (hysteresis-flavored). It exists for the window-parity ablation:
// the Markov oracle quantifies what the paper's odd-k restriction costs
// or saves.
type EvenSW struct {
	k       int
	window  *Window
	hasCopy bool
}

// NewEvenSW returns a tie-holding sliding window with even size k.
func NewEvenSW(k int) *EvenSW {
	if k <= 0 || k%2 == 1 {
		panic(fmt.Sprintf("core: EvenSW size %d must be even and positive", k))
	}
	return &EvenSW{k: k, window: NewWindow(k, sched.Write)}
}

// Name implements Policy.
func (s *EvenSW) Name() string { return fmt.Sprintf("SWe%d", s.k) }

// HasCopy implements Policy.
func (s *EvenSW) HasCopy() bool { return s.hasCopy }

// Apply implements Policy: strict majorities decide, ties keep the
// current allocation.
func (s *EvenSW) Apply(op sched.Op) Step {
	had := s.hasCopy
	s.window.Push(op)
	// A copy can only be acquired on a read (the data piggybacks on the
	// response) and dropped on a write, exactly as in the odd-k family.
	if op == sched.Read && s.window.Reads() > s.window.Writes() {
		s.hasCopy = true
	}
	if op == sched.Write && s.window.Writes() > s.window.Reads() {
		s.hasCopy = false
	}
	return step(op, had, s.hasCopy, false)
}

// Reset implements Policy.
func (s *EvenSW) Reset() {
	s.window.Fill(sched.Write)
	s.hasCopy = false
}

// StateKey implements Enumerable: window bits plus the allocation (which
// a tie makes path-dependent).
func (s *EvenSW) StateKey() string {
	if s.hasCopy {
		return "c:" + s.window.String()
	}
	return "n:" + s.window.String()
}

// Clone implements Enumerable.
func (s *EvenSW) Clone() Enumerable {
	cp := NewEvenSW(s.k)
	if err := cp.window.LoadBits(s.window.Bits()); err != nil {
		panic(fmt.Sprintf("core: clone window: %v", err))
	}
	cp.hasCopy = s.hasCopy
	return cp
}
