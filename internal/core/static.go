package core

import "mobirep/internal/sched"

// ST1 is the static one-copy allocation method: only the stationary
// computer holds the data item, so every read at the mobile computer is
// remote and every write is free of communication.
type ST1 struct{}

// NewST1 returns the static one-copy policy.
func NewST1() *ST1 { return &ST1{} }

// Name implements Policy.
func (*ST1) Name() string { return "ST1" }

// HasCopy implements Policy; it is always false for ST1.
func (*ST1) HasCopy() bool { return false }

// Apply implements Policy.
func (*ST1) Apply(op sched.Op) Step { return step(op, false, false, false) }

// Reset implements Policy; ST1 is stateless.
func (*ST1) Reset() {}

// ST2 is the static two-copies allocation method: the mobile computer
// always holds a copy, so reads are local and every write is propagated.
type ST2 struct{}

// NewST2 returns the static two-copies policy.
func NewST2() *ST2 { return &ST2{} }

// Name implements Policy.
func (*ST2) Name() string { return "ST2" }

// HasCopy implements Policy; it is always true for ST2.
func (*ST2) HasCopy() bool { return true }

// Apply implements Policy.
func (*ST2) Apply(op sched.Op) Step { return step(op, true, true, false) }

// Reset implements Policy; ST2 is stateless.
func (*ST2) Reset() {}
