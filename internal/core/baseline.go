package core

import (
	"fmt"

	"mobirep/internal/sched"
)

// Baseline policies from the literatures the paper compares against in
// section 8. None of them is the paper's contribution; they exist so the
// experiments can quantify the sliding window against what a caching or
// estimator-based system would do on the same workloads.

// CacheInvalidate is the classic caching discipline of the CDVM
// literature (section 8.2): allocate on every read miss, invalidate on
// every write (the server sends an invalidation instead of data, like
// SW1's delete-request). Its allocation behaviour is identical to SW1 —
// the copy exists exactly when the most recent request was a read — which
// is itself an observation worth demonstrating: SW1 is callback
// invalidation in allocation terms, and the window family generalizes it.
type CacheInvalidate struct {
	hasCopy bool
}

// NewCacheInvalidate returns the cache-and-invalidate baseline.
func NewCacheInvalidate() *CacheInvalidate { return &CacheInvalidate{} }

// Name implements Policy.
func (*CacheInvalidate) Name() string { return "CacheInv" }

// HasCopy implements Policy.
func (c *CacheInvalidate) HasCopy() bool { return c.hasCopy }

// Apply implements Policy.
func (c *CacheInvalidate) Apply(op sched.Op) Step {
	had := c.hasCopy
	if op == sched.Read {
		c.hasCopy = true
		return step(op, had, true, false)
	}
	c.hasCopy = false
	// Invalidation carries no data, like SW1's delete-request.
	return step(op, had, false, had)
}

// Reset implements Policy.
func (c *CacheInvalidate) Reset() { c.hasCopy = false }

// EWMA is an estimator-based allocation method: it tracks the write
// fraction with an exponentially weighted moving average and holds a copy
// while the estimate stays below a threshold band. It is the natural
// "statistical" alternative to the paper's counting window — the window
// weights the last k requests equally and forgets everything older, while
// the EWMA weights all history geometrically. The experiments compare the
// two on expected cost, adaptation lag and worst case (the EWMA has no
// competitive bound: an adversary can pin the estimate at the threshold).
//
// The band [Low, High] adds hysteresis: the copy is dropped only when the
// estimate rises above High and re-acquired (on a read) only when it
// falls below Low. Low = High = 0.5 gives the memoryless analogue of the
// window's majority rule.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]: the weight of the newest
	// request. Small alpha = long memory.
	Alpha float64
	// Low and High bound the hysteresis band on the write-fraction
	// estimate, 0 <= Low <= High <= 1.
	Low, High float64

	estimate float64
	hasCopy  bool
}

// NewEWMA returns an estimator policy with the majority threshold
// (Low = High = 0.5) and the given smoothing factor.
func NewEWMA(alpha float64) *EWMA { return NewEWMABand(alpha, 0.5, 0.5) }

// NewEWMABand returns an estimator policy with a hysteresis band.
func NewEWMABand(alpha, low, high float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: EWMA alpha %v outside (0,1]", alpha))
	}
	if low < 0 || high > 1 || low > high {
		panic(fmt.Sprintf("core: EWMA band [%v,%v] invalid", low, high))
	}
	return &EWMA{Alpha: alpha, Low: low, High: high, estimate: 1}
}

// Name implements Policy.
func (e *EWMA) Name() string {
	if e.Low == e.High {
		return fmt.Sprintf("EWMA(%.2f)", e.Alpha)
	}
	return fmt.Sprintf("EWMA(%.2f,%.2f-%.2f)", e.Alpha, e.Low, e.High)
}

// HasCopy implements Policy.
func (e *EWMA) HasCopy() bool { return e.hasCopy }

// Estimate returns the current write-fraction estimate.
func (e *EWMA) Estimate() float64 { return e.estimate }

// Apply implements Policy. Allocation follows the same piggyback rules as
// the window family: a copy can only be acquired on a read and dropped on
// a write, so transitions always coincide with a message that is being
// sent anyway.
func (e *EWMA) Apply(op sched.Op) Step {
	had := e.hasCopy
	x := 0.0
	if op == sched.Write {
		x = 1
	}
	e.estimate = (1-e.Alpha)*e.estimate + e.Alpha*x

	switch {
	case !had && op == sched.Read && e.estimate < e.Low:
		e.hasCopy = true
	case had && op == sched.Write && e.estimate > e.High:
		e.hasCopy = false
	}
	return step(op, had, e.hasCopy, false)
}

// Reset implements Policy. The estimate starts at 1 (assume write-heavy),
// matching the window family's all-writes initial fill.
func (e *EWMA) Reset() {
	e.estimate = 1
	e.hasCopy = false
}
