package core

import (
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

func TestCacheInvalidateBehaviour(t *testing.T) {
	p := NewCacheInvalidate()
	if p.Name() != "CacheInv" || p.HasCopy() {
		t.Fatal("bad initial state")
	}
	st := p.Apply(sched.Read)
	if !st.Allocated() || !p.HasCopy() {
		t.Fatal("read should cache")
	}
	st = p.Apply(sched.Write)
	if !st.Deallocated() || !st.DataSuppressed {
		t.Fatalf("write should invalidate without data: %+v", st)
	}
	st = p.Apply(sched.Write)
	if st.HadCopy || st.DataSuppressed {
		t.Fatalf("write without copy should be free and unsuppressed: %+v", st)
	}
	p.Reset()
	if p.HasCopy() {
		t.Fatal("reset should drop the copy")
	}
}

// TestCacheInvalidateStepEqualsSW1 proves the identity step by step, not
// just in expectation: on any schedule, CacheInvalidate and SW1 produce
// identical step traces.
func TestCacheInvalidateStepEqualsSW1(t *testing.T) {
	check := func(raw []bool) bool {
		ci, sw := NewCacheInvalidate(), NewSW(1)
		for _, op := range opsFromBools(raw) {
			a, b := ci.Apply(op), sw.Apply(op)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewEWMA(0) },
		func() { NewEWMA(1.5) },
		func() { NewEWMABand(0.5, -0.1, 0.5) },
		func() { NewEWMABand(0.5, 0.6, 0.4) },
		func() { NewEWMABand(0.5, 0.4, 1.2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEWMANames(t *testing.T) {
	if NewEWMA(0.25).Name() != "EWMA(0.25)" {
		t.Fatalf("name = %q", NewEWMA(0.25).Name())
	}
	if NewEWMABand(0.1, 0.4, 0.6).Name() != "EWMA(0.10,0.40-0.60)" {
		t.Fatalf("name = %q", NewEWMABand(0.1, 0.4, 0.6).Name())
	}
}

func TestEWMAEstimateTracksWriteFraction(t *testing.T) {
	p := NewEWMA(0.1)
	if p.Estimate() != 1 {
		t.Fatalf("initial estimate = %v", p.Estimate())
	}
	for i := 0; i < 200; i++ {
		p.Apply(sched.Read)
	}
	if p.Estimate() > 0.01 {
		t.Fatalf("estimate after all reads = %v", p.Estimate())
	}
	if !p.HasCopy() {
		t.Fatal("read-heavy stream should allocate")
	}
	for i := 0; i < 200; i++ {
		p.Apply(sched.Write)
	}
	if p.Estimate() < 0.99 {
		t.Fatalf("estimate after all writes = %v", p.Estimate())
	}
	if p.HasCopy() {
		t.Fatal("write-heavy stream should deallocate")
	}
}

func TestEWMATransitionsPiggyback(t *testing.T) {
	check := func(raw []bool) bool {
		p := NewEWMA(0.3)
		for _, op := range opsFromBools(raw) {
			st := p.Apply(op)
			if st.Allocated() && op != sched.Read {
				return false
			}
			if st.Deallocated() && op != sched.Write {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAHysteresisBand(t *testing.T) {
	p := NewEWMABand(0.5, 0.2, 0.8)
	// Drive estimate low: allocate.
	for i := 0; i < 20; i++ {
		p.Apply(sched.Read)
	}
	if !p.HasCopy() {
		t.Fatal("should hold a copy after reads")
	}
	// One write pushes the estimate to ~0.5 — inside the band: keep.
	p.Apply(sched.Write)
	if !p.HasCopy() {
		t.Fatal("single write inside the band should not deallocate")
	}
	// More writes push above 0.8: drop.
	p.Apply(sched.Write)
	p.Apply(sched.Write)
	if p.HasCopy() {
		t.Fatal("write-majority estimate above High should deallocate")
	}
}

func TestEWMAReset(t *testing.T) {
	p := NewEWMA(0.5)
	seq := sched.MustParse("rrrrwwrr")
	first := Run(p, seq)
	p.Reset()
	second := Run(p, seq)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d differs after reset", i)
		}
	}
}

func TestEvenSWTieHolding(t *testing.T) {
	p := NewEvenSW(2)
	if p.Name() != "SWe2" {
		t.Fatalf("name = %q", p.Name())
	}
	// Window starts [w w], no copy. One read: [w r] tie -> keep (no copy).
	st := p.Apply(sched.Read)
	if st.HasCopy {
		t.Fatal("tie should hold the previous allocation")
	}
	// Second read: [r r] majority -> allocate.
	st = p.Apply(sched.Read)
	if !st.Allocated() {
		t.Fatal("read majority should allocate")
	}
	// One write: [r w] tie -> keep the copy.
	st = p.Apply(sched.Write)
	if st.Deallocated() {
		t.Fatal("tie should hold the copy")
	}
	// Second write: [w w] -> deallocate.
	st = p.Apply(sched.Write)
	if !st.Deallocated() {
		t.Fatal("write majority should deallocate")
	}
	p.Reset()
	if p.HasCopy() {
		t.Fatal("reset state wrong")
	}
}

func TestEvenSWPanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEvenSW(3)
}

// TestCloneIndependence: a clone must not share mutable state with its
// original.
func TestCloneIndependence(t *testing.T) {
	policies := []Enumerable{
		NewST1(), NewST2(), NewSW(5), NewT1(3), NewT2(3),
		NewCacheInvalidate(), NewEvenSW(4),
	}
	seq := sched.MustParse("rrwrw")
	for _, p := range policies {
		for _, op := range seq {
			p.Apply(op)
		}
		cp := p.Clone()
		if cp.StateKey() != p.StateKey() {
			t.Fatalf("%s: clone key %q != original %q", p.Name(), cp.StateKey(), p.StateKey())
		}
		// Diverge the clone; the original must be unaffected.
		before := p.StateKey()
		cp.Apply(sched.Write)
		cp.Apply(sched.Write)
		cp.Apply(sched.Write)
		if p.StateKey() != before {
			t.Fatalf("%s: mutating the clone changed the original", p.Name())
		}
	}
}

// TestStateKeyDeterminesBehaviour: equal keys must imply equal futures.
func TestStateKeyDeterminesBehaviour(t *testing.T) {
	mk := func() []Enumerable {
		return []Enumerable{NewSW(3), NewT1(4), NewT2(4), NewEvenSW(4), NewCacheInvalidate()}
	}
	check := func(rawA, rawB []bool) bool {
		as, bs := mk(), mk()
		for i := range as {
			for _, op := range opsFromBools(rawA) {
				as[i].Apply(op)
			}
			for _, op := range opsFromBools(rawB) {
				bs[i].Apply(op)
			}
			if as[i].StateKey() != bs[i].StateKey() {
				continue // different states: nothing to check
			}
			// Same key: the next steps must be identical.
			for _, op := range []sched.Op{sched.Read, sched.Write} {
				ca, cb := as[i].Clone(), bs[i].Clone()
				if ca.Apply(op) != cb.Apply(op) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
