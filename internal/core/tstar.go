package core

import (
	"fmt"

	"mobirep/internal/sched"
)

// T1 is the T1m algorithm of section 7.1: a competitive modification of
// the static one-copy method. It uses the one-copy scheme until m
// consecutive reads occur, then switches to the two-copies scheme until
// the next write, then reverts. The paper shows it is (m+1)-competitive
// with expected cost (1-theta) + (1-theta)^m (2*theta - 1) in the
// connection model — only slightly above ST1's.
//
// In the one-copy phase the SC observes every relevant request (remote
// reads and its own writes), so it can count consecutive reads; the copy
// rides the response of the m-th one. Any write ends the two-copies
// phase, and since the write originates at the SC, the SC already knows
// the copy is being dropped and sends a bare delete-request
// (DataSuppressed), as in SW1.
type T1 struct {
	m       int
	reads   int // consecutive reads observed while in the one-copy phase
	hasCopy bool
}

// NewT1 returns T1m. m must be positive.
func NewT1(m int) *T1 {
	if m <= 0 {
		panic(fmt.Sprintf("core: T1 threshold %d must be positive", m))
	}
	return &T1{m: m}
}

// Name implements Policy.
func (t *T1) Name() string { return fmt.Sprintf("T1(%d)", t.m) }

// M returns the consecutive-read threshold.
func (t *T1) M() int { return t.m }

// HasCopy implements Policy.
func (t *T1) HasCopy() bool { return t.hasCopy }

// Apply implements Policy.
func (t *T1) Apply(op sched.Op) Step {
	had := t.hasCopy
	if t.hasCopy {
		if op == sched.Write {
			// Any write ends the two-copies phase.
			t.hasCopy = false
			t.reads = 0
			return step(op, had, false, true)
		}
		return step(op, had, true, false)
	}
	if op == sched.Read {
		t.reads++
		if t.reads == t.m {
			t.hasCopy = true
			t.reads = 0
		}
	} else {
		t.reads = 0
	}
	return step(op, had, t.hasCopy, false)
}

// Reset implements Policy.
func (t *T1) Reset() {
	t.reads = 0
	t.hasCopy = false
}

// T2 is the symmetric T2m algorithm sketched in section 7.1: it uses the
// two-copies scheme until m consecutive writes occur, then switches to the
// one-copy scheme until the next read, then reverts. By the symmetry
// argument of the paper it is (m+1)-competitive with expected cost
// theta + theta^m (1 - 2*theta) in the connection model.
//
// While the MC holds a copy its reads are local, so only the MC can count
// "consecutive writes" correctly; the m-th consecutive write is therefore
// propagated normally and followed by the MC's deallocation request
// (DataSuppressed is false). The copy is re-allocated on the first read of
// the one-copy phase, riding that read's response.
type T2 struct {
	m       int
	writes  int // consecutive writes observed while in the two-copies phase
	hasCopy bool
}

// NewT2 returns T2m. m must be positive.
func NewT2(m int) *T2 {
	if m <= 0 {
		panic(fmt.Sprintf("core: T2 threshold %d must be positive", m))
	}
	return &T2{m: m, hasCopy: true}
}

// Name implements Policy.
func (t *T2) Name() string { return fmt.Sprintf("T2(%d)", t.m) }

// M returns the consecutive-write threshold.
func (t *T2) M() int { return t.m }

// HasCopy implements Policy.
func (t *T2) HasCopy() bool { return t.hasCopy }

// Apply implements Policy.
func (t *T2) Apply(op sched.Op) Step {
	had := t.hasCopy
	if t.hasCopy {
		if op == sched.Write {
			t.writes++
			if t.writes == t.m {
				t.hasCopy = false
				t.writes = 0
			}
		} else {
			t.writes = 0
		}
		return step(op, had, t.hasCopy, false)
	}
	if op == sched.Read {
		// First read of the one-copy phase re-allocates; the copy rides
		// the read response.
		t.hasCopy = true
	}
	return step(op, had, t.hasCopy, false)
}

// Reset implements Policy.
func (t *T2) Reset() {
	t.writes = 0
	t.hasCopy = true
}
