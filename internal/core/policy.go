// Package core implements the paper's data allocation algorithms as pure,
// deterministic state machines: the static methods ST1 and ST2, the
// sliding-window family SWk (with the paper's SW1 delete-request
// optimization), and the section-7.1 competitive modifications T1m and
// T2m.
//
// A Policy decides, online, whether the mobile computer (MC) holds a copy
// of the data item. It is deliberately free of any notion of cost or
// transport: the cost models in internal/cost price each step, and
// internal/replica turns the same decisions into real protocol messages.
// Keeping the three layers separate lets the simulator, the analytic
// cross-checks, and the distributed protocol share one implementation of
// the decision logic.
package core

import "mobirep/internal/sched"

// Step describes what happened when a policy processed one request. The
// cost models price a Step; the replica protocol turns it into messages.
type Step struct {
	// Op is the request that was processed.
	Op sched.Op
	// HadCopy reports whether the MC held a copy immediately before the
	// request.
	HadCopy bool
	// HasCopy reports whether the MC holds a copy immediately after the
	// request.
	HasCopy bool
	// DataSuppressed is set on a write when the stationary computer (SC)
	// sends only a delete-request instead of propagating the new value.
	// The paper's SW1 does this on every write that finds a copy, and T1m
	// does it on the write that ends its two-copies phase; both are valid
	// only because the SC already knows the MC is about to drop its copy.
	DataSuppressed bool
}

// Allocated reports whether this step allocated a copy at the MC. Per the
// paper, allocation always coincides with a read (the copy piggybacks on
// the read response).
func (s Step) Allocated() bool { return !s.HadCopy && s.HasCopy }

// Deallocated reports whether this step dropped the MC's copy.
func (s Step) Deallocated() bool { return s.HadCopy && !s.HasCopy }

// Policy is an online data allocation algorithm for a single data item and
// a single mobile computer. Implementations are deterministic and are not
// safe for concurrent use.
type Policy interface {
	// Name identifies the algorithm, e.g. "ST1", "SW5", "T1(7)".
	Name() string
	// HasCopy reports whether the MC currently holds a copy.
	HasCopy() bool
	// Apply processes the next relevant request and returns what happened.
	Apply(op sched.Op) Step
	// Reset returns the policy to its initial state.
	Reset()
}

// Run feeds an entire schedule through p and returns the step trace.
// It is a convenience for tests and small experiments; the simulator
// streams instead to avoid materializing traces.
func Run(p Policy, s sched.Schedule) []Step {
	steps := make([]Step, len(s))
	for i, op := range s {
		steps[i] = p.Apply(op)
	}
	return steps
}

// step is a helper for implementations: it fills the bookkeeping fields.
func step(op sched.Op, had, has, suppressed bool) Step {
	return Step{Op: op, HadCopy: had, HasCopy: has, DataSuppressed: suppressed}
}
