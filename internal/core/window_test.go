package core

import (
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

func TestNewWindowFill(t *testing.T) {
	w := NewWindow(5, sched.Write)
	if w.Size() != 5 || w.Writes() != 5 || w.Reads() != 0 {
		t.Fatalf("write-filled window: size=%d writes=%d reads=%d", w.Size(), w.Writes(), w.Reads())
	}
	if w.ReadMajority() {
		t.Fatal("write-filled window should not have read majority")
	}
	w = NewWindow(3, sched.Read)
	if w.Writes() != 0 || !w.ReadMajority() {
		t.Fatalf("read-filled window: writes=%d", w.Writes())
	}
}

func TestNewWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0, sched.Read)
}

func TestWindowPushTracksLastK(t *testing.T) {
	w := NewWindow(3, sched.Write)
	seq := sched.MustParse("rrwrrrwwr")
	for i, op := range seq {
		w.Push(op)
		// Reference: the last min(i+1,3) ops of seq, padded with writes.
		wantWrites := 0
		for j := 0; j < 3; j++ {
			idx := i - j
			if idx < 0 || seq[idx] == sched.Write {
				wantWrites++
			}
		}
		if w.Writes() != wantWrites {
			t.Fatalf("after %d ops: writes=%d want %d (window %q)", i+1, w.Writes(), wantWrites, w.String())
		}
	}
}

func TestWindowBitsOldestFirst(t *testing.T) {
	w := NewWindow(3, sched.Write)
	w.Push(sched.Read)  // window w w r
	w.Push(sched.Write) // window w r w
	w.Push(sched.Read)  // window r w r
	w.Push(sched.Read)  // window w r r
	if got := w.String(); got != "wrr" {
		t.Fatalf("window bits = %q, want wrr", got)
	}
}

func TestWindowLoadBitsRoundTrip(t *testing.T) {
	check := func(raw []bool, extra []bool) bool {
		if len(raw) == 0 {
			return true
		}
		bits := make(sched.Schedule, len(raw))
		for i, b := range raw {
			if b {
				bits[i] = sched.Write
			}
		}
		w := NewWindow(len(bits), sched.Read)
		if err := w.LoadBits(bits); err != nil {
			return false
		}
		if w.String() != bits.String() {
			return false
		}
		// After arbitrary pushes, reloading must still round-trip.
		for _, b := range extra {
			op := sched.Read
			if b {
				op = sched.Write
			}
			w.Push(op)
		}
		if err := w.LoadBits(bits); err != nil {
			return false
		}
		return w.String() == bits.String()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowLoadBitsSizeMismatch(t *testing.T) {
	w := NewWindow(3, sched.Read)
	if err := w.LoadBits(sched.MustParse("rw")); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestWindowFill(t *testing.T) {
	w := NewWindow(5, sched.Write)
	w.Push(sched.Read)
	w.Push(sched.Read)
	w.Fill(sched.Read)
	if w.Writes() != 0 || w.String() != "rrrrr" {
		t.Fatalf("after Fill(Read): %q writes=%d", w.String(), w.Writes())
	}
	w.Fill(sched.Write)
	if w.Writes() != 5 {
		t.Fatalf("after Fill(Write): writes=%d", w.Writes())
	}
}

func TestWindowCountsConsistent(t *testing.T) {
	check := func(raw []bool) bool {
		w := NewWindow(7, sched.Write)
		for _, b := range raw {
			op := sched.Read
			if b {
				op = sched.Write
			}
			w.Push(op)
			bits := w.Bits()
			r, wr := bits.Counts()
			if r != w.Reads() || wr != w.Writes() {
				return false
			}
			if w.ReadMajority() != (r > wr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWindowBitsAllRotations pins the two-pass Bits unroll against a
// reference modulo walk for every head position at several sizes.
func TestWindowBitsAllRotations(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8, 95} {
		w := NewWindow(k, sched.Write)
		for push := 0; push < 2*k+3; push++ {
			ref := make(sched.Schedule, k)
			for i := range ref {
				if w.bits[(w.head+i)%k] {
					ref[i] = sched.Write
				}
			}
			got := w.Bits()
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("k=%d head=%d: Bits()[%d] = %v, want %v", k, w.head, i, got[i], ref[i])
				}
			}
			op := sched.Read
			if push%3 == 0 {
				op = sched.Write
			}
			w.Push(op)
		}
	}
}
