package core

import (
	"fmt"

	"mobirep/internal/sched"
)

// SW is the sliding-window allocation method SWk of section 4: after every
// relevant request the window of the last k requests is updated, and the
// mobile computer holds a copy exactly when reads are the strict majority
// of the window.
//
// For k == 1 the constructor applies the paper's optimization: a write
// that finds a copy at the MC will certainly deallocate it (the window
// consists of just that write), so the SC sends a short delete-request
// instead of propagating the data. NewSW therefore returns the algorithm
// the paper calls SW1 when k is 1.
type SW struct {
	k          int
	window     *Window
	hasCopy    bool
	initialOp  sched.Op
	initialCpy bool
}

// NewSW returns the sliding-window policy with window size k. The paper
// assumes k is odd so that read/write majorities are always strict; the
// constructor enforces it. The initial window is all writes (no copy at
// the MC), matching a freshly connected mobile computer.
func NewSW(k int) *SW {
	return NewSWInitial(k, sched.Write)
}

// NewSWInitial returns SWk with the window pre-filled with fill, so the
// MC starts with a copy when fill is a read. Experiments use this to show
// that the initial window only affects a vanishing transient.
func NewSWInitial(k int, fill sched.Op) *SW {
	if k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("core: SW window size %d must be odd and positive", k))
	}
	w := NewWindow(k, fill)
	return &SW{
		k:          k,
		window:     w,
		hasCopy:    w.ReadMajority(),
		initialOp:  fill,
		initialCpy: w.ReadMajority(),
	}
}

// Name implements Policy; it returns "SW1", "SW3", ...
func (s *SW) Name() string { return fmt.Sprintf("SW%d", s.k) }

// K returns the window size.
func (s *SW) K() int { return s.k }

// HasCopy implements Policy.
func (s *SW) HasCopy() bool { return s.hasCopy }

// Window exposes the underlying window for protocol handoff and for the
// white-box invariant tests.
func (s *SW) Window() *Window { return s.window }

// Apply implements Policy. It slides the window and re-derives the
// allocation from the new majority, exactly as section 4 prescribes:
//
//   - read majority and no copy: allocate (the last request was
//     necessarily a read, and the copy rides its response);
//   - write majority and a copy: deallocate;
//   - otherwise: keep waiting.
func (s *SW) Apply(op sched.Op) Step {
	had := s.hasCopy
	s.window.Push(op)
	s.hasCopy = s.window.ReadMajority()

	// SW1 optimization: a write that finds a copy is sent as a bare
	// delete-request, never as a data propagation.
	suppressed := s.k == 1 && op == sched.Write && had
	return step(op, had, s.hasCopy, suppressed)
}

// Reset implements Policy.
func (s *SW) Reset() {
	s.window.Fill(s.initialOp)
	s.hasCopy = s.initialCpy
}
