package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mobirep/internal/core"
	"mobirep/internal/sched"
)

func mkStep(op sched.Op, had, has, suppressed bool) core.Step {
	return core.Step{Op: op, HadCopy: had, HasCopy: has, DataSuppressed: suppressed}
}

func TestConnectionCosts(t *testing.T) {
	m := NewConnection()
	if m.Name() != "connection" {
		t.Fatalf("name = %q", m.Name())
	}
	cases := []struct {
		st   core.Step
		want float64
	}{
		{mkStep(sched.Read, true, true, false), 0},   // local read
		{mkStep(sched.Read, false, false, false), 1}, // remote read
		{mkStep(sched.Read, false, true, false), 1},  // remote read + allocate
		{mkStep(sched.Write, false, false, false), 0},
		{mkStep(sched.Write, true, true, false), 1},  // propagation
		{mkStep(sched.Write, true, false, false), 1}, // propagation + dealloc
		{mkStep(sched.Write, true, false, true), 1},  // SW1 delete-request
	}
	for i, c := range cases {
		if got := m.StepCost(c.st); got != c.want {
			t.Errorf("case %d: cost = %v, want %v", i, got, c.want)
		}
	}
}

func TestMessageCosts(t *testing.T) {
	const w = 0.3
	m := NewMessage(w)
	if !strings.Contains(m.Name(), "0.30") {
		t.Fatalf("name = %q", m.Name())
	}
	cases := []struct {
		st   core.Step
		want float64
	}{
		{mkStep(sched.Read, true, true, false), 0},
		{mkStep(sched.Read, false, false, false), 1 + w},
		{mkStep(sched.Read, false, true, false), 1 + w}, // allocation piggybacks
		{mkStep(sched.Write, false, false, false), 0},
		{mkStep(sched.Write, true, true, false), 1},
		{mkStep(sched.Write, true, false, false), 1 + w}, // dealloc control msg
		{mkStep(sched.Write, true, false, true), w},      // SW1 suppressed
	}
	for i, c := range cases {
		if got := m.StepCost(c.st); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: cost = %v, want %v", i, got, c.want)
		}
	}
}

func TestMessagePanicsOnBadOmega(t *testing.T) {
	for _, w := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMessage(%v) did not panic", w)
				}
			}()
			NewMessage(w)
		}()
	}
}

func TestMessageOmegaBoundsValid(t *testing.T) {
	// omega = 0 and omega = 1 are both legal per the paper.
	NewMessage(0)
	NewMessage(1)
}

func TestConnectionEqualsMessageOmegaZeroForUnsuppressed(t *testing.T) {
	// With omega = 0 and no suppressed writes, the two models coincide.
	conn, msg := NewConnection(), NewMessage(0)
	check := func(raw []bool, hadRaw []bool) bool {
		for i, b := range raw {
			op := sched.Read
			if b {
				op = sched.Write
			}
			had := i < len(hadRaw) && hadRaw[i]
			st := mkStep(op, had, had, false)
			if conn.StepCost(st) != msg.StepCost(st) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalMatchesPolicyRun(t *testing.T) {
	p := core.NewSW(3)
	seq := sched.MustParse("rrrwwrwrrrwww")
	steps := core.Run(p, seq)
	m := NewMessage(0.5)
	want := 0.0
	for _, st := range steps {
		want += m.StepCost(st)
	}
	if got := Total(m, steps); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

func TestLedgerBreakdown(t *testing.T) {
	m := NewMessage(0.5)
	var l Ledger
	l.Observe(m, mkStep(sched.Read, false, true, false))  // remote read: 1 ctrl + 1 data
	l.Observe(m, mkStep(sched.Read, true, true, false))   // local read: nothing
	l.Observe(m, mkStep(sched.Write, true, true, false))  // propagation: 1 data
	l.Observe(m, mkStep(sched.Write, true, false, false)) // propagation + dealloc
	l.Observe(m, mkStep(sched.Write, true, false, true))  // suppressed dealloc
	l.Observe(m, mkStep(sched.Write, false, false, false))

	if l.Steps != 6 {
		t.Fatalf("steps = %d", l.Steps)
	}
	if l.DataMessages != 3 {
		t.Fatalf("data = %d, want 3", l.DataMessages)
	}
	if l.ControlMessages != 3 {
		t.Fatalf("control = %d, want 3", l.ControlMessages)
	}
	if l.Connections != 4 {
		t.Fatalf("connections = %d, want 4", l.Connections)
	}
	want := (1 + 0.5) + 0 + 1 + (1 + 0.5) + 0.5 + 0
	if math.Abs(l.Total-want) > 1e-12 {
		t.Fatalf("total = %v, want %v", l.Total, want)
	}
	if math.Abs(l.PerStep()-want/6) > 1e-12 {
		t.Fatalf("per-step = %v", l.PerStep())
	}
	if !strings.Contains(l.String(), "steps=6") {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestLedgerEmptyPerStep(t *testing.T) {
	var l Ledger
	if l.PerStep() != 0 {
		t.Fatal("empty ledger per-step should be 0")
	}
}

// TestLedgerCostDecomposition checks that for any step sequence, the
// ledger's total equals data + omega*control in the message model — the
// ledger's breakdown must be exactly the model's pricing.
func TestLedgerCostDecomposition(t *testing.T) {
	m := NewMessage(0.37)
	policies := []core.Policy{core.NewSW(1), core.NewSW(5), core.NewT1(3), core.NewT2(3), core.NewST1(), core.NewST2()}
	for _, p := range policies {
		p := p
		check := func(raw []bool) bool {
			p.Reset()
			var l Ledger
			for _, b := range raw {
				op := sched.Read
				if b {
					op = sched.Write
				}
				l.Observe(m, p.Apply(op))
			}
			want := float64(l.DataMessages) + m.Omega*float64(l.ControlMessages)
			return math.Abs(l.Total-want) < 1e-9
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

// TestLedgerConnectionDecomposition does the same for the connection
// model: total cost must equal the connection count.
func TestLedgerConnectionDecomposition(t *testing.T) {
	m := NewConnection()
	p := core.NewSW(7)
	check := func(raw []bool) bool {
		p.Reset()
		var l Ledger
		for _, b := range raw {
			op := sched.Read
			if b {
				op = sched.Write
			}
			l.Observe(m, p.Apply(op))
		}
		return math.Abs(l.Total-float64(l.Connections)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
