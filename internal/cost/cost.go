// Package cost implements the paper's two communication cost models and
// the ledgers used to account for them.
//
// The connection model (cellular-style charging) prices each request in
// whole connections: a remote read is one connection (request and response
// ride the same call), a propagated write is one connection, and local
// operations are free.
//
// The message model (packet-radio-style charging) distinguishes data
// messages (cost 1) from control messages (cost omega in [0,1]): a remote
// read needs a control request plus a data response (1+omega), a
// propagated write is one data message, a write answered by deallocation
// additionally carries the delete-request control message, and SW1's
// suppressed writes send only the delete-request (omega).
package cost

import (
	"fmt"

	"mobirep/internal/core"
	"mobirep/internal/sched"
)

// Model prices a single policy step.
type Model interface {
	// Name identifies the model for reports, e.g. "connection" or
	// "message(ω=0.50)".
	Name() string
	// StepCost returns the communication cost the given step incurs.
	StepCost(st core.Step) float64
}

// Connection is the connection (time-based) cost model of section 3.
type Connection struct{}

// NewConnection returns the connection cost model.
func NewConnection() Connection { return Connection{} }

// Name implements Model.
func (Connection) Name() string { return "connection" }

// StepCost implements Model. Every remote read and every write that finds
// a copy at the MC costs exactly one connection; the deallocation
// indication (or SW1's delete-request) rides that same connection, so no
// step costs more than 1.
func (Connection) StepCost(st core.Step) float64 {
	if st.Op == sched.Read {
		if st.HadCopy {
			return 0
		}
		return 1
	}
	if st.HadCopy {
		return 1
	}
	return 0
}

// Message is the message cost model of section 3 with control/data cost
// ratio Omega.
type Message struct {
	// Omega is the cost of a control message relative to a data message;
	// the paper constrains it to [0, 1].
	Omega float64
}

// NewMessage returns the message cost model with the given omega. It
// panics if omega is outside [0, 1], mirroring the paper's assumption that
// control messages are never longer than data messages.
func NewMessage(omega float64) Message {
	if omega < 0 || omega > 1 {
		panic(fmt.Sprintf("cost: omega %v outside [0,1]", omega))
	}
	return Message{Omega: omega}
}

// Name implements Model.
func (m Message) Name() string { return fmt.Sprintf("message(ω=%.2f)", m.Omega) }

// StepCost implements Model.
func (m Message) StepCost(st core.Step) float64 {
	if st.Op == sched.Read {
		if st.HadCopy {
			return 0
		}
		// Control request to the SC plus the data response. A copy
		// allocated by this read piggybacks on the response for free.
		return 1 + m.Omega
	}
	// Write.
	if !st.HadCopy {
		return 0
	}
	switch {
	case st.DataSuppressed:
		// SW1 (and T1m's phase exit): only the delete-request is sent.
		return m.Omega
	case st.Deallocated():
		// Data propagation plus the MC's delete-request back.
		return 1 + m.Omega
	default:
		// Plain propagation of the new value.
		return 1
	}
}

// Total prices a whole step trace under the model.
func Total(m Model, steps []core.Step) float64 {
	sum := 0.0
	for _, st := range steps {
		sum += m.StepCost(st)
	}
	return sum
}

// Ledger accumulates cost with a breakdown by message kind, so the
// distributed protocol's metering and the simulator can be compared
// component by component.
type Ledger struct {
	// Steps is the number of priced steps.
	Steps int
	// Total is the accumulated cost.
	Total float64
	// DataMessages counts data-bearing transmissions (read responses and
	// write propagations).
	DataMessages int
	// ControlMessages counts control transmissions (read requests and
	// delete-requests).
	ControlMessages int
	// Connections counts connection-model connections (remote reads and
	// writes that found a copy).
	Connections int
}

// Observe prices st under m and folds it into the ledger.
func (l *Ledger) Observe(m Model, st core.Step) {
	l.Steps++
	l.Total += m.StepCost(st)
	if st.Op == sched.Read {
		if !st.HadCopy {
			l.Connections++
			l.ControlMessages++ // the read request
			l.DataMessages++    // the response
		}
		return
	}
	if !st.HadCopy {
		return
	}
	l.Connections++
	if !st.DataSuppressed {
		l.DataMessages++
	}
	if st.Deallocated() {
		l.ControlMessages++ // the delete-request
	}
}

// PerStep returns the average cost per priced step.
func (l *Ledger) PerStep() float64 {
	if l.Steps == 0 {
		return 0
	}
	return l.Total / float64(l.Steps)
}

// String renders the ledger for reports.
func (l *Ledger) String() string {
	return fmt.Sprintf("steps=%d total=%.3f per-step=%.5f data=%d control=%d conns=%d",
		l.Steps, l.Total, l.PerStep(), l.DataMessages, l.ControlMessages, l.Connections)
}
