// Package multi implements the section 7.2 extension: allocation for
// operations that read or write several objects at once.
//
// Requests are classified by (kind, object set); each class has its own
// Poisson frequency. Under an allocation A (the set of objects replicated
// at the mobile computer), a read class S needs a connection unless S is
// entirely cached (S ⊆ A), and a write class S needs one exactly when it
// touches any cached object (S ∩ A ≠ ∅) — multiple data items travel in
// one connection, as the paper assumes. The package provides the exact
// optimal static allocation by subset enumeration (the paper's method
// generalized to any object count), a local-search heuristic for large
// object counts, and the window-based dynamic method the paper sketches:
// estimate class frequencies from a window of recent operations and
// periodically re-solve.
package multi

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Mask is a set of objects, one bit per object id (0-based, up to 64).
type Mask uint64

// NewMask returns the set containing the given object ids.
func NewMask(ids ...int) Mask {
	var m Mask
	for _, id := range ids {
		if id < 0 || id >= 64 {
			panic(fmt.Sprintf("multi: object id %d outside [0,64)", id))
		}
		m |= 1 << id
	}
	return m
}

// Has reports whether object id is in the set.
func (m Mask) Has(id int) bool { return m>>Mask(id)&1 == 1 }

// SubsetOf reports whether every object of m is in o.
func (m Mask) SubsetOf(o Mask) bool { return m&^o == 0 }

// Intersects reports whether the sets share an object.
func (m Mask) Intersects(o Mask) bool { return m&o != 0 }

// Count returns the number of objects in the set.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// String renders the set like "{0,2,5}".
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for id := 0; id < 64; id++ {
		if m.Has(id) {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", id)
			first = false
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Kind is the operation kind.
type Kind uint8

const (
	// Read is a (possibly joint) read issued at the mobile computer.
	Read Kind = iota
	// Write is a (possibly joint) write issued at the stationary computer.
	Write
)

// Class identifies a request class: the kind plus the exact object set the
// operation touches.
type Class struct {
	Kind    Kind
	Objects Mask
}

// Op is one multi-object request.
type Op struct {
	Kind    Kind
	Objects Mask
}

// Class returns the op's class.
func (o Op) Class() Class { return Class{Kind: o.Kind, Objects: o.Objects} }

// FreqTable maps request classes to their relative frequencies (the
// paper's lambda values). Frequencies need not be normalized; costs are
// always reported per operation.
type FreqTable map[Class]float64

// Classes returns the table's classes in a canonical order (by kind, then
// object set). Every float accumulation over the table goes through this:
// map iteration order is randomized, and summing frequencies in a different
// order each run perturbs the low bits, which is enough to flip near-tie
// allocation choices and the sign of ~0 error percentages in reports.
func (f FreqTable) Classes() []Class {
	cs := make([]Class, 0, len(f))
	for c := range f {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Kind != cs[j].Kind {
			return cs[i].Kind < cs[j].Kind
		}
		return cs[i].Objects < cs[j].Objects
	})
	return cs
}

// Total returns the sum of all frequencies.
func (f FreqTable) Total() float64 {
	sum := 0.0
	for _, c := range f.Classes() {
		sum += f[c]
	}
	return sum
}

// Objects returns the number of objects referenced, i.e. one past the
// highest object id seen.
func (f FreqTable) Objects() int {
	max := 0
	for c := range f {
		for id := 63; id >= max; id-- {
			if c.Objects.Has(id) {
				max = id + 1
				break
			}
		}
	}
	return max
}

// CostModel prices one operation class under a given allocation.
type CostModel interface {
	// OpCost returns the cost of one operation of the given class when
	// the mobile computer caches exactly the objects in alloc.
	OpCost(c Class, alloc Mask) float64
	// Name identifies the model in reports.
	Name() string
}

// ConnCost is the connection model generalized to joint operations:
// a read costs one connection unless fully cached; a write costs one
// connection when it touches any cached object (all items ride one
// connection).
type ConnCost struct{}

// Name implements CostModel.
func (ConnCost) Name() string { return "connection" }

// OpCost implements CostModel.
func (ConnCost) OpCost(c Class, alloc Mask) float64 {
	if c.Kind == Read {
		if c.Objects.SubsetOf(alloc) {
			return 0
		}
		return 1
	}
	if c.Objects.Intersects(alloc) {
		return 1
	}
	return 0
}

// MsgCost is the message model generalized to joint operations: a read
// that is not fully cached needs one control request plus one data
// response (1 + omega); a write touching cached objects needs one data
// propagation.
type MsgCost struct {
	// Omega is the control/data cost ratio in [0, 1].
	Omega float64
}

// Name implements CostModel.
func (m MsgCost) Name() string { return fmt.Sprintf("message(ω=%.2f)", m.Omega) }

// OpCost implements CostModel.
func (m MsgCost) OpCost(c Class, alloc Mask) float64 {
	if c.Kind == Read {
		if c.Objects.SubsetOf(alloc) {
			return 0
		}
		return 1 + m.Omega
	}
	if c.Objects.Intersects(alloc) {
		return 1
	}
	return 0
}

// ExpectedCost returns the expected cost per operation of allocation alloc
// under the frequency table — the section 7.2 formula generalized to any
// model. It returns 0 for an empty table.
func ExpectedCost(f FreqTable, alloc Mask, m CostModel) float64 {
	total := f.Total()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range f.Classes() {
		sum += f[c] * m.OpCost(c, alloc)
	}
	return sum / total
}

// OptimalStatic enumerates all 2^n allocations over n objects and returns
// the cheapest one with its expected cost per operation. It panics for
// n > 24 — use Greedy beyond that.
func OptimalStatic(f FreqTable, n int, m CostModel) (Mask, float64) {
	if n < 0 || n > 24 {
		panic(fmt.Sprintf("multi: OptimalStatic enumeration limited to 24 objects, got %d", n))
	}
	bestAlloc, bestCost := Mask(0), ExpectedCost(f, 0, m)
	for a := Mask(1); a < 1<<n; a++ {
		if c := ExpectedCost(f, a, m); c < bestCost {
			bestAlloc, bestCost = a, c
		}
	}
	return bestAlloc, bestCost
}

// Greedy approximates OptimalStatic with steepest-descent local search
// over single-object flips, run from three starting points: the empty
// allocation, the full allocation, and a per-object heuristic (cache each
// object whose read mass exceeds its write mass). Multiple starts matter
// because joint operations make the objective non-separable — from the
// empty set, caching one of two jointly-read objects helps nothing on its
// own — while from the full set the same instance descends correctly.
// Greedy never beats OptimalStatic; tests quantify the residual gap on
// random joint instances.
func Greedy(f FreqTable, n int, m CostModel) (Mask, float64) {
	full := Mask(0)
	if n > 0 {
		full = Mask(1)<<n - 1
	}
	bestAlloc, bestCost := descend(f, 0, n, m)
	for _, start := range []Mask{full, heuristicStart(f, n)} {
		if a, c := descend(f, start, n, m); c < bestCost {
			bestAlloc, bestCost = a, c
		}
	}
	return bestAlloc, bestCost
}

// descend runs steepest-descent single-flip local search from start.
func descend(f FreqTable, start Mask, n int, m CostModel) (Mask, float64) {
	alloc := start
	cur := ExpectedCost(f, alloc, m)
	for {
		bestFlip, bestCost := -1, cur
		for id := 0; id < n; id++ {
			cand := alloc ^ (1 << id)
			if c := ExpectedCost(f, cand, m); c < bestCost-1e-15 {
				bestFlip, bestCost = id, c
			}
		}
		if bestFlip < 0 {
			return alloc, cur
		}
		alloc ^= 1 << bestFlip
		cur = bestCost
	}
}

// heuristicStart caches every object whose read mass exceeds its write
// mass, ignoring the joint structure.
func heuristicStart(f FreqTable, n int) Mask {
	var alloc Mask
	classes := f.Classes()
	for id := 0; id < n; id++ {
		reads, writes := 0.0, 0.0
		for _, c := range classes {
			if !c.Objects.Has(id) {
				continue
			}
			if c.Kind == Read {
				reads += f[c]
			} else {
				writes += f[c]
			}
		}
		if reads > writes {
			alloc |= 1 << id
		}
	}
	return alloc
}
