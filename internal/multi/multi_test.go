package multi

import (
	"math"
	"testing"
	"testing/quick"

	"mobirep/internal/stats"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(0, 2, 5)
	if !m.Has(0) || m.Has(1) || !m.Has(2) || !m.Has(5) {
		t.Fatalf("membership wrong: %v", m)
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d", m.Count())
	}
	if m.String() != "{0,2,5}" {
		t.Fatalf("string = %q", m.String())
	}
	if !NewMask(0, 2).SubsetOf(m) || m.SubsetOf(NewMask(0, 2)) {
		t.Fatal("subset logic wrong")
	}
	if !m.Intersects(NewMask(5, 9)) || m.Intersects(NewMask(1, 3)) {
		t.Fatal("intersection logic wrong")
	}
}

func TestMaskPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMask(64)
}

// paperFreqs builds the two-object frequency table of section 7.2 with the
// paper's six classes.
func paperFreqs(rx, ry, rj, wx, wy, wj float64) FreqTable {
	x, y := NewMask(0), NewMask(1)
	return FreqTable{
		{Read, x}:      rx,
		{Read, y}:      ry,
		{Read, x | y}:  rj,
		{Write, x}:     wx,
		{Write, y}:     wy,
		{Write, x | y}: wj,
	}
}

// TestPaperTwoObjectFormulas reproduces the two expected-cost formulas the
// paper states explicitly for ST1 (no copies) and ST1,2 (y cached only):
// EXP_ST1 = (λr,x + λr,y + λr,∧)/λ and
// EXP_ST1,2 = (λr,x + λw,y + λr,∧ + λw,∧)/λ.
func TestPaperTwoObjectFormulas(t *testing.T) {
	f := paperFreqs(2, 3, 1, 4, 5, 6)
	lambda := f.Total()
	model := ConnCost{}

	st1 := ExpectedCost(f, 0, model)
	if want := (2 + 3 + 1) / lambda; math.Abs(st1-want) > 1e-12 {
		t.Fatalf("ST1 = %v, want %v", st1, want)
	}
	st12 := ExpectedCost(f, NewMask(1), model) // y cached
	if want := (2 + 5 + 1 + 6) / lambda; math.Abs(st12-want) > 1e-12 {
		t.Fatalf("ST1,2 = %v, want %v", st12, want)
	}
	st21 := ExpectedCost(f, NewMask(0), model) // x cached
	if want := (4 + 3 + 1 + 6) / lambda; math.Abs(st21-want) > 1e-12 {
		t.Fatalf("ST2,1 = %v, want %v", st21, want)
	}
	st2 := ExpectedCost(f, NewMask(0, 1), model)
	if want := (4 + 5 + 6) / lambda; math.Abs(st2-want) > 1e-12 {
		t.Fatalf("ST2 = %v, want %v", st2, want)
	}
}

func TestOptimalStaticPicksArgmin(t *testing.T) {
	// Read-heavy on x, write-heavy on y: optimum caches exactly x.
	f := paperFreqs(10, 1, 0, 1, 10, 0)
	alloc, cost := OptimalStatic(f, 2, ConnCost{})
	if alloc != NewMask(0) {
		t.Fatalf("alloc = %v", alloc)
	}
	// Cost: reads of y (1) + writes of x (1) over total 22.
	if want := 2.0 / 22; math.Abs(cost-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
}

func TestOptimalStaticJointOpsCouple(t *testing.T) {
	// Heavy joint reads force caching both objects even though y alone is
	// write-heavy.
	f := paperFreqs(0, 0, 20, 1, 2, 0)
	alloc, _ := OptimalStatic(f, 2, ConnCost{})
	if alloc != NewMask(0, 1) {
		t.Fatalf("alloc = %v, want both objects", alloc)
	}
}

func TestExpectedCostEmptyTable(t *testing.T) {
	if ExpectedCost(FreqTable{}, 0, ConnCost{}) != 0 {
		t.Fatal("empty table should cost 0")
	}
}

func TestFreqTableObjects(t *testing.T) {
	f := FreqTable{{Read, NewMask(3)}: 1, {Write, NewMask(0, 7)}: 1}
	if f.Objects() != 8 {
		t.Fatalf("objects = %d", f.Objects())
	}
	if (FreqTable{}).Objects() != 0 {
		t.Fatal("empty table should span 0 objects")
	}
}

func TestMsgCostModel(t *testing.T) {
	m := MsgCost{Omega: 0.5}
	f := paperFreqs(1, 0, 0, 0, 1, 0)
	// Nothing cached: read of x pays 1.5, write of y pays 0.
	if got := ExpectedCost(f, 0, m); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("cost = %v", got)
	}
	// Both cached: read free, write pays 1.
	if got := ExpectedCost(f, NewMask(0, 1), m); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cost = %v", got)
	}
}

// TestGreedyMatchesOptimalOnModularInstances: with no joint operations the
// objective is separable, so greedy must find the exact optimum.
func TestGreedyMatchesOptimalOnSeparableInstances(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		f := make(FreqTable)
		for id := 0; id < n; id++ {
			f[Class{Read, NewMask(id)}] = rng.Float64() * 10
			f[Class{Write, NewMask(id)}] = rng.Float64() * 10
		}
		ga, gc := Greedy(f, n, ConnCost{})
		oa, oc := OptimalStatic(f, n, ConnCost{})
		if math.Abs(gc-oc) > 1e-12 {
			t.Fatalf("trial %d: greedy %v (%v) vs optimal %v (%v)", trial, ga, gc, oa, oc)
		}
	}
}

// TestGreedyNearOptimalOnJointInstances quantifies the greedy gap on
// random instances with joint operations: never better than optimal, and
// on these sizes within 20%.
func TestGreedyNearOptimalOnJointInstances(t *testing.T) {
	rng := stats.NewRNG(22)
	worst := 0.0
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		f := make(FreqTable)
		classes := 5 + rng.Intn(10)
		for c := 0; c < classes; c++ {
			var m Mask
			for id := 0; id < n; id++ {
				if rng.Bernoulli(0.4) {
					m |= 1 << id
				}
			}
			if m == 0 {
				m = 1
			}
			kind := Read
			if rng.Bernoulli(0.5) {
				kind = Write
			}
			f[Class{kind, m}] += rng.Float64() * 5
		}
		_, gc := Greedy(f, n, ConnCost{})
		_, oc := OptimalStatic(f, n, ConnCost{})
		if gc < oc-1e-12 {
			t.Fatalf("greedy beat exhaustive optimum: %v < %v", gc, oc)
		}
		if oc > 0 {
			if gap := gc/oc - 1; gap > worst {
				worst = gap
			}
		}
	}
	if worst > 0.2 {
		t.Fatalf("greedy gap %v exceeds 20%% on small instances", worst)
	}
}

// TestOptimalStaticSubsetMonotonicityProperty: adding frequency to a read
// class can only make caching more attractive — the optimal cost never
// increases faster than the added read mass.
func TestOptimalCostBounds(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(4)
		f := make(FreqTable)
		for id := 0; id < n; id++ {
			f[Class{Read, NewMask(id)}] = rng.Float64()
			f[Class{Write, NewMask(id)}] = rng.Float64()
		}
		_, oc := OptimalStatic(f, n, ConnCost{})
		// Bounds: 0 <= optimal <= min(all-read share, all-write share).
		reads, writes := 0.0, 0.0
		for c, v := range f {
			if c.Kind == Read {
				reads += v
			} else {
				writes += v
			}
		}
		bound := math.Min(reads, writes) / f.Total()
		return oc >= 0 && oc <= bound+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalStaticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OptimalStatic(FreqTable{}, 25, ConnCost{})
}

func TestDynamicAdaptsToPhaseChange(t *testing.T) {
	// Phase 1: object 0 read-heavy -> should be cached.
	// Phase 2: object 0 write-heavy -> should be dropped.
	d := NewDynamic(1, 50, 10, ConnCost{})
	rng := stats.NewRNG(5)
	for i := 0; i < 500; i++ {
		kind := Read
		if rng.Bernoulli(0.1) {
			kind = Write
		}
		d.Apply(Op{Kind: kind, Objects: NewMask(0)})
	}
	if d.Alloc() != NewMask(0) {
		t.Fatalf("phase 1 alloc = %v, want {0}", d.Alloc())
	}
	for i := 0; i < 500; i++ {
		kind := Write
		if rng.Bernoulli(0.1) {
			kind = Read
		}
		d.Apply(Op{Kind: kind, Objects: NewMask(0)})
	}
	if d.Alloc() != 0 {
		t.Fatalf("phase 2 alloc = %v, want {}", d.Alloc())
	}
	if d.Transitions() < 2 {
		t.Fatalf("transitions = %d", d.Transitions())
	}
	if d.Ops() != 1000 {
		t.Fatalf("ops = %d", d.Ops())
	}
}

func TestDynamicTracksStaticOptimumOnStationaryLoad(t *testing.T) {
	// On a stationary workload the dynamic method should approach the
	// static optimum's per-op cost.
	rng := stats.NewRNG(9)
	f := paperFreqs(8, 1, 2, 1, 6, 1)
	classes := make([]Class, 0, len(f))
	weights := make([]float64, 0, len(f))
	for c, w := range f {
		classes = append(classes, c)
		weights = append(weights, w)
	}
	total := f.Total()
	sample := func() Class {
		x := rng.Float64() * total
		for i, w := range weights {
			if x < w {
				return classes[i]
			}
			x -= w
		}
		return classes[len(classes)-1]
	}
	d := NewDynamic(2, 200, 50, ConnCost{})
	const ops = 200000
	for i := 0; i < ops; i++ {
		c := sample()
		d.Apply(Op{Kind: c.Kind, Objects: c.Objects})
	}
	_, opt := OptimalStatic(f, 2, ConnCost{})
	if d.PerOp() > opt*1.1+0.02 {
		t.Fatalf("dynamic per-op %v far above static optimum %v", d.PerOp(), opt)
	}
}

func TestDynamicChargesTransitions(t *testing.T) {
	d := NewDynamic(1, 10, 5, MsgCost{Omega: 0.5})
	// Feed reads until it allocates; the allocation itself costs one data
	// message.
	for i := 0; i < 20; i++ {
		d.Apply(Op{Kind: Read, Objects: NewMask(0)})
	}
	if d.Alloc() != NewMask(0) {
		t.Fatalf("alloc = %v", d.Alloc())
	}
	readCost := d.model.OpCost(Class{Read, NewMask(0)}, 0)
	// Cost must include at least one transition data unit beyond the
	// pre-allocation remote reads.
	if d.Cost() < readCost {
		t.Fatalf("cost = %v", d.Cost())
	}
	wantMin := d.TransitionDataCost
	if d.Cost()-float64(20)*readCost > 0 && d.Cost() < wantMin {
		t.Fatalf("transition not charged: %v", d.Cost())
	}
}

func TestDynamicPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDynamic(1, 0, 5, ConnCost{}) },
		func() { NewDynamic(1, 5, 0, ConnCost{}) },
		func() { NewDynamic(30, 5, 5, ConnCost{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestModelNames(t *testing.T) {
	if (ConnCost{}).Name() != "connection" {
		t.Fatal("conn name")
	}
	if (MsgCost{Omega: 0.25}).Name() != "message(ω=0.25)" {
		t.Fatalf("msg name = %q", MsgCost{Omega: 0.25}.Name())
	}
}
