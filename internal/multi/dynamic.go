package multi

import "fmt"

// Dynamic is the window-based multi-object method of section 7.2: it
// keeps the last k operations (with their classes), re-estimates the class
// frequencies from that window every recompute operations, solves for the
// best static allocation under the estimated frequencies, and adopts it.
// The paper notes the recomputation "can be done periodically instead of
// after each operation to avoid excessive overhead"; Recompute is that
// period.
//
// Allocation changes are themselves priced: each newly cached object costs
// one data message (the SC pushes it), and each dropped object costs one
// control message (the delete-request), mirroring the single-object
// protocol. The experiments show the method tracking the static optimum
// under drifting frequencies.
type Dynamic struct {
	model      CostModel
	n          int
	window     []Op
	head       int
	filled     int
	sinceSolve int
	recompute  int
	alloc      Mask

	// TransitionDataCost is the cost charged per object added to the
	// cache; TransitionCtrlCost per object dropped. Defaults are set by
	// NewDynamic from the model.
	TransitionDataCost float64
	TransitionCtrlCost float64

	// Stats.
	ops         int
	cost        float64
	transitions int
}

// NewDynamic builds the dynamic allocator. k is the window size (number of
// remembered operations), recompute how many operations pass between
// re-solves, n the object count (n <= 24: the re-solve enumerates).
func NewDynamic(n, k, recompute int, m CostModel) *Dynamic {
	if k <= 0 || recompute <= 0 {
		panic("multi: window size and recompute period must be positive")
	}
	if n < 0 || n > 24 {
		panic(fmt.Sprintf("multi: Dynamic limited to 24 objects, got %d", n))
	}
	d := &Dynamic{
		model:     m,
		n:         n,
		window:    make([]Op, k),
		recompute: recompute,
	}
	d.TransitionDataCost = 1
	d.TransitionCtrlCost = 0
	if mm, ok := m.(MsgCost); ok {
		d.TransitionCtrlCost = mm.Omega
	}
	return d
}

// Alloc returns the current allocation.
func (d *Dynamic) Alloc() Mask { return d.alloc }

// Ops returns the number of operations applied.
func (d *Dynamic) Ops() int { return d.ops }

// Cost returns the total accumulated cost, including transition costs.
func (d *Dynamic) Cost() float64 { return d.cost }

// PerOp returns the average cost per applied operation.
func (d *Dynamic) PerOp() float64 {
	if d.ops == 0 {
		return 0
	}
	return d.cost / float64(d.ops)
}

// Transitions returns how many re-solves changed the allocation.
func (d *Dynamic) Transitions() int { return d.transitions }

// Apply processes one operation: price it under the current allocation,
// slide the window, and periodically re-solve.
func (d *Dynamic) Apply(op Op) float64 {
	c := d.model.OpCost(op.Class(), d.alloc)
	d.cost += c
	d.ops++

	d.window[d.head] = op
	d.head = (d.head + 1) % len(d.window)
	if d.filled < len(d.window) {
		d.filled++
	}
	d.sinceSolve++
	if d.sinceSolve >= d.recompute && d.filled > 0 {
		d.sinceSolve = 0
		d.resolve()
	}
	return c
}

// EstimatedFrequencies returns the class frequencies currently in the
// window (counts; callers can normalize with Total).
func (d *Dynamic) EstimatedFrequencies() FreqTable {
	f := make(FreqTable)
	for i := 0; i < d.filled; i++ {
		f[d.window[i].Class()]++
	}
	return f
}

func (d *Dynamic) resolve() {
	f := d.EstimatedFrequencies()
	next, _ := OptimalStatic(f, d.n, d.model)
	if next == d.alloc {
		return
	}
	added := next &^ d.alloc
	removed := d.alloc &^ next
	d.cost += float64(added.Count())*d.TransitionDataCost +
		float64(removed.Count())*d.TransitionCtrlCost
	d.alloc = next
	d.transitions++
}
