package replica

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/transport"
)

// fakeClock is a manually advanced time source shared by tests that pin
// session ages and cache staleness.
type fakeClock struct {
	mu  sync.Mutex
	cur time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{cur: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.cur = f.cur.Add(d)
	f.mu.Unlock()
}

// allocate drives key to a read majority so the MC holds a copy.
func allocate(t *testing.T, cli *Client, srv *Server, key string) {
	t.Helper()
	if _, err := srv.Write(key, []byte(key+"#1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && !cli.HasCopy(key); i++ {
		if _, err := cli.Read(key); err != nil {
			t.Fatal(err)
		}
	}
	if !cli.HasCopy(key) {
		t.Fatalf("setup: no copy of %s after read majority", key)
	}
}

func TestSuspendResumeResyncWarm(t *testing.T) {
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")
	allocate(t, cli, srv, "y")

	// A link blip: warm offline, server notices the close and detaches.
	cli.Suspend()
	if !cli.Offline() {
		t.Fatal("client should report offline after suspend")
	}
	if !cli.HasCopy("x") || !cli.HasCopy("y") {
		t.Fatal("suspend dropped warm copies")
	}
	if _, err := cli.Read("x"); !errors.Is(err, ErrOffline) {
		t.Fatalf("suspended read returned %v, want ErrOffline", err)
	}
	sess.Detach()

	// The database moves on for x only while the client is away.
	if _, err := srv.Write("x", []byte("x#2")); err != nil {
		t.Fatal(err)
	}

	revalBefore := cli.Cache().Stats().Revalidations
	connBefore := cli.Meter().Snapshot().Connections

	a2, b2 := transport.NewMemPair()
	srv.Attach(a2)
	done, err := cli.ResumeResync(b2)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("resync never completed")
	}
	if cli.Offline() {
		t.Fatal("client still offline after resync")
	}
	// One reattachment connection reconciled everything.
	if got := cli.Meter().Snapshot().Connections; got != connBefore+1 {
		t.Fatalf("resync used %d connections, want 1", got-connBefore)
	}
	// x was stale: re-shipped. y was current: revalidated without payload.
	if it, _ := cli.Cache().Peek("x"); string(it.Value) != "x#2" {
		t.Fatalf("x after resync = %q, want x#2", it.Value)
	}
	if got := cli.Cache().Stats().Revalidations; got != revalBefore+1 {
		t.Fatalf("revalidations = %d, want %d", got, revalBefore+1)
	}
	// Both copies survive warm: the next reads are local, no new traffic.
	connAfter := cli.Meter().Snapshot().Connections
	for _, key := range []string{"x", "y"} {
		it, err := cli.Read(key)
		if err != nil {
			t.Fatal(err)
		}
		if it.Version == 0 {
			t.Fatalf("read %s returned zero item", key)
		}
	}
	if got := cli.Meter().Snapshot().Connections; got != connAfter {
		t.Fatal("post-resync reads went remote; warm copies were lost")
	}
	// And propagation flows on the new session.
	if _, err := srv.Write("y", []byte("y#2")); err != nil {
		t.Fatal(err)
	}
	if it, _ := cli.Cache().Peek("y"); string(it.Value) != "y#2" {
		t.Fatalf("propagation after resync: y = %q", it.Value)
	}
}

func TestResyncMissedWritesDeallocate(t *testing.T) {
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")

	cli.Suspend()
	sess.Detach()
	// The key turns write-hot while the client is away: three missed
	// writes fill the K=3 window.
	for i := 2; i <= 4; i++ {
		if _, err := srv.Write("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	a2, b2 := transport.NewMemPair()
	sess2 := srv.Attach(a2)
	done, err := cli.ResumeResync(b2)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	// The missed writes made the window write-majority: the copy is
	// deallocated and the SC told, so further writes cost nothing.
	if cli.HasCopy("x") {
		t.Fatal("write-hot copy survived resync; it would cost a data message per write")
	}
	before := sess2.Meter().Snapshot()
	if _, err := srv.Write("x", []byte("post")); err != nil {
		t.Fatal(err)
	}
	if after := sess2.Meter().Snapshot(); after != before {
		t.Fatalf("write after resync deallocation still propagated: %+v -> %+v", before, after)
	}
}

func TestResyncPreservesWindowOnLightMisses(t *testing.T) {
	// The sub-TTL blip of the acceptance criteria: one missed write must
	// not cost the learned read-heavy window or the warm copy.
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")
	// Local reads make the window solidly read-majority.
	for i := 0; i < 3; i++ {
		if _, err := cli.Read("x"); err != nil {
			t.Fatal(err)
		}
	}

	cli.Suspend()
	sess.Detach()
	if _, err := srv.Write("x", []byte("x#2")); err != nil {
		t.Fatal(err)
	}

	a2, b2 := transport.NewMemPair()
	srv.Attach(a2)
	done, err := cli.ResumeResync(b2)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if !cli.HasCopy("x") {
		t.Fatal("one missed write deallocated a read-heavy copy")
	}
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "x#2" {
		t.Fatalf("read after light resync = %q, want x#2", it.Value)
	}
}

func TestResyncWithNoCopiesIsFree(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	cli.Suspend()
	a2, b2 := transport.NewMemPair()
	srv.Attach(a2)
	before := cli.Meter().Snapshot()
	done, err := cli.ResumeResync(b2)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("empty resync should complete immediately")
	}
	if cli.Offline() {
		t.Fatal("client offline after empty resync")
	}
	if after := cli.Meter().Snapshot(); after != before {
		t.Fatalf("empty resync sent traffic: %+v -> %+v", before, after)
	}
}

func TestPingPongUnmetered(t *testing.T) {
	cli, _, srvMeter := pair(t, SW(3))
	var got []uint64
	var mu sync.Mutex
	cli.SetPongHandler(func(seq uint64) {
		mu.Lock()
		got = append(got, seq)
		mu.Unlock()
	})
	cliBefore := cli.Meter().Snapshot()
	srvBefore := srvMeter.Snapshot()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := cli.Ping(seq); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("pongs = %v", got)
	}
	if cli.Meter().Snapshot() != cliBefore || srvMeter.Snapshot() != srvBefore {
		t.Fatal("liveness traffic was metered as protocol cost")
	}
	cli.Suspend()
	if err := cli.Ping(4); !errors.Is(err, ErrOffline) {
		t.Fatalf("ping while offline returned %v, want ErrOffline", err)
	}
}

func TestExpireIdleReapsSilentSessions(t *testing.T) {
	clock := newFakeClock()
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetClock(clock.Now)

	a1, b1 := transport.NewMemPair()
	srv.Attach(a1)
	quiet, err := NewClient(b1, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a2, b2 := transport.NewMemPair()
	srv.Attach(a2)
	chatty, err := NewClient(b2, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	_ = quiet

	const ttl = time.Minute
	clock.Advance(ttl / 2)
	if err := chatty.Ping(1); err != nil {
		t.Fatal(err)
	}
	if n := srv.ExpireIdle(ttl); n != 0 {
		t.Fatalf("reaped %d sessions before ttl", n)
	}
	clock.Advance(ttl/2 + time.Second)
	// quiet has now been silent > ttl; chatty's ping was within it.
	if n := srv.ExpireIdle(ttl); n != 1 {
		t.Fatalf("reaped %d sessions, want 1", n)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions after reap = %d, want 1", srv.Sessions())
	}
	// The reaper closed the quiet client's link: its next probe fails.
	if err := quiet.Ping(2); err == nil {
		t.Fatal("ping on reaped link succeeded")
	}
	// The survivor keeps working.
	if err := chatty.Ping(2); err != nil {
		t.Fatal(err)
	}
}

func TestAllowStaleOfflineReads(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	clock := newFakeClock()
	cli.Cache().SetClock(clock.Now)
	allocate(t, cli, srv, "x")

	cli.Suspend()
	// Default contract: fail fast.
	if _, err := cli.Read("x"); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline read returned %v, want ErrOffline", err)
	}
	// Bounded staleness: the last known value comes back, but flagged.
	cli.AllowStale(time.Minute)
	it, err := cli.Read("x")
	if !errors.Is(err, ErrStale) {
		t.Fatalf("stale read returned %v, want ErrStale", err)
	}
	if string(it.Value) != "x#1" {
		t.Fatalf("stale read value = %q, want x#1", it.Value)
	}
	// A key never held yields nothing even under AllowStale.
	if _, err := cli.Read("never"); !errors.Is(err, ErrOffline) {
		t.Fatalf("stale read of unknown key returned %v, want ErrOffline", err)
	}
	// Past the bound, the flag degrades back to ErrOffline.
	clock.Advance(2 * time.Minute)
	if _, err := cli.Read("x"); !errors.Is(err, ErrOffline) {
		t.Fatalf("aged-out stale read returned %v, want ErrOffline", err)
	}
	cli.AllowStale(0)
	clock.Advance(-2 * time.Minute)
	if _, err := cli.Read("x"); !errors.Is(err, ErrOffline) {
		t.Fatal("AllowStale(0) did not restore fail-fast reads")
	}
}

func TestReadContextDeadline(t *testing.T) {
	// A server that never answers must not hold a read past its context.
	blackhole, b := transport.NewMemPair()
	blackhole.SetHandler(func([]byte) {})
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cli.ReadContext(ctx, "x"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("context deadline ignored")
	}
	// Batch reads honour the context the same way.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := cli.ReadManyContext(ctx2, []string{"x", "y"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch read returned %v, want DeadlineExceeded", err)
	}
	// Cancelled waiters leave no residue: a later response wakes nobody.
	cli.mu.Lock()
	residue := len(cli.pending["x"]) + len(cli.pendingBatch)
	cli.mu.Unlock()
	if residue != 0 {
		t.Fatalf("%d stale waiters left after context expiry", residue)
	}
}

func TestLinkErrorHandlerFiresOnCurrentLinkOnly(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	allocate(t, cli, srv, "x")
	var fired []error
	var mu sync.Mutex
	cli.SetLinkErrorHandler(func(err error) {
		mu.Lock()
		fired = append(fired, err)
		mu.Unlock()
	})

	// Kill the link out from under the client; the next probe must
	// report the failure to the handler.
	cli.mu.Lock()
	link := cli.link
	cli.mu.Unlock()
	link.Close()
	if err := cli.Ping(1); err == nil {
		t.Fatal("ping on closed link succeeded")
	}
	mu.Lock()
	n := len(fired)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("handler fired %d times, want 1", n)
	}

	// After the client moves to a fresh link, the dead one's errors are
	// stale news and must not fire the handler again.
	a2, b2 := transport.NewMemPair()
	srv.Attach(a2)
	cli.Reattach(b2)
	cli.suspect(link, errors.New("late failure from old link"))
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 {
		t.Fatalf("stale link error reached the handler: %v", fired)
	}
}
