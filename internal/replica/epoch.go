package replica

import (
	"errors"

	"mobirep/internal/obs"
	"mobirep/internal/wire"
)

// Epoch fencing. A server backed by a durable store (internal/db) bumps a
// persisted epoch on every process start and advertises it twice: as an
// AttachResp greeting on every attach (best-effort — chaos may eat it)
// and, authoritatively, on every ResyncResp. The client adopts the first
// epoch it hears and fences on any change: a different epoch means the
// authority restarted, so every warm copy, learned window, and cached
// value predates the restart and cannot be trusted — under sync=never
// the store may even have rolled back past versions this client saw.
// Fencing drops all of it and latches ErrEpochChanged; the supervisor
// answers the latch with a cold Reattach, so divergence is advertised
// and repaired instead of silently served.

// ErrEpochChanged is returned by Read while the client is fenced: the
// server's store epoch changed (the authority restarted), the warm state
// was dropped, and the client is waiting for a cold reattach.
var ErrEpochChanged = errors.New("replica: server epoch changed (authority restarted)")

// Epoch returns the server store epoch the client has adopted (0 = not
// yet learned, or an in-memory server that never announces one).
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// EpochFenced reports whether the client is fenced: it observed an epoch
// change and dropped its warm state, and stays offline until a cold
// Reattach. The reconnect supervisor polls this after each resync
// attempt to decide between warm recovery and the cold restart a fence
// demands.
func (c *Client) EpochFenced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fenced
}

// noteEpochLocked folds a server-announced epoch into the client state
// and reports whether it fenced. 0 (no epoch) is ignored; an unknown
// epoch is adopted; a matching epoch is inert; a changed epoch fences.
// Caller holds c.mu.
func (c *Client) noteEpochLocked(epoch uint64) bool {
	if epoch == 0 {
		return false
	}
	if c.epoch == 0 || c.epoch == epoch {
		c.epoch = epoch
		return false
	}
	c.fenceLocked(epoch)
	return true
}

// fenceLocked drops every warm copy: the authority restarted, so cached
// state is untrustworthy by construction. The fence latches only while
// the client is offline — that is the "stay down until a cold Reattach"
// signal the supervisor consumes; an online client (a late greeting after
// an empty resync) has nothing further to wait for once the state is
// dropped, and a latch would poison its next ordinary warm resync.
// Caller holds c.mu.
func (c *Client) fenceLocked(epoch uint64) {
	for key, st := range c.items {
		if st.hasCopy {
			c.cache.Drop(key)
		}
	}
	c.items = make(map[string]*itemState)
	if c.trackFloors {
		// A restarted authority may legitimately have rolled back; stale
		// floors would make every future read unsatisfiable.
		c.floors = make(map[string]uint64)
	}
	old := c.epoch
	c.epoch = epoch
	if c.offline {
		c.fenced = true
	}
	mEpochFences.Inc()
	obsTr.Record(obs.EvResync, "", "epoch-fence", int64(old), int64(epoch))
}

// onAttachResp handles the server's epoch greeting. Best-effort traffic:
// a lost greeting just means the client learns the epoch from the next
// ResyncResp instead.
func (c *Client) onAttachResp(msg wire.Message) {
	c.mu.Lock()
	fenced := c.noteEpochLocked(msg.Version)
	fence := c.fenceFn
	c.mu.Unlock()
	if fenced && fence != nil {
		// A relay that fenced must invalidate its subtree even when the
		// fence arrived via the greeting rather than the resync answer.
		fence()
	}
}

// sendAttachResp sends the epoch greeting to a freshly attached session.
// Liveness traffic, not metered; an in-memory store (epoch 0) sends
// nothing, which keeps epoch-less deployments wire-identical.
func (ss *Session) sendAttachResp() {
	epoch := ss.srv.store.Epoch()
	if epoch == 0 {
		return
	}
	buf := encodePooled(wire.Message{Kind: wire.KindAttachResp, Version: epoch})
	_ = ss.link.Send(buf.B)
	wire.PutBuf(buf)
}
