package replica

import (
	"fmt"
	"sort"

	"mobirep/internal/sched"
	"mobirep/internal/wire"
)

// Model is a single-goroutine reference model of the MC/SC protocol state
// machine of section 4: the copy-at-MC bit as seen from each side, the
// sliding-window contents, the MC cache versions, and the store versions.
// The conformance harness (conformance_test.go) drives the real Client and
// Server through a fault-injecting transport and, in lockstep, feeds the
// model the exact same operations and delivered frames; every frame the
// real implementation emits and every read result it returns must match
// the model's prediction, and so must the final per-key state.
//
// The model is the specification under unreliable delivery, so it encodes
// the hardened semantics the implementation must provide:
//
//   - a duplicated allocating ReadResp must not re-allocate or roll the
//     window back (allocation applies only when no copy is held);
//   - a duplicated or reordered WriteProp whose version does not advance
//     the cache must not slide the window (stale propagations are inert);
//   - a WriteProp arriving while the MC holds no copy means the SC has
//     lost (or not yet received) the deallocation — the MC re-asserts it
//     with a DeleteReq so the SC stops propagating into the void.
//
// The recovery layer adds two exchanges, modeled here so the conformance
// explorer can schedule them against chaos faults:
//
//   - Ping/Pong keepalives are stateless echoes (DeliverToServer answers
//     a Ping with a Pong carrying the same sequence number);
//   - warm resync: ResyncRequest is the declaration the client must emit
//     on ResumeResync, DeliverResyncToServer re-asserts the declared
//     subscriptions and predicts the server's answer, and
//     DeliverResyncToClient applies that answer — refreshing stale
//     copies, counting missed writes into the window (capped at K), and
//     deallocating keys the outage turned write-majority. All of it is
//     duplicate-tolerant: re-delivered resync traffic must be inert.
//
// The overload layer (admission.go) adds eviction: EvictSC models the
// server shedding the session — a Busy frame goes out first, then the
// SC-side state resets and the server goes silent toward this client
// (straggler frames hit a detached session and are ignored; writes still
// commit but propagate nowhere). The client's MC state survives untouched
// until a cold Reconnect or a warm DetachSC resync repairs the pairing,
// both of which clear the detached flag.
//
// The durability layer (internal/db) adds the crash+restart action:
// RestartSC collapses the store to the versions the new incarnation
// recovered from its log, wipes all volatile SC state, and advances the
// store epoch; AttachGreeting predicts the epoch greeting a durable
// server sends on every attach; and the epoch carried on resync answers
// fences the MC (FenceMC) — a client whose adopted epoch no longer
// matches drops every warm copy instead of trusting state that predates
// the restart.
//
// Everything else is the paper's protocol verbatim, mirrored from
// client.go and server.go.
type Model struct {
	mode  Mode
	store map[string]uint64 // SC database: key -> committed version
	sc    map[string]*modelSide
	mc    map[string]*modelSide
	cache map[string]uint64 // live MC cache: present iff MC holds a copy
	// pendingRead is the key of the one outstanding remote read, "" when
	// none. The harness resolves each read fully before starting the next,
	// so a single slot suffices.
	pendingRead    string
	hasPendingRead bool
	// scDetached is set by EvictSC: the server shed the session, so the SC
	// ignores everything from this client and propagates nothing to it
	// until Reconnect or DetachSC re-pairs them.
	scDetached bool
	// epoch is the SC store epoch (0 = in-memory store, no fencing);
	// mcEpoch is the epoch the MC has adopted (0 = not yet learned).
	epoch   uint64
	mcEpoch uint64
}

// modelSide is one side's view of a key: the copy bit and, for SW modes,
// the window, kept oldest-first.
type modelSide struct {
	hasCopy bool
	window  sched.Schedule // nil for ST modes
}

// NewModel returns the reference model for one client/server pair in the
// given mode, over an empty store.
func NewModel(mode Mode) *Model {
	return &Model{
		mode:  mode,
		store: make(map[string]uint64),
		sc:    make(map[string]*modelSide),
		mc:    make(map[string]*modelSide),
		cache: make(map[string]uint64),
	}
}

func (m *Model) newSide() *modelSide {
	s := &modelSide{}
	if m.mode.Kind == ModeSW {
		s.window = make(sched.Schedule, m.mode.K)
		for i := range s.window {
			s.window[i] = sched.Write
		}
	}
	return s
}

func (m *Model) side(views map[string]*modelSide, key string) *modelSide {
	st, ok := views[key]
	if !ok {
		st = m.newSide()
		views[key] = st
	}
	return st
}

// push slides the window by one request. No-op for ST modes.
func (s *modelSide) push(op sched.Op) {
	if s.window == nil {
		return
	}
	copy(s.window, s.window[1:])
	s.window[len(s.window)-1] = op
}

// fill resets every window slot to op. No-op for ST modes.
func (s *modelSide) fill(op sched.Op) {
	for i := range s.window {
		s.window[i] = op
	}
}

// readMajority reports whether reads strictly outnumber writes in the
// window.
func (s *modelSide) readMajority() bool {
	reads := 0
	for _, op := range s.window {
		if op == sched.Read {
			reads++
		}
	}
	return 2*reads > len(s.window)
}

func (s *modelSide) windowCopy() sched.Schedule {
	return append(sched.Schedule(nil), s.window...)
}

// StoreVersion returns the committed version of key (0 if never written).
func (m *Model) StoreVersion(key string) uint64 { return m.store[key] }

// MCHasCopy reports the MC-side copy bit for key.
func (m *Model) MCHasCopy(key string) bool { return m.side(m.mc, key).hasCopy }

// SCHasCopy reports the SC-side copy bit for key.
func (m *Model) SCHasCopy(key string) bool { return m.side(m.sc, key).hasCopy }

// CacheVersion returns the live cached version for key; ok is false when
// the MC holds no copy.
func (m *Model) CacheVersion(key string) (uint64, bool) {
	v, ok := m.cache[key]
	return v, ok
}

// MCWindow returns a copy of the MC-side window (nil for ST modes).
func (m *Model) MCWindow(key string) sched.Schedule { return m.side(m.mc, key).windowCopy() }

// SCWindow returns a copy of the SC-side window (nil for ST modes).
func (m *Model) SCWindow(key string) sched.Schedule { return m.side(m.sc, key).windowCopy() }

// PendingRead reports whether a remote read is outstanding.
func (m *Model) PendingRead() bool { return m.hasPendingRead }

// Write commits a write at the SC and returns the new version plus the
// frames the server must emit toward the client, in order.
func (m *Model) Write(key string) (uint64, []wire.Message) {
	m.store[key]++
	v := m.store[key]
	if m.scDetached {
		// The session was shed: the write commits, but there is no
		// per-session state to slide and nobody to propagate to.
		return v, nil
	}
	st := m.side(m.sc, key)
	switch m.mode.Kind {
	case ModeStatic1:
		return v, nil
	case ModeStatic2:
		if st.hasCopy {
			return v, []wire.Message{{Kind: wire.KindWriteProp, Key: key, Version: v}}
		}
		return v, nil
	}
	switch {
	case !st.hasCopy:
		// SC in charge: slide the window, no communication.
		st.push(sched.Write)
		return v, nil
	case m.mode.K == 1:
		// SW1 optimization: answer the write with a bare delete-request.
		st.hasCopy = false
		st.fill(sched.Write)
		return v, []wire.Message{{Kind: wire.KindDeleteReq, Key: key}}
	default:
		return v, []wire.Message{{Kind: wire.KindWriteProp, Key: key, Version: v}}
	}
}

// LocalRead attempts a local read at the MC. When the MC holds a copy it
// returns the version the read must yield and slides the window; otherwise
// ok is false and the caller must go remote via StartRead.
func (m *Model) LocalRead(key string) (version uint64, ok bool) {
	st := m.side(m.mc, key)
	if !st.hasCopy {
		return 0, false
	}
	st.push(sched.Read)
	return m.cache[key], true
}

// StartRead begins a remote read and returns the frames the client must
// emit (the control request). The read completes when DeliverToClient
// processes a ReadResp for the key, or fails when FailPendingRead is
// called (disconnection).
func (m *Model) StartRead(key string) []wire.Message {
	if m.hasPendingRead {
		panic("model: overlapping remote reads")
	}
	m.pendingRead, m.hasPendingRead = key, true
	return []wire.Message{{Kind: wire.KindReadReq, Key: key}}
}

// FailPendingRead abandons the outstanding remote read (the client
// disconnected before the response arrived).
func (m *Model) FailPendingRead() {
	m.pendingRead, m.hasPendingRead = "", false
}

// DeliverToServer feeds one client->server frame to the SC state machine
// and returns the frames the server must emit in response, in order.
func (m *Model) DeliverToServer(msg wire.Message) []wire.Message {
	if m.scDetached {
		// Straggler frames from an evicted client hit a detached session:
		// the implementation ignores them all, keepalives included.
		return nil
	}
	switch msg.Kind {
	case wire.KindReadReq:
		return m.scReadReq(msg.Key)
	case wire.KindDeleteReq:
		m.scDeleteReq(msg)
		return nil
	case wire.KindPing:
		// Keepalives are stateless echoes, never metered.
		return []wire.Message{{Kind: wire.KindPong, Version: msg.Version}}
	default:
		return nil // server ignores server-to-client kinds
	}
}

func (m *Model) scReadReq(key string) []wire.Message {
	st := m.side(m.sc, key)
	resp := wire.Message{Kind: wire.KindReadResp, Key: key, Version: m.store[key]}
	switch m.mode.Kind {
	case ModeStatic1:
		// Never allocate.
	case ModeStatic2:
		if !st.hasCopy {
			resp.Allocate = true
			st.hasCopy = true
		}
	default:
		if !st.hasCopy {
			st.push(sched.Read)
			if st.readMajority() {
				resp.Allocate = true
				resp.Window = st.windowCopy()
				st.hasCopy = true
			}
		}
	}
	return []wire.Message{resp}
}

func (m *Model) scDeleteReq(msg wire.Message) {
	st := m.side(m.sc, msg.Key)
	if !st.hasCopy {
		return // stale duplicate
	}
	st.hasCopy = false
	if m.mode.Kind == ModeSW && len(msg.Window) == m.mode.K {
		copy(st.window, msg.Window)
	}
}

// DeliverToClient feeds one server->client frame to the MC state machine.
// It returns the frames the client must emit in response and, when the
// frame completes the outstanding remote read, the version that read must
// return.
func (m *Model) DeliverToClient(msg wire.Message) (emits []wire.Message, completed *uint64) {
	switch msg.Kind {
	case wire.KindReadResp:
		return nil, m.mcReadResp(msg)
	case wire.KindWriteProp:
		return m.mcWriteProp(msg), nil
	case wire.KindDeleteReq:
		m.mcDeleteReq(msg.Key)
		return nil, nil
	case wire.KindBusy:
		// The overload notice is consumed by the recovery layer (counted,
		// handed to the supervisor); the protocol state machine emits
		// nothing and changes nothing.
		return nil, nil
	case wire.KindAttachResp:
		// The server's epoch greeting: adopt an unknown epoch, fence on a
		// changed one, stay inert on a match or a duplicate. Never emits.
		m.noteEpoch(msg.Version)
		return nil, nil
	default:
		return nil, nil // client ignores client-to-server kinds
	}
}

func (m *Model) mcReadResp(msg wire.Message) (completed *uint64) {
	st := m.side(m.mc, msg.Key)
	if msg.Allocate && !st.hasCopy {
		st.hasCopy = true
		if m.mode.Kind == ModeSW {
			if len(msg.Window) == m.mode.K {
				copy(st.window, msg.Window)
			} else {
				st.fill(sched.Read)
			}
		}
		m.cache[msg.Key] = msg.Version
	}
	if m.hasPendingRead && m.pendingRead == msg.Key {
		m.pendingRead, m.hasPendingRead = "", false
		v := msg.Version
		return &v
	}
	return nil
}

func (m *Model) mcWriteProp(msg wire.Message) []wire.Message {
	st := m.side(m.mc, msg.Key)
	if !st.hasCopy {
		// The SC believes the MC is subscribed but the MC holds no copy:
		// the deallocation was lost or is still in flight. Re-assert it so
		// the SC stops paying a data message per write.
		out := wire.Message{Kind: wire.KindDeleteReq, Key: msg.Key}
		if m.mode.Kind == ModeSW {
			out.Window = st.windowCopy()
		}
		return []wire.Message{out}
	}
	if msg.Version <= m.cache[msg.Key] {
		return nil // stale or duplicated propagation: inert
	}
	m.cache[msg.Key] = msg.Version
	if m.mode.Kind != ModeSW {
		return nil
	}
	st.push(sched.Write)
	if st.readMajority() {
		return nil
	}
	// Write majority: deallocate and hand the window back.
	st.hasCopy = false
	delete(m.cache, msg.Key)
	return []wire.Message{{
		Kind: wire.KindDeleteReq, Key: msg.Key, Window: st.windowCopy(),
	}}
}

func (m *Model) mcDeleteReq(key string) {
	st := m.side(m.mc, key)
	st.hasCopy = false
	st.fill(sched.Write)
	delete(m.cache, key)
}

// Reconnect models a full disconnect/reattach cycle: the MC drops every
// copy and both sides restart from the one-copy scheme with fresh
// all-writes windows, exactly like a newly arrived client. Any outstanding
// remote read has already been failed by the disconnection.
func (m *Model) Reconnect() {
	m.mc = make(map[string]*modelSide)
	m.sc = make(map[string]*modelSide)
	m.cache = make(map[string]uint64)
	m.pendingRead, m.hasPendingRead = "", false
	m.scDetached = false
}

// DetachSC models the server replacing the client's session (the old one
// detached on link death): SC-side state restarts fresh while the MC
// keeps its warm copies, anticipating a resync.
func (m *Model) DetachSC() {
	m.sc = make(map[string]*modelSide)
	m.scDetached = false
}

// EvictSC models the server shedding this client's session under overload
// (Session.Evict): the Busy frame returned here must be sent before the
// link dies, then the SC-side state is gone and the server falls silent
// toward the client until a reconnect or warm resync re-pairs them. A
// second eviction finds no session and emits nothing (nil).
func (m *Model) EvictSC(reason string, retryMillis uint64) []wire.Message {
	if m.scDetached {
		return nil
	}
	m.scDetached = true
	m.sc = make(map[string]*modelSide)
	return []wire.Message{{Kind: wire.KindBusy, Key: reason, Version: retryMillis}}
}

// RestartSC models the stationary computer crashing and restarting: the
// durable store collapses to surviving (the per-key versions the new
// incarnation recovered from its log), all volatile SC-side state —
// per-session allocation bits, windows, detach flags — is gone, and the
// store epoch advances to epoch. The MC side is untouched: the client
// does not yet know the authority restarted and learns it only through
// the epoch carried on AttachResp and ResyncResp frames.
func (m *Model) RestartSC(surviving map[string]uint64, epoch uint64) {
	m.store = make(map[string]uint64, len(surviving))
	for k, v := range surviving {
		m.store[k] = v
	}
	m.sc = make(map[string]*modelSide)
	m.scDetached = false
	m.epoch = epoch
}

// AttachGreeting returns the frames the server must emit when a session
// attaches: the AttachResp epoch greeting for a durable store, nothing
// for an in-memory one (epoch 0) — which keeps pre-durability schedules
// byte-identical.
func (m *Model) AttachGreeting() []wire.Message {
	if m.epoch == 0 {
		return nil
	}
	return []wire.Message{{Kind: wire.KindAttachResp, Version: m.epoch}}
}

// noteEpoch folds a server-announced epoch into the MC state and reports
// whether it fenced: 0 is ignored, an unknown epoch is adopted, a
// matching epoch is inert, and a changed epoch fences (FenceMC).
func (m *Model) noteEpoch(epoch uint64) bool {
	if epoch == 0 {
		return false
	}
	if m.mcEpoch == 0 || m.mcEpoch == epoch {
		m.mcEpoch = epoch
		return false
	}
	m.FenceMC(epoch)
	return true
}

// FenceMC models the client's epoch fence: the authority restarted, so
// every warm copy, window, and cached value is untrustworthy and dropped.
// The MC restarts from the one-copy scheme exactly like a fresh client.
func (m *Model) FenceMC(epoch uint64) {
	m.mc = make(map[string]*modelSide)
	m.cache = make(map[string]uint64)
	m.mcEpoch = epoch
}

// MCEpoch returns the epoch the MC has adopted (0 = not yet learned).
func (m *Model) MCEpoch() uint64 { return m.mcEpoch }

// ResyncRequest returns the warm-resync declaration the client must emit
// on ResumeResync: every held key, sorted, with its cached version stamp,
// plus the epoch the client last adopted (0 when it never learned one) so
// the server can tell a same-incarnation blip from a resync against a
// dead epoch. nil when no copies are held — the client comes back online
// immediately and for free.
func (m *Model) ResyncRequest() *wire.Batch {
	var keys []string
	for key, st := range m.mc {
		if st.hasCopy {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	versions := make([]uint64, len(keys))
	for i, k := range keys {
		versions[i] = m.cache[k]
	}
	return &wire.Batch{Kind: wire.KindResyncReq, Epoch: m.mcEpoch, Keys: keys, Versions: versions}
}

// DeliverResyncToServer feeds a client->server batch to the SC state
// machine and returns the answer batch the server must emit (nil for
// kinds the server ignores). Declared subscriptions are re-asserted
// idempotently; entries answer NotModified when the version stamp still
// matches the store.
func (m *Model) DeliverResyncToServer(b wire.Batch) *wire.Batch {
	if b.Kind != wire.KindResyncReq || m.scDetached {
		return nil
	}
	if m.epoch != 0 && b.Epoch != 0 && b.Epoch != m.epoch {
		// The client is resyncing against a dead incarnation: its warm
		// state predates the restart, so nothing is re-asserted and the
		// answer carries only the new epoch — the client must fence.
		return &wire.Batch{Kind: wire.KindResyncResp, Epoch: m.epoch}
	}
	resp := &wire.Batch{Kind: wire.KindResyncResp, Epoch: m.epoch}
	for i, key := range b.Keys {
		st := m.side(m.sc, key)
		if m.mode.Kind != ModeStatic1 {
			st.hasCopy = true
		}
		e := wire.Entry{Key: key, Version: m.store[key]}
		var hint uint64
		if i < len(b.Versions) {
			hint = b.Versions[i]
		}
		if hint == e.Version {
			e.NotModified = true
		}
		resp.Entries = append(resp.Entries, e)
	}
	return resp
}

// DeliverResyncToClient applies a server->client ResyncResp to the MC
// state machine and returns the frames the client must emit: a DeleteReq
// for every key the missed writes turned write-majority. Entries apply
// only to held keys and are version-guarded, so duplicates are inert.
func (m *Model) DeliverResyncToClient(b wire.Batch) []wire.Message {
	if b.Kind != wire.KindResyncResp {
		return nil
	}
	if m.noteEpoch(b.Epoch) {
		// The answer names a new epoch: fence. The entries (if any) speak
		// for a dead incarnation and are ignored; the client stays offline
		// with the fence latched until a cold reattach.
		return nil
	}
	var emits []wire.Message
	for _, e := range b.Entries {
		st := m.side(m.mc, e.Key)
		if !st.hasCopy || e.NotModified {
			continue
		}
		cur := m.cache[e.Key]
		if e.Version <= cur {
			continue // duplicated or reordered answer
		}
		m.cache[e.Key] = e.Version
		if m.mode.Kind != ModeSW {
			continue
		}
		// Missed writes slide the window as if propagated one by one,
		// capped at K (older pushes would have slid out anyway).
		missed := int(e.Version - cur)
		if missed > m.mode.K {
			missed = m.mode.K
		}
		for i := 0; i < missed; i++ {
			st.push(sched.Write)
		}
		if !st.readMajority() {
			st.hasCopy = false
			delete(m.cache, e.Key)
			emits = append(emits, wire.Message{
				Kind: wire.KindDeleteReq, Key: e.Key, Window: st.windowCopy(),
			})
		}
	}
	return emits
}

// Keys returns every key the model has state for, for final-state sweeps.
func (m *Model) Keys() []string {
	set := make(map[string]struct{})
	for k := range m.store {
		set[k] = struct{}{}
	}
	for k := range m.mc {
		set[k] = struct{}{}
	}
	for k := range m.sc {
		set[k] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders a compact dump of the model state, for divergence
// reports.
func (m *Model) String() string {
	s := fmt.Sprintf("model[%v]", m.mode)
	for _, k := range m.Keys() {
		mc, sc := m.side(m.mc, k), m.side(m.sc, k)
		s += fmt.Sprintf(" %s{store=v%d mc=%v/%v sc=%v/%v", k,
			m.store[k], mc.hasCopy, mc.window, sc.hasCopy, sc.window)
		if v, ok := m.cache[k]; ok {
			s += fmt.Sprintf(" cache=v%d", v)
		}
		s += "}"
	}
	return s
}
