package replica

import (
	"errors"
	"fmt"
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/transport"
)

// End-to-end crash-consistency sweeps: a real server on a CrashFS-backed
// store, a real client over an in-memory link, a simulated power cut at
// every reachable point, and a restart through the same recovery path
// the supervisor drives. The contract under test is the ISSUE's headline
// guarantee: under sync=always and sync=group, zero acknowledged writes
// are lost and no client ever sees a version roll back; under
// sync=never, any durable prefix may survive, and the epoch fence must
// advertise the restart before the client can read through it.

// crashHarness is one server+client pair on a power-cut filesystem.
type crashHarness struct {
	cfs   *db.CrashFS
	store *db.Store
	srv   *Server
	sess  *Session
	cli   *Client
}

func newCrashHarness(t *testing.T, pol db.SyncPolicy) *crashHarness {
	t.Helper()
	h := &crashHarness{cfs: db.NewCrashFS()}
	var err error
	h.store, err = db.OpenWith(db.Options{Path: "sc.log", Sync: pol, FS: h.cfs})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	h.srv, err = NewServer(h.store, Static2())
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	sLink, cLink := transport.NewMemPair()
	h.cli, err = NewClient(cLink, Static2())
	if err != nil {
		t.Fatalf("new client: %v", err)
	}
	// Attach after the client exists: the mem pair delivers synchronously,
	// so the epoch greeting lands in the client's handler right here.
	h.sess = h.srv.Attach(sLink)
	if got, want := h.cli.Epoch(), h.store.Epoch(); got != want {
		t.Fatalf("client adopted epoch %d from the greeting, store at %d", got, want)
	}
	return h
}

// restart power-cuts the filesystem keeping the first keep journaled
// ops, reopens the store, and rebuilds the server — volatile state lost,
// durable prefix kept, epoch bumped.
func (h *crashHarness) restart(t *testing.T, pol db.SyncPolicy, keep int) {
	t.Helper()
	oldEpoch := h.store.Epoch()
	h.cli.Suspend()
	h.cfs.Kill(keep)
	var err error
	h.store, err = db.OpenWith(db.Options{Path: "sc.log", Sync: pol, FS: h.cfs})
	if err != nil {
		t.Fatalf("reopen store after crash: %v", err)
	}
	if h.store.Epoch() != oldEpoch+1 {
		t.Fatalf("restart: epoch %d -> %d, want +1", oldEpoch, h.store.Epoch())
	}
	h.srv, err = NewServer(h.store, Static2())
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
}

// recover redials: a fresh pair, attach (the greeting is lost — the
// client's handler moves to the new link only inside ResumeResync, which
// is exactly the race a real redial has), then the warm resync whose
// authoritative epoch either admits the client or fences it. Returns
// whether the client was fenced.
func (h *crashHarness) recover(t *testing.T) bool {
	t.Helper()
	sLink, cLink := transport.NewMemPair()
	h.sess = h.srv.Attach(sLink)
	if _, err := h.cli.ResumeResync(cLink); err != nil {
		t.Fatalf("resume resync: %v", err)
	}
	fenced := h.cli.EpochFenced()
	if fenced {
		// The supervisor's move: a fence demands a cold reattach, and
		// until it happens every read must advertise the restart.
		if _, err := h.cli.Read("any"); !errors.Is(err, ErrEpochChanged) {
			t.Fatalf("read while fenced: err=%v, want ErrEpochChanged", err)
		}
		h.cli.Reattach(cLink)
		if got, want := h.cli.Epoch(), h.store.Epoch(); got != want {
			t.Fatalf("client at epoch %d after fence, server at %d", got, want)
		}
	}
	if h.cli.Offline() {
		t.Fatalf("client still offline after recovery")
	}
	return fenced
}

var sweepKeys = [3]string{"a", "b", "c"}

// runWrites issues n acknowledged writes round-robin over three keys and
// returns the committed version per key, plus the versions the client
// has observed by reading each written key.
func (h *crashHarness) runWrites(t *testing.T, n int) (acked, seen map[string]uint64) {
	t.Helper()
	acked = make(map[string]uint64)
	seen = make(map[string]uint64)
	for w := 0; w < n; w++ {
		key := sweepKeys[w%len(sweepKeys)]
		it, err := h.srv.Write(key, []byte(fmt.Sprintf("%s#%d", key, w)))
		if err != nil {
			t.Fatalf("write %d (%s): %v", w, key, err)
		}
		acked[key] = it.Version
	}
	for key := range acked {
		it, err := h.cli.Read(key)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		seen[key] = it.Version
	}
	return acked, seen
}

// TestRestartKillPointSweep crashes the server after every acknowledged
// write count, with the harshest possible cut (nothing unsynced
// survives), under both durable policies. Every acknowledged write must
// be present at its exact version after restart, and the client — fenced
// or not — must never read a version below what it saw before the cut.
func TestRestartKillPointSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  db.SyncPolicy
	}{
		{"always", db.SyncAlways},
		{"group", db.SyncGroup},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const maxWrites = 8
			for n := 0; n <= maxWrites; n++ {
				h := newCrashHarness(t, tc.pol)
				acked, seen := h.runWrites(t, n)

				// An acknowledged write is durable by contract: once the
				// ack is out, nothing it needs may still sit in the
				// unsynced journal, so Kill(0) — the worst cut there is —
				// must not touch it.
				if ops := h.cfs.Ops(); ops != 0 {
					t.Fatalf("n=%d: %d journaled ops remain after %d acked writes; acked data is not durable",
						n, ops, n)
				}
				h.restart(t, tc.pol, 0)
				for key, v := range acked {
					it, ok := h.store.Get(key)
					if !ok || it.Version != v {
						t.Fatalf("n=%d: acked write %s v%d lost (got v%d, present=%v)",
							n, key, v, it.Version, ok)
					}
				}

				fenced := h.recover(t)
				if n > 0 && !fenced {
					t.Fatalf("n=%d: client held pre-crash copies but was not fenced", n)
				}
				for key, v := range seen {
					it, err := h.cli.Read(key)
					if err != nil {
						t.Fatalf("n=%d: post-restart read %s: %v", n, key, err)
					}
					if it.Version < v {
						t.Fatalf("n=%d: client-visible rollback on %s: saw v%d, now v%d",
							n, key, v, it.Version)
					}
				}
				h.store.Close()
			}
		})
	}
}

// TestRestartKillPointSweepNever runs the same workload under sync=never
// and sweeps the power cut across every journaled op boundary. Any
// prefix of the acknowledged writes may survive — that is the policy's
// contract — but whatever does survive must be an exact prefix (no
// holes, no corruption), the epoch must bump, and a client that saw
// newer versions must be fenced before it can read the rolled-back
// state: the divergence is advertised, never silent.
func TestRestartKillPointSweepNever(t *testing.T) {
	const nWrites = 8
	// Probe run: count the journaled ops the full workload produces.
	probe := newCrashHarness(t, db.SyncNever)
	probe.runWrites(t, nWrites)
	ops := probe.cfs.Ops()
	probe.store.Close()
	if ops < nWrites {
		t.Fatalf("probe: %d journaled ops for %d unsynced writes", ops, nWrites)
	}

	for cut := 0; cut <= ops; cut++ {
		h := newCrashHarness(t, db.SyncNever)
		acked, seen := h.runWrites(t, nWrites)
		h.restart(t, db.SyncNever, cut)

		// Whatever survives must be a prefix of the acknowledged history:
		// no key beyond its acked version, no phantom versions.
		for key, v := range acked {
			if it, _ := h.store.Get(key); it.Version > v {
				t.Fatalf("cut=%d: %s surfaced v%d beyond acked v%d", cut, key, it.Version, v)
			}
		}

		if !h.recover(t) {
			t.Fatalf("cut=%d: client held pre-crash copies but was not fenced", cut)
		}
		// Post-fence reads succeed against the rolled-back store: the
		// regression was advertised by the fence, so serving the older
		// surviving versions is now honest.
		for key := range seen {
			if _, err := h.cli.Read(key); err != nil {
				t.Fatalf("cut=%d: post-recovery read %s: %v", cut, key, err)
			}
		}
		h.store.Close()
	}
}
