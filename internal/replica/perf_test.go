package replica

import (
	"sync"
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// captureLink is a Link stub that records the identity (backing-array
// pointer) and a copy of every frame it is handed, so tests can prove
// frames are shared or not across sends without a real transport.
type captureLink struct {
	mu     sync.Mutex
	ptrs   []*byte
	frames [][]byte
}

func (l *captureLink) Send(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(frame) > 0 {
		l.ptrs = append(l.ptrs, &frame[0])
	} else {
		l.ptrs = append(l.ptrs, nil)
	}
	l.frames = append(l.frames, append([]byte(nil), frame...))
	return nil
}
func (l *captureLink) SetHandler(transport.Handler) {}
func (l *captureLink) Close() error                 { return nil }

// nullLink discards frames; the cheapest possible transport, for isolating
// the replica send path's own cost.
type nullLink struct{}

func (nullLink) Send([]byte) error              { return nil }
func (nullLink) SetHandler(transport.Handler)   {}
func (nullLink) Close() error                   { return nil }

// TestServerSendPathAllocs pins the SC steady-state send machinery —
// pooled encode, meter, link hand-off, buffer release — at zero
// allocations per message.
func TestServerSendPathAllocs(t *testing.T) {
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.Attach(nullLink{})
	msg := wire.Message{Kind: wire.KindWriteProp, Key: "hot", Value: []byte("payload-123456"), Version: 7}
	sess.sendData(msg) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		sess.sendData(msg)
	})
	if allocs != 0 {
		t.Fatalf("sendData allocated %.1f times per run, want 0", allocs)
	}
}

// TestWriteFanOutSharesOneEncode proves the SC propagation batching: one
// Write to a key with k subscribed clients hands every link the SAME
// bytes — one encode, k sends — instead of k independent encodes.
func TestWriteFanOutSharesOneEncode(t *testing.T) {
	const k = 16
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	links := make([]*captureLink, k)
	sessions := make([]*Session, k)
	req, err := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write("hot", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	for i := range links {
		links[i] = &captureLink{}
		sessions[i] = srv.Attach(links[i])
		// A read subscribes the session (static-2 allocates on first
		// contact); the response frame lands in the capture link.
		sessions[i].onFrame(req)
	}
	for _, l := range links {
		l.mu.Lock()
		l.ptrs, l.frames = nil, nil
		l.mu.Unlock()
	}

	if _, err := srv.Write("hot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	var shared *byte
	for i, l := range links {
		l.mu.Lock()
		if len(l.frames) != 1 {
			t.Fatalf("session %d got %d frames, want 1", i, len(l.frames))
		}
		m, err := wire.Decode(l.frames[0])
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if m.Kind != wire.KindWriteProp || m.Key != "hot" || string(m.Value) != "v1" {
			t.Fatalf("session %d got %+v", i, m)
		}
		if shared == nil {
			shared = l.ptrs[0]
		} else if l.ptrs[0] != shared {
			t.Fatalf("session %d received a separately encoded frame — fan-out did not share bytes", i)
		}
		l.mu.Unlock()
	}
}

// TestWriteFanOutMetersPerSession checks that sharing the encoded frame
// does not merge the accounting: each subscribed session still meters its
// own connection and data message per propagated write.
func TestWriteFanOutMetersPerSession(t *testing.T) {
	const k = 4
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	req, _ := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "x"})
	srv.Write("x", []byte("v0"))
	sessions := make([]*Session, k)
	for i := range sessions {
		sessions[i] = srv.Attach(&captureLink{})
		sessions[i].onFrame(req)
	}
	before := make([]MeterSnapshot, k)
	for i, s := range sessions {
		before[i] = s.Meter().Snapshot()
	}
	srv.Write("x", []byte("v1"))
	for i, s := range sessions {
		d := s.Meter().Snapshot()
		if d.DataMsgs != before[i].DataMsgs+1 || d.Connections != before[i].Connections+1 {
			t.Fatalf("session %d: %+v -> %+v, want one data message and one connection", i, before[i], d)
		}
	}
}
