package replica

import (
	"sync"
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// captureLink is a Link stub that records the identity (backing-array
// pointer) and a copy of every frame it is handed, so tests can prove
// frames are shared or not across sends without a real transport.
type captureLink struct {
	mu     sync.Mutex
	ptrs   []*byte
	frames [][]byte
}

func (l *captureLink) Send(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(frame) > 0 {
		l.ptrs = append(l.ptrs, &frame[0])
	} else {
		l.ptrs = append(l.ptrs, nil)
	}
	l.frames = append(l.frames, append([]byte(nil), frame...))
	return nil
}
func (l *captureLink) SetHandler(transport.Handler) {}
func (l *captureLink) Close() error                 { return nil }

// nullLink discards frames; the cheapest possible transport, for isolating
// the replica send path's own cost.
type nullLink struct{}

func (nullLink) Send([]byte) error            { return nil }
func (nullLink) SetHandler(transport.Handler) {}
func (nullLink) Close() error                 { return nil }

// TestServerSendPathAllocs pins the SC steady-state send machinery —
// pooled encode, meter, link hand-off, buffer release — at zero
// allocations per message.
func TestServerSendPathAllocs(t *testing.T) {
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.Attach(nullLink{})
	msg := wire.Message{Kind: wire.KindWriteProp, Key: "hot", Value: []byte("payload-123456"), Version: 7}
	sess.sendData(msg) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		sess.sendData(msg)
	})
	if allocs != 0 {
		t.Fatalf("sendData allocated %.1f times per run, want 0", allocs)
	}
}

// TestWriteFanOutSharesOneEncode proves the SC propagation batching: one
// Write to a key with k subscribed clients hands every link the SAME
// bytes — one encode, k sends — instead of k independent encodes.
func TestWriteFanOutSharesOneEncode(t *testing.T) {
	const k = 16
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	links := make([]*captureLink, k)
	sessions := make([]*Session, k)
	req, err := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write("hot", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	for i := range links {
		links[i] = &captureLink{}
		sessions[i] = srv.Attach(links[i])
		// A read subscribes the session (static-2 allocates on first
		// contact); the response frame lands in the capture link.
		sessions[i].onFrame(req)
	}
	for _, l := range links {
		l.mu.Lock()
		l.ptrs, l.frames = nil, nil
		l.mu.Unlock()
	}

	if _, err := srv.Write("hot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	var shared *byte
	for i, l := range links {
		l.mu.Lock()
		if len(l.frames) != 1 {
			t.Fatalf("session %d got %d frames, want 1", i, len(l.frames))
		}
		m, err := wire.Decode(l.frames[0])
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if m.Kind != wire.KindWriteProp || m.Key != "hot" || string(m.Value) != "v1" {
			t.Fatalf("session %d got %+v", i, m)
		}
		if shared == nil {
			shared = l.ptrs[0]
		} else if l.ptrs[0] != shared {
			t.Fatalf("session %d received a separately encoded frame — fan-out did not share bytes", i)
		}
		l.mu.Unlock()
	}
}

// TestServerReadPathAllocs pins the whole per-shard read hot path — frame
// receive, lastSeen refresh under the shard token, borrowed decode, store
// get, protocol state machine, pooled response encode — at zero
// allocations per served read, at both one shard and many.
func TestServerReadPathAllocs(t *testing.T) {
	for _, shards := range []int{1, 8} {
		srv, err := NewServerShards(db.NewStore(), Static2(), shards)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Write("hot", []byte("payload-123456")); err != nil {
			t.Fatal(err)
		}
		sess := srv.Attach(nullLink{})
		req, err := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
		if err != nil {
			t.Fatal(err)
		}
		sess.onFrame(req) // warm: allocates the item state and subscribes
		allocs := testing.AllocsPerRun(200, func() {
			sess.onFrame(req)
		})
		if allocs != 0 {
			t.Fatalf("shards=%d: read path allocated %.1f times per run, want 0", shards, allocs)
		}
	}
}

// TestWriteFanOutAllocs pins the sharded write fan-out: with k subscribed
// sessions spread over 8 shards, a steady-state Write costs exactly the
// store's one defensive value copy — the shard walk, the per-shard
// classification scratch, the shared pooled encode, and every send are
// allocation-free.
func TestWriteFanOutAllocs(t *testing.T) {
	const k = 16
	srv, err := NewServerShards(db.NewStore(), SW(3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write("hot", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	req, _ := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
	for i := 0; i < k; i++ {
		sess := srv.Attach(nullLink{})
		// Two reads reach the SW3 read majority: the session allocates a
		// copy and stays subscribed (the null link never sends the
		// deallocating DeleteReq back), so every later Write propagates.
		sess.onFrame(req)
		sess.onFrame(req)
	}
	payload := []byte("fan-out-payload")
	if _, err := srv.Write("hot", payload); err != nil { // warm scratch + pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := srv.Write("hot", payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("fan-out write allocated %.1f times per run, want <=1 (the store's value copy)", allocs)
	}
}

// BenchmarkShardReadPath measures one served read end to end on the
// sharded core (null transport): decode, token, state machine, encode.
func BenchmarkShardReadPath(b *testing.B) {
	srv, err := NewServerShards(db.NewStore(), Static2(), 8)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Write("hot", []byte("payload-123456")); err != nil {
		b.Fatal(err)
	}
	sess := srv.Attach(nullLink{})
	req, _ := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
	sess.onFrame(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.onFrame(req)
	}
}

// BenchmarkShardWriteFanOut measures one Write propagating to 16
// subscribers spread across 8 shards: one shared encode, 16 sends.
func BenchmarkShardWriteFanOut(b *testing.B) {
	srv, err := NewServerShards(db.NewStore(), SW(3), 8)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.Write("hot", []byte("v0")); err != nil {
		b.Fatal(err)
	}
	req, _ := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "hot"})
	for i := 0; i < 16; i++ {
		sess := srv.Attach(nullLink{})
		sess.onFrame(req)
		sess.onFrame(req)
	}
	payload := []byte("fan-out-payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Write("hot", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriteFanOutMetersPerSession checks that sharing the encoded frame
// does not merge the accounting: each subscribed session still meters its
// own connection and data message per propagated write.
func TestWriteFanOutMetersPerSession(t *testing.T) {
	const k = 4
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	req, _ := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "x"})
	srv.Write("x", []byte("v0"))
	sessions := make([]*Session, k)
	for i := range sessions {
		sessions[i] = srv.Attach(&captureLink{})
		sessions[i].onFrame(req)
	}
	before := make([]MeterSnapshot, k)
	for i, s := range sessions {
		before[i] = s.Meter().Snapshot()
	}
	srv.Write("x", []byte("v1"))
	for i, s := range sessions {
		d := s.Meter().Snapshot()
		if d.DataMsgs != before[i].DataMsgs+1 || d.Connections != before[i].Connections+1 {
			t.Fatalf("session %d: %+v -> %+v, want one data message and one connection", i, before[i], d)
		}
	}
}
