package replica

import (
	"strings"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/sched"
	"mobirep/internal/wire"
)

// Client-side relay hooks. A support station's parent face is a Client;
// the station fetches through it with ReadThrough (continuation-style,
// never parking a goroutine), mirrors parent-face state changes downward
// through the apply/drop/fence handlers, and sheds copies the placement
// policy vetoes with DropCopy. Read floors (SetTrackFloors) make reads
// monotone per key even when a relay's copy lags the root.

// readWaiter is one parked singleton read: the channel its goroutine
// waits on and the floor its request carried (0 = none). A response
// below the head waiter's floor is a stale duplicate and must not
// complete the read.
type readWaiter struct {
	ch    chan wire.Message
	floor uint64
}

// fnWaiter is one continuation-style read (ReadThrough). Identified by
// pointer for cancellation — closures are not comparable.
type fnWaiter struct {
	fn    func(msg wire.Message, ok bool)
	floor uint64
}

// ReadThrough performs a read that never blocks: served synchronously
// from the local copy when it satisfies floor, otherwise done is
// registered as a continuation and runs when the response arrives (or
// with ok=false if the read is abandoned — offline, link failure, or a
// reconnect clearing the waiters). done runs on the caller's goroutine
// or a transport delivery goroutine; the item's Value is only valid for
// the duration of the call and must be copied at any retention point.
// done is called exactly once unless the response is lost in transit
// with no subsequent reconnect (the caller's retry machinery owns that
// case, exactly as a timed-out Read does).
func (c *Client) ReadThrough(key string, floor uint64, done func(it db.Item, ok bool)) {
	c.mu.Lock()
	if c.offline {
		c.mu.Unlock()
		mReadOffline.Inc()
		done(db.Item{}, false)
		return
	}
	if f := c.floors[key]; f > floor {
		// The client's own floor folds in: the subtree below a relay gets
		// collectively monotone reads, not just per original requester.
		floor = f
	}
	st := c.state(key)
	if st.hasCopy {
		if it, ok := c.cache.Get(key); ok && it.Version >= floor {
			if st.mode.Kind == ModeSW {
				st.window.Push(sched.Read)
			}
			c.noteFloorLocked(key, it.Version)
			c.mu.Unlock()
			mReadLocal.Inc()
			done(it, true)
			return
		} else if !ok {
			// Cache and allocation state disagree (a concurrent Drop);
			// repair and go remote, as ReadContext does.
			st.hasCopy = false
		}
		// A held copy below the floor stays held: the remote answer is
		// absorbed like a one-key resync (see absorbLocked).
	} else {
		c.cache.Get(key) // record the miss
	}
	fw := &fnWaiter{fn: func(msg wire.Message, ok bool) {
		if !ok {
			done(db.Item{}, false)
			return
		}
		// msg is borrowed; the item hands the caller's own key back so
		// nothing retains transport memory by accident.
		done(db.Item{Key: key, Value: msg.Value, Version: msg.Version}, true)
	}, floor: floor}
	kc := strings.Clone(key)
	c.pendingFn[kc] = append(c.pendingFn[kc], fw)
	link := c.link
	c.mu.Unlock()

	c.meter.addConnection()
	if err := c.sendControlOn(link, wire.Message{Kind: wire.KindReadReq, Key: key, Version: floor}); err != nil {
		// Only the goroutine that actually removed the waiter may fail it:
		// a concurrent Suspend that already took the waiter set will fail
		// it through failWaiters.
		if c.cancelFn(key, fw) {
			mReadOffline.Inc()
			done(db.Item{}, false)
		}
		return
	}
	mReadRemote.Inc()
}

// cancelFn removes fw from key's continuation waiters, reporting whether
// it was still registered.
func (c *Client) cancelFn(key string, fw *fnWaiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	waiters := c.pendingFn[key]
	for i, w := range waiters {
		if w == fw {
			c.pendingFn[key] = append(waiters[:i], waiters[i+1:]...)
			return true
		}
	}
	return false
}

// headFloorLocked returns the floor of the oldest waiter for key, of
// either kind (the transport is FIFO, so the next response answers the
// head). 0 when no waiter or no floor. Caller holds c.mu.
func (c *Client) headFloorLocked(key string) uint64 {
	if ws := c.pending[key]; len(ws) > 0 {
		return ws[0].floor
	}
	if fns := c.pendingFn[key]; len(fns) > 0 {
		return fns[0].floor
	}
	return 0
}

// noteFloorLocked raises key's read floor to v when floor tracking is
// on. Caller holds c.mu; key may be borrowed (cloned on insert).
func (c *Client) noteFloorLocked(key string, v uint64) {
	if !c.trackFloors || v == 0 {
		return
	}
	if v > c.floors[key] {
		c.floors[strings.Clone(key)] = v
	}
}

// Floor returns the client's read floor for key (0 when floor tracking
// is off or the key has never been read).
func (c *Client) Floor(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.floors[key]
}

// absorbLocked folds a remote read answer into a still-held copy.
// ReadThrough goes remote while holding a copy only when the cached
// version sits below the requested floor, which means the propagation
// path lost writes; account for them exactly like a one-key resync —
// slide the window by the missed writes (capped at K, beyond which
// older pushes would have slid out anyway) and deallocate on a write
// majority. Returns the DeleteReq to send upstream (nil if none) and
// the key whose drop must cascade downward ("" if none). Caller holds
// c.mu.
func (c *Client) absorbLocked(msg wire.Message) (*wire.Message, string) {
	st, ok := c.items[msg.Key]
	if !ok || !st.hasCopy {
		return nil, ""
	}
	cur, _ := c.cache.Peek(msg.Key)
	if !c.cache.Update(db.Item{Key: msg.Key, Value: msg.Value, Version: msg.Version}) {
		return nil, ""
	}
	if st.mode.Kind != ModeSW {
		return nil, ""
	}
	missed := int(msg.Version - cur.Version)
	if missed > st.mode.K {
		missed = st.mode.K
	}
	for i := 0; i < missed; i++ {
		st.window.Push(sched.Write)
	}
	if st.window.ReadMajority() {
		return nil, ""
	}
	st.hasCopy = false
	key := strings.Clone(msg.Key)
	c.cache.Drop(key)
	mDeallocs.Inc()
	obsTr.Record(obs.EvDeallocate, key, "absorb", int64(msg.Version), 0)
	return &wire.Message{Kind: wire.KindDeleteReq, Key: key, Window: st.window.Bits()}, key
}

// DropCopy voluntarily deallocates key — the placement policy decided
// this station should not hold it. The window rides the DeleteReq so the
// server adopts the true read/write history, and the drop cascades
// through the drop handler. Reports whether a copy was actually held.
func (c *Client) DropCopy(key string) bool {
	c.mu.Lock()
	st, ok := c.items[key]
	if !ok || !st.hasCopy {
		c.mu.Unlock()
		return false
	}
	st.hasCopy = false
	out := wire.Message{Kind: wire.KindDeleteReq, Key: key}
	if st.mode.Kind == ModeSW {
		out.Window = st.window.Bits()
	}
	c.cache.Drop(key)
	drop := c.dropFn
	c.mu.Unlock()
	mDeallocs.Inc()
	obsTr.Record(obs.EvDeallocate, key, "placement", 0, 0)
	// An offline send is lost, but so is the copy: the next resync simply
	// does not declare the key, and a server that still believes in the
	// copy is corrected by the re-asserted DeleteReq its next propagation
	// provokes.
	_ = c.sendControl(out)
	if drop != nil {
		drop(key)
	}
	return true
}

// SetApplyHandler registers f to receive every fresh value the client
// learns passively from its server — write propagations and resync
// re-ships (reads complete through their own continuations instead, so
// a fetch never double-fires). f runs on the transport delivery
// goroutine after the client's lock is released; the item's Value is
// borrowed and must be copied at any retention point.
func (c *Client) SetApplyHandler(f func(it db.Item)) {
	c.mu.Lock()
	c.applyFn = f
	c.mu.Unlock()
}

// SetDropHandler registers f to be told whenever the client's copy of a
// key is dropped by protocol action (server DeleteReq, write-majority
// deallocation, resync deallocation, absorb, DropCopy) — the relay's cue
// to cascade the revocation to its own children. Not called for the
// wholesale drops of Disconnect/Reattach/fencing; the fence handler
// covers those.
func (c *Client) SetDropHandler(f func(key string)) {
	c.mu.Lock()
	c.dropFn = f
	c.mu.Unlock()
}

// SetFenceHandler registers f to run when the client fences on an epoch
// change: the authority restarted, every warm copy was dropped, and a
// relay must invalidate its whole subtree before serving again. f runs
// off the client's lock.
func (c *Client) SetFenceHandler(f func()) {
	c.mu.Lock()
	c.fenceFn = f
	c.mu.Unlock()
}

// SetTrackFloors turns per-key read floors on or off. With floors on,
// every singleton read carries the highest version this client has
// observed for the key and refuses to complete below it, making reads
// monotone per key across relay staleness and reconnects (joint reads
// record floors but are not gated). Floors reset on Reattach and on an
// epoch fence — a cold restart is allowed to start over, and a fenced
// authority may legitimately have rolled back.
func (c *Client) SetTrackFloors(on bool) {
	c.mu.Lock()
	c.trackFloors = on
	if on && c.floors == nil {
		c.floors = make(map[string]uint64)
	}
	c.mu.Unlock()
}
