package replica

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobirep/internal/obs"
	"mobirep/internal/transport"
)

// Supervisor keeps a mobile client attached without operator help. Mobile
// links die three ways — the transport reports a close, traffic on the
// link errors, or the link goes silently half-open — and the supervisor
// watches all three: the client's link-error hook and an explicit Suspect
// call cover the first two, a keepalive heartbeat (Ping/Pong with a miss
// budget) covers the third. Once a link is suspect the client is
// suspended warm and the supervisor redials through its transport.Dialer
// under jittered exponential backoff, then drives a warm resync
// (ResumeResync) — or a cold Reattach when configured — until the client
// is back online. Liveness machinery stays out of the protocol's cost
// model: heartbeats are unmetered and the redial loop only pays the
// resync traffic the reattachment itself requires.

// SupervisorConfig tunes the recovery loop. The zero value is usable:
// every field has a sensible default filled in by NewSupervisor.
type SupervisorConfig struct {
	// BackoffMin is the first redial delay; each failure doubles it up
	// to BackoffMax. The actual sleep is jittered uniformly over
	// [d/2, d) so a fleet of clients does not redial in lockstep.
	// Defaults: 50ms and 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// HeartbeatEvery is the keepalive probe interval; 0 disables
	// heartbeats (link failure is then detected only via close events
	// and traffic errors). Must be well under the server's session TTL
	// or the reaper will detach healthy clients.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many consecutive unanswered probes declare
	// the link dead. Default 3.
	HeartbeatMiss int
	// ResyncTimeout bounds how long one reattachment attempt may wait
	// for the server's resync answer before the attempt is abandoned
	// and redialed. Default 5s.
	ResyncTimeout time.Duration
	// Cold disables the warm resync: every recovery is a full Reattach
	// that drops cached copies and learned windows. The right choice
	// when outages are long enough for the cache to be worthless.
	Cold bool
	// Seed fixes the jitter RNG for reproducible tests; 0 keeps the
	// deterministic default.
	Seed int64
}

func (cfg *SupervisorConfig) fillDefaults() {
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	if cfg.HeartbeatMiss <= 0 {
		cfg.HeartbeatMiss = 3
	}
	if cfg.ResyncTimeout <= 0 {
		cfg.ResyncTimeout = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

// SupervisorStats counts recovery activity; read it with Stats.
type SupervisorStats struct {
	// Suspects counts link-death signals delivered to the loop.
	Suspects int64
	// DialAttempts counts redials, successful or not.
	DialAttempts int64
	// Reconnects counts recoveries that brought the client back online.
	Reconnects int64
	// HeartbeatMisses counts probe intervals that saw no pong.
	HeartbeatMisses int64
	// BusySignals counts Busy frames the server answered with (attach
	// refused or session shed) — overload, not death.
	BusySignals int64
	// EpochFences counts recoveries where the resync answer named a new
	// store epoch — the server restarted — and the supervisor fell back to
	// a cold Reattach on the already-dialed link.
	EpochFences int64
}

// Supervisor is the self-healing loop for one client. Create with
// NewSupervisor, start with Start, stop with Stop.
type Supervisor struct {
	cli  *Client
	dial transport.Dialer
	cfg  SupervisorConfig

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	mu  sync.Mutex
	rng *rand.Rand

	// busyCh wakes a reattach attempt early when the server answers Busy;
	// busyHint carries the frame's retry-after for the next sleep.
	busyCh   chan struct{}
	busyHint atomic.Int64

	pingSeq  atomic.Uint64
	pongSeq  atomic.Uint64
	suspects atomic.Int64
	dials    atomic.Int64
	reconns  atomic.Int64
	hbMisses atomic.Int64
	busies   atomic.Int64
	fences   atomic.Int64
}

// NewSupervisor wires a supervisor to cli. dial must return a link ready
// for traffic (for TCP: dialed, chaos-wrapped if desired, and started
// with a close callback that calls Suspect). The supervisor installs
// itself as the client's link-error and pong handler.
func NewSupervisor(cli *Client, dial transport.Dialer, cfg SupervisorConfig) *Supervisor {
	cfg.fillDefaults()
	s := &Supervisor{
		cli:    cli,
		dial:   dial,
		cfg:    cfg,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		busyCh: make(chan struct{}, 1),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	return s
}

// Stats returns a snapshot of the recovery counters.
func (s *Supervisor) Stats() SupervisorStats {
	return SupervisorStats{
		Suspects:        s.suspects.Load(),
		DialAttempts:    s.dials.Load(),
		Reconnects:      s.reconns.Load(),
		HeartbeatMisses: s.hbMisses.Load(),
		BusySignals:     s.busies.Load(),
		EpochFences:     s.fences.Load(),
	}
}

// Start launches the recovery and heartbeat loops.
func (s *Supervisor) Start() {
	s.cli.SetLinkErrorHandler(func(error) { s.Suspect() })
	s.cli.SetPongHandler(func(seq uint64) { s.pongSeq.Store(seq) })
	s.cli.SetBusyHandler(func(retryAfter time.Duration, reason string) {
		// The server is alive but refusing us: remember when it said to
		// come back, wake any reattach attempt waiting on a resync answer
		// that will never arrive, and make sure the recovery loop runs.
		s.busies.Add(1)
		if retryAfter > 0 {
			s.busyHint.Store(int64(retryAfter))
		}
		select {
		case s.busyCh <- struct{}{}:
		default:
		}
		s.Suspect()
	})
	s.wg.Add(1)
	go s.run()
	if s.cfg.HeartbeatEvery > 0 {
		s.wg.Add(1)
		go s.heartbeat()
	}
}

// Stop shuts the loops down and detaches the supervisor's handlers. The
// client is left in whatever state recovery had reached.
func (s *Supervisor) Stop() {
	close(s.stop)
	s.wg.Wait()
	s.cli.SetLinkErrorHandler(nil)
	s.cli.SetPongHandler(nil)
	s.cli.SetBusyHandler(nil)
}

// Suspect tells the supervisor the current link looks dead: a transport
// close callback, a failed send, or any external evidence. Safe from any
// goroutine; duplicate suspicions coalesce.
func (s *Supervisor) Suspect() {
	s.suspects.Add(1)
	mSuspects.Inc()
	obsTr.Record(obs.EvSuspect, "", "", 0, 0)
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// run is the recovery loop: sleep until a suspicion arrives, then cycle
// dial -> resync under backoff until the client is online again.
func (s *Supervisor) run() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		s.recover()
	}
}

// recover drives one outage to completion (or Stop).
func (s *Supervisor) recover() {
	// Tear the dead link down. Warm: copies and windows stay for the
	// resync; reads in the gap fail fast or serve flagged stale data.
	// Cold: everything is dropped, matching the Reattach that follows.
	if s.cfg.Cold {
		s.cli.Disconnect()
	} else {
		s.cli.Suspend()
	}
	// A Busy refusal can end the previous recovery "successfully" — an
	// empty-cache warm resync has nothing to wait for and completes
	// before the refusal lands — leaving the hint latched but never
	// consumed. Honor it before the first dial so a refused client probes
	// at the server's retry-after cadence instead of a tight dial loop.
	if hint := time.Duration(s.busyHint.Swap(0)); hint > 0 {
		if !s.sleep(hint) {
			return
		}
	}
	backoff := s.cfg.BackoffMin
	attempts := int64(0)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		s.dials.Add(1)
		attempts++
		link, err := s.dial()
		if err != nil {
			mDialError.Inc()
		} else if s.reattach(link) {
			mDialOK.Inc()
			s.reconns.Add(1)
			mReconnects.Inc()
			obsTr.Record(obs.EvReconnect, "", "ok", attempts, 0)
			// A failure observed while we were already recovering is
			// stale; coalesced kicks from the dead link die here. A
			// genuinely dead new link re-announces itself on its next
			// failed send or missed heartbeat.
			select {
			case <-s.kick:
			default:
			}
			select {
			case <-s.busyCh:
			default:
			}
			return
		} else {
			mDialResyncFail.Inc()
		}
		if hint := time.Duration(s.busyHint.Swap(0)); hint > 0 {
			// The server answered Busy with a retry-after: it is alive and
			// said when to come back. Honor the hint (still jittered so a
			// refused fleet trickles back) and keep the backoff where it
			// is — overload is not evidence of death, so the next refusal
			// should not probe at dead-server cadence.
			if !s.sleep(hint) {
				return
			}
			continue
		}
		if !s.sleep(backoff) {
			return
		}
		backoff *= 2
		if backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// reattach runs one reattachment attempt over link and reports whether
// the client came back online.
func (s *Supervisor) reattach(link transport.Link) bool {
	if s.cfg.Cold {
		s.cli.Reattach(link)
		return true
	}
	// A Busy signal latched by an earlier attempt is stale; only a refusal
	// of this attempt should cut it short.
	select {
	case <-s.busyCh:
	default:
	}
	done, err := s.cli.ResumeResync(link)
	if err != nil {
		s.cli.Suspend()
		return false
	}
	t := time.NewTimer(s.cfg.ResyncTimeout)
	defer t.Stop()
	select {
	case <-done:
		// Closed by the applied resync answer — or by an abandonment;
		// Offline distinguishes them.
		if s.cli.Offline() {
			if s.cli.EpochFenced() {
				// The answer named a new store epoch: the server restarted
				// and the warm state is already dropped. The link itself is
				// fine — reattach cold on it instead of burning a redial.
				s.fences.Add(1)
				s.cli.Reattach(link)
				return true
			}
			return false
		}
		return true
	case <-s.busyCh:
		// The server answered Busy instead of a resync: admission refused
		// the attach. No point waiting out ResyncTimeout for an answer
		// that will never come; fail the attempt now and let the hint
		// govern the sleep.
		s.cli.Suspend()
		return false
	case <-t.C:
		// The resync answer never came (lossy link, dead server behind a
		// live dial). Abandon the attempt and redial.
		s.cli.Suspend()
		return false
	case <-s.stop:
		return false
	}
}

// sleep waits the jittered backoff, returning false if stopped.
func (s *Supervisor) sleep(d time.Duration) bool {
	// Jitter uniformly over [d/2, d): collisions between fleet members
	// spread out while the cap still bounds the worst case.
	s.mu.Lock()
	wait := d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.mu.Unlock()
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

// heartbeat probes the link every HeartbeatEvery and declares it suspect
// after HeartbeatMiss silent intervals — the only way to notice a
// half-open link that errors on nothing but delivers nothing.
func (s *Supervisor) heartbeat() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatEvery)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		if s.cli.Offline() {
			// The recovery loop owns the outage; don't pile on.
			misses = 0
			continue
		}
		if s.pongSeq.Load() < s.pingSeq.Load() {
			misses++
			s.hbMisses.Add(1)
			mHeartbeatMisses.Inc()
			obsTr.Record(obs.EvHeartbeatMiss, "", "", int64(misses), 0)
			if misses >= s.cfg.HeartbeatMiss {
				misses = 0
				s.Suspect()
				continue
			}
		} else {
			misses = 0
		}
		seq := s.pingSeq.Add(1)
		// A send failure reaches the recovery loop through the client's
		// link-error hook; nothing more to do here.
		_ = s.cli.Ping(seq)
	}
}
