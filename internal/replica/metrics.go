package replica

// Observability instrumentation for the replica protocol layer. All series
// register once at package init against the process-wide obs registry;
// the protocol hot paths then touch pre-resolved handles only — atomic
// adds, no map lookups, no allocations (see the zero-alloc test in
// internal/obs).
//
// The per-instance Meter keeps its exact paper-cost semantics (one meter
// per side per attachment, snapshot-diffed by experiments); each Meter
// add additionally mirrors into the per-side global series below, so
// /metrics shows process-wide protocol traffic without a second
// accounting path that could drift.

import (
	"mobirep/internal/obs"
)

var (
	obsReg = obs.Default()
	obsTr  = obs.DefaultTracer()

	// Per-side mirrors of the Meter counters.
	mcMirror = newMeterMirror("mc")
	scMirror = newMeterMirror("sc")

	// Client read outcomes.
	mReadLocal = obsReg.Counter(`mobirep_replica_reads_total{result="local"}`,
		"MC reads by outcome: local cache hit, remote round trip, flagged "+
			"stale serve, offline failure, timeout, or cancellation.")
	mReadRemote   = obsReg.Counter(`mobirep_replica_reads_total{result="remote"}`, "")
	mReadStale    = obsReg.Counter(`mobirep_replica_reads_total{result="stale"}`, "")
	mReadOffline  = obsReg.Counter(`mobirep_replica_reads_total{result="offline"}`, "")
	mReadTimeout  = obsReg.Counter(`mobirep_replica_reads_total{result="timeout"}`, "")
	mReadCanceled = obsReg.Counter(`mobirep_replica_reads_total{result="canceled"}`, "")

	// Copy allocation flips at the MC.
	mAllocs = obsReg.Counter("mobirep_replica_allocations_total",
		"Copies allocated at the MC (allocating read responses applied).")
	mDeallocs = obsReg.Counter("mobirep_replica_deallocations_total",
		"Copies deallocated at the MC (write-majority windows, SW1 delete "+
			"requests, resync-driven drops).")

	// SC sessions.
	gSessions = obsReg.Gauge("mobirep_replica_sessions",
		"Currently attached SC sessions.")
	mSessionsOpened = obsReg.Counter("mobirep_replica_sessions_opened_total",
		"Sessions ever attached.")
	mSessionsExpired = obsReg.Counter("mobirep_replica_sessions_expired_total",
		"Sessions reaped by the idle expirer.")

	// Overload protection (admission.go).
	mAttachRejectedFull = obsReg.Counter(`mobirep_replica_attach_rejected_total{reason="full"}`,
		"Attaches refused by admission control, by reason.")
	mAttachRejectedRate = obsReg.Counter(`mobirep_replica_attach_rejected_total{reason="rate"}`, "")
	mSessionsShed       = obsReg.Counter("mobirep_replica_sessions_shed_total",
		"Sessions evicted by the memory-watermark shedder or an explicit Evict.")
	mBusyReceived = obsReg.Counter("mobirep_replica_busy_received_total",
		"Busy frames received by clients (server refused an attach or shed the session).")

	// Warm resync outcomes. "immediate" is a resync with nothing held (the
	// client is online at once, no traffic); "sent" is a ResyncReq that
	// went out; "applied" is a ResyncResp folded into the cache.
	mResyncImmediate = obsReg.Counter(`mobirep_replica_resyncs_total{outcome="immediate"}`,
		"Warm resync attempts by outcome.")
	mResyncSent    = obsReg.Counter(`mobirep_replica_resyncs_total{outcome="sent"}`, "")
	mResyncApplied = obsReg.Counter(`mobirep_replica_resyncs_total{outcome="applied"}`, "")
	mResyncFenced  = obsReg.Counter(`mobirep_replica_resyncs_total{outcome="fenced"}`, "")

	// Epoch fencing (epoch.go): warm state dropped because the server's
	// store epoch changed under the client.
	mEpochFences = obsReg.Counter("mobirep_replica_epoch_fences_total",
		"Epoch fences: a client observed the server's store epoch change "+
			"(authority restarted) and dropped its warm state for a cold reattach.")

	mResyncNotModified = obsReg.Counter(`mobirep_replica_resync_entries_total{result="not-modified"}`,
		"Resync response entries by result: revalidated in place vs re-shipped payload.")
	mResyncReshipped = obsReg.Counter(`mobirep_replica_resync_entries_total{result="reshipped"}`, "")

	// Supervisor recovery loop.
	mSuspects = obsReg.Counter("mobirep_replica_suspects_total",
		"Link-death signals delivered to supervisors.")
	mDialOK = obsReg.Counter(`mobirep_replica_dial_attempts_total{outcome="ok"}`,
		"Supervisor redial attempts by outcome.")
	mDialError      = obsReg.Counter(`mobirep_replica_dial_attempts_total{outcome="dial-error"}`, "")
	mDialResyncFail = obsReg.Counter(`mobirep_replica_dial_attempts_total{outcome="resync-fail"}`, "")
	mReconnects     = obsReg.Counter("mobirep_replica_reconnects_total",
		"Recoveries that brought a client back online.")
	mHeartbeatMisses = obsReg.Counter("mobirep_replica_heartbeat_misses_total",
		"Probe intervals that saw no pong.")
)

// meterMirror holds the global per-side registry counters a Meter
// double-writes into.
type meterMirror struct {
	data, control, conns, bytes *obs.Counter
}

func newMeterMirror(side string) *meterMirror {
	help := ""
	if side == "mc" {
		help = "Protocol data messages sent, by side."
	}
	return &meterMirror{
		data: obsReg.Counter(`mobirep_replica_data_msgs_total{side="`+side+`"}`, help),
		control: obsReg.Counter(`mobirep_replica_control_msgs_total{side="`+side+`"}`,
			pick(side == "mc", "Protocol control messages sent, by side.")),
		conns: obsReg.Counter(`mobirep_replica_connections_total{side="`+side+`"}`,
			pick(side == "mc", "Connection-model connections initiated, by side.")),
		bytes: obsReg.Counter(`mobirep_replica_meter_bytes_total{side="`+side+`"}`,
			pick(side == "mc", "Protocol frame payload bytes sent, by side.")),
	}
}

func pick(b bool, s string) string {
	if b {
		return s
	}
	return ""
}
