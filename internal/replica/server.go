package replica

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/sched"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// Server is the stationary computer: it owns the online database and runs
// the SC side of the allocation protocol for every attached mobile client.
// Sessions are partitioned across power-of-two shards (shard.go); every
// per-session operation touches only the owning shard, so the hot path
// takes no server-wide lock.
type Server struct {
	store  *db.Store
	mode   Mode
	now    atomic.Pointer[func() time.Time]
	shards []*shard
	nextID atomic.Uint64

	// Overload protection (admission.go). nSessions counts attached
	// sessions for the MaxSessions reservation check — an atomic rather
	// than a shard walk so TryAttach admits or refuses without touching
	// any shard token. memSoft is the soft memory watermark ShedToBudget
	// enforces; admission holds the attach-time policy.
	nSessions atomic.Int64
	admission atomic.Pointer[AdmissionConfig]
	memSoft   atomic.Int64

	// Tree hooks (relay.go). origin, when set, intercepts every read-path
	// store fetch so a relay station can pull the value from its parent;
	// allocGate, when set, is consulted before any child allocation so a
	// relay never places a copy below itself that it does not hold above.
	// Both nil (the default) leaves the server byte-for-byte identical to
	// the plain two-node SC.
	origin    atomic.Pointer[Origin]
	allocGate atomic.Pointer[func(key string) bool]
}

// Session is the SC-side state for one mobile client. It is created by
// Attach and lives until Detach (explicit, or wired to the link's close
// callback), after which the server stops propagating to the client and
// forgets its allocation state — the mobile computer has left the system,
// exactly what happens when it disconnects or roams away for good.
//
// All mutable session state is guarded by the owning shard's
// single-writer token (shard.enter/exit), not a per-session lock: the
// shard IS the session's event loop.
type Session struct {
	srv   *Server
	shard *shard
	id    uint64
	link  transport.Link
	meter *Meter

	// Guarded by shard token:
	items    map[string]*itemState
	detached bool
	// lastSeen is when the client last proved liveness: any received
	// frame, including pings. The idle reaper compares against it.
	lastSeen time.Time
	// memBytes is this session's share of the shard's memory account:
	// the base cost plus one itemMemCost per key with protocol state.
	memBytes int64
}

// NewServer creates a server over the given store with an automatic
// shard count (next power of two >= GOMAXPROCS). mode applies to every
// key; per-key modes can be layered later without protocol changes
// because all state is per-(session, key).
func NewServer(store *db.Store, mode Mode) (*Server, error) {
	return NewServerShards(store, mode, 0)
}

// NewServerShards is NewServer with an explicit shard count: a power of
// two between 1 and 4096, or 0 for the automatic count. One shard
// reproduces the old single-lock server's scheduling exactly; more
// shards split sessions into independent single-writer domains.
func NewServerShards(store *db.Store, mode Mode, shards int) (*Server, error) {
	if err := mode.validate(); err != nil {
		return nil, err
	}
	if shards == 0 {
		shards = defaultShardCount()
	}
	if !validShardCount(shards) {
		return nil, fmt.Errorf("replica: shard count %d is not a power of two in [1, 4096]", shards)
	}
	s := &Server{store: store, mode: mode, shards: make([]*shard, shards)}
	for i := range s.shards {
		s.shards[i] = newShard(i)
	}
	clock := time.Now
	s.now.Store(&clock)
	return s, nil
}

// SetClock overrides the server's time source, for tests that need
// deterministic session ages.
func (s *Server) SetClock(now func() time.Time) {
	s.now.Store(&now)
}

func (s *Server) clock() func() time.Time {
	return *s.now.Load()
}

// Store exposes the underlying database (the SC's local operations go
// straight to it; only Write must go through the server so propagation
// happens).
func (s *Server) Store() *db.Store { return s.store }

// Shards returns the server's shard count.
func (s *Server) Shards() int { return len(s.shards) }

// ShardSessions returns the per-shard session counts, index == shard id.
func (s *Server) ShardSessions() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.enter()
		out[i] = len(sh.sessions)
		sh.exit()
	}
	return out
}

// Attach wires a client link into the server and returns the session
// handle, which carries the SC-side traffic meter and the Detach method.
// The link's handler is installed by Attach. The session is routed to a
// shard by its attach ID and never migrates.
//
// Attach is unconditional; servers running admission control accept
// clients through TryAttach instead (admission.go).
func (s *Server) Attach(link transport.Link) *Session {
	s.nSessions.Add(1)
	return s.attachSession(s.nextID.Add(1), link)
}

// attachSession does the work of Attach for an already-reserved slot with
// an already-assigned id (TryAttach needs the id first to pick the shard
// whose token bucket to charge).
func (s *Server) attachSession(id uint64, link transport.Link) *Session {
	sh := s.shards[sessionShard(id, len(s.shards))]
	sess := &Session{
		srv:      s,
		shard:    sh,
		id:       id,
		link:     link,
		meter:    newMeter(scMirror),
		items:    make(map[string]*itemState),
		lastSeen: s.clock()(),
		memBytes: sessionMemBase,
	}
	link.SetHandler(sess.onFrame)
	sh.enter()
	sh.sessions[sess] = struct{}{}
	sh.exit()
	sh.addMem(sessionMemBase)
	sh.occupancy.Add(1)
	gSessions.Add(1)
	mSessionsOpened.Inc()
	obsTr.Record(obs.EvSessionOpen, "", "", 0, 0)
	// Durable servers greet every attach with their store epoch so the
	// client can fence if the authority restarted (epoch.go); in-memory
	// servers (epoch 0) stay silent and wire-identical to pre-durability
	// builds.
	sess.sendAttachResp()
	return sess
}

// Meter returns the SC-side traffic meter for this client.
func (ss *Session) Meter() *Meter { return ss.meter }

// ID returns the session's attach ID (unique per server, never reused).
func (ss *Session) ID() uint64 { return ss.id }

// Shard returns the id of the shard that owns this session.
func (ss *Session) Shard() int { return ss.shard.id }

// Detach removes the session: the server stops propagating writes to the
// client and drops its per-key allocation state. Safe to call more than
// once and from a link's close callback.
func (ss *Session) Detach() { ss.detach() }

// detach does the work of Detach and reports whether this call was the
// one that removed the session — concurrent Detach/ExpireIdle races are
// decided under the shard token, so exactly one caller gets true and the
// session gauges move exactly once.
func (ss *Session) detach() bool {
	sh := ss.shard
	sh.enter()
	_, present := sh.sessions[ss]
	if present {
		delete(sh.sessions, ss)
	}
	sh.unsubscribeAll(ss)
	ss.detached = true
	ss.items = make(map[string]*itemState)
	mem := ss.memBytes
	ss.memBytes = 0
	sh.exit()
	if present {
		sh.addMem(-mem)
		sh.occupancy.Add(-1)
		gSessions.Add(-1)
		ss.srv.nSessions.Add(-1)
		obsTr.Record(obs.EvSessionClose, "", "", 0, 0)
	}
	return present
}

// Sessions returns the number of currently attached clients, aggregated
// across shards.
func (s *Server) Sessions() int {
	n := 0
	for _, sh := range s.shards {
		sh.enter()
		n += len(sh.sessions)
		sh.exit()
	}
	return n
}

// LastSeen returns when the client last proved liveness.
func (ss *Session) LastSeen() time.Time {
	ss.shard.enter()
	defer ss.shard.exit()
	return ss.lastSeen
}

// ExpireIdle is the session reaper: it detaches every session whose
// client has been silent for at least ttl and closes its link, returning
// the number reaped. Run it on a ticker to bound how long a silently dead
// radio keeps consuming propagation traffic when the transport never
// delivers a close event (a half-open TCP connection, a crashed NAT).
// A healthy client's heartbeat interval must be well under ttl.
//
// The scan is per-shard: each shard's stale set is collected under its
// own token, then reaped outside it. A session that loses the race to a
// concurrent Detach is not counted or double-closed — detach() decides
// the winner under the shard token.
func (s *Server) ExpireIdle(ttl time.Duration) int {
	cutoff := s.clock()().Add(-ttl)
	reaped := 0
	var stale []*Session
	for _, sh := range s.shards {
		stale = stale[:0]
		sh.enter()
		for sess := range sh.sessions {
			if sess.lastSeen.Before(cutoff) {
				stale = append(stale, sess)
			}
		}
		sh.exit()
		for _, sess := range stale {
			if !sess.detach() {
				continue // a concurrent Detach won; not ours to count
			}
			// Detach leaves links alone (tests and reconnects rely on that);
			// the reaper closes explicitly so the client notices promptly.
			sess.link.Close()
			reaped++
			mSessionsExpired.Inc()
			obsTr.Record(obs.EvSessionExpire, "", "", int64(ttl/time.Millisecond), 0)
		}
	}
	return reaped
}

// Write commits a new value for key at the stationary computer and runs
// the write side of the protocol toward every attached client: propagate
// to subscribed clients (deallocating via delete-request under SW1), or
// just slide the local window when the SC is in charge.
//
// The fan-out walks each shard's key index rather than every session: a
// session with no state for the key needs nothing in any mode (ST1 never
// sends; ST2 sends only with a copy placed; SW without a copy pushes a
// Write into a window that is still all-writes — a no-op on the
// all-writes default a fresh itemState starts from), so only sessions
// that ever touched the key are visited. Shards are processed one at a
// time, classification under the shard token and sends outside it (the
// in-memory transport delivers synchronously and the MC's deallocation
// delete-request re-enters the session on this goroutine); no two shard
// tokens are ever held together.
//
// The fan-out is also batched: every subscribed session receives the
// identical WriteProp (and every SW1 session the identical DeleteReq),
// so the frame is encoded once — lazily, on the first session that needs
// it — and the same bytes are handed to every link across all shards.
// Links never retain a frame after Send returns, so sharing one pooled
// buffer is safe, and a hot key with k subscribers costs one encode
// instead of k.
func (s *Server) Write(key string, value []byte) (db.Item, error) {
	it, err := s.store.Put(key, value)
	if err != nil {
		return db.Item{}, err
	}
	s.fanOut(it)
	return it, nil
}

// fanOut runs the write side of the protocol for one committed item
// toward every attached client. It is the propagation half of Write,
// shared with Apply (relay.go), which commits through Install instead of
// Put. it.Value is read only to encode the shared frame, so a borrowed
// value is safe for the duration of the call.
func (s *Server) fanOut(it db.Item) {
	var propBuf, delBuf *wire.Buf
	for _, sh := range s.shards {
		// fanMu serializes fan-outs through this shard so the scratch
		// slice is reusable; it is never taken from inside a shard token
		// and protocol re-entry (onDeleteReq) takes only the token, so
		// holding it across the sends cannot deadlock.
		sh.fanMu.Lock()
		fan := sh.fan[:0]
		sh.enter()
		for sess := range sh.index[it.Key] {
			if cls := sess.prepareLocalWrite(it); cls != none {
				fan = append(fan, fanEntry{sess, cls})
			}
		}
		sh.exit()
		sh.fan = fan
		for _, e := range fan {
			switch e.class {
			case data:
				if propBuf == nil {
					propBuf = encodePooled(wire.Message{
						Kind: wire.KindWriteProp, Key: it.Key, Value: it.Value, Version: it.Version,
					})
				}
				e.sess.meter.addConnection()
				e.sess.meter.addData(len(propBuf.B))
				_ = e.sess.link.Send(propBuf.B)
			case control:
				if delBuf == nil {
					delBuf = encodePooled(wire.Message{Kind: wire.KindDeleteReq, Key: it.Key})
				}
				e.sess.meter.addConnection()
				e.sess.meter.addControl(len(delBuf.B))
				_ = e.sess.link.Send(delBuf.B)
			}
		}
		sh.fanMu.Unlock()
	}
	wire.PutBuf(propBuf)
	wire.PutBuf(delBuf)
}

// encodePooled encodes msg into a pooled buffer. The caller releases it
// with wire.PutBuf once every Send using it has returned.
func encodePooled(msg wire.Message) *wire.Buf {
	buf := wire.GetBuf()
	b, err := wire.AppendEncode(buf.B[:0], msg)
	if err != nil {
		wire.PutBuf(buf)
		panic(fmt.Sprintf("replica: encode %v: %v", msg.Kind, err))
	}
	buf.B = b
	return buf
}

// state returns (creating if needed) the session's state for key, and
// registers the session in the shard's key index on first touch. Caller
// holds the shard token.
func (ss *Session) state(key string) *itemState {
	st, ok := ss.items[key]
	if !ok {
		st = newItemState(ss.srv.mode)
		// Inserting a map key retains its bytes, and key may alias a
		// borrowed frame (wire.DecodeBorrowed); clone so the session never
		// keeps transport memory alive.
		k := strings.Clone(key)
		ss.items[k] = st
		// A detached session's index entries and memory account were
		// settled by unsubscribeAll; a straggler frame that slips past a
		// handler guard must not re-open either (the index entry would
		// outlive every session).
		if !ss.detached {
			ss.shard.subscribe(k, ss)
			cost := itemMemCost(k, ss.srv.mode)
			ss.memBytes += cost
			ss.shard.addMem(cost)
		}
	}
	return st
}

// prepareLocalWrite runs the SC write-path state machine for one client
// and reports what the server must transmit: the shared WriteProp
// (data), the shared DeleteReq (control), or nothing. Caller holds the
// shard token.
func (ss *Session) prepareLocalWrite(it db.Item) sendClass {
	if ss.detached {
		return none
	}
	st := ss.state(it.Key)
	switch st.mode.Kind {
	case ModeStatic1:
		// Never a copy at the MC: the write is free.
	case ModeStatic2:
		if st.hasCopy {
			return data
		}
	default:
		switch {
		case !st.hasCopy:
			// SC is in charge; the write is free of communication.
			st.window.Push(sched.Write)
		case st.mode.K == 1:
			// SW1 optimization: the window after this write is the single
			// write, so the copy is certainly dropped; send only the
			// delete-request, never the data.
			st.hasCopy = false
			st.window.Fill(sched.Write)
			return control
		default:
			// k > 1: propagate; the MC is in charge and will deallocate
			// if the window turns write-majority, sending back a
			// DeleteReq that rides this write's connection.
			return data
		}
	}
	return none
}

// sendClass marks what, if anything, a protocol step must transmit.
type sendClass uint8

const (
	none sendClass = iota
	data
	control
)

// onFrame handles one message from the client. It runs as one event on
// the owning shard: state mutations happen under the shard token, sends
// after it is released.
func (ss *Session) onFrame(frame []byte) {
	// Any received frame — even a malformed one — proves the link is
	// alive; refresh the reaper's clock first.
	now := ss.srv.clock()()
	sh := ss.shard
	sh.enter()
	ss.lastSeen = now
	sh.exit()
	if wire.IsBatchFrame(frame) {
		b, err := wire.DecodeBatch(frame)
		if err != nil {
			return
		}
		ss.onBatch(b)
		return
	}
	// Borrowed decode: msg aliases frame, which is valid for the duration
	// of this handler. Every dispatch below finishes with msg before
	// returning; state that outlives the handler is cloned at the point of
	// retention (session maps, the store).
	msg, err := wire.DecodeBorrowed(frame)
	if err != nil {
		// A malformed frame is a client bug; drop it. Metering stays
		// consistent because nothing was actioned.
		return
	}
	switch msg.Kind {
	case wire.KindReadReq:
		ss.onReadReq(msg)
	case wire.KindDeleteReq:
		ss.onDeleteReq(msg)
	case wire.KindPing:
		ss.onPing(msg)
	default:
		// ReadResp/WriteProp are server-to-client only; ignore.
	}
}

// onPing echoes a keepalive probe. Liveness traffic: the pong is not
// metered as protocol cost. A detached session stays silent so the
// client's heartbeat discovers the session is gone.
func (ss *Session) onPing(msg wire.Message) {
	ss.shard.enter()
	dead := ss.detached
	ss.shard.exit()
	if dead {
		return
	}
	buf := encodePooled(wire.Message{Kind: wire.KindPong, Version: msg.Version})
	_ = ss.link.Send(buf.B)
	wire.PutBuf(buf)
}

// onReadReq runs the SC read path: resolve the item — from the local
// store, or through the origin hook when this server is a relay whose
// value may live upstream — then serve it and decide allocation. The
// request's Version field is the reader's floor (0 when the client does
// not track floors), forwarded to the origin so a relay never completes
// a read below what the reader has already seen.
func (ss *Session) onReadReq(msg wire.Message) {
	if o := ss.srv.origin.Load(); o != nil {
		// The continuation outlives this handler (an upstream fetch may
		// resolve on a later delivery); msg.Key is borrowed transport
		// memory, so clone it now.
		key := strings.Clone(msg.Key)
		(*o)(key, msg.Version, func(it db.Item, ok bool) {
			if ok {
				ss.finishReadReq(key, it)
			}
			// A failed fetch answers nothing: to the client it is a lost
			// frame, repaired by its usual timeout/reconnect machinery.
		})
		return
	}
	it, _ := ss.srv.store.Get(msg.Key)
	ss.finishReadReq(msg.Key, it)
}

// finishReadReq is the second half of onReadReq: with the item in hand,
// run the allocation decision under the shard token and send the
// response.
func (ss *Session) finishReadReq(key string, it db.Item) {
	sh := ss.shard
	sh.enter()
	if ss.detached {
		sh.exit()
		return
	}
	st := ss.state(key)
	resp := wire.Message{
		Kind: wire.KindReadResp, Key: key, Value: it.Value, Version: it.Version,
	}
	switch st.mode.Kind {
	case ModeStatic1:
		// Never allocate.
	case ModeStatic2:
		// Always allocate on first contact.
		if !st.hasCopy && ss.allocAllowed(key) {
			resp.Allocate = true
			st.hasCopy = true
		}
	default:
		if !st.hasCopy {
			st.window.Push(sched.Read)
			if st.window.ReadMajority() && ss.allocAllowed(key) {
				// Allocate: piggyback the save indication and the window;
				// the MC takes charge.
				resp.Allocate = true
				resp.Window = st.window.Bits()
				st.hasCopy = true
			}
		}
		// A ReadReq while the MC holds a copy would be a stale race;
		// serve the value without changing allocation.
	}
	sh.exit()
	ss.sendData(resp)
}

// allocAllowed consults the allocation gate; nil (no relay) always
// grants. Caller holds the shard token; the gate must not call back into
// this server.
func (ss *Session) allocAllowed(key string) bool {
	g := ss.srv.allocGate.Load()
	return g == nil || (*g)(key)
}

// onDeleteReq runs the SC side of an MC-initiated deallocation: take the
// window back and stop propagating.
func (ss *Session) onDeleteReq(msg wire.Message) {
	ss.shard.enter()
	defer ss.shard.exit()
	if ss.detached {
		// A straggler delete-request racing Detach must not re-create
		// state (and a key-index entry) for a session already torn down.
		return
	}
	st := ss.state(msg.Key)
	if !st.hasCopy {
		return // stale duplicate
	}
	st.hasCopy = false
	if st.mode.Kind == ModeSW && st.window != nil && len(msg.Window) == st.mode.K {
		// Adopt the window the MC maintained while in charge.
		if err := st.window.LoadBits(msg.Window); err != nil {
			// Impossible given the length check; keep the local window.
			_ = err
		}
	}
}

// sendData encodes and transmits a data message through a pooled buffer:
// links never retain a frame after Send returns, so the buffer goes back
// to the pool immediately and the steady-state path allocates nothing.
func (ss *Session) sendData(msg wire.Message) {
	buf := encodePooled(msg)
	ss.meter.addData(len(buf.B))
	_ = ss.link.Send(buf.B) // a closed link only loses metering-visible traffic
	wire.PutBuf(buf)
}

func (ss *Session) sendControl(msg wire.Message) {
	buf := encodePooled(msg)
	ss.meter.addControl(len(buf.B))
	_ = ss.link.Send(buf.B)
	wire.PutBuf(buf)
}
