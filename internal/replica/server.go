package replica

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/sched"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// Server is the stationary computer: it owns the online database and runs
// the SC side of the allocation protocol for every attached mobile client.
type Server struct {
	store *db.Store
	mode  Mode
	now   func() time.Time

	mu       sync.Mutex
	sessions map[*Session]struct{}
}

// Session is the SC-side state for one mobile client. It is created by
// Attach and lives until Detach (explicit, or wired to the link's close
// callback), after which the server stops propagating to the client and
// forgets its allocation state — the mobile computer has left the system,
// exactly what happens when it disconnects or roams away for good.
type Session struct {
	srv   *Server
	link  transport.Link
	meter *Meter

	mu       sync.Mutex
	items    map[string]*itemState
	detached bool
	// lastSeen is when the client last proved liveness: any received
	// frame, including pings. The idle reaper compares against it.
	lastSeen time.Time
}

// NewServer creates a server over the given store. mode applies to every
// key; per-key modes can be layered later without protocol changes because
// all state is per-(session, key).
func NewServer(store *db.Store, mode Mode) (*Server, error) {
	if err := mode.validate(); err != nil {
		return nil, err
	}
	return &Server{
		store:    store,
		mode:     mode,
		now:      time.Now,
		sessions: make(map[*Session]struct{}),
	}, nil
}

// SetClock overrides the server's time source, for tests that need
// deterministic session ages.
func (s *Server) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

func (s *Server) clock() func() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Store exposes the underlying database (the SC's local operations go
// straight to it; only Write must go through the server so propagation
// happens).
func (s *Server) Store() *db.Store { return s.store }

// Attach wires a client link into the server and returns the session
// handle, which carries the SC-side traffic meter and the Detach method.
// The link's handler is installed by Attach.
func (s *Server) Attach(link transport.Link) *Session {
	sess := &Session{
		srv:      s,
		link:     link,
		meter:    newMeter(scMirror),
		items:    make(map[string]*itemState),
		lastSeen: s.clock()(),
	}
	link.SetHandler(sess.onFrame)
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	gSessions.Add(1)
	mSessionsOpened.Inc()
	obsTr.Record(obs.EvSessionOpen, "", "", 0, 0)
	return sess
}

// Meter returns the SC-side traffic meter for this client.
func (ss *Session) Meter() *Meter { return ss.meter }

// Detach removes the session: the server stops propagating writes to the
// client and drops its per-key allocation state. Safe to call more than
// once and from a link's close callback.
func (ss *Session) Detach() {
	ss.srv.mu.Lock()
	_, present := ss.srv.sessions[ss]
	delete(ss.srv.sessions, ss)
	ss.srv.mu.Unlock()
	ss.mu.Lock()
	ss.detached = true
	ss.items = make(map[string]*itemState)
	ss.mu.Unlock()
	if present {
		gSessions.Add(-1)
		obsTr.Record(obs.EvSessionClose, "", "", 0, 0)
	}
}

// Sessions returns the number of currently attached clients.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// LastSeen returns when the client last proved liveness.
func (ss *Session) LastSeen() time.Time {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastSeen
}

// ExpireIdle is the session reaper: it detaches every session whose
// client has been silent for at least ttl and closes its link, returning
// the number reaped. Run it on a ticker to bound how long a silently dead
// radio keeps consuming propagation traffic when the transport never
// delivers a close event (a half-open TCP connection, a crashed NAT).
// A healthy client's heartbeat interval must be well under ttl.
func (s *Server) ExpireIdle(ttl time.Duration) int {
	s.mu.Lock()
	cutoff := s.now().Add(-ttl)
	var stale []*Session
	for sess := range s.sessions {
		sess.mu.Lock()
		if sess.lastSeen.Before(cutoff) {
			stale = append(stale, sess)
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	for _, sess := range stale {
		sess.Detach()
		// Detach leaves links alone (tests and reconnects rely on that);
		// the reaper closes explicitly so the client notices promptly.
		sess.link.Close()
		mSessionsExpired.Inc()
		obsTr.Record(obs.EvSessionExpire, "", "", int64(ttl/time.Millisecond), 0)
	}
	return len(stale)
}

// Write commits a new value for key at the stationary computer and runs
// the write side of the protocol toward every attached client: propagate
// to subscribed clients (deallocating via delete-request under SW1), or
// just slide the local window when the SC is in charge.
//
// The fan-out is batched: every subscribed session receives the identical
// WriteProp (and every SW1 session the identical DeleteReq), so the frame
// is encoded once — lazily, on the first session that needs it — and the
// same bytes are handed to every link. Links never retain a frame after
// Send returns, so sharing one pooled buffer across k sends is safe, and
// a hot key with k subscribers costs one encode instead of k.
func (s *Server) Write(key string, value []byte) (db.Item, error) {
	it, err := s.store.Put(key, value)
	if err != nil {
		return db.Item{}, err
	}
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var propBuf, delBuf *wire.Buf
	for _, sess := range sessions {
		// State changes happen under the session lock inside
		// prepareLocalWrite, but the send happens here, outside it: the
		// in-memory transport delivers synchronously, and the MC's
		// deallocation delete-request re-enters the session on this
		// goroutine.
		switch sess.prepareLocalWrite(it) {
		case data:
			if propBuf == nil {
				propBuf = encodePooled(wire.Message{
					Kind: wire.KindWriteProp, Key: it.Key, Value: it.Value, Version: it.Version,
				})
			}
			sess.meter.addConnection()
			sess.meter.addData(len(propBuf.B))
			_ = sess.link.Send(propBuf.B)
		case control:
			if delBuf == nil {
				delBuf = encodePooled(wire.Message{Kind: wire.KindDeleteReq, Key: it.Key})
			}
			sess.meter.addConnection()
			sess.meter.addControl(len(delBuf.B))
			_ = sess.link.Send(delBuf.B)
		}
	}
	wire.PutBuf(propBuf)
	wire.PutBuf(delBuf)
	return it, nil
}

// encodePooled encodes msg into a pooled buffer. The caller releases it
// with wire.PutBuf once every Send using it has returned.
func encodePooled(msg wire.Message) *wire.Buf {
	buf := wire.GetBuf()
	b, err := wire.AppendEncode(buf.B[:0], msg)
	if err != nil {
		wire.PutBuf(buf)
		panic(fmt.Sprintf("replica: encode %v: %v", msg.Kind, err))
	}
	buf.B = b
	return buf
}

// state returns (creating if needed) the session's state for key.
func (ss *Session) state(key string) *itemState {
	st, ok := ss.items[key]
	if !ok {
		st = newItemState(ss.srv.mode)
		// Inserting a map key retains its bytes, and key may alias a
		// borrowed frame (wire.DecodeBorrowed); clone so the session never
		// keeps transport memory alive.
		ss.items[strings.Clone(key)] = st
	}
	return st
}

// prepareLocalWrite runs the SC write-path state machine for one client
// under the session lock and reports what the server must transmit: the
// shared WriteProp (data), the shared DeleteReq (control), or nothing.
func (ss *Session) prepareLocalWrite(it db.Item) sendClass {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.detached {
		return none
	}
	st := ss.state(it.Key)
	switch st.mode.Kind {
	case ModeStatic1:
		// Never a copy at the MC: the write is free.
	case ModeStatic2:
		if st.hasCopy {
			return data
		}
	default:
		switch {
		case !st.hasCopy:
			// SC is in charge; the write is free of communication.
			st.window.Push(sched.Write)
		case st.mode.K == 1:
			// SW1 optimization: the window after this write is the single
			// write, so the copy is certainly dropped; send only the
			// delete-request, never the data.
			st.hasCopy = false
			st.window.Fill(sched.Write)
			return control
		default:
			// k > 1: propagate; the MC is in charge and will deallocate
			// if the window turns write-majority, sending back a
			// DeleteReq that rides this write's connection.
			return data
		}
	}
	return none
}

// sendClass marks what, if anything, a protocol step must transmit.
type sendClass uint8

const (
	none sendClass = iota
	data
	control
)

// onFrame handles one message from the client.
func (ss *Session) onFrame(frame []byte) {
	// Any received frame — even a malformed one — proves the link is
	// alive; refresh the reaper's clock first.
	now := ss.srv.clock()()
	ss.mu.Lock()
	ss.lastSeen = now
	ss.mu.Unlock()
	if wire.IsBatchFrame(frame) {
		b, err := wire.DecodeBatch(frame)
		if err != nil {
			return
		}
		ss.onBatch(b)
		return
	}
	// Borrowed decode: msg aliases frame, which is valid for the duration
	// of this handler. Every dispatch below finishes with msg before
	// returning; state that outlives the handler is cloned at the point of
	// retention (session maps, the store).
	msg, err := wire.DecodeBorrowed(frame)
	if err != nil {
		// A malformed frame is a client bug; drop it. Metering stays
		// consistent because nothing was actioned.
		return
	}
	switch msg.Kind {
	case wire.KindReadReq:
		ss.onReadReq(msg)
	case wire.KindDeleteReq:
		ss.onDeleteReq(msg)
	case wire.KindPing:
		ss.onPing(msg)
	default:
		// ReadResp/WriteProp are server-to-client only; ignore.
	}
}

// onPing echoes a keepalive probe. Liveness traffic: the pong is not
// metered as protocol cost. A detached session stays silent so the
// client's heartbeat discovers the session is gone.
func (ss *Session) onPing(msg wire.Message) {
	ss.mu.Lock()
	dead := ss.detached
	ss.mu.Unlock()
	if dead {
		return
	}
	buf := encodePooled(wire.Message{Kind: wire.KindPong, Version: msg.Version})
	_ = ss.link.Send(buf.B)
	wire.PutBuf(buf)
}

// onReadReq runs the SC read path: serve the item and decide allocation.
func (ss *Session) onReadReq(msg wire.Message) {
	it, _ := ss.srv.store.Get(msg.Key)
	ss.mu.Lock()
	if ss.detached {
		ss.mu.Unlock()
		return
	}
	st := ss.state(msg.Key)
	resp := wire.Message{
		Kind: wire.KindReadResp, Key: msg.Key, Value: it.Value, Version: it.Version,
	}
	switch st.mode.Kind {
	case ModeStatic1:
		// Never allocate.
	case ModeStatic2:
		// Always allocate on first contact.
		if !st.hasCopy {
			resp.Allocate = true
			st.hasCopy = true
		}
	default:
		if !st.hasCopy {
			st.window.Push(sched.Read)
			if st.window.ReadMajority() {
				// Allocate: piggyback the save indication and the window;
				// the MC takes charge.
				resp.Allocate = true
				resp.Window = st.window.Bits()
				st.hasCopy = true
			}
		}
		// A ReadReq while the MC holds a copy would be a stale race;
		// serve the value without changing allocation.
	}
	ss.mu.Unlock()
	ss.sendData(resp)
}

// onDeleteReq runs the SC side of an MC-initiated deallocation: take the
// window back and stop propagating.
func (ss *Session) onDeleteReq(msg wire.Message) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st := ss.state(msg.Key)
	if !st.hasCopy {
		return // stale duplicate
	}
	st.hasCopy = false
	if st.mode.Kind == ModeSW && st.window != nil && len(msg.Window) == st.mode.K {
		// Adopt the window the MC maintained while in charge.
		if err := st.window.LoadBits(msg.Window); err != nil {
			// Impossible given the length check; keep the local window.
			_ = err
		}
	}
}

// sendData encodes and transmits a data message through a pooled buffer:
// links never retain a frame after Send returns, so the buffer goes back
// to the pool immediately and the steady-state path allocates nothing.
func (ss *Session) sendData(msg wire.Message) {
	buf := encodePooled(msg)
	ss.meter.addData(len(buf.B))
	_ = ss.link.Send(buf.B) // a closed link only loses metering-visible traffic
	wire.PutBuf(buf)
}

func (ss *Session) sendControl(msg wire.Message) {
	buf := encodePooled(msg)
	ss.meter.addControl(len(buf.B))
	_ = ss.link.Send(buf.B)
	wire.PutBuf(buf)
}
