package replica

import (
	"fmt"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/sched"
)

func TestReadManyAllMissing(t *testing.T) {
	cli, srv, serverMeter := pair(t, SW(3))
	for i := 0; i < 5; i++ {
		srv.Write(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	items, err := cli.ReadMany(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if string(it.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("item %d = %q", i, it.Value)
		}
	}
	// One control message (client) + one data message (server): the whole
	// point of the batch.
	total := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
	if total.ControlMsgs != 1 || total.DataMsgs != 1 {
		t.Fatalf("batch traffic = %+v, want 1 control + 1 data", total)
	}
	if total.Connections != 1 {
		t.Fatalf("connections = %d, want 1", total.Connections)
	}
}

func TestReadManyWindowSemantics(t *testing.T) {
	// Each key inside a batch must behave exactly like a singleton read
	// for allocation purposes: under SW3 (window www) two batched reads of
	// the same key allocate on the second batch.
	cli, srv, _ := pair(t, SW(3))
	srv.Write("x", []byte("v"))
	cli.ReadMany([]string{"x"})
	if cli.HasCopy("x") {
		t.Fatal("allocated after one read")
	}
	cli.ReadMany([]string{"x"})
	if !cli.HasCopy("x") {
		t.Fatal("not allocated after read majority")
	}
	// A cached key in a batch is served locally and slides the window.
	items, err := cli.ReadMany([]string{"x"})
	if err != nil || string(items[0].Value) != "v" {
		t.Fatalf("local batched read: %v %q", err, items[0].Value)
	}
}

func TestReadManyMixedHitMiss(t *testing.T) {
	cli, srv, serverMeter := pair(t, SW(1))
	srv.Write("hot", []byte("h"))
	srv.Write("cold", []byte("c"))
	cli.Read("hot") // allocates under SW1

	before := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
	items, err := cli.ReadMany([]string{"hot", "cold"})
	if err != nil {
		t.Fatal(err)
	}
	if string(items[0].Value) != "h" || string(items[1].Value) != "c" {
		t.Fatalf("items = %q %q", items[0].Value, items[1].Value)
	}
	after := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
	// Only the missing key went remote: one control + one data.
	if after.ControlMsgs-before.ControlMsgs != 1 || after.DataMsgs-before.DataMsgs != 1 {
		t.Fatalf("mixed batch traffic: %+v -> %+v", before, after)
	}
	// The hot key stayed cached and now "cold" is allocated (SW1: last
	// request was a read).
	if !cli.HasCopy("cold") {
		t.Fatal("cold not allocated")
	}
}

func TestReadManyAllCachedIsFree(t *testing.T) {
	cli, srv, serverMeter := pair(t, SW(1))
	srv.Write("a", []byte("1"))
	srv.Write("b", []byte("2"))
	cli.Read("a")
	cli.Read("b")
	before := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
	items, err := cli.ReadMany([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if string(items[0].Value) != "1" || string(items[1].Value) != "2" {
		t.Fatalf("items = %q %q", items[0].Value, items[1].Value)
	}
	if after := serverMeter.Snapshot().Add(cli.Meter().Snapshot()); after != before {
		t.Fatalf("fully cached batch caused traffic: %+v -> %+v", before, after)
	}
}

func TestReadManyDuplicateKeys(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	srv.Write("x", []byte("v"))
	items, err := cli.ReadMany([]string{"x", "x", "x"})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if string(it.Value) != "v" {
			t.Fatalf("dup %d = %q", i, it.Value)
		}
	}
}

func TestReadManyEmpty(t *testing.T) {
	cli, _, _ := pair(t, SW(3))
	items, err := cli.ReadMany(nil)
	if err != nil || items != nil {
		t.Fatalf("empty batch: %v %v", items, err)
	}
}

func TestReadManyVsSingletonCost(t *testing.T) {
	// The batch must beat singleton reads by (n-1) message pairs on a
	// cold group.
	const n = 8
	keys := make([]string, n)

	single, srvS, meterS := pair(t, Static1())
	batch, srvB, meterB := pair(t, Static1())
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		srvS.Write(keys[i], []byte("v"))
		srvB.Write(keys[i], []byte("v"))
	}
	for _, k := range keys {
		if _, err := single.Read(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := batch.ReadMany(keys); err != nil {
		t.Fatal(err)
	}
	ts := meterS.Snapshot().Add(single.Meter().Snapshot())
	tb := meterB.Snapshot().Add(batch.Meter().Snapshot())
	if ts.ControlMsgs != n || ts.DataMsgs != n {
		t.Fatalf("singleton traffic: %+v", ts)
	}
	if tb.ControlMsgs != 1 || tb.DataMsgs != 1 {
		t.Fatalf("batch traffic: %+v", tb)
	}
	if tb.Connections != 1 || ts.Connections != n {
		t.Fatalf("connections: batch %d vs singles %d", tb.Connections, ts.Connections)
	}
}

func TestReadManyOffline(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	srv.Write("x", []byte("v"))
	cli.Disconnect()
	if _, err := cli.ReadMany([]string{"x"}); err != ErrOffline {
		t.Fatalf("offline batch read: %v", err)
	}
}

func TestBatchWindowHandoffMatchesPolicy(t *testing.T) {
	// Interleave batched reads and writes and check allocation still
	// tracks the reference policy (every batched read of a key counts as
	// one read of that key).
	cli, srv, _ := pair(t, SW(5))
	srv.Write("x", []byte("seed"))
	ref := sched.MustParse("rrrrrwwwrrwwwwrr")
	policy := core.NewSW(5)
	for i, op := range ref {
		if op == sched.Read {
			if _, err := cli.ReadMany([]string{"x"}); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := srv.Write("x", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		policy.Apply(op)
		if cli.HasCopy("x") != policy.HasCopy() {
			t.Fatalf("op %d: protocol %v vs policy %v", i, cli.HasCopy("x"), policy.HasCopy())
		}
	}
}
