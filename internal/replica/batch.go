package replica

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/sched"
	"mobirep/internal/wire"
)

// Joint reads (section 7.2): "multiple data items can be remotely read in
// one connection". ReadMany serves every cached key locally and fetches
// all missing keys with a single control request answered by a single
// data response, updating each key's window and allocation exactly as a
// per-key read would — only the message count changes. The experiments
// quantify the saving on correlated access patterns.
//
// Revalidation rides for free: the request carries the version of any
// stale archived value the client still holds (dropped copies move to the
// cache's archive), and the server answers NotModified — no payload —
// when the version is current. After a deallocation or a reconnect, the
// unchanged majority of a watch list costs version-check bytes instead of
// full payloads.

// ReadMany performs a joint read at the mobile computer. The returned
// items are in the order of keys. Duplicate keys are served consistently
// (the same item for each occurrence). It is ReadManyContext with no
// cancellation.
func (c *Client) ReadMany(keys []string) ([]db.Item, error) {
	return c.ReadManyContext(context.Background(), keys)
}

// ReadManyContext is ReadMany with a per-request deadline, mirroring
// ReadContext: the remote leg gives up with ctx.Err() when the context
// ends, on top of the client-wide Timeout.
func (c *Client) ReadManyContext(ctx context.Context, keys []string) ([]db.Item, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([]db.Item, len(keys))

	c.mu.Lock()
	if c.offline {
		c.mu.Unlock()
		return nil, ErrOffline
	}
	var missing []string
	var hints []uint64
	missingIdx := make(map[string][]int)
	for i, key := range keys {
		st := c.state(key)
		if st.hasCopy {
			if it, ok := c.cache.Get(key); ok {
				if st.mode.Kind == ModeSW {
					st.window.Push(sched.Read)
				}
				c.noteFloorLocked(key, it.Version)
				out[i] = it
				continue
			}
			st.hasCopy = false
		} else {
			c.cache.Get(key) // record the miss
		}
		if len(missingIdx[key]) == 0 {
			missing = append(missing, key)
			hint := uint64(0)
			if arch, ok := c.cache.Archived(key); ok {
				hint = arch.Version
			}
			hints = append(hints, hint)
		}
		missingIdx[key] = append(missingIdx[key], i)
	}
	if len(missing) == 0 {
		c.mu.Unlock()
		return out, nil
	}
	ch := make(chan wire.Batch, 1)
	c.pendingBatch = append(c.pendingBatch, ch)
	link := c.link
	c.mu.Unlock()

	// One connection, one control message for the whole batch.
	c.meter.addConnection()
	frame, err := wire.EncodeBatch(wire.Batch{Kind: wire.KindMultiReadReq, Keys: missing, Versions: hints})
	if err != nil {
		c.cancelPendingBatch(ch)
		return nil, fmt.Errorf("replica: encode batch: %w", err)
	}
	c.meter.addControl(len(frame))
	if link == nil {
		c.cancelPendingBatch(ch)
		return nil, ErrOffline
	}
	if err := link.Send(frame); err != nil {
		c.cancelPendingBatch(ch)
		c.suspect(link, err)
		// As in ReadContext: a failed send is an offline condition.
		return nil, fmt.Errorf("%w: %v", ErrOffline, err)
	}

	var resp wire.Batch
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, ErrOffline
		}
		resp = r
	case <-timeout:
		c.cancelPendingBatch(ch)
		c.suspect(link, ErrTimeout)
		return nil, ErrTimeout
	case <-ctx.Done():
		c.cancelPendingBatch(ch)
		return nil, ctx.Err()
	}
	for _, e := range resp.Entries {
		it := db.Item{Key: e.Key, Value: e.Value, Version: e.Version}
		if e.NotModified {
			// The archived value is confirmed current. If the entry also
			// allocated, onBatch has already promoted it into the live
			// cache (clearing the archive), so look there first.
			if live, ok := c.cache.Peek(e.Key); ok && live.Version == e.Version {
				it = live
			} else if arch, ok := c.cache.Revalidated(e.Key); ok {
				it = arch
			}
		}
		for _, i := range missingIdx[e.Key] {
			out[i] = it
		}
	}
	return out, nil
}

func (c *Client) cancelPendingBatch(ch chan wire.Batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.pendingBatch {
		if w == ch {
			c.pendingBatch = append(c.pendingBatch[:i], c.pendingBatch[i+1:]...)
			return
		}
	}
}

// onBatch handles server-to-client batch messages. For a MultiReadResp:
// install allocations and wake the oldest joint read (the transport is
// ordered, so responses arrive in request order).
func (c *Client) onBatch(b wire.Batch) {
	if b.Kind == wire.KindResyncResp {
		c.onResyncResp(b)
		return
	}
	if b.Kind != wire.KindMultiReadResp {
		return
	}
	c.mu.Lock()
	if c.epoch == 0 && b.Epoch != 0 {
		// A joint read can be the first frame that tells an attach-greeting-
		// deprived client which epoch it is talking to; adopt it. (A changed
		// epoch cannot arrive here — restarts kill links, and the fence path
		// is the resync answer's job.)
		c.epoch = b.Epoch
	}
	for _, e := range b.Entries {
		if !e.Allocate {
			continue
		}
		st := c.state(e.Key)
		st.hasCopy = true
		if st.mode.Kind == ModeSW {
			if len(e.Window) == st.mode.K {
				if err := st.window.LoadBits(e.Window); err != nil {
					st.window.Fill(sched.Read)
				}
			} else {
				st.window.Fill(sched.Read)
			}
		}
		item := db.Item{Key: e.Key, Value: e.Value, Version: e.Version}
		if e.NotModified {
			if arch, ok := c.cache.Revalidated(e.Key); ok {
				item = arch
			}
		}
		c.cache.Install(item)
	}
	if c.trackFloors {
		// Joint reads record floors (they raise what singleton reads must
		// honor) but are not floor-gated themselves.
		for _, e := range b.Entries {
			c.noteFloorLocked(e.Key, e.Version)
		}
	}
	var ch chan wire.Batch
	if len(c.pendingBatch) > 0 {
		ch = c.pendingBatch[0]
		c.pendingBatch = c.pendingBatch[1:]
	}
	c.mu.Unlock()
	if ch != nil {
		ch <- b
	}
}

// onBatch handles client-to-server batch messages. For a MultiReadReq:
// every key gets the same treatment as a singleton read request, but the
// whole answer rides one data message. On a relay the items are resolved
// through the origin first (see fetchAll); the allocation pass runs only
// once every key is in hand, so the answer is still one frame.
func (ss *Session) onBatch(b wire.Batch) {
	if b.Kind == wire.KindResyncReq {
		ss.onResyncReq(b)
		return
	}
	if b.Kind != wire.KindMultiReadReq {
		return
	}
	ss.fetchAll(b, ss.finishMultiRead)
}

// fetchAll resolves every key of a batch request — locally, or through
// the origin hook on a relay — and calls finish with the items once all
// have resolved. Any failed origin fetch drops the whole request (to the
// client, a lost frame). The batch's memory is owned (wire.DecodeBatch
// copies), so retaining b in the continuation is safe. The version hints
// double as fetch floors: the client has seen the hinted version, so the
// origin must not answer below it.
func (ss *Session) fetchAll(b wire.Batch, finish func(b wire.Batch, items []db.Item)) {
	items := make([]db.Item, len(b.Keys))
	o := ss.srv.origin.Load()
	if o == nil || len(b.Keys) == 0 {
		for i, key := range b.Keys {
			items[i], _ = ss.srv.store.Get(key)
		}
		finish(b, items)
		return
	}
	var failed atomic.Bool
	var left atomic.Int64
	left.Store(int64(len(b.Keys)))
	for i, key := range b.Keys {
		floor := uint64(0)
		if i < len(b.Versions) {
			floor = b.Versions[i]
		}
		i := i
		(*o)(key, floor, func(it db.Item, ok bool) {
			if ok {
				items[i] = it
			} else {
				failed.Store(true)
			}
			if left.Add(-1) == 0 && !failed.Load() {
				finish(b, items)
			}
		})
	}
}

// finishMultiRead is the allocation half of a MultiReadReq, run with
// every item already resolved.
func (ss *Session) finishMultiRead(b wire.Batch, items []db.Item) {
	resp := wire.Batch{Kind: wire.KindMultiReadResp, Epoch: ss.srv.store.Epoch()}
	sh := ss.shard
	sh.enter()
	if ss.detached {
		sh.exit()
		return
	}
	for ki, key := range b.Keys {
		it := items[ki]
		st := ss.state(key)
		e := wire.Entry{Key: key, Value: it.Value, Version: it.Version}
		if ki < len(b.Versions) && b.Versions[ki] != 0 && b.Versions[ki] == it.Version {
			// Version hint matches: skip the payload.
			e.NotModified = true
			e.Value = nil
		}
		switch st.mode.Kind {
		case ModeStatic1:
		case ModeStatic2:
			if !st.hasCopy && ss.allocAllowed(key) {
				e.Allocate = true
				st.hasCopy = true
			}
		default:
			if !st.hasCopy {
				st.window.Push(sched.Read)
				if st.window.ReadMajority() && ss.allocAllowed(key) {
					e.Allocate = true
					e.Window = st.window.Bits()
					st.hasCopy = true
				}
			}
		}
		resp.Entries = append(resp.Entries, e)
	}
	sh.exit()
	ss.sendBatch(resp)
}

// sendBatch encodes a batch response into a pooled buffer and transmits
// it, releasing the buffer as soon as Send returns (links never retain).
func (ss *Session) sendBatch(resp wire.Batch) {
	buf := wire.GetBuf()
	b, err := wire.AppendEncodeBatch(buf.B[:0], resp)
	if err != nil {
		wire.PutBuf(buf)
		panic(fmt.Sprintf("replica: encode batch response: %v", err))
	}
	buf.B = b
	ss.meter.addData(len(b))
	_ = ss.link.Send(b)
	wire.PutBuf(buf)
}

// onResyncReq re-admits a warm client after a link blip: re-assert every
// declared subscription and answer with one data message that
// revalidates current copies (NotModified when the version stamp still
// matches, payload omitted) and re-ships only the keys that changed
// while the client was away. While the MC holds a copy it is in charge
// of the window, so the SC records only the subscription bit; if the
// resync answer makes the MC deallocate, its delete-request hands the
// window back as usual. A duplicated request (chaos) re-asserts
// idempotently; the duplicated answer is version-guarded at the client.
func (ss *Session) onResyncReq(b wire.Batch) {
	epoch := ss.srv.store.Epoch()
	if epoch != 0 && b.Epoch != 0 && b.Epoch != epoch {
		// The declaration was built under a dead epoch: the client's warm
		// state predates this incarnation, so re-asserting its subscriptions
		// would resurrect allocation bits the restart wiped. Answer with a
		// bare fence — the new epoch, no entries — and let the client
		// reattach cold. (A hint of 0 means the client never learned an
		// epoch; its copies were placed by some live incarnation and the
		// version-guarded warm path below handles them.)
		sh := ss.shard
		sh.enter()
		dead := ss.detached
		sh.exit()
		if !dead {
			ss.sendBatch(wire.Batch{Kind: wire.KindResyncResp, Epoch: epoch})
		}
		return
	}
	ss.fetchAll(b, ss.finishResync)
}

// finishResync is the subscription half of a ResyncReq, run with every
// declared key's item already resolved. On a relay the allocation gate
// decides per key whether the declared copy may stand: a key the relay
// could not secure upstream is answered normally but then revoked with a
// DeleteReq, so the child drops a copy that would sit outside the
// root-to-leaf placement path.
func (ss *Session) finishResync(b wire.Batch, items []db.Item) {
	resp := wire.Batch{Kind: wire.KindResyncResp, Epoch: ss.srv.store.Epoch()}
	var revoke []string
	sh := ss.shard
	sh.enter()
	if ss.detached {
		sh.exit()
		return
	}
	for ki, key := range b.Keys {
		it := items[ki]
		st := ss.state(key)
		if st.mode.Kind != ModeStatic1 {
			// ST1 never places copies; a declared copy there is a client
			// bug and gets a refresh without a subscription.
			if ss.allocAllowed(key) {
				st.hasCopy = true
			} else {
				// b's memory is owned (wire.DecodeBatch copies), so the key
				// can be retained as-is.
				revoke = append(revoke, key)
			}
		}
		e := wire.Entry{Key: key, Version: it.Version}
		hint := uint64(0)
		if ki < len(b.Versions) {
			hint = b.Versions[ki]
		}
		if hint == it.Version {
			e.NotModified = true
		} else {
			e.Value = it.Value
		}
		resp.Entries = append(resp.Entries, e)
	}
	sh.exit()
	ss.sendBatch(resp)
	for _, key := range revoke {
		ss.sendControl(wire.Message{Kind: wire.KindDeleteReq, Key: key})
	}
}
