package replica

import (
	"fmt"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// The routing functions are pure functions of their inputs — no per-boot
// seed — so a session or key routes to the same shard on every restart.
// The golden tables below pin that: a change to either hash silently
// re-homes every session in a fleet, which these tests turn into a loud
// failure.

func TestSessionShardGoldens(t *testing.T) {
	cases := []struct {
		id   uint64
		n    int
		want int
	}{
		{1, 2, 1}, {1, 8, 5}, {1, 1024, 485},
		{2, 2, 0}, {2, 8, 2}, {2, 1024, 138},
		{3, 2, 0}, {3, 8, 0}, {3, 1024, 240},
		{7, 2, 0}, {7, 8, 4}, {7, 1024, 788},
		{64, 2, 1}, {64, 8, 3}, {64, 1024, 467},
		{1000, 2, 1}, {1000, 8, 7}, {1000, 1024, 727},
		{123456789, 2, 0}, {123456789, 8, 0}, {123456789, 1024, 352},
		{1 << 40, 2, 0}, {1 << 40, 8, 0}, {1 << 40, 1024, 1016},
	}
	for _, c := range cases {
		if got := sessionShard(c.id, c.n); got != c.want {
			t.Errorf("sessionShard(%d, %d) = %d, want %d", c.id, c.n, got, c.want)
		}
		// Stability: the same input re-routed later (a "restart") cannot
		// move.
		if again := sessionShard(c.id, c.n); again != c.want {
			t.Errorf("sessionShard(%d, %d) unstable: %d then %d", c.id, c.n, c.want, again)
		}
	}
}

func TestKeyShardGoldens(t *testing.T) {
	cases := []struct {
		key  string
		n    int
		want int
	}{
		{"", 2, 1}, {"", 8, 3}, {"", 1024, 155},
		{"a", 2, 0}, {"a", 8, 0}, {"a", 1024, 248},
		{"b", 2, 1}, {"b", 8, 5}, {"b", 1024, 5},
		{"c", 2, 0}, {"c", 8, 2}, {"c", 1024, 514},
		{"hot", 2, 0}, {"hot", 8, 2}, {"hot", 1024, 42},
		{"stock/AAPL", 2, 0}, {"stock/AAPL", 8, 4}, {"stock/AAPL", 1024, 476},
		{"user:12345:inbox", 2, 0}, {"user:12345:inbox", 8, 2}, {"user:12345:inbox", 1024, 842},
	}
	for _, c := range cases {
		if got := keyShard(c.key, c.n); got != c.want {
			t.Errorf("keyShard(%q, %d) = %d, want %d", c.key, c.n, got, c.want)
		}
		if again := keyShard(c.key, c.n); again != c.want {
			t.Errorf("keyShard(%q, %d) unstable: %d then %d", c.key, c.n, c.want, again)
		}
	}
}

// TestShardRoutingRange: every routing result is a valid shard index for
// every power-of-two count, and one shard degenerates to always-0.
func TestShardRoutingRange(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 1024, 4096} {
		for id := uint64(0); id < 1000; id++ {
			got := sessionShard(id, n)
			if got < 0 || got >= n {
				t.Fatalf("sessionShard(%d, %d) = %d out of range", id, n, got)
			}
			if n == 1 && got != 0 {
				t.Fatalf("sessionShard(%d, 1) = %d, want 0", id, got)
			}
		}
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("key-%d", i)
			got := keyShard(key, n)
			if got < 0 || got >= n {
				t.Fatalf("keyShard(%q, %d) = %d out of range", key, n, got)
			}
		}
	}
}

// TestShardRoutingUniformity bounds the distribution skew: sequential
// attach IDs and formatted keys — the realistic worst cases for a weak
// hash, being nearly-identical bit patterns — must spread within ±8% of
// the ideal per-shard share. The binomial standard deviation at this
// scale is ~0.8% of the share, so 8% is ~10 sigma: a real hash defect
// fails it, noise never does.
func TestShardRoutingUniformity(t *testing.T) {
	const (
		n       = 8
		total   = 100000
		ideal   = total / n
		slack   = ideal * 8 / 100
		minSeen = ideal - slack
		maxSeen = ideal + slack
	)
	var byID [n]int
	for id := uint64(1); id <= total; id++ {
		byID[sessionShard(id, n)]++
	}
	for sh, c := range byID {
		if c < minSeen || c > maxSeen {
			t.Errorf("sessionShard: shard %d got %d of %d ids, want %d±%d", sh, c, total, ideal, slack)
		}
	}
	var byKey [n]int
	for i := 0; i < total; i++ {
		byKey[keyShard(fmt.Sprintf("key-%d", i), n)]++
	}
	for sh, c := range byKey {
		if c < minSeen || c > maxSeen {
			t.Errorf("keyShard: shard %d got %d of %d keys, want %d±%d", sh, c, total, ideal, slack)
		}
	}
}

func TestNewServerShardsValidation(t *testing.T) {
	for _, bad := range []int{-1, 3, 6, 12, 1000, 8192} {
		if _, err := NewServerShards(db.NewStore(), Static2(), bad); err == nil {
			t.Errorf("NewServerShards accepted shard count %d", bad)
		}
	}
	for _, good := range []int{1, 2, 8, 256, 4096} {
		srv, err := NewServerShards(db.NewStore(), Static2(), good)
		if err != nil {
			t.Errorf("NewServerShards rejected shard count %d: %v", good, err)
		} else if srv.Shards() != good {
			t.Errorf("Shards() = %d, want %d", srv.Shards(), good)
		}
	}
	srv, err := NewServer(db.NewStore(), Static2())
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.Shards(); !validShardCount(n) {
		t.Errorf("automatic shard count %d is not a valid power of two", n)
	}
}

// TestSessionKeysSameShardInvariant pins the ownership model: a session
// and ALL per-key state it ever accumulates live on the session's shard.
// After driving reads across many sessions and keys, every key a session
// holds a window for must be registered in exactly its own shard's index
// and no other's.
func TestSessionKeysSameShardInvariant(t *testing.T) {
	srv, err := NewServerShards(db.NewStore(), SW(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if _, err := srv.Write(keys[i], []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	sessions := make([]*Session, 32)
	for i := range sessions {
		sessions[i] = srv.Attach(nullLink{})
		// Each session reads a sliding window of keys, so every shard's
		// sessions collectively touch keys that route (by keyShard) to
		// every other shard — ownership must still follow the session.
		for k := 0; k < 5; k++ {
			req, _ := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: keys[(i+k)%len(keys)]})
			sessions[i].onFrame(req)
		}
	}
	for i, sess := range sessions {
		if want := sessionShard(sess.ID(), srv.Shards()); sess.Shard() != want {
			t.Fatalf("session %d placed on shard %d, routing says %d", i, sess.Shard(), want)
		}
		own := srv.shards[sess.Shard()]
		own.enter()
		for key := range sess.items {
			if _, ok := own.index[key][sess]; !ok {
				t.Errorf("session %d holds state for %q but is not indexed on its shard %d", i, key, sess.Shard())
			}
		}
		own.exit()
		for _, other := range srv.shards {
			if other == own {
				continue
			}
			other.enter()
			for key, subs := range other.index {
				if _, ok := subs[sess]; ok {
					t.Errorf("session %d (shard %d) indexed under %q on foreign shard %d", i, sess.Shard(), key, other.id)
				}
			}
			other.exit()
		}
	}
	// Detach must unwind the index completely.
	for _, sess := range sessions {
		sess.Detach()
	}
	for _, sh := range srv.shards {
		sh.enter()
		if len(sh.index) != 0 {
			t.Errorf("shard %d index retains %d keys after all detaches", sh.id, len(sh.index))
		}
		sh.exit()
	}
}

// closeCountLink records Close calls, for proving the reaper closes each
// reaped link exactly once.
type closeCountLink struct {
	closes int
}

func (l *closeCountLink) Send([]byte) error            { return nil }
func (l *closeCountLink) SetHandler(transport.Handler) {}
func (l *closeCountLink) Close() error                 { l.closes++; return nil }

// TestExpireIdleShardBoundaries pins the reaper's shard correctness: the
// per-shard scans must together reap exactly the idle sessions — no
// session missed because it lives on a later shard, none double-counted,
// and a session detached concurrently is not counted at all. The session
// gauges (global and per-shard occupancy) must agree with Sessions()
// throughout.
func TestExpireIdleShardBoundaries(t *testing.T) {
	srv, err := NewServerShards(db.NewStore(), Static2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000000, 0)
	now := base
	srv.SetClock(func() time.Time { return now })

	gBefore := gSessions.Load()
	// The per-shard occupancy gauges are process-global series shared by
	// every Server with that shard id, so compare deltas.
	occBefore := make([]int64, srv.Shards())
	for i, sh := range srv.shards {
		occBefore[i] = sh.occupancy.Load()
	}
	const n = 32
	links := make([]*closeCountLink, n)
	sessions := make([]*Session, n)
	perShard := make([]int, srv.Shards())
	for i := range sessions {
		links[i] = &closeCountLink{}
		sessions[i] = srv.Attach(links[i])
		perShard[sessions[i].Shard()]++
	}
	for sh := 0; sh < srv.Shards(); sh++ {
		if perShard[sh] == 0 {
			t.Fatalf("shard %d got no sessions out of %d — reaper boundaries untested", sh, n)
		}
	}
	checkGauges := func(label string, want int) {
		t.Helper()
		if got := srv.Sessions(); got != want {
			t.Fatalf("%s: Sessions() = %d, want %d", label, got, want)
		}
		if got := gSessions.Load() - gBefore; got != int64(want) {
			t.Fatalf("%s: global sessions gauge moved by %d, want %d", label, got, want)
		}
		sum := 0
		for sh, c := range srv.ShardSessions() {
			if c != len(srv.shards[sh].sessions) {
				t.Fatalf("%s: ShardSessions()[%d] = %d, shard map has %d", label, sh, c, len(srv.shards[sh].sessions))
			}
			if got := srv.shards[sh].occupancy.Load() - occBefore[sh]; got != int64(c) {
				t.Fatalf("%s: shard %d occupancy gauge moved by %d, want %d", label, sh, got, c)
			}
			sum += c
		}
		if sum != want {
			t.Fatalf("%s: per-shard counts sum to %d, want %d", label, sum, want)
		}
	}
	checkGauges("after attach", n)

	// Half the clients (even indices) stay live by pinging after the
	// clock advances; the odd half go silent.
	now = base.Add(10 * time.Minute)
	ping, _ := wire.Encode(wire.Message{Kind: wire.KindPing, Version: 1})
	for i := 0; i < n; i += 2 {
		sessions[i].onFrame(ping)
	}
	// One silent session is detached explicitly before the reaper runs:
	// the reaper must not count (or re-close) it.
	sessions[1].Detach()

	if got := srv.ExpireIdle(5 * time.Minute); got != n/2-1 {
		t.Fatalf("ExpireIdle reaped %d, want %d (idle half minus the pre-detached one)", got, n/2-1)
	}
	checkGauges("after reap", n/2)
	for i := range sessions {
		wantCloses := 0
		if i%2 == 1 && i != 1 {
			wantCloses = 1
		}
		if links[i].closes != wantCloses {
			t.Fatalf("session %d link closed %d times, want %d", i, links[i].closes, wantCloses)
		}
	}
	// Idempotence: nothing left to reap at the same cutoff.
	if got := srv.ExpireIdle(5 * time.Minute); got != 0 {
		t.Fatalf("second ExpireIdle reaped %d, want 0", got)
	}
	// The surviving half ages out in turn — sessions on every shard, so
	// a scan that stopped at the first shard would under-reap.
	now = now.Add(10 * time.Minute)
	if got := srv.ExpireIdle(5 * time.Minute); got != n/2 {
		t.Fatalf("final ExpireIdle reaped %d, want %d", got, n/2)
	}
	checkGauges("after final reap", 0)
}
