package replica

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/mobile"
	"mobirep/internal/obs"
	"mobirep/internal/sched"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// Client is the mobile computer: it serves reads from its local cache when
// a copy is allocated and runs the MC side of the allocation protocol.
type Client struct {
	link  transport.Link
	cache *mobile.Cache
	mode  Mode
	meter *Meter

	mu           sync.Mutex
	items        map[string]*itemState
	pending      map[string][]readWaiter
	pendingBatch []chan wire.Batch
	// pendingFn holds continuation-style read waiters (ReadThrough): a
	// relay station's fetches, which must never park a goroutine on a
	// channel because they run on transport delivery goroutines.
	pendingFn map[string][]*fnWaiter
	offline   bool
	// epoch is the server store epoch the client has adopted (0 = not yet
	// learned); fenced latches once an epoch change forced the warm state
	// to be dropped, until a cold Reattach. See epoch.go.
	epoch  uint64
	fenced bool
	// staleMax, when positive, lets offline reads serve the last known
	// value (flagged with ErrStale) if it was confirmed fresh within
	// this age. See AllowStale.
	staleMax time.Duration
	// resyncDone, when non-nil, is closed once the in-flight warm
	// resync ends (see ResumeResync).
	resyncDone chan struct{}
	// onLinkError, if set, is told about failures on the current link —
	// the reconnect supervisor's failure-detection hook.
	onLinkError func(error)
	// onPong, if set, receives each Pong's sequence number.
	onPong func(seq uint64)
	// onBusy, if set, receives the server's overload signals: the reason
	// and the retry-after hint from each Busy frame.
	onBusy func(retryAfter time.Duration, reason string)

	// Tree hooks (readthrough.go). applyFn/dropFn let a relay station
	// mirror parent-face state changes downward; fenceFn announces an
	// epoch fence so the station can invalidate its subtree. trackFloors
	// turns on per-key read floors: remote reads then carry the highest
	// version this client has observed, making reads monotone per key
	// even across relay staleness. All off by default — a plain client
	// stays wire-identical.
	applyFn     func(it db.Item)
	dropFn      func(key string)
	fenceFn     func()
	trackFloors bool
	floors      map[string]uint64

	// Timeout bounds how long a remote read waits for its response;
	// zero means wait forever (the in-memory transport responds inline).
	Timeout time.Duration
}

// ErrTimeout is returned by Read when the server response does not arrive
// within the client's Timeout.
var ErrTimeout = errors.New("replica: read timed out")

// NewClient creates the MC endpoint over the given link. mode must match
// the server's mode. The link's handler is installed by NewClient.
func NewClient(link transport.Link, mode Mode) (*Client, error) {
	if err := mode.validate(); err != nil {
		return nil, err
	}
	c := &Client{
		link:      link,
		cache:     mobile.NewCache(),
		mode:      mode,
		meter:     newMeter(mcMirror),
		items:     make(map[string]*itemState),
		pending:   make(map[string][]readWaiter),
		pendingFn: make(map[string][]*fnWaiter),
	}
	link.SetHandler(c.onFrame)
	return c, nil
}

// Meter returns the MC-side traffic meter.
func (c *Client) Meter() *Meter { return c.meter }

// Cache exposes the local cache for inspection (hit rates, contents).
func (c *Client) Cache() *mobile.Cache { return c.cache }

// HasCopy reports whether the MC currently holds a copy of key.
func (c *Client) HasCopy(key string) bool { return c.cache.Contains(key) }

// Read performs a read at the mobile computer: local when a copy exists,
// remote (one control request, one data response) otherwise. A remote read
// may allocate a copy, as decided by the server per section 4. It is
// ReadContext with no cancellation.
func (c *Client) Read(key string) (db.Item, error) {
	return c.ReadContext(context.Background(), key)
}

// ReadContext is Read with a per-request deadline: a remote read gives up
// with ctx.Err() when the context is cancelled or its deadline passes,
// on top of the client-wide Timeout. Local reads never block.
func (c *Client) ReadContext(ctx context.Context, key string) (db.Item, error) {
	c.mu.Lock()
	if c.offline {
		if c.fenced {
			// The authority restarted and the warm state is gone; advertise
			// the reason instead of a generic offline (the fence dropped the
			// cache, so there is nothing stale to serve either).
			c.mu.Unlock()
			mReadOffline.Inc()
			return db.Item{}, ErrEpochChanged
		}
		staleMax := c.staleMax
		c.mu.Unlock()
		return c.staleRead(key, staleMax)
	}
	st := c.state(key)
	if st.hasCopy {
		it, ok := c.cache.Get(key)
		if ok {
			// Local read: the MC is in charge; slide the window.
			if st.mode.Kind == ModeSW {
				st.window.Push(sched.Read)
			}
			c.noteFloorLocked(key, it.Version)
			c.mu.Unlock()
			mReadLocal.Inc()
			return it, nil
		}
		// Cache and allocation state disagree; fall through to remote and
		// repair below. (Can only happen if Drop raced with Read.)
		st.hasCopy = false
	} else {
		// Record the miss in the cache statistics.
		c.cache.Get(key)
	}
	var floor uint64
	if c.trackFloors {
		floor = c.floors[key]
	}
	ch := make(chan wire.Message, 1)
	c.pending[key] = append(c.pending[key], readWaiter{ch: ch, floor: floor})
	link := c.link
	c.mu.Unlock()

	c.meter.addConnection()
	if err := c.sendControlOn(link, wire.Message{Kind: wire.KindReadReq, Key: key, Version: floor}); err != nil {
		c.cancelPending(key, ch)
		mReadOffline.Inc()
		// A link that fails mid-send is an offline condition to the
		// caller (the suspect hook above has already told the recovery
		// layer); the transport detail rides along for diagnostics.
		return db.Item{}, fmt.Errorf("%w: %v", ErrOffline, err)
	}
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			// The channel was closed by Disconnect or Suspend.
			mReadOffline.Inc()
			return db.Item{}, ErrOffline
		}
		mReadRemote.Inc()
		return db.Item{Key: key, Value: resp.Value, Version: resp.Version}, nil
	case <-timeout:
		c.cancelPending(key, ch)
		mReadTimeout.Inc()
		// A silent link is as suspect as a failing one.
		c.suspect(link, ErrTimeout)
		return db.Item{}, ErrTimeout
	case <-ctx.Done():
		c.cancelPending(key, ch)
		mReadCanceled.Inc()
		return db.Item{}, ctx.Err()
	}
}

// staleRead serves an offline read from the last known value when
// AllowStale permits it, flagging the result with ErrStale.
func (c *Client) staleRead(key string, staleMax time.Duration) (db.Item, error) {
	if staleMax <= 0 {
		mReadOffline.Inc()
		return db.Item{}, ErrOffline
	}
	it, age, ok := c.cache.LastKnown(key)
	if !ok || age > staleMax {
		mReadOffline.Inc()
		return db.Item{}, ErrOffline
	}
	mReadStale.Inc()
	obsTr.Record(obs.EvStaleRead, key, "", int64(age/time.Millisecond), 0)
	return it, ErrStale
}

// state returns (creating if needed) the client's state for key. The
// caller must hold c.mu.
func (c *Client) state(key string) *itemState {
	st, ok := c.items[key]
	if !ok {
		st = newItemState(c.mode)
		// Inserting a map key retains its bytes, and key may alias a
		// borrowed frame (wire.DecodeBorrowed); clone so the client never
		// keeps transport memory alive.
		c.items[strings.Clone(key)] = st
	}
	return st
}

// cancelPending removes ch from the waiters of key.
func (c *Client) cancelPending(key string, ch chan wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	waiters := c.pending[key]
	for i, w := range waiters {
		if w.ch == ch {
			c.pending[key] = append(waiters[:i], waiters[i+1:]...)
			return
		}
	}
}

// onFrame handles one message from the server.
func (c *Client) onFrame(frame []byte) {
	if wire.IsBatchFrame(frame) {
		b, err := wire.DecodeBatch(frame)
		if err != nil {
			return
		}
		c.onBatch(b)
		return
	}
	// Borrowed decode: msg aliases frame, valid only for this handler.
	// Retention points clone — the cache copies bytes in, state() clones
	// map keys, and onReadResp clones before handing a message to a
	// waiting reader goroutine.
	msg, err := wire.DecodeBorrowed(frame)
	if err != nil {
		return // malformed server frame; drop
	}
	switch msg.Kind {
	case wire.KindReadResp:
		c.onReadResp(msg)
	case wire.KindWriteProp:
		c.onWriteProp(msg)
	case wire.KindDeleteReq:
		c.onDeleteReq(msg)
	case wire.KindPong:
		c.mu.Lock()
		f := c.onPong
		c.mu.Unlock()
		if f != nil {
			f(msg.Version)
		}
	case wire.KindBusy:
		c.onBusyFrame(msg)
	case wire.KindAttachResp:
		c.onAttachResp(msg)
	default:
		// ReadReq and Ping are client-to-server only; ignore.
	}
}

// onBusyFrame handles the server's overload signal: the session was
// refused at attach or shed. The handler (the reconnect supervisor) gets
// the retry-after hint so its backoff waits out the server's congestion
// instead of probing a known-busy server at dead-server cadence.
func (c *Client) onBusyFrame(msg wire.Message) {
	mBusyReceived.Inc()
	// msg.Key is borrowed transport memory; clone before it escapes.
	reason := strings.Clone(msg.Key)
	retry := time.Duration(msg.Version) * time.Millisecond
	obsTr.Record(obs.EvOverload, "", reason, int64(msg.Version), 0)
	c.mu.Lock()
	f := c.onBusy
	c.mu.Unlock()
	if f != nil {
		f(retry, reason)
	}
}

// Ping sends a keepalive probe carrying seq; the server echoes it as a
// Pong delivered to the pong handler. Liveness traffic: it is not metered
// as protocol cost.
func (c *Client) Ping(seq uint64) error {
	c.mu.Lock()
	offline := c.offline
	link := c.link
	c.mu.Unlock()
	if offline || link == nil {
		return ErrOffline
	}
	buf := encodePooled(wire.Message{Kind: wire.KindPing, Version: seq})
	err := link.Send(buf.B)
	wire.PutBuf(buf)
	if err != nil {
		c.suspect(link, err)
		return err
	}
	return nil
}

// SetPongHandler registers f to receive each Pong's sequence number. f
// runs on the transport's delivery goroutine and must not call back into
// the client while blocking it.
func (c *Client) SetPongHandler(f func(seq uint64)) {
	c.mu.Lock()
	c.onPong = f
	c.mu.Unlock()
}

// SetBusyHandler registers f to receive the server's Busy signals (attach
// refused, session shed) with their retry-after hint and reason. f runs
// on the transport's delivery goroutine and must not block it.
func (c *Client) SetBusyHandler(f func(retryAfter time.Duration, reason string)) {
	c.mu.Lock()
	c.onBusy = f
	c.mu.Unlock()
}

// SetLinkErrorHandler registers f to be told when traffic on the current
// link fails — the reconnect supervisor's cue that the link is suspect.
// Errors from links already replaced or cleared are not reported.
func (c *Client) SetLinkErrorHandler(f func(err error)) {
	c.mu.Lock()
	c.onLinkError = f
	c.mu.Unlock()
}

// suspect reports a link failure to the error handler, but only when the
// failing link is still the client's current one: a stale link's death
// must not restart recovery that already moved on.
func (c *Client) suspect(link transport.Link, err error) {
	c.mu.Lock()
	cur := c.link
	f := c.onLinkError
	c.mu.Unlock()
	if f != nil && link != nil && link == cur {
		f(err)
	}
}

// onReadResp completes a pending remote read and applies an allocation.
// Allocation applies only while no copy is held: a duplicated allocating
// response must not reinstall a possibly older value or roll the window
// back to the bits that rode the original handoff. A response below the
// head waiter's floor is fully inert — every upstream serve respects the
// request's floor, so such a frame can only be a stale chaos duplicate,
// and completing a floored read (or installing a copy) with it would
// hand back data older than the reader has already seen.
func (c *Client) onReadResp(msg wire.Message) {
	c.mu.Lock()
	if msg.Version < c.headFloorLocked(msg.Key) {
		// For fn waiters the head may be a stranded continuation from a
		// request chaos ate; the response is inert only if it satisfies
		// none of them.
		inert := true
		if len(c.pending[msg.Key]) == 0 {
			for _, fw := range c.pendingFn[msg.Key] {
				if fw.floor <= msg.Version {
					inert = false
					break
				}
			}
		}
		if inert {
			c.mu.Unlock()
			return
		}
	}
	if msg.Allocate && !c.state(msg.Key).hasCopy {
		st := c.state(msg.Key)
		st.hasCopy = true
		mAllocs.Inc()
		// The tracer's ring buffer retains the key; msg.Key is borrowed.
		obsTr.Record(obs.EvAllocate, strings.Clone(msg.Key), "read-resp", int64(msg.Version), 0)
		if st.mode.Kind == ModeSW {
			if len(msg.Window) == st.mode.K {
				if err := st.window.LoadBits(msg.Window); err != nil {
					st.window.Fill(sched.Read)
				}
			} else {
				// ST2-style allocation carries no window; for SW modes a
				// missing window means the server is buggy — recover by
				// assuming all-reads, which the next requests will wash
				// out.
				st.window.Fill(sched.Read)
			}
		}
		c.cache.Install(db.Item{Key: msg.Key, Value: msg.Value, Version: msg.Version})
	}
	var ch chan wire.Message
	var fws []*fnWaiter
	var dealloc *wire.Message
	var dropped string
	if waiters := c.pending[msg.Key]; len(waiters) > 0 {
		ch = waiters[0].ch
		if len(waiters) == 1 {
			// delete never retains its argument, so the borrowed msg.Key
			// is safe here — and popping the entry keeps the map from
			// accumulating one empty slot per key ever read.
			delete(c.pending, msg.Key)
		} else {
			// Assigning to an existing string map key REPLACES the stored
			// key with the new one (the runtime updates string keys), so
			// assigning under the borrowed msg.Key would plant transport
			// bytes in the map; clone first.
			c.pending[strings.Clone(msg.Key)] = waiters[1:]
		}
		c.noteFloorLocked(msg.Key, msg.Version)
	} else if fns := c.pendingFn[msg.Key]; len(fns) > 0 {
		// One response satisfies EVERY continuation whose floor it
		// clears, not just the head. A request chaos ate leaves its
		// waiter stranded; if each answer resolved only the oldest, every
		// retry would complete its predecessor and strand itself — the
		// queue stays one resolution behind forever.
		var keep []*fnWaiter
		for _, f := range fns {
			if f.floor <= msg.Version {
				fws = append(fws, f)
			} else {
				keep = append(keep, f)
			}
		}
		if len(keep) == 0 {
			delete(c.pendingFn, msg.Key)
		} else {
			// Clone before assigning: see the pending-map note above.
			c.pendingFn[strings.Clone(msg.Key)] = keep
		}
		c.noteFloorLocked(msg.Key, msg.Version)
		// A ReadThrough goes remote while still holding a copy only when
		// the cached version sat below the floor; fold the answer in like
		// a one-key resync.
		dealloc, dropped = c.absorbLocked(msg)
	}
	drop := c.dropFn
	c.mu.Unlock()
	if ch != nil {
		// The waiter consumes the message on another goroutine, after this
		// handler has returned and the frame buffer has been reused: hand
		// it an owning copy.
		ch <- msg.Clone()
	}
	if dealloc != nil {
		_ = c.sendControl(*dealloc)
	}
	for _, f := range fws {
		// Synchronous completion on the delivery goroutine: msg is
		// borrowed, so the continuations must finish with it before
		// returning (relay stations copy at every retention point).
		f.fn(msg, true)
	}
	if dropped != "" && drop != nil {
		drop(dropped)
	}
}

// onWriteProp applies a propagated write: update the cached copy, slide
// the window, and deallocate (sending the delete-request with the window)
// if writes now hold the majority. The window slides only when the version
// actually advances the cache — a duplicated or reordered propagation is
// inert, or it would count one write twice and deallocate too early.
func (c *Client) onWriteProp(msg wire.Message) {
	c.mu.Lock()
	st := c.state(msg.Key)
	if !st.hasCopy {
		// The SC still believes this MC is subscribed, so the deallocation
		// (our delete-request, or the allocation response it answers) was
		// lost in transit. Re-assert it so the SC stops paying a data
		// message per write; a duplicate delete-request is ignored there.
		c.cache.Update(db.Item{Key: msg.Key, Value: msg.Value, Version: msg.Version})
		out := wire.Message{Kind: wire.KindDeleteReq, Key: msg.Key}
		if st.mode.Kind == ModeSW {
			out.Window = st.window.Bits()
		}
		c.mu.Unlock()
		_ = c.sendControl(out)
		return
	}
	fresh := c.cache.Update(db.Item{Key: msg.Key, Value: msg.Value, Version: msg.Version})
	var out *wire.Message
	if fresh && st.mode.Kind == ModeSW {
		st.window.Push(sched.Write)
		if !st.window.ReadMajority() {
			// Deallocate: hand the window back to the SC.
			st.hasCopy = false
			c.cache.Drop(msg.Key)
			mDeallocs.Inc()
			obsTr.Record(obs.EvDeallocate, strings.Clone(msg.Key), "write-majority", int64(msg.Version), 0)
			out = &wire.Message{
				Kind: wire.KindDeleteReq, Key: msg.Key, Window: st.window.Bits(),
			}
		}
	}
	apply := c.applyFn
	drop := c.dropFn
	c.mu.Unlock()
	var key string
	if (fresh && apply != nil) || (out != nil && drop != nil) {
		key = strings.Clone(msg.Key) // the handlers may retain the key
	}
	if fresh && apply != nil {
		// The relay mirrors the write downward before any revocation:
		// children that keep their copies see the value; Value stays
		// borrowed (the handler copies at retention points).
		apply(db.Item{Key: key, Value: msg.Value, Version: msg.Version})
	}
	if out != nil {
		// The delete-request rides the write's connection: it is a
		// control message but not a new connection.
		_ = c.sendControl(*out)
		if drop != nil {
			drop(key)
		}
	}
}

// onDeleteReq handles the SW1 optimization (and any server-initiated
// deallocation): drop the copy.
func (c *Client) onDeleteReq(msg wire.Message) {
	c.mu.Lock()
	st := c.state(msg.Key)
	had := st.hasCopy
	st.hasCopy = false
	if st.mode.Kind == ModeSW {
		st.window.Fill(sched.Write)
	}
	c.cache.Drop(msg.Key)
	drop := c.dropFn
	c.mu.Unlock()
	if had {
		mDeallocs.Inc()
		key := strings.Clone(msg.Key)
		obsTr.Record(obs.EvDeallocate, key, "delete-req", 0, 0)
		if drop != nil {
			drop(key)
		}
	}
}

func (c *Client) sendControl(msg wire.Message) error {
	c.mu.Lock()
	link := c.link
	c.mu.Unlock()
	return c.sendControlOn(link, msg)
}

// sendControlOn sends over an explicit link snapshot, so a concurrent
// Disconnect cannot race the nil check. The frame is encoded into a
// pooled buffer, released as soon as Send returns (links never retain).
func (c *Client) sendControlOn(link transport.Link, msg wire.Message) error {
	if link == nil {
		return ErrOffline
	}
	buf := wire.GetBuf()
	b, err := wire.AppendEncode(buf.B[:0], msg)
	if err != nil {
		wire.PutBuf(buf)
		// Unlike the server's protocol-generated messages, this path can
		// carry a caller-provided key (ReadReq); reject, don't panic.
		return fmt.Errorf("replica: encode %v: %w", msg.Kind, err)
	}
	buf.B = b
	c.meter.addControl(len(b))
	err = link.Send(b)
	wire.PutBuf(buf)
	if err != nil {
		c.suspect(link, err)
		return err
	}
	return nil
}
