package replica

import (
	"mobirep/internal/db"
	"mobirep/internal/sched"
	"mobirep/internal/wire"
)

// Relay hooks. A support station in a replica tree (internal/tree) runs
// this package on both faces: a Server toward its children and a Client
// toward its parent. The hooks below are the seam between the two — the
// server's read path can be redirected through the parent (SetOrigin),
// its allocation decisions gated on the parent-face copy (SetAllocGate),
// and writes learned from the parent folded in as if they were local
// (Apply) or revoked downward (Invalidate). All hooks default to nil,
// which leaves the server byte-for-byte identical to the plain two-node
// SC — the depth-1 tree IS the two-node pair.

// Origin resolves a read-path fetch for a relay server: produce the item
// for key (at version >= floor when floor > 0) and call done exactly
// once. done(_, false) abandons the read — to the requesting client it
// is a lost frame, repaired by its normal timeout/retry machinery. The
// origin must not block: it is called on a transport delivery goroutine,
// so a fetch that needs the network registers a continuation (see
// Client.ReadThrough) instead of waiting. done may run synchronously or
// on a later delivery; the item it carries is only read during the call
// (values are copied at every retention point), but its Key is retained,
// so it must not alias transport memory.
type Origin func(key string, floor uint64, done func(it db.Item, ok bool))

// SetOrigin installs (or, with nil, removes) the read-path origin hook.
// Install hooks before attaching any session; the pointer is read per
// request.
func (s *Server) SetOrigin(o Origin) {
	if o == nil {
		s.origin.Store(nil)
		return
	}
	s.origin.Store(&o)
}

// SetAllocGate installs (or removes) the allocation gate: before any
// child allocation the server asks g whether a copy of key may be placed
// below this station. The gate runs under a shard token and must be
// quick and never call back into this server. A denied SW allocation
// still slides the window — the demand is recorded; the grant waits
// until the station secures its own copy.
func (s *Server) SetAllocGate(g func(key string) bool) {
	if g == nil {
		s.allocGate.Store(nil)
		return
	}
	s.allocGate.Store(&g)
}

// Apply folds an item learned from upstream into this server: install it
// into the (in-memory mirror) store, version-guarded, and — only when
// the version actually advanced — fan it out to subscribed children
// exactly like a local Write. A stale or duplicated delivery is fully
// inert: no store change, no frames, no window slides, which is what
// makes chaos-duplicated parent propagations safe to re-apply blindly.
// it.Key is retained by the store; it must not alias transport memory.
func (s *Server) Apply(it db.Item) (bool, error) {
	fresh, err := s.store.Install(it)
	if err != nil || !fresh {
		return false, err
	}
	s.fanOut(it)
	return true, nil
}

// Invalidate revokes every child copy of key: each session holding a
// copy drops its bit, its window resets to all-writes (the same state
// the client's own delete-request handler converges to), and one
// DeleteReq is sent per revoked session. Sessions without a copy are
// untouched. Returns the number of sessions revoked. A relay calls this
// when its own parent-face copy is deallocated, preserving the
// contiguity invariant: copies live on a root-to-leaf path, never on a
// disconnected island below a station that holds nothing.
func (s *Server) Invalidate(key string) int {
	n := 0
	var delBuf *wire.Buf
	for _, sh := range s.shards {
		sh.fanMu.Lock()
		fan := sh.fan[:0]
		sh.enter()
		for sess := range sh.index[key] {
			if sess.prepareInvalidate(key) {
				fan = append(fan, fanEntry{sess, control})
			}
		}
		sh.exit()
		sh.fan = fan
		for _, e := range fan {
			if delBuf == nil {
				delBuf = encodePooled(wire.Message{Kind: wire.KindDeleteReq, Key: key})
			}
			e.sess.meter.addControl(len(delBuf.B))
			_ = e.sess.link.Send(delBuf.B)
			n++
		}
		sh.fanMu.Unlock()
	}
	wire.PutBuf(delBuf)
	return n
}

// prepareInvalidate drops the session's copy of key if it holds one and
// reports whether a DeleteReq must be sent. Caller holds the shard token.
func (ss *Session) prepareInvalidate(key string) bool {
	if ss.detached {
		return false
	}
	st, ok := ss.items[key]
	if !ok || !st.hasCopy {
		return false
	}
	st.hasCopy = false
	if st.mode.Kind == ModeSW {
		st.window.Fill(sched.Write)
	}
	return true
}

// InvalidateAll revokes every child copy of every key — the fence
// response when the station's parent restarted and all warm state below
// it is untrustworthy. Returns the number of (session, key) revocations.
func (s *Server) InvalidateAll() int {
	seen := make(map[string]struct{})
	var keys []string
	for _, sh := range s.shards {
		sh.enter()
		for key := range sh.index {
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				keys = append(keys, key)
			}
		}
		sh.exit()
	}
	n := 0
	for _, key := range keys {
		n += s.Invalidate(key)
	}
	return n
}
