package replica

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/db"
	"mobirep/internal/sched"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/workload"
)

// startTCPServer runs a server accepting on an ephemeral port; it returns
// the address and a stop function.
func startTCPServer(t *testing.T, srv *Server) (string, func()) {
	t.Helper()
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			srv.Attach(link)
			link.Start(nil)
		}
	}()
	return ln.Addr(), func() { ln.Close() }
}

// TestTCPEndToEnd runs the full protocol over real TCP: allocation,
// propagation, deallocation, and value freshness.
func TestTCPEndToEnd(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startTCPServer(t, srv)
	defer stop()

	link, err := transport.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	cli, err := NewClient(link, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	cli.Timeout = 5 * time.Second

	if _, err := srv.Write("x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v1" {
		t.Fatalf("read %q", it.Value)
	}
	// Second read allocates.
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
	if !cli.HasCopy("x") {
		t.Fatal("no copy after read majority")
	}
	// A write must propagate over TCP; poll for the asynchronous update.
	if _, err := srv.Write("x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, ok := cli.Cache().Peek("x")
		return ok && string(got.Value) == "v2"
	}, "propagated write")
	// A second write deallocates; the server must stop propagating.
	if _, err := srv.Write("x", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !cli.HasCopy("x") }, "deallocation")
	// Reads still see fresh values remotely.
	it, err = cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v3" {
		t.Fatalf("read after dealloc: %q", it.Value)
	}
}

// TestTCPSequentialMatchesSimulator repeats the E13 equivalence over a
// real socket. Writes are asynchronous over TCP, so the driver waits for
// the write to take effect at the client before issuing the next request,
// preserving the paper's serialized semantics.
func TestTCPSequentialMatchesSimulator(t *testing.T) {
	const k = 3
	store := db.NewStore()
	srv, err := NewServer(store, SW(k))
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := startTCPServer(t, srv)
	defer stop()

	link, err := transport.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	cli, err := NewClient(link, SW(k))
	if err != nil {
		t.Fatal(err)
	}
	cli.Timeout = 5 * time.Second

	srv.Write("x", []byte("seed"))
	rng := stats.NewRNG(4242)
	seq := workload.Bernoulli(rng, 0.5, 400)
	policy := core.NewSW(k)
	version := uint64(1)
	for i, op := range seq {
		st := policy.Apply(op)
		if op == sched.Read {
			if _, err := cli.Read("x"); err != nil {
				t.Fatal(err)
			}
		} else {
			version++
			if _, err := srv.Write("x", []byte(fmt.Sprintf("v%d", version))); err != nil {
				t.Fatal(err)
			}
			if st.HadCopy {
				// Wait until the propagation (or deallocation) has fully
				// landed so the next request observes serialized state.
				wantCopy := st.HasCopy
				v := version
				waitFor(t, func() bool {
					if !wantCopy {
						return !cli.HasCopy("x")
					}
					got, ok := cli.Cache().Peek("x")
					return ok && got.Version == v
				}, fmt.Sprintf("write %d to settle", i))
			}
		}
		if cli.HasCopy("x") != st.HasCopy {
			t.Fatalf("op %d: protocol copy %v vs policy %v", i, cli.HasCopy("x"), st.HasCopy)
		}
	}

	// Traffic must match the simulator exactly, as over the in-memory
	// transport.
	res := sim.Replay(core.NewSW(k), cost.NewMessage(0.5), seq, 0)
	// The server side meter lives in the session created by Attach; we
	// reach it through the ledger comparison instead: reconstruct totals
	// from the client meter plus expected server sends.
	mc := cli.Meter().Snapshot()
	if mc.ControlMsgs != res.Ledger.ControlMessages {
		// The client sends ReadReq and DeleteReq; under SW(k>1) the
		// server sends no control messages, so the totals must agree.
		t.Fatalf("client control %d vs sim %d", mc.ControlMsgs, res.Ledger.ControlMessages)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestMultiClientFleet attaches several clients with different read
// behaviours to one server: each (client, key) pair gets independent
// window state, writes propagate only to subscribed clients, and each
// client's traffic matches a per-client simulation.
func TestMultiClientFleet(t *testing.T) {
	const k = 3
	store := db.NewStore()
	srv, err := NewServer(store, SW(k))
	if err != nil {
		t.Fatal(err)
	}
	srv.Write("x", []byte("seed"))

	// Client 0 reads often (should end up holding a copy most of the
	// time); client 1 never reads (never holds one).
	type clientState struct {
		cli    *Client
		meter  *Meter
		policy *core.SW
	}
	clients := make([]*clientState, 2)
	for i := range clients {
		a, b := transport.NewMemPair()
		meter := srv.Attach(a).Meter()
		cli, err := NewClient(b, SW(k))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = &clientState{cli: cli, meter: meter, policy: core.NewSW(k)}
	}

	rng := stats.NewRNG(7)
	var seqs [2]sched.Schedule
	for i := 0; i < 600; i++ {
		// Global arrival process: client-0 read, or a server write
		// (client-1 issues no reads at all).
		if rng.Bernoulli(0.5) {
			if _, err := clients[0].cli.Read("x"); err != nil {
				t.Fatal(err)
			}
			clients[0].policy.Apply(sched.Read)
			seqs[0] = append(seqs[0], sched.Read)
		} else {
			if _, err := srv.Write("x", []byte("v")); err != nil {
				t.Fatal(err)
			}
			// A write is relevant to every client.
			for c := range clients {
				clients[c].policy.Apply(sched.Write)
				seqs[c] = append(seqs[c], sched.Write)
			}
		}
		for c, cs := range clients {
			if cs.cli.HasCopy("x") != cs.policy.HasCopy() {
				t.Fatalf("client %d diverged from its reference policy", c)
			}
		}
	}

	// Client 1 never read, so it must have no copy and zero traffic.
	if clients[1].cli.HasCopy("x") {
		t.Fatal("read-less client holds a copy")
	}
	total1 := clients[1].meter.Snapshot().Add(clients[1].cli.Meter().Snapshot())
	if total1.DataMsgs != 0 || total1.ControlMsgs != 0 {
		t.Fatalf("read-less client caused traffic: %+v", total1)
	}

	// Client 0's combined traffic matches a solo simulation of its own
	// relevant request sequence.
	res := sim.Replay(core.NewSW(k), cost.NewMessage(0.5), seqs[0], 0)
	total0 := clients[0].meter.Snapshot().Add(clients[0].cli.Meter().Snapshot())
	if total0.DataMsgs != res.Ledger.DataMessages || total0.ControlMsgs != res.Ledger.ControlMessages {
		t.Fatalf("client 0 traffic %+v vs sim data=%d control=%d",
			total0, res.Ledger.DataMessages, res.Ledger.ControlMessages)
	}
}

// TestConcurrentClientsRace hammers one server from several goroutine
// clients while the server writes, for the race detector.
func TestConcurrentClientsRace(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	srv.Write("x", []byte("seed"))

	const clients = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		a, b := transport.NewMemPair()
		srv.Attach(a)
		cli, err := NewClient(b, SW(3))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cli.Read("x"); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if _, err := srv.Write("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
