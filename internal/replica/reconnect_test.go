package replica

import (
	"errors"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/transport"
)

func TestDisconnectDropsCopiesAndFailsReads(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	srv.Write("x", []byte("v1"))
	cli.Read("x")
	cli.Read("x") // allocate
	if !cli.HasCopy("x") {
		t.Fatal("setup: no copy")
	}

	cli.Disconnect()
	if !cli.Offline() {
		t.Fatal("client should report offline")
	}
	if cli.HasCopy("x") {
		t.Fatal("cached copy survived disconnect; it could go stale unseen")
	}
	if _, err := cli.Read("x"); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline read returned %v, want ErrOffline", err)
	}
}

func TestDetachStopsPropagation(t *testing.T) {
	a, b := transport.NewMemPair()
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	srv.Write("x", []byte("v1"))
	cli.Read("x")
	cli.Read("x") // allocate: server now propagates writes
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d", srv.Sessions())
	}

	before := sess.Meter().Snapshot()
	sess.Detach()
	if srv.Sessions() != 0 {
		t.Fatalf("sessions after detach = %d", srv.Sessions())
	}
	// Writes after detach must cause no traffic toward the gone client.
	for i := 0; i < 5; i++ {
		srv.Write("x", []byte{byte(i)})
	}
	if after := sess.Meter().Snapshot(); after != before {
		t.Fatalf("detached session still metered traffic: %+v -> %+v", before, after)
	}
	sess.Detach() // idempotent
}

func TestReattachLifecycle(t *testing.T) {
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	srv.Write("x", []byte("v1"))
	cli.Read("x")
	cli.Read("x")
	if !cli.HasCopy("x") {
		t.Fatal("setup: no copy")
	}

	// Roam away: both sides tear down.
	cli.Disconnect()
	sess.Detach()
	// The database moves on while the MC is away.
	srv.Write("x", []byte("v9"))

	// Roam back on a fresh link.
	a2, b2 := transport.NewMemPair()
	srv.Attach(a2)
	cli.Reattach(b2)
	if cli.Offline() {
		t.Fatal("client still offline after reattach")
	}
	// First read is remote (no copy survived) and sees the fresh value —
	// no stale read is possible.
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v9" {
		t.Fatalf("read after reattach: %q, want v9", it.Value)
	}
	if cli.HasCopy("x") {
		t.Fatal("copy allocated on first post-reattach read; window should restart all-writes")
	}
	// The protocol works normally again: read majority re-allocates.
	cli.Read("x")
	if !cli.HasCopy("x") {
		t.Fatal("no copy after post-reattach read majority")
	}
	// And propagation works on the new session.
	srv.Write("x", []byte("v10"))
	got, _ := cli.Cache().Peek("x")
	if string(got.Value) != "v10" {
		t.Fatalf("propagation after reattach: %q", got.Value)
	}
}

func TestDisconnectUnblocksPendingRead(t *testing.T) {
	// A read waiting on a server that never answers must be released by
	// Disconnect with ErrOffline.
	blackhole, b := transport.NewMemPair()
	blackhole.SetHandler(func([]byte) {}) // server side swallows requests
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cli.Read("x")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the read register
	cli.Disconnect()
	select {
	case err := <-done:
		if !errors.Is(err, ErrOffline) {
			t.Fatalf("pending read returned %v, want ErrOffline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending read never released")
	}
}

func TestTCPLinkCloseDetaches(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			sess := srv.Attach(link)
			link.Start(func(error) { sess.Detach() })
		}
	}()

	link, err := transport.Dial(ln.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(link, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	cli.Timeout = 5 * time.Second
	srv.Write("x", []byte("v"))
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Sessions() == 1 }, "session attach")

	// Dropping the TCP connection must detach the session on the server.
	link.Close()
	waitFor(t, func() bool { return srv.Sessions() == 0 }, "session detach on link close")
}
