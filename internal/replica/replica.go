// Package replica implements the distributed data allocation protocol of
// section 4 as real communicating nodes: a Server on the stationary
// computer (SC) holding the online database, and a Client on the mobile
// computer (MC) holding the local cache.
//
// Exactly one side is "in charge" of a data item's sliding window at any
// time, as the paper observes: while the MC holds a copy, every relevant
// request reaches it (local reads, propagated writes), so the MC maintains
// the window; otherwise every relevant request reaches the SC (remote
// reads, local writes) and the SC maintains it. Ownership moves with the
// copy, and the window bits ride the allocation read-response and the
// deallocation delete-request — the piggybacking the paper describes.
//
// Per-message accounting mirrors internal/cost exactly: ReadReq and
// DeleteReq are control messages, ReadResp and WriteProp are data
// messages, and connections are counted per the connection model. The E13
// experiment drives the same request sequence through this protocol and
// through the simulator and checks the ledgers agree message for message.
package replica

import (
	"fmt"
	"sync/atomic"

	"mobirep/internal/core"
	"mobirep/internal/sched"
)

// Mode selects the allocation method a node pair runs for a key.
type Mode struct {
	// Kind selects the algorithm family.
	Kind ModeKind
	// K is the window size for ModeSW; it must be odd and positive.
	K int
}

// ModeKind enumerates protocol allocation methods.
type ModeKind uint8

const (
	// ModeSW runs the sliding-window algorithm SWk (SW1 when K == 1,
	// with the delete-request optimization).
	ModeSW ModeKind = iota
	// ModeStatic1 never allocates a copy at the MC (ST1).
	ModeStatic1
	// ModeStatic2 always keeps a copy at the MC (ST2): the first read
	// allocates and nothing ever deallocates.
	ModeStatic2
)

// SW returns the sliding-window mode with window size k.
func SW(k int) Mode { return Mode{Kind: ModeSW, K: k} }

// Static1 returns the ST1 mode.
func Static1() Mode { return Mode{Kind: ModeStatic1} }

// Static2 returns the ST2 mode.
func Static2() Mode { return Mode{Kind: ModeStatic2} }

// Validate reports whether the mode is well-formed (e.g. an odd positive
// window size for ModeSW). NewServer and NewClient call it; CLI parsers
// use it to reject bad modes before wiring anything up.
func (m Mode) Validate() error { return m.validate() }

func (m Mode) validate() error {
	switch m.Kind {
	case ModeSW:
		if m.K <= 0 || m.K%2 == 0 {
			return fmt.Errorf("replica: SW window size %d must be odd and positive", m.K)
		}
	case ModeStatic1, ModeStatic2:
	default:
		return fmt.Errorf("replica: unknown mode kind %d", m.Kind)
	}
	return nil
}

// String renders the mode like the policy names ("SW5", "ST1", "ST2").
func (m Mode) String() string {
	switch m.Kind {
	case ModeStatic1:
		return "ST1"
	case ModeStatic2:
		return "ST2"
	default:
		return fmt.Sprintf("SW%d", m.K)
	}
}

// Meter counts protocol traffic on one side. Combined over both sides it
// reproduces the paper's cost models; see Ledger. The counters are
// lock-free atomics, and every add is mirrored into the per-side global
// series of the obs registry (metrics.go), so the per-instance snapshot
// the experiments diff and the process-wide /metrics view are two reads
// of the same write path and cannot drift. Read it through Snapshot.
type Meter struct {
	data    atomic.Int64 // data messages sent (ReadResp, WriteProp)
	control atomic.Int64 // control messages sent (ReadReq, DeleteReq)
	// conns counts connection-model connections initiated by this side:
	// a remote read (counted at the MC) or a write that reached out to
	// the MC (counted at the SC). The MC's deallocation delete-request
	// rides the write's connection and adds none.
	conns  atomic.Int64
	bytes  atomic.Int64 // frame payload bytes sent
	mirror *meterMirror // per-side global series; nil mirrors nowhere
}

// newMeter returns a meter that mirrors into the given side's global
// registry series.
func newMeter(mirror *meterMirror) *Meter { return &Meter{mirror: mirror} }

func (m *Meter) addData(bytes int) {
	m.data.Add(1)
	m.bytes.Add(int64(bytes))
	if m.mirror != nil {
		m.mirror.data.Inc()
		m.mirror.bytes.Add(uint64(bytes))
	}
}

func (m *Meter) addControl(bytes int) {
	m.control.Add(1)
	m.bytes.Add(int64(bytes))
	if m.mirror != nil {
		m.mirror.control.Inc()
		m.mirror.bytes.Add(uint64(bytes))
	}
}

func (m *Meter) addConnection() {
	m.conns.Add(1)
	if m.mirror != nil {
		m.mirror.conns.Inc()
	}
}

// Snapshot returns a copy of the counters.
func (m *Meter) Snapshot() MeterSnapshot {
	return MeterSnapshot{
		DataMsgs:    int(m.data.Load()),
		ControlMsgs: int(m.control.Load()),
		Connections: int(m.conns.Load()),
		Bytes:       int(m.bytes.Load()),
	}
}

// MeterSnapshot is an immutable copy of a Meter.
type MeterSnapshot struct {
	DataMsgs    int
	ControlMsgs int
	Connections int
	Bytes       int
}

// Add returns the element-wise sum, used to combine the MC and SC sides.
func (s MeterSnapshot) Add(o MeterSnapshot) MeterSnapshot {
	return MeterSnapshot{
		DataMsgs:    s.DataMsgs + o.DataMsgs,
		ControlMsgs: s.ControlMsgs + o.ControlMsgs,
		Connections: s.Connections + o.Connections,
		Bytes:       s.Bytes + o.Bytes,
	}
}

// MessageCost prices the snapshot under the message model with the given
// omega.
func (s MeterSnapshot) MessageCost(omega float64) float64 {
	return float64(s.DataMsgs) + omega*float64(s.ControlMsgs)
}

// ConnectionCost prices the snapshot under the connection model.
func (s MeterSnapshot) ConnectionCost() float64 {
	return float64(s.Connections)
}

// itemState is the per-(client, key) protocol state shared in shape by
// both sides; each side keeps its own copy and the inCharge invariant says
// exactly one of them trusts its window.
type itemState struct {
	mode Mode
	// window is meaningful only while this side is in charge.
	window *core.Window
	// hasCopy mirrors whether the MC holds a copy, from this side's view.
	hasCopy bool
}

func newItemState(mode Mode) *itemState {
	st := &itemState{mode: mode}
	if mode.Kind == ModeSW {
		st.window = core.NewWindow(mode.K, sched.Write)
	}
	return st
}
