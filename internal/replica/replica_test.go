package replica

import (
	"fmt"
	"math"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/db"
	"mobirep/internal/sched"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/workload"
)

// pair builds a connected client/server over the in-memory transport.
func pair(t *testing.T, mode Mode) (*Client, *Server, *Meter) {
	t.Helper()
	a, b := transport.NewMemPair()
	srv, err := NewServer(db.NewStore(), mode)
	if err != nil {
		t.Fatal(err)
	}
	serverMeter := srv.Attach(a).Meter()
	cli, err := NewClient(b, mode)
	if err != nil {
		t.Fatal(err)
	}
	return cli, srv, serverMeter
}

func TestModeValidation(t *testing.T) {
	if _, err := NewServer(db.NewStore(), SW(4)); err == nil {
		t.Fatal("even window accepted")
	}
	a, _ := transport.NewMemPair()
	if _, err := NewClient(a, SW(0)); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewServer(db.NewStore(), Mode{Kind: ModeKind(9)}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestModeString(t *testing.T) {
	if SW(5).String() != "SW5" || Static1().String() != "ST1" || Static2().String() != "ST2" {
		t.Fatal("mode names wrong")
	}
}

func TestSW3AllocationLifecycle(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	srv.Write("x", []byte("v1"))

	// First read: remote, no allocation yet (window w w r: write majority).
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v1" || it.Version != 1 {
		t.Fatalf("read 1: %+v", it)
	}
	if cli.HasCopy("x") {
		t.Fatal("copy allocated too early")
	}
	// Second read: window w r r -> read majority -> allocate.
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
	if !cli.HasCopy("x") {
		t.Fatal("copy not allocated after read majority")
	}
	// Local read: window r r r.
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
	// One write: propagated, window r r w, copy stays.
	srv.Write("x", []byte("v2"))
	if !cli.HasCopy("x") {
		t.Fatal("copy dropped on first write")
	}
	if got, _ := cli.Cache().Peek("x"); string(got.Value) != "v2" || got.Version != 2 {
		t.Fatalf("cache after propagation: %+v", got)
	}
	// Second write: window r w w -> write majority -> deallocate.
	srv.Write("x", []byte("v3"))
	if cli.HasCopy("x") {
		t.Fatal("copy not deallocated after write majority")
	}
	// Third write: SC in charge, free.
	srv.Write("x", []byte("v4"))
	// Remote read returns the freshest value.
	it, err = cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v4" || it.Version != 4 {
		t.Fatalf("read after dealloc: %+v", it)
	}
}

func TestSW1DeleteRequestOptimization(t *testing.T) {
	cli, srv, serverMeter := pair(t, SW(1))
	srv.Write("x", []byte("v1"))
	cli.Read("x") // allocates (window [r])
	if !cli.HasCopy("x") {
		t.Fatal("no copy after read")
	}
	before := serverMeter.Snapshot()
	srv.Write("x", []byte("v2"))
	after := serverMeter.Snapshot()
	if cli.HasCopy("x") {
		t.Fatal("copy survived a write under SW1")
	}
	// The write must have cost exactly one control message, no data.
	if after.DataMsgs != before.DataMsgs {
		t.Fatalf("SW1 write propagated data: %+v -> %+v", before, after)
	}
	if after.ControlMsgs != before.ControlMsgs+1 {
		t.Fatalf("SW1 write control messages: %+v -> %+v", before, after)
	}
	// The stale cached value must be gone; a fresh read sees v2.
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v2" {
		t.Fatalf("read after delete-request: %q", it.Value)
	}
}

func TestStatic1NeverAllocates(t *testing.T) {
	cli, srv, serverMeter := pair(t, Static1())
	srv.Write("x", []byte("v1"))
	for i := 0; i < 5; i++ {
		it, err := cli.Read("x")
		if err != nil {
			t.Fatal(err)
		}
		if string(it.Value) != "v1" {
			t.Fatalf("read %d: %q", i, it.Value)
		}
		if cli.HasCopy("x") {
			t.Fatal("ST1 allocated a copy")
		}
	}
	before := serverMeter.Snapshot()
	srv.Write("x", []byte("v2"))
	if after := serverMeter.Snapshot(); after != before {
		t.Fatalf("ST1 write caused traffic: %+v -> %+v", before, after)
	}
	// 5 remote reads: 5 data responses from the server.
	if serverMeter.Snapshot().DataMsgs != 5 {
		t.Fatalf("server data messages = %d", serverMeter.Snapshot().DataMsgs)
	}
}

func TestStatic2AlwaysPropagates(t *testing.T) {
	cli, srv, serverMeter := pair(t, Static2())
	srv.Write("x", []byte("v1"))
	cli.Read("x") // allocates permanently
	if !cli.HasCopy("x") {
		t.Fatal("ST2 did not allocate on first read")
	}
	for i := 2; i <= 6; i++ {
		srv.Write("x", []byte(fmt.Sprintf("v%d", i)))
		if !cli.HasCopy("x") {
			t.Fatal("ST2 lost its copy")
		}
		got, _ := cli.Cache().Peek("x")
		if got.Version != uint64(i) {
			t.Fatalf("cache version %d after write %d", got.Version, i)
		}
	}
	// All subsequent reads are local.
	misses := cli.Cache().Stats().Misses
	for i := 0; i < 10; i++ {
		cli.Read("x")
	}
	if cli.Cache().Stats().Misses != misses {
		t.Fatal("ST2 read went remote")
	}
	// 5 propagations + 1 initial read response.
	if serverMeter.Snapshot().DataMsgs != 6 {
		t.Fatalf("server data messages = %d", serverMeter.Snapshot().DataMsgs)
	}
}

func TestWindowHandoffPreservesHistory(t *testing.T) {
	// After deallocation the SC must continue from the MC's window, not a
	// fresh one: with k=5 and window r r r w w at handoff, a single read
	// (r r w w r... -> reads 3) must NOT allocate if the majority isn't
	// reached, etc. We verify protocol allocation matches the pure policy
	// on the same operation sequence, which is only possible if handoff
	// carries the window.
	seq := sched.MustParse("rrrrrwwrwwrrwrrrwwwwrrrrr")
	cli, srv, _ := pair(t, SW(5))
	srv.Write("x", []byte("seed"))

	policy := core.NewSW(5)
	for i, op := range seq {
		if op == sched.Read {
			if _, err := cli.Read("x"); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := srv.Write("x", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		st := policy.Apply(op)
		if cli.HasCopy("x") != st.HasCopy {
			t.Fatalf("op %d (%v): protocol copy=%v, policy copy=%v",
				i, op, cli.HasCopy("x"), st.HasCopy)
		}
	}
}

// TestProtocolMatchesSimulatorExactly is the E13 property: on an identical
// request sequence, the distributed protocol's combined meters equal the
// simulator's ledger message for message, for every SW mode and both cost
// models.
func TestProtocolMatchesSimulatorExactly(t *testing.T) {
	for _, k := range []int{1, 3, 5, 9} {
		for _, theta := range []float64{0.2, 0.5, 0.8} {
			rng := stats.NewRNG(uint64(100*k) + uint64(theta*10))
			seq := workload.Bernoulli(rng, theta, 2000)

			cli, srv, serverMeter := pair(t, SW(k))
			srv.Write("x", []byte("seed"))
			for _, op := range seq {
				if op == sched.Read {
					if _, err := cli.Read("x"); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := srv.Write("x", []byte("v")); err != nil {
						t.Fatal(err)
					}
				}
			}
			combined := serverMeter.Snapshot().Add(cli.Meter().Snapshot())

			res := sim.Replay(core.NewSW(k), cost.NewMessage(0.5), seq, 0)
			if combined.DataMsgs != res.Ledger.DataMessages {
				t.Fatalf("k=%d theta=%v: data %d vs sim %d",
					k, theta, combined.DataMsgs, res.Ledger.DataMessages)
			}
			if combined.ControlMsgs != res.Ledger.ControlMessages {
				t.Fatalf("k=%d theta=%v: control %d vs sim %d",
					k, theta, combined.ControlMsgs, res.Ledger.ControlMessages)
			}
			if combined.Connections != res.Ledger.Connections {
				t.Fatalf("k=%d theta=%v: connections %d vs sim %d",
					k, theta, combined.Connections, res.Ledger.Connections)
			}
			for _, omega := range []float64{0, 0.3, 1} {
				wantCost := sim.Replay(core.NewSW(k), cost.NewMessage(omega), seq, 0).Cost
				if got := combined.MessageCost(omega); math.Abs(got-wantCost) > 1e-6 {
					t.Fatalf("k=%d theta=%v omega=%v: cost %v vs sim %v",
						k, theta, omega, got, wantCost)
				}
			}
			wantConn := sim.Replay(core.NewSW(k), cost.NewConnection(), seq, 0).Cost
			if got := combined.ConnectionCost(); got != wantConn {
				t.Fatalf("k=%d theta=%v: connections cost %v vs sim %v",
					k, theta, got, wantConn)
			}
		}
	}
}

func TestMultipleKeysIndependent(t *testing.T) {
	cli, srv, _ := pair(t, SW(3))
	srv.Write("x", []byte("x1"))
	srv.Write("y", []byte("y1"))
	// Allocate x only.
	cli.Read("x")
	cli.Read("x")
	if !cli.HasCopy("x") || cli.HasCopy("y") {
		t.Fatalf("copies: x=%v y=%v", cli.HasCopy("x"), cli.HasCopy("y"))
	}
	// Writes to y are free; writes to x propagate.
	srv.Write("y", []byte("y2"))
	if got, _ := cli.Read("y"); string(got.Value) != "y2" {
		t.Fatalf("y = %q", got.Value)
	}
}

func TestReadUnknownKey(t *testing.T) {
	cli, _, _ := pair(t, SW(3))
	it, err := cli.Read("missing")
	if err != nil {
		t.Fatal(err)
	}
	if it.Version != 0 || it.Value != nil {
		t.Fatalf("missing key read: %+v", it)
	}
}

func TestBytesMetered(t *testing.T) {
	cli, srv, serverMeter := pair(t, SW(3))
	srv.Write("x", make([]byte, 1000))
	cli.Read("x")
	total := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
	if total.Bytes < 1000 {
		t.Fatalf("bytes = %d, expected at least the 1000-byte payload", total.Bytes)
	}
}
