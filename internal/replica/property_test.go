package replica

import (
	"fmt"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/db"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

// TestRandomizedProtocolEquivalence drives a randomized mix of singleton
// reads, joint reads, writes, and disconnect/reattach cycles over several
// keys, checking after every step that each key's allocation matches an
// independent reference policy fed the same per-key request stream. This
// is the broadest protocol invariant: no interleaving of the protocol's
// features may diverge from the paper's state machine.
func TestRandomizedProtocolEquivalence(t *testing.T) {
	const k = 5
	const keys = 4
	for seed := uint64(1); seed <= 5; seed++ {
		rng := stats.NewRNG(seed)

		store := db.NewStore()
		srv, err := NewServer(store, SW(k))
		if err != nil {
			t.Fatal(err)
		}
		a, b := transport.NewMemPair()
		sess := srv.Attach(a)
		cli, err := NewClient(b, SW(k))
		if err != nil {
			t.Fatal(err)
		}

		names := make([]string, keys)
		refs := make([]*core.SW, keys)
		for i := range names {
			names[i] = fmt.Sprintf("key-%d", i)
			srv.Write(names[i], []byte("seed"))
			refs[i] = core.NewSW(k)
		}

		check := func(step int, what string) {
			t.Helper()
			for i, name := range names {
				if cli.HasCopy(name) != refs[i].HasCopy() {
					t.Fatalf("seed %d step %d (%s): key %s protocol=%v policy=%v",
						seed, step, what, name, cli.HasCopy(name), refs[i].HasCopy())
				}
			}
		}

		for step := 0; step < 1200; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // singleton read of one key
				i := rng.Intn(keys)
				if _, err := cli.Read(names[i]); err != nil {
					t.Fatal(err)
				}
				refs[i].Apply(sched.Read)
				check(step, "read")
			case 3, 4, 5: // write to one key
				i := rng.Intn(keys)
				if _, err := srv.Write(names[i], []byte{byte(step)}); err != nil {
					t.Fatal(err)
				}
				refs[i].Apply(sched.Write)
				check(step, "write")
			case 6, 7, 8: // joint read of a random subset (one read per key)
				var group []string
				var idx []int
				for i := range names {
					if rng.Bernoulli(0.5) {
						group = append(group, names[i])
						idx = append(idx, i)
					}
				}
				if len(group) == 0 {
					continue
				}
				if _, err := cli.ReadMany(group); err != nil {
					t.Fatal(err)
				}
				for _, i := range idx {
					refs[i].Apply(sched.Read)
				}
				check(step, "batch")
			case 9: // disconnect and reattach: everything resets
				cli.Disconnect()
				sess.Detach()
				a2, b2 := transport.NewMemPair()
				sess = srv.Attach(a2)
				cli.Reattach(b2)
				for i := range refs {
					refs[i] = core.NewSW(k) // fresh all-writes window
				}
				check(step, "reconnect")
			}
		}

		// Values stay correct throughout: a final read of every key
		// returns the store's current version.
		for _, name := range names {
			it, err := cli.Read(name)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := store.Get(name)
			if it.Version != want.Version {
				t.Fatalf("seed %d: key %s version %d, store at %d", seed, name, it.Version, want.Version)
			}
		}
	}
}
