package replica

import (
	"errors"

	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// Disconnection support. Mobile computers disconnect: they move out of
// coverage, power down, or the tariff makes the user pull the plug. The
// paper assumes a connected system (availability is "handled exclusively
// within the stationary system", section 8.1), so the policy here is the
// conservative one its model implies:
//
//   - A disconnected MC cannot receive write propagations, so its cached
//     copies may silently go stale. Disconnect therefore drops every
//     cached copy: reads while offline fail fast with ErrOffline rather
//     than return possibly-stale data.
//   - The SC side, told of the disconnection (Session.Detach, typically
//     wired to the transport's close callback), stops propagating and
//     forgets the client's allocation state: no traffic is wasted on an
//     unreachable radio.
//   - On Reattach both sides start from the one-copy scheme with a fresh
//     all-writes window, exactly like a newly arrived client; the window
//     then re-learns the read/write mix. This is deliberately the
//     cheapest correct behaviour; smarter resync (version vectors,
//     Coda-style reintegration) is write-side work the single-writer
//     model does not need.

// ErrOffline is returned by Read while the client is disconnected.
var ErrOffline = errors.New("replica: client is offline")

// Disconnect takes the client offline: every cached copy is dropped (it
// can no longer be kept coherent) and subsequent Reads fail with
// ErrOffline until Reattach. The old link is closed. Pending reads are
// failed immediately.
func (c *Client) Disconnect() {
	c.mu.Lock()
	c.offline = true
	old := c.link
	c.link = nil
	// Drop all cached copies and allocation state.
	for key, st := range c.items {
		if st.hasCopy {
			c.cache.Drop(key)
		}
	}
	c.items = make(map[string]*itemState)
	// Fail pending remote reads, singleton and batch alike.
	pending := c.pending
	c.pending = make(map[string][]chan wire.Message)
	batch := c.pendingBatch
	c.pendingBatch = nil
	c.mu.Unlock()

	if old != nil {
		old.Close()
	}
	for _, waiters := range pending {
		for _, ch := range waiters {
			close(ch) // receiver treats a closed channel as failure
		}
	}
	for _, ch := range batch {
		close(ch)
	}
}

// Offline reports whether the client is currently disconnected.
func (c *Client) Offline() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offline
}

// Reattach brings the client back online over a new link (the caller has
// dialed and, on the server side, Attached it). All keys restart in the
// one-copy scheme with fresh windows.
//
// Reattach is also safe while still online: the old link is closed and any
// read still waiting on it fails with ErrOffline, instead of leaving a
// stale waiter that would swallow the first response meant for a read
// issued on the new link.
func (c *Client) Reattach(link transport.Link) {
	c.mu.Lock()
	old := c.link
	c.link = link
	c.offline = false
	c.items = make(map[string]*itemState)
	pending := c.pending
	c.pending = make(map[string][]chan wire.Message)
	batch := c.pendingBatch
	c.pendingBatch = nil
	c.mu.Unlock()

	if old != nil && old != link {
		old.Close()
	}
	for _, waiters := range pending {
		for _, ch := range waiters {
			close(ch)
		}
	}
	for _, ch := range batch {
		close(ch)
	}
	link.SetHandler(c.onFrame)
}
