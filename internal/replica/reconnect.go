package replica

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/sched"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// Disconnection support. Mobile computers disconnect: they move out of
// coverage, power down, or the tariff makes the user pull the plug. The
// paper assumes a connected system (availability is "handled exclusively
// within the stationary system", section 8.1), so the baseline policy is
// the conservative one its model implies:
//
//   - A disconnected MC cannot receive write propagations, so its cached
//     copies may silently go stale. Disconnect therefore drops every
//     cached copy: reads while offline fail fast with ErrOffline rather
//     than return possibly-stale data.
//   - The SC side, told of the disconnection (Session.Detach, typically
//     wired to the transport's close callback), stops propagating and
//     forgets the client's allocation state: no traffic is wasted on an
//     unreachable radio.
//   - On Reattach both sides start from the one-copy scheme with a fresh
//     all-writes window, exactly like a newly arrived client; the window
//     then re-learns the read/write mix.
//
// Cold restarts are the right answer for long partitions, but a link blip
// of seconds would throw away a warm cache and learned windows only to
// re-fetch them. The warm path — Suspend plus ResumeResync — keeps every
// copy and window across the outage and reconciles with one control
// message (the held keys and their version stamps) answered by one data
// message that revalidates current copies and re-ships only what changed.
// Until that answer arrives the client stays offline: a read in the gap
// fails (or, under AllowStale, returns the last known value explicitly
// flagged) instead of silently serving data that may have been
// overwritten while the radio was dark.

// ErrOffline is returned by Read while the client is disconnected.
var ErrOffline = errors.New("replica: client is offline")

// ErrStale flags a read served from the last known cached value while
// offline under AllowStale: the data may have been overwritten at the
// server since it was last confirmed fresh.
var ErrStale = errors.New("replica: value may be stale")

// AllowStale permits reads while offline to be served from the last
// known value — live or archived — provided it was confirmed fresh
// within maxAge. Such reads return the item together with ErrStale so
// callers can tell flagged data from a normal read. maxAge <= 0 restores
// the default fail-fast ErrOffline behaviour.
func (c *Client) AllowStale(maxAge time.Duration) {
	c.mu.Lock()
	c.staleMax = maxAge
	c.mu.Unlock()
}

// takeWaitersLocked clears and returns everything currently blocked on
// the link: pending singleton reads, pending joint reads, pending
// continuation reads, and the in-flight resync signal. The caller must
// hold c.mu and fail them all after releasing it.
func (c *Client) takeWaitersLocked() (map[string][]readWaiter, []chan wire.Batch, map[string][]*fnWaiter, chan struct{}) {
	pending := c.pending
	c.pending = make(map[string][]readWaiter)
	batch := c.pendingBatch
	c.pendingBatch = nil
	fns := c.pendingFn
	c.pendingFn = make(map[string][]*fnWaiter)
	done := c.resyncDone
	c.resyncDone = nil
	return pending, batch, fns, done
}

// failWaiters closes every channel collected by takeWaitersLocked
// (receivers treat a closed channel as ErrOffline) and fails every
// continuation waiter with ok=false.
func failWaiters(pending map[string][]readWaiter, batch []chan wire.Batch, fns map[string][]*fnWaiter, done chan struct{}) {
	for _, waiters := range pending {
		for _, w := range waiters {
			close(w.ch)
		}
	}
	for _, ch := range batch {
		close(ch)
	}
	for _, waiters := range fns {
		for _, fw := range waiters {
			fw.fn(wire.Message{}, false)
		}
	}
	if done != nil {
		close(done)
	}
}

// Disconnect takes the client offline cold: every cached copy is dropped
// (it can no longer be kept coherent) and subsequent Reads fail with
// ErrOffline until Reattach. The old link is closed. Pending reads are
// failed immediately. For short outages prefer Suspend, which keeps the
// cache warm for a ResumeResync.
func (c *Client) Disconnect() {
	c.mu.Lock()
	c.offline = true
	c.fenced = false // the cold drop below is everything a fence demands
	old := c.link
	c.link = nil
	// Drop all cached copies and allocation state.
	for key, st := range c.items {
		if st.hasCopy {
			c.cache.Drop(key)
		}
	}
	c.items = make(map[string]*itemState)
	pending, batch, fns, done := c.takeWaitersLocked()
	c.mu.Unlock()

	if old != nil {
		old.Close()
	}
	failWaiters(pending, batch, fns, done)
}

// Suspend takes the client offline warm: cached copies, windows, and
// allocation state all survive, anticipating a ResumeResync when the
// link comes back. Pending reads fail immediately; new reads fail with
// ErrOffline (or serve flagged stale data under AllowStale) until the
// resync completes. The old link is closed.
func (c *Client) Suspend() {
	c.mu.Lock()
	c.offline = true
	old := c.link
	c.link = nil
	pending, batch, fns, done := c.takeWaitersLocked()
	c.mu.Unlock()

	if old != nil {
		old.Close()
	}
	failWaiters(pending, batch, fns, done)
}

// Offline reports whether the client is currently disconnected.
func (c *Client) Offline() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offline
}

// Reattach brings the client back online over a new link (the caller has
// dialed and, on the server side, Attached it). All keys restart in the
// one-copy scheme with fresh windows.
//
// Reattach is also safe while still online: the old link is closed and any
// read still waiting on it fails with ErrOffline, instead of leaving a
// stale waiter that would swallow the first response meant for a read
// issued on the new link.
func (c *Client) Reattach(link transport.Link) {
	c.mu.Lock()
	old := c.link
	c.link = link
	c.offline = false
	c.fenced = false // cold restart: the fence's demand is satisfied
	c.items = make(map[string]*itemState)
	if c.trackFloors {
		// A cold restart starts monotonicity over: the old floors may be
		// unsatisfiable if the authority legitimately rolled back.
		c.floors = make(map[string]uint64)
	}
	pending, batch, fns, done := c.takeWaitersLocked()
	c.mu.Unlock()

	if old != nil && old != link {
		old.Close()
	}
	failWaiters(pending, batch, fns, done)
	link.SetHandler(c.onFrame)
}

// ResumeResync brings a suspended client back over a new link with a
// warm resync instead of a cold restart: the client declares every copy
// it still holds — keys plus cached version stamps, sorted for
// deterministic framing — in one control message, and stays offline
// until the server's ResyncResp revalidates or refreshes them. The
// returned channel is closed when the resync attempt ends (response
// applied, or the attempt abandoned by a later Suspend, Disconnect,
// Reattach, or ResumeResync); check Offline to see whether it succeeded.
// A client holding no copies is online immediately with a closed channel
// and no traffic.
func (c *Client) ResumeResync(link transport.Link) (<-chan struct{}, error) {
	c.mu.Lock()
	old := c.link
	c.link = link
	var keys []string
	for key, st := range c.items {
		if st.hasCopy {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	hints := make([]uint64, len(keys))
	for i, key := range keys {
		if it, ok := c.cache.Peek(key); ok {
			hints[i] = it.Version
		}
	}
	done := make(chan struct{})
	if len(keys) == 0 {
		c.offline = false
		// A fenced client holds no copies, so it lands here: coming back
		// online empty is exactly the cold restart the fence demanded.
		c.fenced = false
		close(done)
	} else {
		c.offline = true
	}
	epochHint := c.epoch
	pending, batch, fns, prevDone := c.takeWaitersLocked()
	if len(keys) > 0 {
		c.resyncDone = done
	}
	c.mu.Unlock()

	if old != nil && old != link {
		old.Close()
	}
	failWaiters(pending, batch, fns, prevDone)
	link.SetHandler(c.onFrame)
	if len(keys) == 0 {
		mResyncImmediate.Inc()
		obsTr.Record(obs.EvResync, "", "immediate", 0, 0)
		return done, nil
	}

	// One reattachment connection, one control message for the whole
	// held set.
	c.meter.addConnection()
	// The declaration carries the epoch this state was built under (0 when
	// never learned): the server answers a dead-epoch resync with a bare
	// fence instead of re-asserting subscriptions that predate its restart.
	frame, err := wire.EncodeBatch(wire.Batch{Kind: wire.KindResyncReq, Epoch: epochHint, Keys: keys, Versions: hints})
	if err != nil {
		return done, fmt.Errorf("replica: encode resync: %w", err)
	}
	c.meter.addControl(len(frame))
	if err := link.Send(frame); err != nil {
		c.suspect(link, err)
		return done, err
	}
	mResyncSent.Inc()
	obsTr.Record(obs.EvResync, "", "sent", int64(len(keys)), 0)
	return done, nil
}

// onResyncResp applies the server's warm-resync answer and brings the
// client back online. Entries apply only to keys still held and are
// version-guarded, so a duplicated or reordered response (chaos) is
// inert on the copies themselves.
func (c *Client) onResyncResp(b wire.Batch) {
	var dealloc []wire.Message
	var applied []db.Item
	var notModified, reshipped int64
	c.mu.Lock()
	c.noteEpochLocked(b.Epoch)
	if c.fenced {
		// The answer names a new epoch (or an earlier AttachResp already
		// fenced this outage): the warm state is gone and the entries speak
		// for a dead incarnation. Stay offline with the fence latched — the
		// supervisor sees EpochFenced after the resync ends and reattaches
		// cold — but close the done channel so the attempt resolves.
		done := c.resyncDone
		c.resyncDone = nil
		fence := c.fenceFn
		c.mu.Unlock()
		mResyncFenced.Inc()
		obsTr.Record(obs.EvResync, "", "fenced", int64(b.Epoch), 0)
		if fence != nil {
			fence()
		}
		if done != nil {
			close(done)
		}
		return
	}
	for _, e := range b.Entries {
		st, ok := c.items[e.Key]
		if !ok || !st.hasCopy {
			continue
		}
		if e.NotModified {
			// The cached copy is current; refresh its staleness clock.
			c.cache.Refresh(e.Key)
			notModified++
			continue
		}
		reshipped++
		cur, _ := c.cache.Peek(e.Key)
		if !c.cache.Update(db.Item{Key: e.Key, Value: e.Value, Version: e.Version}) {
			continue
		}
		if c.applyFn != nil {
			// Batch memory is owned (wire.DecodeBatch copies), so the
			// entry can ride to the handler as-is.
			applied = append(applied, db.Item{Key: e.Key, Value: e.Value, Version: e.Version})
		}
		if st.mode.Kind != ModeSW {
			continue
		}
		// Every write missed while away counts toward the window, just
		// as if the propagations had arrived one by one — capped at K,
		// beyond which older pushes would have slid out anyway.
		missed := int(e.Version - cur.Version)
		if missed > st.mode.K {
			missed = st.mode.K
		}
		for i := 0; i < missed; i++ {
			st.window.Push(sched.Write)
		}
		if !st.window.ReadMajority() {
			// The outage turned the mix write-heavy: deallocate, handing
			// the window back to the SC.
			st.hasCopy = false
			c.cache.Drop(e.Key)
			mDeallocs.Inc()
			obsTr.Record(obs.EvDeallocate, e.Key, "resync", int64(e.Version), 0)
			dealloc = append(dealloc, wire.Message{
				Kind: wire.KindDeleteReq, Key: e.Key, Window: st.window.Bits(),
			})
		}
	}
	c.offline = false
	done := c.resyncDone
	c.resyncDone = nil
	apply := c.applyFn
	drop := c.dropFn
	c.mu.Unlock()

	mResyncApplied.Inc()
	mResyncNotModified.Add(uint64(notModified))
	mResyncReshipped.Add(uint64(reshipped))
	obsTr.Record(obs.EvResync, "", "applied", notModified, reshipped)

	if apply != nil {
		for _, it := range applied {
			// Re-shipped values mirror downward like live propagations.
			apply(it)
		}
	}
	for _, msg := range dealloc {
		// Deallocations ride the resync connection: control messages,
		// no new connection.
		_ = c.sendControl(msg)
		if drop != nil {
			drop(msg.Key)
		}
	}
	if done != nil {
		close(done)
	}
}
