package replica

// Overload protection for the stationary computer. The paper assumes an
// SC that can always absorb its mobile clients' traffic; at fleet scale
// that assumption breaks in three ways, each with its own bound here:
//
//   - Too many clients: TryAttach refuses attaches past MaxSessions with
//     a Busy("full") frame instead of accepting state it cannot afford.
//   - Too many at once: a per-shard token bucket caps the attach rate, so
//     a flash crowd is smeared out with Busy("rate") refusals rather than
//     serialized into a convoy behind the shard tokens.
//   - Too much retained state: a soft memory watermark (SetMemSoftLimit)
//     sheds idle-longest sessions with Busy("shed") until the account is
//     back under budget.
//
// Every refusal and eviction answers with a wire.KindBusy frame carrying
// the reason and a retry-after hint, which the client supervisor folds
// into its backoff — "server full, come back later" is a different signal
// from "server dead". The client's normal reconnect + warm-resync path
// then repairs any state the eviction dropped. DESIGN.md §13 documents
// the model.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mobirep/internal/obs"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// ErrServerBusy is returned by TryAttach when admission control refuses
// the client. The link has already been answered with a Busy frame and
// closed; the caller owns nothing.
var ErrServerBusy = errors.New("replica: server busy")

// AdmissionConfig is the attach-time overload policy for TryAttach.
type AdmissionConfig struct {
	// MaxSessions caps concurrently attached sessions server-wide; at the
	// cap new attaches are refused with Busy("full"). Zero means no cap.
	MaxSessions int
	// AttachRate caps attaches per second server-wide, enforced as an
	// AttachRate/shards token bucket per shard (the shard is chosen by
	// the would-be session's attach ID, so the buckets see the same
	// uniform split the sessions do). Zero means no rate limit.
	AttachRate float64
	// AttachBurst is the server-wide bucket depth: how many attaches may
	// land back-to-back before the rate gates. Zero defaults to one
	// second's worth of AttachRate (minimum one per shard).
	AttachBurst int
	// RetryAfter is the hint carried in Busy frames. Zero defaults to
	// one second.
	RetryAfter time.Duration
}

func (cfg AdmissionConfig) validate() error {
	if cfg.MaxSessions < 0 {
		return fmt.Errorf("replica: admission max sessions %d must be non-negative", cfg.MaxSessions)
	}
	if cfg.AttachRate < 0 {
		return fmt.Errorf("replica: admission attach rate %v must be non-negative", cfg.AttachRate)
	}
	if cfg.AttachBurst < 0 {
		return fmt.Errorf("replica: admission attach burst %d must be non-negative", cfg.AttachBurst)
	}
	if cfg.RetryAfter < 0 {
		return fmt.Errorf("replica: admission retry-after %v must be non-negative", cfg.RetryAfter)
	}
	return nil
}

func (cfg AdmissionConfig) retryAfter() time.Duration {
	if cfg.RetryAfter <= 0 {
		return time.Second
	}
	return cfg.RetryAfter
}

// Session-state memory accounting. The numbers are deliberate
// approximations of resident cost — map buckets, struct headers, the
// cloned key in both the session map and the shard index, the window
// ring — kept coarse so the account is cheap to maintain exactly.
const (
	// sessionMemBase is the accounted cost of an attached session before
	// it touches any key.
	sessionMemBase = 512
	// itemMemOverhead is the accounted per-(session,key) cost beyond the
	// key bytes and window slots.
	itemMemOverhead = 96
)

// itemMemCost approximates the resident bytes of one (session,key)
// protocol entry: the key held twice (session map and shard index), one
// window slot per schedule position, and fixed overhead.
func itemMemCost(key string, mode Mode) int64 {
	return int64(2*len(key)) + int64(mode.K) + itemMemOverhead
}

// SetAdmission installs (or, with a zero config, removes) the attach-time
// admission policy. Safe to call on a live server; attaches in flight use
// the policy they started with.
func (s *Server) SetAdmission(cfg AdmissionConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	s.admission.Store(&cfg)
	return nil
}

// Admission returns the current attach-time policy (zero if none is set).
func (s *Server) Admission() AdmissionConfig {
	if cfg := s.admission.Load(); cfg != nil {
		return *cfg
	}
	return AdmissionConfig{}
}

// TryAttach is Attach behind admission control: the session cap and the
// per-shard attach-rate bucket. A refused client is answered with a
// wire.KindBusy frame — reason "full" or "rate", retry-after hint in
// milliseconds — its link is closed, and TryAttach returns ErrServerBusy.
// No attach is ever silently dropped: the client always learns whether
// the server is full or dead. With no policy installed TryAttach is
// exactly Attach.
func (s *Server) TryAttach(link transport.Link) (*Session, error) {
	cfg := s.Admission()
	if cfg.MaxSessions > 0 {
		if n := s.nSessions.Add(1); n > int64(cfg.MaxSessions) {
			s.nSessions.Add(-1)
			s.rejectAttach(link, "full", cfg.retryAfter())
			return nil, ErrServerBusy
		}
	} else {
		s.nSessions.Add(1)
	}
	id := s.nextID.Add(1)
	if cfg.AttachRate > 0 {
		shards := float64(len(s.shards))
		burst := float64(cfg.AttachBurst) / shards
		if burst < 1 {
			burst = cfg.AttachRate / shards
			if burst < 1 {
				burst = 1
			}
		}
		sh := s.shards[sessionShard(id, len(s.shards))]
		if !sh.allowAttach(cfg.AttachRate/shards, burst, s.clock()()) {
			s.nSessions.Add(-1)
			s.rejectAttach(link, "rate", cfg.retryAfter())
			return nil, ErrServerBusy
		}
	}
	return s.attachSession(id, link), nil
}

// rejectAttach answers a refused client with Busy and closes its link.
func (s *Server) rejectAttach(link transport.Link, reason string, retry time.Duration) {
	buf := encodePooled(wire.Message{
		Kind: wire.KindBusy, Key: reason, Version: uint64(retry / time.Millisecond),
	})
	_ = link.Send(buf.B)
	wire.PutBuf(buf)
	link.Close()
	switch reason {
	case "full":
		mAttachRejectedFull.Inc()
	case "rate":
		mAttachRejectedRate.Inc()
	}
	obsTr.Record(obs.EvOverload, "", reason, int64(retry/time.Millisecond), 0)
}

// Evict sheds this session: the client is told why (a Busy frame with the
// reason and retry-after hint), then the session detaches and its link
// closes. The client's supervisor treats the link death like any other —
// reconnect with backoff, warm resync — but honors the hint, so a shed
// fleet trickles back instead of stampeding. Reports whether this call
// won the detach race (a session already gone is not re-shed).
func (ss *Session) Evict(reason string, retryAfter time.Duration) bool {
	// The Busy frame goes out first, while the link is still up: a client
	// that only ever saw the connection drop could not tell shedding from
	// a crash.
	buf := encodePooled(wire.Message{
		Kind: wire.KindBusy, Key: reason, Version: uint64(retryAfter / time.Millisecond),
	})
	_ = ss.link.Send(buf.B)
	wire.PutBuf(buf)
	if !ss.detach() {
		return false
	}
	ss.link.Close()
	mSessionsShed.Inc()
	obsTr.Record(obs.EvOverload, "", reason, int64(retryAfter/time.Millisecond), 0)
	return true
}

// SetMemSoftLimit installs the soft memory watermark ShedToBudget
// enforces, in accounted bytes (see MemBytes). Zero disables shedding.
func (s *Server) SetMemSoftLimit(bytes int64) { s.memSoft.Store(bytes) }

// MemSoftLimit returns the soft watermark (zero when disabled).
func (s *Server) MemSoftLimit() int64 { return s.memSoft.Load() }

// queuedByteser is the optional link surface (transport.TCPLink has it)
// reporting bytes parked in the link's outbox.
type queuedByteser interface{ QueuedBytes() int }

// MemBytes returns the server's accounted memory: every shard's session
// account (base + window state) plus each live link's queued outbox
// bytes, sampled now.
func (s *Server) MemBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.mem.Load()
		sh.enter()
		for sess := range sh.sessions {
			if q, ok := sess.link.(queuedByteser); ok {
				n += int64(q.QueuedBytes())
			}
		}
		sh.exit()
	}
	return n
}

// ShedToBudget compares the memory account against the soft watermark
// and, while over it, evicts idle-longest sessions first — the clients
// getting the least value from their server state pay for the overload —
// returning how many were shed. Each eviction sends Busy("shed") with the
// admission retry-after hint. Run it on a ticker next to ExpireIdle; a
// server under its watermark returns 0 without touching any session.
func (s *Server) ShedToBudget() int {
	limit := s.memSoft.Load()
	if limit <= 0 {
		return 0
	}
	over := s.MemBytes() - limit
	if over <= 0 {
		return 0
	}
	type candidate struct {
		sess *Session
		seen time.Time
		cost int64
	}
	var cands []candidate
	for _, sh := range s.shards {
		sh.enter()
		for sess := range sh.sessions {
			c := candidate{sess: sess, seen: sess.lastSeen, cost: sess.memBytes}
			if q, ok := sess.link.(queuedByteser); ok {
				c.cost += int64(q.QueuedBytes())
			}
			cands = append(cands, c)
		}
		sh.exit()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seen.Before(cands[j].seen) })
	retry := s.Admission().retryAfter()
	shed := 0
	for _, c := range cands {
		if over <= 0 {
			break
		}
		if c.sess.Evict("shed", retry) {
			over -= c.cost
			shed++
		}
	}
	return shed
}
