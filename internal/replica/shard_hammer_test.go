package replica

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// TestShardChurnHammer slams every shard transition concurrently:
// attach, frame traffic (reads, pings, delete-requests, resync batches),
// explicit detach, write fan-out across all shards, and the idle reaper
// with a zero TTL so it races the detaches for every live session. Run
// under -race (ci.sh does) this is the memory-model proof for the
// single-writer shard core; in any mode the final accounting must come
// out exact — no leaked, double-counted, or double-closed sessions.
func TestShardChurnHammer(t *testing.T) {
	srv, err := NewServerShards(db.NewStore(), SW(3), 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if _, err := srv.Write(keys[i], []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}

	gBefore := gSessions.Load()
	// Per-shard occupancy gauges are process-global; compare deltas.
	occBefore := make([]int64, srv.Shards())
	for i, sh := range srv.shards {
		occBefore[i] = sh.occupancy.Load()
	}
	iters := 300
	if testing.Short() {
		iters = 60
	}
	const churners = 8
	done := make(chan struct{})
	var churnWg, bgWg sync.WaitGroup

	// Churners: each cycles sessions through their whole lifetime. Half
	// the sessions are detached explicitly, half are left for the
	// reaper — both teardown paths race with live traffic.
	for c := 0; c < churners; c++ {
		churnWg.Add(1)
		go func(c int) {
			defer churnWg.Done()
			rng := stats.NewRNG(uint64(1000 + c))
			for i := 0; i < iters; i++ {
				a, b := transport.NewMemPair()
				b.SetHandler(func([]byte) {})
				sess := srv.Attach(a)
				for f := 0; f < 4; f++ {
					key := keys[rng.Intn(len(keys))]
					var frame []byte
					switch rng.Intn(4) {
					case 0:
						frame, _ = wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: key})
					case 1:
						frame, _ = wire.Encode(wire.Message{Kind: wire.KindPing, Version: uint64(f)})
					case 2:
						frame, _ = wire.Encode(wire.Message{Kind: wire.KindDeleteReq, Key: key})
					case 3:
						frame, _ = wire.EncodeBatch(wire.Batch{
							Kind: wire.KindResyncReq, Keys: []string{key}, Versions: []uint64{1},
						})
					}
					// Deliver from the client end: the handler runs the
					// session's event on this goroutine, concurrently with
					// every other shard actor.
					_ = b.Send(frame)
				}
				if rng.Bernoulli(0.5) {
					sess.Detach()
				}
			}
		}(c)
	}

	// Writers: fan out across all shards' key indexes continuously.
	for w := 0; w < 2; w++ {
		bgWg.Add(1)
		go func(w int) {
			defer bgWg.Done()
			rng := stats.NewRNG(uint64(2000 + w))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				key := keys[rng.Intn(len(keys))]
				if _, err := srv.Write(key, []byte("hammer")); err != nil {
					t.Errorf("write %s: %v", key, err)
					return
				}
			}
		}(w)
	}

	// Reaper: a zero TTL makes every attached session stale immediately,
	// so each sweep races the churners' explicit Detach calls.
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			srv.ExpireIdle(0)
			_ = srv.Sessions()
			_ = srv.ShardSessions()
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for the churners (with a watchdog), then stop the unbounded
	// background actors.
	churnDone := make(chan struct{})
	go func() {
		churnWg.Wait()
		close(churnDone)
	}()
	select {
	case <-churnDone:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer deadlocked: churners did not finish in 60s")
	}
	close(done)
	bgWg.Wait()

	// Final accounting: reap everything left and prove the books balance.
	srv.ExpireIdle(0)
	if got := srv.Sessions(); got != 0 {
		t.Fatalf("%d sessions leaked after final reap", got)
	}
	if got := gSessions.Load() - gBefore; got != 0 {
		t.Fatalf("global sessions gauge off by %d after full churn", got)
	}
	total := 0
	for sh, c := range srv.ShardSessions() {
		if got := srv.shards[sh].occupancy.Load() - occBefore[sh]; got != int64(c) {
			t.Fatalf("shard %d occupancy gauge moved by %d, want %d", sh, got, c)
		}
		if c < 0 {
			t.Fatalf("shard %d count negative: %d", sh, c)
		}
		total += c
	}
	if total != 0 {
		t.Fatalf("per-shard counts sum to %d after full churn, want 0", total)
	}
	for _, sh := range srv.shards {
		sh.enter()
		if len(sh.index) != 0 {
			t.Fatalf("shard %d key index retains %d keys after all sessions gone", sh.id, len(sh.index))
		}
		sh.exit()
	}
}
