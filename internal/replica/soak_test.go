package replica

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/transport"
)

// TestChaosSoakRecovery hammers one supervised client through auto-mode
// chaos links that drop, duplicate, reorder, and abruptly crash, while
// the server keeps writing and reaping idle sessions. The soak asserts
// the recovery layer's end-to-end invariants rather than any particular
// schedule:
//
//   - no lost writes: once the dust settles every key reads back at the
//     final committed version;
//   - no unflagged staleness: a successful read never goes backwards in
//     version and never reports a version the store has not committed;
//     possibly-stale data appears only with ErrStale, and only while
//     AllowStale is in force;
//   - failures are bounded: a read fails only with the recovery layer's
//     advertised errors, never anything else and never a wrong value;
//   - the server does not leak sessions: crashed links' sessions are
//     reaped, leaving a bounded population;
//   - the meter stays sane: every connection carried at least one
//     message (heartbeats and resyncs never bill idle connections);
//   - the observability registry agrees with the run: dial attempts
//     cover every chaos-crashed link, resyncs never exceed dial
//     attempts, and the stale-read series counts exactly the flagged
//     stale reads the reader saw.
func TestChaosSoakRecovery(t *testing.T) {
	obsBefore := obs.Default().Snapshot()
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c"}
	committed := make(map[string]*atomic.Uint64, len(keys))
	for _, key := range keys {
		committed[key] = &atomic.Uint64{}
		if _, err := srv.Write(key, []byte(key+"#1")); err != nil {
			t.Fatal(err)
		}
		committed[key].Store(1)
	}

	// Every dial lands on a fresh chaos-wrapped in-memory pair; once the
	// soak phase ends, calm turns the faults off so the system settles.
	var calm atomic.Bool
	var dialSeq atomic.Uint64
	dial := func() (transport.Link, error) {
		// Crash is high because a settled client sends little: local reads
		// are silent, so heartbeats carry most of the fault exposure.
		cfg := transport.Config{
			Seed:    900 + dialSeq.Add(1),
			Drop:    0.05,
			Dup:     0.03,
			Reorder: 0.05,
			Crash:   0.08,
		}
		if calm.Load() {
			cfg = transport.Config{}
		}
		a, b := transport.NewMemPair()
		srv.Attach(a)
		chaos, err := transport.NewChaos(b, cfg)
		if err != nil {
			return nil, err
		}
		return chaos, nil
	}

	link, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(link, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	cli.Timeout = 50 * time.Millisecond

	sup := NewSupervisor(cli, dial, SupervisorConfig{
		BackoffMin:     time.Millisecond,
		BackoffMax:     8 * time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
		HeartbeatMiss:  3,
		ResyncTimeout:  40 * time.Millisecond,
		Seed:           7,
	})
	sup.Start()
	defer sup.Stop()

	// Reader goroutine: issue reads (some under AllowStale, some with a
	// context deadline) and check every outcome against the invariants.
	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	var staleSeen atomic.Int64
	go func() {
		defer close(readerErr)
		lastSeen := make(map[string]uint64)
		staleAllowed := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%40 == 0 {
				staleAllowed = !staleAllowed
				if staleAllowed {
					cli.AllowStale(time.Second)
				} else {
					cli.AllowStale(0)
				}
			}
			key := keys[i%len(keys)]
			var it db.Item
			var err error
			if i%7 == 0 {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				it, err = cli.ReadContext(ctx, key)
				cancel()
			} else {
				it, err = cli.Read(key)
			}
			switch {
			case err == nil:
				if it.Version < lastSeen[key] {
					readerErr <- fmt.Errorf("read %s went backwards: v%d after v%d", key, it.Version, lastSeen[key])
					return
				}
				if max := committed[key].Load(); it.Version > max {
					readerErr <- fmt.Errorf("read %s returned uncommitted v%d (committed %d)", key, it.Version, max)
					return
				}
				lastSeen[key] = it.Version
			case errors.Is(err, ErrStale):
				staleSeen.Add(1)
				if !staleAllowed {
					readerErr <- fmt.Errorf("unflagged stale window: ErrStale for %s while AllowStale off", key)
					return
				}
				if max := committed[key].Load(); it.Version > max {
					readerErr <- fmt.Errorf("stale read %s returned uncommitted v%d", key, it.Version)
					return
				}
			case errors.Is(err, ErrOffline), errors.Is(err, ErrTimeout),
				errors.Is(err, context.DeadlineExceeded):
				// The advertised failure modes of a flaky link.
			default:
				readerErr <- fmt.Errorf("read %s failed with unexpected error: %v", key, err)
				return
			}
			// Yield so the heartbeat ticker and the writer get scheduled;
			// an unthrottled spin starves the 2ms keepalive cadence.
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Writer + reaper: commit writes while reaping sessions whose links
	// crashed under them. The 150ms TTL is far above the 5ms heartbeat,
	// so a healthy session is never reaped.
	soakEnd := time.Now().Add(1500 * time.Millisecond)
	for i := 2; time.Now().Before(soakEnd); i++ {
		key := keys[i%len(keys)]
		// Advance the committed ceiling before the write: propagation is
		// synchronous over the in-memory link, so the reader may observe
		// the new version before Write returns.
		want := committed[key].Add(1)
		it, err := srv.Write(key, []byte(fmt.Sprintf("%s#%d", key, i)))
		if err != nil {
			t.Fatal(err)
		}
		if it.Version != want {
			t.Fatalf("writer bookkeeping: %s committed v%d, expected v%d", key, it.Version, want)
		}
		if i%25 == 0 {
			srv.ExpireIdle(150 * time.Millisecond)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}
	// The reader is the only source of reads so far, so the stale-read
	// series must have moved by exactly the flagged stale reads it saw
	// (the settle phase below may add more; capture the delta now).
	staleDelta := obs.Default().Snapshot().Counter(`mobirep_replica_reads_total{result="stale"}`) -
		obsBefore.Counter(`mobirep_replica_reads_total{result="stale"}`)
	if int64(staleDelta) != staleSeen.Load() {
		t.Fatalf("registry counted %d stale reads, reader saw %d", staleDelta, staleSeen.Load())
	}

	// Settle: stop injecting faults and wait for a recovered client.
	calm.Store(true)
	sup.Suspect()
	waitFor(t, func() bool { return !cli.Offline() }, "client online after soak")

	// No lost writes: every key reads back at its final committed version
	// (retrying across any last in-flight recovery).
	for _, key := range keys {
		want := committed[key].Load()
		waitFor(t, func() bool {
			it, err := cli.Read(key)
			return err == nil && it.Version == want
		}, fmt.Sprintf("final read of %s at v%d", key, want))
	}

	st := sup.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("soak never exercised recovery: %+v", st)
	}
	// Crashed links leave sessions behind until the reaper collects them.
	// Sessions dialed near the end of the soak need one TTL to age out;
	// the live session's heartbeats keep renewing it, so the population
	// must settle to the survivor (plus at most one straggler mid-reap).
	waitFor(t, func() bool {
		srv.ExpireIdle(150 * time.Millisecond)
		return srv.Sessions() <= 2
	}, fmt.Sprintf("session reap after soak (reconnects=%d)", st.Reconnects))
	m := cli.Meter().Snapshot()
	if m.Connections == 0 || m.ControlMsgs == 0 {
		t.Fatalf("meter recorded no traffic: %+v", m)
	}
	if m.ControlMsgs+m.DataMsgs < m.Connections {
		t.Fatalf("meter bills idle connections: %+v", m)
	}

	// Registry invariants over the whole soak. Reads are deltas against
	// the test's starting snapshot, so earlier tests in the package do
	// not bleed in.
	obsAfter := obs.Default().Snapshot()
	delta := func(name string) int64 {
		return int64(obsAfter.Counter(name) - obsBefore.Counter(name))
	}
	crashes := delta(`mobirep_chaos_faults_total{fault="crash"}`)
	dials := delta(`mobirep_replica_dial_attempts_total{outcome="ok"}`) +
		delta(`mobirep_replica_dial_attempts_total{outcome="dial-error"}`) +
		delta(`mobirep_replica_dial_attempts_total{outcome="resync-fail"}`)
	if crashes < 1 {
		t.Fatalf("soak injected no link crashes (crash rate too low?): %d", crashes)
	}
	// Every crashed link must have been replaced by a redial; only the
	// initial hand-dialed link exists outside the supervisor's count.
	if dials+1 < crashes {
		t.Fatalf("dial attempts (%d) do not cover crashed links (%d)", dials, crashes)
	}
	// A warm resync happens at most once per dial attempt (and only on
	// the successful ones).
	resyncs := delta(`mobirep_replica_resyncs_total{outcome="sent"}`) +
		delta(`mobirep_replica_resyncs_total{outcome="immediate"}`)
	if resyncs > dials {
		t.Fatalf("resyncs (%d) exceed dial attempts (%d)", resyncs, dials)
	}
	if reconns := delta("mobirep_replica_reconnects_total"); reconns < 1 {
		t.Fatalf("registry saw no reconnects over a soak with %d crashes", crashes)
	}
}

// TestServerCloseCallbackDetachesSession is the accept-loop contract: a
// TCP server wires every link's close callback to Session.Detach, so a
// client that dies abruptly leaves no session behind.
func TestServerCloseCallbackDetachesSession(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			sess := srv.Attach(link)
			link.Start(func(error) { sess.Detach() })
		}
	}()

	link, err := transport.Dial(ln.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(link, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	srv.Write("x", []byte("v1"))
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Sessions() == 1 }, "session attached")

	// Kill the client end without any goodbye; the server's read loop hits
	// EOF and the close callback must detach the session.
	link.Close()
	waitFor(t, func() bool { return srv.Sessions() == 0 }, "session detached after client death")
}
