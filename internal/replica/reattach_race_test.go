package replica

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/transport"
)

// TestReattachUnderConcurrentReads hammers Reattach and Disconnect while
// reader goroutines issue reads, for the race detector. Every read must
// either succeed with a sane value or fail with ErrOffline/ErrClosed; a
// read must never hang on a waiter that survived the link swap (the stale
// waiter would also swallow the first response of a later read).
func TestReattachUnderConcurrentReads(t *testing.T) {
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	srv.Write("x", []byte("v1"))
	srv.Write("y", []byte("v1"))

	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	const readsPerReader = 200
	var wg sync.WaitGroup
	var served, offline atomic.Int64
	keys := []string{"x", "y"}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				it, err := cli.Read(keys[(r+i)%len(keys)])
				switch {
				case err == nil:
					if it.Version == 0 {
						t.Errorf("read returned version 0 for a written key")
						return
					}
					served.Add(1)
				case errors.Is(err, ErrOffline), errors.Is(err, transport.ErrClosed):
					offline.Add(1)
				default:
					t.Errorf("read failed: %v", err)
					return
				}
			}
		}(r)
	}

	// Cycle the connection while the readers run. Half the cycles go
	// through Disconnect first (the documented sequence), half call
	// Reattach while still online (the hardened path).
	for cycle := 0; cycle < 50; cycle++ {
		if cycle%2 == 0 {
			cli.Disconnect()
		}
		sess.Detach()
		na, nb := transport.NewMemPair()
		sess = srv.Attach(na)
		cli.Reattach(nb)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no read ever succeeded across the reconnect cycles")
	}
	t.Logf("reads served=%d offline=%d", served.Load(), offline.Load())
}
