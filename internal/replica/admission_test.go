package replica

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// busyCollector records Busy frames arriving on the client side of a raw
// mem link, so admission tests can assert every refusal was answered.
type busyCollector struct {
	mu     sync.Mutex
	busies []wire.Message
}

func (bc *busyCollector) install(link transport.Link) {
	link.SetHandler(func(frame []byte) {
		msg, err := wire.DecodeBorrowed(frame)
		if err != nil || msg.Kind != wire.KindBusy {
			return
		}
		bc.mu.Lock()
		bc.busies = append(bc.busies, wire.Message{
			Kind: msg.Kind, Key: strings.Clone(msg.Key), Version: msg.Version,
		})
		bc.mu.Unlock()
	})
}

func (bc *busyCollector) snapshot() []wire.Message {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return append([]wire.Message(nil), bc.busies...)
}

func TestTryAttachMaxSessionsRefusesWithBusy(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetAdmission(AdmissionConfig{MaxSessions: 2, RetryAfter: 1500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	var sessions []*Session
	for i := 0; i < 2; i++ {
		a, _ := transport.NewMemPair()
		ss, err := srv.TryAttach(a)
		if err != nil {
			t.Fatalf("attach %d under cap: %v", i, err)
		}
		sessions = append(sessions, ss)
	}

	a, b := transport.NewMemPair()
	var bc busyCollector
	bc.install(b)
	if _, err := srv.TryAttach(a); err != ErrServerBusy {
		t.Fatalf("attach over cap: err = %v, want ErrServerBusy", err)
	}
	busies := bc.snapshot()
	if len(busies) != 1 {
		t.Fatalf("refused client saw %d busy frames, want 1", len(busies))
	}
	if busies[0].Key != "full" || busies[0].Version != 1500 {
		t.Fatalf("busy frame = %+v, want reason full, retry 1500ms", busies[0])
	}
	// The refused link is closed: the server keeps nothing for it.
	if err := a.Send([]byte{0}); err != transport.ErrClosed {
		t.Fatalf("send on refused link: err = %v, want ErrClosed", err)
	}
	if n := srv.Sessions(); n != 2 {
		t.Fatalf("sessions after refusal = %d, want 2", n)
	}

	// A detach frees the slot; the next attach is admitted again.
	sessions[0].Detach()
	a2, _ := transport.NewMemPair()
	if _, err := srv.TryAttach(a2); err != nil {
		t.Fatalf("attach after detach freed a slot: %v", err)
	}
}

func TestTryAttachRateBucketRefusesAndRefills(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	srv.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	if err := srv.SetAdmission(AdmissionConfig{AttachRate: 2, AttachBurst: 2}); err != nil {
		t.Fatal(err)
	}

	attach := func() error {
		a, _ := transport.NewMemPair()
		_, err := srv.TryAttach(a)
		return err
	}
	// Burst of two admits back-to-back, then the bucket is dry.
	if err := attach(); err != nil {
		t.Fatalf("attach 1: %v", err)
	}
	if err := attach(); err != nil {
		t.Fatalf("attach 2: %v", err)
	}
	a, b := transport.NewMemPair()
	var bc busyCollector
	bc.install(b)
	if _, err := srv.TryAttach(a); err != ErrServerBusy {
		t.Fatalf("attach 3 on dry bucket: err = %v, want ErrServerBusy", err)
	}
	if busies := bc.snapshot(); len(busies) != 1 || busies[0].Key != "rate" || busies[0].Version != 1000 {
		t.Fatalf("busy frames = %+v, want one rate refusal with default 1s hint", busies)
	}
	// A rate refusal must not leak a session slot.
	if n := srv.Sessions(); n != 2 {
		t.Fatalf("sessions after rate refusal = %d, want 2", n)
	}
	// One second at 2/s refills two tokens.
	advance(time.Second)
	if err := attach(); err != nil {
		t.Fatalf("attach after refill: %v", err)
	}
	if err := attach(); err != nil {
		t.Fatalf("second attach after refill: %v", err)
	}
	if err := attach(); err != ErrServerBusy {
		t.Fatalf("attach past refill: err = %v, want ErrServerBusy", err)
	}
}

func TestEvictSendsBusyThenDetaches(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	ss := srv.Attach(a)
	var bc busyCollector
	bc.install(b)

	if !ss.Evict("shed", 250*time.Millisecond) {
		t.Fatal("first Evict lost the detach race against nobody")
	}
	busies := bc.snapshot()
	if len(busies) != 1 || busies[0].Key != "shed" || busies[0].Version != 250 {
		t.Fatalf("busy frames = %+v, want one shed notice with 250ms hint", busies)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("sessions after eviction = %d, want 0", n)
	}
	if ss.Evict("shed", 250*time.Millisecond) {
		t.Fatal("second Evict re-shed a detached session")
	}
}

func TestMemBytesAccountsSessionsAndItems(t *testing.T) {
	mode := SW(3)
	srv, err := NewServer(db.NewStore(), mode)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.MemBytes(); got != 0 {
		t.Fatalf("empty server MemBytes = %d, want 0", got)
	}
	a, b := transport.NewMemPair()
	ss := srv.Attach(a)
	cli, err := NewClient(b, mode)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.MemBytes(); got != sessionMemBase {
		t.Fatalf("MemBytes after attach = %d, want %d", got, sessionMemBase)
	}
	if _, err := srv.Write("key-a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read("key-a"); err != nil {
		t.Fatal(err)
	}
	want := int64(sessionMemBase) + itemMemCost("key-a", mode)
	if got := srv.MemBytes(); got != want {
		t.Fatalf("MemBytes after one tracked key = %d, want %d", got, want)
	}
	// A second read of the same key creates no new state.
	if _, err := cli.Read("key-a"); err != nil {
		t.Fatal(err)
	}
	if got := srv.MemBytes(); got != want {
		t.Fatalf("MemBytes after repeat read = %d, want %d", got, want)
	}
	ss.Detach()
	if got := srv.MemBytes(); got != 0 {
		t.Fatalf("MemBytes after detach = %d, want 0", got)
	}
}

func TestShedToBudgetEvictsIdleLongestFirst(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	srv.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})

	// Three sessions attached a second apart: the first is idle-longest.
	var collectors [3]busyCollector
	for i := range collectors {
		a, b := transport.NewMemPair()
		collectors[i].install(b)
		srv.Attach(a)
		mu.Lock()
		now = now.Add(time.Second)
		mu.Unlock()
	}

	// Under the watermark nothing is shed.
	srv.SetMemSoftLimit(10 * sessionMemBase)
	if n := srv.ShedToBudget(); n != 0 {
		t.Fatalf("shed under watermark = %d, want 0", n)
	}

	// Three sessions cost 3*base; a limit just under that sheds exactly
	// the oldest one.
	srv.SetMemSoftLimit(3*sessionMemBase - 1)
	if n := srv.ShedToBudget(); n != 1 {
		t.Fatalf("shed over watermark = %d, want 1", n)
	}
	if n := srv.Sessions(); n != 2 {
		t.Fatalf("sessions after shed = %d, want 2", n)
	}
	if busies := collectors[0].snapshot(); len(busies) != 1 || busies[0].Key != "shed" {
		t.Fatalf("idle-longest session busy frames = %+v, want one shed notice", busies)
	}
	for i := 1; i < 3; i++ {
		if busies := collectors[i].snapshot(); len(busies) != 0 {
			t.Fatalf("session %d shed out of order: %+v", i, busies)
		}
	}
	// Already under budget again: a second pass is a no-op.
	if n := srv.ShedToBudget(); n != 0 {
		t.Fatalf("second shed pass = %d, want 0", n)
	}
}

// latchLink wraps the client end of a mem pair and buffers frames that
// arrive before a handler is installed. The mem pair delivers
// synchronously, so a Busy frame sent by admission control during dial —
// before ResumeResync installs the client's handler — would otherwise be
// lost; over TCP the socket buffers it.
type latchLink struct {
	transport.Link
	mu      sync.Mutex
	h       transport.Handler
	pending [][]byte
}

func newLatchLink(inner transport.Link) *latchLink {
	l := &latchLink{Link: inner}
	inner.SetHandler(func(frame []byte) {
		l.mu.Lock()
		h := l.h
		if h == nil {
			l.pending = append(l.pending, append([]byte(nil), frame...))
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
		h(frame)
	})
	return l
}

func (l *latchLink) SetHandler(h transport.Handler) {
	l.mu.Lock()
	l.h = h
	pending := l.pending
	l.pending = nil
	l.mu.Unlock()
	if h == nil {
		return
	}
	for _, f := range pending {
		h(f)
	}
}

func TestSupervisorHonorsBusyRetryAfter(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")

	// Redials go through admission; a refusal leaves the Busy frame
	// latched for the client to pick up when it takes the link.
	dial := func() (transport.Link, error) {
		serverEnd, clientEnd := transport.NewMemPair()
		lk := newLatchLink(clientEnd)
		_, _ = srv.TryAttach(serverEnd)
		return lk, nil
	}
	sup := fastSupervisor(cli, dial, func(cfg *SupervisorConfig) {
		// A resync timeout far above the test budget: only the Busy signal
		// can unblock a refused reattach attempt this fast.
		cfg.ResyncTimeout = time.Minute
	})
	sup.Start()
	defer sup.Stop()

	// The lone slot is held by a throwaway session, so every supervised
	// redial is refused with Busy until the slot frees up. (Attached
	// before the policy lands: the cap gates new attaches only.)
	blockA, _ := transport.NewMemPair()
	blocker, err := srv.TryAttach(blockA)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetAdmission(AdmissionConfig{MaxSessions: 1, RetryAfter: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	// Kill the live link; the supervisor now cycles Busy refusals.
	sess.Detach()
	b.Close()
	if _, err := cli.Read("y"); err == nil {
		t.Fatal("read on dead link succeeded")
	}
	waitFor(t, func() bool { return sup.Stats().BusySignals >= 2 }, "busy-refused redials")

	// Free the slot: the next hinted retry must get back online well
	// inside the one-minute resync timeout.
	blocker.Detach()
	waitFor(t, func() bool { return sup.Stats().Reconnects >= 1 && !cli.Offline() }, "recovery after busy")
	if !cli.HasCopy("x") {
		t.Fatal("warm copy lost across busy-refused recovery")
	}
}
