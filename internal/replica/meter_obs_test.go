package replica

import (
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/transport"
)

// sideSeries reads the per-side global registry mirror as a MeterSnapshot.
func sideSeries(s obs.Snapshot, side string) MeterSnapshot {
	return MeterSnapshot{
		DataMsgs:    int(s.Counter(`mobirep_replica_data_msgs_total{side="` + side + `"}`)),
		ControlMsgs: int(s.Counter(`mobirep_replica_control_msgs_total{side="` + side + `"}`)),
		Connections: int(s.Counter(`mobirep_replica_connections_total{side="` + side + `"}`)),
		Bytes:       int(s.Counter(`mobirep_replica_meter_bytes_total{side="` + side + `"}`)),
	}
}

func snapshotDelta(after, before MeterSnapshot) MeterSnapshot {
	return MeterSnapshot{
		DataMsgs:    after.DataMsgs - before.DataMsgs,
		ControlMsgs: after.ControlMsgs - before.ControlMsgs,
		Connections: after.Connections - before.Connections,
		Bytes:       after.Bytes - before.Bytes,
	}
}

// TestMeterMirrorsRegistry proves the fold of the per-instance Meter onto
// the obs registry: every Meter add double-writes into the per-side
// global series, so over any traffic pattern the registry deltas equal
// the Meter snapshots exactly. Tests in this package run sequentially,
// so no other client or session writes the mc/sc series concurrently.
func TestMeterMirrorsRegistry(t *testing.T) {
	before := obs.Default().Snapshot()

	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}

	// Mixed traffic: allocation via read majority, propagated writes,
	// a write-majority deallocation, and a warm suspend/resync cycle.
	allocate(t, cli, srv, "x")
	allocate(t, cli, srv, "y")
	for i := 0; i < 4; i++ {
		if _, err := srv.Write("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}

	cli.Suspend()
	sess.Detach()
	if _, err := srv.Write("y", []byte("moved on")); err != nil {
		t.Fatal(err)
	}
	a2, b2 := transport.NewMemPair()
	sess = srv.Attach(a2)
	done, err := cli.ResumeResync(b2)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if _, err := cli.Read("y"); err != nil {
		t.Fatal(err)
	}

	mc := cli.Meter().Snapshot()
	sc := sess.Meter().Snapshot()
	after := obs.Default().Snapshot()

	// The sc registry delta sums both sessions of this test while sc holds
	// only the second; the mc side compares exactly, the sc side as a
	// lower bound here and exactly in the two-session test below.
	gotMC := snapshotDelta(sideSeries(after, "mc"), sideSeries(before, "mc"))
	if gotMC != mc {
		t.Fatalf("mc registry delta %+v != meter snapshot %+v", gotMC, mc)
	}
	gotSC := snapshotDelta(sideSeries(after, "sc"), sideSeries(before, "sc"))
	if gotSC.DataMsgs < sc.DataMsgs || gotSC.ControlMsgs < sc.ControlMsgs ||
		gotSC.Connections < sc.Connections || gotSC.Bytes < sc.Bytes {
		t.Fatalf("sc registry delta %+v lost traffic vs live meter %+v", gotSC, sc)
	}
	if mc.DataMsgs != 0 || mc.ControlMsgs == 0 || mc.Connections == 0 {
		t.Fatalf("traffic pattern too thin to prove the fold: mc = %+v", mc)
	}
}

// TestMeterMirrorsRegistryBothSessions re-runs the fold check with every
// session meter still in hand, so the sc side compares exactly, not just
// as a lower bound.
func TestMeterMirrorsRegistryBothSessions(t *testing.T) {
	before := obs.Default().Snapshot()

	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")
	for i := 0; i < 4; i++ {
		if _, err := srv.Write("x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}

	mc := cli.Meter().Snapshot()
	sc := sess.Meter().Snapshot()
	after := obs.Default().Snapshot()

	if got := snapshotDelta(sideSeries(after, "mc"), sideSeries(before, "mc")); got != mc {
		t.Fatalf("mc registry delta %+v != meter snapshot %+v", got, mc)
	}
	if got := snapshotDelta(sideSeries(after, "sc"), sideSeries(before, "sc")); got != sc {
		t.Fatalf("sc registry delta %+v != meter snapshot %+v", got, sc)
	}
}
