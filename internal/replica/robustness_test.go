package replica

import (
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// rawPair exposes both link ends so tests can inject raw frames.
func rawPair(t *testing.T, mode Mode) (*Client, *Server, transport.Link, transport.Link) {
	t.Helper()
	a, b := transport.NewMemPair()
	srv, err := NewServer(db.NewStore(), mode)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(a)
	cli, err := NewClient(b, mode)
	if err != nil {
		t.Fatal(err)
	}
	return cli, srv, a, b
}

// TestServerIgnoresGarbageFrames: junk from a client must not crash the
// server or corrupt its state.
func TestServerIgnoresGarbageFrames(t *testing.T) {
	cli, srv, _, clientLink := rawPair(t, SW(3))
	srv.Write("x", []byte("v"))
	for _, frame := range [][]byte{
		nil, {}, {0xff}, {0, 0, 0}, {42, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	} {
		if err := clientLink.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	// The protocol still works afterwards.
	it, err := cli.Read("x")
	if err != nil || string(it.Value) != "v" {
		t.Fatalf("read after garbage: %v %q", err, it.Value)
	}
}

// TestClientIgnoresGarbageAndWrongDirectionFrames: junk and misdirected
// kinds from the server side must be dropped.
func TestClientIgnoresGarbageAndWrongDirectionFrames(t *testing.T) {
	cli, srv, serverLink, _ := rawPair(t, SW(3))
	srv.Write("x", []byte("v"))
	// Garbage.
	serverLink.Send([]byte{0xde, 0xad})
	// A ReadReq is client-to-server only; the client must ignore it.
	frame, err := wire.Encode(wire.Message{Kind: wire.KindReadReq, Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	serverLink.Send(frame)
	// An unsolicited WriteProp for an uncached key is a stale race: the
	// client must absorb it without allocating.
	frame, err = wire.Encode(wire.Message{Kind: wire.KindWriteProp, Key: "x", Value: []byte("zz"), Version: 99})
	if err != nil {
		t.Fatal(err)
	}
	serverLink.Send(frame)
	if cli.HasCopy("x") {
		t.Fatal("stale propagation allocated a copy")
	}
	if it, err := cli.Read("x"); err != nil || string(it.Value) != "v" {
		t.Fatalf("read after junk: %v %q", err, it.Value)
	}
}

// TestClientIgnoresUnsolicitedReadResp: a response with no waiter must not
// panic or wedge the pending queue.
func TestClientIgnoresUnsolicitedReadResp(t *testing.T) {
	cli, srv, serverLink, _ := rawPair(t, SW(3))
	srv.Write("x", []byte("v"))
	frame, err := wire.Encode(wire.Message{Kind: wire.KindReadResp, Key: "x", Value: []byte("spoof"), Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	serverLink.Send(frame)
	if it, err := cli.Read("x"); err != nil || string(it.Value) != "v" {
		t.Fatalf("read after unsolicited response: %v %q", err, it.Value)
	}
}

// TestServerIgnoresStaleDeleteReq: a delete-request for a key the client
// does not hold must be a no-op.
func TestServerIgnoresStaleDeleteReq(t *testing.T) {
	cli, srv, _, clientLink := rawPair(t, SW(3))
	srv.Write("x", []byte("v"))
	frame, err := wire.Encode(wire.Message{Kind: wire.KindDeleteReq, Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	clientLink.Send(frame)
	// Normal operation continues; allocation still works.
	cli.Read("x")
	cli.Read("x")
	if !cli.HasCopy("x") {
		t.Fatal("allocation broken after stale delete-request")
	}
}

// TestServerIgnoresBatchRespFromClient: a client must not be able to
// confuse the server with a response-kind batch.
func TestServerIgnoresBatchRespFromClient(t *testing.T) {
	cli, srv, _, clientLink := rawPair(t, SW(3))
	srv.Write("x", []byte("v"))
	frame, err := wire.EncodeBatch(wire.Batch{Kind: wire.KindMultiReadResp,
		Entries: []wire.Entry{{Key: "x", Value: []byte("spoof"), Version: 7, Allocate: true}}})
	if err != nil {
		t.Fatal(err)
	}
	clientLink.Send(frame)
	if it, err := cli.Read("x"); err != nil || string(it.Value) != "v" {
		t.Fatalf("read after spoofed batch: %v %q", err, it.Value)
	}
}
