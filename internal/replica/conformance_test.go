package replica

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
)

// The conformance explorer runs thousands of seeded random op/fault
// schedules through the real Client/Server over a chaos-wrapped in-memory
// pair and checks every observable — each emitted frame, each read result,
// and the final per-key state on both sides — against the single-goroutine
// reference model in model.go. A divergence report carries the seed and
// the full op trace; replaying is
//
//	go test ./internal/replica -run 'TestConformanceExplorer$' -conformance.seed=<seed> -v
//
// which reruns exactly that schedule verbosely, because every choice (mode,
// fault rates, ops, fault dice) derives from the one seed.
var (
	confSchedules = flag.Int("conformance.schedules", 1200,
		"number of seeded fault schedules the conformance explorer runs")
	confSeed = flag.Uint64("conformance.seed", 0,
		"replay a single conformance schedule verbosely (0 = explore)")
	confGen = flag.Int("conformance.gen", 4,
		"schedule generator version for -conformance.seed replays: 1 is the original op mix, 2 adds pings and warm reconnects, 3 adds overload evictions, 4 runs the SC on a power-cut-simulated durable store and adds crash+restart")
	confCoalesce = flag.Bool("conformance.coalesce", false,
		"carry every frame over real coalescing TCPLinks (in-process pipe) instead of the raw in-memory pair; delivery stays lock-step via a per-frame ack, so schedules and verdicts are unchanged")
	confShards = flag.Int("conformance.shards", 0,
		"server shard count for conformance runs (power of two); 0 cycles 1/2/8 by seed so exploration covers all three, without perturbing the seeded op schedules")
)

// confShardsFor picks the server shard count for a schedule. The default
// cycles 1, 2, and 8 by plain seed arithmetic — deliberately NOT a draw
// from the harness RNG, so every op and fault die lands exactly as it
// did before sharding existed and the frozen regression seeds replay
// their original schedules byte for byte.
func confShardsFor(seed uint64) int {
	if *confShards > 0 {
		return *confShards
	}
	return []int{1, 2, 8}[seed%3]
}

// syncCoalescingPair builds two coalescing TCPLinks over an in-process
// net.Pipe and wraps them so Send blocks until the peer's handler has
// returned. The harness steps frames one at a time through the manual
// chaos queues (only the harness goroutine ever reaches the inner link),
// and the ack keeps that lock-step while every frame still crosses the
// real enqueue / writev-batch / zero-copy-receive machinery. On the wire
// a data frame is prefixed 0x00 and the ack is a bare 0x01; neither is
// visible outside the wrapper.
type syncEnd struct {
	tcp    *transport.TCPLink
	mu     sync.Mutex
	h      transport.Handler
	ack    chan struct{}
	closed chan struct{}
	once   sync.Once
}

func newSyncCoalescingPair() (transport.Link, transport.Link) {
	ca, cb := net.Pipe()
	a := &syncEnd{ack: make(chan struct{}, 1), closed: make(chan struct{})}
	b := &syncEnd{ack: make(chan struct{}, 1), closed: make(chan struct{})}
	a.tcp, b.tcp = transport.NewTCPLink(ca), transport.NewTCPLink(cb)
	a.start()
	b.start()
	return a, b
}

func (e *syncEnd) start() {
	e.tcp.SetHandler(func(f []byte) {
		if len(f) > 0 && f[0] == 1 { // peer finished handling our frame
			select {
			case e.ack <- struct{}{}:
			default:
			}
			return
		}
		e.mu.Lock()
		h := e.h
		e.mu.Unlock()
		if h != nil && len(f) > 0 {
			h(f[1:])
		}
		_ = e.tcp.Send([]byte{1})
		_ = e.tcp.Flush()
	})
	e.tcp.SetCoalesce(true)
	e.tcp.Start(func(error) { e.once.Do(func() { close(e.closed) }) })
}

func (e *syncEnd) Send(frame []byte) error {
	buf := make([]byte, 1+len(frame))
	copy(buf[1:], frame)
	if err := e.tcp.Send(buf); err != nil {
		return err
	}
	if err := e.tcp.Flush(); err != nil {
		return err
	}
	select {
	case <-e.ack:
		return nil
	case <-e.closed:
		return transport.ErrClosed
	case <-time.After(10 * time.Second):
		return fmt.Errorf("sync coalescing pair: no ack within 10s")
	}
}

func (e *syncEnd) SetHandler(h transport.Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
}

func (e *syncEnd) Close() error {
	e.once.Do(func() { close(e.closed) })
	return e.tcp.Close()
}

// valueFor is the deterministic payload for version v of key: the harness
// always writes it, so any byte of divergence is a protocol bug, not test
// noise. Version 0 (never written) has no payload.
func valueFor(key string, version uint64) []byte {
	if version == 0 {
		return nil
	}
	return []byte(fmt.Sprintf("%s#%d", key, version))
}

func describeMsg(m wire.Message) string {
	s := fmt.Sprintf("%v(%s", m.Kind, m.Key)
	if m.Kind == wire.KindReadResp || m.Kind == wire.KindWriteProp {
		s += fmt.Sprintf(" v%d", m.Version)
	}
	if m.Kind == wire.KindPing || m.Kind == wire.KindPong {
		s += fmt.Sprintf(" seq=%d", m.Version)
	}
	if m.Kind == wire.KindAttachResp {
		s += fmt.Sprintf(" e%d", m.Version)
	}
	if m.Allocate {
		s += " alloc"
	}
	if len(m.Window) > 0 {
		s += " win=" + m.Window.String()
	}
	return s + ")"
}

func describeBatch(b wire.Batch) string {
	s := fmt.Sprintf("%v(", b.Kind)
	if b.Epoch != 0 {
		s += fmt.Sprintf("e%d ", b.Epoch)
	}
	for i, k := range b.Keys {
		if i > 0 {
			s += " "
		}
		s += k
		if i < len(b.Versions) {
			s += fmt.Sprintf("@v%d", b.Versions[i])
		}
	}
	for i, e := range b.Entries {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=v%d", e.Key, e.Version)
		if e.NotModified {
			s += "!"
		}
	}
	return s + ")"
}

func windowsEqual(a, b sched.Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffMsg returns "" when got matches want, else the first differing
// field. want.Value must already be filled in by the caller.
func diffMsg(got, want wire.Message) string {
	switch {
	case got.Kind != want.Kind:
		return "kind"
	case got.Key != want.Key:
		return "key"
	case got.Version != want.Version:
		return "version"
	case got.Allocate != want.Allocate:
		return "allocate flag"
	case !bytes.Equal(got.Value, want.Value):
		return "value"
	case !windowsEqual(got.Window, want.Window):
		return "window"
	}
	return ""
}

// conformance is one schedule's harness state.
type conformance struct {
	t       *testing.T
	seed    uint64
	gen     int
	shards  int
	rng     *stats.RNG
	verbose bool

	mode     Mode
	chaosCfg transport.Config
	keys     []string

	// cfs backs the SC's store for gen >= 4: a deterministic power-cut
	// filesystem, so doCrashRestart can kill the server at a seeded
	// journal cut and reopen from exactly the bytes that survived.
	cfs *db.CrashFS

	model *Model
	srv   *Server
	sess  *Session
	cli   *Client
	// s2c queues server->client frames, c2s client->server; both manual.
	s2c, c2s *transport.Chaos

	trace     []string
	completed *uint64 // version the last remote read resolved to
	pingSeq   uint64  // keepalive sequence counter (harness state, not RNG)

	// bystanderFrames counts frames the server sent to the silent
	// bystander sessions attached across other shards. The protocol for
	// one client must never touch another client that holds no state, so
	// any frame here is a divergence (it also proves the fan-out's
	// key-index skip matches the old visit-every-session semantics:
	// under both, a stateless session receives nothing).
	bystanderFrames int
	bystanderLast   string
}

func (h *conformance) tracef(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	h.trace = append(h.trace, line)
	if h.verbose {
		h.t.Logf("seed %d: %s", h.seed, line)
	}
}

func (h *conformance) fail(format string, args ...any) error {
	return fmt.Errorf("%s\n  model: %s\n  trace:\n    %s",
		fmt.Sprintf(format, args...), h.model, strings.Join(h.trace, "\n    "))
}

func newConformance(t *testing.T, seed uint64, gen, shards int, verbose bool) (*conformance, error) {
	rng := stats.NewRNG(seed)
	modes := []Mode{SW(1), SW(1), SW(3), SW(3), SW(5), SW(5), Static1(), Static2()}
	mode := modes[rng.Intn(len(modes))]
	drops := []float64{0, 0.05, 0.15}
	dups := []float64{0, 0.05, 0.15}
	reorders := []float64{0, 0.1, 0.3}
	cfg := transport.Config{
		Drop:    drops[rng.Intn(len(drops))],
		Dup:     dups[rng.Intn(len(dups))],
		Reorder: reorders[rng.Intn(len(reorders))],
		Manual:  true,
	}
	if shards == 0 {
		shards = confShardsFor(seed)
	}
	h := &conformance{
		t: t, seed: seed, gen: gen, shards: shards, rng: rng, verbose: verbose,
		mode: mode, chaosCfg: cfg,
		keys:  []string{"a", "b", "c"},
		model: NewModel(mode),
	}
	// Gens 1-3 run the SC on the plain in-memory store (epoch 0: no
	// greeting, batch epochs 0), so their frozen seeds replay the exact
	// byte streams that caught their bugs. Gen >= 4 runs it on a durable
	// store over the power-cut simulator with sync=never — the weakest
	// policy, so crash cuts can surface every survivable prefix — and the
	// epoch machinery lights up end to end.
	store := db.NewStore()
	if gen >= 4 {
		h.cfs = db.NewCrashFS()
		var err error
		store, err = db.OpenWith(db.Options{Path: "sc.log", Sync: db.SyncNever, FS: h.cfs})
		if err != nil {
			return nil, err
		}
	}
	srv, err := NewServerShards(store, mode, shards)
	if err != nil {
		return nil, err
	}
	h.srv = srv
	h.model.RestartSC(map[string]uint64{}, store.Epoch())
	h.tracef("mode=%v drop=%v dup=%v reorder=%v shards=%d gen=%d epoch=%d",
		mode, cfg.Drop, cfg.Dup, cfg.Reorder, shards, gen, store.Epoch())
	h.attachBystanders()
	if err := h.connect(); err != nil {
		return nil, err
	}
	return h, nil
}

// attachBystanders attaches three silent sessions, before the client so
// they also shift the client's session off shard 0: they must never
// receive a single frame, whatever the schedule does. The one exception
// is the epoch greeting a durable-store server sends every fresh attach
// — that is liveness traffic addressed to them, not protocol fan-out, so
// the counter skips it.
func (h *conformance) attachBystanders() {
	for i := 0; i < 3; i++ {
		a, b := transport.NewMemPair()
		b.SetHandler(func(f []byte) {
			if k, ok := wire.FrameKind(f); ok && k == wire.KindAttachResp {
				return
			}
			h.bystanderFrames++
			if m, err := wire.Decode(f); err == nil {
				h.bystanderLast = describeMsg(m)
			} else {
				h.bystanderLast = "<undecodable>"
			}
		})
		h.srv.Attach(a)
	}
}

// connect builds a fresh chaos pair and attaches both endpoints to it.
// With -conformance.coalesce the pair's inner links are real coalescing
// TCPLinks; the RNG derivation is shared, so seeds replay identically.
func (h *conformance) connect() error {
	cfg := h.chaosCfg
	cfg.Seed = h.rng.Uint64()
	var sLink, cLink *transport.Chaos
	var err error
	if *confCoalesce {
		a, b := newSyncCoalescingPair()
		sLink, cLink, err = transport.NewChaosPairOver(cfg, a, b)
	} else {
		sLink, cLink, err = transport.NewChaosPair(cfg)
	}
	if err != nil {
		return err
	}
	h.s2c, h.c2s = sLink, cLink
	h.sess = h.srv.Attach(sLink)
	// A durable-store server greets every attach with its epoch; an
	// epoch-0 (in-memory) server must stay wire-identical and send nothing.
	if err := h.expectEmits("server", h.s2c, 0, h.model.AttachGreeting()); err != nil {
		return err
	}
	if h.cli == nil {
		h.cli, err = NewClient(cLink, h.mode)
		return err
	}
	h.cli.Reattach(cLink)
	return nil
}

// reconnect models the mobile user cycling the connection: undelivered
// frames on both directions are lost with the old links.
func (h *conformance) reconnect() error {
	h.tracef("reconnect (lose %d+%d in-flight frames)", h.s2c.Pending(), h.c2s.Pending())
	h.s2c.Close()
	h.c2s.Close()
	h.cli.Disconnect()
	h.sess.Detach()
	h.model.Reconnect()
	return h.connect()
}

func (h *conformance) randKey() string { return h.keys[h.rng.Intn(len(h.keys))] }

// expectBatchEmits checks that exactly the predicted batch frame (or
// nothing, when want is nil) was queued on q past index before. The
// harness fills payloads for entries the model predicts as re-shipped.
func (h *conformance) expectBatchEmits(side string, q *transport.Chaos, before int, want *wire.Batch) error {
	frames := q.PendingFrames()
	if len(frames) < before {
		return h.fail("%s queue shrank from %d to %d frames", side, before, len(frames))
	}
	got := frames[before:]
	if want == nil {
		if len(got) != 0 {
			return h.fail("%s emitted %d frames, model predicts none", side, len(got))
		}
		return nil
	}
	if len(got) != 1 {
		return h.fail("%s emitted %d frames, model predicts one batch", side, len(got))
	}
	b, err := wire.DecodeBatch(got[0])
	if err != nil {
		return h.fail("%s emitted undecodable batch: %v", side, err)
	}
	if b.Kind != want.Kind || len(b.Keys) != len(want.Keys) || len(b.Entries) != len(want.Entries) {
		return h.fail("%s batch shape diverges: impl %s, model %s",
			side, describeBatch(b), describeBatch(*want))
	}
	if b.Epoch != want.Epoch {
		return h.fail("%s batch epoch diverges: impl %d, model %d (%s)",
			side, b.Epoch, want.Epoch, describeBatch(b))
	}
	for i := range want.Keys {
		if b.Keys[i] != want.Keys[i] || b.Versions[i] != want.Versions[i] {
			return h.fail("%s batch key %d diverges: impl %s, model %s",
				side, i, describeBatch(b), describeBatch(*want))
		}
	}
	for i, w := range want.Entries {
		if !w.NotModified {
			w.Value = valueFor(w.Key, w.Version)
		}
		g := b.Entries[i]
		if g.Key != w.Key || g.Version != w.Version || g.NotModified != w.NotModified ||
			g.Allocate != w.Allocate || !bytes.Equal(g.Value, w.Value) ||
			!windowsEqual(g.Window, w.Window) {
			return h.fail("%s batch entry %d diverges: impl %s, model %s",
				side, i, describeBatch(b), describeBatch(*want))
		}
	}
	return nil
}

// expectEmits checks that exactly the predicted frames were queued on q
// past index before, in order, byte for byte.
func (h *conformance) expectEmits(side string, q *transport.Chaos, before int, want []wire.Message) error {
	frames := q.PendingFrames()
	if len(frames) < before {
		return h.fail("%s queue shrank from %d to %d frames", side, before, len(frames))
	}
	got := frames[before:]
	if len(got) != len(want) {
		var gotDesc []string
		for _, f := range got {
			if m, err := wire.Decode(f); err == nil {
				gotDesc = append(gotDesc, describeMsg(m))
			} else {
				gotDesc = append(gotDesc, "<undecodable>")
			}
		}
		return h.fail("%s emitted %d frames, model predicts %d: got [%s]",
			side, len(got), len(want), strings.Join(gotDesc, " "))
	}
	for i, f := range got {
		msg, err := wire.Decode(f)
		if err != nil {
			return h.fail("%s emitted undecodable frame: %v", side, err)
		}
		w := want[i]
		if w.Kind == wire.KindReadResp || w.Kind == wire.KindWriteProp {
			w.Value = valueFor(w.Key, w.Version)
		}
		if d := diffMsg(msg, w); d != "" {
			return h.fail("%s frame %d diverges on %s: impl %s, model %s",
				side, i, d, describeMsg(msg), describeMsg(w))
		}
	}
	return nil
}

// pumpOne steps one queued frame through the chaos link (direction chosen
// by the seeded RNG), mirrors the outcome into the model, and checks any
// protocol response the implementation emitted against the model's
// prediction.
func (h *conformance) pumpOne() error {
	cN, sN := h.c2s.Pending(), h.s2c.Pending()
	if cN+sN == 0 {
		return nil
	}
	useC2S := cN > 0 && (sN == 0 || h.rng.Bernoulli(0.5))
	var q, opp *transport.Chaos
	var dir string
	if useC2S {
		q, opp, dir = h.c2s, h.s2c, "mc->sc"
	} else {
		q, opp, dir = h.s2c, h.c2s, "sc->mc"
	}
	oppBefore := opp.Pending()
	ev, ok := q.Step()
	if !ok {
		return h.fail("step on %s produced no event with frames pending", dir)
	}
	if wire.IsBatchFrame(ev.Frame) {
		b, err := wire.DecodeBatch(ev.Frame)
		if err != nil {
			return h.fail("chaos surfaced corrupted batch on %s: %v", dir, err)
		}
		h.tracef("%s %v %s", dir, ev.Action, describeBatch(b))
		if ev.Action == transport.ChaosDropped || ev.Action == transport.ChaosDeferred {
			return nil
		}
		if useC2S {
			return h.expectBatchEmits("server", opp, oppBefore, h.model.DeliverResyncToServer(b))
		}
		return h.expectEmits("client", opp, oppBefore, h.model.DeliverResyncToClient(b))
	}
	msg, err := wire.Decode(ev.Frame)
	if err != nil {
		return h.fail("chaos surfaced corrupted frame on %s: %v", dir, err)
	}
	h.tracef("%s %v %s", dir, ev.Action, describeMsg(msg))
	if ev.Action == transport.ChaosDropped || ev.Action == transport.ChaosDeferred {
		return nil // nothing reached the peer
	}
	// Delivered (a duplicate also re-queued a copy behind the rest).
	if useC2S {
		return h.expectEmits("server", opp, oppBefore, h.model.DeliverToServer(msg))
	}
	want, completed := h.model.DeliverToClient(msg)
	if completed != nil {
		h.completed = completed
	}
	return h.expectEmits("client", opp, oppBefore, want)
}

// doPing sends a keepalive probe; the model predicts the echoed pong when
// the frame is eventually delivered.
func (h *conformance) doPing() error {
	before := h.c2s.Pending()
	h.pingSeq++
	h.tracef("ping seq=%d", h.pingSeq)
	if err := h.cli.Ping(h.pingSeq); err != nil {
		return h.fail("ping failed: %v", err)
	}
	return h.expectEmits("client", h.c2s, before,
		[]wire.Message{{Kind: wire.KindPing, Version: h.pingSeq}})
}

// reconnectWarm models a link blip short enough for a warm resync: the
// links die (server session included — the close callback detaches it),
// the client suspends keeping its copies, redials, and reconciles with a
// ResyncReq/ResyncResp exchange. Chaos can eat either resync frame, in
// which case the client stays offline and the supervisor's behaviour —
// abandon the attempt and redial — is replayed deterministically.
func (h *conformance) reconnectWarm() error {
	for attempt := 0; attempt < 25; attempt++ {
		h.tracef("warm reconnect (lose %d+%d in-flight frames)", h.s2c.Pending(), h.c2s.Pending())
		h.s2c.Close()
		h.c2s.Close()
		h.cli.Suspend()
		h.sess.Detach()
		h.model.DetachSC()

		cfg := h.chaosCfg
		cfg.Seed = h.rng.Uint64()
		sLink, cLink, err := transport.NewChaosPair(cfg)
		if err != nil {
			return err
		}
		h.s2c, h.c2s = sLink, cLink
		h.sess = h.srv.Attach(sLink)
		if err := h.expectEmits("server", h.s2c, 0, h.model.AttachGreeting()); err != nil {
			return err
		}

		want := h.model.ResyncRequest()
		before := h.c2s.Pending()
		if _, err := h.cli.ResumeResync(cLink); err != nil {
			return h.fail("resume resync: %v", err)
		}
		if want == nil {
			if h.cli.Offline() {
				return h.fail("empty resync left the client offline")
			}
			return h.expectEmits("client", h.c2s, before, nil)
		}
		if err := h.expectBatchEmits("client", h.c2s, before, want); err != nil {
			return err
		}
		// Pump until the resync answer lands (delivery is synchronous, so
		// the client is online the moment it does) or both queues dry out
		// — the resync was lost in the chaos and the attempt restarts.
		for steps := 0; h.cli.Offline(); steps++ {
			if steps > 4000 {
				return h.fail("warm resync pump exceeded step budget")
			}
			if h.s2c.Pending()+h.c2s.Pending() == 0 {
				h.tracef("resync lost in transit; redialing")
				break
			}
			if err := h.pumpOne(); err != nil {
				return err
			}
		}
		if !h.cli.Offline() {
			return nil
		}
	}
	return h.fail("warm reconnect never completed")
}

// doEvict models the overload shedder hitting the live session
// (Session.Evict): the server must send exactly the Busy notice the model
// predicts and then kill the link — the manual chaos queue dies with it,
// so the notice is "lost in the socket" the way a real eviction races the
// close. From here the client is talking to a detached session: its sends
// vanish, remote reads sever and force a cold reconnect, and a warm
// reconnect re-pairs via resync — all of which the model predicts through
// its scDetached state. A second eviction finds no session and must be a
// frame-free no-op.
func (h *conformance) doEvict() error {
	want := h.model.EvictSC("shed", 250)
	sentBefore := h.s2c.Stats().Sent
	ok := h.sess.Evict("shed", 250*time.Millisecond)
	h.tracef("evict session (shed, evicted=%v)", ok)
	if ok != (want != nil) {
		return h.fail("evict: impl evicted=%v, model predicts %v", ok, want != nil)
	}
	// The Busy frame must have been handed to the link before Close wiped
	// it (content is pinned by the admission unit tests; the closed manual
	// queue only lets us observe the count and the ordering here).
	if got := h.s2c.Stats().Sent - sentBefore; got != len(want) {
		return h.fail("evict sent %d frames before closing the link, model predicts %d", got, len(want))
	}
	return nil
}

// doCrashRestart power-cuts the SC and restarts it from whatever prefix
// of the un-synced filesystem journal the seeded cut kept (sync=never, so
// any prefix is fair game — acknowledged versions may roll back, which is
// exactly what the epoch fence must surface). The dead store is abandoned
// un-Closed, links die with the process, and the new incarnation opens
// the survivor bytes, bumps the persisted epoch, and gets fresh
// bystanders. The model restarts from the reopened store's contents; the
// client then recovers the way the supervisor would: warm resync first,
// and a cold Reattach if the answer fences.
func (h *conformance) doCrashRestart() error {
	cut := h.rng.Intn(h.cfs.Ops() + 1)
	h.tracef("crash sc (keep %d/%d journaled ops) + restart", cut, h.cfs.Ops())
	h.s2c.Close()
	h.c2s.Close()
	h.cli.Suspend()
	h.cfs.Kill(cut)
	store, err := db.OpenWith(db.Options{Path: "sc.log", Sync: db.SyncNever, FS: h.cfs})
	if err != nil {
		return h.fail("reopen store after crash: %v", err)
	}
	srv, err := NewServerShards(store, h.mode, h.shards)
	if err != nil {
		return h.fail("restart server: %v", err)
	}
	h.srv = srv
	h.attachBystanders()
	surviving := make(map[string]uint64)
	for _, key := range store.Keys() {
		it, _ := store.Get(key)
		surviving[key] = it.Version
	}
	h.model.RestartSC(surviving, store.Epoch())
	h.tracef("restarted: epoch=%d survivors=%d", store.Epoch(), len(surviving))

	for attempt := 0; attempt < 25; attempt++ {
		h.s2c.Close()
		h.c2s.Close()
		h.cli.Suspend()
		h.sess.Detach()
		h.model.DetachSC()

		cfg := h.chaosCfg
		cfg.Seed = h.rng.Uint64()
		sLink, cLink, err := transport.NewChaosPair(cfg)
		if err != nil {
			return err
		}
		h.s2c, h.c2s = sLink, cLink
		h.sess = h.srv.Attach(sLink)
		if err := h.expectEmits("server", h.s2c, 0, h.model.AttachGreeting()); err != nil {
			return err
		}

		want := h.model.ResyncRequest()
		before := h.c2s.Pending()
		if _, err := h.cli.ResumeResync(cLink); err != nil {
			return h.fail("resume resync after crash: %v", err)
		}
		if want == nil {
			// Nothing held: online at once; the queued greeting teaches the
			// client the new epoch whenever the main loop delivers it.
			if h.cli.Offline() {
				return h.fail("empty post-crash resync left the client offline")
			}
			return h.expectEmits("client", h.c2s, before, nil)
		}
		if err := h.expectBatchEmits("client", h.c2s, before, want); err != nil {
			return err
		}
		for steps := 0; h.cli.Offline() && !h.cli.EpochFenced(); steps++ {
			if steps > 4000 {
				return h.fail("crash recovery pump exceeded step budget")
			}
			if h.s2c.Pending()+h.c2s.Pending() == 0 {
				h.tracef("post-crash resync lost in transit; redialing")
				break
			}
			if err := h.pumpOne(); err != nil {
				return err
			}
		}
		if h.cli.EpochFenced() {
			// Mirror the supervisor: a fence demands a cold restart, done on
			// the already-dialed link. Fencing dropped every copy on both the
			// impl and the model, so the cold session starts clean.
			h.tracef("epoch fence observed; cold reattach")
			h.cli.Reattach(cLink)
			return nil
		}
		if !h.cli.Offline() {
			return nil
		}
	}
	return h.fail("post-crash recovery never completed")
}

func (h *conformance) doWrite(key string) error {
	version, want := h.model.Write(key)
	before := h.s2c.Pending()
	h.tracef("write %s -> v%d", key, version)
	it, err := h.srv.Write(key, valueFor(key, version))
	if err != nil {
		return h.fail("server write %s: %v", key, err)
	}
	if it.Version != version {
		return h.fail("write %s: impl committed v%d, model v%d", key, it.Version, version)
	}
	return h.expectEmits("server", h.s2c, before, want)
}

func (h *conformance) doRead(key string) error {
	before := h.c2s.Pending()
	if v, local := h.model.LocalRead(key); local {
		h.tracef("read %s (local, expect v%d)", key, v)
		it, err := h.cli.Read(key)
		if err != nil {
			return h.fail("local read %s failed: %v", key, err)
		}
		if it.Version != v || !bytes.Equal(it.Value, valueFor(key, v)) {
			return h.fail("local read %s: impl v%d %q, model v%d", key, it.Version, it.Value, v)
		}
		if n := h.c2s.Pending(); n != before {
			return h.fail("local read %s sent %d frames", key, n-before)
		}
		return nil
	}

	want := h.model.StartRead(key)
	h.tracef("read %s (remote)", key)
	type result struct {
		it  db.Item
		err error
	}
	done := make(chan result, 1)
	go func() {
		it, err := h.cli.Read(key)
		done <- result{it, err}
	}()
	if !h.c2s.WaitPending(before+1, 2*time.Second) {
		select {
		case r := <-done:
			return h.fail("remote read %s finished without sending: v%d err=%v",
				key, r.it.Version, r.err)
		default:
		}
		return h.fail("remote read %s sent no request frame", key)
	}
	if err := h.expectEmits("client", h.c2s, before, want); err != nil {
		return err
	}
	// Pump until the read resolves. If both queues dry out first, the
	// request or its response was lost in the chaos: the mobile user gives
	// up and cycles the connection, which must fail the read with
	// ErrOffline.
	h.completed = nil
	for steps := 0; h.model.PendingRead(); steps++ {
		if steps > 4000 {
			return h.fail("read %s pump exceeded step budget", key)
		}
		if h.s2c.Pending() == 0 && h.c2s.Pending() == 0 {
			h.tracef("read %s lost in transit; reconnecting", key)
			h.model.FailPendingRead()
			if err := h.reconnect(); err != nil {
				return err
			}
			select {
			case r := <-done:
				if !errors.Is(r.err, ErrOffline) {
					return h.fail("severed read %s: got v%d err=%v, want ErrOffline",
						key, r.it.Version, r.err)
				}
			case <-time.After(2 * time.Second):
				return h.fail("severed read %s still blocked after reconnect", key)
			}
			return nil
		}
		if err := h.pumpOne(); err != nil {
			return err
		}
	}
	if h.completed == nil {
		return h.fail("harness bug: read %s completed without a version", key)
	}
	v := *h.completed
	select {
	case r := <-done:
		if r.err != nil {
			return h.fail("remote read %s failed: %v", key, r.err)
		}
		if r.it.Version != v || !bytes.Equal(r.it.Value, valueFor(key, v)) {
			return h.fail("remote read %s: impl v%d %q, model v%d", key, r.it.Version, r.it.Value, v)
		}
	case <-time.After(2 * time.Second):
		return h.fail("remote read %s blocked although model resolved it to v%d", key, v)
	}
	return nil
}

// implSide snapshots one implementation side's per-key state under its
// lock: the copy bit and the window (all-writes default when the key was
// never touched, matching newItemState).
func implMCState(c *Client, mode Mode, key string) (bool, sched.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return implState(c.items, mode, key)
}

func implSCState(ss *Session, mode Mode, key string) (bool, sched.Schedule) {
	ss.shard.enter()
	defer ss.shard.exit()
	return implState(ss.items, mode, key)
}

func implState(items map[string]*itemState, mode Mode, key string) (bool, sched.Schedule) {
	st, ok := items[key]
	if !ok {
		var win sched.Schedule
		if mode.Kind == ModeSW {
			win = make(sched.Schedule, mode.K)
			for i := range win {
				win[i] = sched.Write
			}
		}
		return false, win
	}
	var win sched.Schedule
	if st.window != nil {
		win = st.window.Bits()
	}
	return st.hasCopy, win
}

// checkFinalState compares every key's terminal state: store version, copy
// bits on both sides, cache contents, and the in-charge windows.
func (h *conformance) checkFinalState() error {
	if h.bystanderFrames != 0 {
		return h.fail("bystander sessions received %d frames (last: %s); stateless sessions must never see traffic",
			h.bystanderFrames, h.bystanderLast)
	}
	for _, key := range h.keys {
		it, _ := h.srv.Store().Get(key)
		if it.Version != h.model.StoreVersion(key) {
			return h.fail("final %s: store at v%d, model v%d", key, it.Version, h.model.StoreVersion(key))
		}

		mcCopy, mcWin := implMCState(h.cli, h.mode, key)
		if mcCopy != h.model.MCHasCopy(key) {
			return h.fail("final %s: MC hasCopy=%v, model %v", key, mcCopy, h.model.MCHasCopy(key))
		}
		cacheIt, cached := h.cli.cache.Peek(key)
		mv, mok := h.model.CacheVersion(key)
		if cached != mok {
			return h.fail("final %s: cache present=%v, model %v", key, cached, mok)
		}
		if cached && (cacheIt.Version != mv || !bytes.Equal(cacheIt.Value, valueFor(key, mv))) {
			return h.fail("final %s: cache v%d %q, model v%d", key, cacheIt.Version, cacheIt.Value, mv)
		}
		if h.mode.Kind == ModeSW && mcCopy && !windowsEqual(mcWin, h.model.MCWindow(key)) {
			return h.fail("final %s: MC window %v, model %v", key, mcWin, h.model.MCWindow(key))
		}

		scCopy, scWin := implSCState(h.sess, h.mode, key)
		if scCopy != h.model.SCHasCopy(key) {
			return h.fail("final %s: SC hasCopy=%v, model %v", key, scCopy, h.model.SCHasCopy(key))
		}
		if h.mode.Kind == ModeSW && !scCopy && !windowsEqual(scWin, h.model.SCWindow(key)) {
			return h.fail("final %s: SC window %v, model %v", key, scWin, h.model.SCWindow(key))
		}
	}
	return nil
}

// runConformance executes one full schedule derived from seed, returning a
// replayable divergence report on the first mismatch. gen selects the
// schedule generator: 1 is the original op mix (kept verbatim so the
// frozen regression seeds replay the exact schedules that caught their
// bugs), 2 widens the switch with keepalive pings and warm reconnects,
// 3 adds overload evictions, 4 runs the SC on a power-cut-simulated
// durable store (sync=never) and adds crash+restart — volatile state
// lost, durable prefix kept, epoch bumped. Each generation only appends
// die faces, so every older generation's seeds replay byte for byte
// (gens 1-3 keep the epoch-0 in-memory store, so no greeting frames and
// zero batch epochs perturb their schedules).
func runConformance(t *testing.T, seed uint64, gen int, verbose bool) error {
	return runConformanceShards(t, seed, gen, 0, verbose)
}

// runConformanceShards is runConformance with an explicit server shard
// count (0 derives it from the seed / -conformance.shards as usual).
func runConformanceShards(t *testing.T, seed uint64, gen, shards int, verbose bool) error {
	h, err := newConformance(t, seed, gen, shards, verbose)
	if err != nil {
		return err
	}
	// Release any read goroutine still parked on a severed link.
	defer func() { h.cli.Disconnect() }()

	die := 10
	if gen >= 2 {
		die = 12
	}
	if gen >= 3 {
		die = 13
	}
	if gen >= 4 {
		die = 14
	}
	nOps := 30 + h.rng.Intn(31)
	for op := 0; op < nOps; op++ {
		var err error
		switch h.rng.Intn(die) {
		case 0, 1, 2, 3:
			err = h.doRead(h.randKey())
		case 4, 5, 6:
			err = h.doWrite(h.randKey())
		case 7:
			for i, n := 0, 1+h.rng.Intn(3); i < n && err == nil; i++ {
				err = h.pumpOne()
			}
		case 8:
			n := 1 + h.rng.Intn(3)
			if h.rng.Bernoulli(0.5) {
				h.tracef("partition sc->mc for %d frames", n)
				h.s2c.Partition(n)
			} else {
				h.tracef("partition mc->sc for %d frames", n)
				h.c2s.Partition(n)
			}
		case 9:
			err = h.reconnect()
		case 10:
			err = h.doPing()
		case 11:
			err = h.reconnectWarm()
		case 12:
			err = h.doEvict()
		case 13:
			err = h.doCrashRestart()
		}
		if err != nil {
			return err
		}
		// Usually let some traffic through before the next operation.
		for h.s2c.Pending()+h.c2s.Pending() > 0 && h.rng.Bernoulli(0.6) {
			if err := h.pumpOne(); err != nil {
				return err
			}
		}
	}
	// Drain what is still in flight so the final states are comparable.
	for steps := 0; h.s2c.Pending()+h.c2s.Pending() > 0; steps++ {
		if steps > 4000 {
			h.tracef("drain budget hit; discarding %d+%d frames",
				h.s2c.Pending(), h.c2s.Pending())
			h.s2c.DiscardPending()
			h.c2s.DiscardPending()
			break
		}
		if err := h.pumpOne(); err != nil {
			return err
		}
	}
	return h.checkFinalState()
}

// TestConformanceRegressionSeeds replays the schedules on which the
// explorer first caught real protocol bugs, frozen so they stay green
// forever:
//
//   - seed 35 (SW3, drop+dup+reorder): a duplicated WriteProp slid the
//     window a second time and deallocated a copy that reads still held —
//     onWriteProp now slides only when the version advances the cache.
//   - seed 46 (SW5, dup): a duplicated allocating ReadResp re-applied the
//     handoff, rolling the window back to the piggybacked bits and
//     clobbering the cache — onReadResp now applies Allocate only while no
//     copy is held.
//   - seed 61 (SW3, dup): a WriteProp crossing the MC's in-flight
//     delete-request was swallowed silently, leaving the SC paying a data
//     message per write to an MC without a copy — onWriteProp now
//     re-asserts the deallocation.
//
// gen2RegressionSeeds pins generator-2 schedules chosen (by trace
// inspection after a 100000-schedule hunt) to cover every recovery
// corner the explorer can reach, so the warm path cannot quietly
// regress:
//
//   - seed 3: the ResyncReq is dropped once and the ResyncResp twice
//     before an attempt lands; the answer mixes a NotModified
//     revalidation with a re-shipped newer version, and a later resync
//     turns a window write-heavy and deallocates.
//   - seeds 18, 36: resync frames lost in transit force the
//     deterministic redial loop under different fault mixes.
//   - seed 33: missed writes during the blip push the window to a write
//     majority — the copy is deallocated and the DeleteReq carries the
//     window back over the resync connection.
var gen2RegressionSeeds = []uint64{3, 18, 33, 36}

// gen3RegressionSeeds pins generator-3 schedules chosen by trace
// inspection to cover every overload-eviction transition the explorer
// can reach:
//
//   - seed 2 (SW5, drop+dup+reorder, 8 shards): an eviction is repaired
//     by a warm resync, and a later back-to-back double eviction proves
//     the second is a frame-free no-op on an already-detached session.
//   - seed 5 (SW3, drop, 8 shards): writes commit against an evicted
//     session (propagating nowhere), then remote reads sever and force
//     cold reconnects, over and over.
//   - seed 17 (SW5, light drop, 8 shards): eviction under near-clean
//     delivery — the Busy ordering and the detached-session silence are
//     exercised without chaos masking a stray frame.
var gen3RegressionSeeds = []uint64{2, 5, 17}

// gen4RegressionSeeds pins generator-4 schedules chosen by trace
// inspection to cover the crash+restart transitions the explorer can
// reach:
//
//   - seed 1: crash cuts that roll acknowledged versions back under
//     sync=never, repaired without a fence — the client held nothing (or
//     only hint-0 state) across each crash, so warm recovery adopts the
//     new epoch silently and post-crash writes re-advance the store.
//   - seed 3: the fence arrives as the bare ResyncResp answer — the
//     stale-epoch declaration is refused without re-asserting
//     subscriptions, and the cold reattach follows.
//   - seed 10: back-to-back crashes; a fence delivered via the attach
//     greeting racing the resync answer; a second fence via the bare
//     ResyncResp after deferred duplicates; plus version rollback.
//   - seed 49: both fence paths again under a different fault mix, with
//     rollback and a post-fence warm reconnect in the same schedule.
var gen4RegressionSeeds = []uint64{1, 3, 10, 49}

func TestConformanceRegressionSeeds(t *testing.T) {
	// Generator-1 seeds: the original op mix.
	for _, seed := range []uint64{35, 46, 61} {
		if err := runConformance(t, seed, 1, false); err != nil {
			t.Errorf("regression seed %d (gen 1) diverged:\n%v", seed, err)
		}
	}
	// Generator-2 seeds: schedules with pings and warm reconnects that
	// exercised the recovery layer's corner cases (resync frames dropped,
	// duplicated, and reordered against live propagation).
	for _, seed := range gen2RegressionSeeds {
		if err := runConformance(t, seed, 2, false); err != nil {
			t.Errorf("regression seed %d (gen 2) diverged:\n%v", seed, err)
		}
	}
	// Generator-3 seeds: schedules that interleave overload evictions with
	// every recovery path.
	for _, seed := range gen3RegressionSeeds {
		if err := runConformance(t, seed, 3, false); err != nil {
			t.Errorf("regression seed %d (gen 3) diverged:\n%v", seed, err)
		}
	}
	// Generator-4 seeds: schedules that crash and restart the SC mid-flight.
	for _, seed := range gen4RegressionSeeds {
		if err := runConformance(t, seed, 4, false); err != nil {
			t.Errorf("regression seed %d (gen 4) diverged:\n%v", seed, err)
		}
	}
}

// TestConformanceShardRegressionSeeds replays every frozen regression
// seed — both generators — at shard counts 1, 2, and 8 explicitly, so
// the schedules that once caught real protocol bugs re-verify the server
// at every shard geometry the acceptance gate cares about, whatever the
// seed-cycling default would have picked. The op schedules are identical
// across shard counts (shard choice never consults the harness RNG), so
// any difference in verdict between counts is a sharding bug by
// construction.
func TestConformanceShardRegressionSeeds(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, seed := range []uint64{35, 46, 61} {
			if err := runConformanceShards(t, seed, 1, shards, false); err != nil {
				t.Errorf("regression seed %d (gen 1) diverged at %d shards:\n%v", seed, shards, err)
			}
		}
		for _, seed := range gen2RegressionSeeds {
			if err := runConformanceShards(t, seed, 2, shards, false); err != nil {
				t.Errorf("regression seed %d (gen 2) diverged at %d shards:\n%v", seed, shards, err)
			}
		}
		for _, seed := range gen3RegressionSeeds {
			if err := runConformanceShards(t, seed, 3, shards, false); err != nil {
				t.Errorf("regression seed %d (gen 3) diverged at %d shards:\n%v", seed, shards, err)
			}
		}
		for _, seed := range gen4RegressionSeeds {
			if err := runConformanceShards(t, seed, 4, shards, false); err != nil {
				t.Errorf("regression seed %d (gen 4) diverged at %d shards:\n%v", seed, shards, err)
			}
		}
	}
}

// TestConformanceExplorer is the schedule explorer. Run counts:
// -conformance.schedules (default 1200) seeds normally, 200 under -short;
// ci.sh -long raises it. With -conformance.seed=N it replays exactly one
// schedule verbosely instead.
func TestConformanceExplorer(t *testing.T) {
	if *confSeed != 0 {
		if err := runConformance(t, *confSeed, *confGen, true); err != nil {
			t.Fatalf("seed %d (gen %d) diverged:\n%v", *confSeed, *confGen, err)
		}
		return
	}
	n := *confSchedules
	if testing.Short() && n > 200 {
		n = 200
	}
	failed := 0
	for seed := uint64(1); seed <= uint64(n); seed++ {
		if err := runConformance(t, seed, 4, false); err != nil {
			t.Errorf("schedule seed=%d diverged:\n%v\nreplay: go test ./internal/replica -run 'TestConformanceExplorer$' -conformance.seed=%d -v",
				seed, err, seed)
			failed++
			if failed >= 3 {
				t.Fatalf("stopping after %d divergent schedules", failed)
			}
		}
	}
}
