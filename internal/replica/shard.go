package replica

// The sharded server core. A Server owns N shards (N a power of two);
// every session is routed to exactly one shard by its attach ID, and all
// protocol state the session ever accumulates — its per-key windows and
// copy bits — lives on that shard. Each shard serializes its events with
// a single-writer token (see shard.enter), so the read/write/propagation
// hot path never takes a cross-shard lock: a frame from a client touches
// only the owning shard, and a write fans out shard by shard through each
// shard's key index without ever holding two shards at once.
//
// DESIGN.md §12 documents the model; shard_test.go pins the routing
// functions and the ownership invariant.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobirep/internal/obs"
)

// maxShards bounds the automatic shard count; explicit counts may go
// higher but stay power-of-two.
const maxShards = 1024

// shard owns a disjoint subset of the server's sessions and, through
// them, all per-(session,key) protocol state. Fields below mu are
// guarded by the shard's single-writer token.
type shard struct {
	id int

	// mu is the shard's single-writer token: exactly one event — a
	// received frame, an attach/detach, a reaper scan, or a write
	// fan-out classifying this shard's subscribers — runs against the
	// shard's state at a time. Events are run to completion on the
	// submitting goroutine (enter/exit) rather than shipped to a
	// dedicated loop goroutine: same serialization guarantee, no
	// channel hop or closure allocation on the hot path, and frame
	// handling stays synchronous (which the conformance harness's
	// lock-step delivery depends on).
	mu       sync.Mutex
	sessions map[*Session]struct{}
	// index maps each key to the sessions on this shard holding
	// protocol state for it. Write fan-out walks index[key] instead of
	// every session: a session with no state for the key is a no-op in
	// every mode (see Server.propagate), so skipping it is
	// behavior-identical and turns a million-session write into a walk
	// of just the key's subscribers.
	index map[string]map[*Session]struct{}

	// fanMu serializes write fan-out through this shard so the scratch
	// slice below can be reused allocation-free. It is taken before the
	// writer token and never from inside it, and only one shard's fanMu
	// is ever held at a time.
	fanMu sync.Mutex
	fan   []fanEntry

	// depth gauges events queued or running on this shard (the writer
	// token's queue depth); occupancy gauges attached sessions.
	depth     *obs.Gauge
	occupancy *obs.Gauge

	// mem tracks the shard's accounted session-state bytes (session base
	// cost plus per-(session,key) window state; a link's queued outbox
	// bytes are sampled on top at budget checks — see Server.MemBytes).
	// memGauge mirrors it for /metrics.
	mem      atomic.Int64
	memGauge *obs.Gauge

	// Token bucket for attach-rate admission (admission.go). Guarded by
	// tbMu, never taken together with the writer token.
	tbMu     sync.Mutex
	tbTokens float64
	tbLast   time.Time
}

// fanEntry is one prepared send of a write fan-out: which session, and
// whether it gets the shared WriteProp (data) or DeleteReq (control).
type fanEntry struct {
	sess  *Session
	class sendClass
}

func newShard(id int) *shard {
	return &shard{
		id:       id,
		sessions: make(map[*Session]struct{}),
		index:    make(map[string]map[*Session]struct{}),
		depth: obsReg.Gauge(fmt.Sprintf(`mobirep_replica_shard_queue_depth{shard="%d"}`, id),
			"Events queued or running per shard (single-writer token contention)."),
		occupancy: obsReg.Gauge(fmt.Sprintf(`mobirep_replica_shard_sessions{shard="%d"}`, id),
			"Currently attached sessions per shard."),
		memGauge: obsReg.Gauge(fmt.Sprintf(`mobirep_replica_shard_mem_bytes{shard="%d"}`, id),
			"Accounted session-state bytes per shard (base cost plus window state)."),
	}
}

// addMem moves the shard's memory account by delta bytes, mirroring into
// the per-shard gauge. Safe under or outside the writer token.
func (sh *shard) addMem(delta int64) {
	sh.mem.Add(delta)
	sh.memGauge.Add(delta)
}

// allowAttach takes one token from the shard's attach bucket, refilled at
// rate tokens/sec up to burst. The first call finds a full bucket.
func (sh *shard) allowAttach(rate, burst float64, now time.Time) bool {
	sh.tbMu.Lock()
	defer sh.tbMu.Unlock()
	if sh.tbLast.IsZero() {
		sh.tbTokens = burst
	} else {
		sh.tbTokens += now.Sub(sh.tbLast).Seconds() * rate
		if sh.tbTokens > burst {
			sh.tbTokens = burst
		}
	}
	sh.tbLast = now
	if sh.tbTokens < 1 {
		return false
	}
	sh.tbTokens--
	return true
}

// enter begins one event on the shard: the caller holds the single-writer
// token until exit and may touch any state the shard owns. The depth
// gauge brackets the wait, so a contended shard shows depth > 1.
func (sh *shard) enter() {
	sh.depth.Add(1)
	sh.mu.Lock()
}

func (sh *shard) exit() {
	sh.mu.Unlock()
	sh.depth.Add(-1)
}

// subscribe records that sess holds state for key. Caller holds the
// writer token; key must already be cloned off any borrowed frame.
func (sh *shard) subscribe(key string, sess *Session) {
	subs := sh.index[key]
	if subs == nil {
		subs = make(map[*Session]struct{})
		sh.index[key] = subs
	}
	subs[sess] = struct{}{}
}

// unsubscribeAll removes sess from every key index entry it occupies.
// Caller holds the writer token.
func (sh *shard) unsubscribeAll(sess *Session) {
	for key := range sess.items {
		if subs := sh.index[key]; subs != nil {
			delete(subs, sess)
			if len(subs) == 0 {
				delete(sh.index, key)
			}
		}
	}
}

// sessionShard routes an attach ID to one of n shards (n a power of
// two). The finalizer is splitmix64's: attach IDs are sequential, so the
// low bits must be fully mixed before masking. Pure function of (id, n)
// — routing is stable across restarts by construction.
func sessionShard(id uint64, n int) int {
	x := id
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & uint64(n-1))
}

// keyShard routes a key to one of n shards (n a power of two): FNV-1a
// over the bytes, then the same splitmix64 finalizer so short keys with
// shared prefixes still spread. Pure function of (key, n).
//
// Note the ownership model deliberately does NOT place per-(session,key)
// state by keyShard: that state lives with its session (sessionShard), so
// a session and every key it holds windows for are always on one shard —
// the invariant shard_test.go exercises. keyShard exists for state keyed
// by key alone (load spreading, future per-key placement work).
func keyShard(key string, n int) int {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h & uint64(n-1))
}

// defaultShardCount is the automatic shard count: the next power of two
// at or above GOMAXPROCS, capped at maxShards.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// validShardCount reports whether n is an acceptable explicit shard
// count: a power of two between 1 and 4096.
func validShardCount(n int) bool {
	return n >= 1 && n <= 4096 && n&(n-1) == 0
}
