package replica

import (
	"errors"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/transport"
)

// memDialer returns a Dialer that attaches a fresh in-memory pair to srv,
// failing the first failures attempts.
func memDialer(srv *Server, failures int) transport.Dialer {
	return func() (transport.Link, error) {
		if failures > 0 {
			failures--
			return nil, errors.New("no coverage")
		}
		a, b := transport.NewMemPair()
		srv.Attach(a)
		return b, nil
	}
}

func fastSupervisor(cli *Client, dial transport.Dialer, mutate func(*SupervisorConfig)) *Supervisor {
	cfg := SupervisorConfig{
		BackoffMin:    time.Millisecond,
		BackoffMax:    10 * time.Millisecond,
		ResyncTimeout: time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewSupervisor(cli, dial, cfg)
}

func TestSupervisorRecoversWarmAfterLinkDeath(t *testing.T) {
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")

	sup := fastSupervisor(cli, memDialer(srv, 2), nil)
	sup.Start()
	defer sup.Stop()

	// Kill the link out from under the client and let the server notice
	// the way a close callback would.
	b.Close()
	sess.Detach()
	// The next read's send failure feeds the supervisor's suspicion.
	if _, err := cli.Read("y"); err == nil {
		t.Fatal("read on dead link succeeded")
	}

	waitFor(t, func() bool { return sup.Stats().Reconnects >= 1 && !cli.Offline() }, "supervised recovery")
	if !cli.HasCopy("x") {
		t.Fatal("warm copy lost across supervised recovery")
	}
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "x#1" {
		t.Fatalf("post-recovery read = %q", it.Value)
	}
	st := sup.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("stats: %+v, want at least one reconnect", st)
	}
	// Two dial failures were injected, so at least three attempts ran and
	// the backoff path was exercised.
	if st.DialAttempts < 3 {
		t.Fatalf("stats: %+v, want >= 3 dial attempts", st)
	}
	// Propagation works on the recovered session.
	if _, err := srv.Write("x", []byte("x#2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		it, _ := cli.Cache().Peek("x")
		return string(it.Value) == "x#2"
	}, "propagation after recovery")
}

func TestSupervisorHeartbeatDetectsSilentLink(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	// A half-open link: sends succeed, nothing ever comes back.
	blackhole, b := transport.NewMemPair()
	blackhole.SetHandler(func([]byte) {})
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	sup := fastSupervisor(cli, memDialer(srv, 0), func(cfg *SupervisorConfig) {
		cfg.HeartbeatEvery = 2 * time.Millisecond
		cfg.HeartbeatMiss = 2
	})
	sup.Start()
	defer sup.Stop()

	// No traffic, no close event: only the heartbeat can notice.
	waitFor(t, func() bool { return sup.Stats().Reconnects >= 1 }, "heartbeat-driven recovery")
	if sup.Stats().HeartbeatMisses < 2 {
		t.Fatalf("stats: %+v, want >= 2 heartbeat misses", sup.Stats())
	}
	waitFor(t, func() bool { return !cli.Offline() }, "client online")
	if _, err := srv.Write("x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read("x"); err != nil {
		t.Fatalf("read after heartbeat recovery: %v", err)
	}
}

func TestSupervisorColdModeRestartsFresh(t *testing.T) {
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")

	sup := fastSupervisor(cli, memDialer(srv, 0), func(cfg *SupervisorConfig) {
		cfg.Cold = true
	})
	sup.Start()
	defer sup.Stop()

	b.Close()
	sess.Detach()
	sup.Suspect()
	waitFor(t, func() bool { return sup.Stats().Reconnects >= 1 && !cli.Offline() }, "cold recovery")
	if cli.HasCopy("x") {
		t.Fatal("cold recovery kept a copy; it must restart from the one-copy scheme")
	}
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
}

func TestSupervisorRetriesWhenResyncAnswerLost(t *testing.T) {
	// The first redial lands on a link whose server half swallows
	// everything, so the resync answer never arrives; the attempt must
	// time out and the next dial must succeed.
	srv, err := NewServer(db.NewStore(), SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	sess := srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	allocate(t, cli, srv, "x")

	first := true
	dial := func() (transport.Link, error) {
		if first {
			first = false
			dead, mc := transport.NewMemPair()
			dead.SetHandler(func([]byte) {})
			return mc, nil
		}
		return memDialer(srv, 0)()
	}
	sup := fastSupervisor(cli, dial, func(cfg *SupervisorConfig) {
		cfg.ResyncTimeout = 10 * time.Millisecond
	})
	sup.Start()
	defer sup.Stop()

	b.Close()
	sess.Detach()
	sup.Suspect()
	waitFor(t, func() bool { return sup.Stats().Reconnects >= 1 && !cli.Offline() }, "recovery after lost resync answer")
	if st := sup.Stats(); st.DialAttempts < 2 {
		t.Fatalf("stats: %+v, want >= 2 dial attempts", st)
	}
	if !cli.HasCopy("x") {
		t.Fatal("warm copy lost across retried resync")
	}
}
