package replica

import (
	"bytes"
	"fmt"
	"testing"

	"mobirep/internal/db"
	"mobirep/internal/transport"
)

func TestRevalidationAfterDeallocation(t *testing.T) {
	cli, srv, serverMeter := pair(t, SW(1))
	payload := bytes.Repeat([]byte{0xab}, 1000)
	srv.Write("x", payload)
	cli.Read("x") // allocates under SW1
	srv.Write("x", payload)
	// SW1: the write deallocated via delete-request; the dropped value
	// moved to the archive but is STALE (version advanced to 2).
	if cli.HasCopy("x") {
		t.Fatal("setup: copy should be gone")
	}

	// First batch read after the drop: hint version 1, server at 2 ->
	// full payload travels.
	before := serverMeter.Snapshot()
	items, err := cli.ReadMany([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Version != 2 || !bytes.Equal(items[0].Value, payload) {
		t.Fatalf("stale hint served wrong item: v%d", items[0].Version)
	}
	bigResp := serverMeter.Snapshot().Bytes - before.Bytes
	if bigResp < 1000 {
		t.Fatalf("modified response only %d bytes", bigResp)
	}

	// The read allocated (SW1, last op read). Drop it again with a write
	// of the SAME version... not possible; instead force another dealloc
	// and re-read without intervening writes: hint matches, payload
	// omitted.
	srv.Write("x", payload) // version 3; deallocates (SW1)
	if cli.HasCopy("x") {
		t.Fatal("copy should be dropped")
	}
	// Re-read: archive has version... the delete-request dropped v2 into
	// the archive, but the server is at 3 -> full payload again, version 3
	// cached... After that, deallocate once more and revalidate for real.
	cli.ReadMany([]string{"x"})
	srv.Write("x", payload) // version 4; dealloc, archive holds v... 3? No: v3 was dropped.
	cli.ReadMany([]string{"x"})
	// Now cached v4. Deallocate WITHOUT changing the value version by
	// using a read-triggered... SW1 cannot dealloc without a write. Use
	// Disconnect to archive v4, then reattach: version still 4 at the
	// server.
	cli.Disconnect()
	a2, b2 := transport.NewMemPair()
	newMeter := srv.Attach(a2).Meter()
	cli.Reattach(b2)

	before = newMeter.Snapshot()
	items, err = cli.ReadMany([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Version != 4 || !bytes.Equal(items[0].Value, payload) {
		t.Fatalf("revalidated item wrong: v%d len %d", items[0].Version, len(items[0].Value))
	}
	smallResp := newMeter.Snapshot().Bytes - before.Bytes
	if smallResp >= 1000 {
		t.Fatalf("not-modified response carried %d bytes; payload not omitted", smallResp)
	}
	if cli.Cache().Stats().Revalidations == 0 {
		t.Fatal("revalidation not recorded")
	}
}

func TestRevalidationAfterReconnectBulk(t *testing.T) {
	// A watch list of 20 keys, 1 KB each; 3 change while the client is
	// away. The post-reconnect refresh must transfer roughly 3 payloads,
	// not 20.
	const keys, changed, size = 20, 3, 1024
	store := db.NewStore()
	srv, err := NewServer(store, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := transport.NewMemPair()
	srv.Attach(a)
	cli, err := NewClient(b, SW(3))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, keys)
	payload := bytes.Repeat([]byte{1}, size)
	for i := range names {
		names[i] = fmt.Sprintf("k%d", i)
		srv.Write(names[i], payload)
	}
	// Cache everything (two batch reads give every window a majority).
	cli.ReadMany(names)
	cli.ReadMany(names)
	for _, k := range names {
		if !cli.HasCopy(k) {
			t.Fatalf("setup: %s not cached", k)
		}
	}

	cli.Disconnect()
	for i := 0; i < changed; i++ {
		srv.Write(names[i], bytes.Repeat([]byte{2}, size))
	}

	a2, b2 := transport.NewMemPair()
	meter := srv.Attach(a2).Meter()
	cli.Reattach(b2)
	before := meter.Snapshot()
	items, err := cli.ReadMany(names)
	if err != nil {
		t.Fatal(err)
	}
	respBytes := meter.Snapshot().Bytes - before.Bytes
	// Expect ~changed payloads plus per-entry overhead, far below
	// keys*size.
	if respBytes > changed*size+keys*64 {
		t.Fatalf("refresh transferred %d bytes; expected ~%d", respBytes, changed*size)
	}
	for i, it := range items {
		want := byte(1)
		if i < changed {
			want = 2
		}
		if len(it.Value) != size || it.Value[0] != want {
			t.Fatalf("item %d wrong after refresh: len %d first %d", i, len(it.Value), it.Value[0])
		}
	}
	if got := cli.Cache().Stats().Revalidations; got != keys-changed {
		t.Fatalf("revalidations = %d, want %d", got, keys-changed)
	}
}

func TestRevalidationNeverServesStale(t *testing.T) {
	// The crucial safety property: archived values are served only when
	// the server confirms the version.
	cli, srv, _ := pair(t, SW(1))
	srv.Write("x", []byte("old"))
	cli.Read("x")                 // cache "old" v1
	srv.Write("x", []byte("new")) // v2, deallocates; archive holds v1 "old"
	items, err := cli.ReadMany([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if string(items[0].Value) != "new" {
		t.Fatalf("served %q, must serve the new version", items[0].Value)
	}
}
