package analytic

import (
	"math"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
)

// TestGameRederivesTheorem4 mechanically recovers the k+1 factor of the
// connection model.
func TestGameRederivesTheorem4(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{1, 3, 5, 7} {
		got, err := CompetitiveRatio(core.NewSW(k), model, 32, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k + 1)
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("k=%d: game ratio %v, Theorem 4 says %v", k, got, want)
		}
	}
}

// TestGameRederivesTheorem11 recovers SW1's 1+2*omega factor.
func TestGameRederivesTheorem11(t *testing.T) {
	for _, omega := range []float64{0, 0.25, 0.5, 1} {
		got, err := CompetitiveRatio(core.NewSW(1), cost.NewMessage(omega), 16, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		want := CompetitiveSW1Msg(omega)
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("omega=%v: game ratio %v, Theorem 11 says %v", omega, got, want)
		}
	}
}

// TestGameRederivesTheorem12 recovers (1+omega/2)(k+1)+omega.
func TestGameRederivesTheorem12(t *testing.T) {
	for _, k := range []int{3, 5} {
		for _, omega := range []float64{0.25, 0.5, 1} {
			got, err := CompetitiveRatio(core.NewSW(k), cost.NewMessage(omega), 32, 1e-7)
			if err != nil {
				t.Fatal(err)
			}
			want := CompetitiveSWMsg(k, omega)
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("k=%d omega=%v: game ratio %v, Theorem 12 says %v", k, omega, got, want)
			}
		}
	}
}

// TestGameRederivesTFamily recovers the section 7.1 m+1 factors.
func TestGameRederivesTFamily(t *testing.T) {
	model := cost.NewConnection()
	for _, m := range []int{1, 2, 4, 8} {
		got, err := CompetitiveRatio(core.NewT1(m), model, 32, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(m+1)) > 1e-5 {
			t.Fatalf("T1(%d): game ratio %v, want %v", m, got, m+1)
		}
		got, err = CompetitiveRatio(core.NewT2(m), model, 32, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(m+1)) > 1e-5 {
			t.Fatalf("T2(%d): game ratio %v, want %v", m, got, m+1)
		}
	}
}

// TestGameStaticsNotCompetitive: the statics must come back +Inf.
func TestGameStaticsNotCompetitive(t *testing.T) {
	model := cost.NewConnection()
	for _, p := range []core.Enumerable{core.NewST1(), core.NewST2()} {
		got, err := CompetitiveRatio(p, model, 64, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(got, 1) {
			t.Fatalf("%s: ratio %v, want +Inf", p.Name(), got)
		}
	}
}

// TestGameCacheInvalidateEqualsSW1 again via the worst case.
func TestGameCacheInvalidateEqualsSW1(t *testing.T) {
	m := cost.NewMessage(0.5)
	a, err := CompetitiveRatio(core.NewCacheInvalidate(), m, 16, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompetitiveRatio(core.NewSW(1), m, 16, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-5 {
		t.Fatalf("cache-invalidate %v vs SW1 %v", a, b)
	}
}

// TestGameEvenWindowNewResult pins the tie-holding even window's exact
// factor, a number the paper never derives: k+2, identical to SW(k+1)'s.
// Combined with the E16 expected-cost comparison this means SWe(k)
// weakly dominates SW(k+1).
func TestGameEvenWindowNewResult(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{2, 4, 6} {
		got, err := CompetitiveRatio(core.NewEvenSW(k), model, 32, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(k+2)) > 1e-5 {
			t.Fatalf("SWe%d: ratio %v, want %d", k, got, k+2)
		}
	}
}

// TestVerifyCompetitive checks both directions of the bound test.
func TestVerifyCompetitive(t *testing.T) {
	model := cost.NewConnection()
	ok, err := VerifyCompetitive(core.NewSW(3), model, 4)
	if err != nil || !ok {
		t.Fatalf("SW3 at c=4: ok=%v err=%v", ok, err)
	}
	ok, err = VerifyCompetitive(core.NewSW(3), model, 3.9)
	if err != nil || ok {
		t.Fatalf("SW3 at c=3.9 should fail: ok=%v err=%v", ok, err)
	}
}

// TestWorstCycleSign: positive below the factor, non-positive above.
func TestWorstCycleSign(t *testing.T) {
	model := cost.NewConnection()
	below, err := WorstCycle(core.NewSW(3), model, 3)
	if err != nil || below <= 0 {
		t.Fatalf("mean at c=3: %v err=%v", below, err)
	}
	above, err := WorstCycle(core.NewSW(3), model, 5)
	if err != nil || above > 1e-12 {
		t.Fatalf("mean at c=5: %v err=%v", above, err)
	}
}
