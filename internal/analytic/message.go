package analytic

import (
	"math"

	"mobirep/internal/stats"
)

// Message-model results (section 6). Costs are in data-message units; a
// control message costs omega in [0, 1].

// ExpST1Msg returns EXP_ST1(theta) = (1+omega)(1-theta) (equation 7):
// every read is remote and needs a control request plus a data response.
func ExpST1Msg(theta, omega float64) float64 {
	checkTheta(theta)
	checkOmega(omega)
	return (1 + omega) * (1 - theta)
}

// ExpST2Msg returns EXP_ST2(theta) = theta (equation 7): every write is
// one propagated data message.
func ExpST2Msg(theta float64) float64 {
	checkTheta(theta)
	return theta
}

// ExpSW1Msg returns EXP_SW1(theta) = theta(1-theta)(1+2*omega) of
// Theorem 5. Under SW1 the MC holds a copy exactly when the previous
// request was a read, so cost is incurred only at read/write alternations:
// a write after a read sends a delete-request (omega) and a read after a
// write is a remote read (1+omega).
func ExpSW1Msg(theta, omega float64) float64 {
	checkTheta(theta)
	checkOmega(omega)
	return theta * (1 - theta) * (1 + 2*omega)
}

// ExpSWMsg returns EXP_SWk(theta) of Theorem 8 (equation 11) for odd k:
//
//	pi_k*theta + (1-pi_k)(1-theta)(1+omega) +
//	    omega * C(2n, n) * theta^(n+1) * (1-theta)^(n+1)
//
// with k = 2n+1. The first term is write propagation while a copy exists,
// the second is remote reads while it does not, and the third prices the
// delete-request sent at each deallocation: a deallocation happens exactly
// when the newest 2n window slots hold n writes, the slot about to expire
// is a read, and the arriving request is a write. Equation 11 is partially
// illegible in the surviving scan; this form was reconstructed from that
// event analysis and verified by integrating to equation 12 exactly.
// For k = 1 it returns ExpSW1Msg, the paper's optimized special case.
func ExpSWMsg(k int, theta, omega float64) float64 {
	checkOddK(k)
	checkTheta(theta)
	checkOmega(omega)
	if k == 1 {
		return ExpSW1Msg(theta, omega)
	}
	n := (k - 1) / 2
	pk := PiK(k, theta)
	dealloc := stats.Binomial(2*n, n) *
		math.Pow(theta, float64(n+1)) * math.Pow(1-theta, float64(n+1))
	return pk*theta + (1-pk)*(1-theta)*(1+omega) + omega*dealloc
}

// AvgST1Msg returns AVG_ST1 = (1+omega)/2 (equation 8).
func AvgST1Msg(omega float64) float64 {
	checkOmega(omega)
	return (1 + omega) / 2
}

// AvgST2Msg is AVG_ST2 = 1/2 (equation 8).
const AvgST2Msg = 0.5

// AvgSW1Msg returns AVG_SW1 = (1+2*omega)/6 of Theorem 7 (equation 10).
func AvgSW1Msg(omega float64) float64 {
	checkOmega(omega)
	return (1 + 2*omega) / 6
}

// AvgSWMsg returns AVG_SWk of Theorem 10 (equation 12) for odd k > 1:
//
//	1/4 + 1/(4(k+2)) + omega*[1/8 + 3/(8(k+2)) + 1/(4k(k+2))]
//
// For k = 1 it returns AvgSW1Msg.
func AvgSWMsg(k int, omega float64) float64 {
	checkOddK(k)
	checkOmega(omega)
	if k == 1 {
		return AvgSW1Msg(omega)
	}
	fk := float64(k)
	return 0.25 + 1/(4*(fk+2)) +
		omega*(0.125+3/(8*(fk+2))+1/(4*fk*(fk+2)))
}

// AvgSWMsgLowerBound returns the Corollary 2 infimum of AVG_SWk over k:
// 1/4 + omega/8.
func AvgSWMsgLowerBound(omega float64) float64 {
	checkOmega(omega)
	return 0.25 + omega/8
}

// CompetitiveSW1Msg returns SW1's tight competitiveness factor 1+2*omega
// in the message model (Theorem 11).
func CompetitiveSW1Msg(omega float64) float64 {
	checkOmega(omega)
	return 1 + 2*omega
}

// CompetitiveSWMsg returns SWk's tight competitiveness factor
// (1+omega/2)(k+1) + omega for odd k > 1 in the message model
// (Theorem 12). For k = 1 it returns CompetitiveSW1Msg.
func CompetitiveSWMsg(k int, omega float64) float64 {
	checkOddK(k)
	checkOmega(omega)
	if k == 1 {
		return CompetitiveSW1Msg(omega)
	}
	return (1+omega/2)*float64(k+1) + omega
}
