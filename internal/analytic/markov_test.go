package analytic

import (
	"math"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// TestMarkovMatchesWindowOracle cross-validates the two independent exact
// methods: the product-law window enumeration and the generic chain.
func TestMarkovMatchesWindowOracle(t *testing.T) {
	for _, k := range []int{1, 3, 5, 9} {
		for _, omega := range []float64{0, 0.5, 1} {
			model := cost.NewMessage(omega)
			for _, theta := range []float64{0.1, 0.4, 0.5, 0.6, 0.9} {
				got, err := MarkovExpected(core.NewSW(k), theta, model)
				if err != nil {
					t.Fatal(err)
				}
				want := ExactSWExpected(k, theta, model)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("k=%d omega=%v theta=%v: markov %v vs window oracle %v",
						k, omega, theta, got, want)
				}
			}
		}
	}
}

// TestMarkovMatchesFormulas validates the chain against the paper's
// closed forms directly.
func TestMarkovMatchesFormulas(t *testing.T) {
	conn := cost.NewConnection()
	for _, theta := range []float64{0.2, 0.5, 0.8} {
		if got, _ := MarkovExpected(core.NewST1(), theta, conn); math.Abs(got-ExpST1Conn(theta)) > 1e-12 {
			t.Fatalf("ST1 theta=%v: %v", theta, got)
		}
		if got, _ := MarkovExpected(core.NewST2(), theta, conn); math.Abs(got-ExpST2Conn(theta)) > 1e-12 {
			t.Fatalf("ST2 theta=%v: %v", theta, got)
		}
		if got, _ := MarkovExpected(core.NewSW(7), theta, conn); math.Abs(got-ExpSWConn(7, theta)) > 1e-9 {
			t.Fatalf("SW7 theta=%v: %v", theta, got)
		}
		if got, _ := MarkovExpected(core.NewT1(5), theta, conn); math.Abs(got-ExpT1Conn(5, theta)) > 1e-9 {
			t.Fatalf("T1 theta=%v: %v", theta, got)
		}
		if got, _ := MarkovExpected(core.NewT2(5), theta, conn); math.Abs(got-ExpT2Conn(5, theta)) > 1e-9 {
			t.Fatalf("T2 theta=%v: %v", theta, got)
		}
	}
}

// TestMarkovTFamilyMessageModel pins the T oracles in the message model,
// where the paper gives no closed form: the chain and the hand-derived
// stationary law must agree.
func TestMarkovTFamilyMessageModel(t *testing.T) {
	model := cost.NewMessage(0.6)
	for _, m := range []int{1, 3, 8} {
		for _, theta := range []float64{0.25, 0.5, 0.75} {
			got, err := MarkovExpected(core.NewT1(m), theta, model)
			if err != nil {
				t.Fatal(err)
			}
			want := ExactT1Expected(m, theta, model)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("T1(%d) theta=%v: markov %v vs oracle %v", m, theta, got, want)
			}
			got, err = MarkovExpected(core.NewT2(m), theta, model)
			if err != nil {
				t.Fatal(err)
			}
			want = ExactT2Expected(m, theta, model)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("T2(%d) theta=%v: markov %v vs oracle %v", m, theta, got, want)
			}
		}
	}
}

// TestCacheInvalidateEqualsSW1 demonstrates the section 8.2 observation:
// callback-invalidation caching IS SW1 in allocation and cost terms.
func TestCacheInvalidateEqualsSW1(t *testing.T) {
	for _, omega := range []float64{0, 0.4, 1} {
		model := cost.NewMessage(omega)
		for _, theta := range []float64{0.2, 0.5, 0.8} {
			ci, err := MarkovExpected(core.NewCacheInvalidate(), theta, model)
			if err != nil {
				t.Fatal(err)
			}
			sw1 := ExpSW1Msg(theta, omega)
			if math.Abs(ci-sw1) > 1e-12 {
				t.Fatalf("theta=%v omega=%v: cache-invalidate %v vs SW1 %v", theta, omega, ci, sw1)
			}
		}
	}
}

// TestEvenSWBracketedByOddNeighbors: the tie-holding even window's exact
// cost sits near its odd neighbors, and its state space doubles (the tie
// makes allocation path-dependent).
func TestEvenSWBracketedByOddNeighbors(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{2, 4, 8} {
		for _, theta := range []float64{0.3, 0.5, 0.7} {
			even, err := MarkovExpected(core.NewEvenSW(k), theta, model)
			if err != nil {
				t.Fatal(err)
			}
			lo := ExpSWConn(k-1, theta)
			hi := ExpSWConn(k+1, theta)
			min, max := math.Min(lo, hi), math.Max(lo, hi)
			if even < min-0.05 || even > max+0.05 {
				t.Fatalf("k=%d theta=%v: even %v outside [%v, %v]±0.05", k, theta, even, min, max)
			}
		}
	}
}

func TestChainStatesCount(t *testing.T) {
	c, err := BuildChain(core.NewSW(5), 0.5, cost.NewConnection(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.States() != 32 {
		t.Fatalf("SW5 reachable states = %d, want 2^5", c.States())
	}
	c, err = BuildChain(core.NewT1(4), 0.5, cost.NewConnection(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.States() != 5 {
		t.Fatalf("T1(4) reachable states = %d, want m+1", c.States())
	}
}

func TestChainMaxStatesEnforced(t *testing.T) {
	if _, err := BuildChain(core.NewSW(9), 0.5, cost.NewConnection(), 100); err == nil {
		t.Fatal("expected state-limit error")
	}
}

// TestTransientConvergesToSteady: the per-step expected cost from a cold
// start approaches the steady-state value, and the initial window only
// affects a vanishing prefix (the paper's implicit warmup claim).
func TestTransientConvergesToSteady(t *testing.T) {
	model := cost.NewConnection()
	theta := 0.3
	c, err := BuildChain(core.NewSW(9), theta, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	steady := c.SteadyCost()
	trans := c.TransientCosts(300)
	if len(trans) != 300 {
		t.Fatalf("len = %d", len(trans))
	}
	// Early steps differ (write-filled window, cheap writes at low theta
	// are rare, reads are all remote at first)...
	if math.Abs(trans[0]-steady) < 1e-6 {
		t.Fatal("cold start unexpectedly already at steady state")
	}
	// ... but by step 300 the difference is negligible.
	if d := math.Abs(trans[299] - steady); d > 1e-6 {
		t.Fatalf("still %v from steady state after 300 steps", d)
	}
	// And the read-filled start converges to the same steady value: the
	// initial window does not matter in the long run.
	c2, err := BuildChain(core.NewSWInitial(9, sched.Read), theta, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(c2.SteadyCost() - steady); d > 1e-9 {
		t.Fatalf("initial window changed the steady state by %v", d)
	}
}

// TestSteadyMomentsMatchSimulation: exact per-request mean and variance
// versus empirical moments over a long run.
func TestSteadyMomentsMatchSimulation(t *testing.T) {
	model := cost.NewMessage(0.5)
	theta := 0.4
	c, err := BuildChain(core.NewSW(5), theta, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := c.SteadyMoments()
	if d := math.Abs(mean - c.SteadyCost()); d > 1e-12 {
		t.Fatalf("moment mean %v vs SteadyCost %v", mean, c.SteadyCost())
	}

	// Empirical: replay a long Bernoulli stream and accumulate per-step
	// cost moments after warmup.
	p := core.NewSW(5)
	rng := stats.NewRNG(71)
	var m1, m2 float64
	const warm, n = 5000, 400000
	for i := 0; i < warm+n; i++ {
		op := sched.Read
		if rng.Bernoulli(theta) {
			op = sched.Write
		}
		stepCost := model.StepCost(p.Apply(op))
		if i < warm {
			continue
		}
		m1 += stepCost
		m2 += stepCost * stepCost
	}
	m1 /= n
	m2 /= n
	empVar := m2 - m1*m1
	if math.Abs(m1-mean) > 0.01 {
		t.Fatalf("empirical mean %v vs exact %v", m1, mean)
	}
	if math.Abs(empVar-variance) > 0.02 {
		t.Fatalf("empirical variance %v vs exact %v", empVar, variance)
	}
}

// TestSteadyMomentsDegenerate: a free policy has zero variance.
func TestSteadyMomentsDegenerate(t *testing.T) {
	// ST1 at theta=1: all writes, never a copy, zero cost always.
	c, err := BuildChain(core.NewST1(), 1, cost.NewConnection(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := c.SteadyMoments()
	if mean != 0 || variance != 0 {
		t.Fatalf("moments = %v, %v", mean, variance)
	}
}

// TestMarkovAverageMatchesClosedForms validates the generic AVG oracle
// against equations 6 and 12.
func TestMarkovAverageMatchesClosedForms(t *testing.T) {
	for _, k := range []int{1, 3, 7} {
		got, err := MarkovAverage(core.NewSW(k), cost.NewConnection(), 100)
		if err != nil {
			t.Fatal(err)
		}
		if want := AvgSWConn(k); math.Abs(got-want) > 1e-6 {
			t.Fatalf("conn k=%d: %v vs %v", k, got, want)
		}
		got, err = MarkovAverage(core.NewSW(k), cost.NewMessage(0.5), 100)
		if err != nil {
			t.Fatal(err)
		}
		if want := AvgSWMsg(k, 0.5); math.Abs(got-want) > 1e-6 {
			t.Fatalf("msg k=%d: %v vs %v", k, got, want)
		}
	}
	got, err := MarkovAverage(core.NewT1(5), cost.NewConnection(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := AvgT1Conn(5); math.Abs(got-want) > 1e-6 {
		t.Fatalf("T1: %v vs %v", got, want)
	}
}

// TestMarkovAverageNewNumbers pins AVG values with no closed form: the
// T family in the message model and the tie-holding even window.
func TestMarkovAverageNewNumbers(t *testing.T) {
	t1, err := MarkovAverage(core.NewT1(5), cost.NewMessage(0.5), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity bounds: below ST1's (1+w)/2 = 0.75, above the SW bound 1/4+w/8.
	if t1 <= AvgSWMsgLowerBound(0.5) || t1 >= AvgST1Msg(0.5) {
		t.Fatalf("T1(5) message AVG %v out of sane range", t1)
	}
	even, err := MarkovAverage(core.NewEvenSW(4), cost.NewConnection(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// E16/E20: SWe4 beats SW5 pointwise, so its AVG must be below SW5's.
	if even >= AvgSWConn(5) {
		t.Fatalf("SWe4 AVG %v not below SW5's %v", even, AvgSWConn(5))
	}
	if even <= OptimumAvgConn {
		t.Fatalf("SWe4 AVG %v below the optimum", even)
	}
}
