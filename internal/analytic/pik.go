// Package analytic implements every closed-form result of the paper: the
// steady-state copy probability pi_k (eq. 4), expected cost per request
// for all algorithms in both cost models (eqs. 2, 5, 7, 9, 11), average
// expected cost (eqs. 3, 6, 8, 10, 12), the dominance regions of Theorem 6
// (Figure 1), the SW1-vs-SWk thresholds of Corollaries 3 and 4 (Figure 2),
// the competitiveness factors of Theorems 4, 11 and 12, and the section
// 7.1 formulas for T1m and T2m.
//
// The package also provides exact finite-state oracles that compute the
// same quantities directly from the policy state machines and a cost
// model, with no reference to the paper's formulas. Tests use the oracles
// to validate the formulas (including equation 11, which is degraded in
// the available scan and was reconstructed by integration against
// equation 12), and the simulator is validated against both.
//
// Throughout, theta is the probability that the next relevant request is a
// write (theta = lambda_w / (lambda_w + lambda_r)), and omega is the ratio
// of control-message cost to data-message cost.
package analytic

import "mobirep/internal/stats"

// PiK returns pi_k of equation 4: the steady-state probability that the
// mobile computer holds a copy under SWk, i.e. the probability that writes
// are a minority (at most n = (k-1)/2) of the last k = 2n+1 requests when
// each request is independently a write with probability theta.
func PiK(k int, theta float64) float64 {
	checkOddK(k)
	n := (k - 1) / 2
	return stats.BinomialCDF(k, n, theta)
}

func checkOddK(k int) {
	if k <= 0 || k%2 == 0 {
		panic("analytic: window size must be odd and positive")
	}
}

func checkTheta(theta float64) {
	if theta < 0 || theta > 1 {
		panic("analytic: theta outside [0,1]")
	}
}

func checkOmega(omega float64) {
	if omega < 0 || omega > 1 {
		panic("analytic: omega outside [0,1]")
	}
}
