package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"mobirep/internal/stats"
)

var testKs = []int{1, 3, 5, 7, 9, 15, 21, 39, 95}

func TestPiKEdges(t *testing.T) {
	for _, k := range testKs {
		if got := PiK(k, 0); got != 1 {
			t.Errorf("PiK(%d, 0) = %v, want 1", k, got)
		}
		if got := PiK(k, 1); got != 0 {
			t.Errorf("PiK(%d, 1) = %v, want 0", k, got)
		}
		if got := PiK(k, 0.5); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("PiK(%d, 0.5) = %v, want 0.5", k, got)
		}
	}
}

func TestPiKSymmetry(t *testing.T) {
	// With odd k, reads majority at theta equals writes majority at
	// 1-theta: pi_k(theta) = 1 - pi_k(1-theta).
	check := func(rawK uint8, rawTheta uint16) bool {
		k := 2*(int(rawK)%20) + 1
		theta := float64(rawTheta) / math.MaxUint16
		lhs := PiK(k, theta)
		rhs := 1 - PiK(k, 1-theta)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPiKExplicitSmall(t *testing.T) {
	// k = 1: copy iff the single request is a read.
	if got := PiK(1, 0.3); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("PiK(1, 0.3) = %v, want 0.7", got)
	}
	// k = 3, theta = 0.4: P[Bin(3,0.4) <= 1] = 0.6^3 + 3*0.4*0.36 = 0.648.
	if got := PiK(3, 0.4); math.Abs(got-0.648) > 1e-12 {
		t.Fatalf("PiK(3, 0.4) = %v, want 0.648", got)
	}
}

func TestPiKMonotoneInTheta(t *testing.T) {
	// More writes make a copy less likely.
	for _, k := range testKs {
		prev := math.Inf(1)
		for theta := 0.0; theta <= 1.0001; theta += 0.05 {
			th := math.Min(theta, 1)
			p := PiK(k, th)
			if p > prev+1e-12 {
				t.Fatalf("PiK(%d, ·) not non-increasing at theta=%v", k, th)
			}
			prev = p
		}
	}
}

func TestPiKSharpensWithK(t *testing.T) {
	// For theta < 1/2, pi_k increases toward 1 with k; for theta > 1/2 it
	// decreases toward 0 (law of large numbers on the window).
	for _, theta := range []float64{0.2, 0.35} {
		prev := 0.0
		for _, k := range []int{1, 3, 9, 21, 95} {
			p := PiK(k, theta)
			if p < prev {
				t.Fatalf("PiK(·, %v) not increasing at k=%d", theta, k)
			}
			prev = p
		}
	}
	for _, theta := range []float64{0.65, 0.8} {
		prev := 1.0
		for _, k := range []int{1, 3, 9, 21, 95} {
			p := PiK(k, theta)
			if p > prev {
				t.Fatalf("PiK(·, %v) not decreasing at k=%d", theta, k)
			}
			prev = p
		}
	}
}

func TestPiKLargeKNoOverflow(t *testing.T) {
	got := PiK(301, 0.49)
	if math.IsNaN(got) || got < 0.5 || got > 1 {
		t.Fatalf("PiK(301, 0.49) = %v", got)
	}
}

func TestPiKMatchesSimulation(t *testing.T) {
	r := stats.NewRNG(101)
	k, theta := 7, 0.35
	n := (k - 1) / 2
	hits := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		writes := 0
		for j := 0; j < k; j++ {
			if r.Bernoulli(theta) {
				writes++
			}
		}
		if writes <= n {
			hits++
		}
	}
	emp := float64(hits) / trials
	if want := PiK(k, theta); math.Abs(emp-want) > 0.01 {
		t.Fatalf("empirical %v vs formula %v", emp, want)
	}
}

func TestGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("even k", func() { PiK(4, 0.5) })
	mustPanic("zero k", func() { PiK(0, 0.5) })
	mustPanic("theta > 1", func() { ExpST1Conn(1.5) })
	mustPanic("theta < 0", func() { ExpST2Conn(-0.5) })
	mustPanic("omega > 1", func() { ExpST1Msg(0.5, 1.5) })
	mustPanic("K0 omega", func() { K0(2) })
	mustPanic("OmegaStar k=1", func() { OmegaStar(1) })
	mustPanic("T1 m=0", func() { ExpT1Conn(0, 0.5) })
	mustPanic("T2 m=0", func() { ExpT2Conn(0, 0.5) })
	mustPanic("AvgT1 m=0", func() { AvgT1Conn(0) })
	mustPanic("CompT1 m=0", func() { CompetitiveT1Conn(0) })
}
