package analytic

import "math"

// SW1-versus-SWk threshold results (Corollaries 3 and 4, Figure 2): for
// omega <= 0.4 the optimized SW1 has the best average expected cost among
// all window sizes; for omega > 0.4 larger windows eventually win, with
// the break-even window size k0 shrinking as omega grows.

// OmegaBreakEven is the Corollary 3 constant 0.4: at or below it, no
// window size beats SW1 on average expected cost.
const OmegaBreakEven = 0.4

// K0 returns the Corollary 4 threshold
//
//	k0(omega) = (10 - omega + sqrt(100 - 68*omega + 121*omega^2)) /
//	            (2*(5*omega - 2))
//
// such that AVG_SWk <= AVG_SW1 exactly for k >= k0(omega). For
// omega <= 0.4 it returns +Inf (Corollary 3: SW1 is always better).
func K0(omega float64) float64 {
	checkOmega(omega)
	if omega <= OmegaBreakEven {
		return math.Inf(1)
	}
	disc := 100 - 68*omega + 121*omega*omega
	return (10 - omega + math.Sqrt(disc)) / (2 * (5*omega - 2))
}

// MinOddKBeatingSW1 returns the smallest odd window size k > 1 with
// AVG_SWk <= AVG_SW1 at the given omega, or 0 if none exists
// (omega <= 0.4). The paper's worked examples: omega = 0.45 gives 39 and
// omega = 0.8 gives 7.
func MinOddKBeatingSW1(omega float64) int {
	k0 := K0(omega)
	if math.IsInf(k0, 1) {
		return 0
	}
	k := int(math.Ceil(k0))
	if k < 3 {
		k = 3
	}
	if k%2 == 0 {
		k++
	}
	return k
}

// OmegaStar returns the inverse threshold: the smallest omega at which
// AVG_SWk <= AVG_SW1 for a given odd k > 1,
//
//	omega*(k) = 2k(k+5) / ((5k+6)(k-1)),
//
// obtained by solving AVG_SWk = AVG_SW1 (equations 10 and 12) for omega.
// This is the curve plotted in the unnumbered figure of section 6.3
// ("Figure 2"). As k grows it decreases toward 0.4, Corollary 3's
// constant.
func OmegaStar(k int) float64 {
	checkOddK(k)
	if k == 1 {
		panic("analytic: OmegaStar requires k > 1")
	}
	fk := float64(k)
	return 2 * fk * (fk + 5) / ((5*fk + 6) * (fk - 1))
}
