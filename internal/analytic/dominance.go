package analytic

import "math"

// Dominance regions of Theorem 6 / Figure 1: for a known fixed theta, one
// of ST1, ST2, SW1 has the lowest expected cost in the message model,
// determined by where theta falls relative to two omega-dependent
// boundaries.

// Algorithm identifies one of the paper's allocation methods in reports
// and dominance maps.
type Algorithm int

const (
	// AlgST1 is the static one-copy method.
	AlgST1 Algorithm = iota
	// AlgST2 is the static two-copies method.
	AlgST2
	// AlgSW1 is the optimized sliding window of size one.
	AlgSW1
	// AlgSWk is a sliding window of size greater than one.
	AlgSWk
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgST1:
		return "ST1"
	case AlgST2:
		return "ST2"
	case AlgSW1:
		return "SW1"
	case AlgSWk:
		return "SWk"
	default:
		return "unknown"
	}
}

// ThetaUpperST1 returns the Theorem 6 boundary (1+omega)/(1+2*omega):
// for theta above it, ST1 has the lowest expected cost.
func ThetaUpperST1(omega float64) float64 {
	checkOmega(omega)
	return (1 + omega) / (1 + 2*omega)
}

// ThetaLowerST2 returns the Theorem 6 boundary 2*omega/(1+2*omega): for
// theta below it, ST2 has the lowest expected cost.
func ThetaLowerST2(omega float64) float64 {
	checkOmega(omega)
	return 2 * omega / (1 + 2*omega)
}

// BestExpectedMsg classifies (theta, omega) per Theorem 6: the algorithm
// among ST1, ST2 and SW1 with the lowest expected cost in the message
// model. Points exactly on a boundary are ties; they are resolved toward
// SW1, matching the paper's weak inequalities.
func BestExpectedMsg(theta, omega float64) Algorithm {
	checkTheta(theta)
	checkOmega(omega)
	switch {
	case theta > ThetaUpperST1(omega):
		return AlgST1
	case theta < ThetaLowerST2(omega):
		return AlgST2
	default:
		return AlgSW1
	}
}

// BestExpectedConn classifies theta for the connection model: ST2 wins for
// theta <= 1/2 and ST1 for theta >= 1/2 (section 5; Theorem 2 shows no SWk
// can beat both statics at a known theta). At exactly 1/2 the statics tie;
// ST2 is reported.
func BestExpectedConn(theta float64) Algorithm {
	checkTheta(theta)
	if theta > 0.5 {
		return AlgST1
	}
	return AlgST2
}

// MinExpectedMsg returns the smallest expected cost among ST1, ST2 and SW1
// at (theta, omega): the Theorem 9 lower envelope.
func MinExpectedMsg(theta, omega float64) float64 {
	return math.Min(ExpSW1Msg(theta, omega),
		math.Min(ExpST1Msg(theta, omega), ExpST2Msg(theta)))
}

// MinExpectedConn returns min(theta, 1-theta), the connection-model lower
// envelope of Theorem 2.
func MinExpectedConn(theta float64) float64 {
	return math.Min(ExpST1Conn(theta), ExpST2Conn(theta))
}
