package analytic

import (
	"math"
	"testing"

	"mobirep/internal/cost"
	"mobirep/internal/stats"
)

var thetaGrid = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

func TestExpStaticConn(t *testing.T) {
	for _, theta := range thetaGrid {
		if got := ExpST1Conn(theta); math.Abs(got-(1-theta)) > 1e-12 {
			t.Fatalf("ST1(%v) = %v", theta, got)
		}
		if got := ExpST2Conn(theta); math.Abs(got-theta) > 1e-12 {
			t.Fatalf("ST2(%v) = %v", theta, got)
		}
	}
}

// TestExpSWConnMatchesOracle validates Theorem 1 (equation 5) against the
// exact window-enumeration oracle, which never uses the formula.
func TestExpSWConnMatchesOracle(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{1, 3, 5, 9, 13} {
		for _, theta := range thetaGrid {
			formula := ExpSWConn(k, theta)
			oracle := ExactSWExpected(k, theta, model)
			if math.Abs(formula-oracle) > 1e-9 {
				t.Fatalf("k=%d theta=%v: formula %v vs oracle %v", k, theta, formula, oracle)
			}
		}
	}
}

// TestTheorem2 checks EXP_SWk >= min(EXP_ST1, EXP_ST2) over a dense grid.
func TestTheorem2(t *testing.T) {
	for _, k := range testKs {
		for theta := 0.0; theta <= 1.0001; theta += 0.01 {
			th := math.Min(theta, 1)
			sw := ExpSWConn(k, th)
			if sw < MinExpectedConn(th)-1e-9 {
				t.Fatalf("Theorem 2 violated: k=%d theta=%v sw=%v min=%v",
					k, th, sw, MinExpectedConn(th))
			}
		}
	}
}

// TestAvgSWConnMatchesIntegration validates equation 6 by Simpson
// integration of equation 5.
func TestAvgSWConnMatchesIntegration(t *testing.T) {
	for _, k := range testKs {
		k := k
		numeric := stats.Integrate(func(theta float64) float64 {
			return ExpSWConn(k, theta)
		}, 0, 1, 400)
		formula := AvgSWConn(k)
		if math.Abs(numeric-formula) > 1e-6 {
			t.Fatalf("k=%d: integral %v vs formula %v", k, numeric, formula)
		}
	}
}

// TestCorollary1 checks that AVG_SWk strictly decreases with k and stays
// below both statics.
func TestCorollary1(t *testing.T) {
	prev := math.Inf(1)
	for _, k := range testKs {
		avg := AvgSWConn(k)
		if avg >= prev {
			t.Fatalf("AVG_SW not decreasing at k=%d: %v >= %v", k, avg, prev)
		}
		if avg >= AvgST1Conn || avg >= AvgST2Conn {
			t.Fatalf("AVG_SW%d = %v not below statics", k, avg)
		}
		if avg <= OptimumAvgConn {
			t.Fatalf("AVG_SW%d = %v at or below the optimum 1/4", k, avg)
		}
		prev = avg
	}
}

// TestConclusionNumbersConn verifies the worked numbers in the paper:
// k=15 within 6% of the optimum, k=9 within 10%.
func TestConclusionNumbersConn(t *testing.T) {
	rel := func(k int) float64 { return AvgSWConn(k)/OptimumAvgConn - 1 }
	if r := rel(15); r > 0.06 {
		t.Fatalf("k=15 is %.2f%% above optimum, paper promises <= 6%%", 100*r)
	}
	if r := rel(9); r > 0.10 {
		t.Fatalf("k=9 is %.2f%% above optimum, paper promises <= 10%%", 100*r)
	}
	// And the factors should be nearly attained, not loose.
	if r := rel(15); r < 0.055 {
		t.Fatalf("k=15 relative gap %.4f unexpectedly small; formula wrong?", r)
	}
	if r := rel(9); r < 0.09 {
		t.Fatalf("k=9 relative gap %.4f unexpectedly small; formula wrong?", r)
	}
}

// TestExpT1ConnMatchesOracle validates the section 7.1 formula against the
// exact phase-chain oracle.
func TestExpT1ConnMatchesOracle(t *testing.T) {
	model := cost.NewConnection()
	for _, m := range []int{1, 2, 3, 7, 15} {
		for _, theta := range thetaGrid {
			formula := ExpT1Conn(m, theta)
			oracle := ExactT1Expected(m, theta, model)
			if math.Abs(formula-oracle) > 1e-9 {
				t.Fatalf("m=%d theta=%v: formula %v vs oracle %v", m, theta, formula, oracle)
			}
		}
	}
}

func TestExpT2ConnMatchesOracle(t *testing.T) {
	model := cost.NewConnection()
	for _, m := range []int{1, 2, 3, 7, 15} {
		for _, theta := range thetaGrid {
			formula := ExpT2Conn(m, theta)
			oracle := ExactT2Expected(m, theta, model)
			if math.Abs(formula-oracle) > 1e-9 {
				t.Fatalf("m=%d theta=%v: formula %v vs oracle %v", m, theta, formula, oracle)
			}
		}
	}
}

// TestT1T2Symmetry: T2m at theta equals T1m at 1-theta in the connection
// model (roles of reads and writes swap).
func TestT1T2Symmetry(t *testing.T) {
	for _, m := range []int{1, 3, 8} {
		for _, theta := range thetaGrid {
			if d := math.Abs(ExpT2Conn(m, theta) - ExpT1Conn(m, 1-theta)); d > 1e-12 {
				t.Fatalf("symmetry broken: m=%d theta=%v d=%v", m, theta, d)
			}
		}
	}
}

// TestAvgT1ConnMatchesIntegration validates the derived average for T1m.
func TestAvgT1ConnMatchesIntegration(t *testing.T) {
	for _, m := range []int{1, 2, 5, 15} {
		m := m
		numeric := stats.Integrate(func(theta float64) float64 {
			return ExpT1Conn(m, theta)
		}, 0, 1, 400)
		if formula := AvgT1Conn(m); math.Abs(numeric-formula) > 1e-8 {
			t.Fatalf("m=%d: integral %v vs formula %v", m, numeric, formula)
		}
		if AvgT2Conn(m) != AvgT1Conn(m) {
			t.Fatalf("m=%d: T2 average should equal T1 average", m)
		}
	}
}

// TestT1CloseToST1ForHighTheta verifies the section 7.1 comparison: for
// theta > 0.5, T1m's expected cost exceeds ST1's by exactly the
// competitiveness premium (1-theta)^m (2 theta - 1), which vanishes as m
// grows, and stays below SWm's expected cost.
func TestT1CloseToST1ForHighTheta(t *testing.T) {
	for _, m := range []int{3, 5, 9, 15} {
		for _, theta := range []float64{0.55, 0.6, 0.75, 0.9} {
			t1 := ExpT1Conn(m, theta)
			st1 := ExpST1Conn(theta)
			if t1 < st1 {
				t.Fatalf("m=%d theta=%v: T1 %v below ST1 %v", m, theta, t1, st1)
			}
			premium := math.Pow(1-theta, float64(m)) * (2*theta - 1)
			if math.Abs(t1-st1-premium) > 1e-12 {
				t.Fatalf("m=%d theta=%v: premium mismatch", m, theta)
			}
			if sw := ExpSWConn(m, theta); t1 > sw {
				t.Fatalf("m=%d theta=%v: T1 %v above SW %v, paper says slightly lower", m, theta, t1, sw)
			}
		}
	}
}

// TestPaperT1WorkedNumber verifies "for m=15 and theta=0.75 the expected
// cost of the T1m algorithm will come within 4% of the optimum".
func TestPaperT1WorkedNumber(t *testing.T) {
	opt := MinExpectedConn(0.75)
	t1 := ExpT1Conn(15, 0.75)
	if rel := t1/opt - 1; rel > 0.04 {
		t.Fatalf("T1(15) at theta=0.75 is %.3f%% above optimum", 100*rel)
	}
}

func TestCompetitiveFactorsConn(t *testing.T) {
	if CompetitiveSWConn(9) != 10 {
		t.Fatal("SW9 should be 10-competitive")
	}
	if CompetitiveT1Conn(15) != 16 || CompetitiveT2Conn(15) != 16 {
		t.Fatal("T(15) should be 16-competitive")
	}
}

func TestBestExpectedConn(t *testing.T) {
	if BestExpectedConn(0.3) != AlgST2 {
		t.Fatal("theta=0.3 should favor ST2")
	}
	if BestExpectedConn(0.7) != AlgST1 {
		t.Fatal("theta=0.7 should favor ST1")
	}
	if BestExpectedConn(0.5) != AlgST2 {
		t.Fatal("tie at 0.5 should report ST2")
	}
}

func TestExactStaticExpected(t *testing.T) {
	model := cost.NewConnection()
	for _, theta := range thetaGrid {
		if got := ExactStaticExpected(false, theta, model); math.Abs(got-ExpST1Conn(theta)) > 1e-12 {
			t.Fatalf("static oracle ST1 mismatch at %v", theta)
		}
		if got := ExactStaticExpected(true, theta, model); math.Abs(got-ExpST2Conn(theta)) > 1e-12 {
			t.Fatalf("static oracle ST2 mismatch at %v", theta)
		}
	}
}
