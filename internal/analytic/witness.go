package analytic

import (
	"fmt"
	"math"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
)

// Witness extraction: beyond computing the competitive ratio, the game
// graph contains the adversary's optimal strategy. WorstSchedule walks a
// maximum-mean cycle and returns the request pattern along it — the
// adversarial family for the policy, discovered rather than hand-derived.
// For SWk in the connection model it rediscovers the (r^{n+1} w^{n+1})
// cycles used in the paper's tightness arguments.

// opOf recovers which request an edge index encodes: buildGame emits, per
// product state, two read edges followed by two write edges.
func opOf(edgeIdx int) sched.Op {
	if edgeIdx%4 < 2 {
		return sched.Read
	}
	return sched.Write
}

// WorstSchedule returns one cycle of an (approximately) maximum-mean
// adversarial request pattern for the policy at competitiveness factor c,
// together with the cycle's mean gain per request. Repeating the returned
// schedule forces cost_A - c*cost_OPT to grow by gain per request; calling
// it with c slightly below the policy's ratio yields the tight family.
func WorstSchedule(p core.Enumerable, m cost.Model, c float64) (sched.Schedule, float64, error) {
	g, err := buildGame(p, m, 1<<14)
	if err != nil {
		return nil, 0, err
	}
	n := g.n
	// Karp with parent tracking: dp[k][v] and the edge that attained it.
	dp := make([][]float64, n+1)
	parent := make([][]int32, n+1)
	dp[0] = make([]float64, n)
	parent[0] = make([]int32, n)
	for k := 1; k <= n; k++ {
		dp[k] = make([]float64, n)
		parent[k] = make([]int32, n)
		for v := range dp[k] {
			dp[k][v] = math.Inf(-1)
			parent[k][v] = -1
		}
		for i := range g.from {
			w := g.costA[i] - c*g.costO[i]
			if cand := dp[k-1][g.from[i]] + w; cand > dp[k][g.to[i]] {
				dp[k][g.to[i]] = cand
				parent[k][g.to[i]] = int32(i)
			}
		}
	}
	// Karp: the vertex whose min_k (dp[n]-dp[k])/(n-k) is maximal lies on
	// a maximum-mean cycle's walk.
	bestV, bestMean := -1, math.Inf(-1)
	for v := 0; v < n; v++ {
		if math.IsInf(dp[n][v], -1) {
			continue
		}
		worst := math.Inf(1)
		for k := 0; k < n; k++ {
			if math.IsInf(dp[k][v], -1) {
				continue
			}
			if mean := (dp[n][v] - dp[k][v]) / float64(n-k); mean < worst {
				worst = mean
			}
		}
		if worst > bestMean {
			bestMean = worst
			bestV = v
		}
	}
	if bestV < 0 {
		return nil, 0, fmt.Errorf("analytic: no cycle found (empty game?)")
	}
	// Walk the optimal n-edge path backwards from bestV; a vertex must
	// repeat within n+1 visits — the segment between repeats is a cycle
	// of maximum mean.
	type visit struct{ step int }
	seen := make(map[int]visit)
	path := make([]int32, 0, n) // edge indices, reverse order
	v := bestV
	var cycleEdges []int32
	for k := n; k > 0; k-- {
		if at, ok := seen[v]; ok {
			// Cycle found between this visit and the previous one: edges
			// path[at.step:len(path)] ... path holds reversed edges from
			// bestV; the segment between the repeats is the cycle.
			cycleEdges = path[at.step:]
			break
		}
		seen[v] = visit{step: len(path)}
		e := parent[k][v]
		if e < 0 {
			break
		}
		path = append(path, e)
		v = int(g.from[e])
	}
	if cycleEdges == nil {
		// The whole walk may be one big cycle; detect a repeat of the end
		// vertex, else fall back to the full path.
		if at, ok := seen[v]; ok {
			cycleEdges = path[at.step:]
		} else {
			cycleEdges = path
		}
	}
	// path is reversed (newest first); emit ops oldest-first.
	out := make(sched.Schedule, 0, len(cycleEdges))
	for i := len(cycleEdges) - 1; i >= 0; i-- {
		out = append(out, opOf(int(cycleEdges[i])))
	}
	return out, bestMean, nil
}
