package analytic

import (
	"math"
	"testing"

	"mobirep/internal/cost"
	"mobirep/internal/stats"
)

var omegaGrid = []float64{0, 0.1, 0.25, 0.4, 0.5, 0.75, 0.9, 1}

func TestExpStaticMsg(t *testing.T) {
	for _, theta := range thetaGrid {
		for _, omega := range omegaGrid {
			if got := ExpST1Msg(theta, omega); math.Abs(got-(1+omega)*(1-theta)) > 1e-12 {
				t.Fatalf("ST1(%v,%v) = %v", theta, omega, got)
			}
		}
		if got := ExpST2Msg(theta); math.Abs(got-theta) > 1e-12 {
			t.Fatalf("ST2(%v) = %v", theta, got)
		}
	}
}

// TestExpSW1MsgMatchesOracle validates Theorem 5 (equation 9) against the
// window-enumeration oracle with the SW1 suppression rule.
func TestExpSW1MsgMatchesOracle(t *testing.T) {
	for _, omega := range omegaGrid {
		model := cost.NewMessage(omega)
		for _, theta := range thetaGrid {
			formula := ExpSW1Msg(theta, omega)
			oracle := ExactSWExpected(1, theta, model)
			if math.Abs(formula-oracle) > 1e-9 {
				t.Fatalf("omega=%v theta=%v: formula %v vs oracle %v", omega, theta, formula, oracle)
			}
		}
	}
}

// TestExpSWMsgMatchesOracle validates the reconstructed equation 11
// against the exact oracle for every k, theta, omega combination tested.
// This is the strongest check that the reconstruction (deallocation term
// omega * C(2n,n) * theta^(n+1) * (1-theta)^(n+1)) is the paper's formula.
func TestExpSWMsgMatchesOracle(t *testing.T) {
	for _, k := range []int{3, 5, 9, 13} {
		for _, omega := range omegaGrid {
			model := cost.NewMessage(omega)
			for _, theta := range thetaGrid {
				formula := ExpSWMsg(k, theta, omega)
				oracle := ExactSWExpected(k, theta, model)
				if math.Abs(formula-oracle) > 1e-9 {
					t.Fatalf("k=%d omega=%v theta=%v: formula %v vs oracle %v",
						k, omega, theta, formula, oracle)
				}
			}
		}
	}
}

// TestAvgSW1MsgMatchesIntegration validates equation 10.
func TestAvgSW1MsgMatchesIntegration(t *testing.T) {
	for _, omega := range omegaGrid {
		omega := omega
		numeric := stats.Integrate(func(theta float64) float64 {
			return ExpSW1Msg(theta, omega)
		}, 0, 1, 400)
		if formula := AvgSW1Msg(omega); math.Abs(numeric-formula) > 1e-9 {
			t.Fatalf("omega=%v: integral %v vs formula %v", omega, numeric, formula)
		}
	}
}

// TestAvgSWMsgMatchesIntegration validates equation 12 against Simpson
// integration of equation 11 — the pair of reconstructions must be
// mutually consistent and consistent with the oracle-backed equation 11.
func TestAvgSWMsgMatchesIntegration(t *testing.T) {
	for _, k := range []int{3, 5, 9, 15, 21} {
		for _, omega := range omegaGrid {
			k, omega := k, omega
			numeric := stats.Integrate(func(theta float64) float64 {
				return ExpSWMsg(k, theta, omega)
			}, 0, 1, 400)
			if formula := AvgSWMsg(k, omega); math.Abs(numeric-formula) > 1e-6 {
				t.Fatalf("k=%d omega=%v: integral %v vs formula %v", k, omega, numeric, formula)
			}
		}
	}
}

// TestAvgStaticMsgMatchesIntegration validates equation 8.
func TestAvgStaticMsgMatchesIntegration(t *testing.T) {
	for _, omega := range omegaGrid {
		omega := omega
		numeric := stats.Integrate(func(theta float64) float64 {
			return ExpST1Msg(theta, omega)
		}, 0, 1, 400)
		if math.Abs(numeric-AvgST1Msg(omega)) > 1e-9 {
			t.Fatalf("omega=%v: ST1 integral %v vs %v", omega, numeric, AvgST1Msg(omega))
		}
	}
	numeric := stats.Integrate(ExpST2Msg, 0, 1, 400)
	if math.Abs(numeric-AvgST2Msg) > 1e-9 {
		t.Fatalf("ST2 integral %v", numeric)
	}
}

// TestTheorem7 checks AVG_SW1 <= AVG_ST2 <= AVG_ST1 for all omega.
func TestTheorem7(t *testing.T) {
	for _, omega := range omegaGrid {
		sw1, st2, st1 := AvgSW1Msg(omega), AvgST2Msg, AvgST1Msg(omega)
		if sw1 > st2+1e-12 || st2 > st1+1e-12 {
			t.Fatalf("omega=%v: ordering broken: %v %v %v", omega, sw1, st2, st1)
		}
	}
}

// TestTheorem9 checks EXP_SWk >= min(EXP_SW1, EXP_ST1, EXP_ST2) on a grid.
func TestTheorem9(t *testing.T) {
	for _, k := range []int{3, 5, 9, 21, 95} {
		for _, omega := range omegaGrid {
			for theta := 0.0; theta <= 1.0001; theta += 0.02 {
				th := math.Min(theta, 1)
				sw := ExpSWMsg(k, th, omega)
				env := MinExpectedMsg(th, omega)
				if sw < env-1e-9 {
					t.Fatalf("Theorem 9 violated: k=%d omega=%v theta=%v sw=%v env=%v",
						k, omega, th, sw, env)
				}
			}
		}
	}
}

// TestLemma1 checks that for theta <= 0.5 and k > 1, SWk costs at least
// ST2 in the message model.
func TestLemma1(t *testing.T) {
	for _, k := range []int{3, 7, 21} {
		for _, omega := range omegaGrid {
			for theta := 0.0; theta <= 0.5001; theta += 0.02 {
				th := math.Min(theta, 0.5)
				if ExpSWMsg(k, th, omega) < ExpST2Msg(th)-1e-9 {
					t.Fatalf("Lemma 1 violated at k=%d omega=%v theta=%v", k, omega, th)
				}
			}
		}
	}
}

// TestLemma3 checks the high-theta branch: for theta > 0.5,
// omega < (2 theta - 1)/(1 - theta) implies EXP_SWk > EXP_ST1, and
// omega >= that bound implies EXP_SWk >= EXP_SW1.
func TestLemma3(t *testing.T) {
	for _, k := range []int{3, 7, 21} {
		for _, omega := range omegaGrid {
			for theta := 0.51; theta < 1; theta += 0.02 {
				bound := (2*theta - 1) / (1 - theta)
				sw := ExpSWMsg(k, theta, omega)
				if omega < bound {
					if sw < ExpST1Msg(theta, omega)-1e-9 {
						t.Fatalf("Lemma 3.1 violated at k=%d omega=%v theta=%v", k, omega, theta)
					}
				} else if sw < ExpSW1Msg(theta, omega)-1e-9 {
					t.Fatalf("Lemma 3.2 violated at k=%d omega=%v theta=%v", k, omega, theta)
				}
			}
		}
	}
}

// TestCorollary2 checks AVG_SWk decreases in k and respects the lower
// bound 1/4 + omega/8.
func TestCorollary2(t *testing.T) {
	for _, omega := range omegaGrid {
		prev := math.Inf(1)
		for _, k := range []int{3, 5, 9, 15, 21, 39, 95} {
			avg := AvgSWMsg(k, omega)
			if avg >= prev {
				t.Fatalf("AVG_SW not decreasing at k=%d omega=%v", k, omega)
			}
			if avg <= AvgSWMsgLowerBound(omega) {
				t.Fatalf("AVG_SW%d = %v at or below bound %v", k, avg, AvgSWMsgLowerBound(omega))
			}
			prev = avg
		}
	}
}

// TestTheorem6Regions cross-checks the dominance classification against a
// brute-force argmin of the three expected-cost formulas.
func TestTheorem6Regions(t *testing.T) {
	for _, omega := range omegaGrid {
		for theta := 0.01; theta < 1; theta += 0.01 {
			upper, lower := ThetaUpperST1(omega), ThetaLowerST2(omega)
			// Skip points within numerical distance of a boundary.
			if math.Abs(theta-upper) < 0.005 || math.Abs(theta-lower) < 0.005 {
				continue
			}
			st1 := ExpST1Msg(theta, omega)
			st2 := ExpST2Msg(theta)
			sw1 := ExpSW1Msg(theta, omega)
			want := AlgSW1
			if st1 < sw1 && st1 < st2 {
				want = AlgST1
			} else if st2 < sw1 && st2 < st1 {
				want = AlgST2
			}
			if got := BestExpectedMsg(theta, omega); got != want {
				t.Fatalf("omega=%v theta=%v: classified %v, argmin %v (%v %v %v)",
					omega, theta, got, want, st1, st2, sw1)
			}
		}
	}
}

// TestTheorem6OrderingInsideRegion verifies the full orderings stated in
// Theorem 6, not just the winner.
func TestTheorem6OrderingInsideRegion(t *testing.T) {
	omega := 0.5
	upper, lower := ThetaUpperST1(omega), ThetaLowerST2(omega)
	// Region 1: theta > upper: ST1 < SW1 < ST2.
	theta := (upper + 1) / 2
	if !(ExpST1Msg(theta, omega) < ExpSW1Msg(theta, omega) &&
		ExpSW1Msg(theta, omega) < ExpST2Msg(theta)) {
		t.Fatal("region 1 ordering broken")
	}
	// Region 3: theta < lower: ST2 < SW1 < ST1.
	theta = lower / 2
	if !(ExpST2Msg(theta) < ExpSW1Msg(theta, omega) &&
		ExpSW1Msg(theta, omega) < ExpST1Msg(theta, omega)) {
		t.Fatal("region 3 ordering broken")
	}
	// Region 2: between: SW1 < min(statics).
	theta = (upper + lower) / 2
	if ExpSW1Msg(theta, omega) >= math.Min(ExpST1Msg(theta, omega), ExpST2Msg(theta)) {
		t.Fatal("region 2 ordering broken")
	}
}

func TestBoundariesDegenerateAtOmegaZero(t *testing.T) {
	// At omega = 0 the ST2 boundary collapses to 0 and the ST1 boundary to
	// 1: SW1 dominates the whole open interval.
	if ThetaLowerST2(0) != 0 || ThetaUpperST1(0) != 1 {
		t.Fatal("omega=0 boundaries wrong")
	}
	if BestExpectedMsg(0.5, 0) != AlgSW1 {
		t.Fatal("omega=0 interior should favor SW1")
	}
}

// TestCorollary3And4 checks the SW1-vs-SWk thresholds, including the
// paper's two worked examples.
func TestCorollary3And4(t *testing.T) {
	// Corollary 3: omega <= 0.4 means no k beats SW1.
	for _, omega := range []float64{0, 0.2, 0.4} {
		if MinOddKBeatingSW1(omega) != 0 {
			t.Fatalf("omega=%v: expected no break-even k", omega)
		}
		for _, k := range []int{3, 9, 95, 301} {
			if AvgSWMsg(k, omega) <= AvgSW1Msg(omega) {
				t.Fatalf("Corollary 3 violated at omega=%v k=%d", omega, k)
			}
		}
	}
	// Paper's worked examples.
	if got := MinOddKBeatingSW1(0.45); got != 39 {
		t.Fatalf("omega=0.45: break-even k = %d, paper says 39", got)
	}
	if got := MinOddKBeatingSW1(0.8); got != 7 {
		t.Fatalf("omega=0.8: break-even k = %d, paper says 7", got)
	}
}

// TestK0ConsistentWithAverages verifies that the closed-form threshold
// separates the k values exactly as the AVG formulas do.
func TestK0ConsistentWithAverages(t *testing.T) {
	for _, omega := range []float64{0.41, 0.45, 0.5, 0.6, 0.8, 1.0} {
		k0 := K0(omega)
		for _, k := range []int{3, 5, 7, 9, 11, 21, 39, 95, 201} {
			beats := AvgSWMsg(k, omega) <= AvgSW1Msg(omega)
			if beats != (float64(k) >= k0) {
				t.Fatalf("omega=%v k=%d: beats=%v but k0=%v", omega, k, beats, k0)
			}
		}
	}
}

// TestOmegaStarIsExactBoundary checks AVG_SWk(omega*(k)) == AVG_SW1 and
// that omega* decreases toward 0.4.
func TestOmegaStarIsExactBoundary(t *testing.T) {
	prev := math.Inf(1)
	for _, k := range []int{3, 5, 7, 11, 21, 39, 95} {
		ws := OmegaStar(k)
		if ws >= prev {
			t.Fatalf("omega* not decreasing at k=%d", k)
		}
		if ws <= OmegaBreakEven {
			t.Fatalf("omega*(%d) = %v at or below 0.4", k, ws)
		}
		if ws <= 1 {
			d := AvgSWMsg(k, ws) - AvgSW1Msg(ws)
			if math.Abs(d) > 1e-12 {
				t.Fatalf("omega*(%d): averages differ by %v at the boundary", k, d)
			}
		}
		prev = ws
	}
}

func TestCompetitiveFactorsMsg(t *testing.T) {
	if got := CompetitiveSW1Msg(0.5); got != 2 {
		t.Fatalf("SW1 factor = %v", got)
	}
	if got := CompetitiveSWMsg(1, 0.5); got != 2 {
		t.Fatalf("SWk factor at k=1 should defer to SW1: %v", got)
	}
	// (1 + 0.5/2)*(3+1) + 0.5 = 5.5
	if got := CompetitiveSWMsg(3, 0.5); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("SW3 factor = %v", got)
	}
	// Message-model factor must exceed the connection-model factor
	// whenever omega > 0.
	for _, k := range []int{3, 9} {
		if CompetitiveSWMsg(k, 0.3) <= CompetitiveSWConn(k) {
			t.Fatalf("message factor should exceed connection factor at k=%d", k)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{AlgST1: "ST1", AlgST2: "ST2", AlgSW1: "SW1", AlgSWk: "SWk", Algorithm(99): "unknown"}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
}

// TestExactTOracleMsgSanity pins down the message-model behaviour of the
// T-family oracles (no closed form in the paper): at theta=0 T1 costs
// nothing once the copy is allocated... in the stationary law T1 at
// theta=0 sits permanently in the two-copies phase with zero cost, and at
// theta=1 both T policies cost nothing (no copy, writes free).
func TestExactTOracleMsgSanity(t *testing.T) {
	model := cost.NewMessage(0.5)
	if got := ExactT1Expected(3, 0, model); got != 0 {
		t.Fatalf("T1 at theta=0: %v", got)
	}
	if got := ExactT1Expected(3, 1, model); got != 0 {
		t.Fatalf("T1 at theta=1: %v", got)
	}
	if got := ExactT2Expected(3, 0, model); got != 0 {
		t.Fatalf("T2 at theta=0: %v", got)
	}
	if got := ExactT2Expected(3, 1, model); got != 0 {
		t.Fatalf("T2 at theta=1: %v", got)
	}
	// Interior thetas must be strictly positive.
	if got := ExactT1Expected(3, 0.5, model); got <= 0 {
		t.Fatalf("T1 at theta=0.5: %v", got)
	}
}
