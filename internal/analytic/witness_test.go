package analytic

import (
	"math"
	"strings"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/offline"
	"mobirep/internal/sched"
)

// replayRatio measures a policy's asymptotic ratio on many repeats of a
// cycle.
func replayRatio(p core.Policy, m cost.Model, cycle sched.Schedule, reps int) float64 {
	s := cycle.Repeat(reps)
	p.Reset()
	online := 0.0
	for _, op := range s {
		online += m.StepCost(p.Apply(op))
	}
	opt := offline.Cost(s, offline.Ideal())
	if opt == 0 {
		return math.Inf(1)
	}
	return online / opt
}

// TestWitnessAchievesTightRatio: the schedule the game extracts, when
// repeated, must force the policy to (nearly) its competitive ratio.
func TestWitnessAchievesTightRatio(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{1, 3, 5} {
		bound := float64(k + 1)
		cycle, gain, err := WorstSchedule(core.NewSW(k), model, bound-0.05)
		if err != nil {
			t.Fatal(err)
		}
		if len(cycle) == 0 {
			t.Fatalf("k=%d: empty witness", k)
		}
		if gain <= 0 {
			t.Fatalf("k=%d: witness gain %v, want positive below the ratio", k, gain)
		}
		reps := 4000 / len(cycle)
		ratio := replayRatio(core.NewSW(k), model, cycle, reps)
		if ratio < bound-0.2 {
			t.Fatalf("k=%d: witness %q achieves only %v against bound %v",
				k, cycle, ratio, bound)
		}
	}
}

// TestWitnessRediscoversPaperFamily: for SW3 in the connection model the
// extracted cycle should be run-structured like the paper's r^2 w^2 (up to
// rotation), i.e. contain both ops and alternate in runs of <= n+1.
func TestWitnessRediscoversPaperFamily(t *testing.T) {
	cycle, _, err := WorstSchedule(core.NewSW(3), cost.NewConnection(), 3.9)
	if err != nil {
		t.Fatal(err)
	}
	str := cycle.String()
	if !strings.Contains(str, "r") || !strings.Contains(str, "w") {
		t.Fatalf("witness %q lacks one op kind", str)
	}
	// Each maximal run in the repeated cycle must be short: long runs
	// would let the window settle and stop paying.
	doubled := cycle.Repeat(2)
	for _, run := range doubled.Runs() {
		if run.Len > 4 {
			t.Fatalf("witness %q has a run of %d; the tight family for SW3 flips every <=2", str, run.Len)
		}
	}
}

// TestWitnessMessageModel: the SW1 witness in the message model must also
// achieve its 1+2w bound.
func TestWitnessMessageModel(t *testing.T) {
	const omega = 0.5
	model := cost.NewMessage(omega)
	bound := CompetitiveSW1Msg(omega)
	cycle, _, err := WorstSchedule(core.NewSW(1), model, bound-0.05)
	if err != nil {
		t.Fatal(err)
	}
	ratio := replayRatio(core.NewSW(1), model, cycle, 4000/len(cycle))
	if ratio < bound-0.1 {
		t.Fatalf("witness %q achieves %v against bound %v", cycle, ratio, bound)
	}
}

// TestWitnessAboveRatioGainNonpositive: asking for a witness at c above
// the ratio must report non-positive gain (no profitable cycle exists).
func TestWitnessAboveRatioGainNonpositive(t *testing.T) {
	_, gain, err := WorstSchedule(core.NewSW(3), cost.NewConnection(), 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if gain > 1e-9 {
		t.Fatalf("gain %v above the ratio; the policy would not be 4-competitive", gain)
	}
}
