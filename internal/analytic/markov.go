package analytic

import (
	"fmt"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// Generic Markov oracle: exact expected costs for ANY finite-state policy
// under i.i.d. Bernoulli(theta) requests, computed by enumerating the
// policy's reachable state graph. It needs no closed form and no
// per-policy derivation, so it validates every formula in this package
// and analyzes the variants the paper leaves open (hysteresis windows,
// even window sizes, the T family in the message model).

// Chain is the explored state graph of a policy at a fixed theta.
type Chain struct {
	theta float64
	// per state: successor index and step cost under Read and Write.
	toRead, toWrite     []int
	costRead, costWrite []float64
	// start is the initial state's index.
	start int
}

// BuildChain explores the reachable states of the policy (breadth-first,
// both request kinds from every state) and prices each transition under
// m. It fails if more than maxStates states are reachable.
func BuildChain(p core.Enumerable, theta float64, m cost.Model, maxStates int) (*Chain, error) {
	checkTheta(theta)
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	type node struct {
		policy core.Enumerable
		index  int
	}
	index := map[string]int{}
	var queue []node

	intern := func(q core.Enumerable) (int, bool) {
		key := q.StateKey()
		if i, ok := index[key]; ok {
			return i, false
		}
		i := len(index)
		index[key] = i
		return i, true
	}

	c := &Chain{theta: theta}
	startIdx, _ := intern(p)
	c.start = startIdx
	queue = append(queue, node{policy: p, index: startIdx})

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for len(c.toRead) <= cur.index {
			c.toRead = append(c.toRead, -1)
			c.toWrite = append(c.toWrite, -1)
			c.costRead = append(c.costRead, 0)
			c.costWrite = append(c.costWrite, 0)
		}
		for _, op := range []sched.Op{sched.Read, sched.Write} {
			next := cur.policy.Clone()
			st := next.Apply(op)
			idx, fresh := intern(next)
			if len(index) > maxStates {
				return nil, fmt.Errorf("analytic: policy %s exceeds %d states", p.Name(), maxStates)
			}
			if op == sched.Read {
				c.toRead[cur.index] = idx
				c.costRead[cur.index] = m.StepCost(st)
			} else {
				c.toWrite[cur.index] = idx
				c.costWrite[cur.index] = m.StepCost(st)
			}
			if fresh {
				queue = append(queue, node{policy: next, index: idx})
			}
		}
	}
	return c, nil
}

// States returns the number of reachable states.
func (c *Chain) States() int { return len(c.toRead) }

// stepCost returns the expected cost of the next request from state i.
func (c *Chain) stepCost(i int) float64 {
	return (1-c.theta)*c.costRead[i] + c.theta*c.costWrite[i]
}

// evolve advances the state distribution by one request.
func (c *Chain) evolve(pi, next []float64) {
	for i := range next {
		next[i] = 0
	}
	for i, p := range pi {
		if p == 0 {
			continue
		}
		next[c.toRead[i]] += p * (1 - c.theta)
		next[c.toWrite[i]] += p * c.theta
	}
}

// SteadyCost returns the exact long-run expected cost per request: the
// stationary distribution (found by damped power iteration, which
// converges for any unichain) weighted by per-state expected step costs.
func (c *Chain) SteadyCost() float64 {
	n := c.States()
	pi := make([]float64, n)
	pi[c.start] = 1
	next := make([]float64, n)
	mixed := make([]float64, n)
	for iter := 0; iter < 200000; iter++ {
		c.evolve(pi, next)
		// Damping (Cesàro mix) kills periodicity.
		diff := 0.0
		for i := range mixed {
			mixed[i] = 0.5*pi[i] + 0.5*next[i]
			d := mixed[i] - pi[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		pi, mixed = mixed, pi
		if diff < 1e-14 {
			break
		}
	}
	total := 0.0
	for i, p := range pi {
		total += p * c.stepCost(i)
	}
	return total
}

// TransientCosts returns the exact expected cost of each of the first
// steps requests, starting cold from the policy's initial state. It
// quantifies how fast a policy converges to its steady state — the
// warmup the simulator discards and the "initial window only affects a
// vanishing transient" claim.
func (c *Chain) TransientCosts(steps int) []float64 {
	n := c.States()
	pi := make([]float64, n)
	pi[c.start] = 1
	next := make([]float64, n)
	out := make([]float64, steps)
	for t := 0; t < steps; t++ {
		for i, p := range pi {
			out[t] += p * c.stepCost(i)
		}
		c.evolve(pi, next)
		pi, next = next, pi
	}
	return out
}

// MarkovExpected is the convenience wrapper: exact steady-state expected
// cost per request of any finite-state policy.
func MarkovExpected(p core.Enumerable, theta float64, m cost.Model) (float64, error) {
	c, err := BuildChain(p, theta, m, 1<<20)
	if err != nil {
		return 0, err
	}
	return c.SteadyCost(), nil
}

// MarkovAverage returns the exact average expected cost of any
// finite-state policy: the integral over theta of the chain's steady cost
// (Simpson with 2*halves panels; 200 is plenty for these smooth
// integrands). It generalizes equations 6 and 12 to policies without a
// closed form — the T family in the message model, hysteresis windows,
// the even-k variant.
func MarkovAverage(p core.Enumerable, m cost.Model, halves int) (float64, error) {
	// Build the state graph once; transition structure and step costs are
	// theta-independent, so only the stationary solve repeats per point.
	base, err := BuildChain(p, 0.5, m, 1<<20)
	if err != nil {
		return 0, err
	}
	f := func(theta float64) float64 {
		c := *base
		c.theta = theta
		return c.SteadyCost()
	}
	return stats.Integrate(f, 0, 1, halves), nil
}

// SteadyMoments returns the exact stationary mean and variance of the
// per-request cost. The variance is the marginal one (a single request
// drawn at stationarity); it bounds how noisy per-request costs are and
// calibrates the simulator's confidence intervals. Successive requests
// are correlated through the window, so the variance of a long-run
// average is not simply this value over n — the experiments use batch
// means for that.
func (c *Chain) SteadyMoments() (mean, variance float64) {
	n := c.States()
	pi := make([]float64, n)
	pi[c.start] = 1
	next := make([]float64, n)
	mixed := make([]float64, n)
	for iter := 0; iter < 200000; iter++ {
		c.evolve(pi, next)
		diff := 0.0
		for i := range mixed {
			mixed[i] = 0.5*pi[i] + 0.5*next[i]
			d := mixed[i] - pi[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		pi, mixed = mixed, pi
		if diff < 1e-14 {
			break
		}
	}
	var m1, m2 float64
	for i, p := range pi {
		if p == 0 {
			continue
		}
		m1 += p * ((1-c.theta)*c.costRead[i] + c.theta*c.costWrite[i])
		m2 += p * ((1-c.theta)*c.costRead[i]*c.costRead[i] + c.theta*c.costWrite[i]*c.costWrite[i])
	}
	return m1, m2 - m1*m1
}
