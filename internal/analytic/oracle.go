package analytic

import (
	"math"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
)

// Exact finite-state oracles. These compute expected cost per request
// directly from the policy state machines and a cost model, with no use of
// the paper's formulas, by summing over the exact stationary distribution
// of the policy's state. Tests validate the closed forms against them, and
// the experiment harness uses them wherever a paper formula does not exist
// (for example T1m in the message model).

// ExactSWExpected returns the exact expected cost per request of SWk at
// write probability theta under model m, by enumerating all 2^k window
// states. Under i.i.d. requests the window's stationary law is the product
// Bernoulli(theta) law, so the expectation is a finite sum. k must be odd
// and at most 25 to keep the enumeration tractable.
func ExactSWExpected(k int, theta float64, m cost.Model) float64 {
	checkOddK(k)
	checkTheta(theta)
	if k > 25 {
		panic("analytic: ExactSWExpected enumeration limited to k <= 25")
	}
	total := 0.0
	for mask := 0; mask < 1<<k; mask++ {
		writes := popcount(mask)
		p := math.Pow(theta, float64(writes)) * math.Pow(1-theta, float64(k-writes))
		if p == 0 {
			continue
		}
		// Window bits: bit i set means slot i is a write; slot 0 is the
		// oldest. Copy present iff reads strictly outnumber writes.
		had := k-writes > writes

		// Next request is a read with probability 1-theta.
		newWritesR := writes - bitAt(mask, 0)
		hasR := k-newWritesR > newWritesR
		stepR := core.Step{Op: sched.Read, HadCopy: had, HasCopy: hasR}

		newWritesW := writes - bitAt(mask, 0) + 1
		hasW := k-newWritesW > newWritesW
		stepW := core.Step{Op: sched.Write, HadCopy: had, HasCopy: hasW,
			DataSuppressed: k == 1 && had}

		total += p * ((1-theta)*m.StepCost(stepR) + theta*m.StepCost(stepW))
	}
	return total
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func bitAt(mask, i int) int { return (mask >> i) & 1 }

// ExactT1Expected returns the exact expected cost per request of T1m at
// write probability theta under model m, from the stationary law of its
// phase chain: the one-copy state with c consecutive reads has probability
// theta*(1-theta)^c for c = 0..m-1, and the two-copies phase has
// probability (1-theta)^m.
func ExactT1Expected(mThresh int, theta float64, m cost.Model) float64 {
	if mThresh <= 0 {
		panic("analytic: T1 threshold must be positive")
	}
	checkTheta(theta)
	q := 1 - theta
	total := 0.0
	for c := 0; c < mThresh; c++ {
		p := theta * math.Pow(q, float64(c))
		readStep := core.Step{Op: sched.Read, HadCopy: false, HasCopy: c+1 == mThresh}
		writeStep := core.Step{Op: sched.Write, HadCopy: false, HasCopy: false}
		total += p * (q*m.StepCost(readStep) + theta*m.StepCost(writeStep))
	}
	p2 := math.Pow(q, float64(mThresh))
	readStep := core.Step{Op: sched.Read, HadCopy: true, HasCopy: true}
	writeStep := core.Step{Op: sched.Write, HadCopy: true, HasCopy: false, DataSuppressed: true}
	total += p2 * (q*m.StepCost(readStep) + theta*m.StepCost(writeStep))
	return total
}

// ExactT2Expected returns the exact expected cost per request of T2m at
// write probability theta under model m. By the read/write mirror of
// ExactT1Expected: the two-copies state with c consecutive writes has
// stationary probability (1-theta)*theta^c, and the one-copy phase has
// probability theta^m.
func ExactT2Expected(mThresh int, theta float64, m cost.Model) float64 {
	if mThresh <= 0 {
		panic("analytic: T2 threshold must be positive")
	}
	checkTheta(theta)
	total := 0.0
	for c := 0; c < mThresh; c++ {
		p := (1 - theta) * math.Pow(theta, float64(c))
		readStep := core.Step{Op: sched.Read, HadCopy: true, HasCopy: true}
		writeStep := core.Step{Op: sched.Write, HadCopy: true, HasCopy: c+1 < mThresh}
		total += p * ((1-theta)*m.StepCost(readStep) + theta*m.StepCost(writeStep))
	}
	p1 := math.Pow(theta, float64(mThresh))
	readStep := core.Step{Op: sched.Read, HadCopy: false, HasCopy: true}
	writeStep := core.Step{Op: sched.Write, HadCopy: false, HasCopy: false}
	total += p1 * ((1-theta)*m.StepCost(readStep) + theta*m.StepCost(writeStep))
	return total
}

// ExactStaticExpected returns the exact expected cost per request of ST1
// or ST2 (trivially stateless) under model m.
func ExactStaticExpected(hasCopy bool, theta float64, m cost.Model) float64 {
	checkTheta(theta)
	readStep := core.Step{Op: sched.Read, HadCopy: hasCopy, HasCopy: hasCopy}
	writeStep := core.Step{Op: sched.Write, HadCopy: hasCopy, HasCopy: hasCopy}
	return (1-theta)*m.StepCost(readStep) + theta*m.StepCost(writeStep)
}
