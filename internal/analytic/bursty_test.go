package analytic

import (
	"math"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/workload"
)

func TestBurstyDegeneratesToFixedTheta(t *testing.T) {
	// Equal regime thetas make the regime irrelevant: the product chain
	// must reproduce the plain chain exactly.
	model := cost.NewMessage(0.5)
	for _, theta := range []float64{0.2, 0.5, 0.8} {
		for _, q := range []float64{0.01, 0.5, 1} {
			got, err := BurstyExpected(core.NewSW(5),
				BurstyParams{ThetaA: theta, ThetaB: theta, SwitchProb: q}, model)
			if err != nil {
				t.Fatal(err)
			}
			want, err := MarkovExpected(core.NewSW(5), theta, model)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("theta=%v q=%v: bursty %v vs fixed %v", theta, q, got, want)
			}
		}
	}
}

func TestBurstyMatchesSimulation(t *testing.T) {
	model := cost.NewConnection()
	params := BurstyParams{ThetaA: 0.1, ThetaB: 0.9, SwitchProb: 0.01}
	for _, mk := range []func() core.Enumerable{
		func() core.Enumerable { return core.NewSW(3) },
		func() core.Enumerable { return core.NewSW(9) },
		func() core.Enumerable { return core.NewT1(4) },
		func() core.Enumerable { return core.NewST2() },
	} {
		p := mk()
		exact, err := BurstyExpected(p, params, model)
		if err != nil {
			t.Fatal(err)
		}
		// Bursty samples are heavily correlated (the effective sample size
		// is the number of bursts, not requests), so average several seeds
		// and allow a correspondingly loose tolerance.
		var sum stats.Summary
		for seed := uint64(51); seed < 57; seed++ {
			rng := stats.NewRNG(seed)
			s, _ := workload.Bursty(rng, workload.BurstyConfig(params), 400000)
			sum.Add(sim.Replay(mk(), model, s, 2000).PerOp())
		}
		if math.Abs(exact-sum.Mean()) > 0.01 {
			t.Fatalf("%s: exact %v vs simulated %v", p.Name(), exact, sum.Mean())
		}
	}
}

func TestBurstyFastSwitchingIsMixture(t *testing.T) {
	// With SwitchProb = 1/2 the regime is a fresh coin per request, so
	// each request is a write w.p. (thetaA + thetaB)/2 i.i.d. — the
	// product chain must equal the plain chain at the mean theta.
	model := cost.NewConnection()
	params := BurstyParams{ThetaA: 0.2, ThetaB: 0.6, SwitchProb: 0.5}
	got, err := BurstyExpected(core.NewSW(7), params, model)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarkovExpected(core.NewSW(7), 0.4, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fast switching %v vs mean-theta %v", got, want)
	}
}

func TestBurstySlowSwitchingApproachesRegimeMixture(t *testing.T) {
	// Very long regimes: the cost approaches the average of the per-regime
	// steady-state costs (the switching transient amortizes away).
	model := cost.NewConnection()
	params := BurstyParams{ThetaA: 0.1, ThetaB: 0.9, SwitchProb: 1e-5}
	got, err := BurstyExpected(core.NewSW(9), params, model)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MarkovExpected(core.NewSW(9), 0.1, model)
	b, _ := MarkovExpected(core.NewSW(9), 0.9, model)
	want := (a + b) / 2
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("slow switching %v vs regime mixture %v", got, want)
	}
}

func TestBurstyValidation(t *testing.T) {
	model := cost.NewConnection()
	if _, err := BurstyExpected(core.NewSW(3), BurstyParams{ThetaA: -1, ThetaB: 0.5, SwitchProb: 0.1}, model); err == nil {
		t.Fatal("bad theta accepted")
	}
	if _, err := BurstyExpected(core.NewSW(3), BurstyParams{ThetaA: 0.5, ThetaB: 0.5, SwitchProb: 0}, model); err == nil {
		t.Fatal("zero switch probability accepted")
	}
}
