package analytic

import "math"

// Connection-model results (section 5). Costs are in expected connections
// per relevant request.

// ExpST1Conn returns EXP_ST1(theta) = 1 - theta (equation 2): under the
// one-copy scheme only reads cost a connection.
func ExpST1Conn(theta float64) float64 {
	checkTheta(theta)
	return 1 - theta
}

// ExpST2Conn returns EXP_ST2(theta) = theta (equation 2): under the
// two-copies scheme only writes cost a connection.
func ExpST2Conn(theta float64) float64 {
	checkTheta(theta)
	return theta
}

// ExpSWConn returns EXP_SWk(theta) of Theorem 1:
// theta*pi_k + (1-theta)*(1-pi_k). A write costs a connection exactly when
// the MC holds a copy (probability pi_k) and a read exactly when it does
// not.
func ExpSWConn(k int, theta float64) float64 {
	checkTheta(theta)
	pk := PiK(k, theta)
	return theta*pk + (1-theta)*(1-pk)
}

// AvgST1Conn is AVG_ST1 = 1/2 (equation 3).
const AvgST1Conn = 0.5

// AvgST2Conn is AVG_ST2 = 1/2 (equation 3).
const AvgST2Conn = 0.5

// AvgSWConn returns AVG_SWk = 1/4 + 1/(4(k+2)) of Theorem 3 (equation 6).
func AvgSWConn(k int) float64 {
	checkOddK(k)
	return 0.25 + 1/(4*float64(k+2))
}

// OptimumAvgConn is the infimum of AVG_SWk as k grows (Corollary 1): the
// yardstick for the paper's "within 6% of the optimum for k = 15" claim.
const OptimumAvgConn = 0.25

// CompetitiveSWConn returns the tight competitiveness factor k+1 of SWk in
// the connection model (Theorem 4).
func CompetitiveSWConn(k int) float64 {
	checkOddK(k)
	return float64(k + 1)
}

// ExpT1Conn returns the section 7.1 expected cost of T1m in the connection
// model: (1-theta) + (1-theta)^m (2*theta - 1). The second term is the
// price of (m+1)-competitiveness over static ST1.
func ExpT1Conn(m int, theta float64) float64 {
	checkTheta(theta)
	if m <= 0 {
		panic("analytic: T1 threshold must be positive")
	}
	return (1 - theta) + math.Pow(1-theta, float64(m))*(2*theta-1)
}

// ExpT2Conn returns the symmetric expected cost of T2m in the connection
// model: theta + theta^m (1 - 2*theta).
func ExpT2Conn(m int, theta float64) float64 {
	checkTheta(theta)
	if m <= 0 {
		panic("analytic: T2 threshold must be positive")
	}
	return theta + math.Pow(theta, float64(m))*(1-2*theta)
}

// AvgT1Conn returns the average expected cost of T1m in the connection
// model, obtained by integrating ExpT1Conn over theta:
// 1/2 - m/((m+1)(m+2)).
func AvgT1Conn(m int) float64 {
	if m <= 0 {
		panic("analytic: T1 threshold must be positive")
	}
	fm := float64(m)
	return 0.5 - fm/((fm+1)*(fm+2))
}

// AvgT2Conn returns the average expected cost of T2m in the connection
// model; by the read/write symmetry it equals AvgT1Conn(m).
func AvgT2Conn(m int) float64 { return AvgT1Conn(m) }

// CompetitiveT1Conn returns T1m's competitiveness factor m+1 (section 7.1).
func CompetitiveT1Conn(m int) float64 {
	if m <= 0 {
		panic("analytic: T1 threshold must be positive")
	}
	return float64(m + 1)
}

// CompetitiveT2Conn returns T2m's competitiveness factor m+1 (section 7.1).
func CompetitiveT2Conn(m int) float64 { return CompetitiveT1Conn(m) }
