package analytic

import (
	"fmt"

	"mobirep/internal/core"
	"mobirep/internal/cost"
)

// Exact analysis under the two-regime Markov-modulated workload
// (internal/workload.Bursty): the product chain over (policy state,
// regime) is still a finite Markov chain, so expected cost per request
// has an exact value for every finite-state policy — no closed form, no
// simulation noise. Used by the burst experiments as the oracle column.

// BurstyParams mirrors workload.BurstyConfig for the analytic layer
// (duplicated to keep the package dependency-light and the two packages
// independently usable).
type BurstyParams struct {
	// ThetaA and ThetaB are the regime write probabilities.
	ThetaA, ThetaB float64
	// SwitchProb is the per-request regime flip probability.
	SwitchProb float64
}

// BurstyExpected returns the exact long-run expected cost per request of
// a finite-state policy under the two-regime workload. The product state
// space doubles the policy's, so the same tractability limits apply.
func BurstyExpected(p core.Enumerable, params BurstyParams, m cost.Model) (float64, error) {
	if params.ThetaA < 0 || params.ThetaA > 1 || params.ThetaB < 0 || params.ThetaB > 1 {
		return 0, fmt.Errorf("analytic: bursty thetas outside [0,1]")
	}
	if params.SwitchProb <= 0 || params.SwitchProb > 1 {
		return 0, fmt.Errorf("analytic: switch probability outside (0,1]")
	}
	// Build one chain per regime over the SAME policy state indexing.
	// The op distribution depends only on the current regime; the policy
	// transition depends only on the op. We therefore reuse BuildChain's
	// exploration once (it visits all op-reachable states regardless of
	// theta) and weight transitions per regime.
	base, err := BuildChain(p, 0.5, m, 1<<19)
	if err != nil {
		return 0, err
	}
	n := base.States()
	// Distribution over (state, regime); regime A = 0.
	pi := make([]float64, 2*n)
	pi[base.start] = 1 // start in regime A
	next := make([]float64, 2*n)
	mixed := make([]float64, 2*n)
	theta := [2]float64{params.ThetaA, params.ThetaB}
	q := params.SwitchProb
	for iter := 0; iter < 200000; iter++ {
		for i := range next {
			next[i] = 0
		}
		for s := 0; s < n; s++ {
			for r := 0; r < 2; r++ {
				mass := pi[r*n+s]
				if mass == 0 {
					continue
				}
				// The regime flips before the request is drawn, matching
				// workload.Bursty.
				for nr := 0; nr < 2; nr++ {
					rp := q
					if nr == r {
						rp = 1 - q
					}
					if rp == 0 {
						continue
					}
					th := theta[nr]
					next[nr*n+base.toWrite[s]] += mass * rp * th
					next[nr*n+base.toRead[s]] += mass * rp * (1 - th)
				}
			}
		}
		diff := 0.0
		for i := range mixed {
			mixed[i] = 0.5*pi[i] + 0.5*next[i]
			d := mixed[i] - pi[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		pi, mixed = mixed, pi
		if diff < 1e-14 {
			break
		}
	}
	total := 0.0
	for s := 0; s < n; s++ {
		for r := 0; r < 2; r++ {
			mass := pi[r*n+s]
			if mass == 0 {
				continue
			}
			// Expected cost of the next request from (s, r): regime flips
			// first, then the op is drawn.
			for nr := 0; nr < 2; nr++ {
				rp := q
				if nr == r {
					rp = 1 - q
				}
				th := theta[nr]
				total += mass * rp * (th*base.costWrite[s] + (1-th)*base.costRead[s])
			}
		}
	}
	return total, nil
}
