package analytic

import (
	"math"

	"mobirep/internal/core"
	"mobirep/internal/cost"
)

// Mechanized competitive analysis. For a deterministic finite-state
// policy A, the adversary simultaneously chooses the request sequence and
// (being able to foresee itself) the offline algorithm's allocation
// moves. A is c-competitive exactly when no infinite play makes
// cost_A - c*cost_OPT grow without bound, i.e. when the maximum cycle
// mean of the finite game graph
//
//	states:  (policy state, offline copy bit)
//	edges:   choose op in {r, w} and the offline's next copy bit,
//	         weighted cost_A(op) - c*cost_OPT(op, move)
//
// is at most zero. The offline edge costs follow the ideal comparator of
// internal/offline: read miss 1, write hit 1, deallocation free,
// allocation free on a read miss and 1 otherwise.
//
// CompetitiveRatio binary-searches c using Karp's maximum-cycle-mean
// algorithm, mechanically re-deriving the paper's Theorems 4, 11 and 12
// and producing exact factors for variants the paper never analyzed
// (the T family in the message model, tie-holding even windows, the
// cache-invalidation baseline).

// gameGraph is the product game: edges carry the two costs separately so
// one build serves every candidate c.
type gameGraph struct {
	n     int // number of product states
	from  []int32
	to    []int32
	costA []float64
	costO []float64
}

// buildGame explores the product space. maxStates bounds the policy's
// state count (the product doubles it).
func buildGame(p core.Enumerable, m cost.Model, maxStates int) (*gameGraph, error) {
	chain, err := BuildChain(p, 0.5, m, maxStates)
	if err != nil {
		return nil, err
	}
	ns := chain.States()
	g := &gameGraph{n: 2 * ns}
	addEdge := func(from, to int, ca, co float64) {
		g.from = append(g.from, int32(from))
		g.to = append(g.to, int32(to))
		g.costA = append(g.costA, ca)
		g.costO = append(g.costO, co)
	}
	// Product state s + ns*o, with o the offline copy bit.
	for s := 0; s < ns; s++ {
		for o := 0; o < 2; o++ {
			from := s + ns*o
			// Read edges.
			for _, oNext := range []int{0, 1} {
				co := 0.0
				if o == 0 {
					co = 1 // ideal read miss: one data message
				}
				// Transitions after a read are free for the ideal
				// comparator (the data flowed on a miss; dropping is free).
				if o == 1 && oNext == 1 {
					co = 0
				}
				addEdge(from, chain.toRead[s]+ns*oNext, chain.costRead[s], co)
			}
			// Write edges.
			for _, oNext := range []int{0, 1} {
				co := 0.0
				if o == 1 {
					co = 1 // write propagated to the held copy
				}
				if o == 0 && oNext == 1 {
					co = 1 // standalone allocation pushes the new value
				}
				addEdge(from, chain.toWrite[s]+ns*oNext, chain.costWrite[s], co)
			}
		}
	}
	return g, nil
}

// maxCycleMean runs Karp's algorithm on edge weights costA - c*costO.
func (g *gameGraph) maxCycleMean(c float64) float64 {
	n := g.n
	// dp[k][v] = maximum weight of a k-edge walk ending at v (from any
	// start). Initialize with 0 so every state is a valid start.
	prev := make([]float64, n)
	dp := make([][]float64, n+1)
	dp[0] = append([]float64(nil), prev...)
	cur := make([]float64, n)
	for k := 1; k <= n; k++ {
		for v := range cur {
			cur[v] = math.Inf(-1)
		}
		for i := range g.from {
			w := g.costA[i] - c*g.costO[i]
			if cand := dp[k-1][g.from[i]] + w; cand > cur[g.to[i]] {
				cur[g.to[i]] = cand
			}
		}
		dp[k] = append([]float64(nil), cur...)
	}
	best := math.Inf(-1)
	for v := 0; v < n; v++ {
		if math.IsInf(dp[n][v], -1) {
			continue
		}
		worst := math.Inf(1)
		for k := 0; k < n; k++ {
			if math.IsInf(dp[k][v], -1) {
				continue
			}
			mean := (dp[n][v] - dp[k][v]) / float64(n-k)
			if mean < worst {
				worst = mean
			}
		}
		if worst > best {
			best = worst
		}
	}
	return best
}

// CompetitiveRatio returns the exact competitive ratio of a finite-state
// policy under the given cost model against the ideal offline comparator,
// to within tol (default 1e-9 when tol <= 0). It returns +Inf if the
// policy is not competitive at any factor below limit (e.g. the statics).
// The policy's state count must stay modest (the game is quadratic in
// it); window sizes up to 11 are comfortable.
func CompetitiveRatio(p core.Enumerable, m cost.Model, limit float64, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	if limit <= 0 {
		limit = 64
	}
	g, err := buildGame(p, m, 1<<14)
	if err != nil {
		return 0, err
	}
	// Feasibility: c is an upper bound iff max cycle mean <= 0.
	if g.maxCycleMean(limit) > 1e-12 {
		return math.Inf(1), nil
	}
	lo, hi := 0.0, limit
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if g.maxCycleMean(mid) > 1e-12 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// VerifyCompetitive checks that the policy is c-competitive (max cycle
// mean of the game at factor c is non-positive). It is cheaper than the
// full binary search when only a bound must be confirmed.
func VerifyCompetitive(p core.Enumerable, m cost.Model, c float64) (bool, error) {
	g, err := buildGame(p, m, 1<<14)
	if err != nil {
		return false, err
	}
	return g.maxCycleMean(c) <= 1e-12, nil
}

// WorstCycle is a diagnostic: it returns the maximum cycle mean at factor
// c, positive values meaning the adversary gains per step.
func WorstCycle(p core.Enumerable, m cost.Model, c float64) (float64, error) {
	g, err := buildGame(p, m, 1<<14)
	if err != nil {
		return 0, err
	}
	return g.maxCycleMean(c), nil
}
