package tree

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

// Live-link integration: real in-memory links, real delivery goroutines,
// no chaos. These prove the relay wiring end to end — read-through along
// a chain, downward write propagation, drop cascades, placement
// shedding, and warm handoff — while conformance_test.go hammers the
// same machinery under seeded faults.

func memConnect(child, parent int) (transport.Link, transport.Link, error) {
	a, b := transport.NewMemPair()
	return a, b, nil
}

func buildTest(t *testing.T, topo Topology, mode replica.Mode, placement Policy) (*Tree, *db.Store) {
	t.Helper()
	store := db.NewStore()
	tr, err := Build(topo, store, mode, 1, placement, memConnect)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr, store
}

func attachTestMC(t *testing.T, tr *Tree, station int) *MC {
	t.Helper()
	a, b := transport.NewMemPair()
	mc, err := tr.AttachMC(station, a, b)
	if err != nil {
		t.Fatalf("AttachMC(%d): %v", station, err)
	}
	mc.Client.Timeout = 5 * time.Second
	return mc
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestChainReadThroughAndPropagation(t *testing.T) {
	tr, _ := buildTest(t, Chain(3), replica.Static2(), Policy{Kind: PolicyNone})
	mc := attachTestMC(t, tr, 2)

	if _, err := tr.Stations[0].Server().Write("x", []byte("x#1")); err != nil {
		t.Fatalf("root write: %v", err)
	}
	it, err := mc.Client.Read("x")
	if err != nil {
		t.Fatalf("read through 2-hop chain: %v", err)
	}
	if it.Version != 1 || string(it.Value) != "x#1" {
		t.Fatalf("read = v%d %q, want v1 x#1", it.Version, it.Value)
	}

	// ST2 allocates on every hop of the fetch path: the copy chain is
	// root-contiguous and the MC now holds a copy.
	eventually(t, "copies along the path", func() bool {
		return tr.Stations[1].Client().HasCopy("x") &&
			tr.Stations[2].Client().HasCopy("x") &&
			mc.Client.HasCopy("x")
	})

	// A root write now rides the propagation path down every hop.
	if _, err := tr.Stations[0].Server().Write("x", []byte("x#2")); err != nil {
		t.Fatalf("root write: %v", err)
	}
	eventually(t, "write propagation to the MC", func() bool {
		it, err := mc.Client.Read("x")
		return err == nil && it.Version == 2 && string(it.Value) == "x#2"
	})
}

func TestDropCascade(t *testing.T) {
	tr, _ := buildTest(t, Chain(3), replica.Static2(), Policy{Kind: PolicyNone})
	mc := attachTestMC(t, tr, 2)

	tr.Stations[0].Server().Write("x", []byte("x#1"))
	if _, err := mc.Client.Read("x"); err != nil {
		t.Fatalf("read: %v", err)
	}
	eventually(t, "MC copy", func() bool { return mc.Client.HasCopy("x") })

	// Shedding the top relay's copy must cascade: station 2 and the MC
	// may not hold what station 1 no longer does.
	if !tr.Stations[1].Client().DropCopy("x") {
		t.Fatal("DropCopy: station 1 held no copy")
	}
	eventually(t, "cascade to the MC", func() bool {
		return !tr.Stations[2].Client().HasCopy("x") && !mc.Client.HasCopy("x")
	})

	// The path re-forms on the next read.
	it, err := mc.Client.Read("x")
	if err != nil || it.Version != 1 {
		t.Fatalf("re-read after cascade = v%d, %v", it.Version, err)
	}
	eventually(t, "re-allocation", func() bool { return mc.Client.HasCopy("x") })
}

func TestPlacementShedsAndReholds(t *testing.T) {
	// T1(2) at the relay: it refuses the copy until two consecutive
	// reads, and sheds it again on the next write.
	tr, _ := buildTest(t, Chain(2), replica.Static2(), Policy{Kind: PolicyT1, K: 2})
	mc := attachTestMC(t, tr, 1)
	st := tr.Stations[1]

	tr.Stations[0].Server().Write("x", []byte("x#1"))

	// First read: the fetch allocates, then placement (1 read < 2) sheds.
	if _, err := mc.Client.Read("x"); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	eventually(t, "placement shed after one read", func() bool {
		return !st.Client().HasCopy("x") && !mc.Client.HasCopy("x")
	})

	// Second consecutive read crosses the T1 threshold: the copy stays.
	if _, err := mc.Client.Read("x"); err != nil {
		t.Fatalf("read 2: %v", err)
	}
	eventually(t, "copy held after the threshold", func() bool {
		return st.Client().HasCopy("x") && mc.Client.HasCopy("x")
	})

	// A write ends T1's two-copies phase: the relay sheds and cascades.
	tr.Stations[0].Server().Write("x", []byte("x#2"))
	eventually(t, "placement shed on write", func() bool {
		return !st.Client().HasCopy("x") && !mc.Client.HasCopy("x")
	})

	// Correctness is untouched: the next read sees the new version.
	it, err := mc.Client.Read("x")
	if err != nil || it.Version != 2 {
		t.Fatalf("read after shed = v%d, %v", it.Version, err)
	}
}

func TestHandoffWarm(t *testing.T) {
	tr, _ := buildTest(t, Binary(3), replica.Static2(), Policy{Kind: PolicyNone})
	mc := attachTestMC(t, tr, 1)

	tr.Stations[0].Server().Write("x", []byte("x#1"))
	if it, err := mc.Client.Read("x"); err != nil || it.Version != 1 {
		t.Fatalf("read at station 1 = v%d, %v", it.Version, err)
	}
	eventually(t, "warm copy at station 1", func() bool { return mc.Client.HasCopy("x") })

	// Move to the sibling: state migrates through the root (the common
	// ancestor), revalidated rather than re-shipped.
	a, b := transport.NewMemPair()
	done, err := mc.Handoff(2, a, b)
	if err != nil {
		t.Fatalf("Handoff: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handoff resync did not complete")
	}
	if !mc.FinishHandoff(a) {
		t.Fatal("handoff fell back to cold")
	}
	if mc.Station() != 2 {
		t.Fatalf("Station() = %d, want 2", mc.Station())
	}

	// The warm copy survived the move and the new path propagates.
	if it, err := mc.Client.Read("x"); err != nil || it.Version != 1 {
		t.Fatalf("read after handoff = v%d, %v", it.Version, err)
	}
	tr.Stations[0].Server().Write("x", []byte("x#2"))
	eventually(t, "propagation via station 2", func() bool {
		it, err := mc.Client.Read("x")
		return err == nil && it.Version == 2
	})
}

// TestHandoffUnderWrites bounces an MC between two stations while the
// root writes concurrently — the handoff race ci runs under -race. Reads
// must stay per-key monotone across every move (floors make a warm
// arrival at a colder station serve upstream rather than step back).
func TestHandoffUnderWrites(t *testing.T) {
	tr, _ := buildTest(t, Binary(3), replica.Static2(), Policy{Kind: PolicyNone})
	mc := attachTestMC(t, tr, 1)

	keys := []string{"a", "b", "c"}
	for _, k := range keys {
		tr.Stations[0].Server().Write(k, []byte(fmt.Sprintf("%s#1", k)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[i%len(keys)]
			tr.Stations[0].Server().Write(k, nil)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	last := map[string]uint64{}
	station := 1
	for move := 0; move < 20; move++ {
		for _, k := range keys {
			it, err := mc.Client.Read(k)
			if err != nil {
				t.Fatalf("move %d: read %s: %v", move, k, err)
			}
			if it.Version < last[k] {
				t.Fatalf("move %d: read %s went back in time: v%d after v%d",
					move, k, it.Version, last[k])
			}
			last[k] = it.Version
		}
		station = 3 - station // 1 <-> 2
		a, b := transport.NewMemPair()
		done, err := mc.Handoff(station, a, b)
		if err != nil {
			t.Fatalf("move %d: Handoff: %v", move, err)
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("move %d: handoff resync did not complete", move)
		}
		if !mc.FinishHandoff(a) {
			t.Fatalf("move %d: unexpected cold arrival", move)
		}
	}
	close(stop)
	wg.Wait()
}
