package tree

// Observability for the replica-tree layer: one registration per series
// at package init, pre-resolved handles on the hot paths, mirroring the
// discipline of internal/replica/metrics.go.

import "mobirep/internal/obs"

var (
	obsReg = obs.Default()

	// Relay fetch outcomes (the origin hook's dispositions).
	mFetchLocal = obsReg.Counter(`mobirep_tree_fetches_total{result="local"}`,
		"Relay read-path fetches by outcome: served from the station's own "+
			"copy, resolved through the parent, or failed (offline/abandoned).")
	mFetchParent = obsReg.Counter(`mobirep_tree_fetches_total{result="parent"}`, "")
	mFetchFailed = obsReg.Counter(`mobirep_tree_fetches_total{result="failed"}`, "")

	// Downward mirroring.
	mApplies = obsReg.Counter("mobirep_tree_applies_total",
		"Parent-face values folded into a relay's mirror store and fanned "+
			"to its children (fresh versions only; duplicates are inert).")
	mInvalidations = obsReg.Counter("mobirep_tree_invalidations_total",
		"Child copies revoked by a relay cascade (parent-face drops, fences).")
	mFences = obsReg.Counter("mobirep_tree_fences_total",
		"Subtree invalidations triggered by an upstream epoch fence.")

	// Placement.
	mPlacementDrops = obsReg.Counter("mobirep_tree_placement_drops_total",
		"Copies shed because the station's placement policy voted against them.")

	// Mobility.
	mHandoffs = obsReg.Counter("mobirep_tree_handoffs_total",
		"MC handoffs completed (detach at one station, warm reattach at another).")
	mHandoffsCold = obsReg.Counter("mobirep_tree_handoffs_cold_total",
		"MC handoffs that fell back to a cold reattach (fence or failed resync).")
)
