package tree

import (
	"reflect"
	"testing"
)

func TestTopologyShapes(t *testing.T) {
	c := Chain(4)
	if err := c.Validate(); err != nil {
		t.Fatalf("Chain(4) invalid: %v", err)
	}
	if !reflect.DeepEqual(c.Parent, []int{-1, 0, 1, 2}) {
		t.Fatalf("Chain(4) parents = %v", c.Parent)
	}
	if got := c.Leaves(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Chain(4) leaves = %v", got)
	}
	if d := c.Depth(3); d != 3 {
		t.Fatalf("Chain(4) depth(3) = %d", d)
	}
	if p := c.Path(3); !reflect.DeepEqual(p, []int{3, 2, 1, 0}) {
		t.Fatalf("Chain(4) path(3) = %v", p)
	}

	b := Binary(7)
	if err := b.Validate(); err != nil {
		t.Fatalf("Binary(7) invalid: %v", err)
	}
	if !reflect.DeepEqual(b.Parent, []int{-1, 0, 0, 1, 1, 2, 2}) {
		t.Fatalf("Binary(7) parents = %v", b.Parent)
	}
	if got := b.Leaves(); !reflect.DeepEqual(got, []int{3, 4, 5, 6}) {
		t.Fatalf("Binary(7) leaves = %v", got)
	}
	kids := b.Children()
	if !reflect.DeepEqual(kids[0], []int{1, 2}) || !reflect.DeepEqual(kids[1], []int{3, 4}) {
		t.Fatalf("Binary(7) children = %v", kids)
	}
}

func TestTopologyValidateRejects(t *testing.T) {
	bad := []Topology{
		{},                          // empty
		{Parent: []int{0}},          // root must be -1
		{Parent: []int{-1, 1}},      // self-parent
		{Parent: []int{-1, 2, 1}},   // forward reference
		{Parent: []int{-1, -1}},     // two roots
		{Parent: []int{-1, 0, 99}},  // out of range
		{Parent: []int{-1, 0, -42}}, // negative non-root
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d (%v): Validate accepted an invalid topology", i, topo.Parent)
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	b := Binary(7)
	cases := []struct{ a, b, want int }{
		{3, 4, 1}, // siblings under 1
		{3, 5, 0}, // across the root
		{3, 3, 3}, // self
		{1, 3, 1}, // ancestor/descendant
		{0, 6, 0}, // root with anything
	}
	for _, c := range cases {
		if got := b.CommonAncestor(c.a, c.b); got != c.want {
			t.Errorf("CommonAncestor(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
